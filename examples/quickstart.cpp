// Quickstart: submit a handful of DL training jobs to a small cluster,
// schedule them with Muri, and compare against FIFO.
//
//   ./examples/quickstart
//
// Walks through the whole public API surface in ~80 lines: build jobs from
// the model zoo, inspect interleaving efficiency for a candidate group,
// run the simulator with two schedulers, and read out the metrics.
#include <cstdio>

#include "interleave/efficiency.h"
#include "job/model.h"
#include "scheduler/baselines.h"
#include "scheduler/muri.h"
#include "sim/simulator.h"

using namespace muri;

int main() {
  // 1. Describe a workload: four jobs, one per bottleneck class, all
  //    wanting the same single GPU for ~20 minutes of solo compute.
  Trace trace;
  trace.name = "quickstart";
  const ModelKind models[] = {ModelKind::kShuffleNet, ModelKind::kA2c,
                              ModelKind::kGpt2, ModelKind::kVgg16};
  for (int i = 0; i < 4; ++i) {
    Job job;
    job.id = i;
    job.model = models[i];
    job.num_gpus = 1;
    job.submit_time = 0;
    job.profile = model_profile(job.model, job.num_gpus);
    job.iterations = static_cast<std::int64_t>(
        1200.0 / job.profile.iteration_time());  // ~20 min each
    trace.jobs.push_back(job);
    std::printf("submitted %s\n", job.to_string().c_str());
  }

  // 2. What would Muri's interleaving math say about grouping all four?
  std::vector<ResourceVector> stages;
  for (const Job& j : trace.jobs) stages.push_back(j.profile.stage_time);
  const InterleavePlan plan = plan_interleave(stages);
  std::printf("\n4-job group: rotation period %.3fs, efficiency gamma=%.2f\n",
              plan.period, plan.efficiency);

  // 3. Simulate on a one-GPU "cluster" — the interesting case, because
  //    FIFO must serialize while Muri interleaves all four jobs.
  SimOptions options;
  options.cluster.num_machines = 1;
  options.cluster.gpus_per_machine = 1;
  options.durations_known = true;

  FifoScheduler fifo;
  const SimResult fifo_result = run_simulation(trace, fifo, options);

  MuriOptions muri_options;
  muri_options.durations_known = true;  // Muri-S (SRSF priority)
  MuriScheduler muri(muri_options);
  const SimResult muri_result = run_simulation(trace, muri, options);

  // 4. Compare.
  std::printf("\n%-8s %12s %12s %14s\n", "", "avg JCT", "makespan",
              "avg GPU util");
  for (const SimResult* r : {&fifo_result, &muri_result}) {
    std::printf("%-8s %11.0fs %11.0fs %13.0f%%\n", r->scheduler_name.c_str(),
                r->avg_jct, r->makespan,
                100 * r->avg_utilization[static_cast<size_t>(Resource::kGpu)]);
  }
  std::printf("\nMuri speedup: %.2fx average JCT, %.2fx makespan\n",
              fifo_result.avg_jct / muri_result.avg_jct,
              fifo_result.makespan / muri_result.makespan);
  return 0;
}
