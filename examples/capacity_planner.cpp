// Capacity planner: how many GPUs does a workload need under each
// scheduler to hit a target average JCT? Sweeps cluster sizes and reports
// the smallest cluster that meets the target — the operator-facing "what
// does Muri save me" question.
//
//   ./examples/capacity_planner --trace 1 --target-jct 7200
//   ./examples/capacity_planner --trace testbed --schedulers SRSF,Muri-S
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "scheduler/baselines.h"
#include "scheduler/muri.h"
#include "sim/simulator.h"

using namespace muri;

namespace {

std::unique_ptr<Scheduler> make(const std::string& name) {
  if (name == "SRTF") return std::make_unique<SrtfScheduler>();
  if (name == "SRSF") return std::make_unique<SrsfScheduler>();
  if (name == "Tiresias") return std::make_unique<TiresiasScheduler>();
  if (name == "Muri-S") {
    MuriOptions o;
    o.durations_known = true;
    return std::make_unique<MuriScheduler>(o);
  }
  if (name == "Muri-L") return std::make_unique<MuriScheduler>(MuriOptions{});
  throw std::invalid_argument("unknown scheduler " + name);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);
    const std::string id = flags.get("trace", "1");
    Trace trace =
        id == "testbed" ? testbed_trace() : standard_trace(std::stoi(id));
    const double target = flags.get_double("target-jct", 4 * 3600.0);

    std::vector<std::string> schedulers;
    {
      std::stringstream ss(flags.get("schedulers", "SRSF,Muri-S"));
      std::string item;
      while (std::getline(ss, item, ',')) schedulers.push_back(item);
    }

    std::printf("trace %s (%zu jobs, %.0f GPU-hours); target avg JCT %.0fs\n\n",
                trace.name.c_str(), trace.jobs.size(),
                trace.total_gpu_seconds() / 3600, target);
    std::printf("%-10s", "GPUs");
    for (const auto& s : schedulers) std::printf(" %12s", s.c_str());
    std::printf("\n");

    std::vector<int> met(schedulers.size(), 0);
    for (int machines : {4, 6, 8, 12, 16, 24, 32}) {
      std::printf("%-10d", machines * 8);
      for (size_t i = 0; i < schedulers.size(); ++i) {
        auto scheduler = make(schedulers[i]);
        SimOptions opt;
        opt.cluster.num_machines = machines;
        opt.cluster.gpus_per_machine = 8;
        opt.durations_known = scheduler->needs_durations();
        const SimResult r = run_simulation(trace, *scheduler, opt);
        std::printf(" %11.0fs", r.avg_jct);
        if (met[i] == 0 && r.avg_jct <= target) met[i] = machines * 8;
      }
      std::printf("\n");
    }
    std::printf("\nsmallest cluster meeting the target:\n");
    for (size_t i = 0; i < schedulers.size(); ++i) {
      if (met[i] > 0) {
        std::printf("  %-10s %d GPUs\n", schedulers[i].c_str(), met[i]);
      } else {
        std::printf("  %-10s not met up to 256 GPUs\n", schedulers[i].c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
