// Interleave explorer: inspect Muri's grouping math for any set of models.
//
//   ./examples/interleave_explorer shufflenet a2c gpt2 vgg16
//   ./examples/interleave_explorer --gpus 8 bert gpt2
//   ./examples/interleave_explorer --all-pairs
//
// Prints the per-model profiles, every ordering of the group with its
// period, the chosen best/worst plans with γ, the fluid-model throughput
// prediction, and (with --all-pairs) the full pairwise-efficiency matrix
// of the model zoo — the edge weights Muri's Blossom matching consumes.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "interleave/efficiency.h"
#include "job/model.h"
#include "sim/fluid.h"

using namespace muri;

namespace {

void print_profile(ModelKind m, int gpus) {
  const IterationProfile p = model_profile(m, gpus);
  std::printf("  %-12s iter=%.3fs  busy: io=%.3f cpu=%.3f gpu=%.3f "
              "net=%.3f  bottleneck=%s\n",
              to_string(m).data(), p.iteration_time(),
              p.stage_time[0], p.stage_time[1], p.stage_time[2],
              p.stage_time[3], to_string(p.bottleneck_resource()).data());
}

void print_pair_matrix(int gpus) {
  std::printf("pairwise interleaving efficiency gamma (the matching edge "
              "weights):\n%-12s", "");
  for (ModelKind m : kAllModels) std::printf(" %10s", to_string(m).data());
  std::printf("\n");
  for (ModelKind a : kAllModels) {
    std::printf("%-12s", to_string(a).data());
    for (ModelKind b : kAllModels) {
      const double gamma = pairwise_efficiency(
          model_profile(a, gpus).stage_time, model_profile(b, gpus).stage_time);
      std::printf(" %10.3f", gamma);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int gpus = flags.get_int("gpus", 1);

  if (flags.get_bool("all-pairs")) {
    print_pair_matrix(gpus);
    return 0;
  }

  std::vector<ModelKind> models;
  for (const std::string& name : flags.positional()) {
    ModelKind m{};
    if (!parse_model(name, m)) {
      std::fprintf(stderr, "unknown model '%s'; known:", name.c_str());
      for (ModelKind k : kAllModels) {
        std::fprintf(stderr, " %s", to_string(k).data());
      }
      std::fprintf(stderr, "\n");
      return 1;
    }
    models.push_back(m);
  }
  if (models.empty()) {
    models = {ModelKind::kShuffleNet, ModelKind::kA2c, ModelKind::kGpt2,
              ModelKind::kVgg16};
  }
  if (models.size() > static_cast<size_t>(kNumResources)) {
    std::fprintf(stderr, "at most %d jobs per group (k resource types)\n",
                 kNumResources);
    return 1;
  }

  std::printf("group of %zu jobs at %d GPU(s) each:\n", models.size(), gpus);
  std::vector<IterationProfile> profiles;
  std::vector<ResourceVector> stages;
  for (ModelKind m : models) {
    print_profile(m, gpus);
    profiles.push_back(model_profile(m, gpus));
    stages.push_back(profiles.back().stage_time);
  }

  // Enumerate every ordering the way §4.2 describes.
  const InterleavePlan best = plan_interleave(stages, OrderingPolicy::kBest);
  const InterleavePlan worst = plan_interleave(stages, OrderingPolicy::kWorst);
  std::printf("\nrotation slots:");
  for (Resource r : best.slots) std::printf(" %s", to_string(r).data());
  std::printf("\nbest ordering:  offsets [");
  for (int o : best.offsets) std::printf(" %d", o);
  std::printf(" ]  period %.3fs  gamma %.3f\n", best.period, best.efficiency);
  std::printf("worst ordering: offsets [");
  for (int o : worst.offsets) std::printf(" %d", o);
  std::printf(" ]  period %.3fs  gamma %.3f\n", worst.period,
              worst.efficiency);

  // Execution-model prediction.
  FluidOptions fluid;
  fluid.inflation = 1.0 + 0.05 * (static_cast<double>(models.size()) - 1);
  const auto rates = max_min_fair_rates(profiles, fluid);
  std::printf("\npredicted throughput when interleaved (fluid model):\n");
  double sum = 0;
  for (size_t i = 0; i < models.size(); ++i) {
    std::printf("  %-12s %.0f%% of solo speed\n",
                to_string(models[i]).data(), 100 * rates[i]);
    sum += rates[i];
  }
  std::printf("  total normalized throughput: %.2fx of one exclusive job\n",
              sum);
  return 0;
}
