// Full trace-driven cluster simulation with a CLI — the workhorse example.
//
//   ./examples/trace_sim --trace 2 --scheduler Muri-L
//   ./examples/trace_sim --trace testbed --scheduler SRSF --known
//   ./examples/trace_sim --csv my_trace.csv --scheduler Tiresias
//       --machines 16 --gpus-per-machine 8 --interval 300 --series
//   ./examples/trace_sim --trace 1 --zero-arrivals --scheduler Muri-L-2
//
// Flags:
//   --trace N | testbed     built-in trace (1..4 or the 400-job testbed)
//   --csv PATH              load a trace from CSV instead
//   --scheduler NAME        FIFO SRTF SRSF Tiresias Themis AntMan
//                           Muri-S Muri-L (+ -2/-3/-worstorder/-noblossom)
//   --known                 expose job durations to the scheduler
//   --zero-arrivals         submit everything at t=0
//   --machines N --gpus-per-machine N
//   --interval SECONDS --restart-penalty SECONDS
//   --noise X               profiling noise n_p in [0,1]
//   --series                print downsampled metric time series
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>

#include "common/flags.h"
#include "scheduler/baselines.h"
#include "scheduler/muri.h"
#include "sim/simulator.h"

using namespace muri;

namespace {

std::unique_ptr<Scheduler> scheduler_by_name(const std::string& name) {
  if (name == "FIFO") return std::make_unique<FifoScheduler>();
  if (name == "SRTF") return std::make_unique<SrtfScheduler>();
  if (name == "SRSF") return std::make_unique<SrsfScheduler>();
  if (name == "Tiresias") return std::make_unique<TiresiasScheduler>();
  if (name == "Themis") return std::make_unique<ThemisScheduler>();
  if (name == "AntMan") return std::make_unique<AntManScheduler>();
  if (name.rfind("Muri", 0) == 0) {
    MuriOptions opt;
    opt.durations_known = name.rfind("Muri-S", 0) == 0;
    if (name.find("-2") != std::string::npos) opt.max_group_size = 2;
    if (name.find("-3") != std::string::npos) opt.max_group_size = 3;
    if (name.find("-worstorder") != std::string::npos) {
      opt.ordering = OrderingPolicy::kWorst;
    }
    if (name.find("-noblossom") != std::string::npos) opt.use_blossom = false;
    if (name.find("-nobucket") != std::string::npos) opt.bucket_by_gpu = false;
    return std::make_unique<MuriScheduler>(opt);
  }
  throw std::invalid_argument("unknown scheduler '" + name + "'");
}

void print_series(const char* label,
                  const std::vector<SeriesRecorder::Point>& points) {
  std::printf("%-10s:", label);
  const size_t step = std::max<size_t>(1, points.size() / 16);
  for (size_t i = 0; i < points.size(); i += step) {
    std::printf(" %.1f", points[i].value);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Flags flags(argc, argv);

    Trace trace;
    if (flags.has("csv")) {
      const std::string path = flags.get("csv");
      trace = read_trace_csv(path, path);
    } else {
      const std::string id = flags.get("trace", "1");
      trace = id == "testbed" ? testbed_trace() : standard_trace(std::stoi(id));
    }
    if (flags.get_bool("zero-arrivals")) trace = zero_arrivals(std::move(trace));

    const std::string sched_name = flags.get("scheduler", "Muri-L");
    auto scheduler = scheduler_by_name(sched_name);

    SimOptions options;
    options.cluster.num_machines = flags.get_int("machines", 8);
    options.cluster.gpus_per_machine = flags.get_int("gpus-per-machine", 8);
    options.schedule_interval = flags.get_double("interval", 360);
    options.restart_penalty = flags.get_double("restart-penalty", 30);
    options.profiler.noise = flags.get_double("noise", 0.0);
    options.durations_known =
        flags.get_bool("known") || scheduler->needs_durations();
    options.record_series = flags.get_bool("series");

    for (const std::string& name : flags.unread()) {
      std::fprintf(stderr, "warning: unused flag --%s\n", name.c_str());
    }

    std::printf("trace %s: %zu jobs, %.0f GPU-hours of work\n",
                trace.name.c_str(), trace.jobs.size(),
                trace.total_gpu_seconds() / 3600);
    std::printf("cluster: %d machines x %d GPUs, scheduler %s "
                "(durations %s)\n\n",
                options.cluster.num_machines,
                options.cluster.gpus_per_machine, scheduler->name().c_str(),
                options.durations_known ? "known" : "unknown");

    const SimResult r = run_simulation(trace, *scheduler, options);

    std::printf("finished %d/%zu jobs\n", r.finished_jobs, trace.jobs.size());
    std::printf("  avg JCT        %12.0f s\n", r.avg_jct);
    std::printf("  p99 JCT        %12.0f s\n", r.p99_jct);
    std::printf("  makespan       %12.0f s\n", r.makespan);
    std::printf("  avg queue      %12.1f jobs\n", r.avg_queue_length);
    std::printf("  blocking index %12.2f\n", r.avg_blocking_index);
    std::printf("  utilization    io=%.2f cpu=%.2f gpu=%.2f net=%.2f\n",
                r.avg_utilization[0], r.avg_utilization[1],
                r.avg_utilization[2], r.avg_utilization[3]);
    std::printf("  group width    %12.2f jobs/GPU-set\n", r.avg_group_width);
    std::printf("  normalized rate%12.2f of solo speed\n",
                r.avg_normalized_rate);
    std::printf("  scheduler time %12.1f ms over %lld rounds\n",
                r.scheduler_wall_ms,
                static_cast<long long>(r.scheduler_invocations));
    std::printf("  profiling      %d sessions, %.0f s of dry runs\n",
                r.profiler_sessions, r.profiling_time);

    if (options.record_series) {
      std::printf("\ntime series (downsampled):\n");
      print_series("queue", r.queue_series);
      print_series("blocking", r.blocking_series);
      print_series("gpu util",
                   r.util_series[static_cast<size_t>(Resource::kGpu)]);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
