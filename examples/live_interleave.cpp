// Live interleaving demo: actually run a grouped set of jobs as threads
// with stage barriers and exclusive resource tokens — the Muri-executor
// mechanism (§5) at a wall-clock scale you can watch.
//
//   ./examples/live_interleave                         # Table 2 group
//   ./examples/live_interleave --seconds 5 bert a2c
//   ./examples/live_interleave --uncoordinated gpt2 gpt2
//   ./examples/live_interleave --metrics-port=9090 --seconds 30
//       (then: curl http://127.0.0.1:9090/metrics)
//   ./examples/live_interleave --trace-out=live.json
//
// Compares each job's live throughput against its solo run and reports
// the aggregate normalized throughput (>1 means interleaving beat
// dedicating the resources to one job at a time), plus the realized
// interleaving efficiency γ against the plan's prediction.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "interleave/efficiency.h"
#include "job/model.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/executor.h"

using namespace muri;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);

  const std::string level_text = flags.get("log-level");
  if (!level_text.empty()) {
    LogLevel level = LogLevel::kWarn;
    if (parse_log_level(level_text, level)) {
      set_log_level(level);
    } else {
      std::fprintf(stderr,
                   "unknown --log-level '%s' "
                   "(use debug|info|warn|error|off)\n",
                   level_text.c_str());
      return 1;
    }
  }

  std::vector<ModelKind> models;
  for (const std::string& name : flags.positional()) {
    ModelKind m{};
    if (!parse_model(name, m)) {
      std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
      return 1;
    }
    models.push_back(m);
  }
  if (models.empty()) {
    models = {ModelKind::kShuffleNet, ModelKind::kA2c, ModelKind::kGpt2,
              ModelKind::kVgg16};
  }
  if (models.size() > static_cast<size_t>(kNumResources)) {
    std::fprintf(stderr, "at most %d jobs per group\n", kNumResources);
    return 1;
  }

  runtime::ExecOptions options;
  options.time_scale = flags.get_double("time-scale", 0.02);
  options.run_for = flags.get_double("seconds", 2.0);
  options.coordinate = !flags.get_bool("uncoordinated");

  // Optional observability sinks: a wall-clock trace of every stage span
  // and a live /metrics endpoint you can curl while the group runs.
  const std::string trace_path = flags.get("trace-out");
  std::unique_ptr<obs::Tracer> tracer;
  if (!trace_path.empty()) {
    tracer = std::make_unique<obs::Tracer>();
    tracer->set_enabled(true);
    obs::attach_log_tracer(tracer.get());
    options.tracer = tracer.get();
  }
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::HttpExporter> exporter;
  if (flags.has("metrics-port")) {
    metrics = std::make_unique<obs::MetricsRegistry>();
    exporter = std::make_unique<obs::HttpExporter>(*metrics);
    std::string error;
    if (!exporter->start(flags.get_int("metrics-port", 0), &error)) {
      std::fprintf(stderr, "failed to start metrics exporter: %s\n",
                   error.c_str());
      return 1;
    }
    std::fprintf(stderr, "serving metrics on http://127.0.0.1:%d/metrics\n",
                 exporter->port());
    options.metrics = metrics.get();
  }

  // Plan offsets from the interleaving math.
  std::vector<ResourceVector> stages;
  std::vector<runtime::ExecJobSpec> specs;
  for (ModelKind m : models) {
    stages.push_back(model_profile(m, 1).stage_time);
    specs.push_back({std::string(to_string(m)), stages.back(), 0});
  }
  const InterleavePlan plan = plan_interleave(stages);
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].offset = plan.offsets[i];
  }
  if (options.coordinate) options.slots = plan.slots;

  std::printf("running %zu jobs %s for %.1fs wall "
              "(1 sim second = %.0f ms)...\n",
              specs.size(),
              options.coordinate ? "coordinated (stage barriers)"
                                 : "uncoordinated (token contention)",
              options.run_for, options.time_scale * 1000);

  // Solo baselines first.
  std::vector<double> solo(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    solo[i] = run_solo(specs[i], options).sim_throughput;
  }

  options.gamma_predicted = options.coordinate ? plan.efficiency : 0;
  const auto group = run_group(specs, options);

  std::printf("\n%-12s %12s %12s %8s\n", "model", "solo it/s", "group it/s",
              "norm");
  double total = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    const double norm =
        solo[i] > 0 ? group.jobs[i].sim_throughput / solo[i] : 0;
    total += norm;
    std::printf("%-12s %12.2f %12.2f %8.2f\n", specs[i].name.c_str(), solo[i],
                group.jobs[i].sim_throughput, norm);
  }
  std::printf("%-12s %12s %12s %8.2f\n", "total", "", "", total);
  std::printf("\n(plan: period %.3fs, gamma %.2f, realized gamma %.2f; "
              ">1.0 total means the group beat exclusive serial "
              "execution)\n",
              plan.period, plan.efficiency, group.gamma_realized);

  if (exporter != nullptr) exporter->stop();
  if (tracer != nullptr) {
    obs::attach_log_tracer(nullptr);
    if (tracer->write_json(trace_path)) {
      std::fprintf(stderr, "wrote trace to %s (%zu events)\n",
                   trace_path.c_str(), tracer->recorded());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_path.c_str());
    }
  }
  return 0;
}
