#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/flags.h"
#include "common/logging.h"
#include "obs/http_exporter.h"

namespace muri::bench {

namespace {

// Process-wide obs sinks (set up once by init_obs, torn down at exit).
// Simulations drive the tracer into the manual (sim-time) domain, so the
// exported trace shows the schedule on the simulated timeline.
struct ObsState {
  std::unique_ptr<obs::Tracer> tracer;
  std::unique_ptr<obs::MetricsRegistry> metrics;
  std::unique_ptr<obs::HttpExporter> exporter;
  std::unique_ptr<obs::DecisionLog> decisions;
  std::string trace_path;
  std::string metrics_path;
  std::string decisions_path;
};

ObsState& obs_state() {
  static ObsState state;
  return state;
}

void flush_obs() {
  ObsState& state = obs_state();
  // Tear down anything that references the sinks before the files are
  // written: the log hook holds the tracer, the exporter serves the
  // registry; both must be gone before state's members can die.
  obs::attach_log_tracer(nullptr);
  if (state.exporter != nullptr) state.exporter->stop();
  if (state.tracer != nullptr && !state.trace_path.empty()) {
    if (state.tracer->write_json(state.trace_path)) {
      std::fprintf(stderr, "wrote trace to %s (%zu events, %lld dropped)\n",
                   state.trace_path.c_str(), state.tracer->recorded(),
                   static_cast<long long>(state.tracer->dropped()));
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   state.trace_path.c_str());
    }
  }
  if (state.metrics != nullptr) {
    // Refresh muri_process_uptime_seconds so the written snapshot carries
    // the run's duration, not the near-zero value set at init.
    obs::export_build_info(*state.metrics);
  }
  if (state.metrics != nullptr && !state.metrics_path.empty()) {
    if (state.metrics->write_prometheus(state.metrics_path)) {
      std::fprintf(stderr, "wrote metrics to %s\n",
                   state.metrics_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   state.metrics_path.c_str());
    }
  }
  if (state.decisions != nullptr && !state.decisions_path.empty()) {
    if (state.decisions->write_jsonl(state.decisions_path)) {
      std::fprintf(stderr, "wrote decision log to %s (%lld records)\n",
                   state.decisions_path.c_str(),
                   static_cast<long long>(state.decisions->records()));
    } else {
      std::fprintf(stderr, "failed to write decision log to %s\n",
                   state.decisions_path.c_str());
    }
  }
}

}  // namespace

void init_obs(int argc, const char* const* argv) {
  Flags flags(argc, argv);
  ObsState& state = obs_state();

  const std::string level_text = flags.get("log-level");
  if (!level_text.empty()) {
    LogLevel level = LogLevel::kWarn;
    if (parse_log_level(level_text, level)) {
      set_log_level(level);
    } else {
      std::fprintf(stderr,
                   "ignoring unknown --log-level '%s' "
                   "(use debug|info|warn|error|off)\n",
                   level_text.c_str());
    }
  }

  state.trace_path = flags.get("trace-out");
  state.metrics_path = flags.get("metrics-out");
  state.decisions_path = flags.get("decisions-out");
  const bool serve_metrics = flags.has("metrics-port");
  if (!state.trace_path.empty()) {
    state.tracer = std::make_unique<obs::Tracer>();
    state.tracer->set_enabled(true);
    // Warnings/errors land on the trace timeline next to the spans that
    // explain them.
    obs::attach_log_tracer(state.tracer.get());
  }
  if (!state.metrics_path.empty() || serve_metrics) {
    state.metrics = std::make_unique<obs::MetricsRegistry>();
    // Every metrics surface identifies its build (muri_build_info,
    // muri_process_uptime_seconds) so scraped dashboards can tell runs
    // apart.
    obs::export_build_info(*state.metrics);
  }
  if (!state.decisions_path.empty()) {
    state.decisions = std::make_unique<obs::DecisionLog>();
  }
  if (serve_metrics) {
    state.exporter = std::make_unique<obs::HttpExporter>(*state.metrics);
    std::string error;
    // Port 0 asks the kernel for an ephemeral port (printed below).
    if (state.exporter->start(flags.get_int("metrics-port", 0), &error)) {
      std::fprintf(stderr, "serving metrics on http://127.0.0.1:%d/metrics\n",
                   state.exporter->port());
    } else {
      // The user explicitly asked for a live endpoint; running on without
      // one would look like success to whatever is scraping it. Exit
      // non-zero so the caller (or CI step) sees the failure.
      std::fprintf(stderr, "failed to start metrics exporter: %s\n",
                   error.c_str());
      std::exit(1);
    }
  }
  if (state.tracer != nullptr || state.metrics != nullptr ||
      state.decisions != nullptr) {
    std::atexit(flush_obs);
  }
}

obs::Tracer* obs_tracer() { return obs_state().tracer.get(); }

obs::MetricsRegistry* obs_metrics() { return obs_state().metrics.get(); }

obs::DecisionLog* obs_decisions() { return obs_state().decisions.get(); }

SimOptions default_sim_options(bool durations_known) {
  SimOptions opt;
  opt.cluster.num_machines = 8;
  opt.cluster.gpus_per_machine = 8;
  opt.durations_known = durations_known;
  opt.tracer = obs_tracer();
  opt.metrics = obs_metrics();
  opt.decisions = obs_decisions();
  return opt;
}

namespace {
// Attaches the process-wide decision log (when installed) so every
// scheduler logs provenance even when driven outside run_simulation.
std::unique_ptr<Scheduler> with_obs(std::unique_ptr<Scheduler> s) {
  s->set_decision_log(obs_decisions());
  return s;
}
}  // namespace

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  if (name == "FIFO") return with_obs(std::make_unique<FifoScheduler>());
  if (name == "SRTF") return with_obs(std::make_unique<SrtfScheduler>());
  if (name == "SRSF") return with_obs(std::make_unique<SrsfScheduler>());
  if (name == "Tiresias") return with_obs(std::make_unique<TiresiasScheduler>());
  if (name == "Themis") return with_obs(std::make_unique<ThemisScheduler>());
  if (name == "AntMan") return with_obs(std::make_unique<AntManScheduler>());

  if (name.rfind("Muri", 0) == 0) {
    MuriOptions opt;
    opt.durations_known = name.rfind("Muri-S", 0) == 0;
    // Suffixes after "Muri-S"/"Muri-L": "-2"/"-3"/"-4" (max group size),
    // "-worstorder", "-noblossom", "-nobucket".
    if (name.find("-2") != std::string::npos) opt.max_group_size = 2;
    if (name.find("-3") != std::string::npos) opt.max_group_size = 3;
    if (name.find("-worstorder") != std::string::npos) {
      opt.ordering = OrderingPolicy::kWorst;
    }
    if (name.find("-noblossom") != std::string::npos) opt.use_blossom = false;
    if (name.find("-nobucket") != std::string::npos) opt.bucket_by_gpu = false;
    opt.trace = obs_tracer();
    opt.metrics = obs_metrics();
    opt.decisions = obs_decisions();
    return std::make_unique<MuriScheduler>(opt);
  }
  throw std::invalid_argument("unknown scheduler: " + name);
}

std::vector<SimResult> run_all(const Trace& trace,
                               const std::vector<std::string>& scheduler_names,
                               const SimOptions& options) {
  std::vector<SimResult> results;
  results.reserve(scheduler_names.size());
  for (const std::string& name : scheduler_names) {
    auto scheduler = make_scheduler(name);
    results.push_back(run_simulation(trace, *scheduler, options));
  }
  return results;
}

namespace {
const SimResult& find_result(const std::vector<SimResult>& results,
                             const std::string& name) {
  for (const SimResult& r : results) {
    if (r.scheduler_name == name) return r;
  }
  throw std::invalid_argument("reference scheduler not found: " + name);
}
}  // namespace

void print_normalized_table(const std::string& title,
                            const std::vector<SimResult>& results,
                            const std::string& reference) {
  const SimResult& ref = find_result(results, reference);
  std::printf("%s (normalized to %s; >1 means %s is better)\n", title.c_str(),
              reference.c_str(), reference.c_str());
  std::printf("  %-24s %12s %12s %12s\n", "scheduler", "norm JCT",
              "norm makespan", "norm p99 JCT");
  for (const SimResult& r : results) {
    std::printf("  %-24s %12.2f %12.2f %12.2f\n", r.scheduler_name.c_str(),
                ref.avg_jct > 0 ? r.avg_jct / ref.avg_jct : 0.0,
                ref.makespan > 0 ? r.makespan / ref.makespan : 0.0,
                ref.p99_jct > 0 ? r.p99_jct / ref.p99_jct : 0.0);
  }
}

void print_raw_table(const std::vector<SimResult>& results) {
  std::printf("  %-24s %10s %10s %10s %8s %8s %6s %6s %7s %7s\n",
              "scheduler", "avg JCT", "p99 JCT", "makespan", "queue",
              "block", "width", "rate", "g-pred", "g-real");
  for (const SimResult& r : results) {
    std::printf("  %-24s %10s %10s %10s %8.1f %8.2f %6.2f %6.2f %7.3f %7.3f\n",
                r.scheduler_name.c_str(), fmt_duration(r.avg_jct).c_str(),
                fmt_duration(r.p99_jct).c_str(),
                fmt_duration(r.makespan).c_str(), r.avg_queue_length,
                r.avg_blocking_index, r.avg_group_width,
                r.avg_normalized_rate, r.avg_group_gamma_predicted,
                r.avg_group_gamma_realized);
  }
}

std::string fmt_duration(double seconds) {
  char buf[32];
  if (seconds < 120) {
    std::snprintf(buf, sizeof(buf), "%.0fs", seconds);
  } else if (seconds < 3 * 3600) {
    std::snprintf(buf, sizeof(buf), "%.1fm", seconds / 60);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fh", seconds / 3600);
  }
  return buf;
}

}  // namespace muri::bench
