// Figure 13: impact of the workload distribution — vary the number of job
// types bottlenecked on different resources from 1 (all storage-bound) to
// 4 (the full Table 3 mix). Paper: speedup ≈1 with one type, 1.42×/1.49×
// with two, growing to 2.26× (vs SRTF) and 3.92× (vs Tiresias) with four.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace muri;
using namespace muri::bench;

int main(int argc, char** argv) {
  muri::bench::init_obs(argc, argv);
  // One representative model per bottleneck class, added one at a time:
  // storage -> +cpu -> +gpu -> +network.
  const std::vector<std::vector<ModelKind>> mixes = {
      {ModelKind::kShuffleNet, ModelKind::kResNet18},
      {ModelKind::kShuffleNet, ModelKind::kResNet18, ModelKind::kA2c,
       ModelKind::kDqn},
      {ModelKind::kShuffleNet, ModelKind::kResNet18, ModelKind::kA2c,
       ModelKind::kDqn, ModelKind::kGpt2, ModelKind::kBert},
      {ModelKind::kShuffleNet, ModelKind::kResNet18, ModelKind::kA2c,
       ModelKind::kDqn, ModelKind::kGpt2, ModelKind::kBert,
       ModelKind::kVgg16, ModelKind::kVgg19},
  };

  std::printf("Figure 13 — speedup vs number of bottleneck job types\n\n");
  std::printf("%-10s | %-18s | %-18s\n", "#types", "Muri-S vs SRTF",
              "Muri-L vs Tiresias");
  std::printf("%-10s | %8s %9s | %8s %9s\n", "", "JCT", "makespan", "JCT",
              "makespan");
  const Trace base = standard_trace(2);
  for (size_t k = 0; k < mixes.size(); ++k) {
    const Trace trace = restrict_models(base, mixes[k], 1000 + k);

    const auto known =
        run_all(trace, {"SRTF", "Muri-S"}, default_sim_options(true));
    const auto unknown =
        run_all(trace, {"Tiresias", "Muri-L"}, default_sim_options(false));
    std::printf("%-10zu | %8.2f %9.2f | %8.2f %9.2f\n", k + 1,
                known[0].avg_jct / known[1].avg_jct,
                known[0].makespan / known[1].makespan,
                unknown[0].avg_jct / unknown[1].avg_jct,
                unknown[0].makespan / unknown[1].makespan);
  }
  std::printf("\npaper: ~1x at one type, 1.42x/1.49x at two, up to "
              "2.26x/3.92x at four.\n");
  return 0;
}
