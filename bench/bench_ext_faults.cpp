// Extension — fault-injection sweeps (§3/§5 describe the executor's fault
// path: report, terminate, requeue). Three robustness axes:
//
//  1. per-job MTBF: how gracefully does each scheduler degrade as running
//     jobs crash and requeue? Muri's shorter queues mean a failed job
//     restarts sooner.
//  2. machine MTBF/MTTR: whole fault domains disappear — residents are
//     evicted and requeued, capacity shrinks until repair (plus probation
//     for repeat offenders).
//  3. stragglers: transient per-resource slowdown windows inflate resident
//     stage time without evicting anyone.
#include <cstdio>

#include "bench_util.h"

using namespace muri;
using namespace muri::bench;

namespace {

const std::vector<std::string> kNames = {"SRSF", "Tiresias", "Muri-L"};

std::vector<SimResult> run_row(const Trace& trace,
                               const SimOptions& proto) {
  std::vector<SimResult> out;
  for (const std::string& name : kNames) {
    auto scheduler = make_scheduler(name);
    SimOptions opt = proto;
    // Rebuild the duration-knowledge default for this scheduler.
    const SimOptions def = default_sim_options(scheduler->needs_durations());
    opt.durations_known = def.durations_known;
    out.push_back(run_simulation(trace, *scheduler, opt));
  }
  return out;
}

void print_norm_row(const char* label, const std::vector<SimResult>& row,
                    const std::vector<double>& baseline) {
  std::printf("%16s |", label);
  for (size_t i = 0; i < row.size(); ++i) {
    std::printf(" %9.2f", row[i].avg_jct / baseline[i]);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  muri::bench::init_obs(argc, argv);
  Trace trace = testbed_trace();
  trace.jobs.resize(200);  // keep the sweep quick

  std::printf("Extension — scheduler robustness under fault injection\n");
  std::printf("(200-job testbed prefix; avg JCT normalized to the same "
              "scheduler with faults off)\n");

  // Fault-free baseline, shared by all three sweeps.
  const SimOptions clean = default_sim_options(false);
  const std::vector<SimResult> base = run_row(trace, clean);
  std::vector<double> baseline;
  for (const SimResult& r : base) baseline.push_back(r.avg_jct);

  // -- Sweep 1: per-job crashes ---------------------------------------------
  std::printf("\n[1] per-job faults (requeue + restart penalty)\n");
  std::printf("%16s | %9s %9s %9s\n", "job MTBF (h)", "SRSF", "Tiresias",
              "Muri-L");
  print_norm_row("inf", base, baseline);
  for (double mtbf : {24.0, 8.0, 2.0}) {
    SimOptions opt = clean;
    opt.mtbf_hours = mtbf;
    char label[32];
    std::snprintf(label, sizeof label, "%.0f", mtbf);
    print_norm_row(label, run_row(trace, opt), baseline);
  }

  // -- Sweep 2: machine fault domains ---------------------------------------
  std::printf("\n[2] machine crash/recover (evict + requeue residents; "
              "MTTR 0.5 h, blacklist after 3)\n");
  std::printf("%16s | %9s %9s %9s   failures evictions\n", "machine MTBF (h)",
              "SRSF", "Tiresias", "Muri-L");
  print_norm_row("inf", base, baseline);
  for (double mtbf : {48.0, 16.0, 6.0}) {
    SimOptions opt = clean;
    opt.machine_faults.machine_mtbf_hours = mtbf;
    opt.machine_faults.machine_mttr_hours = 0.5;
    const std::vector<SimResult> row = run_row(trace, opt);
    char label[32];
    std::snprintf(label, sizeof label, "%.0f", mtbf);
    std::printf("%16s |", label);
    for (size_t i = 0; i < row.size(); ++i) {
      std::printf(" %9.2f", row[i].avg_jct / baseline[i]);
    }
    // Event counts are scheduler-independent draws, but eviction counts
    // depend on placement; report the Muri-L run's tallies.
    std::printf("   %8lld %9lld\n",
                static_cast<long long>(row.back().machine_failures),
                static_cast<long long>(row.back().evictions));
  }

  // -- Sweep 3: stragglers --------------------------------------------------
  std::printf("\n[3] transient stragglers (mean window 30 min, per-resource "
              "slowdown up to 3x)\n");
  std::printf("%16s | %9s %9s %9s\n", "windows/mach/h", "SRSF", "Tiresias",
              "Muri-L");
  print_norm_row("0", base, baseline);
  for (double rate : {0.1, 0.5, 2.0}) {
    SimOptions opt = clean;
    opt.machine_faults.straggler_rate_per_hour = rate;
    opt.machine_faults.straggler_severity = 3.0;
    char label[32];
    std::snprintf(label, sizeof label, "%.1f", rate);
    print_norm_row(label, run_row(trace, opt), baseline);
  }

  std::printf("\nAll schedulers finish every job; lower growth = more "
              "graceful degradation.\n");
  return 0;
}
