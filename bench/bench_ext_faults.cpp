// Extension — fault-injection sweep (§3/§5 describe the executor's fault
// path: report, terminate, requeue). How gracefully does each scheduler
// degrade as the per-job MTBF shrinks? Muri's shorter queues mean a failed
// job restarts sooner.
#include <cstdio>

#include "bench_util.h"

using namespace muri;
using namespace muri::bench;

int main() {
  Trace trace = testbed_trace();
  trace.jobs.resize(200);  // keep the sweep quick

  std::printf("Extension — scheduler robustness under fault injection\n");
  std::printf("(200-job testbed prefix; avg JCT normalized to the same "
              "scheduler at MTBF = infinity)\n\n");
  std::printf("%12s | %10s %10s %10s\n", "MTBF (h)", "SRSF", "Tiresias",
              "Muri-L");

  const std::vector<std::string> names = {"SRSF", "Tiresias", "Muri-L"};
  std::vector<double> baseline(names.size(), 0);
  for (double mtbf : {0.0, 24.0, 8.0, 2.0}) {
    std::printf("%12s |", mtbf == 0 ? "inf" : std::to_string(mtbf).substr(0, 4).c_str());
    for (size_t i = 0; i < names.size(); ++i) {
      auto scheduler = make_scheduler(names[i]);
      SimOptions opt = default_sim_options(scheduler->needs_durations());
      opt.mtbf_hours = mtbf;
      const SimResult r = run_simulation(trace, *scheduler, opt);
      if (mtbf == 0) {
        baseline[i] = r.avg_jct;
        std::printf(" %10.2f", 1.0);
      } else {
        std::printf(" %10.2f", r.avg_jct / baseline[i]);
      }
    }
    std::printf("\n");
  }
  std::printf("\nAll schedulers finish every job; lower growth = more "
              "graceful degradation.\n");
  return 0;
}
