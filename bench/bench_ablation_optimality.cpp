// Ablation (§4.2): how far is the multi-round Blossom heuristic from the
// NP-hard optimum (maximum-weight k-uniform hypergraph matching)? We
// brute-force the optimal partition for small job sets and report the
// heuristic's weight ratio — the paper argues the heuristic is good; this
// quantifies it.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "interleave/efficiency.h"
#include "job/model.h"
#include "matching/brute_force.h"
#include "scheduler/muri.h"

using namespace muri;

namespace {

double grouping_weight(const std::vector<ResourceVector>& profiles,
                       const std::vector<std::vector<int>>& groups) {
  double weight = 0;
  for (const auto& group : groups) {
    if (group.size() < 2) continue;
    std::vector<ResourceVector> members;
    for (int idx : group) members.push_back(profiles[static_cast<size_t>(idx)]);
    weight += plan_interleave(members).efficiency;
  }
  return weight;
}

}  // namespace

int main(int argc, char** argv) {
  muri::bench::init_obs(argc, argv);
  std::printf("Ablation — multi-round grouping vs brute-force optimum\n");
  std::printf("(group value = gamma of the group; optimum enumerates every "
              "partition into groups of <= 4)\n\n");
  std::printf("%4s %8s | %10s %10s %8s\n", "n", "trials", "heuristic",
              "optimal", "ratio");

  Rng rng(2718);
  for (int n : {6, 8, 10, 12, 14}) {
    const int trials = 40;
    double heuristic_sum = 0, optimal_sum = 0, worst_ratio = 1.0;
    for (int trial = 0; trial < trials; ++trial) {
      std::vector<ResourceVector> profiles;
      for (int i = 0; i < n; ++i) {
        const ModelKind m = kAllModels[static_cast<size_t>(
            rng.uniform_int(0, kNumModels - 1))];
        profiles.push_back(model_profile(m, 1).stage_time);
      }
      const auto heuristic = multi_round_grouping(profiles, 4);
      const double hw = grouping_weight(profiles, heuristic);

      const Grouping optimal = brute_force_grouping(
          n, 4, [&](const std::vector<int>& members) {
            std::vector<ResourceVector> ms;
            for (int idx : members) {
              ms.push_back(profiles[static_cast<size_t>(idx)]);
            }
            return plan_interleave(ms).efficiency;
          });
      heuristic_sum += hw;
      optimal_sum += optimal.weight;
      if (optimal.weight > 0) {
        worst_ratio = std::min(worst_ratio, hw / optimal.weight);
      }
    }
    std::printf("%4d %8d | %10.3f %10.3f %8.3f (worst %.3f)\n", n, trials,
                heuristic_sum / trials, optimal_sum / trials,
                heuristic_sum / optimal_sum, worst_ratio);
  }
  std::printf("\nFinding: the log2(k)-round heuristic captures roughly "
              "65-75%% of the NP-hard optimum's\ntotal group-gamma on zoo "
              "workloads: round 1's pair matching constrains which 4-way\n"
              "combinations round 2 can still form. It runs in O(n^3) "
              "instead of O(3^n), and Fig. 11\nshows the end-to-end JCT "
              "cost of imperfect matching is small, which is why the "
              "paper's\ntrade-off is sound.\n");
  return 0;
}
