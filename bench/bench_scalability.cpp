// §5 scalability claim: "the centralized scheduler can generate a
// grouping plan for 1,000 jobs in a few seconds". Google-benchmark over
// the multi-round Blossom grouping and its building blocks.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "interleave/efficiency.h"
#include "job/model.h"
#include "matching/blossom.h"
#include "scheduler/muri.h"
#include "sim/fluid.h"

namespace muri {
namespace {

std::vector<ResourceVector> random_profiles(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ResourceVector> profiles;
  profiles.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const ModelKind m = kAllModels[static_cast<size_t>(
        rng.uniform_int(0, kNumModels - 1))];
    profiles.push_back(model_profile(m, 1).stage_time);
  }
  return profiles;
}

void BM_PairwiseEfficiency(benchmark::State& state) {
  const auto profiles = random_profiles(64, 7);
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = profiles[i % profiles.size()];
    const auto& b = profiles[(i * 31 + 7) % profiles.size()];
    benchmark::DoNotOptimize(pairwise_efficiency(a, b));
    ++i;
  }
}
BENCHMARK(BM_PairwiseEfficiency);

void BM_PlanInterleave4(benchmark::State& state) {
  const auto profiles = random_profiles(4, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_interleave(profiles));
  }
}
BENCHMARK(BM_PlanInterleave4);

void BM_FluidRates4(benchmark::State& state) {
  const auto profiles = random_profiles(4, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_min_fair_rates(profiles, 1.15));
  }
}
BENCHMARK(BM_FluidRates4);

void BM_BlossomMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto profiles = random_profiles(n, 17);
  DenseGraph graph(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      graph.set_weight(u, v,
                       pairwise_efficiency(profiles[static_cast<size_t>(u)],
                                           profiles[static_cast<size_t>(v)]));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_weight_matching(graph));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BlossomMatching)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_MultiRoundGrouping(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto profiles = random_profiles(n, 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multi_round_grouping(profiles, 4));
  }
  state.SetComplexityN(n);
}
// The 1,000-job point backs the paper's "a few seconds" claim directly.
BENCHMARK(BM_MultiRoundGrouping)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Arg(1000)->Unit(benchmark::kMillisecond)->Iterations(1)->Complexity();

void BM_GreedyMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto profiles = random_profiles(n, 29);
  DenseGraph graph(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      graph.set_weight(u, v,
                       pairwise_efficiency(profiles[static_cast<size_t>(u)],
                                           profiles[static_cast<size_t>(v)]));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_matching(graph));
  }
}
BENCHMARK(BM_GreedyMatching)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace muri

BENCHMARK_MAIN();
