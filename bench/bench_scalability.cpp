// §5 scalability claim: "the centralized scheduler can generate a
// grouping plan for 1,000 jobs in a few seconds". Google-benchmark over
// the multi-round Blossom grouping and its building blocks, plus a
// jobs × threads scheduling-round sweep that emits a machine-readable
// BENCH_sched_round.json for the CI perf trajectory:
//
//   bench_scalability --json            # full sweep → BENCH_sched_round.json
//   bench_scalability --small --json    # CI smoke variant
//   bench_scalability --out=path.json   # override the output path
//
// Without --json/--small the binary is a plain google-benchmark suite.
// The sweep also enforces the determinism gate: every multi-threaded plan
// is compared against the single-threaded plan and a mismatch fails the
// run (exit 1) — speed without bit-identical output is a bug here.
//
// The sweep additionally runs the incremental-round churn matrix
// (mode × churn-rate × jobs × threads): a persistent scheduler replays a
// seeded arrival/finish sequence in full-rebuild and incremental modes,
// enforces plan equality round for round, and records the speedup in the
// same JSON (configs "rebuild-topk8-churnN" / "incr-topk8-churnN"). The
// full sweep's 10,000-job points back the ≥10× incremental target.
#include <benchmark/benchmark.h>

#include <cstddef>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "interleave/efficiency.h"
#include "job/model.h"
#include "matching/blossom.h"
#include "scheduler/muri.h"
#include "sim/fluid.h"

namespace muri {
namespace {

std::vector<ResourceVector> random_profiles(int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ResourceVector> profiles;
  profiles.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const ModelKind m = kAllModels[static_cast<size_t>(
        rng.uniform_int(0, kNumModels - 1))];
    profiles.push_back(model_profile(m, 1).stage_time);
  }
  return profiles;
}

void BM_PairwiseEfficiency(benchmark::State& state) {
  const auto profiles = random_profiles(64, 7);
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = profiles[i % profiles.size()];
    const auto& b = profiles[(i * 31 + 7) % profiles.size()];
    benchmark::DoNotOptimize(pairwise_efficiency(a, b));
    ++i;
  }
}
BENCHMARK(BM_PairwiseEfficiency);

void BM_PlanInterleave4(benchmark::State& state) {
  const auto profiles = random_profiles(4, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_interleave(profiles));
  }
}
BENCHMARK(BM_PlanInterleave4);

void BM_FluidRates4(benchmark::State& state) {
  const auto profiles = random_profiles(4, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_min_fair_rates(profiles, 1.15));
  }
}
BENCHMARK(BM_FluidRates4);

void BM_BlossomMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto profiles = random_profiles(n, 17);
  DenseGraph graph(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      graph.set_weight(u, v,
                       pairwise_efficiency(profiles[static_cast<size_t>(u)],
                                           profiles[static_cast<size_t>(v)]));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_weight_matching(graph));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BlossomMatching)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_MultiRoundGrouping(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto profiles = random_profiles(n, 23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(multi_round_grouping(profiles, 4));
  }
  state.SetComplexityN(n);
}
// The 1,000-job point backs the paper's "a few seconds" claim directly.
BENCHMARK(BM_MultiRoundGrouping)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Arg(1000)->Unit(benchmark::kMillisecond)->Iterations(1)->Complexity();

void BM_GreedyMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto profiles = random_profiles(n, 29);
  DenseGraph graph(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      graph.set_weight(u, v,
                       pairwise_efficiency(profiles[static_cast<size_t>(u)],
                                           profiles[static_cast<size_t>(v)]));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(greedy_matching(graph));
  }
}
BENCHMARK(BM_GreedyMatching)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Scheduling-round sweep (jobs × threads) → BENCH_sched_round.json.

// Two queue shapes: "buckets4" cycles GPU demand 1/2/4/8 so the round
// groups four independent buckets concurrently (the common production
// shape and where bucket-level parallelism pays), "bucket1" puts every
// job in the single 1-GPU bucket so the serial Blossom matching bounds
// the achievable speedup (the honest worst case).
std::vector<JobView> sweep_queue(int jobs, bool four_buckets,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<JobView> queue;
  queue.reserve(static_cast<size_t>(jobs));
  constexpr int kDemands[4] = {1, 2, 4, 8};
  for (int i = 0; i < jobs; ++i) {
    JobView v;
    v.id = i;
    v.num_gpus = four_buckets ? kDemands[i % 4] : 1;
    v.remaining_time = rng.uniform(10, 3000);
    v.attained_service = rng.uniform(0, 2000);
    v.measured = model_profile(kAllModels[static_cast<size_t>(
                                   rng.uniform_int(0, kNumModels - 1))],
                               v.num_gpus);
    queue.push_back(v);
  }
  return queue;
}

bool same_plan(const std::vector<PlannedGroup>& a,
               const std::vector<PlannedGroup>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].members != b[i].members || a[i].num_gpus != b[i].num_gpus ||
        a[i].mode != b[i].mode || a[i].slots != b[i].slots ||
        a[i].offsets != b[i].offsets ||
        a[i].planned_period != b[i].planned_period) {
      return false;
    }
  }
  return true;
}

struct SweepPoint {
  std::string config;
  int jobs = 0;
  int threads = 0;
  double round_seconds = 0;
  GroupingStats stats;
  int groups = 0;
  bool identical_to_serial = true;
  double speedup_vs_serial = 1.0;
  // Incremental-vs-rebuild ratio at the same (jobs, churn, threads).
  // 0 means "not an incremental point".
  double speedup_vs_rebuild = 0.0;
};

// ---------------------------------------------------------------------------
// Churn sweep: a persistent scheduler survives across rounds while a fixed
// fraction of the queue is replaced each round (finish + arrival pairs).
// Runs every point twice — full rebuild and incremental — on the *same*
// seeded round sequence, so the plans must match round for round (the
// bit-identity contract; any divergence fails the run) and the timing
// ratio is the honest incremental speedup.

std::vector<std::vector<JobView>> churn_rounds(int jobs, double churn,
                                               int num_rounds,
                                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<JobView> queue = sweep_queue(jobs, /*four_buckets=*/true, seed);
  JobId next_id = jobs;
  constexpr int kDemands[4] = {1, 2, 4, 8};
  std::vector<std::vector<JobView>> rounds;
  rounds.push_back(queue);
  for (int r = 1; r < num_rounds; ++r) {
    const int n_churn = std::max(
        1, static_cast<int>(static_cast<double>(jobs) * churn));
    for (int i = 0; i < n_churn; ++i) {
      const auto idx = static_cast<size_t>(
          rng.uniform_int(0, static_cast<int>(queue.size()) - 1));
      queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    for (int i = 0; i < n_churn; ++i) {
      JobView v;
      v.id = next_id++;
      v.num_gpus = kDemands[static_cast<size_t>(rng.uniform_int(0, 3))];
      v.remaining_time = rng.uniform(10, 3000);
      v.attained_service = rng.uniform(0, 2000);
      v.measured = model_profile(kAllModels[static_cast<size_t>(
                                     rng.uniform_int(0, kNumModels - 1))],
                                 v.num_gpus);
      queue.push_back(v);
    }
    rounds.push_back(queue);
  }
  return rounds;
}

struct ModeResult {
  std::vector<double> round_secs;  // measured rounds only
  std::vector<std::vector<PlannedGroup>> plans;  // every round
  GroupingStats stats;  // accumulated over measured rounds
  int groups = 0;
};

ModeResult run_churn_mode(const std::vector<std::vector<JobView>>& rounds,
                          int jobs, bool incremental, int threads,
                          int warmup) {
  MuriOptions opt;
  opt.durations_known = true;
  opt.candidate_cap = jobs;
  opt.top_k = 8;
  opt.component_cap = 16;
  opt.incremental = incremental;
  opt.num_threads = threads;
  MuriScheduler sched(opt);

  SchedulerContext ctx;
  ctx.durations_known = true;
  ctx.total_gpus = jobs;
  ctx.gpus_per_machine = 8;

  ModeResult r;
  for (size_t i = 0; i < rounds.size(); ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    auto plan = sched.schedule(rounds[i], ctx);
    const double sec = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
    if (static_cast<int>(i) >= warmup) {
      r.round_secs.push_back(sec);
      r.stats.accumulate(sched.last_round_stats());
    }
    r.groups = static_cast<int>(plan.size());
    r.plans.push_back(std::move(plan));
  }
  return r;
}

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

bool run_churn_sweep(bool small, std::vector<SweepPoint>& points) {
  const std::vector<int> job_sizes =
      small ? std::vector<int>{96} : std::vector<int>{1000, 10000};
  const std::vector<double> churn_rates =
      small ? std::vector<double>{0.05, 0.10}
            : std::vector<double>{0.02, 0.05, 0.10};
  const std::vector<int> thread_counts{1, 4};
  const int warmup = small ? 1 : 2;
  const int measured = small ? 3 : 5;

  bool ok = true;
  for (const int jobs : job_sizes) {
    for (const double churn : churn_rates) {
      const auto rounds = churn_rounds(jobs, churn, warmup + measured, 4321);
      // The serial full-rebuild plan sequence is the reference every other
      // (mode, threads) combination must reproduce byte for byte.
      std::vector<std::vector<PlannedGroup>> ref_plans;
      double serial_secs[2] = {0, 0};  // [rebuild, incremental]
      for (const int threads : thread_counts) {
        for (const bool incremental : {false, true}) {
          ModeResult r =
              run_churn_mode(rounds, jobs, incremental, threads, warmup);
          SweepPoint p;
          char cfg[64];
          std::snprintf(cfg, sizeof(cfg), "%s-topk8-churn%d",
                        incremental ? "incr" : "rebuild",
                        static_cast<int>(churn * 100 + 0.5));
          p.config = cfg;
          p.jobs = jobs;
          p.threads = threads;
          p.round_seconds = median_of(r.round_secs);
          p.stats = r.stats;
          p.groups = r.groups;
          if (!incremental && threads == thread_counts.front()) {
            ref_plans = r.plans;
          } else {
            p.identical_to_serial = true;
            for (size_t i = 0; i < r.plans.size(); ++i) {
              if (!same_plan(ref_plans[i], r.plans[i])) {
                p.identical_to_serial = false;
                ok = false;
                std::fprintf(stderr,
                             "EQUIVALENCE VIOLATION: %s jobs=%d threads=%d "
                             "diverges from serial rebuild in round %zu\n",
                             p.config.c_str(), jobs, threads, i);
                break;
              }
            }
          }
          if (threads == thread_counts.front()) {
            serial_secs[incremental ? 1 : 0] = p.round_seconds;
            p.speedup_vs_serial = 1.0;
          } else {
            p.speedup_vs_serial =
                serial_secs[incremental ? 1 : 0] / p.round_seconds;
          }
          if (incremental) {
            // The rebuild point for this (jobs, churn, threads) was pushed
            // immediately before this one.
            p.speedup_vs_rebuild =
                points.back().round_seconds / p.round_seconds;
          }
          char speedup[32] = "";
          if (incremental) {
            std::snprintf(speedup, sizeof(speedup), "  speedup=%.2fx",
                          p.speedup_vs_rebuild);
          }
          std::printf(
              "%-20s jobs=%-5d threads=%d  round=%9.3f ms  "
              "dirty=%lld reused=%lld/%lld comp=%lld/%lld%s%s\n",
              p.config.c_str(), jobs, threads, p.round_seconds * 1e3,
              static_cast<long long>(p.stats.dirty_jobs),
              static_cast<long long>(p.stats.edges_reused),
              static_cast<long long>(p.stats.edges_reused +
                                     p.stats.edges_patched),
              static_cast<long long>(p.stats.components_reused),
              static_cast<long long>(p.stats.components_total), speedup,
              p.identical_to_serial ? "" : "  MISMATCH");
          std::fflush(stdout);
          points.push_back(std::move(p));
        }
      }
    }
  }
  return ok;
}

int run_sweep(bool small, const std::string& out_path) {
  const std::vector<int> job_sizes =
      small ? std::vector<int>{48, 96} : std::vector<int>{128, 256, 512};
  const std::vector<int> thread_counts =
      small ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};
  const int reps = small ? 3 : 5;

  std::vector<SweepPoint> points;
  bool determinism_ok = true;
  for (const bool four_buckets : {true, false}) {
    const char* config = four_buckets ? "buckets4" : "bucket1";
    for (const int jobs : job_sizes) {
      const auto queue = sweep_queue(jobs, four_buckets, 1234);
      SchedulerContext ctx;
      ctx.durations_known = true;
      ctx.total_gpus = four_buckets ? jobs : jobs / 2;
      ctx.gpus_per_machine = 8;

      std::vector<PlannedGroup> serial_plan;
      double serial_seconds = 0;
      for (const int threads : thread_counts) {
        MuriOptions opt;
        opt.durations_known = true;
        opt.candidate_cap = jobs;  // group the whole queue, no 192 clamp
        opt.num_threads = threads;
        MuriScheduler sched(opt);

        SweepPoint p;
        p.config = config;
        p.jobs = jobs;
        p.threads = threads;
        p.round_seconds = 1e300;
        std::vector<PlannedGroup> plan;
        for (int rep = 0; rep < reps; ++rep) {
          const auto t0 = std::chrono::steady_clock::now();
          plan = sched.schedule(queue, ctx);
          const double sec =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
          p.round_seconds = std::min(p.round_seconds, sec);
        }
        p.stats = sched.last_round_stats();
        p.groups = static_cast<int>(plan.size());
        if (threads == 1) {
          serial_plan = plan;
          serial_seconds = p.round_seconds;
        } else {
          p.identical_to_serial = same_plan(serial_plan, plan);
          p.speedup_vs_serial = serial_seconds / p.round_seconds;
          if (!p.identical_to_serial) {
            determinism_ok = false;
            std::fprintf(stderr,
                         "DETERMINISM VIOLATION: %s jobs=%d threads=%d "
                         "diverges from the serial plan\n",
                         config, jobs, threads);
          }
        }
        std::printf(
            "%-8s jobs=%-4d threads=%d  round=%8.3f ms  graph=%7.3f ms  "
            "match=%7.3f ms  cache=%lld/%lld  speedup=%.2fx%s\n",
            p.config.c_str(), jobs, threads, p.round_seconds * 1e3,
            p.stats.graph_build_seconds * 1e3, p.stats.matching_seconds * 1e3,
            static_cast<long long>(p.stats.cache_hits),
            static_cast<long long>(p.stats.cache_misses),
            p.speedup_vs_serial, p.identical_to_serial ? "" : "  MISMATCH");
        std::fflush(stdout);
        points.push_back(std::move(p));
      }
    }
  }

  const bool churn_ok = run_churn_sweep(small, points);
  determinism_ok = determinism_ok && churn_ok;

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"sched_round\",\n");
  std::fprintf(f, "  \"small\": %s,\n", small ? "true" : "false");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"determinism_ok\": %s,\n",
               determinism_ok ? "true" : "false");
  std::fprintf(f, "  \"sweep\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(
        f,
        "    {\"config\": \"%s\", \"jobs\": %d, \"threads\": %d, "
        "\"round_seconds\": %.9f, \"graph_build_seconds\": %.9f, "
        "\"matching_seconds\": %.9f, \"cache_hits\": %lld, "
        "\"cache_misses\": %lld, \"matchings_run\": %lld, \"groups\": %d, "
        "\"dirty_jobs\": %lld, \"edges_reused\": %lld, "
        "\"edges_patched\": %lld, \"components_total\": %lld, "
        "\"components_reused\": %lld, \"identical_to_serial\": %s, "
        "\"speedup_vs_serial\": %.4f, \"speedup_vs_rebuild\": %.4f}%s\n",
        p.config.c_str(), p.jobs, p.threads, p.round_seconds,
        p.stats.graph_build_seconds, p.stats.matching_seconds,
        static_cast<long long>(p.stats.cache_hits),
        static_cast<long long>(p.stats.cache_misses),
        static_cast<long long>(p.stats.matchings_run), p.groups,
        static_cast<long long>(p.stats.dirty_jobs),
        static_cast<long long>(p.stats.edges_reused),
        static_cast<long long>(p.stats.edges_patched),
        static_cast<long long>(p.stats.components_total),
        static_cast<long long>(p.stats.components_reused),
        p.identical_to_serial ? "true" : "false", p.speedup_vs_serial,
        p.speedup_vs_rebuild, i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return determinism_ok ? 0 : 1;
}

}  // namespace
}  // namespace muri

int main(int argc, char** argv) {
  muri::Flags flags(argc, argv);
  if (flags.has("json") || flags.has("small")) {
    return muri::run_sweep(flags.has("small"),
                           flags.get("out", "BENCH_sched_round.json"));
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
