// Incremental-equivalence driver for the CI gate (DESIGN.md "Incremental
// scheduling rounds"): MuriOptions::incremental is a pure latency knob,
// so everything observable must be bit-identical to the full rebuild.
// Two layers of evidence, both enforced here:
//
//  - Simulation level: run the same seeded Philly-like trace (job faults
//    and machine crash/repair enabled, so eviction/requeue churn hits the
//    incremental caches) through a rebuild scheduler and an incremental
//    one. The deterministic slice of the SimResult (everything except
//    scheduler_wall_ms), the DecisionLog JSONL, and the Chrome trace JSON
//    (driven in simulated time) must match byte for byte.
//
//  - Scheduler level: a persistent scheduler pair over a randomized
//    churned queue. Every (mode, threads) combination must reproduce the
//    serial rebuild's plan bit-for-bit every round — the same reference
//    discipline as bench_scalability's determinism gate — and the
//    attached DecisionLogs must be byte-equal at the end.
//
//   bench_equivalence --seeds=13,99 --threads=1,4 --topk=0,8 \
//       [--churn=0.05] [--jobs=200] [--rounds=16] [--sim-jobs=160]
//
// Exits 0 when every combination matches, 1 on the first divergence
// (all combinations are still run and reported).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "job/model.h"
#include "job/trace.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "scheduler/muri.h"
#include "sim/simulator.h"

namespace {

using namespace muri;

std::vector<int> parse_int_list(const std::string& csv,
                                std::vector<int> fallback) {
  if (csv.empty()) return fallback;
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string tok =
        csv.substr(pos, comma == std::string::npos ? csv.size() - pos
                                                   : comma - pos);
    if (!tok.empty()) out.push_back(std::stoi(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

// The deterministic slice of a SimResult (the bench_recovery discipline:
// everything except wall-clock accounting), serialized byte-stably so a
// plain string compare is the assertion.
std::string result_fingerprint(const SimResult& r) {
  std::string out = "{\"scheduler\":\"" + r.scheduler_name + "\"";
  const auto num = [&out](const char* key, double v) {
    out += ",\"";
    out += key;
    out += "\":";
    obs::append_json_double(out, v);
  };
  num("avg_jct", r.avg_jct);
  num("p99_jct", r.p99_jct);
  num("makespan", r.makespan);
  num("avg_queue_length", r.avg_queue_length);
  num("avg_blocking_index", r.avg_blocking_index);
  for (std::size_t i = 0; i < r.avg_utilization.size(); ++i) {
    num("util", r.avg_utilization[i]);
    num("busy", r.resource_busy_seconds[i]);
  }
  num("gamma_pred", r.avg_group_gamma_predicted);
  num("gamma_real", r.avg_group_gamma_realized);
  num("gamma_err", r.avg_group_gamma_error);
  num("finished", r.finished_jobs);
  num("unfinished", r.unfinished_jobs);
  num("faults", static_cast<double>(r.faults));
  num("restarts", static_cast<double>(r.restarts));
  num("machine_failures", static_cast<double>(r.machine_failures));
  num("evictions", static_cast<double>(r.evictions));
  num("invocations", static_cast<double>(r.scheduler_invocations));
  out += ",\"jcts\":[";
  for (std::size_t i = 0; i < r.jcts.size(); ++i) {
    if (i != 0) out += ',';
    obs::append_json_double(out, r.jcts[i]);
  }
  out += "]}";
  return out;
}

MuriOptions make_options(int top_k, int threads, bool incremental,
                         bool durations_known) {
  MuriOptions opt;
  opt.durations_known = durations_known;
  opt.num_threads = threads;
  opt.top_k = top_k;
  opt.component_cap = 16;
  opt.candidate_cap = 256;
  opt.incremental = incremental;
  return opt;
}

// --- Simulation level ---------------------------------------------------

struct SimRun {
  std::string result;
  std::string decisions;
  std::string trace;
};

SimRun run_sim(const Trace& trace, const MuriOptions& muri_options) {
  obs::Tracer tracer;
  obs::DecisionLog log;
  SimOptions sim;
  sim.cluster.num_machines = 8;
  sim.cluster.gpus_per_machine = 8;
  sim.schedule_interval = 120;
  sim.restart_penalty = 10;
  sim.mtbf_hours = 2.0;
  sim.machine_faults.machine_mtbf_hours = 6.0;
  sim.machine_faults.machine_mttr_hours = 0.2;
  sim.max_time = 14 * 24 * 3600;
  sim.durations_known = muri_options.durations_known;
  sim.tracer = &tracer;
  sim.decisions = &log;
  MuriScheduler scheduler(muri_options);
  const SimResult result = run_simulation(trace, scheduler, sim);
  SimRun out;
  out.result = result_fingerprint(result);
  out.decisions = log.jsonl();
  out.trace = tracer.chrome_trace_json();
  return out;
}

bool sim_level_check(int seed, int threads, int top_k, bool known,
                     int sim_jobs) {
  PhillyTraceOptions trace_options;
  trace_options.name = "equivalence";
  trace_options.num_jobs = sim_jobs;
  trace_options.seed = static_cast<std::uint64_t>(seed);
  trace_options.jobs_per_hour = 60;
  trace_options.duration_log_mean = 6.0;
  trace_options.max_duration = 4 * 3600;
  const Trace trace = generate_philly_like(trace_options);

  const SimRun want =
      run_sim(trace, make_options(top_k, threads, /*incremental=*/false,
                                  known));
  const SimRun got =
      run_sim(trace, make_options(top_k, threads, /*incremental=*/true,
                                  known));
  bool ok = true;
  if (want.result != got.result) {
    std::fprintf(stderr, "  SIM RESULT DIVERGED\n  want %s\n  got  %s\n",
                 want.result.c_str(), got.result.c_str());
    ok = false;
  }
  if (want.decisions != got.decisions) {
    std::fprintf(stderr, "  DECISION LOG DIVERGED (%zu vs %zu bytes)\n",
                 want.decisions.size(), got.decisions.size());
    ok = false;
  }
  if (want.trace != got.trace) {
    std::fprintf(stderr, "  TRACE DIVERGED (%zu vs %zu bytes)\n",
                 want.trace.size(), got.trace.size());
    ok = false;
  }
  std::printf("sim    seed=%-4d threads=%d topk=%d %-6s jobs=%-5d %s\n",
              seed, threads, top_k, known ? "muri-s" : "muri-l", sim_jobs,
              ok ? "ok" : "DIVERGED");
  return ok;
}

// --- Scheduler level ----------------------------------------------------

std::vector<JobView> make_queue(Rng& rng, JobId& next_id, int n) {
  std::vector<JobView> queue;
  queue.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    JobView v;
    v.id = next_id++;
    v.num_gpus = 1 << rng.uniform_int(0, 3);
    v.submit_time = rng.uniform(0, 500);
    v.attained_service = rng.uniform(0, 2000);
    v.remaining_time = rng.uniform(10, 3000);
    v.measured = model_profile(
        kAllModels[static_cast<std::size_t>(
            rng.uniform_int(0, kNumModels - 1))],
        v.num_gpus);
    queue.push_back(v);
  }
  return queue;
}

void churn_queue(Rng& rng, JobId& next_id, double churn,
                 std::vector<JobView>& queue) {
  const int n = std::max(
      1, static_cast<int>(churn * static_cast<double>(queue.size())));
  for (int i = 0; i < n && !queue.empty(); ++i) {
    const auto victim = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(queue.size()) - 1));
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  const auto fresh = make_queue(rng, next_id, n);
  queue.insert(queue.end(), fresh.begin(), fresh.end());
  for (JobView& v : queue) {
    if (rng.uniform_int(0, 3) == 0) v.attained_service += rng.uniform(0, 50);
  }
}

bool same_plan(const std::vector<PlannedGroup>& a,
               const std::vector<PlannedGroup>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].members != b[i].members) return false;
    if (a[i].num_gpus != b[i].num_gpus) return false;
    if (a[i].mode != b[i].mode) return false;
    if (a[i].slots != b[i].slots) return false;
    if (a[i].offsets != b[i].offsets) return false;
    if (a[i].planned_period != b[i].planned_period) return false;  // bitwise
  }
  return true;
}

// One seeded churn story, replayed by every (mode, threads) combination.
// The serial rebuild is the reference for all of them — incremental must
// match it at every thread count, not merely match rebuild at its own.
bool sched_level_check(int seed, const std::vector<int>& thread_list,
                       int top_k, bool known, double churn, int jobs,
                       int rounds) {
  std::vector<std::vector<JobView>> queues;
  {
    Rng rng(static_cast<std::uint64_t>(seed));
    JobId next_id = 0;
    auto queue = make_queue(rng, next_id, jobs);
    for (int r = 0; r < rounds; ++r) {
      queues.push_back(queue);
      churn_queue(rng, next_id, churn, queue);
    }
  }
  SchedulerContext ctx;
  ctx.total_gpus = jobs;
  ctx.gpus_per_machine = 8;
  ctx.durations_known = known;

  std::vector<std::vector<PlannedGroup>> reference;
  std::string reference_log;
  bool ok = true;
  for (bool incremental : {false, true}) {
    for (int threads : thread_list) {
      MuriScheduler sched(make_options(top_k, threads, incremental, known));
      obs::DecisionLog log;
      sched.set_decision_log(&log);
      for (int r = 0; r < rounds; ++r) {
        auto plan = sched.schedule(queues[static_cast<std::size_t>(r)], ctx);
        if (reference.size() <= static_cast<std::size_t>(r)) {
          reference.push_back(std::move(plan));
        } else if (!same_plan(reference[static_cast<std::size_t>(r)], plan)) {
          std::fprintf(stderr,
                       "  PLAN DIVERGED seed=%d topk=%d %s threads=%d "
                       "round=%d\n",
                       seed, top_k, incremental ? "incr" : "rebuild", threads,
                       r);
          ok = false;
        }
      }
      if (reference_log.empty()) {
        reference_log = log.jsonl();
      } else if (log.jsonl() != reference_log) {
        std::fprintf(stderr,
                     "  DECISION LOG DIVERGED seed=%d topk=%d %s threads=%d "
                     "(%zu vs %zu bytes)\n",
                     seed, top_k, incremental ? "incr" : "rebuild", threads,
                     log.jsonl().size(), reference_log.size());
        ok = false;
      }
    }
  }
  std::printf(
      "sched  seed=%-4d threads={...} topk=%d %-6s jobs=%-5d churn=%.0f%% "
      "rounds=%d %s\n",
      seed, top_k, known ? "muri-s" : "muri-l", jobs, churn * 100, rounds,
      ok ? "ok" : "DIVERGED");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const auto seeds = parse_int_list(flags.get("seeds"), {13, 99});
  const auto threads = parse_int_list(flags.get("threads"), {1, 4});
  const auto topks = parse_int_list(flags.get("topk"), {0, 8});
  const double churn = flags.get_double("churn", 0.05);
  const int jobs = flags.get_int("jobs", 200);
  const int rounds = flags.get_int("rounds", 16);
  const int sim_jobs = flags.get_int("sim-jobs", 160);

  bool ok = true;
  for (int seed : seeds) {
    for (int top_k : topks) {
      for (bool known : {false, true}) {
        ok = sched_level_check(seed, threads, top_k, known, churn, jobs,
                               rounds) &&
             ok;
        for (int t : threads) {
          ok = sim_level_check(seed, t, top_k, known, sim_jobs) && ok;
        }
      }
    }
  }
  std::printf("%s\n", ok ? "equivalence: all combinations bit-identical"
                         : "equivalence: DIVERGENCE DETECTED");
  return ok ? 0 : 1;
}
