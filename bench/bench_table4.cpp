// Table 4: testbed experiment with KNOWN job durations.
// 64-GPU cluster, 400-job busiest-interval trace; SRTF and SRSF vs Muri-S.
// Paper: norm JCT 2.12 / 2.03, norm makespan 1.56 / 1.59, norm p99 JCT
// 3.31 / 3.82 (all relative to Muri-S = 1).
#include <cstdio>

#include "bench_util.h"

using namespace muri;
using namespace muri::bench;

int main(int argc, char** argv) {
  muri::bench::init_obs(argc, argv);
  const Trace trace = testbed_trace();
  std::printf("Table 4 — testbed (64 GPUs, %zu jobs), durations known\n\n",
              trace.jobs.size());
  const auto results =
      run_all(trace, {"SRTF", "SRSF", "Muri-S"}, default_sim_options(true));
  print_normalized_table("normalized metrics", results, "Muri-S");
  std::printf("\nraw metrics\n");
  print_raw_table(results);
  std::printf("\npaper: SRTF 2.12/1.56/3.31, SRSF 2.03/1.59/3.82 "
              "(JCT/makespan/p99 vs Muri-S)\n");
  return 0;
}
