// Extension ablation (§4.2 "Handling multi-GPU jobs", Fig. 7): what if
// Muri did NOT bucket jobs by GPU count? Mixed-size groups interact with
// intra-job synchronization; the cascade penalty models Fig. 7's
// cross-group slowdown. The paper avoids this by design; this bench shows
// what the design avoids.
#include <cstdio>

#include "bench_util.h"

using namespace muri;
using namespace muri::bench;

int main(int argc, char** argv) {
  muri::bench::init_obs(argc, argv);
  std::printf("Ablation — GPU bucketing on vs off "
              "(normalized to Muri-L; >1 = worse)\n\n");
  std::printf("%-10s | %10s %10s\n", "trace", "JCT", "makespan");
  for (int id = 1; id <= 2; ++id) {
    const Trace trace = standard_trace(id);
    const auto results = run_all(trace, {"Muri-L", "Muri-L-nobucket"},
                                 default_sim_options(false));
    const SimResult& base = results[0];
    const SimResult& nobucket = results[1];
    std::printf("%-10s | %10.3f %10.3f\n", trace.name.c_str(),
                nobucket.avg_jct / base.avg_jct,
                nobucket.makespan / base.makespan);
  }
  std::printf("\nBucketing avoids the Fig. 7 cascade: disabling it lets a "
              "distributed job interleave\nwith different partners per GPU "
              "and pay the synchronization penalty.\n");
  return 0;
}
