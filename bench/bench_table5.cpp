// Table 5: testbed experiment with UNKNOWN job durations.
// 64-GPU cluster, 400-job busiest-interval trace; Tiresias and Themis vs
// Muri-L. Paper: norm JCT 2.59 / 3.56, norm makespan 1.48 / 1.47, norm
// p99 JCT 2.54 / 2.60 (relative to Muri-L = 1).
#include <cstdio>

#include "bench_util.h"

using namespace muri;
using namespace muri::bench;

int main(int argc, char** argv) {
  muri::bench::init_obs(argc, argv);
  const Trace trace = testbed_trace();
  std::printf("Table 5 — testbed (64 GPUs, %zu jobs), durations unknown\n\n",
              trace.jobs.size());
  const auto results = run_all(trace, {"Tiresias", "Themis", "Muri-L"},
                               default_sim_options(false));
  print_normalized_table("normalized metrics", results, "Muri-L");
  std::printf("\nraw metrics\n");
  print_raw_table(results);
  std::printf("\npaper: Tiresias 2.59/1.48/2.54, Themis 3.56/1.47/2.60 "
              "(JCT/makespan/p99 vs Muri-L)\n");
  return 0;
}
