// Figure 10: trace-driven simulations with UNKNOWN durations on traces
// 1–4 and 1'–4' — Tiresias, AntMan, Themis vs Muri-L. Paper bands:
// avg JCT 1.53–6.15×, makespan 1–1.55×, p99 JCT 1.21–5.37×; AntMan's
// makespan/tail beat Tiresias/Themis in some cases but its FIFO
// non-preemptive admission hurts its average JCT.
#include <cstdio>

#include "bench_util.h"

using namespace muri;
using namespace muri::bench;

int main(int argc, char** argv) {
  muri::bench::init_obs(argc, argv);
  std::printf("Figure 10 — simulation, durations unknown "
              "(vs Muri-L)\n\n");
  std::printf("%-10s | %-22s | %-22s | %-22s\n", "trace",
              "Tiresias (JCT mk p99)", "AntMan (JCT mk p99)",
              "Themis (JCT mk p99)");
  for (int id = 1; id <= 4; ++id) {
    for (bool zeroed : {false, true}) {
      Trace trace = standard_trace(id);
      if (zeroed) trace = zero_arrivals(std::move(trace));
      const auto results =
          run_all(trace, {"Tiresias", "AntMan", "Themis", "Muri-L"},
                  default_sim_options(false));
      const SimResult& muri = results[3];
      auto cell = [&](const SimResult& r) {
        static char buf[64];
        std::snprintf(buf, sizeof(buf), "%5.2f %5.2f %5.2f",
                      r.avg_jct / muri.avg_jct, r.makespan / muri.makespan,
                      r.p99_jct / muri.p99_jct);
        return std::string(buf);
      };
      std::printf("%-10s | %-22s | %-22s | %-22s\n", trace.name.c_str(),
                  cell(results[0]).c_str(), cell(results[1]).c_str(),
                  cell(results[2]).c_str());
    }
  }
  std::printf("\npaper bands: JCT 1.53-6.15x, makespan 1-1.55x, "
              "p99 1.21-5.37x.\n");
  return 0;
}
