// Figure 8: detailed testbed metrics — queue length, blocking index, and
// IO/CPU/GPU utilization over time, for the duration-known schedulers
// (SRTF, SRSF, Muri-S) and duration-unknown ones (Tiresias, Themis,
// Muri-L). The paper plots full curves; we print a downsampled series per
// scheduler plus the time-weighted averages the curves integrate to.
#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace muri;
using namespace muri::bench;

namespace {

void print_series(const char* label,
                  const std::vector<SeriesRecorder::Point>& points,
                  int samples) {
  std::printf("    %-10s", label);
  if (points.empty()) {
    std::printf(" (empty)\n");
    return;
  }
  const size_t step = std::max<size_t>(1, points.size() / samples);
  for (size_t i = 0; i < points.size(); i += step) {
    std::printf(" %6.1f", points[i].value);
  }
  std::printf("\n");
}

void block(const char* title, const Trace& trace,
           const std::vector<std::string>& names, bool known) {
  SimOptions opt = default_sim_options(known);
  opt.record_series = true;
  std::printf("%s\n", title);
  for (const std::string& name : names) {
    auto scheduler = make_scheduler(name);
    const SimResult r = run_simulation(trace, *scheduler, opt);
    std::printf("  %s: avg queue=%.1f avg blocking=%.2f "
                "avg util io/cpu/gpu/net = %.2f/%.2f/%.2f/%.2f\n",
                r.scheduler_name.c_str(), r.avg_queue_length,
                r.avg_blocking_index, r.avg_utilization[0],
                r.avg_utilization[1], r.avg_utilization[2],
                r.avg_utilization[3]);
    print_series("queue", r.queue_series, 12);
    print_series("blocking", r.blocking_series, 12);
    print_series("io util", r.util_series[0], 12);
    print_series("cpu util", r.util_series[1], 12);
    print_series("gpu util", r.util_series[2], 12);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  muri::bench::init_obs(argc, argv);
  const Trace trace = testbed_trace();
  std::printf("Figure 8 — detailed testbed metrics over time "
              "(12 samples per curve)\n\n");
  block("(a) durations known", trace, {"SRTF", "SRSF", "Muri-S"}, true);
  block("(b) durations unknown", trace, {"Tiresias", "Themis", "Muri-L"},
        false);
  std::printf("paper shape: Muri holds the shortest queues, the lowest "
              "blocking index,\nand the highest resource utilization in "
              "both regimes.\n");
  return 0;
}
