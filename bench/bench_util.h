// Shared helpers for the per-table/figure bench binaries.
//
// Every bench regenerates one table or figure from the paper: it builds
// the workload, runs the schedulers through the simulator (or the live
// executor), and prints the same rows/series the paper reports, with
// metrics normalized the way the paper normalizes them (baseline / Muri,
// so larger = Muri wins by that factor).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "scheduler/baselines.h"
#include "scheduler/muri.h"
#include "sim/simulator.h"

namespace muri::bench {

// Shared observability plumbing: call once at the top of main(). Parses
// the common flags
//
//   --trace-out=<path>     dump a Chrome trace_event JSON of every run
//   --metrics-out=<path>   dump a Prometheus text metrics snapshot
//   --decisions-out=<path> dump the decision-provenance JSONL (one record
//                          per scheduling choice; see obs/provenance.h)
//   --metrics-port=<p>    serve live Prometheus text at
//                         http://127.0.0.1:<p>/metrics (and JSON at
//                         /metrics.json) for the life of the process;
//                         port 0 picks an ephemeral port (printed to
//                         stderr)
//   --log-level=<l>       debug|info|warn|error|off (default warn)
//
// and, when any sink flag is given, installs a process-wide tracer /
// metrics registry / decision log that default_sim_options() and
// make_scheduler() attach to every simulation and scheduler automatically — so each bench
// binary gets schedule dumps without per-binary plumbing. With a tracer
// installed, MURI_LOG warnings/errors are mirrored onto the trace
// timeline. Files are written at normal process exit. With no flags,
// both accessors stay null and nothing is recorded.
void init_obs(int argc, const char* const* argv);

// The process-wide sinks installed by init_obs (null when unset). Exposed
// so a bench that drives the live executor can pass the tracer along.
obs::Tracer* obs_tracer();
obs::MetricsRegistry* obs_metrics();
obs::DecisionLog* obs_decisions();

// The evaluation cluster: 8 machines × 8 GPUs (§6.1). Carries the
// init_obs() sinks when they are installed.
SimOptions default_sim_options(bool durations_known);

// Fresh scheduler instances by canonical name: "FIFO", "SRTF", "SRSF",
// "Tiresias", "Themis", "AntMan", "Muri-S", "Muri-L". Muri variants accept
// the MuriOptions overrides below. Throws std::invalid_argument on an
// unknown name.
std::unique_ptr<Scheduler> make_scheduler(const std::string& name);

// Runs `scheduler_names` over `trace` (fresh scheduler per run) and
// returns the results in order.
std::vector<SimResult> run_all(const Trace& trace,
                               const std::vector<std::string>& scheduler_names,
                               const SimOptions& options);

// Prints a Table 4/5-style block: normalized JCT / makespan / 99th %-ile
// JCT of every result relative to the result named `reference`
// (baseline ÷ reference, so the reference row prints 1.00).
void print_normalized_table(const std::string& title,
                            const std::vector<SimResult>& results,
                            const std::string& reference);

// Prints raw metrics for every result (absolute seconds), for the
// EXPERIMENTS.md record.
void print_raw_table(const std::vector<SimResult>& results);

// Formats seconds as a compact human-readable duration ("3.2h").
std::string fmt_duration(double seconds);

}  // namespace muri::bench
