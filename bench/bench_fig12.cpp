// Figure 12: impact of the number of jobs in one group. Muri-L with max
// group size 2/3/4 vs AntMan on traces 1–4 with all submissions at t=0
// (the paper zeroes arrivals here to maximize contention). Paper: Muri
// beats AntMan at every group size; JCT/makespan improve with group size,
// with 2-job grouping close to (sometimes better than) 3-job grouping.
#include <cstdio>

#include "bench_util.h"

using namespace muri;
using namespace muri::bench;

int main(int argc, char** argv) {
  muri::bench::init_obs(argc, argv);
  std::printf("Figure 12 — max jobs per group (normalized to AntMan; "
              "<1 = better than AntMan)\n\n");
  std::printf("%-8s | %-26s | %-26s\n", "trace", "avg JCT vs AntMan",
              "makespan vs AntMan");
  std::printf("%-8s | %8s %8s %8s | %8s %8s %8s\n", "", "Muri-2", "Muri-3",
              "Muri-4", "Muri-2", "Muri-3", "Muri-4");
  for (int id = 1; id <= 4; ++id) {
    const Trace trace = zero_arrivals(standard_trace(id));
    const auto results =
        run_all(trace, {"AntMan", "Muri-L-2", "Muri-L-3", "Muri-L"},
                default_sim_options(false));
    const SimResult& antman = results[0];
    std::printf("%-8s | %8.2f %8.2f %8.2f | %8.2f %8.2f %8.2f\n",
                trace.name.c_str(), results[1].avg_jct / antman.avg_jct,
                results[2].avg_jct / antman.avg_jct,
                results[3].avg_jct / antman.avg_jct,
                results[1].makespan / antman.makespan,
                results[2].makespan / antman.makespan,
                results[3].makespan / antman.makespan);
  }
  std::printf("\npaper: all Muri variants beat AntMan; metrics improve "
              "with group size, 2-job close to 3-job.\n");
  return 0;
}
