// Figure 14: impact of inaccurate profiling. Profiling noise n_p scales
// each measured stage duration by a uniform factor in [1-n_p, 1+n_p].
// Paper: normalized avg JCT grows from 1× to ~1.3× as n_p goes 0 → 1
// (under ~1% degradation at realistic n_p ≤ 0.2); makespan stays ~1×.
#include <cstdio>

#include "bench_util.h"

using namespace muri;
using namespace muri::bench;

int main(int argc, char** argv) {
  muri::bench::init_obs(argc, argv);
  // Noise only matters where grouping happens, i.e. under contention, so
  // we sweep on the (contended) testbed trace; the paper's lightly loaded
  // trace explains its flat makespan, which the long-job critical path
  // reproduces here as well.
  const Trace trace = testbed_trace();

  std::printf("Figure 14 — profiling-noise sensitivity (Muri-L, testbed "
              "trace)\n\n");
  std::printf("%6s %12s %14s\n", "noise", "norm JCT", "norm makespan");

  double base_jct = 0, base_mk = 0;
  for (double noise : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    SimOptions opt = default_sim_options(false);
    opt.profiler.noise = noise;
    // Per-job noise draws: disable the per-model cache so every profiling
    // session re-rolls the factor (the paper perturbs each job).
    opt.profiler.cache_by_model = noise == 0.0;
    auto scheduler = make_scheduler("Muri-L");
    const SimResult r = run_simulation(trace, *scheduler, opt);
    if (noise == 0.0) {
      base_jct = r.avg_jct;
      base_mk = r.makespan;
    }
    std::printf("%6.1f %12.3f %14.3f\n", noise, r.avg_jct / base_jct,
                r.makespan / base_mk);
  }
  std::printf("\npaper: JCT degrades to ~1.3x at n_p=1, <1%% at n_p<=0.2; "
              "makespan flat.\n");
  return 0;
}
