// Figure 11: impact of the scheduling-algorithm design — Muri-L vs
// Muri-L with the WORST stage ordering and Muri-L WITHOUT the
// Blossom-based multi-round grouping (priority-order packing instead).
// Paper: worst ordering degrades both metrics; no-Blossom costs up to
// +14% avg JCT and +6% makespan.
#include <cstdio>

#include "bench_util.h"

using namespace muri;
using namespace muri::bench;

int main(int argc, char** argv) {
  muri::bench::init_obs(argc, argv);
  std::printf("Figure 11 — design ablations (values normalized to Muri-L; "
              ">1 = worse than Muri-L)\n\n");
  std::printf("%-8s | %-19s | %-19s\n", "trace", "worst ordering",
              "w/o Blossom");
  std::printf("%-8s | %9s %9s | %9s %9s\n", "", "JCT", "makespan", "JCT",
              "makespan");
  for (int id = 1; id <= 4; ++id) {
    const Trace trace = standard_trace(id);
    const auto results = run_all(
        trace, {"Muri-L", "Muri-L-worstorder", "Muri-L-noblossom"},
        default_sim_options(false));
    const SimResult& base = results[0];
    const SimResult& worst = results[1];
    const SimResult& noblossom = results[2];
    std::printf("%-8s | %9.3f %9.3f | %9.3f %9.3f\n", trace.name.c_str(),
                worst.avg_jct / base.avg_jct, worst.makespan / base.makespan,
                noblossom.avg_jct / base.avg_jct,
                noblossom.makespan / base.makespan);
  }
  std::printf(
      "\npaper: both ablations degrade both metrics; w/o Blossom costs up "
      "to +14%% JCT and +6%% makespan.\n"
      "note: the worst-ordering ablation reproduces strongly (up to +34%% "
      "JCT here). Under our fluid\nexecution model the no-Blossom packing "
      "is within ±10%% of Blossom — the eight zoo models span\na narrow "
      "gamma range, so most 4-way combinations interleave almost equally "
      "well and the\nmatching quality matters less than on the paper's "
      "testbed (see EXPERIMENTS.md).\n");
  return 0;
}
