// Crash-recovery driver for the CI smoke job and for poking the durable
// write path by hand (EXPERIMENTS.md "Crash and recover a run").
//
// Clean run — simulate a small faulty cluster with the DecisionLog
// attached to a durable WAL, then write the deterministic slice of the
// SimResult as JSON:
//
//   bench_recovery --wal=run.wal --result-out=clean.json
//
// Crash run — same command under MURI_CRASH_AT=N (the sink honors the
// env only in this binary): the process _Exit(137)s at the boundary of
// record N, leaving a durable prefix (add MURI_CRASH_TORN=1 to leave a
// half-written frame instead). Recovery:
//
//   bench_recovery --wal=run.wal --resume --result-out=recovered.json
//
// recovers scheduler state from snapshot + suffix, re-executes, verifies
// every regenerated record against the durable prefix byte-for-byte, and
// appends the rest. `cmp clean.json recovered.json` (and cmp of the WALs)
// is the CI assertion: a resumed run converges to the uninterrupted one.
//
// The workload is fixed-shape and seeded (--seed/--jobs/--threads vary
// it), with job faults and machine crash/repair enabled so the WAL
// carries the full record vocabulary.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "common/flags.h"
#include "job/trace.h"
#include "obs/provenance.h"
#include "recovery/durable.h"
#include "recovery/resume.h"
#include "scheduler/muri.h"
#include "sim/simulator.h"

namespace {

using namespace muri;

// The deterministic slice of a SimResult: everything except wall-clock
// accounting (scheduler_wall_ms is real time and never reproducible).
// Byte-stable by the same rules as the decision log, so `cmp` works.
std::string result_json(const SimResult& r) {
  std::string out = "{\"scheduler\":\"" + r.scheduler_name + "\",\"trace\":\"" +
                    r.trace_name + "\"";
  const auto num = [&out](const char* key, double v) {
    out += ",\"";
    out += key;
    out += "\":";
    obs::append_json_double(out, v);
  };
  num("avg_jct", r.avg_jct);
  num("p99_jct", r.p99_jct);
  num("makespan", r.makespan);
  num("avg_queue_length", r.avg_queue_length);
  num("avg_utilization_gpu", r.avg_utilization[3]);
  num("finished_jobs", r.finished_jobs);
  num("unfinished_jobs", r.unfinished_jobs);
  num("faults", static_cast<double>(r.faults));
  num("restarts", static_cast<double>(r.restarts));
  num("machine_failures", static_cast<double>(r.machine_failures));
  num("evictions", static_cast<double>(r.evictions));
  num("scheduler_invocations", static_cast<double>(r.scheduler_invocations));
  out += ",\"jcts\":[";
  for (std::size_t i = 0; i < r.jcts.size(); ++i) {
    if (i != 0) out += ',';
    obs::append_json_double(out, r.jcts[i]);
  }
  out += "]}\n";
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string wal_path = flags.get("wal");
  if (wal_path.empty()) {
    std::cerr << "usage: bench_recovery --wal=PATH [--resume] "
                 "[--result-out=PATH] [--seed=N] [--jobs=N] [--threads=N] "
                 "[--fsync=none|interval|every_record] [--snapshot-every=N]\n";
    return 1;
  }
  const bool resume = flags.get_bool("resume");
  const std::string result_out = flags.get("result-out");
  const int seed = flags.get_int("seed", 1);
  const int jobs = flags.get_int("jobs", 60);
  const int threads = flags.get_int("threads", 1);
  const std::string fsync = flags.get("fsync", "interval");
  const int snapshot_every = flags.get_int("snapshot-every", 25);

  PhillyTraceOptions trace_options;
  trace_options.name = "recovery";
  trace_options.num_jobs = jobs;
  trace_options.seed = static_cast<std::uint64_t>(seed);
  trace_options.jobs_per_hour = 60;
  trace_options.duration_log_mean = 6.0;
  trace_options.max_duration = 4 * 3600;
  // Keep demands placeable on the small 4×4 cluster below.
  trace_options.gpu_count_weights = {0.72, 0.16, 0.12, 0, 0, 0};
  const Trace trace = generate_philly_like(trace_options);

  SimOptions sim;
  sim.cluster.num_machines = 4;
  sim.cluster.gpus_per_machine = 4;
  sim.schedule_interval = 120;
  sim.restart_penalty = 10;
  sim.mtbf_hours = 2.0;  // job faults
  sim.machine_faults.machine_mtbf_hours = 6.0;
  sim.machine_faults.machine_mttr_hours = 0.2;
  sim.max_time = 14 * 24 * 3600;  // safety stop, never reached in practice

  MuriOptions muri_options;
  muri_options.num_threads = threads;
  MuriScheduler scheduler(muri_options);

  recovery::DurableSinkOptions sink_options;
  if (fsync == "none") {
    sink_options.fsync = recovery::DurableSinkOptions::Fsync::kNone;
  } else if (fsync == "every_record") {
    sink_options.fsync = recovery::DurableSinkOptions::Fsync::kEveryRecord;
  } else {
    sink_options.fsync = recovery::DurableSinkOptions::Fsync::kInterval;
  }
  sink_options.snapshot_every_records = snapshot_every;

  SimResult result;
  if (resume) {
    recovery::ResumeOptions resume_options;
    resume_options.wal_path = wal_path;
    resume_options.sink = sink_options;
    recovery::ResumeReport report;
    std::string error;
    if (!recovery::resume_simulation(trace, scheduler, sim, resume_options,
                                     result, report, &error)) {
      std::cerr << "bench_recovery: resume failed: " << error << '\n';
      return 1;
    }
    std::cerr << "bench_recovery: recovered " << report.records_on_disk
              << " durable records"
              << (report.used_snapshot ? " (snapshot + " : " (full replay, ")
              << report.suffix_replayed << " replayed)"
              << (report.torn_tail ? ", torn tail truncated" : "")
              << "; verified " << report.records_verified << ", appended "
              << report.records_appended << '\n';
    std::cerr << "bench_recovery: recovered state: round "
              << report.recovered.round << ", "
              << report.recovered.running.size() << " running, "
              << report.recovered.finished.size() << " finished\n";
  } else {
    // Clean (or to-be-crashed) run: fresh WAL, crash env honored.
    sink_options.honor_crash_env = true;
    recovery::DurableSink sink(wal_path, sink_options);
    if (!sink.ok()) {
      std::cerr << "bench_recovery: " << sink.error() << '\n';
      return 1;
    }
    obs::DecisionLog log;
    log.set_sink(&sink);
    sim.decisions = &log;
    scheduler.set_decision_log(&log);
    result = run_simulation(trace, scheduler, sim);
    log.set_sink(nullptr);
    sink.close();
    if (!sink.ok()) {
      std::cerr << "bench_recovery: " << sink.error() << '\n';
      return 1;
    }
    std::cerr << "bench_recovery: wrote " << sink.records_appended()
              << " records to " << wal_path << '\n';
  }

  const std::string json = result_json(result);
  if (!result_out.empty()) {
    if (!write_file(result_out, json)) {
      std::cerr << "bench_recovery: cannot write " << result_out << '\n';
      return 1;
    }
  } else {
    std::cout << json;
  }
  return 0;
}
