// Table 2: the four-job interleaving demonstration.
//
// The paper trains ShuffleNet (storage-bound), A2C (CPU-bound), GPT-2
// (GPU-bound) and VGG16 (network-bound) separately and then together with
// multi-resource interleaving, and reports per-job normalized throughput
// summing to ≈2.0×. We reproduce it twice:
//   1. with the live threaded executor (real stage barriers and resource
//      tokens, scaled time), and
//   2. with the simulator's fluid model (what the trace benches use),
// and additionally show the uncoordinated-sharing counterfactual that
// motivates §2.1.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "interleave/efficiency.h"
#include "job/model.h"
#include "runtime/executor.h"
#include "sim/fluid.h"

using namespace muri;

int main(int argc, char** argv) {
  muri::bench::init_obs(argc, argv);
  const ModelKind models[4] = {ModelKind::kShuffleNet, ModelKind::kA2c,
                               ModelKind::kGpt2, ModelKind::kVgg16};

  std::vector<ResourceVector> profiles;
  std::vector<runtime::ExecJobSpec> specs;
  for (ModelKind m : models) {
    const IterationProfile p = model_profile(m, 1);
    profiles.push_back(p.stage_time);
    specs.push_back({std::string(to_string(m)), p.stage_time, 0});
  }
  const InterleavePlan plan = plan_interleave(profiles);
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].offset = plan.offsets[i];
  }

  runtime::ExecOptions opt;
  opt.time_scale = 0.02;  // 1 simulated second -> 20 ms of wall work
  opt.run_for = 3.0;
  opt.slots = plan.slots;
  opt.tracer = bench::obs_tracer();  // --trace-out dumps the stage rotation

  std::printf("Table 2 — interleaving four bottleneck-complementary jobs\n");
  std::printf("group plan: period=%.3fs gamma=%.3f\n\n", plan.period,
              plan.efficiency);

  // Solo baselines.
  std::vector<double> solo(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    solo[i] = run_solo(specs[i], opt).sim_throughput;
  }

  // Live coordinated group.
  opt.coordinate = true;
  const auto shared = run_group(specs, opt);

  // Live uncoordinated group (the §2.1 pathology baseline).
  runtime::ExecOptions unopt = opt;
  unopt.coordinate = false;
  unopt.slots.clear();
  const auto unshared = run_group(specs, unopt);

  // Fluid model prediction for a 4-job coordinated group.
  const auto rates =
      max_min_fair_rates(profiles, 1.0 + 0.05 * (specs.size() - 1));

  std::printf("%-12s %10s | %10s %7s | %10s %7s | %7s\n", "model",
              "solo it/s", "muri it/s", "norm", "unco it/s", "norm",
              "fluid");
  double total_norm = 0, total_unco = 0, total_fluid = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    const double norm =
        solo[i] > 0 ? shared.jobs[i].sim_throughput / solo[i] : 0;
    const double unorm =
        solo[i] > 0 ? unshared.jobs[i].sim_throughput / solo[i] : 0;
    total_norm += norm;
    total_unco += unorm;
    total_fluid += rates[i];
    std::printf("%-12s %10.2f | %10.2f %7.2f | %10.2f %7.2f | %7.2f\n",
                specs[i].name.c_str(), solo[i],
                shared.jobs[i].sim_throughput, norm,
                unshared.jobs[i].sim_throughput, unorm, rates[i]);
  }
  std::printf("%-12s %10s | %10s %7.2f | %10s %7.2f | %7.2f\n",
              "total norm.", "", "", total_norm, "", total_unco, total_fluid);
  std::printf("\npaper: total normalized throughput 2.00x "
              "(0.86/0.48/0.41/0.25 per job)\n");
  return 0;
}
