// Figure 9: trace-driven simulations with KNOWN durations on traces 1–4
// and their zeroed-arrival variants 1'–4'. Paper bands: Muri-S speedup of
// avg JCT 1.13–2.26×, makespan 1–1.65×, p99 JCT 1.36–4.57×.
#include <cstdio>

#include "bench_util.h"

using namespace muri;
using namespace muri::bench;

int main(int argc, char** argv) {
  muri::bench::init_obs(argc, argv);
  std::printf("Figure 9 — simulation, durations known "
              "(SRTF & SRSF vs Muri-S)\n\n");
  std::printf("%-10s | %6s %6s %6s | %6s %6s %6s\n", "trace", "JCT",
              "mkspan", "p99", "JCT", "mkspan", "p99");
  std::printf("%-10s | %20s | %20s\n", "", "SRTF / Muri-S", "SRSF / Muri-S");
  for (int id = 1; id <= 4; ++id) {
    for (bool zeroed : {false, true}) {
      Trace trace = standard_trace(id);
      if (zeroed) trace = zero_arrivals(std::move(trace));
      const auto results = run_all(trace, {"SRTF", "SRSF", "Muri-S"},
                                   default_sim_options(true));
      const SimResult& srtf = results[0];
      const SimResult& srsf = results[1];
      const SimResult& muri = results[2];
      std::printf("%-10s | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f\n",
                  trace.name.c_str(), srtf.avg_jct / muri.avg_jct,
                  srtf.makespan / muri.makespan, srtf.p99_jct / muri.p99_jct,
                  srsf.avg_jct / muri.avg_jct, srsf.makespan / muri.makespan,
                  srsf.p99_jct / muri.p99_jct);
    }
  }
  std::printf("\npaper bands: JCT 1.13-2.26x, makespan 1-1.65x, "
              "p99 1.36-4.57x;\nzeroed variants (trace N-zero) show larger "
              "makespan speedups than originals.\n");
  return 0;
}
