// Extension — the third Tiresias variant: 2D-Gittins index (used when job
// durations are unknown but their distribution is learnable). The paper's
// Table 5 compares Muri-L against 2D-LAS Tiresias; this bench adds the
// Gittins policy to the same setup.
#include <cstdio>

#include "bench_util.h"
#include "scheduler/gittins.h"

using namespace muri;
using namespace muri::bench;

int main(int argc, char** argv) {
  muri::bench::init_obs(argc, argv);
  const Trace trace = testbed_trace();
  std::printf("Extension — 2D-Gittins vs 2D-LAS Tiresias vs Muri-L "
              "(testbed trace)\n\n");

  SimOptions opt = default_sim_options(false);
  std::vector<SimResult> results =
      run_all(trace, {"Tiresias", "Muri-L"}, opt);
  {
    GittinsScheduler gittins;
    results.push_back(run_simulation(trace, gittins, opt));
  }
  print_normalized_table("normalized metrics", results, "Muri-L");
  std::printf("\nraw metrics\n");
  print_raw_table(results);
  std::printf("\nGittins learns the service distribution online and "
              "typically lands between\nTiresias and the duration-aware "
              "SRSF; Muri-L still wins by interleaving.\n");
  return 0;
}
