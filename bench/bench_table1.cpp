// Table 1 + Table 3: per-model stage-duration percentages and bottleneck
// classes of the model zoo (the paper measured these with PyTorch
// Profiler on 16 V100s; our zoo encodes them as the profile source of
// truth — see DESIGN.md §2).
#include <cstdio>

#include "bench_util.h"
#include "job/model.h"

using namespace muri;

int main(int argc, char** argv) {
  muri::bench::init_obs(argc, argv);
  std::printf("Table 1 — stage duration percentage per iteration "
              "(16-worker profiles)\n");
  std::printf("%-12s %-10s %6s | %9s %10s %9s %11s | %s\n", "model",
              "dataset", "batch", "load data", "preprocess", "propagate",
              "synchronize", "bottleneck");
  for (ModelKind m : kAllModels) {
    const ModelSpec& spec = model_spec(m);
    const IterationProfile p = model_profile(m, 16);
    std::printf("%-12s %-10s %6d | %8.1f%% %9.1f%% %8.1f%% %10.1f%% | %s\n",
                spec.name.data(), spec.dataset.data(), spec.batch_size,
                100 * p.fraction(Resource::kStorage),
                100 * p.fraction(Resource::kCpu),
                100 * p.fraction(Resource::kGpu),
                100 * p.fraction(Resource::kNetwork),
                to_string(spec.bottleneck).data());
  }
  std::printf("\nPaper reference rows (Table 1): shufflenet storage-heavy, "
              "vgg19 network-heavy,\ngpt2 GPU-heavy, a2c CPU-heavy; "
              "bottlenecks per Table 3.\n");
  return 0;
}
