// Scheduler interface shared by Muri and all baselines.
//
// The simulator invokes the scheduler on scheduling rounds (fixed interval,
// batched arrivals/completions — §5). The scheduler sees the queue through
// JobView (profiler-measured profiles, attained service, remaining time if
// durations are known) and returns an ordered list of PlannedGroups. The
// simulator places groups *in plan order* (skipping groups that do not
// fit), so each scheduler encodes its own placement priority; preemptive
// schedulers use the §5 rule — descending GPU demand — via
// sort_groups_for_placement().
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/types.h"
#include "job/model.h"

namespace muri::obs {
class DecisionLog;
}  // namespace muri::obs

namespace muri {

// What a scheduler is allowed to know about a queued or running job.
struct JobView {
  JobId id = kInvalidJob;
  int num_gpus = 1;
  Time submit_time = 0;
  // Profiler output — possibly noisy, never the ground truth.
  IterationProfile measured;
  // Attained GPU-time (wall seconds running × GPUs) — the 2D-LAS signal.
  double attained_service = 0;
  // Wall time since submission.
  Duration age = 0;
  // Solo remaining runtime estimate; only meaningful when the simulation
  // declares durations known (SRTF/SRSF/Muri-S read it).
  Duration remaining_time = 0;
  bool running = false;
};

struct SchedulerContext {
  Time now = 0;
  int total_gpus = 0;
  int gpus_per_machine = 0;
  bool durations_known = false;
  // GPUs on machines currently in the allocatable pool (worker monitor:
  // failed and blacklisted machines excluded). -1 means "no fault domain
  // information" and falls back to total_gpus.
  int available_gpus = -1;
  // Jobs whose lifecycle changed since the previous round (arrived,
  // finished, preempted, evicted, faulted), sorted ascending and
  // deduplicated — the simulator's dirty set. Null means "unknown";
  // schedulers must treat it as advisory observability input only (the
  // incremental Muri path derives its own exact delta from membership
  // and profile bits, so a stale or absent set can never corrupt a
  // plan). Logged as round_start's "dirty" field when present.
  const std::vector<JobId>* dirty_jobs = nullptr;

  // The GPU capacity a scheduler may plan against this round.
  int capacity() const noexcept {
    return available_gpus >= 0 ? available_gpus : total_gpus;
  }
};

// How the members of a group share their GPU set.
enum class GroupMode : std::uint8_t {
  // Single job, exclusive resources.
  kExclusive,
  // Muri-style time interleaving with stage barriers; `offsets` carries the
  // rotation offsets chosen by the scheduler.
  kInterleaved,
  // Co-located without stage coordination (AntMan-style GPU sharing);
  // member stages contend freely.
  kUncoordinated,
};

struct PlannedGroup {
  std::vector<JobId> members;
  int num_gpus = 1;  // GPUs allocated to the group as a whole
  GroupMode mode = GroupMode::kExclusive;
  // Rotation schedule for kInterleaved, from plan_interleave on the
  // *measured* profiles: the slot axis and per-member offsets. Empty
  // otherwise. The simulator executes this schedule against the
  // ground-truth profiles (and falls back to a fresh best-order plan if
  // the schedule is malformed).
  std::vector<Resource> slots;
  std::vector<int> offsets;
  // The rotation period the scheduler *planned* for (from measured
  // profiles). The executor paces barriers by this plan, so the gap
  // between planned and true stage durations turns into idle time; the
  // simulator charges a mis-planning penalty proportional to the relative
  // gap (this is how profiling noise degrades performance, Fig. 14).
  Duration planned_period = 0;
  // The interleaving efficiency γ the scheduler predicted when it formed
  // this group (1.0 for singletons and schedulers that don't estimate).
  // Purely observational — placement never reads it. Kept last so the
  // aggregate-initialized literal groups baselines build stay valid.
  double predicted_gamma = 1.0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string name() const = 0;

  // True if the policy reads JobView::remaining_time.
  virtual bool needs_durations() const { return false; }

  // Computes this round's plan. Jobs absent from the returned groups stay
  // (or become) pending. Called only on rounds where the queue changed.
  virtual std::vector<PlannedGroup> schedule(const std::vector<JobView>& queue,
                                             const SchedulerContext& ctx) = 0;

  // Decision provenance sink (src/obs/provenance). Null — the default —
  // disables logging entirely; attaching a log never changes the plan.
  // Schedulers call decisions()->begin_round() per schedule() invocation
  // and record round_start/priority/group/... entries against it.
  void set_decision_log(obs::DecisionLog* log) noexcept { decisions_ = log; }
  obs::DecisionLog* decision_log() const noexcept { return decisions_; }

  // Jobs the most recent schedule() explicitly deferred (Muri's beyond-
  // the-candidate-prefix set), ascending. Observability input for
  // wait-state attribution; baselines that never defer leave it empty.
  const std::vector<JobId>& last_deferred() const noexcept {
    return last_deferred_;
  }

 protected:
  void set_last_deferred(std::vector<JobId> jobs) noexcept {
    last_deferred_ = std::move(jobs);
  }

 private:
  obs::DecisionLog* decisions_ = nullptr;
  std::vector<JobId> last_deferred_;
};

// Stable-sorts groups by descending GPU demand — the §5 placement order
// that packs big jobs first and lets small ones backfill.
void sort_groups_for_placement(std::vector<PlannedGroup>& groups);

// Stable-sorts views ascending by `priority(view)` (lower value runs
// first), breaking ties by submit time then id for determinism.
template <typename PriorityFn>
std::vector<JobView> sorted_by_priority(std::vector<JobView> queue,
                                        PriorityFn&& priority) {
  std::stable_sort(queue.begin(), queue.end(),
                   [&](const JobView& a, const JobView& b) {
                     const double pa = priority(a);
                     const double pb = priority(b);
                     if (pa != pb) return pa < pb;
                     if (a.submit_time != b.submit_time) {
                       return a.submit_time < b.submit_time;
                     }
                     return a.id < b.id;
                   });
  return queue;
}

}  // namespace muri
