// 2D-Gittins index scheduler — Tiresias' policy for the regime where job
// durations are unknown but their *distribution* is learnable (Gu et al.,
// NSDI'19; the Muri paper cites it as the third Tiresias variant next to
// SRSF and 2D-LAS).
//
// The scheduler learns an empirical distribution of total job service
// (GPU-seconds) from jobs it has seen complete, and ranks each queued job
// by its Gittins index at its attained service a:
//
//   G(a) = max_Δ  P(S - a ≤ Δ | S > a) / E[min(S - a, Δ) | S > a]
//
// i.e. the best probability-of-finishing-soon per unit of expected
// investment. Higher index runs first. Until enough completions have been
// observed the policy degrades gracefully to 2D-LAS.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "scheduler/scheduler.h"

namespace muri {

class GittinsScheduler final : public Scheduler {
 public:
  struct Options {
    // Cap on retained service samples (oldest evicted first).
    std::size_t max_samples = 1024;
    // Completions required before the index replaces 2D-LAS.
    std::size_t min_samples = 8;
  };

  GittinsScheduler();
  explicit GittinsScheduler(Options options) : options_(options) {}

  std::string name() const override { return "Gittins"; }

  std::vector<PlannedGroup> schedule(const std::vector<JobView>& queue,
                                     const SchedulerContext& ctx) override;

  // Gittins index of a job with attained service `a` against the current
  // empirical distribution; exposed for tests. Returns 0 when the suffix
  // {S > a} is empty (the job outlived every observed completion).
  double index_of(double attained) const;

  std::size_t samples() const noexcept { return samples_.size(); }

 private:
  void harvest_completions(const std::vector<JobView>& queue);

  Options options_;
  // Sorted ascending; rebuilt lazily each round after harvesting.
  std::vector<double> samples_;
  std::vector<double> prefix_;  // prefix sums of samples_
  // attained service of every job seen last round (to detect departures).
  std::map<JobId, double> last_seen_;
};

}  // namespace muri
