// Muri — the paper's scheduler (§4, Algorithm 1).
//
// Each scheduling round:
//  1. Priority-sort the queue: SRSF (remaining × GPUs) when durations are
//     known (Muri-S), 2D-LAS (attained GPU-time) when unknown (Muri-L).
//  2. If everything fits exclusively, do not group (interleaving only pays
//     when the cluster is contended).
//  3. Otherwise take the head of the queue — enough jobs to fill the
//     cluster with max-size groups — bucket them by GPU demand (§4.2
//     "Handling multi-GPU jobs"), and inside each bucket run the
//     multi-round grouping: log₂k rounds of maximum-weight matching
//     (Blossom) over interleaving-efficiency edge weights, merging matched
//     pairs into super-nodes between rounds.
//  4. Emit interleaved groups (with the best — or, for the Fig. 11
//     ablation, worst — stage ordering) ordered by priority, then by
//     descending GPU demand for placement (§5).
#pragma once

#include <vector>

#include "interleave/efficiency.h"
#include "scheduler/scheduler.h"

namespace muri {

struct MuriOptions {
  // Maximum jobs per interleaving group (Fig. 12 varies this 2..4).
  int max_group_size = 4;
  // Stage-ordering selection (Fig. 11 ablation uses kWorst).
  OrderingPolicy ordering = OrderingPolicy::kBest;
  // When false, replaces Blossom matching with the paper's "Muri w/o
  // Blossom" ablation: pack same-bucket jobs consecutively in priority
  // order.
  bool use_blossom = true;
  // Muri-S (true) vs Muri-L (false).
  bool durations_known = false;
  // Only group jobs with identical GPU demand (§4.2). Disabling this is an
  // extension ablation; mixed groups pay a cascade penalty in execution.
  bool bucket_by_gpu = true;
  // Hard cap on grouping candidates per round, bounding the Blossom O(n³)
  // cost; 0 means "max_group_size × total GPUs" (Algorithm 1's "fully
  // utilize the cluster"), clamped to 192 so a deep backlog cannot make a
  // scheduling round quadratically slower.
  int candidate_cap = 0;
};

class MuriScheduler final : public Scheduler {
 public:
  explicit MuriScheduler(MuriOptions options = {});

  std::string name() const override;
  bool needs_durations() const override { return options_.durations_known; }

  std::vector<PlannedGroup> schedule(const std::vector<JobView>& queue,
                                     const SchedulerContext& ctx) override;

  const MuriOptions& options() const noexcept { return options_; }

  // Cumulative number of Blossom invocations (scalability accounting).
  std::int64_t matchings_run() const noexcept { return matchings_run_; }

 private:
  double priority_of(const JobView& v) const;

  MuriOptions options_;
  std::int64_t matchings_run_ = 0;
};

// The multi-round grouping core (Algorithm 1), exposed for unit tests and
// the scalability bench. Partitions `profiles` (jobs of one bucket) into
// groups of at most `max_group_size`, running ceil(log2(max_group_size))
// rounds of maximum-weight matching with interleaving-efficiency weights.
// Returns groups as index lists into `profiles`. `matchings_run`, if
// non-null, is incremented per Blossom invocation.
std::vector<std::vector<int>> multi_round_grouping(
    const std::vector<ResourceVector>& profiles, int max_group_size,
    std::int64_t* matchings_run = nullptr);

}  // namespace muri
