// Muri — the paper's scheduler (§4, Algorithm 1).
//
// Each scheduling round:
//  1. Priority-sort the queue: SRSF (remaining × GPUs) when durations are
//     known (Muri-S), 2D-LAS (attained GPU-time) when unknown (Muri-L).
//  2. If everything fits exclusively, do not group (interleaving only pays
//     when the cluster is contended).
//  3. Otherwise take the head of the queue — enough jobs to fill the
//     cluster with max-size groups — bucket them by GPU demand (§4.2
//     "Handling multi-GPU jobs"), and inside each bucket run the
//     multi-round grouping: log₂k rounds of maximum-weight matching
//     (Blossom) over interleaving-efficiency edge weights, merging matched
//     pairs into super-nodes between rounds.
//  4. Emit interleaved groups (with the best — or, for the Fig. 11
//     ablation, worst — stage ordering) ordered by priority, then by
//     descending GPU demand for placement (§5).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "interleave/efficiency.h"
#include "scheduler/scheduler.h"

namespace muri::obs {
class DecisionLog;
class MetricsRegistry;
class Tracer;
}  // namespace muri::obs

namespace muri {

class PairGammaHook;
class ThreadPool;
struct GroupingCapture;

struct MuriOptions {
  // Maximum jobs per interleaving group (Fig. 12 varies this 2..4).
  int max_group_size = 4;
  // Stage-ordering selection (Fig. 11 ablation uses kWorst).
  OrderingPolicy ordering = OrderingPolicy::kBest;
  // When false, replaces Blossom matching with the paper's "Muri w/o
  // Blossom" ablation: pack same-bucket jobs consecutively in priority
  // order.
  bool use_blossom = true;
  // Muri-S (true) vs Muri-L (false).
  bool durations_known = false;
  // Only group jobs with identical GPU demand (§4.2). Disabling this is an
  // extension ablation; mixed groups pay a cascade penalty in execution.
  bool bucket_by_gpu = true;
  // Hard cap on grouping candidates per round, bounding the Blossom O(n³)
  // cost; 0 means "max_group_size × total GPUs" (Algorithm 1's "fully
  // utilize the cluster"), clamped to 192 so a deep backlog cannot make a
  // scheduling round quadratically slower.
  int candidate_cap = 0;
  // Candidate-edge pruning: each job only offers γ edges to its top_k
  // most *complementary* neighbors (lowest bottleneck-profile similarity,
  // matching/incremental). 0 disables pruning — the full dense graph,
  // today's behavior. top_k > 0 changes which edges Blossom sees, so it
  // is a result-affecting knob and appears in name(); it is what makes
  // 10k-job rounds tractable (Blossom runs per capped component instead
  // of once over everything).
  int top_k = 0;
  // With top_k > 0, the pruned graph is split by a capacity-capped greedy
  // union-find (edges in ascending similarity order merge clusters only
  // while the merged size stays within the cap), bounding every Blossom
  // invocation. Ignored when top_k == 0.
  int component_cap = 32;
  // Delta-based rounds: persist the per-bucket candidate graph, γ pair
  // cache, and component results across schedule() calls, patching only
  // what churned (matching/incremental). Pure latency knob — plans,
  // DecisionLog, and trace bytes are bit-identical to the full rebuild
  // at the same top_k (the incremental-equivalence CI job enforces it) —
  // so it does NOT appear in name(). Default off.
  bool incremental = false;
  // Threads a scheduling round may use: the matching-graph edge weights
  // are evaluated in parallel and independent GPU buckets are grouped
  // concurrently. 0 = hardware concurrency, 1 = the plain serial path.
  // The plan is bit-identical for every value — parallelism splits work
  // across write-once slots, it never reorders a floating-point reduction
  // — so this is purely a latency knob.
  int num_threads = 0;
  // Observability hooks (src/obs), both optional and read-only with
  // respect to the plan: `trace` receives a per-round span on the
  // scheduler track, `metrics` absorbs the GroupingStats counters
  // (muri_sched_* series) plus a round wall-time summary. Null pointers
  // (the default) skip all instrumentation — the plan and every tier-1
  // output are bit-identical either way.
  obs::Tracer* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  // Append the per-phase wall-time breakdown (sort_s/graph_s/match_s/
  // admit_s) to the round span's trace args. Default OFF and deliberately
  // so: phase wall times are work measurements that differ between the
  // rebuild and incremental paths, so embedding them would break the trace
  // byte-equality the incremental-equivalence CI gate enforces. Flip it on
  // for interactive profiling only. The same breakdown is always available
  // mode-safely via GroupingStats and the muri_sched_phase_seconds
  // histograms.
  bool trace_phases = false;
  // Decision provenance sink (src/obs/provenance): per-round priority
  // scores, candidate buckets, every γ edge offered to Blossom, and each
  // group's admission verdict. Same contract as the other two hooks —
  // null (the default) is a zero-cost no-op and attaching a log leaves
  // the plan bit-identical. Forwarded to Scheduler::set_decision_log();
  // a log attached later via that setter works identically.
  obs::DecisionLog* decisions = nullptr;
};

// Counters for one scheduling round (or one multi_round_grouping call):
// where the time went and how often the γ-memoization short-circuited a
// super-node re-evaluation.
struct GroupingStats {
  // Wall seconds spent building matching-graph edge weights. Summed across
  // buckets, so with concurrent buckets this can exceed the round's wall
  // time — it measures work, not latency.
  double graph_build_seconds = 0;
  // Wall seconds inside Blossom matching (summed across buckets).
  double matching_seconds = 0;
  // Wall seconds in the round's remaining phases (the live SLO plane's
  // round breakdown): the initial priority sort, and group
  // assembly/admission/placement ordering after grouping. Like the two
  // timers above these measure the round that just ran and never appear
  // in byte-compared outputs.
  double priority_sort_seconds = 0;
  double admission_seconds = 0;
  // γ-cache outcomes: a miss is one γ evaluation performed, a hit one
  // avoided — a node pair whose members both survived a previous round's
  // matching unmatched and whose edge weight was therefore already known.
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  // Blossom invocations.
  std::int64_t matchings_run = 0;
  // Grouping rounds that ended without a productive matching (no positive
  // γ edges, or Blossom matched zero pairs) and fell back to emitting the
  // current nodes as final groups.
  std::int64_t matching_fallbacks = 0;
  // Delta-round accounting (matching/incremental): how much of the round
  // was patched vs folded forward. All zero in rebuild mode. These never
  // appear in byte-compared outputs (plans, DecisionLog, trace) — they
  // measure work done, which is exactly what differs between modes.
  std::int64_t dirty_jobs = 0;        // bucket membership delta processed
  std::int64_t topk_rescans = 0;      // candidate buffers rebuilt in full
  std::int64_t edges_reused = 0;      // round-0 γs served from the pair cache
  std::int64_t edges_patched = 0;     // round-0 γs recomputed (dirty edges)
  std::int64_t components_total = 0;  // components offered to grouping
  std::int64_t components_reused = 0; // folded forward without re-matching
  // Single-member components: nothing to match, nothing worth caching —
  // the grouping of one job is itself. Served by a direct fast path in
  // both modes (byte-identical output); counted separately so
  // components_reused keeps meaning "cache fold" and the warm-round
  // invariant is reused + trivial == total.
  std::int64_t components_trivial = 0;

  void accumulate(const GroupingStats& other) {
    graph_build_seconds += other.graph_build_seconds;
    matching_seconds += other.matching_seconds;
    priority_sort_seconds += other.priority_sort_seconds;
    admission_seconds += other.admission_seconds;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    matchings_run += other.matchings_run;
    matching_fallbacks += other.matching_fallbacks;
    dirty_jobs += other.dirty_jobs;
    topk_rescans += other.topk_rescans;
    edges_reused += other.edges_reused;
    edges_patched += other.edges_patched;
    components_total += other.components_total;
    components_reused += other.components_reused;
    components_trivial += other.components_trivial;
  }
};

class MuriScheduler final : public Scheduler {
 public:
  explicit MuriScheduler(MuriOptions options = {});
  ~MuriScheduler() override;

  std::string name() const override;
  bool needs_durations() const override { return options_.durations_known; }

  std::vector<PlannedGroup> schedule(const std::vector<JobView>& queue,
                                     const SchedulerContext& ctx) override;

  const MuriOptions& options() const noexcept { return options_; }

  // Cumulative number of Blossom invocations (scalability accounting).
  std::int64_t matchings_run() const noexcept {
    return cumulative_stats_.matchings_run;
  }

  // Timing / cache counters of the most recent schedule() call and the
  // running totals since construction (for the scalability benches).
  const GroupingStats& last_round_stats() const noexcept {
    return last_round_stats_;
  }
  const GroupingStats& cumulative_stats() const noexcept {
    return cumulative_stats_;
  }

 private:
  double priority_of(const JobView& v) const;
  // The pool backing this scheduler's rounds per options_.num_threads, or
  // nullptr for the serial path. Created lazily on the first contended
  // round so uncontended workloads never spawn threads.
  ThreadPool* pool();

  MuriOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  // Cross-round incremental state — the per-bucket candidate masks, γ
  // pair caches, and component result caches (matching/incremental).
  // Allocated lazily on the first incremental contended round; absent
  // entirely in rebuild mode.
  struct IncrementalState;
  std::unique_ptr<IncrementalState> incr_;
  GroupingStats last_round_stats_;
  GroupingStats cumulative_stats_;
  // Round ids for the trace round span and the decision log; kept in
  // lockstep with DecisionLog::begin_round() so a log attached from
  // construction sees the same ids a log-free run would stamp on traces.
  std::int64_t round_seq_ = 0;
};

// The multi-round grouping core (Algorithm 1), exposed for unit tests and
// the scalability bench. Partitions `profiles` (jobs of one bucket) into
// groups of at most `max_group_size`, running ceil(log2(max_group_size))
// rounds of maximum-weight matching with interleaving-efficiency weights.
// Returns groups as index lists into `profiles`. `matchings_run`, if
// non-null, is incremented per Blossom invocation.
std::vector<std::vector<int>> multi_round_grouping(
    const std::vector<ResourceVector>& profiles, int max_group_size,
    std::int64_t* matchings_run = nullptr);

// Full-control variant: `pool` (may be null → serial) parallelizes the
// per-round edge-weight construction; `stats` (may be null) receives
// timing and γ-cache counters. The returned grouping is bit-identical for
// every pool size: each (u, v) edge weight is computed exactly once and
// written to its own slot, the Blossom matching itself runs serially on
// the assembled graph, and the γ-cache is only ever read during the
// parallel phase (misses are folded in serially between rounds).
// `capture` (may be null) receives one MatchingRoundRecord per Blossom
// round — nodes, positive edges, merges, survivors — copied out of the
// assembled graph after the fact; populating it never changes the result
// (see matching/capture.h).
// `pair_hook` (may be null) is consulted for round-0 pairwise γ values
// (matching/incremental): lookup during the parallel edge phase
// (read-only, concurrency-safe), store from the serial fold loop with
// the final cell value of every admissible round-0 pair. A hook whose
// lookups return values bit-identical to pairwise_efficiency — the
// PairGammaCache contract — leaves the grouping bit-identical.
std::vector<std::vector<int>> multi_round_grouping(
    const std::vector<ResourceVector>& profiles, int max_group_size,
    ThreadPool* pool, GroupingStats* stats,
    GroupingCapture* capture = nullptr,
    PairGammaHook* pair_hook = nullptr);

}  // namespace muri
