#include "scheduler/baselines.h"

#include <algorithm>
#include <cassert>

namespace muri {

TiresiasScheduler::TiresiasScheduler() : TiresiasScheduler(Options{}) {}

AntManScheduler::AntManScheduler() : AntManScheduler(Options{}) {}

void sort_groups_for_placement(std::vector<PlannedGroup>& groups) {
  std::stable_sort(groups.begin(), groups.end(),
                   [](const PlannedGroup& a, const PlannedGroup& b) {
                     return a.num_gpus > b.num_gpus;
                   });
}

std::vector<PlannedGroup> exclusive_plan(const std::vector<JobView>& ordered,
                                         int total_gpus) {
  std::vector<PlannedGroup> plan;
  int budget = total_gpus;
  for (const JobView& v : ordered) {
    if (v.num_gpus <= budget) {
      PlannedGroup g;
      g.members = {v.id};
      g.num_gpus = v.num_gpus;
      g.mode = GroupMode::kExclusive;
      plan.push_back(std::move(g));
      budget -= v.num_gpus;
    }
    if (budget == 0) break;
  }
  sort_groups_for_placement(plan);
  return plan;
}

std::vector<PlannedGroup> FifoScheduler::schedule(
    const std::vector<JobView>& queue, const SchedulerContext& ctx) {
  auto ordered = sorted_by_priority(
      queue, [](const JobView& v) { return v.submit_time; });
  return exclusive_plan(ordered, ctx.capacity());
}

std::vector<PlannedGroup> SrtfScheduler::schedule(
    const std::vector<JobView>& queue, const SchedulerContext& ctx) {
  auto ordered = sorted_by_priority(
      queue, [](const JobView& v) { return v.remaining_time; });
  return exclusive_plan(ordered, ctx.capacity());
}

std::vector<PlannedGroup> SrsfScheduler::schedule(
    const std::vector<JobView>& queue, const SchedulerContext& ctx) {
  auto ordered = sorted_by_priority(queue, [](const JobView& v) {
    return v.remaining_time * static_cast<double>(v.num_gpus);
  });
  return exclusive_plan(ordered, ctx.capacity());
}

std::vector<PlannedGroup> TiresiasScheduler::schedule(
    const std::vector<JobView>& queue, const SchedulerContext& ctx) {
  // Discretized 2D-LAS: bucket by attained GPU-time, FIFO within a bucket.
  const auto& thresholds = options_.queue_thresholds;
  auto ordered = sorted_by_priority(queue, [&](const JobView& v) {
    std::size_t level = 0;
    while (level < thresholds.size() &&
           v.attained_service >= thresholds[level]) {
      ++level;
    }
    // Level dominates; submit time breaks ties inside a level (FIFO).
    return static_cast<double>(level) * 1e18 + v.submit_time;
  });
  return exclusive_plan(ordered, ctx.capacity());
}

std::vector<PlannedGroup> ThemisScheduler::schedule(
    const std::vector<JobView>& queue, const SchedulerContext& ctx) {
  // Finish-time-fairness approximation: a job's fairness deficit is its
  // age divided by the service it has attained (normalized per GPU).
  // Jobs with a large deficit (starved relative to their age) run first.
  auto ordered = sorted_by_priority(queue, [](const JobView& v) {
    const double per_gpu_service =
        v.attained_service / static_cast<double>(v.num_gpus);
    const double deficit = (v.age + 1.0) / (per_gpu_service + 1.0);
    return -deficit;
  });
  return exclusive_plan(ordered, ctx.capacity());
}

std::vector<PlannedGroup> AntManScheduler::schedule(
    const std::vector<JobView>& queue, const SchedulerContext& ctx) {
  // Drop completed jobs from persistent state.
  std::map<JobId, const JobView*> alive;
  for (const JobView& v : queue) alive.emplace(v.id, &v);

  for (auto it = groups_.begin(); it != groups_.end();) {
    auto& members = it->second;
    members.erase(std::remove_if(members.begin(), members.end(),
                                 [&](JobId id) { return !alive.count(id); }),
                  members.end());
    if (members.empty()) {
      it = groups_.erase(it);
    } else {
      ++it;
    }
  }
  // Re-anchor groups whose primary finished.
  std::map<JobId, std::vector<JobId>> rebuilt;
  for (auto& [primary, members] : groups_) {
    rebuilt.emplace(members.front(), members);
  }
  groups_ = std::move(rebuilt);

  auto gpus_needed = [&](const std::vector<JobId>& members) {
    int need = 0;
    for (JobId id : members) {
      need = std::max(need, alive.at(id)->num_gpus);
    }
    return need;
  };

  int used = 0;
  std::vector<JobId> admitted;
  for (const auto& [primary, members] : groups_) {
    used += gpus_needed(members);
    for (JobId id : members) admitted.push_back(id);
  }

  // Admit pending jobs in FIFO order: exclusive GPUs if available,
  // otherwise opportunistically co-locate with a running group of the same
  // GPU demand that still has sharing headroom.
  auto ordered = sorted_by_priority(
      queue, [](const JobView& v) { return v.submit_time; });
  for (const JobView& v : ordered) {
    if (std::find(admitted.begin(), admitted.end(), v.id) != admitted.end()) {
      continue;
    }
    if (v.num_gpus <= ctx.capacity() - used) {
      groups_[v.id] = {v.id};
      used += v.num_gpus;
      admitted.push_back(v.id);
      continue;
    }
    for (auto& [primary, members] : groups_) {
      if (static_cast<int>(members.size()) < options_.max_sharing &&
          gpus_needed(members) == v.num_gpus) {
        members.push_back(v.id);
        admitted.push_back(v.id);
        break;
      }
    }
  }

  std::vector<PlannedGroup> plan;
  plan.reserve(groups_.size());
  for (const auto& [primary, members] : groups_) {
    PlannedGroup g;
    g.members = members;
    g.num_gpus = gpus_needed(members);
    g.mode = members.size() == 1 ? GroupMode::kExclusive
                                 : GroupMode::kUncoordinated;
    plan.push_back(std::move(g));
  }
  // Non-preemptive: keep existing groups ahead of placement pressure by
  // *not* re-sorting; insertion order (map by primary id) is stable and
  // the simulator places in plan order.
  return plan;
}

}  // namespace muri
