#include "scheduler/baselines.h"

#include <algorithm>
#include <cassert>

#include "obs/provenance.h"

namespace muri {

namespace {

// Decision-provenance wrapper shared by the preemptive baselines: runs
// exclusive_plan and, when a log is attached, records the round — queue
// priorities, each singleton group's admission verdict (γ of a solo job
// is 1 by definition), and the round summary. Logging happens after the
// plan is built, so attached and detached rounds plan identically.
template <typename PriorityFn>
std::vector<PlannedGroup> logged_exclusive_plan(
    Scheduler& self, const char* policy, const std::vector<JobView>& ordered,
    const SchedulerContext& ctx, PriorityFn&& priority) {
  auto plan = exclusive_plan(ordered, ctx.capacity());
  obs::DecisionLog* dlog = self.decision_log();
  if (dlog == nullptr) return plan;
  dlog->begin_round();
  dlog->entry("round_start")
      .str("scheduler", self.name())
      .str("policy", policy)
      .integer("queue", static_cast<std::int64_t>(ordered.size()))
      .integer("capacity", ctx.capacity());
  std::vector<std::int64_t> ids;
  std::vector<double> scores;
  ids.reserve(ordered.size());
  scores.reserve(ordered.size());
  for (const JobView& v : ordered) {
    ids.push_back(v.id);
    scores.push_back(priority(v));
  }
  dlog->entry("priority").str("policy", policy).ids("job", ids).nums("score",
                                                                     scores);
  std::vector<JobId> planned_ids;
  planned_ids.reserve(plan.size());
  for (const PlannedGroup& g : plan) {
    planned_ids.push_back(g.members.front());
    dlog->entry("group")
        .ids("jobs", g.members)
        .integer("gpus", g.num_gpus)
        .str("mode", "exclusive")
        .num("gamma", 1.0)
        .raw("admitted", "true");
  }
  std::int64_t rejected = 0;
  for (const JobView& v : ordered) {
    if (std::find(planned_ids.begin(), planned_ids.end(), v.id) !=
        planned_ids.end()) {
      continue;
    }
    ++rejected;
    dlog->entry("group")
        .ids("jobs", {v.id})
        .integer("gpus", v.num_gpus)
        .str("mode", "exclusive")
        .num("gamma", 1.0)
        .raw("admitted", "false")
        .str("reason", "gpu_budget");
  }
  dlog->entry("round_end")
      .integer("groups", static_cast<std::int64_t>(plan.size()))
      .integer("admitted", static_cast<std::int64_t>(plan.size()))
      .integer("rejected", rejected)
      .integer("contended", rejected > 0 ? 1 : 0);
  return plan;
}

}  // namespace

TiresiasScheduler::TiresiasScheduler() : TiresiasScheduler(Options{}) {}

AntManScheduler::AntManScheduler() : AntManScheduler(Options{}) {}

void sort_groups_for_placement(std::vector<PlannedGroup>& groups) {
  std::stable_sort(groups.begin(), groups.end(),
                   [](const PlannedGroup& a, const PlannedGroup& b) {
                     return a.num_gpus > b.num_gpus;
                   });
}

std::vector<PlannedGroup> exclusive_plan(const std::vector<JobView>& ordered,
                                         int total_gpus) {
  std::vector<PlannedGroup> plan;
  int budget = total_gpus;
  for (const JobView& v : ordered) {
    if (v.num_gpus <= budget) {
      PlannedGroup g;
      g.members = {v.id};
      g.num_gpus = v.num_gpus;
      g.mode = GroupMode::kExclusive;
      plan.push_back(std::move(g));
      budget -= v.num_gpus;
    }
    if (budget == 0) break;
  }
  sort_groups_for_placement(plan);
  return plan;
}

std::vector<PlannedGroup> FifoScheduler::schedule(
    const std::vector<JobView>& queue, const SchedulerContext& ctx) {
  const auto priority = [](const JobView& v) { return v.submit_time; };
  auto ordered = sorted_by_priority(queue, priority);
  return logged_exclusive_plan(*this, "FIFO", ordered, ctx, priority);
}

std::vector<PlannedGroup> SrtfScheduler::schedule(
    const std::vector<JobView>& queue, const SchedulerContext& ctx) {
  const auto priority = [](const JobView& v) { return v.remaining_time; };
  auto ordered = sorted_by_priority(queue, priority);
  return logged_exclusive_plan(*this, "SRTF", ordered, ctx, priority);
}

std::vector<PlannedGroup> SrsfScheduler::schedule(
    const std::vector<JobView>& queue, const SchedulerContext& ctx) {
  const auto priority = [](const JobView& v) {
    return v.remaining_time * static_cast<double>(v.num_gpus);
  };
  auto ordered = sorted_by_priority(queue, priority);
  return logged_exclusive_plan(*this, "SRSF", ordered, ctx, priority);
}

std::vector<PlannedGroup> TiresiasScheduler::schedule(
    const std::vector<JobView>& queue, const SchedulerContext& ctx) {
  // Discretized 2D-LAS: bucket by attained GPU-time, FIFO within a bucket.
  const auto& thresholds = options_.queue_thresholds;
  const auto priority = [&](const JobView& v) {
    std::size_t level = 0;
    while (level < thresholds.size() &&
           v.attained_service >= thresholds[level]) {
      ++level;
    }
    // Level dominates; submit time breaks ties inside a level (FIFO).
    return static_cast<double>(level) * 1e18 + v.submit_time;
  };
  auto ordered = sorted_by_priority(queue, priority);
  return logged_exclusive_plan(*this, "2D-LAS", ordered, ctx, priority);
}

std::vector<PlannedGroup> ThemisScheduler::schedule(
    const std::vector<JobView>& queue, const SchedulerContext& ctx) {
  // Finish-time-fairness approximation: a job's fairness deficit is its
  // age divided by the service it has attained (normalized per GPU).
  // Jobs with a large deficit (starved relative to their age) run first.
  const auto priority = [](const JobView& v) {
    const double per_gpu_service =
        v.attained_service / static_cast<double>(v.num_gpus);
    const double deficit = (v.age + 1.0) / (per_gpu_service + 1.0);
    return -deficit;
  };
  auto ordered = sorted_by_priority(queue, priority);
  return logged_exclusive_plan(*this, "fairness", ordered, ctx, priority);
}

std::vector<PlannedGroup> AntManScheduler::schedule(
    const std::vector<JobView>& queue, const SchedulerContext& ctx) {
  // Drop completed jobs from persistent state.
  std::map<JobId, const JobView*> alive;
  for (const JobView& v : queue) alive.emplace(v.id, &v);

  for (auto it = groups_.begin(); it != groups_.end();) {
    auto& members = it->second;
    members.erase(std::remove_if(members.begin(), members.end(),
                                 [&](JobId id) { return !alive.count(id); }),
                  members.end());
    if (members.empty()) {
      it = groups_.erase(it);
    } else {
      ++it;
    }
  }
  // Re-anchor groups whose primary finished.
  std::map<JobId, std::vector<JobId>> rebuilt;
  for (auto& [primary, members] : groups_) {
    rebuilt.emplace(members.front(), members);
  }
  groups_ = std::move(rebuilt);

  auto gpus_needed = [&](const std::vector<JobId>& members) {
    int need = 0;
    for (JobId id : members) {
      need = std::max(need, alive.at(id)->num_gpus);
    }
    return need;
  };

  int used = 0;
  std::vector<JobId> admitted;
  for (const auto& [primary, members] : groups_) {
    used += gpus_needed(members);
    for (JobId id : members) admitted.push_back(id);
  }

  // Admit pending jobs in FIFO order: exclusive GPUs if available,
  // otherwise opportunistically co-locate with a running group of the same
  // GPU demand that still has sharing headroom.
  auto ordered = sorted_by_priority(
      queue, [](const JobView& v) { return v.submit_time; });
  for (const JobView& v : ordered) {
    if (std::find(admitted.begin(), admitted.end(), v.id) != admitted.end()) {
      continue;
    }
    if (v.num_gpus <= ctx.capacity() - used) {
      groups_[v.id] = {v.id};
      used += v.num_gpus;
      admitted.push_back(v.id);
      continue;
    }
    for (auto& [primary, members] : groups_) {
      if (static_cast<int>(members.size()) < options_.max_sharing &&
          gpus_needed(members) == v.num_gpus) {
        members.push_back(v.id);
        admitted.push_back(v.id);
        break;
      }
    }
  }

  std::vector<PlannedGroup> plan;
  plan.reserve(groups_.size());
  for (const auto& [primary, members] : groups_) {
    PlannedGroup g;
    g.members = members;
    g.num_gpus = gpus_needed(members);
    g.mode = members.size() == 1 ? GroupMode::kExclusive
                                 : GroupMode::kUncoordinated;
    plan.push_back(std::move(g));
  }
  // Non-preemptive: keep existing groups ahead of placement pressure by
  // *not* re-sorting; insertion order (map by primary id) is stable and
  // the simulator places in plan order.
  if (obs::DecisionLog* dlog = decision_log(); dlog != nullptr) {
    dlog->begin_round();
    dlog->entry("round_start")
        .str("scheduler", name())
        .str("policy", "FIFO-sharing")
        .integer("queue", static_cast<std::int64_t>(queue.size()))
        .integer("capacity", ctx.capacity());
    std::vector<std::int64_t> ids;
    std::vector<double> scores;
    for (const JobView& v : ordered) {
      ids.push_back(v.id);
      scores.push_back(v.submit_time);
    }
    dlog->entry("priority").str("policy", "FIFO-sharing").ids("job", ids).nums(
        "score", scores);
    for (const PlannedGroup& g : plan) {
      dlog->entry("group")
          .ids("jobs", g.members)
          .integer("gpus", g.num_gpus)
          .str("mode", g.mode == GroupMode::kExclusive ? "exclusive"
                                                       : "uncoordinated")
          .num("gamma", 1.0)
          .raw("admitted", "true");
    }
    std::int64_t rejected = 0;
    for (const JobView& v : ordered) {
      if (std::find(admitted.begin(), admitted.end(), v.id) !=
          admitted.end()) {
        continue;
      }
      ++rejected;
      dlog->entry("group")
          .ids("jobs", {v.id})
          .integer("gpus", v.num_gpus)
          .str("mode", "exclusive")
          .num("gamma", 1.0)
          .raw("admitted", "false")
          .str("reason", "no_sharing_headroom");
    }
    dlog->entry("round_end")
        .integer("groups", static_cast<std::int64_t>(plan.size()))
        .integer("admitted", static_cast<std::int64_t>(plan.size()))
        .integer("rejected", rejected)
        .integer("contended", rejected > 0 ? 1 : 0);
  }
  return plan;
}

}  // namespace muri
