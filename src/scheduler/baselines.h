// Baseline schedulers the paper compares against (§6.1):
//
//  - FIFO: arrival order, exclusive GPUs.
//  - SRTF: shortest remaining (solo) time first.
//  - SRSF: shortest remaining *service* first — remaining time × GPUs,
//    Tiresias' duration-aware variant.
//  - Tiresias: 2D-LAS — least attained GPU-time first, with priority
//    discretization into queues to limit preemption churn.
//  - Themis: duration-unaware finish-time-fairness approximation — jobs
//    that have received the least service relative to their age run first.
//  - AntMan: non-preemptive FIFO with opportunistic, uncoordinated GPU
//    sharing (at most two jobs per GPU set).
//
// All preemptive baselines allocate GPUs exclusively per job and order
// placement by descending GPU demand (§5).
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "scheduler/scheduler.h"

namespace muri {

class FifoScheduler final : public Scheduler {
 public:
  std::string name() const override { return "FIFO"; }
  std::vector<PlannedGroup> schedule(const std::vector<JobView>& queue,
                                     const SchedulerContext& ctx) override;
};

class SrtfScheduler final : public Scheduler {
 public:
  std::string name() const override { return "SRTF"; }
  bool needs_durations() const override { return true; }
  std::vector<PlannedGroup> schedule(const std::vector<JobView>& queue,
                                     const SchedulerContext& ctx) override;
};

class SrsfScheduler final : public Scheduler {
 public:
  std::string name() const override { return "SRSF"; }
  bool needs_durations() const override { return true; }
  std::vector<PlannedGroup> schedule(const std::vector<JobView>& queue,
                                     const SchedulerContext& ctx) override;
};

class TiresiasScheduler final : public Scheduler {
 public:
  struct Options {
    // Attained-GPU-time thresholds (seconds × GPUs) separating the
    // discretized priority queues; within a queue, FIFO by submit time.
    std::vector<double> queue_thresholds = {3600.0, 4 * 3600.0};
  };
  TiresiasScheduler();
  explicit TiresiasScheduler(Options options) : options_(std::move(options)) {}
  std::string name() const override { return "Tiresias"; }
  std::vector<PlannedGroup> schedule(const std::vector<JobView>& queue,
                                     const SchedulerContext& ctx) override;

 private:
  Options options_;
};

class ThemisScheduler final : public Scheduler {
 public:
  std::string name() const override { return "Themis"; }
  std::vector<PlannedGroup> schedule(const std::vector<JobView>& queue,
                                     const SchedulerContext& ctx) override;
};

class AntManScheduler final : public Scheduler {
 public:
  struct Options {
    // Maximum jobs co-located on one GPU set.
    int max_sharing = 2;
  };
  AntManScheduler();
  explicit AntManScheduler(Options options) : options_(options) {}
  std::string name() const override { return "AntMan"; }
  std::vector<PlannedGroup> schedule(const std::vector<JobView>& queue,
                                     const SchedulerContext& ctx) override;

 private:
  Options options_;
  // Persistent assignment: primary job id -> co-located job ids (including
  // the primary itself, in admission order). Non-preemptive: once admitted,
  // a job stays until completion.
  std::map<JobId, std::vector<JobId>> groups_;
};

// Turns a priority-ordered queue prefix into exclusive singleton groups,
// admitting jobs while GPU capacity remains (simple backfilling: keeps
// scanning past jobs that no longer fit). Shared by the preemptive
// baselines.
std::vector<PlannedGroup> exclusive_plan(const std::vector<JobView>& ordered,
                                         int total_gpus);

}  // namespace muri
