#include "scheduler/muri.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <numeric>

#include "matching/blossom.h"

namespace muri {

namespace {

struct GroupNode {
  std::vector<int> members;  // indices into the bucket's profile array
};

}  // namespace

std::vector<std::vector<int>> multi_round_grouping(
    const std::vector<ResourceVector>& profiles, int max_group_size,
    std::int64_t* matchings_run) {
  assert(max_group_size >= 1);
  std::vector<GroupNode> nodes;
  nodes.reserve(profiles.size());
  for (int i = 0; i < static_cast<int>(profiles.size()); ++i) {
    nodes.push_back({{i}});
  }
  // Interleaving efficiency of the union of two nodes' members — the edge
  // weight of Algorithm 1. For two singletons this is the pairwise γ; for
  // merged nodes it is the true γ of the group the merge would create
  // (a super-node "is" its member set, so interleaving two super-nodes
  // means interleaving all their members).
  auto union_efficiency = [&](const GroupNode& a, const GroupNode& b) {
    if (a.members.size() == 1 && b.members.size() == 1) {
      return pairwise_efficiency(
          profiles[static_cast<size_t>(a.members[0])],
          profiles[static_cast<size_t>(b.members[0])]);
    }
    std::vector<ResourceVector> group;
    group.reserve(a.members.size() + b.members.size());
    for (int idx : a.members) group.push_back(profiles[static_cast<size_t>(idx)]);
    for (int idx : b.members) group.push_back(profiles[static_cast<size_t>(idx)]);
    return plan_interleave(group).efficiency;
  };
  if (max_group_size == 1 || nodes.size() < 2) {
    std::vector<std::vector<int>> singletons;
    for (auto& node : nodes) singletons.push_back(std::move(node.members));
    return singletons;
  }

  const int rounds = static_cast<int>(
      std::ceil(std::log2(static_cast<double>(max_group_size))));
  for (int round = 0; round < rounds; ++round) {
    const int n = static_cast<int>(nodes.size());
    if (n < 2) break;

    DenseGraph graph(n);
    bool any_edge = false;
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        const int combined =
            static_cast<int>(nodes[static_cast<size_t>(u)].members.size() +
                             nodes[static_cast<size_t>(v)].members.size());
        if (combined > max_group_size) continue;
        const double gamma = union_efficiency(nodes[static_cast<size_t>(u)],
                                              nodes[static_cast<size_t>(v)]);
        if (gamma > 0) {
          graph.set_weight(u, v, gamma);
          any_edge = true;
        }
      }
    }
    if (!any_edge) break;

    const Matching matching = max_weight_matching(graph);
    if (matchings_run != nullptr) ++*matchings_run;
    if (matching.pairs == 0) break;

    std::vector<GroupNode> next;
    next.reserve(nodes.size());
    std::vector<bool> consumed(static_cast<size_t>(n), false);
    for (int u = 0; u < n; ++u) {
      if (consumed[static_cast<size_t>(u)]) continue;
      const int v = matching.mate[static_cast<size_t>(u)];
      if (v >= 0) {
        consumed[static_cast<size_t>(u)] = true;
        consumed[static_cast<size_t>(v)] = true;
        GroupNode merged;
        merged.members = nodes[static_cast<size_t>(u)].members;
        merged.members.insert(merged.members.end(),
                              nodes[static_cast<size_t>(v)].members.begin(),
                              nodes[static_cast<size_t>(v)].members.end());
        next.push_back(std::move(merged));
      } else {
        consumed[static_cast<size_t>(u)] = true;
        next.push_back(std::move(nodes[static_cast<size_t>(u)]));
      }
    }
    nodes = std::move(next);
  }

  std::vector<std::vector<int>> groups;
  groups.reserve(nodes.size());
  for (auto& node : nodes) groups.push_back(std::move(node.members));
  return groups;
}

MuriScheduler::MuriScheduler(MuriOptions options) : options_(options) {
  assert(options_.max_group_size >= 1 &&
         options_.max_group_size <= kNumResources);
}

std::string MuriScheduler::name() const {
  std::string n = options_.durations_known ? "Muri-S" : "Muri-L";
  if (options_.max_group_size != 4) {
    n += "-" + std::to_string(options_.max_group_size);
  }
  if (options_.ordering == OrderingPolicy::kWorst) n += "-worstorder";
  if (!options_.use_blossom) n += "-noblossom";
  if (!options_.bucket_by_gpu) n += "-nobucket";
  return n;
}

double MuriScheduler::priority_of(const JobView& v) const {
  // Lower value = higher priority (§4.2 "Optimizing for average JCT").
  if (options_.durations_known) {
    return v.remaining_time * static_cast<double>(v.num_gpus);  // SRSF
  }
  return v.attained_service;  // 2D-LAS (attained GPU-time)
}

std::vector<PlannedGroup> MuriScheduler::schedule(
    const std::vector<JobView>& queue, const SchedulerContext& ctx) {
  auto ordered =
      sorted_by_priority(queue, [&](const JobView& v) { return priority_of(v); });

  // Uncontended cluster: exclusive allocation beats interleaving (no
  // sharing benefit, only overhead), so fall back to plain priority
  // scheduling.
  int total_demand = 0;
  for (const JobView& v : ordered) total_demand += v.num_gpus;
  if (total_demand <= ctx.capacity() || options_.max_group_size == 1) {
    std::vector<PlannedGroup> plan;
    plan.reserve(ordered.size());
    for (const JobView& v : ordered) {
      plan.push_back({{v.id}, v.num_gpus, GroupMode::kExclusive, {}});
    }
    sort_groups_for_placement(plan);
    return plan;
  }

  // Candidate prefix: enough jobs to fill the cluster with max-size groups
  // (Algorithm 1 lines 3-7), bounded by the configured cap.
  const int gpu_budget = options_.max_group_size * ctx.capacity();
  const int cap =
      options_.candidate_cap > 0
          ? options_.candidate_cap
          : std::min(options_.max_group_size * ctx.capacity(), 192);
  std::vector<JobView> candidates;
  std::vector<JobView> rest;
  int cum_gpus = 0;
  for (const JobView& v : ordered) {
    if (cum_gpus + v.num_gpus <= gpu_budget &&
        static_cast<int>(candidates.size()) < cap) {
      candidates.push_back(v);
      cum_gpus += v.num_gpus;
    } else {
      rest.push_back(v);
    }
  }

  // Bucket by GPU demand so a distributed job never straddles groups
  // (§4.2); with bucketing disabled (extension ablation) everything lands
  // in one bucket.
  std::map<int, std::vector<int>> buckets;  // gpu demand -> candidate index
  for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
    const int key =
        options_.bucket_by_gpu ? candidates[static_cast<size_t>(i)].num_gpus : 0;
    buckets[key].push_back(i);
  }

  struct Planned {
    PlannedGroup group;
    double priority;
  };
  std::vector<Planned> planned;

  for (auto& [key, indices] : buckets) {
    std::vector<ResourceVector> profiles;
    profiles.reserve(indices.size());
    for (int idx : indices) {
      profiles.push_back(
          candidates[static_cast<size_t>(idx)].measured.stage_time);
    }

    std::vector<std::vector<int>> groups;
    if (options_.use_blossom) {
      groups = multi_round_grouping(profiles, options_.max_group_size,
                                    &matchings_run_);
    } else {
      // Ablation (§6.4): pack jobs with the same GPU requirement
      // consecutively in descending priority order.
      std::vector<int> chunk;
      for (int i = 0; i < static_cast<int>(profiles.size()); ++i) {
        chunk.push_back(i);
        if (static_cast<int>(chunk.size()) == options_.max_group_size) {
          groups.push_back(chunk);
          chunk.clear();
        }
      }
      if (!chunk.empty()) groups.push_back(chunk);
    }

    for (const auto& group : groups) {
      PlannedGroup g;
      double best_priority = std::numeric_limits<double>::infinity();
      int max_gpus = 0;
      std::vector<ResourceVector> member_profiles;
      for (int local : group) {
        const JobView& v =
            candidates[static_cast<size_t>(indices[static_cast<size_t>(local)])];
        g.members.push_back(v.id);
        member_profiles.push_back(v.measured.stage_time);
        best_priority = std::min(best_priority, priority_of(v));
        max_gpus = std::max(max_gpus, v.num_gpus);
      }
      g.num_gpus = max_gpus;
      if (g.members.size() == 1) {
        g.mode = GroupMode::kExclusive;
      } else {
        g.mode = GroupMode::kInterleaved;
        InterleavePlan plan = plan_interleave(member_profiles, options_.ordering);
        g.slots = std::move(plan.slots);
        g.offsets = std::move(plan.offsets);
        g.planned_period = plan.period;
      }
      planned.push_back({std::move(g), best_priority});
    }
  }

  std::stable_sort(planned.begin(), planned.end(),
                   [](const Planned& a, const Planned& b) {
                     return a.priority < b.priority;
                   });

  // Admission under the GPU budget in priority order (a group consumes one
  // GPU set for all its members — that is the whole point), then §5
  // placement ordering among the admitted groups. Unadmitted groups and
  // the jobs beyond the candidate prefix follow as backfill.
  std::vector<PlannedGroup> admitted;
  std::vector<PlannedGroup> overflow;
  int budget = ctx.capacity();
  for (auto& p : planned) {
    if (p.group.num_gpus <= budget) {
      budget -= p.group.num_gpus;
      admitted.push_back(std::move(p.group));
    } else {
      overflow.push_back(std::move(p.group));
    }
  }
  sort_groups_for_placement(admitted);

  std::vector<PlannedGroup> plan = std::move(admitted);
  plan.reserve(plan.size() + overflow.size() + rest.size());
  for (auto& g : overflow) plan.push_back(std::move(g));
  for (const JobView& v : rest) {
    plan.push_back({{v.id}, v.num_gpus, GroupMode::kExclusive, {}, {}});
  }
  return plan;
}

}  // namespace muri
