#include "scheduler/muri.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <map>
#include <numeric>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/threadpool.h"
#include "matching/blossom.h"
#include "matching/capture.h"
#include "matching/incremental/incremental.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"

namespace muri {

namespace {

struct GroupNode {
  std::vector<int> members;  // indices into the bucket's profile array
};

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// γ-memoization across the log₂k rounds, keyed by the sorted member-index
// set of the union an edge would create. Within one round every union set
// is distinct (nodes partition the members), so a key can only repeat
// across rounds — exactly the case of two super-nodes that both survived
// a matching unmatched and whose pair edge would otherwise be recomputed
// from scratch. Because a node's member list never changes once formed,
// a cached γ is bit-identical to what re-evaluation would produce.
struct MemberSetHash {
  size_t operator()(const std::vector<int>& v) const noexcept {
    size_t h = 0x9e3779b97f4a7c15ull ^ v.size();
    for (int x : v) {
      h ^= static_cast<size_t>(x) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};
using GammaCache = std::unordered_map<std::vector<int>, double, MemberSetHash>;

void union_key(const GroupNode& a, const GroupNode& b, std::vector<int>& key) {
  key.clear();
  key.reserve(a.members.size() + b.members.size());
  key.insert(key.end(), a.members.begin(), a.members.end());
  key.insert(key.end(), b.members.begin(), b.members.end());
  std::sort(key.begin(), key.end());
}

// Folds one round's GroupingStats into the registry. Counters are bumped
// once per schedule() call in call order, the same fold order
// cumulative_stats_ uses, so the registry reproduces those doubles
// *exactly* (bit-identical sums), not merely approximately.
void export_round_metrics(obs::MetricsRegistry& m, const GroupingStats& round,
                          std::size_t queue_jobs, std::size_t plan_groups,
                          double round_wall_seconds,
                          std::int64_t groups_formed,
                          std::int64_t groups_rejected) {
  m.counter("muri_sched_rounds_total", "Scheduling rounds executed").inc();
  m.counter("muri_sched_graph_build_seconds_total",
            "Wall seconds building matching-graph edge weights")
      .inc(round.graph_build_seconds);
  m.counter("muri_sched_matching_seconds_total",
            "Wall seconds inside Blossom matching")
      .inc(round.matching_seconds);
  m.counter("muri_sched_gamma_cache_hits_total",
            "Gamma evaluations avoided by the memoization cache")
      .inc(static_cast<double>(round.cache_hits));
  m.counter("muri_sched_gamma_cache_misses_total",
            "Gamma evaluations performed")
      .inc(static_cast<double>(round.cache_misses));
  m.counter("muri_sched_matchings_total", "Blossom invocations")
      .inc(static_cast<double>(round.matchings_run));
  // Aggregate decision counters, mirroring the provenance log's verdicts
  // onto /metrics (the simulator adds preemptions-by-reason alongside).
  m.counter("muri_decision_groups_formed_total",
            "Multi-job interleaving groups emitted by grouping")
      .inc(static_cast<double>(groups_formed));
  m.counter("muri_decision_groups_rejected_total",
            "Planned groups denied admission by the round's GPU budget")
      .inc(static_cast<double>(groups_rejected));
  m.counter("muri_decision_matching_fallbacks_total",
            "Grouping rounds that ended without a productive matching")
      .inc(static_cast<double>(round.matching_fallbacks));
  // Delta-round accounting (matching/incremental). All zero in rebuild
  // mode, so exporting unconditionally keeps the registry shape stable
  // across configurations.
  m.counter("muri_sched_dirty_jobs_total",
            "Per-bucket membership changes processed by incremental rounds")
      .inc(static_cast<double>(round.dirty_jobs));
  m.counter("muri_sched_topk_rescans_total",
            "Top-k candidate buffers rebuilt by a full rescan")
      .inc(static_cast<double>(round.topk_rescans));
  m.counter("muri_sched_pair_gamma_reused_total",
            "Round-0 pairwise gamma values served from the cross-round cache")
      .inc(static_cast<double>(round.edges_reused));
  m.counter("muri_sched_pair_gamma_patched_total",
            "Round-0 pairwise gamma values recomputed (dirty edges)")
      .inc(static_cast<double>(round.edges_patched));
  m.counter("muri_sched_components_total",
            "Capped candidate-graph components offered to grouping")
      .inc(static_cast<double>(round.components_total));
  m.counter("muri_sched_components_reused_total",
            "Components folded forward from the cross-round result cache")
      .inc(static_cast<double>(round.components_reused));
  m.counter("muri_sched_components_trivial_total",
            "Single-member components served by the direct fast path")
      .inc(static_cast<double>(round.components_trivial));
  m.gauge("muri_sched_queue_jobs", "Jobs visible to the last round")
      .set(static_cast<double>(queue_jobs));
  m.gauge("muri_sched_plan_groups", "Groups emitted by the last round")
      .set(static_cast<double>(plan_groups));
  m.summary("muri_sched_round_wall_seconds",
            "End-to-end wall time of schedule()")
      .observe(round_wall_seconds);
  // Per-phase latency histograms for the live SLO plane's round
  // breakdown (/stats). One labeled series per phase; exponential bounds
  // cover sub-100µs sorts through multi-second contended matchings.
  static const std::vector<double> kPhaseBounds{1e-5, 1e-4, 1e-3, 1e-2,
                                                0.1,  1.0,  10.0};
  const auto phase = [&](const char* name, double seconds) {
    m.histogram("muri_sched_phase_seconds",
                "Wall seconds per scheduling-round phase", kPhaseBounds,
                {{"phase", name}})
        .observe(seconds);
  };
  phase("sort", round.priority_sort_seconds);
  phase("graph_build", round.graph_build_seconds);
  phase("matching", round.matching_seconds);
  phase("admission", round.admission_seconds);
}

}  // namespace

std::vector<std::vector<int>> multi_round_grouping(
    const std::vector<ResourceVector>& profiles, int max_group_size,
    ThreadPool* pool, GroupingStats* stats, GroupingCapture* capture,
    PairGammaHook* pair_hook) {
  assert(max_group_size >= 1);
  std::vector<GroupNode> nodes;
  nodes.reserve(profiles.size());
  for (int i = 0; i < static_cast<int>(profiles.size()); ++i) {
    nodes.push_back({{i}});
  }
  if (max_group_size == 1 || nodes.size() < 2) {
    std::vector<std::vector<int>> singletons;
    for (auto& node : nodes) singletons.push_back(std::move(node.members));
    return singletons;
  }

  GammaCache gamma_cache;
  const int rounds = static_cast<int>(
      std::ceil(std::log2(static_cast<double>(max_group_size))));
  for (int round = 0; round < rounds; ++round) {
    const int n = static_cast<int>(nodes.size());
    if (n < 2) break;

    // Interleaving efficiency of the union of two nodes' members — the
    // edge weight of Algorithm 1. For two singletons this is the pairwise
    // γ closed form; for merged nodes it is the true γ of the group the
    // merge would create (a super-node "is" its member set, so
    // interleaving two super-nodes means interleaving all their members).
    //
    // Each row u owns graph cells (u, v) for v > u and set_weight writes
    // only those two mirrored slots, so rows are data-race free and the
    // assembled graph is bit-identical for any thread count. The γ-cache
    // is read-only during this phase; misses are folded in serially below.
    const auto t_graph = Clock::now();
    DenseGraph graph(n);
    std::atomic<bool> any_edge{false};
    const auto eval_row = [&](std::int64_t row) {
      const int u = static_cast<int>(row);
      thread_local PlanScratch scratch;
      thread_local std::vector<ResourceVector> group;
      thread_local std::vector<int> key;
      const GroupNode& a = nodes[static_cast<size_t>(u)];
      bool row_edge = false;
      for (int v = u + 1; v < n; ++v) {
        const GroupNode& b = nodes[static_cast<size_t>(v)];
        const int combined =
            static_cast<int>(a.members.size() + b.members.size());
        if (combined > max_group_size) continue;
        double gamma = 0;
        bool cached = false;
        if (round > 0) {  // round 0 starts with a provably empty cache
          union_key(a, b, key);
          const auto it = gamma_cache.find(key);
          if (it != gamma_cache.end()) {
            gamma = it->second;
            cached = true;
          }
        } else if (combined == 2 && pair_hook != nullptr) {
          // Cross-round pair memo (matching/incremental): the hook
          // validates full profile bits, so a hit is bit-identical to
          // recomputation. Read-only here — stores happen in the serial
          // fold below.
          cached = pair_hook->lookup(a.members[0], b.members[0], &gamma);
        }
        if (!cached) {
          if (combined == 2) {
            gamma = pairwise_efficiency(
                profiles[static_cast<size_t>(a.members[0])],
                profiles[static_cast<size_t>(b.members[0])]);
          } else {
            group.clear();
            for (int idx : a.members) {
              group.push_back(profiles[static_cast<size_t>(idx)]);
            }
            for (int idx : b.members) {
              group.push_back(profiles[static_cast<size_t>(idx)]);
            }
            gamma = interleave_efficiency(group, scratch);
          }
        }
        if (gamma > 0) {
          graph.set_weight(u, v, gamma);
          row_edge = true;
        }
      }
      if (row_edge) any_edge.store(true, std::memory_order_relaxed);
    };
    if (pool != nullptr) {
      pool->parallel_for(0, n, eval_row);
    } else {
      for (int u = 0; u < n; ++u) eval_row(u);
    }

    // Fold this round's γ values into the cache. γ ≥ 0 always and edges
    // with γ == 0 are simply absent from the graph, so the cell value *is*
    // the computed γ. try_emplace finding the key present means an earlier
    // round cached it — a hit the parallel phase already exploited (a pair
    // of nodes that both survived a matching unmatched and would otherwise
    // be recomputed from scratch). A miss therefore counts exactly one γ
    // evaluation, a hit exactly one avoided.
    {
      std::vector<int> key;
      for (int u = 0; u < n; ++u) {
        for (int v = u + 1; v < n; ++v) {
          const GroupNode& a = nodes[static_cast<size_t>(u)];
          const GroupNode& b = nodes[static_cast<size_t>(v)];
          const int combined =
              static_cast<int>(a.members.size() + b.members.size());
          if (combined > max_group_size) continue;
          union_key(a, b, key);
          const bool inserted =
              gamma_cache.try_emplace(key, graph.weight(u, v)).second;
          if (stats != nullptr) {
            ++(inserted ? stats->cache_misses : stats->cache_hits);
          }
          if (round == 0 && combined == 2 && pair_hook != nullptr) {
            // Every admissible round-0 pair reports its final γ — cell
            // value 0 means "computed γ is 0", never "absent", because
            // round 0 offers every pair.
            pair_hook->store(a.members[0], b.members[0], graph.weight(u, v));
          }
        }
      }
    }
    if (stats != nullptr) stats->graph_build_seconds += seconds_since(t_graph);

    // Provenance snapshot of this round's decision inputs, copied out of
    // the assembled graph — never consulted by the algorithm, so capture
    // on/off yields bit-identical groupings.
    MatchingRoundRecord* rec = nullptr;
    if (capture != nullptr) {
      rec = &capture->rounds.emplace_back();
      rec->stage = round;
      rec->nodes.reserve(static_cast<size_t>(n));
      for (const GroupNode& node : nodes) rec->nodes.push_back(node.members);
      for (int u = 0; u < n; ++u) {
        for (int v = u + 1; v < n; ++v) {
          const double w = graph.weight(u, v);
          if (w > 0) rec->edges.push_back({u, v, w});
        }
      }
    }
    const auto record_fallback = [&] {
      if (stats != nullptr) ++stats->matching_fallbacks;
      if (rec == nullptr) return;
      rec->fallback = true;
      for (int u = 0; u < n; ++u) rec->unmatched.push_back(u);
    };
    if (!any_edge.load(std::memory_order_relaxed)) {
      record_fallback();
      break;
    }

    const auto t_match = Clock::now();
    const Matching matching = max_weight_matching(graph);
    if (stats != nullptr) {
      stats->matching_seconds += seconds_since(t_match);
      ++stats->matchings_run;
    }
    if (matching.pairs == 0) {
      record_fallback();
      break;
    }
    if (rec != nullptr) {
      for (int u = 0; u < n; ++u) {
        const int v = matching.mate[static_cast<size_t>(u)];
        if (v > u) {
          rec->matched.push_back({u, v});
        } else if (v < 0) {
          rec->unmatched.push_back(u);
        }
      }
    }

    std::vector<GroupNode> next;
    next.reserve(nodes.size());
    std::vector<bool> consumed(static_cast<size_t>(n), false);
    for (int u = 0; u < n; ++u) {
      if (consumed[static_cast<size_t>(u)]) continue;
      const int v = matching.mate[static_cast<size_t>(u)];
      if (v >= 0) {
        consumed[static_cast<size_t>(u)] = true;
        consumed[static_cast<size_t>(v)] = true;
        GroupNode merged;
        merged.members = nodes[static_cast<size_t>(u)].members;
        merged.members.insert(merged.members.end(),
                              nodes[static_cast<size_t>(v)].members.begin(),
                              nodes[static_cast<size_t>(v)].members.end());
        next.push_back(std::move(merged));
      } else {
        consumed[static_cast<size_t>(u)] = true;
        next.push_back(std::move(nodes[static_cast<size_t>(u)]));
      }
    }
    nodes = std::move(next);
  }

  std::vector<std::vector<int>> groups;
  groups.reserve(nodes.size());
  for (auto& node : nodes) groups.push_back(std::move(node.members));
  return groups;
}

std::vector<std::vector<int>> multi_round_grouping(
    const std::vector<ResourceVector>& profiles, int max_group_size,
    std::int64_t* matchings_run) {
  GroupingStats stats;
  auto groups = multi_round_grouping(profiles, max_group_size, nullptr, &stats);
  if (matchings_run != nullptr) *matchings_run += stats.matchings_run;
  return groups;
}

// Cross-round incremental state: one BucketGraphState per GPU-demand
// bucket key. std::map for deterministic iteration when aging out
// buckets that stopped appearing.
struct MuriScheduler::IncrementalState {
  std::map<int, BucketGraphState> buckets;
};

// Entries (pair γs, component results, whole buckets) untouched for this
// many rounds are dropped — long enough that transient priority shuffles
// do not thrash the caches, short enough that a drained queue releases
// its memory.
constexpr std::int64_t kIncrementalMaxAge = 64;

MuriScheduler::MuriScheduler(MuriOptions options) : options_(options) {
  assert(options_.max_group_size >= 1 &&
         options_.max_group_size <= kNumResources);
  assert(options_.num_threads >= 0);
  assert(options_.top_k >= 0);
  set_decision_log(options_.decisions);
}

MuriScheduler::~MuriScheduler() = default;

ThreadPool* MuriScheduler::pool() {
  int requested = options_.num_threads;
  if (requested <= 0) {
    requested = static_cast<int>(std::thread::hardware_concurrency());
    if (requested <= 0) requested = 1;
  }
  // The calling thread participates in every parallel_for, so a request
  // for t-way concurrency needs t-1 workers.
  const int workers = requested - 1;
  if (workers <= 0) return nullptr;
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(workers);
  return pool_.get();
}

std::string MuriScheduler::name() const {
  std::string n = options_.durations_known ? "Muri-S" : "Muri-L";
  if (options_.max_group_size != 4) {
    // Two appends, not `"-" + std::to_string(...)`: the temporary-chain
    // form trips GCC 12's -Wrestrict false positive (PR 105651) at -O2.
    n += "-";
    n += std::to_string(options_.max_group_size);
  }
  if (options_.ordering == OrderingPolicy::kWorst) n += "-worstorder";
  if (!options_.use_blossom) n += "-noblossom";
  if (!options_.bucket_by_gpu) n += "-nobucket";
  // top_k (and its component cap) change which edges Blossom sees, so
  // they are part of the scheduler's identity. `incremental` is absent
  // on purpose: it is a pure latency knob, bit-identical to the rebuild
  // at the same top_k — putting it in the name would break the
  // DecisionLog byte-equality the equivalence gate enforces.
  if (options_.top_k > 0) {
    n += "-topk";
    n += std::to_string(options_.top_k);
    if (options_.component_cap != 32) {
      n += "-cap";
      n += std::to_string(options_.component_cap);
    }
  }
  return n;
}

double MuriScheduler::priority_of(const JobView& v) const {
  // Lower value = higher priority (§4.2 "Optimizing for average JCT").
  if (options_.durations_known) {
    return v.remaining_time * static_cast<double>(v.num_gpus);  // SRSF
  }
  return v.attained_service;  // 2D-LAS (attained GPU-time)
}

std::vector<PlannedGroup> MuriScheduler::schedule(
    const std::vector<JobView>& queue, const SchedulerContext& ctx) {
  last_round_stats_ = {};
  // Round id shared by the trace round span and the decision log — the
  // Perfetto/provenance cross-link. round_seq_ and begin_round() advance
  // in lockstep, so a log attached from construction sees the very ids a
  // log-free run stamps on its traces.
  obs::DecisionLog* dlog = decision_log();
  ++round_seq_;
  const std::int64_t round_id =
      dlog != nullptr ? dlog->begin_round() : round_seq_;
  // Decision counters surfaced by finish_round (metrics + round_end).
  std::int64_t groups_formed = 0;
  std::int64_t groups_rejected = 0;
  // Observability epilogue shared by both return paths. Purely read-only:
  // the plan is computed before any of this runs, so instrumented and
  // uninstrumented rounds emit bit-identical plans.
  const bool instrumented =
      options_.metrics != nullptr || options_.trace != nullptr;
  const auto t_round = instrumented ? Clock::now() : Clock::time_point{};
  const auto finish_round = [&](const std::vector<PlannedGroup>& plan,
                                bool contended) {
    if (dlog != nullptr) {
      dlog->entry("round_end")
          .integer("groups", static_cast<std::int64_t>(plan.size()))
          .integer("admitted",
                   static_cast<std::int64_t>(plan.size()) - groups_rejected)
          .integer("rejected", groups_rejected)
          .integer("contended", contended ? 1 : 0);
    }
    if (!instrumented) return;
    const double wall_seconds = seconds_since(t_round);
    if (options_.metrics != nullptr) {
      export_round_metrics(*options_.metrics, last_round_stats_, queue.size(),
                           plan.size(), wall_seconds, groups_formed,
                           groups_rejected);
    }
    if (options_.trace != nullptr && options_.trace->enabled()) {
      obs::Tracer& tr = *options_.trace;
      tr.name_track(obs::kSchedulerTrack, "scheduler");
      // A true wall span in the steady domain; in the manual (sim-time)
      // domain a round takes zero simulated time, so it collapses to a
      // deterministic zero-duration marker at the current sim instant.
      // Args carry only mode-independent facts (queue, groups, round id):
      // work counters like cache hits differ between the rebuild and
      // incremental paths by design, and embedding them here would break
      // the trace byte-equality the equivalence gate enforces.
      const std::int64_t end_us = tr.now_micros();
      const std::int64_t dur_us =
          tr.manual_time() ? 0
                           : static_cast<std::int64_t>(wall_seconds * 1e6);
      obs::TraceArgs args("queue", static_cast<double>(queue.size()),
                          "groups", static_cast<double>(plan.size()),
                          "round", static_cast<double>(round_id));
      // Opt-in only: phase wall times are mode-dependent work counters
      // (see MuriOptions::trace_phases).
      if (options_.trace_phases) {
        args.add("sort_s", last_round_stats_.priority_sort_seconds);
        args.add("graph_s", last_round_stats_.graph_build_seconds);
        args.add("match_s", last_round_stats_.matching_seconds);
        args.add("admit_s", last_round_stats_.admission_seconds);
      }
      tr.complete(end_us - dur_us, dur_us, "round", "sched",
                  obs::kSchedulerTrack, 0, args);
    }
  };
  // Phase timer for the live SLO plane's round breakdown. Folded into
  // cumulative_stats_ by the contended path's accumulate (the uncontended
  // fast path keeps today's semantics: cumulative counts grouping work).
  const auto t_sort = Clock::now();
  auto ordered =
      sorted_by_priority(queue, [&](const JobView& v) { return priority_of(v); });
  last_round_stats_.priority_sort_seconds = seconds_since(t_sort);
  if (dlog != nullptr) {
    {
      auto e = dlog->entry("round_start");
      e.str("scheduler", name())
          .str("policy", options_.durations_known ? "SRSF" : "2D-LAS")
          .integer("queue", static_cast<std::int64_t>(queue.size()))
          .integer("capacity", ctx.capacity());
      // Lifecycle churn since the previous round, as reported by the
      // caller (the simulator plumbs arrivals/finishes/preemptions/
      // evictions through SchedulerContext::dirty_jobs). Identical
      // between rebuild and incremental runs — it describes the *input*
      // delta, not the work done with it — so logging it keeps the
      // DecisionLog byte-equality contract intact.
      if (ctx.dirty_jobs != nullptr) {
        e.integer("dirty",
                  static_cast<std::int64_t>(ctx.dirty_jobs->size()));
      }
    }
    std::vector<std::int64_t> ids;
    std::vector<double> scores;
    ids.reserve(ordered.size());
    scores.reserve(ordered.size());
    for (const JobView& v : ordered) {
      ids.push_back(v.id);
      scores.push_back(priority_of(v));
    }
    dlog->entry("priority")
        .str("policy", options_.durations_known ? "SRSF" : "2D-LAS")
        .ids("job", ids)
        .nums("score", scores);
  }

  // Uncontended cluster: exclusive allocation beats interleaving (no
  // sharing benefit, only overhead), so fall back to plain priority
  // scheduling.
  int total_demand = 0;
  for (const JobView& v : ordered) total_demand += v.num_gpus;
  if (total_demand <= ctx.capacity() || options_.max_group_size == 1) {
    std::vector<PlannedGroup> plan;
    plan.reserve(ordered.size());
    for (const JobView& v : ordered) {
      plan.push_back({{v.id}, v.num_gpus, GroupMode::kExclusive, {}, {}, 0});
    }
    sort_groups_for_placement(plan);
    set_last_deferred({});
    finish_round(plan, /*contended=*/false);
    return plan;
  }

  // Candidate prefix: enough jobs to fill the cluster with max-size groups
  // (Algorithm 1 lines 3-7), bounded by the configured cap.
  const int gpu_budget = options_.max_group_size * ctx.capacity();
  const int cap =
      options_.candidate_cap > 0
          ? options_.candidate_cap
          : std::min(options_.max_group_size * ctx.capacity(), 192);
  std::vector<JobView> candidates;
  std::vector<JobView> rest;
  int cum_gpus = 0;
  for (const JobView& v : ordered) {
    if (cum_gpus + v.num_gpus <= gpu_budget &&
        static_cast<int>(candidates.size()) < cap) {
      candidates.push_back(v);
      cum_gpus += v.num_gpus;
    } else {
      rest.push_back(v);
    }
  }

  // Bucket by GPU demand so a distributed job never straddles groups
  // (§4.2); with bucketing disabled (extension ablation) everything lands
  // in one bucket.
  std::map<int, std::vector<int>> buckets;  // gpu demand -> candidate index
  for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
    const int key =
        options_.bucket_by_gpu ? candidates[static_cast<size_t>(i)].num_gpus : 0;
    buckets[key].push_back(i);
  }

  // Materialize the buckets in ascending-demand order (the map's order —
  // the serial iteration order) so results are assembled identically no
  // matter how the grouping work below is scheduled across threads.
  std::vector<std::vector<int>> bucket_indices;
  std::vector<int> bucket_keys;
  bucket_indices.reserve(buckets.size());
  bucket_keys.reserve(buckets.size());
  for (auto& [key, indices] : buckets) {
    bucket_keys.push_back(key);
    bucket_indices.push_back(std::move(indices));
  }
  const size_t nb = bucket_indices.size();
  std::vector<std::vector<ResourceVector>> bucket_profiles(nb);
  for (size_t bi = 0; bi < nb; ++bi) {
    bucket_profiles[bi].reserve(bucket_indices[bi].size());
    for (int idx : bucket_indices[bi]) {
      bucket_profiles[bi].push_back(
          candidates[static_cast<size_t>(idx)].measured.stage_time);
    }
  }

  // Job ids per bucket-local index — the candidate-graph identity the
  // incremental masks and caches key on.
  std::vector<std::vector<JobId>> bucket_job_ids(nb);
  for (size_t bi = 0; bi < nb; ++bi) {
    bucket_job_ids[bi].reserve(bucket_indices[bi].size());
    for (int idx : bucket_indices[bi]) {
      bucket_job_ids[bi].push_back(candidates[static_cast<size_t>(idx)].id);
    }
  }

  // Incremental mode: pre-create every bucket's persistent state
  // serially before the parallel phase (inserting into the map from
  // concurrent bucket tasks would race), then let each bucket task
  // mutate only its own state — cache evolution is confined to the
  // bucket's deterministic serial flow, so it is identical for every
  // thread count.
  if (options_.incremental && options_.use_blossom) {
    if (incr_ == nullptr) incr_ = std::make_unique<IncrementalState>();
    for (size_t bi = 0; bi < nb; ++bi) {
      auto [it, inserted] = incr_->buckets.try_emplace(
          bucket_keys[bi], BucketGraphState(options_.top_k));
      it->second.last_seen_round = round_seq_;
      (void)inserted;
    }
    // Buckets that stopped appearing (demand class drained) age out.
    for (auto it = incr_->buckets.begin(); it != incr_->buckets.end();) {
      if (round_seq_ - it->second.last_seen_round > kIncrementalMaxAge) {
        it = incr_->buckets.erase(it);
      } else {
        ++it;
      }
    }
  }

  // One unit of grouping work: a capped component of a bucket's pruned
  // candidate graph (with top_k == 0 the whole bucket is one component,
  // which is exactly the pre-existing dense path). Results, counters,
  // captures, and deferred cache stores all land in slots owned by the
  // component so the parallel phase below stays race-free; everything is
  // folded serially in (bucket, component) order afterwards.
  struct ComponentWork {
    std::vector<int> local;              // bucket-local member indices
    std::vector<JobId> ids;              // parallel to `local`
    std::vector<ResourceVector> profs;   // parallel to `local`
    std::vector<std::vector<int>> groups;  // component-local indices
    GroupingCapture capture;
    GroupingStats stats;
    bool reused = false;
    bool trivial = false;  // single member: direct {{0}}, no cache, no hook
    std::unique_ptr<ComponentPairHook> hook;
  };

  std::vector<std::vector<std::vector<int>>> bucket_groups(nb);
  std::vector<GroupingStats> bucket_stats(nb);
  // Per-bucket (component member list, capture) pairs for the decision
  // log, serialized after the parallel phase in (bucket, component)
  // order. Empty when no log is attached.
  std::vector<std::vector<std::pair<std::vector<int>, GroupingCapture>>>
      bucket_comp_captures(nb);
  ThreadPool* round_pool = pool();
  const bool incremental = options_.incremental && options_.use_blossom;
  const auto group_bucket = [&](std::int64_t bi_raw) {
    const auto bi = static_cast<size_t>(bi_raw);
    const auto& profs = bucket_profiles[bi];
    const auto& ids = bucket_job_ids[bi];
    auto& groups = bucket_groups[bi];
    GroupingStats& bstats = bucket_stats[bi];
    if (!options_.use_blossom) {
      // Ablation (§6.4): pack jobs with the same GPU requirement
      // consecutively in descending priority order.
      std::vector<int> chunk;
      for (int i = 0; i < static_cast<int>(profs.size()); ++i) {
        chunk.push_back(i);
        if (static_cast<int>(chunk.size()) == options_.max_group_size) {
          groups.push_back(chunk);
          chunk.clear();
        }
      }
      if (!chunk.empty()) groups.push_back(chunk);
      return;
    }

    BucketGraphState* state =
        incremental ? &incr_->buckets.at(bucket_keys[bi]) : nullptr;

    // 1. Component split — identical in both modes: the same mask (the
    // maintained one is provably equal to from-scratch, see
    // matching/incremental) through the same capped union-find. With
    // top_k == 0 the whole bucket is one component and no mask is built.
    IncrementalStats istats;
    std::vector<std::vector<int>> comps;
    if (options_.top_k > 0) {
      if (state != nullptr) {
        state->mask.update(ids, profs, &istats);
        comps = split_components(ids, state->mask.edges(),
                                 options_.component_cap);
      } else {
        const TopKMask mask =
            TopKMask::from_scratch(ids, profs, options_.top_k);
        comps = split_components(ids, mask.edges(), options_.component_cap);
      }
    } else {
      comps.emplace_back(static_cast<size_t>(profs.size()));
      std::iota(comps.back().begin(), comps.back().end(), 0);
    }

    // 2. Materialize per-component inputs and consult the component
    // result cache (serially — lookup refreshes the entry's age).
    const size_t nc = comps.size();
    std::vector<ComponentWork> work(nc);
    for (size_t ci = 0; ci < nc; ++ci) {
      ComponentWork& w = work[ci];
      w.local = std::move(comps[ci]);
      if (w.local.size() == 1) {
        // Trivial component: multi_round_grouping on one profile returns
        // {{0}} without touching stats, capture, or the hook, so skipping
        // the cache machinery (id/profile copies, hashing, store) changes
        // no byte of any output — it only removes allocator traffic, which
        // dominates the warm-round floor at 10k jobs.
        w.trivial = true;
        continue;
      }
      w.ids.reserve(w.local.size());
      w.profs.reserve(w.local.size());
      for (int li : w.local) {
        w.ids.push_back(ids[static_cast<size_t>(li)]);
        w.profs.push_back(profs[static_cast<size_t>(li)]);
      }
      if (state != nullptr) {
        const auto* hit = state->component_cache.lookup(
            w.ids, w.profs, /*need_capture=*/dlog != nullptr, round_seq_);
        if (hit != nullptr) {
          w.groups = hit->groups;
          if (dlog != nullptr) w.capture = hit->capture;
          w.reused = true;
        }
      }
    }

    // 3. Group the components that were not folded forward. Components
    // of one bucket run concurrently when there are several (the 10k-job
    // single-bucket case); a lone component fans its edge loop across
    // the pool instead — which with top_k == 0 is byte-for-byte the
    // pre-existing whole-bucket path.
    const auto run_component = [&](std::int64_t ci_raw) {
      ComponentWork& w = work[static_cast<size_t>(ci_raw)];
      if (w.reused || w.trivial) return;
      if (state != nullptr) {
        w.hook = std::make_unique<ComponentPairHook>(&state->pair_cache,
                                                     w.ids, &w.profs);
      }
      ThreadPool* inner = nc == 1 ? round_pool : nullptr;
      w.groups = multi_round_grouping(
          w.profs, options_.max_group_size, inner, &w.stats,
          dlog != nullptr ? &w.capture : nullptr, w.hook.get());
    };
    if (round_pool != nullptr && nc > 1) {
      round_pool->parallel_for(0, static_cast<std::int64_t>(nc),
                               run_component);
    } else {
      for (size_t ci = 0; ci < nc; ++ci) {
        run_component(static_cast<std::int64_t>(ci));
      }
    }

    // 4. Serial fold in component order: translate groups to
    // bucket-local indices, accumulate counters, commit deferred cache
    // stores. Deterministic regardless of how step 3 was scheduled.
    bstats.dirty_jobs += istats.dirty_jobs;
    bstats.topk_rescans += istats.topk_rescans;
    for (size_t ci = 0; ci < nc; ++ci) {
      ComponentWork& w = work[ci];
      bstats.accumulate(w.stats);
      ++bstats.components_total;
      if (w.trivial) {
        ++bstats.components_trivial;
        groups.push_back(std::vector<int>{w.local[0]});
        if (dlog != nullptr) {
          bucket_comp_captures[bi].emplace_back(std::move(w.local),
                                                GroupingCapture{});
        }
        continue;
      }
      if (w.reused) ++bstats.components_reused;
      if (w.hook != nullptr) {
        bstats.edges_reused += w.hook->hits();
        bstats.edges_patched += w.hook->misses();
      }
      for (const auto& g : w.groups) {
        std::vector<int> mapped;
        mapped.reserve(g.size());
        for (int m : g) {
          mapped.push_back(w.local[static_cast<size_t>(m)]);
        }
        groups.push_back(std::move(mapped));
      }
      if (state != nullptr) {
        if (w.hook != nullptr) {
          for (const PendingPairStore& p : w.hook->pending()) {
            state->pair_cache.store(p.a, p.pa, p.b, p.pb, p.gamma,
                                    round_seq_);
          }
        }
        if (!w.reused) {
          ComponentResultCache::CachedComponent entry;
          entry.ids = w.ids;
          entry.profiles = w.profs;
          entry.groups = w.groups;
          entry.has_capture = dlog != nullptr;
          if (dlog != nullptr) entry.capture = w.capture;
          state->component_cache.store(std::move(entry), round_seq_);
        }
      }
      if (dlog != nullptr) {
        bucket_comp_captures[bi].emplace_back(std::move(w.local),
                                              std::move(w.capture));
      }
    }
    if (state != nullptr && (round_seq_ & 0xF) == 0) {
      // Aging only evicts exact entries (an evicted one just recomputes
      // to the same bits), so sweeping every 16th round is pure latency
      // saving; entries live at most kIncrementalMaxAge + 15 rounds.
      state->pair_cache.age(round_seq_, kIncrementalMaxAge);
      state->component_cache.age(round_seq_, kIncrementalMaxAge);
    }
  };
  if (round_pool != nullptr && nb > 1) {
    round_pool->parallel_for(0, static_cast<std::int64_t>(nb), group_bucket);
  } else {
    for (size_t bi = 0; bi < nb; ++bi) {
      group_bucket(static_cast<std::int64_t>(bi));
    }
  }
  for (const GroupingStats& s : bucket_stats) last_round_stats_.accumulate(s);
  cumulative_stats_.accumulate(last_round_stats_);

  // Serialize the per-bucket candidate sets and matching rounds into the
  // decision log, translating component-local member indices to job ids
  // (edge/matched endpoints stay node indices into the sibling "nodes"
  // array, per the record catalog). match_round records are emitted per
  // capped component with a "component" ordinal; both modes run the same
  // split, so the record stream is byte-identical between rebuild and
  // incremental rounds.
  if (dlog != nullptr) {
    const auto job_of = [&](size_t bi, int local) {
      return candidates[static_cast<size_t>(
                            bucket_indices[bi][static_cast<size_t>(local)])]
          .id;
    };
    std::string scratch;
    for (size_t bi = 0; bi < nb; ++bi) {
      std::vector<std::int64_t> jobs;
      jobs.reserve(bucket_indices[bi].size());
      for (size_t i = 0; i < bucket_indices[bi].size(); ++i) {
        jobs.push_back(job_of(bi, static_cast<int>(i)));
      }
      dlog->entry("bucket")
          .integer("gpus", bucket_keys[bi])
          .ids("jobs", jobs)
          .integer("components", static_cast<std::int64_t>(
                                     bucket_comp_captures[bi].size()));
      for (size_t ci = 0; ci < bucket_comp_captures[bi].size(); ++ci) {
        const auto& [comp_local, capture] = bucket_comp_captures[bi][ci];
        // Component-local node index -> bucket-local -> job id.
        const auto comp_job_of = [&](int local) {
          return job_of(bi, comp_local[static_cast<size_t>(local)]);
        };
        for (const MatchingRoundRecord& mr : capture.rounds) {
        std::string nodes_json = "[";
        for (size_t ni = 0; ni < mr.nodes.size(); ++ni) {
          if (ni != 0) nodes_json += ',';
          nodes_json += '[';
          for (size_t mi = 0; mi < mr.nodes[ni].size(); ++mi) {
            if (mi != 0) nodes_json += ',';
            scratch.clear();
            obs::append_json_double(
                scratch, static_cast<double>(comp_job_of(mr.nodes[ni][mi])));
            nodes_json += scratch;
          }
          nodes_json += ']';
        }
        nodes_json += ']';
        std::string edges_json = "[";
        for (size_t ei = 0; ei < mr.edges.size(); ++ei) {
          if (ei != 0) edges_json += ',';
          edges_json += '[';
          obs::append_json_double(edges_json,
                                  static_cast<double>(mr.edges[ei].u));
          edges_json += ',';
          obs::append_json_double(edges_json,
                                  static_cast<double>(mr.edges[ei].v));
          edges_json += ',';
          obs::append_json_double(edges_json, mr.edges[ei].gamma);
          edges_json += ']';
        }
        edges_json += ']';
        std::string matched_json = "[";
        for (size_t pi = 0; pi < mr.matched.size(); ++pi) {
          if (pi != 0) matched_json += ',';
          matched_json += '[';
          obs::append_json_double(matched_json,
                                  static_cast<double>(mr.matched[pi].first));
          matched_json += ',';
          obs::append_json_double(matched_json,
                                  static_cast<double>(mr.matched[pi].second));
          matched_json += ']';
        }
        matched_json += ']';
        dlog->entry("match_round")
            .integer("gpus", bucket_keys[bi])
            .integer("component", static_cast<std::int64_t>(ci))
            .integer("stage", mr.stage)
            .raw("nodes", nodes_json)
            .raw("edges", edges_json)
            .raw("matched", matched_json)
            .ints("unmatched", mr.unmatched)
            .raw("fallback", mr.fallback ? "true" : "false");
        }
      }
    }
  }

  // Phase timer: group assembly, priority admission, and placement
  // ordering. cumulative_stats_ was already folded above, so this adds to
  // both aggregates explicitly.
  const auto t_admission = Clock::now();
  struct Planned {
    PlannedGroup group;
    double priority;
    double gamma;
  };
  std::vector<Planned> planned;

  for (size_t bi = 0; bi < nb; ++bi) {
    const std::vector<int>& indices = bucket_indices[bi];
    for (const auto& group : bucket_groups[bi]) {
      PlannedGroup g;
      double best_priority = std::numeric_limits<double>::infinity();
      int max_gpus = 0;
      std::vector<ResourceVector> member_profiles;
      for (int local : group) {
        const JobView& v =
            candidates[static_cast<size_t>(indices[static_cast<size_t>(local)])];
        g.members.push_back(v.id);
        member_profiles.push_back(v.measured.stage_time);
        best_priority = std::min(best_priority, priority_of(v));
        max_gpus = std::max(max_gpus, v.num_gpus);
      }
      g.num_gpus = max_gpus;
      double gamma = 1.0;  // a solo job's interleaving efficiency
      if (g.members.size() == 1) {
        g.mode = GroupMode::kExclusive;
      } else {
        g.mode = GroupMode::kInterleaved;
        InterleavePlan plan = plan_interleave(member_profiles, options_.ordering);
        g.slots = std::move(plan.slots);
        g.offsets = std::move(plan.offsets);
        g.planned_period = plan.period;
        gamma = plan.efficiency;
        ++groups_formed;
      }
      g.predicted_gamma = gamma;
      planned.push_back({std::move(g), best_priority, gamma});
    }
  }

  std::stable_sort(planned.begin(), planned.end(),
                   [](const Planned& a, const Planned& b) {
                     return a.priority < b.priority;
                   });

  // Admission under the GPU budget in priority order (a group consumes one
  // GPU set for all its members — that is the whole point), then §5
  // placement ordering among the admitted groups. Unadmitted groups and
  // the jobs beyond the candidate prefix follow as backfill.
  std::vector<PlannedGroup> admitted;
  std::vector<PlannedGroup> overflow;
  int budget = ctx.capacity();
  for (auto& p : planned) {
    const bool fits = p.group.num_gpus <= budget;
    if (dlog != nullptr) {
      auto e = dlog->entry("group");
      e.ids("jobs", p.group.members)
          .integer("gpus", p.group.num_gpus)
          .str("mode", p.group.mode == GroupMode::kExclusive ? "exclusive"
                                                             : "interleaved")
          .num("gamma", p.gamma)
          .num("priority", p.priority)
          .raw("admitted", fits ? "true" : "false");
      if (fits) {
        e.integer("budget_left", budget - p.group.num_gpus);
      } else {
        e.str("reason", "gpu_budget");
      }
    }
    if (fits) {
      budget -= p.group.num_gpus;
      admitted.push_back(std::move(p.group));
    } else {
      ++groups_rejected;
      overflow.push_back(std::move(p.group));
    }
  }
  sort_groups_for_placement(admitted);
  last_round_stats_.admission_seconds = seconds_since(t_admission);
  cumulative_stats_.admission_seconds += last_round_stats_.admission_seconds;

  std::vector<PlannedGroup> plan = std::move(admitted);
  plan.reserve(plan.size() + overflow.size() + rest.size());
  for (auto& g : overflow) plan.push_back(std::move(g));
  for (const JobView& v : rest) {
    plan.push_back({{v.id}, v.num_gpus, GroupMode::kExclusive, {}, {}, 0});
  }
  if (dlog != nullptr && !rest.empty()) {
    std::vector<std::int64_t> deferred_ids;
    deferred_ids.reserve(rest.size());
    for (const JobView& v : rest) deferred_ids.push_back(v.id);
    dlog->entry("deferred")
        .ids("jobs", deferred_ids)
        .str("reason", "beyond_candidate_prefix");
  }
  std::vector<JobId> deferred;
  deferred.reserve(rest.size());
  for (const JobView& v : rest) deferred.push_back(v.id);
  std::sort(deferred.begin(), deferred.end());
  set_last_deferred(std::move(deferred));
  finish_round(plan, /*contended=*/true);
  return plan;
}

}  // namespace muri
