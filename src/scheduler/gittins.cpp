#include "scheduler/gittins.h"

#include <algorithm>

#include "scheduler/baselines.h"

namespace muri {

GittinsScheduler::GittinsScheduler() : GittinsScheduler(Options{}) {}

void GittinsScheduler::harvest_completions(const std::vector<JobView>& queue) {
  // A job that was in the queue last round and is gone now has completed;
  // its final attained service (as of our last sight of it) is a sample of
  // the service distribution. Rounds are frequent relative to job
  // lifetimes, so the truncation error is small.
  std::map<JobId, double> current;
  for (const JobView& v : queue) current.emplace(v.id, v.attained_service);

  bool changed = false;
  for (const auto& [id, attained] : last_seen_) {
    if (!current.count(id) && attained > 0) {
      samples_.push_back(attained);
      changed = true;
    }
  }
  last_seen_ = std::move(current);

  if (changed) {
    if (samples_.size() > options_.max_samples) {
      samples_.erase(samples_.begin(),
                     samples_.begin() +
                         static_cast<std::ptrdiff_t>(samples_.size() -
                                                     options_.max_samples));
    }
    std::sort(samples_.begin(), samples_.end());
    prefix_.assign(samples_.size() + 1, 0.0);
    for (std::size_t i = 0; i < samples_.size(); ++i) {
      prefix_[i + 1] = prefix_[i] + samples_[i];
    }
  }
}

double GittinsScheduler::index_of(double attained) const {
  const auto m = samples_.size();
  if (m == 0) return 0;
  // First sample strictly above the attained service.
  const auto begin = static_cast<std::size_t>(
      std::upper_bound(samples_.begin(), samples_.end(), attained) -
      samples_.begin());
  const auto n = m - begin;
  if (n == 0) return 0;

  // For quantile cut k (finish within Δ = s[k] - attained):
  //   P = (k - begin + 1) / n
  //   E·n = Σ_{j=begin..k} (s[j] - a) + (m - 1 - k)·Δ
  // G = max_k P / E = max_k (k - begin + 1) / (E·n).
  double best = 0;
  for (std::size_t k = begin; k < m; ++k) {
    const double delta = samples_[k] - attained;
    if (delta <= 0) continue;
    const double sum_low = prefix_[k + 1] - prefix_[begin] -
                           static_cast<double>(k - begin + 1) * attained;
    const double e_total =
        sum_low + static_cast<double>(m - 1 - k) * delta;
    if (e_total <= 0) continue;
    best = std::max(best, static_cast<double>(k - begin + 1) / e_total);
  }
  return best;
}

std::vector<PlannedGroup> GittinsScheduler::schedule(
    const std::vector<JobView>& queue, const SchedulerContext& ctx) {
  harvest_completions(queue);

  std::vector<JobView> ordered;
  if (samples_.size() < options_.min_samples) {
    // Bootstrap: 2D-LAS until the distribution is trustworthy.
    ordered = sorted_by_priority(
        queue, [](const JobView& v) { return v.attained_service; });
  } else {
    ordered = sorted_by_priority(queue, [&](const JobView& v) {
      // Higher Gittins index runs first; jobs beyond every observed
      // completion get index 0 and sink to the back (LAS-like demotion).
      return -index_of(v.attained_service);
    });
  }
  return exclusive_plan(ordered, ctx.capacity());
}

}  // namespace muri
