// Fluid throughput model for co-located jobs.
//
// When p jobs share one set of resources, each job i sustains a normalized
// rate x_i ∈ (0, 1] of its solo iteration rate. Feasibility requires that
// no resource is oversubscribed:
//
//     Σ_i x_i · d_i^j ≤ 1          for every resource j
//
// where d_i^j is job i's inflated duty cycle on resource j. Two inflation
// terms model what the paper measures:
//
//  - a group-wide factor (`inflation`): residual cross-stage interference,
//    (1 + α(p-1)) for coordinated interleaving or (1+β) for uncoordinated
//    sharing, times the ordering penalty (simulator.h);
//  - a per-resource contention factor: when several group members are
//    *significant* users of the same resource (duty > significant_duty),
//    every user of that resource pays (1 + contention_penalty) per extra
//    significant user. This captures why same-bottleneck jobs gain almost
//    nothing from sharing (§2.1's "half speed" example, Fig. 13's ≈1×
//    speedup with one job type) while bottleneck-complementary jobs keep
//    most of their solo rate (Table 2's ShuffleNet at 0.86).
//
// Rates are allocated max-min fairly by progressive filling: all unfrozen
// jobs grow at the same x until a job reaches its solo rate or a resource
// saturates, then jobs touching the bottleneck freeze.
#pragma once

#include <vector>

#include "common/types.h"
#include "job/model.h"

namespace muri {

struct FluidOptions {
  // Group-wide demand inflation (≥ 1).
  double inflation = 1.0;
  // Extra inflation per additional significant user of a resource.
  double contention_penalty = 0.10;
  // Duty-cycle threshold above which a job counts as a significant user.
  double significant_duty = 0.25;
};

// Returns the max-min fair normalized rates x_i ∈ [0, 1] for jobs with the
// given solo iteration profiles sharing one resource set. Jobs with an
// all-zero profile get x = 1. Duty cycles are busy stage time divided by
// the busy sum.
std::vector<double> max_min_fair_rates(
    const std::vector<ResourceVector>& profiles, const FluidOptions& options);

// Preferred overload: duty cycles come from the measured iteration span,
// so Table 1's idle slack (busy sum < span) leaves sharing headroom.
std::vector<double> max_min_fair_rates(
    const std::vector<IterationProfile>& profiles,
    const FluidOptions& options);

// Convenience overload with default contention modeling.
std::vector<double> max_min_fair_rates(
    const std::vector<ResourceVector>& profiles, double inflation);

}  // namespace muri
