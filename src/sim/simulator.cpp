#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "common/logging.h"
#include "common/rng.h"
#include "obs/jobtrace.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "sim/exec_model.h"

namespace muri {

namespace {

constexpr double kIterEps = 1e-6;
constexpr double kInf = std::numeric_limits<double>::infinity();

// A group key identifies "the same running configuration"; jobs whose key
// changes between rounds pay the restart penalty.
struct GroupKey {
  std::vector<JobId> members;  // sorted
  GroupMode mode = GroupMode::kExclusive;
  int num_gpus = 0;

  bool operator==(const GroupKey& other) const = default;
};

// Utilization account for one group *incarnation*: an uninterrupted
// placement of one member set under one configuration key. Busy seconds
// accumulate as members progress (a job iterating with period T occupies
// resource r for t^r seconds per iteration); the realized γ of the
// incarnation is busy/active-window averaged over the resources the group
// uses — the same averaging as interleave/group_efficiency, so it is
// directly comparable to the schedule-time prediction.
struct GroupAccount {
  MachineId machine = kInvalidMachine;  // home machine (first of the set)
  int size = 0;
  GroupMode mode = GroupMode::kExclusive;
  bool degraded = false;
  double gamma_predicted = 0;
  Time window_start = 0;
  Time window_end = 0;
  // Members share one restart gate; wall time before it is restart stall,
  // excluded from the γ denominator (it is reported separately).
  Time ready_at = 0;
  std::array<double, kNumResources> busy{};
  std::array<bool, kNumResources> active{};
};

struct JobState {
  const Job* job = nullptr;
  IterationProfile measured;
  bool arrived = false;
  bool finished = false;
  bool running = false;
  double done_iterations = 0;
  double attained_gpu_seconds = 0;
  Duration ran_wall = 0;  // wall seconds spent placed (for blocking index)
  Duration restart_overhead = 0;  // placed-but-stalled (restart gate) wall
  int preemptions = 0;    // placements lost to preemption or eviction
  Time ready_at = 0;      // progress gate after (re)start
  Duration period = 0;    // current wall seconds per iteration
  Time next_fault = 0;    // scheduled failure while running (kInf = none)
  double group_gamma = 0; // best-case γ of the current group (diagnostic)
  GroupKey key;           // current group configuration
  OwnerId owner = kNoOwner;       // GPU-set owner of the current group
  double straggler_factor = 1.0;  // period inflation from machine stragglers
  bool degraded = false;  // running in a group that lost a member mid-round
  // Utilization account of the current incarnation (map storage keeps the
  // pointer stable); -1 / nullptr when not running.
  std::int64_t group_id = -1;
  GroupAccount* acct = nullptr;
  // Tracing bookkeeping: the open run-stage span (kNoTime = none) and the
  // machine track it lives on.
  Time run_since = kNoTime;
  MachineId run_machine = kInvalidMachine;

  Duration remaining_solo() const {
    return (static_cast<double>(job->iterations) - done_iterations) *
           job->profile.iteration_time();
  }
};

// Book-keeping for a placed group: which jobs share which machines. Needed
// to map machine-level fault events back to the resident jobs.
struct RunningGroup {
  std::vector<JobId> members;
  GroupMode mode = GroupMode::kExclusive;
  int num_gpus = 0;
  std::vector<MachineId> machines;
};

const char* mode_name(GroupMode m) {
  switch (m) {
    case GroupMode::kExclusive:
      return "exclusive";
    case GroupMode::kInterleaved:
      return "interleaved";
    case GroupMode::kUncoordinated:
      return "uncoordinated";
  }
  return "uncoordinated";
}

}  // namespace

SimResult run_simulation(const Trace& trace, Scheduler& scheduler,
                         const SimOptions& options) {
  SimResult result;
  result.scheduler_name = scheduler.name();
  result.trace_name = trace.name;
  if (trace.jobs.empty()) return result;

  Cluster cluster(options.cluster);
  ResourceProfiler profiler(options.profiler);
  // The period arithmetic lives in sim/exec_model, shared with the online
  // service engine; the params mirror SimOptions field for field.
  ExecModelParams exec_params;
  exec_params.alpha = options.alpha;
  exec_params.gamma_penalty = options.gamma_penalty;
  exec_params.beta = options.beta;
  exec_params.cascade_penalty = options.cascade_penalty;
  exec_params.contention_penalty = options.contention_penalty;
  exec_params.significant_duty = options.significant_duty;
  exec_params.misplan_penalty = options.misplan_penalty;
  const double fault_rate =
      options.mtbf_hours > 0 ? 1.0 / (options.mtbf_hours * 3600.0) : 0.0;

  const auto n = trace.jobs.size();
  std::vector<JobState> states(n);
  // One fault substream per job: editing the trace (adding or dropping a
  // job) leaves every other job's fault times untouched.
  std::vector<Rng> job_fault_rng;
  if (fault_rate > 0) job_fault_rng.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    assert(trace.jobs[i].id == static_cast<JobId>(i) &&
           "trace job ids must be dense");
    states[i].job = &trace.jobs[i];
    if (fault_rate > 0) {
      job_fault_rng.emplace_back(
          substream_seed(options.fault_seed, static_cast<std::uint64_t>(i)));
    }
  }

  // Machine-level fault domains: event source, health tracker, and the
  // currently active per-machine straggler slowdowns.
  WorkerMonitor monitor(options.cluster.num_machines, options.monitor);
  std::vector<ResourceVector> machine_slow(
      static_cast<size_t>(options.cluster.num_machines),
      ResourceVector{1.0, 1.0, 1.0, 1.0});
  std::map<OwnerId, RunningGroup> running_groups;

  // Group incarnations, in creation order (ids are 1-based and never
  // reused; a group that survives a scheduling round unchanged keeps its
  // incarnation, any configuration change retires it and opens a new one).
  std::int64_t group_seq = 0;
  std::map<std::int64_t, GroupAccount> group_accounts;

  // Arrival order.
  std::vector<size_t> arrival_order(n);
  for (size_t i = 0; i < n; ++i) arrival_order[i] = i;
  std::stable_sort(arrival_order.begin(), arrival_order.end(),
                   [&](size_t a, size_t b) {
                     return trace.jobs[a].submit_time < trace.jobs[b].submit_time;
                   });

  size_t next_arrival = 0;
  size_t finished_count = 0;
  Time now = trace.jobs[arrival_order[0]].submit_time;
  Time last_round = now - options.schedule_interval;  // first round fires now
  bool dirty = false;
  // Which jobs made the queue dirty since the last round — the lifecycle
  // delta (arrivals, finishes, preemptions, evictions, faults) handed to
  // the scheduler via SchedulerContext::dirty_jobs. Sorted + deduplicated
  // right before each round; cleared after the plan is taken (apply_plan's
  // own displacements then seed the next round's set).
  std::vector<JobId> dirty_jobs;

  FaultInjector injector(options.cluster.num_machines, options.machine_faults,
                         now);

  // Fault accounting flows through a metrics registry (the caller's, so a
  // live scrape sees the counters move mid-run, or a private one) and is
  // read back into SimResult as per-run deltas at finalize. The increment
  // sequence is identical to the old hand-rolled `result.x += ...`
  // bookkeeping, so SimResult stays bit-identical.
  obs::MetricsRegistry private_registry;
  obs::MetricsRegistry& registry =
      options.metrics != nullptr ? *options.metrics : private_registry;
  obs::Counter& c_faults =
      registry.counter("muri_sim_job_faults_total",
                       "Job-level faults reported to the scheduler");
  obs::Counter& c_restarts = registry.counter(
      "muri_sim_restarts_total",
      "Running jobs restarted by a group or placement change");
  obs::Counter& c_machine_failures = registry.counter(
      "muri_sim_machine_failures_total", "Machine-down events observed");
  obs::Counter& c_evictions = registry.counter(
      "muri_sim_evictions_total", "Jobs requeued by machine crashes");
  obs::Counter& c_straggler_seconds =
      registry.counter("muri_sim_straggler_seconds_total",
                       "Job-seconds run at straggler slowdown > 1");
  obs::Counter& c_degraded_seconds =
      registry.counter("muri_sim_degraded_group_seconds_total",
                       "Job-seconds run in a degraded group");
  // Realized per-resource busy seconds, attributed to the home machine of
  // the group that used them; live-scrapeable while the run advances. The
  // SimResult totals come from a private accumulator, so a shared registry
  // across runs never leaks seconds between results.
  std::vector<std::array<obs::Counter*, kNumResources>> c_busy(
      static_cast<size_t>(options.cluster.num_machines));
  for (int m = 0; m < options.cluster.num_machines; ++m) {
    for (int r = 0; r < kNumResources; ++r) {
      c_busy[static_cast<size_t>(m)][static_cast<size_t>(r)] =
          &registry.counter(
              "muri_resource_busy_seconds",
              "Realized busy seconds per home machine and resource",
              {{"machine", std::to_string(m)},
               {"resource",
                std::string(to_string(static_cast<Resource>(r)))}});
    }
  }
  std::array<double, kNumResources> busy_total{};
  obs::Summary& s_gamma_realized = registry.summary(
      "muri_group_gamma_realized",
      "Realized interleaving efficiency per retired multi-member group");
  obs::Summary& s_gamma_error = registry.summary(
      "muri_group_gamma_error",
      "Realized minus predicted gamma per retired multi-member group");
  obs::Summary& s_job_queueing = registry.summary(
      "muri_job_queueing_seconds", "Per-job wall seconds arrived but unplaced");
  obs::Summary& s_job_running = registry.summary(
      "muri_job_running_seconds", "Per-job wall seconds placed and progressing");
  obs::Summary& s_job_restart_overhead = registry.summary(
      "muri_job_restart_overhead_seconds",
      "Per-job wall seconds placed but stalled in a restart gate");
  obs::Summary& s_job_preemptions = registry.summary(
      "muri_job_preemptions", "Per-job placements lost to preemption or eviction");
  // Decision counters by cause, mirroring the provenance log's preempt/
  // evict records onto /metrics (incremented whether or not a log is
  // attached, like every other counter here).
  obs::Counter& c_dec_preempt_displaced = registry.counter(
      "muri_decision_preemptions_total", "Preemptions by cause",
      {{"reason", "displaced"}});
  obs::Counter& c_dec_preempt_machine = registry.counter(
      "muri_decision_preemptions_total", "Preemptions by cause",
      {{"reason", "machine_down"}});

  const double base_faults = c_faults.value();
  const double base_restarts = c_restarts.value();
  const double base_machine_failures = c_machine_failures.value();
  const double base_evictions = c_evictions.value();
  const double base_straggler_seconds = c_straggler_seconds.value();
  const double base_degraded_seconds = c_degraded_seconds.value();

  // Event tracing (simulated-time clock domain). Track layout: one track
  // per machine (job run-stage spans + fault windows) plus the scheduler
  // track (submits, rounds). All instrumentation below is read-only with
  // respect to simulation state.
  obs::Tracer* const tracer = options.tracer;
  // Decision provenance: the simulator writes the outcome half of every
  // round (placements, skips, preemptions with cause) against the round
  // id the scheduler stamped. The same sink is attached to the scheduler
  // so one log carries both halves — unless the caller already wired a
  // log of their own into the scheduler, which then wins.
  obs::DecisionLog* const decisions = options.decisions;
  if (decisions != nullptr && scheduler.decision_log() == nullptr) {
    scheduler.set_decision_log(decisions);
  }
  // Per-job causal span recorder. Its events mirror what the decision log
  // already captures (plus the "wait"/"straggler" records written below
  // when a log is attached), so attaching it never changes SimResult, the
  // log, or the trace.
  obs::JobTraceLog* const jobtrace = options.jobtrace;
  if (jobtrace != nullptr) {
    jobtrace->set_restart_penalty(options.restart_penalty);
    if (options.metrics != nullptr) jobtrace->set_metrics(options.metrics);
  }
  // The decision-log round id of the most recent scheduling round (the
  // scheduler-invocation ordinal when no log is wired — same convention
  // as the tracer's "round" arg), stamped on jobtrace events that happen
  // between rounds (evictions, faults, degraded continuations).
  std::int64_t cur_round_id = 0;
  // Several runs may share one tracer (bench tables); the epoch separates
  // their overlapping sim-time windows and reused job/group ids for the
  // analysis layer.
  const double run_epoch =
      tracer != nullptr ? static_cast<double>(tracer->begin_run_epoch()) : 0.0;
  const auto to_us = [](Time t) {
    return static_cast<std::int64_t>(t * 1e6);
  };
  if (tracer != nullptr) {
    tracer->set_manual_seconds(now);
    tracer->name_track(obs::kSchedulerTrack, "scheduler");
    for (int m = 0; m < options.cluster.num_machines; ++m) {
      tracer->name_track(obs::machine_track(m), "machine " + std::to_string(m));
    }
  }
  // Open fault windows per machine (kNoTime = none), exported as spans on
  // the machine track when the window closes or the run ends.
  std::vector<Time> machine_down_since(
      static_cast<size_t>(options.cluster.num_machines), kNoTime);
  std::vector<Time> machine_straggler_since(
      static_cast<size_t>(options.cluster.num_machines), kNoTime);

  // Run-stage span helpers. A span covers one uninterrupted placement of a
  // job (same group key, same machine set); whatever ends it — preemption,
  // eviction, fault, completion, regrouping — closes the span first and
  // then marks the cause with an instant event.
  const auto end_run_span = [&](JobState& s) {
    if (tracer == nullptr || s.run_since == kNoTime) return;
    const int pid = obs::machine_track(s.run_machine >= 0 ? s.run_machine : 0);
    // Span cycling keeps (period, straggler factor, machine) constant over
    // each span, so one set of busy fractions describes its whole window:
    // resource r was occupied busy_<r> × (dur − overhead) seconds.
    // `overhead` is the restart-gate stall inside this span; `group` ties
    // the span to its group incarnation, `gamma_pred` is the schedule-time
    // γ the analysis layer compares realized utilization against.
    const Duration span_wall = now - s.run_since;
    const Duration span_overhead =
        std::clamp(s.ready_at - s.run_since, 0.0, span_wall);
    std::array<double, kNumResources> busy{};
    if (s.period > 0 && std::isfinite(s.period)) {
      for (int r = 0; r < kNumResources; ++r) {
        busy[static_cast<size_t>(r)] =
            s.job->profile.stage_time[static_cast<size_t>(r)] /
            (s.period * s.straggler_factor);
      }
    }
    obs::TraceArgs args("group_size",
                        static_cast<double>(s.key.members.size()), "gamma",
                        s.group_gamma, "period", s.period, "degraded",
                        s.degraded ? 1.0 : 0.0);
    args.add("run", run_epoch)
        .add("group", static_cast<double>(s.group_id))
        .add("gamma_pred", s.acct != nullptr ? s.acct->gamma_predicted : 0.0)
        .add("overhead", span_overhead)
        .add("busy_storage", busy[0])
        .add("busy_cpu", busy[1])
        .add("busy_gpu", busy[2])
        .add("busy_net", busy[3]);
    tracer->complete(to_us(s.run_since), to_us(now) - to_us(s.run_since),
                     "run-stage", "job", pid, static_cast<int>(s.job->id),
                     args);
    s.run_since = kNoTime;
    s.run_machine = kInvalidMachine;
  };
  const auto begin_run_span = [&](JobState& s, MachineId machine) {
    if (tracer == nullptr) return;
    s.run_since = now;
    s.run_machine = machine;
    tracer->name_lane(obs::machine_track(machine >= 0 ? machine : 0),
                      static_cast<int>(s.job->id),
                      "job " + std::to_string(s.job->id));
  };
  const auto job_instant = [&](const JobState& s, const char* name) {
    if (tracer == nullptr) return;
    const int pid = s.run_machine >= 0 ? obs::machine_track(s.run_machine)
                                       : obs::kSchedulerTrack;
    tracer->instant_at(to_us(now), name, "job", pid,
                       static_cast<int>(s.job->id),
                       obs::TraceArgs("job", static_cast<double>(s.job->id),
                                      "run", run_epoch));
  };

  // Metrics accumulators.
  TimeWeightedAverage queue_avg;
  TimeWeightedAverage blocking_avg;
  TimeWeightedAverage running_avg;
  TimeWeightedAverage width_avg;
  TimeWeightedAverage rate_avg;
  TimeWeightedAverage gamma_avg;
  std::array<TimeWeightedAverage, kNumResources> util_avg;
  SeriesRecorder queue_series;
  SeriesRecorder blocking_series;
  std::array<SeriesRecorder, kNumResources> util_series;
  result.jcts.reserve(n);

  // Current cluster-level utilization per resource, recomputed on plan
  // application and on completions.
  std::array<double, kNumResources> utilization{};

  auto pending_stats = [&](double& queue_len, double& blocking) {
    queue_len = 0;
    double blocking_sum = 0;
    int pending = 0;
    for (const JobState& s : states) {
      if (!s.arrived || s.finished || s.running) continue;
      ++pending;
      const Duration pending_time =
          (now - s.job->submit_time) - s.ran_wall;
      const Duration remaining = std::max(s.remaining_solo(), 1.0);
      blocking_sum += std::max(pending_time, 0.0) / remaining;
    }
    queue_len = pending;
    blocking = pending > 0 ? blocking_sum / pending : 0.0;
  };

  auto observe_metrics = [&]() {
    double queue_len = 0, blocking = 0;
    pending_stats(queue_len, blocking);
    queue_avg.observe(now, queue_len);
    blocking_avg.observe(now, blocking);
    // Execution-shape diagnostics.
    {
      int running = 0;
      double rate_sum = 0;
      std::map<std::vector<JobId>, int> groups_seen;
      for (const JobState& s : states) {
        if (!s.running) continue;
        ++running;
        const Duration iter = s.job->profile.iteration_time();
        if (s.period > 0) rate_sum += iter / s.period;
        groups_seen[s.key.members] = static_cast<int>(s.key.members.size());
      }
      running_avg.observe(now, running);
      double gamma_sum = 0;
      int grouped = 0;
      for (const JobState& s : states) {
        if (s.running && s.key.members.size() > 1) {
          gamma_sum += s.group_gamma;
          ++grouped;
        }
      }
      if (grouped > 0) gamma_avg.observe(now, gamma_sum / grouped);
      if (running > 0) {
        rate_avg.observe(now, rate_sum / running);
        double width_sum = 0;
        for (const auto& [members, width] : groups_seen) width_sum += width;
        width_avg.observe(now, width_sum / static_cast<double>(groups_seen.size()));
      }
    }
    for (int j = 0; j < kNumResources; ++j) {
      util_avg[static_cast<size_t>(j)].observe(
          now, utilization[static_cast<size_t>(j)]);
    }
    if (options.record_series) {
      queue_series.record(now, queue_len);
      blocking_series.record(now, blocking);
      for (int j = 0; j < kNumResources; ++j) {
        util_series[static_cast<size_t>(j)].record(
            now, utilization[static_cast<size_t>(j)]);
      }
    }
  };

  // Recomputes cluster utilization from the currently running jobs.
  auto recompute_utilization = [&]() {
    utilization.fill(0.0);
    const double total_gpus = cluster.total_gpus();
    // Group jobs by their group key to avoid double counting shared GPUs:
    // each running job contributes its own stage-time densities on its
    // group's GPU share.
    std::set<JobId> seen_group_anchor;
    for (const JobState& s : states) {
      if (!s.running || s.period <= 0) continue;
      // GPU-share weight of this job's group, attributed once per member
      // via equal division (members share the same GPU set).
      const double share =
          static_cast<double>(s.key.num_gpus) / total_gpus;
      for (int j = 0; j < kNumResources; ++j) {
        const double density =
            s.job->profile.stage_time[static_cast<size_t>(j)] / s.period;
        utilization[static_cast<size_t>(j)] += share * std::min(density, 1.0);
      }
    }
    for (int j = 0; j < kNumResources; ++j) {
      utilization[static_cast<size_t>(j)] =
          std::min(utilization[static_cast<size_t>(j)], 1.0);
    }
  };

  // Chrome counter track per machine: the per-resource busy fractions of
  // the jobs attributed to it, sampled whenever the running set changes
  // (counters hold their value between samples, so change points suffice).
  auto emit_busy_counters = [&]() {
    if (tracer == nullptr) return;
    std::vector<std::array<double, kNumResources>> density(
        static_cast<size_t>(options.cluster.num_machines));
    for (const JobState& s : states) {
      if (!s.running || s.finished || s.acct == nullptr) continue;
      if (!(s.period > 0) || !std::isfinite(s.period)) continue;
      size_t m = s.acct->machine >= 0 ? static_cast<size_t>(s.acct->machine)
                                      : 0;
      if (m >= density.size()) m = 0;
      for (int r = 0; r < kNumResources; ++r) {
        density[m][static_cast<size_t>(r)] +=
            s.job->profile.stage_time[static_cast<size_t>(r)] /
            (s.period * s.straggler_factor);
      }
    }
    for (size_t m = 0; m < density.size(); ++m) {
      tracer->counter(to_us(now), "busy",
                      obs::machine_track(static_cast<int>(m)),
                      obs::TraceArgs("storage", density[m][0], "cpu",
                                     density[m][1], "gpu", density[m][2],
                                     "network", density[m][3]));
    }
  };

  auto advance_to = [&](Time t) {
    assert(t >= now);
    if (t == now) return;
    for (JobState& s : states) {
      if (!s.running || s.finished) continue;
      const Duration dt = t - now;
      s.ran_wall += dt;
      const Time start = std::max(now, s.ready_at);
      const Duration effective =
          t > start && s.period > 0 ? t - start : 0.0;
      s.restart_overhead += dt - effective;
      if (effective > 0) {
        s.done_iterations += effective / (s.period * s.straggler_factor);
        s.attained_gpu_seconds +=
            effective * static_cast<double>(s.job->num_gpus);
        if (s.straggler_factor > 1.0) c_straggler_seconds.inc(effective);
        if (s.degraded) c_degraded_seconds.inc(effective);
        // Realized busy attribution: progressing at 1/(period·straggler)
        // iterations per second, the job occupies resource r for t^r
        // seconds per iteration. Credited to the group account and to the
        // home machine's busy counters.
        if (s.acct != nullptr && std::isfinite(s.period)) {
          const double iters = effective / (s.period * s.straggler_factor);
          size_t m = s.acct->machine >= 0
                         ? static_cast<size_t>(s.acct->machine)
                         : 0;
          if (m >= c_busy.size()) m = 0;
          for (int r = 0; r < kNumResources; ++r) {
            const auto ri = static_cast<size_t>(r);
            const double db =
                iters * s.job->profile.stage_time[ri];
            if (db <= 0) continue;
            s.acct->busy[ri] += db;
            busy_total[ri] += db;
            c_busy[m][ri]->inc(db);
          }
        }
      }
      if (s.acct != nullptr) s.acct->window_end = t;
    }
    now = t;
    if (tracer != nullptr) tracer->set_manual_seconds(now);
  };

  auto projected_finish = [&](const JobState& s) -> Time {
    if (!s.running || s.period <= 0) return kInf;
    const double remaining =
        static_cast<double>(s.job->iterations) - s.done_iterations;
    if (remaining <= kIterEps) return now;
    return std::max(now, s.ready_at) +
           remaining * s.period * s.straggler_factor;
  };

  // Period inflation a job sees from the straggler windows active on its
  // group's machines: per-resource factors weighted by the job's own stage
  // mix (a slow disk only hurts storage-heavy jobs).
  auto straggler_factor_for = [&](const Job& job,
                                  const std::vector<MachineId>& machines) {
    ResourceVector f{1.0, 1.0, 1.0, 1.0};
    bool any = false;
    for (MachineId m : machines) {
      const ResourceVector& slow = machine_slow[static_cast<size_t>(m)];
      for (size_t r = 0; r < static_cast<size_t>(kNumResources); ++r) {
        f[r] = std::max(f[r], slow[r]);
        any = any || slow[r] > 1.0;
      }
    }
    if (!any) return 1.0;
    double num = 0, den = 0;
    for (size_t r = 0; r < static_cast<size_t>(kNumResources); ++r) {
      num += job.profile.stage_time[r] * f[r];
      den += job.profile.stage_time[r];
    }
    return den > 0 ? num / den : 1.0;
  };

  auto refresh_straggler_factors = [&]() {
    for (const auto& [owner, group] : running_groups) {
      for (JobId id : group.members) {
        JobState& s = states[static_cast<size_t>(id)];
        if (!s.running || s.finished) continue;
        const double f = straggler_factor_for(*s.job, group.machines);
        if (f == s.straggler_factor) continue;
        // The factor scales the busy fractions stamped on the run-stage
        // span, so a change cycles the span to keep them piecewise
        // constant.
        const MachineId m = s.run_machine;
        end_run_span(s);
        s.straggler_factor = f;
        begin_run_span(s, m);
        if (decisions != nullptr) {
          decisions->entry("straggler")
              .num("t", now)
              .integer("job", id)
              .num("factor", f);
        }
        if (jobtrace != nullptr) jobtrace->straggler(id, now, f);
      }
    }
  };

  // Re-plans a group that lost a member mid-round: the survivors continue
  // immediately on the same GPU set as a *degraded* group with freshly
  // computed best-order periods, instead of stalling until the next
  // scheduling round (the barrier-deadlock scenario in a live executor).
  auto replan_degraded = [&](RunningGroup& g) {
    const auto p = g.members.size();
    if (p == 0) return;
    std::vector<IterationProfile> profiles;
    profiles.reserve(p);
    int max_gpus = 0, min_gpus = std::numeric_limits<int>::max();
    for (JobId id : g.members) {
      const JobState& s = states[static_cast<size_t>(id)];
      profiles.push_back(s.job->profile);
      max_gpus = std::max(max_gpus, s.job->num_gpus);
      min_gpus = std::min(min_gpus, s.job->num_gpus);
    }

    // No rotation schedule survives a member loss: the survivors run under
    // the degraded rules (sim/exec_model) — fresh best-order plan for an
    // interleaved remnant, uncoordinated sharing otherwise, exclusive for
    // a lone survivor.
    const GroupExecution ex =
        compute_group_execution(profiles, g.mode, max_gpus, min_gpus, {}, {},
                                0, /*degraded=*/true, exec_params);
    g.mode = ex.effective_mode;
    const std::vector<Duration>& periods = ex.periods;
    const double gamma_pred = ex.gamma_pred;
    if (g.mode == GroupMode::kInterleaved && p > 1) {
      for (JobId id : g.members) {
        states[static_cast<size_t>(id)].group_gamma = gamma_pred;
      }
    }

    GroupKey key;
    key.members = g.members;
    std::sort(key.members.begin(), key.members.end());
    key.mode = g.mode;
    key.num_gpus = g.num_gpus;

    // The degraded continuation is a fresh incarnation: same GPU set, new
    // configuration. Survivors keep their old restart gate (they continue
    // without paying a new penalty).
    const MachineId home =
        g.machines.empty() ? kInvalidMachine : g.machines.front();
    const std::int64_t gid = ++group_seq;
    GroupAccount acct;
    acct.machine = home;
    acct.size = static_cast<int>(p);
    acct.mode = g.mode;
    acct.degraded = true;
    acct.gamma_predicted = gamma_pred;
    acct.window_start = now;
    acct.window_end = now;
    for (size_t i = 0; i < p; ++i) {
      const JobState& s = states[static_cast<size_t>(g.members[i])];
      acct.ready_at = std::max(acct.ready_at, s.ready_at);
      for (int r = 0; r < kNumResources; ++r) {
        const auto ri = static_cast<size_t>(r);
        if (s.job->profile.stage_time[ri] > 0) acct.active[ri] = true;
      }
    }
    GroupAccount* const acct_ptr =
        &group_accounts.emplace(gid, acct).first->second;

    for (size_t i = 0; i < p; ++i) {
      JobState& s = states[static_cast<size_t>(g.members[i])];
      // A survivor's configuration changed: close its run-stage span and
      // open the degraded continuation on the same machine track.
      end_run_span(s);
      s.period = periods[i];
      s.key = key;
      s.degraded = true;
      s.group_id = gid;
      s.acct = acct_ptr;
      begin_run_span(s, home);
    }
    if (decisions != nullptr) {
      decisions->entry("degraded_continue")
          .num("t", now)
          .ids("jobs", g.members)
          .num("gamma", gamma_pred)
          .str("mode", mode_name(g.mode));
    }
    if (jobtrace != nullptr) {
      for (JobId id : g.members) {
        jobtrace->degraded_continue(id, now, cur_round_id, g.members,
                                    gamma_pred, mode_name(g.mode));
      }
    }
  };

  auto apply_plan = [&](const std::vector<PlannedGroup>& plan) {
    cluster.reset();
    running_groups.clear();
    std::set<JobId> placed;
    struct Admitted {
      GroupKey key;
      const PlannedGroup* group;
      OwnerId owner;
    };
    std::vector<Admitted> admitted;
    OwnerId next_owner = 1;

    for (const PlannedGroup& g : plan) {
      if (g.members.empty()) continue;
      bool valid = true;
      int max_gpus = 0;
      int min_gpus = std::numeric_limits<int>::max();
      for (JobId id : g.members) {
        if (id < 0 || static_cast<size_t>(id) >= n) {
          valid = false;
          break;
        }
        const JobState& s = states[static_cast<size_t>(id)];
        if (!s.arrived || s.finished || placed.count(id)) {
          valid = false;
          break;
        }
        max_gpus = std::max(max_gpus, s.job->num_gpus);
        min_gpus = std::min(min_gpus, s.job->num_gpus);
      }
      if (!valid || g.num_gpus < max_gpus) {
        if (decisions != nullptr) {
          decisions->entry("placement_skip")
              .num("t", now)
              .ids("jobs", g.members)
              .integer("gpus", g.num_gpus)
              .str("reason", "invalid");
        }
        continue;
      }
      if (!cluster.can_allocate(g.num_gpus)) {
        if (decisions != nullptr) {
          decisions->entry("placement_skip")
              .num("t", now)
              .ids("jobs", g.members)
              .integer("gpus", g.num_gpus)
              .str("reason", "no_capacity")
              .integer("available_gpus", cluster.available_gpus());
        }
        continue;
      }
      const OwnerId owner = next_owner++;
      const std::vector<GpuId> gpus = cluster.allocate(owner, g.num_gpus);

      RunningGroup rg;
      rg.members = g.members;
      rg.mode = g.mode;
      rg.num_gpus = g.num_gpus;
      for (GpuId gpu : gpus) {
        const MachineId m = cluster.machine_of(gpu);
        if (rg.machines.empty() || rg.machines.back() != m) {
          rg.machines.push_back(m);
        }
      }
      if (decisions != nullptr) {
        std::vector<int> machine_ids;
        machine_ids.reserve(rg.machines.size());
        for (MachineId m : rg.machines) {
          machine_ids.push_back(static_cast<int>(m));
        }
        decisions->entry("placement")
            .num("t", now)
            .ids("jobs", g.members)
            .integer("gpus", g.num_gpus)
            .str("mode", g.mode == GroupMode::kExclusive  ? "exclusive"
                         : g.mode == GroupMode::kInterleaved
                             ? "interleaved"
                             : "uncoordinated")
            .ints("machines", machine_ids)
            .integer("owner", static_cast<std::int64_t>(owner));
      }
      if (jobtrace != nullptr) {
        for (JobId id : g.members) {
          jobtrace->placed(id, now, cur_round_id, g.members,
                           g.predicted_gamma, mode_name(g.mode));
        }
      }
      running_groups.emplace(owner, std::move(rg));

      GroupKey key;
      key.members = g.members;
      std::sort(key.members.begin(), key.members.end());
      key.mode = g.mode;
      key.num_gpus = g.num_gpus;
      for (JobId id : g.members) placed.insert(id);
      admitted.push_back({std::move(key), &g, owner});
      (void)min_gpus;
    }

    // Compute execution periods and start/continue jobs.
    std::set<JobId> newly_running;
    for (const auto& [key, group, owner] : admitted) {
      const auto p = group->members.size();
      std::vector<IterationProfile> true_profiles;
      true_profiles.reserve(p);
      int max_gpus = 0, min_gpus = std::numeric_limits<int>::max();
      for (JobId id : group->members) {
        const JobState& s = states[static_cast<size_t>(id)];
        true_profiles.push_back(s.job->profile);
        max_gpus = std::max(max_gpus, s.job->num_gpus);
        min_gpus = std::min(min_gpus, s.job->num_gpus);
      }

      // The shared execution model (sim/exec_model) runs the scheduler's
      // rotation schedule against the ground-truth profiles.
      const GroupExecution ex = compute_group_execution(
          true_profiles, group->mode, max_gpus, min_gpus, group->slots,
          group->offsets, group->planned_period, /*degraded=*/false,
          exec_params);
      const std::vector<Duration>& periods = ex.periods;
      const double gamma_pred = ex.gamma_pred;
      if (group->mode == GroupMode::kInterleaved && p > 1) {
        for (JobId id : group->members) {
          states[static_cast<size_t>(id)].group_gamma = gamma_pred;
        }
      }

      const std::vector<MachineId>& machines = running_groups.at(owner).machines;
      const MachineId home =
          machines.empty() ? kInvalidMachine : machines.front();

      // An unchanged group (same members, mode, GPUs, every member still
      // running under the same key) keeps its incarnation; anything else
      // retires the old accounts and opens a new one.
      bool group_unchanged = true;
      for (JobId id : group->members) {
        const JobState& s = states[static_cast<size_t>(id)];
        group_unchanged = group_unchanged && s.running && s.key == key;
      }
      std::int64_t gid;
      GroupAccount* acct_ptr;
      if (group_unchanged) {
        const JobState& first = states[static_cast<size_t>(group->members[0])];
        gid = first.group_id;
        acct_ptr = first.acct;
        // Attribution follows the placement if the unchanged group moved.
        if (acct_ptr != nullptr) acct_ptr->machine = home;
      } else {
        gid = ++group_seq;
        GroupAccount acct;
        acct.machine = home;
        acct.size = static_cast<int>(p);
        acct.mode = group->mode;
        acct.gamma_predicted = gamma_pred;
        acct.window_start = now;
        acct.window_end = now;
        acct.ready_at = now + options.restart_penalty;
        for (JobId id : group->members) {
          const JobState& s = states[static_cast<size_t>(id)];
          for (int r = 0; r < kNumResources; ++r) {
            const auto ri = static_cast<size_t>(r);
            if (s.job->profile.stage_time[ri] > 0) acct.active[ri] = true;
          }
        }
        acct_ptr = &group_accounts.emplace(gid, acct).first->second;
      }

      for (size_t i = 0; i < p; ++i) {
        const JobId id = group->members[i];
        JobState& s = states[static_cast<size_t>(id)];
        const bool unchanged = s.running && s.key == key;
        const double strag = straggler_factor_for(*s.job, machines);
        if (!unchanged) {
          if (s.running) {
            c_restarts.inc();
            job_instant(s, "restart");
            if (decisions != nullptr) {
              decisions->entry("restart")
                  .num("t", now)
                  .integer("job", id)
                  .str("reason", "regrouped");
            }
            end_run_span(s);
          }
          s.key = key;
          s.ready_at = now + options.restart_penalty;
          s.next_fault =
              fault_rate > 0
                  ? now + job_fault_rng[static_cast<size_t>(id)].exponential(
                              fault_rate)
                  : kInf;
        } else if (s.run_since != kNoTime &&
                   (s.period != periods[i] || s.straggler_factor != strag ||
                    s.run_machine != home || s.degraded)) {
          // Same configuration key but drifted execution parameters
          // (recomputed period, straggler factor, machine move, or a
          // degraded continuation re-admitted): cycle the run-stage span
          // so the busy fractions stamped on it stay constant over its
          // window.
          end_run_span(s);
        }
        if (strag != s.straggler_factor) {
          // The factor a placement realizes differs from the job's last
          // known one (first placement onto a straggling machine, or an
          // unchanged group whose machines drifted between rounds).
          if (decisions != nullptr) {
            decisions->entry("straggler")
                .num("t", now)
                .integer("job", id)
                .num("factor", strag);
          }
          if (jobtrace != nullptr) jobtrace->straggler(id, now, strag);
        }
        s.period = periods[i];
        s.owner = owner;
        s.straggler_factor = strag;
        s.degraded = false;
        s.group_id = gid;
        s.acct = acct_ptr;
        s.running = true;
        if (s.run_since == kNoTime) begin_run_span(s, home);
        newly_running.insert(id);
      }
    }

    // Jobs not in the admitted plan are preempted back to the queue.
    for (JobState& s : states) {
      if (s.running && !newly_running.count(s.job->id)) {
        job_instant(s, "preempt");
        c_dec_preempt_displaced.inc();
        if (decisions != nullptr) {
          decisions->entry("preempt")
              .num("t", now)
              .integer("job", s.job->id)
              .str("reason", "displaced");
        }
        if (jobtrace != nullptr) {
          jobtrace->preempted(s.job->id, now, cur_round_id);
        }
        end_run_span(s);
        s.running = false;
        s.period = 0;
        s.key = GroupKey{};
        s.owner = kNoOwner;
        s.straggler_factor = 1.0;
        s.degraded = false;
        s.group_id = -1;
        s.acct = nullptr;
        ++s.preemptions;
        dirty_jobs.push_back(s.job->id);
      }
    }
    recompute_utilization();
    emit_busy_counters();
  };

  // Main event loop.
  const Time start_time = now;
  // Run-lifecycle records (sim_start … sim_end) bracket the run so replay
  // (src/recovery) can tell runs apart in a shared log and rebuild the
  // cluster shape without the trace in hand.
  if (decisions != nullptr) {
    decisions->entry("sim_start")
        .num("t", now)
        .integer("jobs", static_cast<std::int64_t>(n))
        .integer("machines", options.cluster.num_machines)
        .integer("gpus", cluster.total_gpus())
        .num("interval", options.schedule_interval)
        .num("restart_penalty", options.restart_penalty);
  }
  int stall_rounds = 0;
  observe_metrics();
  dirty = true;

  while (finished_count < n) {
    // Defensive: if nothing can make progress, force a round.
    // Next event candidates.
    Time t_arrival = next_arrival < n
                         ? trace.jobs[arrival_order[next_arrival]].submit_time
                         : kInf;
    Time t_finish = kInf;
    for (const JobState& s : states) {
      if (s.running && !s.finished) {
        t_finish = std::min(t_finish, projected_finish(s));
        if (fault_rate > 0) t_finish = std::min(t_finish, s.next_fault);
      }
    }
    Time t_round = dirty ? std::max(now, last_round + options.schedule_interval)
                         : kInf;
    const Time t_machine = injector.next_time();
    const Time t_probation = monitor.next_probation_end();
    Time t_next = std::min({t_arrival, t_finish, t_round, t_machine,
                            t_probation});

    if (t_next == kInf) {
      // No arrivals, no running jobs, nothing dirty — but jobs remain:
      // force a scheduling round (should not happen in practice).
      if (finished_count < n) {
        dirty = true;
        t_next = now;
      } else {
        break;
      }
    }
    if (options.max_time > 0 && t_next > options.max_time) {
      now = options.max_time;
      break;
    }

    advance_to(t_next);

    // Arrivals.
    while (next_arrival < n &&
           trace.jobs[arrival_order[next_arrival]].submit_time <= now) {
      JobState& s = states[arrival_order[next_arrival]];
      s.arrived = true;
      s.measured = profiler.profile(*s.job);
      job_instant(s, "submit");
      if (decisions != nullptr) {
        decisions->entry("arrival")
            .num("t", now)
            .integer("job", s.job->id)
            .integer("gpus", s.job->num_gpus);
      }
      if (jobtrace != nullptr) jobtrace->submitted(s.job->id, now);
      dirty = true;
      dirty_jobs.push_back(s.job->id);
      ++next_arrival;
    }

    // Machine fault domain events: crashes evict and requeue every
    // resident job; repairs return the machine to the pool unless the
    // worker monitor holds it on probation; straggler windows inflate the
    // periods of resident jobs.
    if (injector.enabled()) {
      for (const FaultEvent& e : injector.pop_until(now)) {
        const auto mi = static_cast<size_t>(e.machine);
        switch (e.kind) {
          case FaultEvent::Kind::kMachineDown: {
            monitor.on_failure(e.machine, now);
            c_machine_failures.inc();
            if (decisions != nullptr) {
              decisions->entry("machine_down")
                  .num("t", now)
                  .integer("machine", static_cast<std::int64_t>(e.machine));
            }
            if (machine_straggler_since[mi] != kNoTime && tracer != nullptr) {
              // A crash closes any open straggler window (the injector
              // emits kStragglerEnd first, but belt and braces).
              tracer->complete(to_us(machine_straggler_since[mi]),
                               to_us(now) - to_us(machine_straggler_since[mi]),
                               "straggler", "fault",
                               obs::machine_track(e.machine), 0);
              machine_straggler_since[mi] = kNoTime;
            }
            machine_down_since[mi] = now;
            machine_slow[mi] = ResourceVector{1.0, 1.0, 1.0, 1.0};
            for (auto it = running_groups.begin();
                 it != running_groups.end();) {
              const bool resident =
                  std::find(it->second.machines.begin(),
                            it->second.machines.end(),
                            e.machine) != it->second.machines.end();
              if (!resident) {
                ++it;
                continue;
              }
              for (JobId id : it->second.members) {
                JobState& s = states[static_cast<size_t>(id)];
                if (s.running && !s.finished) {
                  job_instant(s, "evict");
                  c_dec_preempt_machine.inc();
                  if (decisions != nullptr) {
                    decisions->entry("evict")
                        .num("t", now)
                        .integer("job", id)
                        .integer("machine", static_cast<std::int64_t>(e.machine))
                        .str("reason", "machine_down");
                  }
                  if (jobtrace != nullptr) {
                    jobtrace->faulted(id, now, cur_round_id);
                  }
                  end_run_span(s);
                  s.running = false;
                  s.period = 0;
                  s.key = GroupKey{};
                  s.owner = kNoOwner;
                  s.next_fault = kInf;
                  s.straggler_factor = 1.0;
                  s.degraded = false;
                  s.group_id = -1;
                  s.acct = nullptr;
                  ++s.preemptions;
                  c_evictions.inc();
                  dirty_jobs.push_back(id);
                }
              }
              cluster.release(it->first);
              it = running_groups.erase(it);
            }
            cluster.set_machine_available(e.machine, false);
            dirty = true;
            break;
          }
          case FaultEvent::Kind::kMachineUp: {
            monitor.on_recovery(e.machine, now);
            if (decisions != nullptr) {
              decisions->entry("machine_up")
                  .num("t", now)
                  .integer("machine", static_cast<std::int64_t>(e.machine));
            }
            if (machine_down_since[mi] != kNoTime && tracer != nullptr) {
              tracer->complete(to_us(machine_down_since[mi]),
                               to_us(now) - to_us(machine_down_since[mi]),
                               "down", "fault", obs::machine_track(e.machine),
                               0);
            }
            machine_down_since[mi] = kNoTime;
            if (monitor.schedulable(e.machine)) {
              cluster.set_machine_available(e.machine, true);
              dirty = true;
            }
            break;
          }
          case FaultEvent::Kind::kStragglerStart: {
            monitor.on_straggler(e.machine, true);
            machine_straggler_since[mi] = now;
            machine_slow[mi] = e.slowdown;
            refresh_straggler_factors();
            break;
          }
          case FaultEvent::Kind::kStragglerEnd: {
            monitor.on_straggler(e.machine, false);
            if (machine_straggler_since[mi] != kNoTime && tracer != nullptr) {
              const ResourceVector& slow = machine_slow[mi];
              tracer->complete(
                  to_us(machine_straggler_since[mi]),
                  to_us(now) - to_us(machine_straggler_since[mi]), "straggler",
                  "fault", obs::machine_track(e.machine), 0,
                  obs::TraceArgs("storage", slow[0], "cpu", slow[1], "gpu",
                                 slow[2], "network", slow[3]));
            }
            machine_straggler_since[mi] = kNoTime;
            machine_slow[mi] = ResourceVector{1.0, 1.0, 1.0, 1.0};
            refresh_straggler_factors();
            break;
          }
        }
      }
      // Machines whose probation expired rejoin the pool.
      for (MachineId m : monitor.end_probation(now)) {
        cluster.set_machine_available(m, true);
        dirty = true;
      }
    }

    // Faults: the executor reports the failure and the job goes back to
    // the queue (progress checkpointed at iteration granularity). The
    // surviving members of the group continue immediately as a re-planned
    // degraded group.
    if (fault_rate > 0) {
      for (JobState& s : states) {
        if (s.running && !s.finished && now >= s.next_fault &&
            s.done_iterations <
                static_cast<double>(s.job->iterations) - kIterEps) {
          const OwnerId owner = s.owner;
          const JobId dead = s.job->id;
          job_instant(s, "fault");
          if (decisions != nullptr) {
            decisions->entry("fault")
                .num("t", now)
                .integer("job", dead)
                .str("reason", "job_fault");
          }
          if (jobtrace != nullptr) jobtrace->faulted(dead, now, cur_round_id);
          end_run_span(s);
          s.running = false;
          s.period = 0;
          s.key = GroupKey{};
          s.owner = kNoOwner;
          s.next_fault = kInf;
          s.straggler_factor = 1.0;
          s.degraded = false;
          s.group_id = -1;
          s.acct = nullptr;
          c_faults.inc();
          dirty = true;
          dirty_jobs.push_back(dead);
          if (owner != kNoOwner) {
            auto it = running_groups.find(owner);
            if (it != running_groups.end()) {
              auto& members = it->second.members;
              members.erase(std::remove(members.begin(), members.end(), dead),
                            members.end());
              if (members.empty()) {
                cluster.release(owner);
                running_groups.erase(it);
              } else {
                replan_degraded(it->second);
              }
            }
          }
        }
      }
    }

    // Completions.
    for (JobState& s : states) {
      if (!s.finished && s.running &&
          s.done_iterations >=
              static_cast<double>(s.job->iterations) - kIterEps) {
        job_instant(s, "finish");
        end_run_span(s);
        s.finished = true;
        s.running = false;
        s.period = 0;
        s.group_id = -1;
        s.acct = nullptr;
        // Leave the group registry so a later machine crash or partner
        // fault no longer involves this job.
        if (s.owner != kNoOwner) {
          auto it = running_groups.find(s.owner);
          if (it != running_groups.end()) {
            auto& members = it->second.members;
            members.erase(
                std::remove(members.begin(), members.end(), s.job->id),
                members.end());
            if (members.empty()) running_groups.erase(it);
          }
          s.owner = kNoOwner;
        }
        ++finished_count;
        result.jcts.push_back(now - s.job->submit_time);
        JctBreakdown breakdown;
        breakdown.job = s.job->id;
        breakdown.jct_seconds = now - s.job->submit_time;
        breakdown.restart_overhead_seconds = s.restart_overhead;
        breakdown.running_seconds = s.ran_wall - s.restart_overhead;
        breakdown.queueing_seconds =
            std::max(breakdown.jct_seconds - s.ran_wall, 0.0);
        breakdown.preemptions = s.preemptions;
        s_job_queueing.observe(breakdown.queueing_seconds);
        s_job_running.observe(breakdown.running_seconds);
        s_job_restart_overhead.observe(breakdown.restart_overhead_seconds);
        s_job_preemptions.observe(static_cast<double>(breakdown.preemptions));
        if (decisions != nullptr) {
          decisions->entry("finish")
              .num("t", now)
              .integer("job", s.job->id)
              .num("jct", breakdown.jct_seconds)
              .num("queueing", breakdown.queueing_seconds)
              .num("running", breakdown.running_seconds)
              .num("restart_overhead", breakdown.restart_overhead_seconds)
              .integer("preemptions", breakdown.preemptions);
        }
        if (jobtrace != nullptr) {
          jobtrace->finished(s.job->id, now, breakdown.jct_seconds);
        }
        result.jct_breakdown.push_back(breakdown);
        dirty = true;
        dirty_jobs.push_back(s.job->id);
      }
    }
    if (dirty) {
      recompute_utilization();
      emit_busy_counters();
    }

    // Scheduling round.
    if (dirty && now >= last_round + options.schedule_interval - 1e-9) {
      std::vector<JobView> queue;
      for (const JobState& s : states) {
        if (!s.arrived || s.finished) continue;
        JobView v;
        v.id = s.job->id;
        v.num_gpus = s.job->num_gpus;
        v.submit_time = s.job->submit_time;
        v.measured = s.measured;
        v.attained_service = s.attained_gpu_seconds;
        v.age = now - s.job->submit_time;
        v.remaining_time = options.durations_known ? s.remaining_solo() : 0.0;
        v.running = s.running;
        queue.push_back(std::move(v));
      }
      SchedulerContext ctx;
      ctx.now = now;
      ctx.total_gpus = cluster.total_gpus();
      ctx.gpus_per_machine = options.cluster.gpus_per_machine;
      ctx.durations_known = options.durations_known;
      // Failed and blacklisted machines are out of the allocatable pool.
      ctx.available_gpus = cluster.available_gpus();
      // The lifecycle delta since the previous round. A job can appear
      // more than once (e.g. evicted then re-faulted) — dedupe so the
      // count means "jobs changed", and sort so the set is deterministic
      // for the round_start log field.
      std::sort(dirty_jobs.begin(), dirty_jobs.end());
      dirty_jobs.erase(std::unique(dirty_jobs.begin(), dirty_jobs.end()),
                       dirty_jobs.end());
      ctx.dirty_jobs = &dirty_jobs;

      const auto wall_start = std::chrono::steady_clock::now();
      const auto plan = scheduler.schedule(queue, ctx);
      const auto wall_end = std::chrono::steady_clock::now();
      result.scheduler_wall_ms +=
          std::chrono::duration<double, std::milli>(wall_end - wall_start)
              .count();
      ++result.scheduler_invocations;

      // The round id cross-links into the decision log (and equals the
      // scheduler-invocation ordinal when no log is wired, so trace and
      // jobtrace are byte-identical either way for the same run).
      cur_round_id = decisions != nullptr ? decisions->current_round()
                                          : result.scheduler_invocations;
      if (tracer != nullptr) {
        tracer->instant_at(
            to_us(now), "round", "sched", obs::kSchedulerTrack, 0,
            obs::TraceArgs("queue", static_cast<double>(queue.size()),
                           "groups", static_cast<double>(plan.size()), "round",
                           static_cast<double>(cur_round_id)));
      }

      // Clear before apply_plan: the displacements it records belong to
      // the *next* round's delta.
      dirty_jobs.clear();
      apply_plan(plan);
      last_round = now;

      // Post-round wait verdicts: classify every job the plan left
      // waiting, identically in the jobtrace events and the decision
      // log's "wait" record (ids ascending — states is id-ordered).
      if (jobtrace != nullptr || decisions != nullptr) {
        const std::vector<JobId>& deferred = scheduler.last_deferred();
        const int capacity = ctx.capacity();
        std::vector<std::int64_t> wait_ids;
        std::vector<std::string> wait_buckets;
        for (const JobState& s : states) {
          if (!s.arrived || s.finished || s.running) continue;
          const bool was_deferred = std::binary_search(
              deferred.begin(), deferred.end(), s.job->id);
          const obs::SpanKind bucket =
              obs::classify_wait(was_deferred, s.job->num_gpus, capacity);
          if (jobtrace != nullptr) {
            jobtrace->wait_verdict(s.job->id, now, cur_round_id, bucket);
          }
          if (decisions != nullptr) {
            wait_ids.push_back(s.job->id);
            wait_buckets.emplace_back(obs::span_kind_name(bucket));
          }
        }
        if (decisions != nullptr && !wait_ids.empty()) {
          decisions->entry("wait")
              .num("t", now)
              .ids("job", wait_ids)
              .strs("bucket", wait_buckets);
        }
      }
      // Keep rounds firing while jobs wait: time-varying priorities
      // (attained service, fairness deficits) must be able to preempt.
      bool any_waiting = false;
      bool any_running = false;
      for (const JobState& s : states) {
        if (s.arrived && !s.finished) {
          any_waiting = any_waiting || !s.running;
          any_running = any_running || s.running;
        }
      }
      dirty = any_waiting;
      // A queue that cannot be placed is only a scheduler bug when the
      // whole pool is up; with machines out, jobs legitimately wait for
      // repair or probation to end.
      if (any_waiting && !any_running && next_arrival >= n &&
          cluster.available_machines() == cluster.num_machines()) {
        ++stall_rounds;
        if (stall_rounds >= 3) {
          MURI_LOG(kError) << scheduler.name()
                           << ": scheduler cannot place remaining jobs; "
                              "aborting simulation";
          break;
        }
      } else {
        stall_rounds = 0;
      }
    }

    observe_metrics();
  }

  // Close trace spans still open at the stop (max_time cutoffs, aborted
  // runs, machines that never came back).
  if (tracer != nullptr) {
    for (JobState& s : states) {
      end_run_span(s);
    }
    for (size_t m = 0; m < machine_down_since.size(); ++m) {
      if (machine_down_since[m] != kNoTime) {
        tracer->complete(to_us(machine_down_since[m]),
                         to_us(now) - to_us(machine_down_since[m]), "down",
                         "fault", obs::machine_track(static_cast<int>(m)), 0);
      }
      if (machine_straggler_since[m] != kNoTime) {
        tracer->complete(to_us(machine_straggler_since[m]),
                         to_us(now) - to_us(machine_straggler_since[m]),
                         "straggler", "fault",
                         obs::machine_track(static_cast<int>(m)), 0);
      }
    }
  }

  // Finalize metrics. The fault counters come back out of the registry as
  // per-run deltas (the registry may be shared across runs).
  result.faults = std::llround(c_faults.value() - base_faults);
  result.restarts = std::llround(c_restarts.value() - base_restarts);
  result.machine_failures =
      std::llround(c_machine_failures.value() - base_machine_failures);
  result.evictions = std::llround(c_evictions.value() - base_evictions);
  result.straggler_seconds =
      c_straggler_seconds.value() - base_straggler_seconds;
  result.degraded_group_seconds =
      c_degraded_seconds.value() - base_degraded_seconds;
  result.finished_jobs = static_cast<int>(finished_count);
  result.unfinished_jobs = static_cast<int>(n - finished_count);
  result.avg_jct = mean(result.jcts);
  result.p99_jct = percentile(result.jcts, 99.0);
  result.makespan = now - start_time;
  if (decisions != nullptr) {
    decisions->entry("sim_end")
        .num("t", now)
        .num("makespan", result.makespan)
        .integer("finished", result.finished_jobs)
        .integer("unfinished", result.unfinished_jobs);
  }
  result.avg_queue_length = queue_avg.finalize(now);
  result.avg_blocking_index = blocking_avg.finalize(now);
  for (int j = 0; j < kNumResources; ++j) {
    result.avg_utilization[static_cast<size_t>(j)] =
        util_avg[static_cast<size_t>(j)].finalize(now);
  }
  if (options.record_series) {
    result.queue_series = queue_series.points();
    result.blocking_series = blocking_series.points();
    for (int j = 0; j < kNumResources; ++j) {
      result.util_series[static_cast<size_t>(j)] =
          util_series[static_cast<size_t>(j)].points();
    }
  }
  result.avg_running_jobs = running_avg.finalize(now);
  result.avg_group_width = width_avg.finalize(now);
  result.avg_normalized_rate = rate_avg.finalize(now);
  result.avg_group_gamma_predicted = gamma_avg.finalize(now);

  // Realized γ per retired multi-member incarnation: busy seconds over the
  // active window (wall minus the shared restart stall), averaged over the
  // resources the group uses — then window-weighted across incarnations,
  // mirroring the time-weighted predicted average above.
  result.resource_busy_seconds = busy_total;
  {
    double weight = 0, realized_sum = 0, error_sum = 0;
    for (const auto& [gid, acct] : group_accounts) {
      if (acct.size < 2) continue;
      const double wall = acct.window_end - acct.window_start;
      const double stall =
          std::clamp(acct.ready_at - acct.window_start, 0.0, wall);
      const double active_window = wall - stall;
      if (active_window <= 0) continue;
      int used = 0;
      double fraction_sum = 0;
      for (int r = 0; r < kNumResources; ++r) {
        const auto ri = static_cast<size_t>(r);
        if (!acct.active[ri]) continue;
        ++used;
        fraction_sum += std::min(acct.busy[ri] / active_window, 1.0);
      }
      if (used == 0) continue;
      const double realized = fraction_sum / used;
      s_gamma_realized.observe(realized);
      s_gamma_error.observe(realized - acct.gamma_predicted);
      realized_sum += realized * active_window;
      error_sum += (realized - acct.gamma_predicted) * active_window;
      weight += active_window;
    }
    if (weight > 0) {
      result.avg_group_gamma_realized = realized_sum / weight;
      result.avg_group_gamma_error = error_sum / weight;
    }
  }

  result.profiler_sessions = profiler.sessions();
  result.profiling_time = profiler.profiling_time();
  return result;
}

}  // namespace muri
