// Shared execution model: how a placed group actually runs (DESIGN.md §5).
//
// Given the ground-truth profiles of a group's members and its sharing
// mode, computes the per-member wall seconds per iteration and the
// schedule-time γ prediction. This is the single source of truth for the
// period arithmetic: the offline simulator's apply-plan path, its
// degraded-group re-plan path, and the online service engine
// (src/service/engine) all call it, so a job submitted to the live daemon
// progresses at exactly the rate the batch simulator would charge it.
//
//  - exclusive job (or any single member): period = Σ_r t^r; a multi-member
//    exclusive group time-shares sequentially (period sum as the window).
//  - interleaved group: max-min fair fluid rates (sim/fluid.h) under demand
//    inflation (1 + α(p-1)) × ordering penalty T_chosen/T_best ×
//    mis-planning penalty (barrier pacing gap, Fig. 14) × schedule-quality
//    penalty (1 + gamma_penalty·(1-γ)), plus a cascade factor for
//    mixed-GPU groups.
//  - uncoordinated sharing: the same fluid model with the larger
//    interference inflation (1+β) and no coordination benefit.
//
// The arithmetic (multiplication order included) is bit-identical to the
// historical inline code in sim/simulator.cpp; tier-1 byte-stability tests
// pin that equivalence.
#pragma once

#include <vector>

#include "common/types.h"
#include "job/model.h"
#include "scheduler/scheduler.h"

namespace muri {

// The execution-model knobs, a verbatim subset of SimOptions (same names,
// same defaults — sim/simulator.h documents each).
struct ExecModelParams {
  double alpha = 0.02;
  double gamma_penalty = 0.20;
  double beta = 0.4;
  double cascade_penalty = 0.25;
  double contention_penalty = 0.10;
  double significant_duty = 0.25;
  double misplan_penalty = 0.5;
};

struct GroupExecution {
  // Wall seconds per iteration for each member (kInf for a starved member).
  std::vector<Duration> periods;
  // Schedule-time γ prediction: best-rotation group_efficiency for shared
  // modes, the solo non-idle fraction for exclusive runs.
  double gamma_pred = 0;
  // The mode the group effectively runs under: equal to the input mode,
  // except that a single-member group always runs exclusively. Degraded
  // re-plans adopt it; the apply-plan path keeps the planned mode.
  GroupMode effective_mode = GroupMode::kExclusive;
};

// Computes the execution of one placed group.
//
// `slots`/`offsets`/`planned_period` are the scheduler's rotation schedule
// for kInterleaved groups (empty/0 when unavailable — a malformed or
// absent schedule falls back to the fresh best-order plan, paying no
// ordering penalty but also claiming no planned period). `max_gpus` /
// `min_gpus` are the extreme per-member GPU demands (the mixed-GPU cascade
// factor). `degraded` selects the degraded-continuation rules: a
// multi-member group that is not interleaved shares uncoordinated (the
// survivors lost their rotation), where the plan path time-shares
// sequentially.
GroupExecution compute_group_execution(
    const std::vector<IterationProfile>& profiles, GroupMode mode,
    int max_gpus, int min_gpus, const std::vector<Resource>& slots,
    const std::vector<int>& offsets, Duration planned_period, bool degraded,
    const ExecModelParams& params);

}  // namespace muri
