// Discrete-event cluster simulator (§6.1 "Simulator").
//
// The paper validates its simulator against the 64-GPU testbed at <3%
// metric error and uses it for all large-trace results; this is our
// testbed substitute (DESIGN.md §2). The engine advances between events
// (arrival, completion, scheduling tick), invokes the scheduler on rounds
// where the queue changed, places the returned groups on the cluster in
// plan order, and runs each group under the execution model of DESIGN.md
// §5:
//
//  - exclusive job:      per-iteration wall time = Σ_r t^r;
//  - interleaved group:  max-min fair fluid rates (sim/fluid.h) with
//                        demand inflation (1 + α(p-1)) for residual
//                        cross-stage contention (§6.2's explanation of
//                        sub-4× speedups), times the ordering penalty
//                        T_chosen/T_best (Fig. 6/11), times a cascade
//                        factor for mixed-GPU groups (Fig. 7);
//  - uncoordinated:      the same fluid model with the larger interference
//                        inflation (1+β) and no coordination benefit (the
//                        §2.1 GPU-sharing example).
//
// Preempted or regrouped jobs pay a restart penalty (§5 terminates and
// restarts jobs on plan changes).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/stats.h"
#include "common/types.h"
#include "fault/fault.h"
#include "fault/monitor.h"
#include "job/trace.h"
#include "profiler/profiler.h"
#include "scheduler/scheduler.h"

namespace muri::obs {
class DecisionLog;
class JobTraceLog;
class MetricsRegistry;
class Tracer;
}  // namespace muri::obs

namespace muri {

struct SimOptions {
  ClusterSpec cluster{};
  // Scheduling round interval (§5 uses six minutes).
  Duration schedule_interval = 360;
  // Cost of (re)starting a job whose group or admission changed.
  Duration restart_penalty = 30;
  // Interleaving overhead per extra group member (residual contention;
  // §6.2 explains why grouped speedups fall short of ideal). Calibrated so
  // testbed-scale runs land near the paper's reported speedups while the
  // Table 2 four-job group stays in the ~2-3× total-normalized band.
  double alpha = 0.02;
  // Schedule-quality penalty: a group whose best achievable interleaving
  // efficiency γ (Eq. 4) is low cannot pipeline its stages cleanly, so its
  // demands inflate by (1 + gamma_penalty·(1-γ)). This is the execution-
  // side counterpart of the paper's claim that γ predicts interleaving
  // quality — and what makes Blossom's γ-maximizing matching actually pay
  // off at run time (Fig. 11).
  double gamma_penalty = 0.20;
  // Interference inflation for uncoordinated (AntMan-style) sharing; the
  // §2.1 example (two identical jobs run at ~half speed) corresponds to
  // x = 1/(2·(1+β)/2) ≈ 0.5 at β ≈ 0.4.
  double beta = 0.4;
  // Extra slowdown per log2(GPU-count ratio) for mixed-size groups (only
  // reachable with Muri bucketing disabled).
  double cascade_penalty = 0.25;
  // Per-resource contention inflation (see sim/fluid.h): same-bottleneck
  // co-location gains almost nothing (§2.1, Fig. 13's one-type case).
  double contention_penalty = 0.10;
  double significant_duty = 0.25;
  // Barrier waste per unit of relative gap between the scheduler's planned
  // rotation period and the true one — how inaccurate profiles hurt
  // (Fig. 14).
  double misplan_penalty = 0.5;
  // Fault injection (§3/§5: the executor reports faults and the job is
  // pushed back to the queue). Mean time between failures per *running
  // job* in hours; 0 disables. Progress is checkpointed at iteration
  // granularity, so a fault costs the requeue wait plus the restart
  // penalty, not lost work. Each job draws its fault times from its own
  // RNG substream of fault_seed, so editing the trace never reshuffles
  // other jobs' fault times.
  double mtbf_hours = 0;
  std::uint64_t fault_seed = 1337;
  // Machine-level fault domains: crash/recover (per-machine exponential
  // MTBF/MTTR) and transient straggler windows (per-resource slowdown).
  // A crashed machine evicts and requeues every resident job; surviving
  // members of an interleaved group that lost a member to a *job* fault
  // continue immediately as a re-planned degraded group. All processes
  // default off (zero rates): behavior is then identical to a fault-free
  // run.
  FaultInjectorOptions machine_faults{};
  // Worker-monitor policy: blacklist threshold and recovery probation.
  WorkerMonitorOptions monitor{};
  ResourceProfiler::Options profiler{};
  // Whether JobView::remaining_time is populated (Muri-S/SRTF/SRSF runs).
  bool durations_known = false;
  // Record time series (queue length, blocking index, utilization).
  bool record_series = false;
  // Safety stop; 0 disables. Jobs unfinished at the stop are dropped from
  // JCT statistics and reported in `unfinished_jobs`.
  Time max_time = 0;
  // Observability hooks (src/obs), both optional. `tracer` is driven in
  // the simulated-time clock domain (the run exports a Chrome trace with
  // per-machine tracks: job run spans, preemptions, fault windows,
  // scheduling rounds); it observes the simulation without perturbing it,
  // so results with and without tracing are bit-identical. The fault
  // counters in SimResult are accumulated through `metrics` (or a private
  // registry when null), making them scrapeable mid-run; SimResult reads
  // the per-run deltas back out at finalize.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  // Decision provenance sink (src/obs/provenance): the simulator records
  // the outcome side of every plan — placements with machines chosen,
  // skipped groups with cause, preempt/restart/evict/fault events, and
  // degraded-group continuations — stamped with the scheduler's round id.
  // The same sink is also attached to the scheduler (set_decision_log) by
  // run_simulation, so one log carries both halves of a round's story.
  // Null (the default) disables all of it; SimResult is bit-identical
  // either way.
  obs::DecisionLog* decisions = nullptr;
  // Per-job causal span recorder (src/obs/jobtrace): submit → round
  // verdicts → placement/restart → preempt/evict/fault/degraded/straggler
  // → finish, attributed into wait buckets that sum to the realized JCT.
  // Null (the default) disables it; attaching never perturbs SimResult,
  // the decision log, or the trace — the same obs bit-identity contract.
  obs::JobTraceLog* jobtrace = nullptr;
};

// Per-job completion-time decomposition (the "JCT breakdown" of the
// utilization analytics): JCT = queueing + running + restart overhead.
// Queueing is time arrived-but-unplaced, running is placed-and-progressing,
// restart overhead is placed-but-stalled inside a restart penalty window.
struct JctBreakdown {
  JobId job = kInvalidJob;
  double jct_seconds = 0;
  double queueing_seconds = 0;
  double running_seconds = 0;
  double restart_overhead_seconds = 0;
  // Times the job lost a placement it had (preempt + machine eviction);
  // job-level faults are counted separately in SimResult::faults.
  int preemptions = 0;
};

struct SimResult {
  std::string scheduler_name;
  std::string trace_name;

  // Headline metrics (Tables 4-5, Figures 9-10).
  double avg_jct = 0;
  double p99_jct = 0;
  double makespan = 0;

  // Detailed metrics (Fig. 8).
  double avg_queue_length = 0;
  double avg_blocking_index = 0;
  std::array<double, kNumResources> avg_utilization{};

  // Per-job completion times, aligned with finished job ids.
  std::vector<double> jcts;
  int finished_jobs = 0;
  int unfinished_jobs = 0;

  // Time series (populated when record_series).
  std::vector<SeriesRecorder::Point> queue_series;
  std::vector<SeriesRecorder::Point> blocking_series;
  std::array<std::vector<SeriesRecorder::Point>, kNumResources> util_series;

  // Execution-shape diagnostics (time-weighted averages while any job is
  // in the system).
  double avg_running_jobs = 0;
  double avg_group_width = 0;   // members per running group
  double avg_normalized_rate = 0;  // x = solo_iter_time / period

  // Interleaving-efficiency accounting. "Predicted" is the schedule-time γ
  // of Eq. 4 (best-case rotation efficiency, time-weighted over running
  // multi-job groups; previously named `avg_group_gamma`). "Realized" is
  // reconstructed from execution: per group incarnation, busy seconds per
  // resource divided by the group's wall window, averaged over the
  // resources the group actually uses — the same averaging as
  // interleave/group_efficiency — then weighted by window length across
  // retired multi-member groups. The fluid execution model is
  // work-conserving, so on noise-free timings realized γ matches predicted
  // γ to within a few percent (it can exceed it: the rotation schedule
  // quantizes to stage boundaries, the fluid model does not).
  double avg_group_gamma_predicted = 0;
  double avg_group_gamma_realized = 0;
  // Window-weighted mean of (realized − predicted) over retired groups.
  double avg_group_gamma_error = 0;

  // Realized busy seconds per resource summed over machines (the totals
  // behind the `muri_resource_busy_seconds` counters).
  std::array<double, kNumResources> resource_busy_seconds{};

  // Per finished job, in completion order (aligned with `jcts`).
  std::vector<JctBreakdown> jct_breakdown;

  // Fault injection accounting.
  std::int64_t faults = 0;
  // Number of times a running job was restarted because its group or
  // placement changed (preemption/regrouping churn).
  std::int64_t restarts = 0;
  // Machine fault-domain accounting.
  std::int64_t machine_failures = 0;   // machine-down events observed
  std::int64_t evictions = 0;          // jobs requeued by machine crashes
  double straggler_seconds = 0;        // job-seconds run at slowdown > 1
  double degraded_group_seconds = 0;   // job-seconds run in a degraded group

  // Accounting.
  std::int64_t scheduler_invocations = 0;
  double scheduler_wall_ms = 0;  // real time spent inside schedule()
  int profiler_sessions = 0;
  Duration profiling_time = 0;
};

// Runs `scheduler` over `trace` and returns the collected metrics.
// The scheduler object may carry state across rounds (AntMan does); pass a
// fresh instance per run.
SimResult run_simulation(const Trace& trace, Scheduler& scheduler,
                         const SimOptions& options);

}  // namespace muri
