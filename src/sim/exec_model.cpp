#include "sim/exec_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "interleave/efficiency.h"
#include "sim/fluid.h"

namespace muri {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double safe_log2_ratio(int hi, int lo) {
  return std::log2(static_cast<double>(hi) / static_cast<double>(lo));
}

}  // namespace

GroupExecution compute_group_execution(
    const std::vector<IterationProfile>& profiles, GroupMode mode,
    int max_gpus, int min_gpus, const std::vector<Resource>& slots,
    const std::vector<int>& offsets, Duration planned_period, bool degraded,
    const ExecModelParams& params) {
  GroupExecution out;
  out.effective_mode = mode;
  const auto p = profiles.size();
  out.periods.assign(p, 0.0);
  if (p == 0) return out;

  std::vector<ResourceVector> stages;
  stages.reserve(p);
  for (const IterationProfile& prof : profiles) {
    stages.push_back(prof.stage_time);
  }

  if (mode == GroupMode::kInterleaved && p > 1) {
    // Validate the scheduler's rotation schedule; fall back to a fresh
    // best-order plan if it is unusable against the true profiles.
    const int s = static_cast<int>(slots.size());
    bool schedule_ok =
        offsets.size() == p && static_cast<size_t>(s) >= p &&
        std::set<Resource>(slots.begin(), slots.end()).size() == slots.size();
    if (schedule_ok) {
      std::set<int> distinct(offsets.begin(), offsets.end());
      schedule_ok = distinct.size() == p;
      for (int o : offsets) {
        schedule_ok = schedule_ok && o >= 0 && o < s;
      }
    }
    // The chosen stage ordering sets the execution quality: a misaligned
    // rotation stretches every stage by the ratio of its period to the
    // best achievable one (Fig. 6 / Fig. 11).
    const InterleavePlan best = plan_interleave(stages);
    Duration chosen_period = best.period;
    if (schedule_ok) {
      chosen_period = group_period(stages, slots, offsets);
    }
    const double ordering_factor =
        best.period > 0 ? std::max(1.0, chosen_period / best.period) : 1.0;

    // Barriers are paced by the *planned* schedule; the relative gap
    // between planned and true period becomes idle time (Fig. 14).
    double misplan_factor = 1.0;
    if (planned_period > 0 && chosen_period > 0) {
      const double gap = std::abs(chosen_period - planned_period) /
                         std::max(planned_period, chosen_period);
      misplan_factor = 1.0 + params.misplan_penalty * gap;
    }

    // Schedule quality: groups with poor best-case γ pipeline badly.
    const double gamma_true = group_efficiency(stages, best.period);
    out.gamma_pred = gamma_true;
    const double quality_factor =
        1.0 +
        params.gamma_penalty * (1.0 - std::clamp(gamma_true, 0.0, 1.0));

    FluidOptions fluid;
    fluid.inflation = (1.0 + params.alpha * static_cast<double>(p - 1)) *
                      ordering_factor * misplan_factor * quality_factor;
    if (max_gpus != min_gpus) {
      fluid.inflation *=
          1.0 + params.cascade_penalty * safe_log2_ratio(max_gpus, min_gpus);
    }
    fluid.contention_penalty = params.contention_penalty;
    fluid.significant_duty = params.significant_duty;
    const std::vector<double> rates = max_min_fair_rates(profiles, fluid);
    for (size_t i = 0; i < p; ++i) {
      out.periods[i] =
          rates[i] > 0 ? profiles[i].iteration_time() / rates[i] : kInf;
    }
  } else if (p > 1 && (mode == GroupMode::kUncoordinated || degraded)) {
    // Best-case rotation γ as the prediction: the realized gap shows what
    // uncoordinated sharing leaves on the table (§2.1).
    out.gamma_pred = group_efficiency(stages, plan_interleave(stages).period);
    FluidOptions fluid;
    fluid.inflation = 1.0 + params.beta;
    fluid.contention_penalty = params.contention_penalty;
    fluid.significant_duty = params.significant_duty;
    const std::vector<double> rates = max_min_fair_rates(profiles, fluid);
    for (size_t i = 0; i < p; ++i) {
      out.periods[i] =
          rates[i] > 0 ? profiles[i].iteration_time() / rates[i] : kInf;
    }
  } else {
    Duration solo_sum = 0;
    for (size_t i = 0; i < p; ++i) {
      out.periods[i] = profiles[i].iteration_time();
      solo_sum += out.periods[i];
    }
    // Solo (or sequential-share) non-idle fraction over the used
    // resources — 1/k' for a single k'-resource job.
    out.gamma_pred = group_efficiency(stages, solo_sum);
    if (p == 1) out.effective_mode = GroupMode::kExclusive;
  }
  return out;
}

}  // namespace muri
