#include "sim/fluid.h"

#include <algorithm>
#include <cassert>

namespace muri {

namespace {

constexpr double kEps = 1e-12;

// Core solver over raw duty cycles; a duty row of all zeros means "no
// demand" and gets x = 1.
std::vector<double> solve_rates(std::vector<ResourceVector> raw_duty,
                                const FluidOptions& options) {
  assert(options.inflation >= 1.0);
  const size_t p = raw_duty.size();
  std::vector<double> x(p, 0.0);
  if (p == 0) return x;

  std::vector<bool> frozen(p, false);
  for (size_t i = 0; i < p; ++i) {
    if (total(raw_duty[i]) <= kEps) {
      x[i] = 1.0;
      frozen[i] = true;
    }
  }

  // Per-resource contention: every extra significant user of a resource
  // inflates all demands on it.
  std::array<double, kNumResources> resource_inflation;
  for (int j = 0; j < kNumResources; ++j) {
    int significant = 0;
    for (size_t i = 0; i < p; ++i) {
      if (!frozen[i] &&
          raw_duty[i][static_cast<size_t>(j)] > options.significant_duty) {
        ++significant;
      }
    }
    resource_inflation[static_cast<size_t>(j)] =
        1.0 + options.contention_penalty * std::max(0, significant - 1);
  }

  std::vector<ResourceVector> duty(p);
  for (size_t i = 0; i < p; ++i) {
    if (frozen[i]) continue;
    for (int j = 0; j < kNumResources; ++j) {
      duty[i][static_cast<size_t>(j)] =
          options.inflation * resource_inflation[static_cast<size_t>(j)] *
          raw_duty[i][static_cast<size_t>(j)];
    }
  }

  std::array<double, kNumResources> residual;
  residual.fill(1.0);

  // Progressive filling: at most p freezes plus k saturations.
  for (size_t round = 0; round < p + kNumResources + 1; ++round) {
    // Aggregate active demand per resource and the largest common step.
    double delta = 2.0;  // > any possible (1 - x_i)
    bool any_active = false;
    std::array<double, kNumResources> load{};
    for (size_t i = 0; i < p; ++i) {
      if (frozen[i]) continue;
      any_active = true;
      delta = std::min(delta, 1.0 - x[i]);
      for (int j = 0; j < kNumResources; ++j) {
        load[static_cast<size_t>(j)] += duty[i][static_cast<size_t>(j)];
      }
    }
    if (!any_active) break;
    for (int j = 0; j < kNumResources; ++j) {
      if (load[static_cast<size_t>(j)] > kEps) {
        delta = std::min(delta, residual[static_cast<size_t>(j)] /
                                    load[static_cast<size_t>(j)]);
      }
    }
    delta = std::max(delta, 0.0);

    for (size_t i = 0; i < p; ++i) {
      if (!frozen[i]) x[i] += delta;
    }
    for (int j = 0; j < kNumResources; ++j) {
      residual[static_cast<size_t>(j)] -=
          delta * load[static_cast<size_t>(j)];
    }

    // Freeze saturated jobs: at solo rate, or touching a drained resource.
    bool froze_any = false;
    for (size_t i = 0; i < p; ++i) {
      if (frozen[i]) continue;
      bool freeze = x[i] >= 1.0 - 1e-9;
      for (int j = 0; j < kNumResources && !freeze; ++j) {
        if (duty[i][static_cast<size_t>(j)] > kEps &&
            residual[static_cast<size_t>(j)] <= 1e-9) {
          freeze = true;
        }
      }
      if (freeze) {
        x[i] = std::min(x[i], 1.0);
        frozen[i] = true;
        froze_any = true;
      }
    }
    if (!froze_any && delta <= kEps) {
      // Numerical stall: freeze everything at current rates.
      for (size_t i = 0; i < p; ++i) frozen[i] = true;
    }
  }
  for (size_t i = 0; i < p; ++i) x[i] = std::clamp(x[i], 0.0, 1.0);
  return x;
}

}  // namespace

std::vector<double> max_min_fair_rates(
    const std::vector<ResourceVector>& profiles,
    const FluidOptions& options) {
  std::vector<ResourceVector> duty(profiles.size());
  for (size_t i = 0; i < profiles.size(); ++i) {
    const Duration iter = total(profiles[i]);
    if (iter <= kEps) continue;  // stays all-zero -> x = 1
    for (int j = 0; j < kNumResources; ++j) {
      duty[i][static_cast<size_t>(j)] =
          profiles[i][static_cast<size_t>(j)] / iter;
    }
  }
  return solve_rates(std::move(duty), options);
}

std::vector<double> max_min_fair_rates(
    const std::vector<IterationProfile>& profiles,
    const FluidOptions& options) {
  std::vector<ResourceVector> duty(profiles.size());
  for (size_t i = 0; i < profiles.size(); ++i) {
    const Duration span = profiles[i].iteration_time();
    if (span <= kEps) continue;
    for (int j = 0; j < kNumResources; ++j) {
      duty[i][static_cast<size_t>(j)] =
          profiles[i].stage_time[static_cast<size_t>(j)] / span;
    }
  }
  return solve_rates(std::move(duty), options);
}

std::vector<double> max_min_fair_rates(
    const std::vector<ResourceVector>& profiles, double inflation) {
  FluidOptions options;
  options.inflation = inflation;
  return max_min_fair_rates(profiles, options);
}

}  // namespace muri
