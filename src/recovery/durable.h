// Durable write path for the DecisionLog, and crash recovery over it
// (DESIGN.md "Durability and recovery").
//
// DurableSink implements obs::DecisionLog::Sink: every record the log
// commits is framed (wal.h), appended to a WAL file, and made durable
// under a configurable fsync policy. At a configurable cadence it also
// folds the stream into a ReplayState (replay.h) and appends a snapshot
// frame, so recovery reads the last snapshot plus the record suffix
// instead of the whole log.
//
// Recovery leans on the determinism the DecisionLog already guarantees:
// a fixed-seed run regenerates the exact same byte sequence of records.
// A resumed sink therefore re-attaches to the existing WAL and, as the
// re-executed run regenerates records, (a) skips ordinals a compacted
// head snapshot covers, (b) byte-verifies ordinals that are already on
// disk — any mismatch flags divergence instead of corrupting the log —
// and (c) starts appending at the first ordinal past the old tail. A
// run resumed this way converges to the byte-identical WAL an
// uninterrupted run would have written.
//
// Crash-point injection for the CI sweeps rides on the same path:
// MURI_CRASH_AT=N (opt-in via honor_crash_env) calls _Exit at the
// boundary of record N — after its frame (and any due snapshot) hit the
// file, since POSIX write() survives process death — and MURI_CRASH_TORN=1
// makes the final frame a half-written torn tail instead, exercising the
// truncation path. stop_after_records is the in-process equivalent for
// tests that cannot afford to die.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/provenance.h"
#include "recovery/replay.h"
#include "recovery/wal.h"

namespace muri::recovery {

struct DurableSinkOptions {
  enum class Fsync { kNone, kInterval, kEveryRecord };
  // Durability/latency trade-off: kNone trusts the page cache (survives
  // process crashes, not power loss), kEveryRecord survives power loss at
  // one fsync per record, kInterval bounds the power-loss exposure to
  // `fsync_interval_records` records.
  Fsync fsync = Fsync::kInterval;
  std::int64_t fsync_interval_records = 64;
  // Append a snapshot frame after every N records; 0 disables. Recovery
  // cost is then bounded by N records of suffix replay.
  std::int64_t snapshot_every_records = 0;
  // Re-attach to an existing WAL (see file comment). Off, the file is
  // truncated and written from scratch.
  bool resume = false;
  // Append-resume (the service daemon's restart path): re-attach to an
  // existing WAL *without* byte-verification. A daemon's records carry
  // wall-clock-derived submit times, so a restarted process cannot
  // regenerate the old byte stream the way a deterministic re-executed
  // run can; instead the torn tail is truncated, ordinals continue after
  // the on-disk records (records_seen() starts at that count, and the
  // snapshot fold is pre-loaded from the recovered state so cadence
  // snapshots stay truthful), and every new record appends immediately.
  // Mutually exclusive with `resume`.
  bool append_resume = false;
  // Honor MURI_CRASH_AT / MURI_CRASH_TORN (CI crash sweeps only).
  bool honor_crash_env = false;
  // Stop writing (silently) after this many records, as if the process
  // had died at that boundary; -1 = never. In-process crash simulation.
  std::int64_t stop_after_records = -1;
  // Called after each record boundary becomes durable, with the record
  // ordinal (1-based). Observational: must not throw (it runs inside
  // DecisionLog::Entry's destructor).
  std::function<void(std::int64_t)> boundary_hook;
};

class DurableSink : public obs::DecisionLog::Sink {
 public:
  DurableSink(std::string path, DurableSinkOptions options = {});
  ~DurableSink() override;

  DurableSink(const DurableSink&) = delete;
  DurableSink& operator=(const DurableSink&) = delete;

  // False after any I/O failure, resume decode failure, or divergence;
  // on_record becomes a no-op once not ok (fail-stop, never corrupt).
  bool ok() const noexcept { return ok_; }
  const std::string& error() const noexcept { return error_; }

  // Resume verification found a regenerated record that differs from the
  // bytes on disk — the run is not the one the WAL came from.
  bool diverged() const noexcept { return diverged_; }

  void on_record(std::string_view line) override;

  // Flushes to the OS and fsyncs regardless of policy.
  bool sync();
  // sync() + close the descriptor; further records are dropped.
  void close();

  // Counters for reports and tests.
  std::int64_t records_seen() const noexcept { return ordinal_; }
  std::int64_t records_verified() const noexcept { return verified_; }
  std::int64_t records_appended() const noexcept { return appended_; }
  std::int64_t records_covered_by_snapshot() const noexcept {
    return head_covered_;
  }

  // Cumulative I/O cost of the durable path, feeding the daemon's /stats
  // dashboard and the wal_fsync_s SLO target. Callers that read this
  // concurrently with on_record must serialize externally (the daemon
  // holds its engine mutex for both).
  struct IoStats {
    std::int64_t appended_bytes = 0;   // frame bytes handed to write()
    double append_seconds = 0;         // total wall time inside write()
    std::int64_t fsyncs = 0;
    double fsync_seconds = 0;          // total wall time inside fsync()
    double last_fsync_seconds = 0;
    double max_fsync_seconds = 0;
    std::int64_t unsynced_records = 0; // durability lag right now
  };
  IoStats io_stats() const noexcept {
    IoStats s = io_;
    s.unsynced_records = unsynced_;
    return s;
  }

 private:
  void append_frame(FrameKind kind, std::string_view payload);
  void maybe_fsync();
  void crash_now(std::string_view next_payload);

  std::string path_;
  DurableSinkOptions options_;
  int fd_ = -1;
  bool ok_ = true;
  bool diverged_ = false;
  std::string error_;

  std::int64_t ordinal_ = 0;    // records observed (1-based after first)
  std::int64_t verified_ = 0;
  std::int64_t appended_ = 0;
  std::int64_t unsynced_ = 0;   // records since last fsync
  IoStats io_;

  // Resume bookkeeping.
  std::int64_t head_covered_ = 0;          // ordinals a head snapshot covers
  std::vector<std::string> expected_;      // on-disk record payloads after it
  // Ordinal of a cadence snapshot the old tail lost to truncation (its
  // record survived but the following snapshot frame did not); 0 = none.
  std::int64_t missing_snapshot_at_ = 0;

  // Crash injection (resolved from the environment in the constructor).
  std::int64_t crash_at_ = 0;  // 0 = disabled
  bool crash_torn_ = false;

  // Incremental fold for snapshot payloads (maintained only when
  // snapshots are enabled).
  ReplayState fold_;
};

// Result of reading a WAL back into scheduler state.
struct RecoverResult {
  ReplayState state;
  // Record ordinals present on disk: head-snapshot coverage + record
  // frames. A resumed run re-appends starting at records_on_disk + 1.
  std::int64_t records_on_disk = 0;
  std::int64_t snapshot_frames = 0;
  // Suffix length actually replayed (records after the last snapshot).
  std::int64_t replayed_records = 0;
  bool used_snapshot = false;
  bool torn = false;
  std::string torn_reason;
  std::size_t valid_bytes = 0;
};

// Reconstructs state from `path`: loads the last snapshot frame (if any)
// and folds the record frames after it. Torn tails are reported, not
// fatal. False with `error` on I/O failure, undecodable snapshots, or
// records that fail to parse.
bool recover_wal(const std::string& path, RecoverResult& out,
                 std::string* error = nullptr);

// Rewrites `path` as its last snapshot frame followed by the record
// frames after it, dropping the replayed prefix and earlier snapshots.
// A file without snapshots is folded into one head snapshot (recovery
// then has nothing to replay, and byte-verification of the dropped
// records is no longer possible — resume skips them instead). Returns
// false with `error` on I/O or decode failure.
bool compact_wal(const std::string& path, std::string* error = nullptr);

}  // namespace muri::recovery
