// Deterministic replay of a DecisionLog stream (DESIGN.md "Durability
// and recovery").
//
// The DecisionLog already records every scheduler decision and every
// simulator outcome; this module folds that stream back into the state a
// restarted scheduler daemon needs: which jobs have arrived, which are
// running in which groups on which machines, which finished with what
// JCT, which fault domains are down, and how far the round counter got.
// The fold is a pure function of the record sequence — replaying the
// same log twice yields byte-identical state, and a threaded run's log
// replays to the same state as a serial run's because the log itself is
// byte-stable across num_threads.
//
// ReplayState also doubles as the snapshot payload of the WAL (wal.h):
// state_json() is byte-stable (fixed key order, sorted sets, the
// %.17g double format of the exporters), so snapshots taken at the same
// record ordinal are byte-identical across runs — which is what lets a
// resumed WAL converge byte-for-byte with an uninterrupted one.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/provenance.h"

namespace muri::recovery {

// One placed group as replay sees it: the simulator's "placement" record.
struct ReplayGroup {
  std::vector<std::int64_t> jobs;
  std::int64_t gpus = 0;
  std::string mode;
  std::vector<std::int64_t> machines;
  std::int64_t owner = 0;

  bool operator==(const ReplayGroup&) const = default;
};

// Scheduler-facing state reconstructed from a DecisionLog stream, plus
// the aggregate accounting needed to cross-check a live SimResult.
struct ReplayState {
  // Lifecycle. `runs` counts sim_start records (logs may carry several
  // runs back to back; each sim_start resets the per-run fields below).
  std::int64_t runs = 0;
  std::int64_t records = 0;    // records folded in
  std::int64_t round = 0;      // highest round id seen
  double sim_time = 0;         // latest simulated "t"
  bool run_complete = false;   // sim_end seen

  // Cluster shape (from sim_start).
  std::int64_t machines = 0;
  std::int64_t total_gpus = 0;

  // Job population.
  std::set<std::int64_t> arrived;
  std::set<std::int64_t> running;
  std::set<std::int64_t> finished;

  // Current placements: the groups of the latest placement round, minus
  // members since removed by preempt/evict/fault/finish.
  std::int64_t placement_round = -1;
  std::vector<ReplayGroup> groups;

  // Fault-domain status: machines currently down.
  std::set<std::int64_t> machines_down;

  // Aggregates mirroring SimResult (exact doubles: the log's %.17g
  // round-trips IEEE doubles bit-for-bit).
  std::vector<double> jcts;     // in finish order
  double makespan = 0;          // from sim_end
  std::int64_t finished_jobs = 0;
  std::int64_t unfinished_jobs = 0;
  std::int64_t faults = 0;
  std::int64_t restarts = 0;
  std::int64_t machine_failures = 0;
  std::int64_t evictions = 0;
  std::int64_t scheduler_invocations = 0;  // round_start records

  bool operator==(const ReplayState&) const = default;

  // Arrived but neither running nor finished, ascending.
  std::vector<std::int64_t> queued() const;
  // SimResult-compatible aggregates, computed with the same common/stats
  // calls the simulator uses (bit-exact on the same jcts).
  double avg_jct() const;
  double p99_jct() const;
};

// Folds one parsed record into `state`. Unknown record types only bump
// the record/round counters (forward compatibility, mirroring the
// validator). False with `error` when a known type is missing the fields
// replay depends on.
bool apply_record(ReplayState& state, const obs::JsonValue& rec,
                  std::string* error = nullptr);

// Byte-stable JSON serialization (single line, '\n'-terminated): the WAL
// snapshot payload format.
std::string state_json(const ReplayState& state);
bool state_from_json(std::string_view json, ReplayState& out,
                     std::string* error = nullptr);

// Human-readable summary for muri-report replay.
std::string state_text(const ReplayState& state);

// Replays DecisionLog streams into a ReplayState. Feed it a whole JSONL
// dump, individual lines, or a snapshot to start from.
class ReplayEngine {
 public:
  ReplayEngine() = default;

  // Replaces the current state with a snapshot (WAL snapshot payload).
  bool load_snapshot(std::string_view snapshot_json,
                     std::string* error = nullptr);

  // Folds one JSONL record line.
  bool apply_line(std::string_view line, std::string* error = nullptr);

  // Folds a whole JSONL dump on top of the current state. A non-null
  // `tail_warning` tolerates a torn final line (parse_decision_log
  // contract).
  bool replay(std::string_view jsonl, std::string* error = nullptr,
              std::string* tail_warning = nullptr);

  const ReplayState& state() const noexcept { return state_; }
  ReplayState& mutable_state() noexcept { return state_; }

 private:
  ReplayState state_;
};

}  // namespace muri::recovery
