#include "recovery/replay.h"

#include <algorithm>
#include <cstdio>

#include "common/stats.h"

namespace muri::recovery {

namespace {

using obs::JsonValue;

std::int64_t as_int(const JsonValue& v) {
  return static_cast<std::int64_t>(v.number);
}

bool int_array(const JsonValue& v, std::vector<std::int64_t>& out) {
  if (!v.is_array()) return false;
  out.clear();
  out.reserve(v.array.size());
  for (const auto& e : v.array) {
    if (!e.is_number()) return false;
    out.push_back(as_int(e));
  }
  return true;
}

// Removes `job` from every group's member list, dropping groups that
// empty out — the replay mirror of the simulator's running_groups
// bookkeeping on preempt/evict/fault/finish.
void remove_job_from_groups(ReplayState& state, std::int64_t job) {
  for (auto it = state.groups.begin(); it != state.groups.end();) {
    auto& jobs = it->jobs;
    jobs.erase(std::remove(jobs.begin(), jobs.end(), job), jobs.end());
    it = jobs.empty() ? state.groups.erase(it) : it + 1;
  }
}

void drop_running_job(ReplayState& state, std::int64_t job) {
  state.running.erase(job);
  remove_job_from_groups(state, job);
}

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

void append_int_set(std::string& out, const std::set<std::int64_t>& s) {
  out += '[';
  bool first = true;
  for (const std::int64_t v : s) {
    if (!first) out += ',';
    append_int(out, v);
    first = false;
  }
  out += ']';
}

void append_int_vec(std::string& out, const std::vector<std::int64_t>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) out += ',';
    append_int(out, v[i]);
  }
  out += ']';
}

bool read_int(const JsonValue& obj, const char* key, std::int64_t& out,
              std::string* error) {
  const JsonValue& v = obj.at(key);
  if (!v.is_number()) {
    if (error != nullptr) {
      *error = std::string("snapshot missing number \"") + key + "\"";
    }
    return false;
  }
  out = as_int(v);
  return true;
}

bool read_int_set(const JsonValue& obj, const char* key,
                  std::set<std::int64_t>& out, std::string* error) {
  std::vector<std::int64_t> v;
  if (!int_array(obj.at(key), v)) {
    if (error != nullptr) {
      *error = std::string("snapshot missing int array \"") + key + "\"";
    }
    return false;
  }
  out.clear();
  out.insert(v.begin(), v.end());
  return true;
}

}  // namespace

std::vector<std::int64_t> ReplayState::queued() const {
  std::vector<std::int64_t> out;
  for (const std::int64_t job : arrived) {
    if (running.count(job) == 0 && finished.count(job) == 0) {
      out.push_back(job);
    }
  }
  return out;
}

double ReplayState::avg_jct() const { return mean(jcts); }

double ReplayState::p99_jct() const { return percentile(jcts, 99.0); }

bool apply_record(ReplayState& state, const JsonValue& rec,
                  std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (!rec.is_object()) return fail("record is not a JSON object");
  const JsonValue& type_v = rec.at("type");
  const JsonValue& round_v = rec.at("round");
  if (!type_v.is_string() || !round_v.is_number()) {
    return fail("record missing \"type\"/\"round\"");
  }
  const std::string& type = type_v.string;
  const std::int64_t round = as_int(round_v);
  ++state.records;
  state.round = std::max(state.round, round);
  const JsonValue& t_v = rec.at("t");
  if (t_v.is_number()) state.sim_time = t_v.number;

  const auto field_fail = [&](const char* key) {
    return fail("record type \"" + type + "\" missing field \"" + key + "\"");
  };
  const auto job_of = [&](std::int64_t& out) {
    const JsonValue& v = rec.at("job");
    if (!v.is_number()) return false;
    out = as_int(v);
    return true;
  };

  if (type == "sim_start") {
    // A fresh run begins: logs shared across several runs (the bench
    // tables do this) reset per-run state here. The record counter and
    // round high-water mark are log-global and survive.
    ++state.runs;
    state.run_complete = false;
    if (!rec.at("machines").is_number() || !rec.at("gpus").is_number()) {
      return field_fail("machines/gpus");
    }
    state.machines = as_int(rec.at("machines"));
    state.total_gpus = as_int(rec.at("gpus"));
    state.arrived.clear();
    state.running.clear();
    state.finished.clear();
    state.placement_round = -1;
    state.groups.clear();
    state.machines_down.clear();
    state.jcts.clear();
    state.makespan = 0;
    state.finished_jobs = 0;
    state.unfinished_jobs = 0;
    state.faults = 0;
    state.restarts = 0;
    state.machine_failures = 0;
    state.evictions = 0;
    state.scheduler_invocations = 0;
  } else if (type == "arrival") {
    std::int64_t job;
    if (!job_of(job)) return field_fail("job");
    state.arrived.insert(job);
  } else if (type == "round_start") {
    ++state.scheduler_invocations;
  } else if (type == "placement") {
    // The simulator re-places every admitted group each round, so the
    // first placement of a new round supersedes the whole previous
    // placement picture.
    if (round != state.placement_round) {
      state.placement_round = round;
      state.groups.clear();
      state.running.clear();
    }
    ReplayGroup group;
    if (!int_array(rec.at("jobs"), group.jobs)) return field_fail("jobs");
    if (!int_array(rec.at("machines"), group.machines)) {
      return field_fail("machines");
    }
    if (!rec.at("gpus").is_number()) return field_fail("gpus");
    group.gpus = as_int(rec.at("gpus"));
    if (rec.at("mode").is_string()) group.mode = rec.at("mode").string;
    if (rec.at("owner").is_number()) group.owner = as_int(rec.at("owner"));
    for (const std::int64_t job : group.jobs) state.running.insert(job);
    state.groups.push_back(std::move(group));
  } else if (type == "preempt") {
    std::int64_t job;
    if (!job_of(job)) return field_fail("job");
    drop_running_job(state, job);
  } else if (type == "restart") {
    ++state.restarts;
  } else if (type == "evict") {
    std::int64_t job;
    if (!job_of(job)) return field_fail("job");
    drop_running_job(state, job);
    ++state.evictions;
  } else if (type == "fault") {
    std::int64_t job;
    if (!job_of(job)) return field_fail("job");
    drop_running_job(state, job);
    ++state.faults;
  } else if (type == "machine_down") {
    if (!rec.at("machine").is_number()) return field_fail("machine");
    state.machines_down.insert(as_int(rec.at("machine")));
    ++state.machine_failures;
  } else if (type == "machine_up") {
    if (!rec.at("machine").is_number()) return field_fail("machine");
    state.machines_down.erase(as_int(rec.at("machine")));
  } else if (type == "finish") {
    std::int64_t job;
    if (!job_of(job)) return field_fail("job");
    if (!rec.at("jct").is_number()) return field_fail("jct");
    drop_running_job(state, job);
    state.finished.insert(job);
    state.jcts.push_back(rec.at("jct").number);
  } else if (type == "sim_end") {
    if (!rec.at("makespan").is_number()) return field_fail("makespan");
    state.makespan = rec.at("makespan").number;
    state.finished_jobs = as_int(rec.at("finished"));
    state.unfinished_jobs = as_int(rec.at("unfinished"));
    state.run_complete = true;
  } else if (type == "job_submit") {
    // Service-daemon admission (src/service): the online twin of arrival.
    std::int64_t job;
    if (!job_of(job)) return field_fail("job");
    state.arrived.insert(job);
  } else if (type == "job_cancel") {
    // A cancelled job leaves the system entirely — not queued, not
    // running, and never a finished/JCT datapoint.
    std::int64_t job;
    if (!job_of(job)) return field_fail("job");
    drop_running_job(state, job);
    state.arrived.erase(job);
  }
  // Every other type (priority, bucket, match_round, group, deferred,
  // round_end, placement_skip, degraded_continue, exec_*, job_progress,
  // job_restore, daemon_start, daemon_stop) carries no state replay
  // tracks beyond the counters already bumped.
  return true;
}

std::string state_json(const ReplayState& state) {
  std::string out = "{\"type\":\"replay_state\",\"runs\":";
  append_int(out, state.runs);
  out += ",\"records\":";
  append_int(out, state.records);
  out += ",\"round\":";
  append_int(out, state.round);
  out += ",\"sim_time\":";
  obs::append_json_double(out, state.sim_time);
  out += ",\"run_complete\":";
  out += state.run_complete ? "true" : "false";
  out += ",\"machines\":";
  append_int(out, state.machines);
  out += ",\"gpus\":";
  append_int(out, state.total_gpus);
  out += ",\"arrived\":";
  append_int_set(out, state.arrived);
  out += ",\"running\":";
  append_int_set(out, state.running);
  out += ",\"finished\":";
  append_int_set(out, state.finished);
  out += ",\"placement_round\":";
  append_int(out, state.placement_round);
  out += ",\"groups\":[";
  for (std::size_t i = 0; i < state.groups.size(); ++i) {
    const ReplayGroup& g = state.groups[i];
    if (i != 0) out += ',';
    out += "{\"jobs\":";
    append_int_vec(out, g.jobs);
    out += ",\"gpus\":";
    append_int(out, g.gpus);
    out += ",\"mode\":\"";
    out += g.mode;  // modes are identifier-safe literals
    out += "\",\"machines\":";
    append_int_vec(out, g.machines);
    out += ",\"owner\":";
    append_int(out, g.owner);
    out += '}';
  }
  out += "],\"machines_down\":";
  append_int_set(out, state.machines_down);
  out += ",\"jcts\":[";
  for (std::size_t i = 0; i < state.jcts.size(); ++i) {
    if (i != 0) out += ',';
    obs::append_json_double(out, state.jcts[i]);
  }
  out += "],\"makespan\":";
  obs::append_json_double(out, state.makespan);
  out += ",\"finished_jobs\":";
  append_int(out, state.finished_jobs);
  out += ",\"unfinished_jobs\":";
  append_int(out, state.unfinished_jobs);
  out += ",\"faults\":";
  append_int(out, state.faults);
  out += ",\"restarts\":";
  append_int(out, state.restarts);
  out += ",\"machine_failures\":";
  append_int(out, state.machine_failures);
  out += ",\"evictions\":";
  append_int(out, state.evictions);
  out += ",\"scheduler_invocations\":";
  append_int(out, state.scheduler_invocations);
  out += "}\n";
  return out;
}

bool state_from_json(std::string_view json, ReplayState& out,
                     std::string* error) {
  JsonValue root;
  if (!obs::parse_json(json, root, error)) return false;
  if (!root.is_object() || !root.at("type").is_string() ||
      root.at("type").string != "replay_state") {
    if (error != nullptr) *error = "not a replay_state snapshot";
    return false;
  }
  ReplayState state;
  if (!read_int(root, "runs", state.runs, error)) return false;
  if (!read_int(root, "records", state.records, error)) return false;
  if (!read_int(root, "round", state.round, error)) return false;
  if (!root.at("sim_time").is_number()) {
    if (error != nullptr) *error = "snapshot missing number \"sim_time\"";
    return false;
  }
  state.sim_time = root.at("sim_time").number;
  state.run_complete = root.at("run_complete").boolean;
  if (!read_int(root, "machines", state.machines, error)) return false;
  if (!read_int(root, "gpus", state.total_gpus, error)) return false;
  if (!read_int_set(root, "arrived", state.arrived, error)) return false;
  if (!read_int_set(root, "running", state.running, error)) return false;
  if (!read_int_set(root, "finished", state.finished, error)) return false;
  if (!read_int(root, "placement_round", state.placement_round, error)) {
    return false;
  }
  const JsonValue& groups = root.at("groups");
  if (!groups.is_array()) {
    if (error != nullptr) *error = "snapshot missing array \"groups\"";
    return false;
  }
  for (const JsonValue& g : groups.array) {
    ReplayGroup group;
    if (!g.is_object() || !int_array(g.at("jobs"), group.jobs) ||
        !int_array(g.at("machines"), group.machines) ||
        !g.at("gpus").is_number() || !g.at("owner").is_number()) {
      if (error != nullptr) *error = "malformed snapshot group";
      return false;
    }
    group.gpus = as_int(g.at("gpus"));
    group.owner = as_int(g.at("owner"));
    if (g.at("mode").is_string()) group.mode = g.at("mode").string;
    state.groups.push_back(std::move(group));
  }
  if (!read_int_set(root, "machines_down", state.machines_down, error)) {
    return false;
  }
  const JsonValue& jcts = root.at("jcts");
  if (!jcts.is_array()) {
    if (error != nullptr) *error = "snapshot missing array \"jcts\"";
    return false;
  }
  for (const JsonValue& v : jcts.array) {
    if (!v.is_number()) {
      if (error != nullptr) *error = "non-numeric jct in snapshot";
      return false;
    }
    state.jcts.push_back(v.number);
  }
  if (!root.at("makespan").is_number()) {
    if (error != nullptr) *error = "snapshot missing number \"makespan\"";
    return false;
  }
  state.makespan = root.at("makespan").number;
  if (!read_int(root, "finished_jobs", state.finished_jobs, error) ||
      !read_int(root, "unfinished_jobs", state.unfinished_jobs, error) ||
      !read_int(root, "faults", state.faults, error) ||
      !read_int(root, "restarts", state.restarts, error) ||
      !read_int(root, "machine_failures", state.machine_failures, error) ||
      !read_int(root, "evictions", state.evictions, error) ||
      !read_int(root, "scheduler_invocations", state.scheduler_invocations,
                error)) {
    return false;
  }
  out = std::move(state);
  return true;
}

std::string state_text(const ReplayState& state) {
  std::string out = "replay state after " + std::to_string(state.records) +
                    " records (round " + std::to_string(state.round) + ", t=";
  obs::append_json_double(out, state.sim_time);
  out += ")\n";
  out += "  runs: " + std::to_string(state.runs) +
         (state.run_complete ? " (last complete)" : " (last in flight)") +
         "\n";
  out += "  cluster: " + std::to_string(state.machines) + " machines, " +
         std::to_string(state.total_gpus) + " GPUs";
  if (!state.machines_down.empty()) {
    out += "; down:";
    for (const std::int64_t m : state.machines_down) {
      out += ' ' + std::to_string(m);
    }
  }
  out += '\n';
  const std::vector<std::int64_t> queued = state.queued();
  out += "  jobs: " + std::to_string(state.arrived.size()) + " arrived, " +
         std::to_string(queued.size()) + " queued, " +
         std::to_string(state.running.size()) + " running, " +
         std::to_string(state.finished.size()) + " finished\n";
  out += "  groups (placement round " +
         std::to_string(state.placement_round) + "):\n";
  for (const ReplayGroup& g : state.groups) {
    out += "    owner " + std::to_string(g.owner) + ": jobs";
    for (const std::int64_t j : g.jobs) out += ' ' + std::to_string(j);
    out += " | " + std::to_string(g.gpus) + " GPUs, " +
           (g.mode.empty() ? std::string("?") : g.mode) + ", machines";
    for (const std::int64_t m : g.machines) out += ' ' + std::to_string(m);
    out += '\n';
  }
  if (state.groups.empty()) out += "    (none)\n";
  out += "  counters: " + std::to_string(state.scheduler_invocations) +
         " rounds, " + std::to_string(state.restarts) + " restarts, " +
         std::to_string(state.faults) + " faults, " +
         std::to_string(state.evictions) + " evictions, " +
         std::to_string(state.machine_failures) + " machine failures\n";
  if (state.run_complete) {
    out += "  result: makespan ";
    obs::append_json_double(out, state.makespan);
    out += ", avg JCT ";
    obs::append_json_double(out, state.avg_jct());
    out += ", " + std::to_string(state.finished_jobs) + " finished, " +
           std::to_string(state.unfinished_jobs) + " unfinished\n";
  }
  return out;
}

bool ReplayEngine::load_snapshot(std::string_view snapshot_json,
                                 std::string* error) {
  return state_from_json(snapshot_json, state_, error);
}

bool ReplayEngine::apply_line(std::string_view line, std::string* error) {
  obs::JsonValue rec;
  if (!obs::parse_json(line, rec, error)) return false;
  return apply_record(state_, rec, error);
}

bool ReplayEngine::replay(std::string_view jsonl, std::string* error,
                          std::string* tail_warning) {
  std::vector<obs::DecisionRecord> records;
  if (!obs::parse_decision_log(jsonl, records, error, tail_warning)) {
    return false;
  }
  for (const obs::DecisionRecord& rec : records) {
    if (!apply_record(state_, rec.value, error)) return false;
  }
  return true;
}

}  // namespace muri::recovery
