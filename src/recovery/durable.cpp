#include "recovery/durable.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace muri::recovery {

namespace {

// Full write() loop; short writes are legal on regular files under
// signals, and a half-written frame must never be mistaken for success.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

std::int64_t env_int64(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  return std::strtoll(v, nullptr, 10);
}

}  // namespace

DurableSink::DurableSink(std::string path, DurableSinkOptions options)
    : path_(std::move(path)), options_(options) {
  if (options_.honor_crash_env) {
    crash_at_ = env_int64("MURI_CRASH_AT");
    crash_torn_ = env_int64("MURI_CRASH_TORN") != 0;
  }
  if (options_.resume) {
    WalReadResult decoded;
    std::string io_error;
    if (read_wal_file(path_, decoded, &io_error)) {
      if (decoded.torn && !truncate_wal_file(path_, &error_)) {
        ok_ = false;
        return;
      }
      for (std::size_t i = 0; i < decoded.frames.size(); ++i) {
        const WalFrame& frame = decoded.frames[i];
        if (frame.kind == FrameKind::kSnapshot) {
          if (i == 0) {
            // A head snapshot means the file was compacted: it covers
            // ordinals 1..records, which no longer exist as frames.
            ReplayState head;
            if (!state_from_json(frame.payload, head, &error_)) {
              ok_ = false;
              return;
            }
            head_covered_ = head.records;
          }
          continue;  // cadence snapshots carry no new ordinals
        }
        expected_.push_back(frame.payload);
      }
      const std::int64_t on_disk =
          head_covered_ + static_cast<std::int64_t>(expected_.size());
      // A crash can cut the file between a record and the cadence
      // snapshot due right after it; note the gap so the resumed run
      // restores the snapshot at the same file position.
      if (options_.snapshot_every_records > 0 && !decoded.frames.empty() &&
          decoded.frames.back().kind == FrameKind::kRecord &&
          on_disk % options_.snapshot_every_records == 0) {
        missing_snapshot_at_ = on_disk;
      }
    }
    // A missing file is a legal resume (nothing was durable yet).
  } else if (options_.append_resume) {
    WalReadResult decoded;
    std::string io_error;
    if (read_wal_file(path_, decoded, &io_error)) {
      if (decoded.torn && !truncate_wal_file(path_, &error_)) {
        ok_ = false;
        return;
      }
      RecoverResult recovered;
      if (!recover_wal(path_, recovered, &error_)) {
        ok_ = false;
        return;
      }
      // Ordinals continue after the durable prefix; no byte-verification
      // window, so every new record lands in the append branch.
      ordinal_ = recovered.records_on_disk;
      if (options_.snapshot_every_records > 0) fold_ = recovered.state;
    }
    // A missing file is a legal first start.
  }
  const int flags = options_.resume || options_.append_resume
                        ? (O_WRONLY | O_CREAT | O_APPEND)
                        : (O_WRONLY | O_CREAT | O_TRUNC);
  fd_ = ::open(path_.c_str(), flags, 0644);
  if (fd_ < 0) {
    ok_ = false;
    error_ = "cannot open " + path_ + ": " + std::strerror(errno);
  }
}

DurableSink::~DurableSink() { close(); }

void DurableSink::append_frame(FrameKind kind, std::string_view payload) {
  std::string bytes;
  bytes.reserve(kWalHeaderSize + payload.size());
  append_wal_frame(bytes, kind, payload);
  const auto t0 = std::chrono::steady_clock::now();
  if (!write_all(fd_, bytes.data(), bytes.size())) {
    ok_ = false;
    error_ = "write to " + path_ + " failed: " + std::strerror(errno);
  }
  io_.append_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  io_.appended_bytes += static_cast<std::int64_t>(bytes.size());
}

void DurableSink::maybe_fsync() {
  switch (options_.fsync) {
    case DurableSinkOptions::Fsync::kEveryRecord:
      sync();
      break;
    case DurableSinkOptions::Fsync::kInterval:
      if (unsynced_ >= options_.fsync_interval_records) sync();
      break;
    case DurableSinkOptions::Fsync::kNone:
      break;
  }
}

void DurableSink::crash_now(std::string_view next_payload) {
  // Simulate a crash mid-append: half the frame reaches the file, then
  // the process dies. write() survives _Exit, fsync is irrelevant to
  // process death (only machine death), so the torn tail is durable.
  std::string bytes;
  append_wal_frame(bytes, FrameKind::kRecord, next_payload);
  const std::size_t cut = kWalHeaderSize + next_payload.size() / 2;
  write_all(fd_, bytes.data(), std::min(cut, bytes.size()));
  std::_Exit(137);
}

void DurableSink::on_record(std::string_view line) {
  ++ordinal_;
  if (options_.stop_after_records >= 0 &&
      ordinal_ > options_.stop_after_records) {
    return;  // simulated dead process: the boundary was never reached
  }
  if (!ok_ || fd_ < 0) return;

  if (options_.snapshot_every_records > 0) {
    obs::JsonValue rec;
    std::string fold_error;
    if (!obs::parse_json(line, rec, &fold_error) ||
        !apply_record(fold_, rec, &fold_error)) {
      ok_ = false;
      error_ = "record " + std::to_string(ordinal_) +
               " unfoldable: " + fold_error;
      return;
    }
  }
  const bool snapshot_due =
      options_.snapshot_every_records > 0 &&
      ordinal_ % options_.snapshot_every_records == 0;

  if (ordinal_ <= head_covered_) {
    // Compacted away; the snapshot at the head vouches for it.
  } else if (ordinal_ - head_covered_ <=
             static_cast<std::int64_t>(expected_.size())) {
    // Already durable: byte-verify the regenerated record against the
    // disk. Divergence means this run is not the one the WAL came from —
    // stop before corrupting it.
    const std::string& want =
        expected_[static_cast<std::size_t>(ordinal_ - head_covered_ - 1)];
    if (line != want) {
      ok_ = false;
      diverged_ = true;
      error_ = "resume divergence at record " + std::to_string(ordinal_) +
               ": regenerated bytes differ from WAL";
      return;
    }
    ++verified_;
    if (snapshot_due && ordinal_ == missing_snapshot_at_) {
      append_frame(FrameKind::kSnapshot, state_json(fold_));
      ++unsynced_;
      maybe_fsync();
      missing_snapshot_at_ = 0;
    }
  } else {
    if (crash_at_ == ordinal_ && crash_torn_) crash_now(line);
    append_frame(FrameKind::kRecord, line);
    if (snapshot_due) append_frame(FrameKind::kSnapshot, state_json(fold_));
    ++appended_;
    ++unsynced_;
    maybe_fsync();
    if (crash_at_ == ordinal_) std::_Exit(137);
  }
  if (options_.boundary_hook) options_.boundary_hook(ordinal_);
}

bool DurableSink::sync() {
  if (fd_ < 0) return ok_;
  const auto t0 = std::chrono::steady_clock::now();
  if (::fsync(fd_) != 0) {
    ok_ = false;
    error_ = "fsync of " + path_ + " failed: " + std::strerror(errno);
  }
  const double cost =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ++io_.fsyncs;
  io_.fsync_seconds += cost;
  io_.last_fsync_seconds = cost;
  if (cost > io_.max_fsync_seconds) io_.max_fsync_seconds = cost;
  unsynced_ = 0;
  return ok_;
}

void DurableSink::close() {
  if (fd_ < 0) return;
  sync();
  ::close(fd_);
  fd_ = -1;
}

bool recover_wal(const std::string& path, RecoverResult& out,
                 std::string* error) {
  out = RecoverResult{};
  WalReadResult decoded;
  if (!read_wal_file(path, decoded, error)) return false;
  out.torn = decoded.torn;
  out.torn_reason = decoded.torn_reason;
  out.valid_bytes = decoded.valid_bytes;

  std::ptrdiff_t last_snapshot = -1;
  std::int64_t head_covered = 0;
  for (std::size_t i = 0; i < decoded.frames.size(); ++i) {
    if (decoded.frames[i].kind == FrameKind::kSnapshot) {
      last_snapshot = static_cast<std::ptrdiff_t>(i);
      ++out.snapshot_frames;
    }
  }
  if (!decoded.frames.empty() &&
      decoded.frames[0].kind == FrameKind::kSnapshot) {
    ReplayState head;
    if (!state_from_json(decoded.frames[0].payload, head, error)) {
      return false;
    }
    head_covered = head.records;
  }

  ReplayEngine engine;
  if (last_snapshot >= 0) {
    if (!engine.load_snapshot(
            decoded.frames[static_cast<std::size_t>(last_snapshot)].payload,
            error)) {
      return false;
    }
    out.used_snapshot = true;
  }
  std::int64_t record_frames = 0;
  for (std::size_t i = 0; i < decoded.frames.size(); ++i) {
    if (decoded.frames[i].kind != FrameKind::kRecord) continue;
    ++record_frames;
    if (static_cast<std::ptrdiff_t>(i) < last_snapshot) continue;
    if (!engine.apply_line(decoded.frames[i].payload, error)) {
      if (error != nullptr) {
        *error = "record frame " + std::to_string(i) + ": " + *error;
      }
      return false;
    }
    ++out.replayed_records;
  }
  out.state = engine.state();
  out.records_on_disk = head_covered + record_frames;
  return true;
}

bool compact_wal(const std::string& path, std::string* error) {
  WalReadResult decoded;
  if (!read_wal_file(path, decoded, error)) return false;

  std::ptrdiff_t last_snapshot = -1;
  for (std::size_t i = 0; i < decoded.frames.size(); ++i) {
    if (decoded.frames[i].kind == FrameKind::kSnapshot) {
      last_snapshot = static_cast<std::ptrdiff_t>(i);
    }
  }

  std::string bytes;
  if (last_snapshot >= 0) {
    // Keep the newest snapshot and the record suffix after it; drop the
    // replayed prefix and the older snapshots it subsumes.
    append_wal_frame(
        bytes, FrameKind::kSnapshot,
        decoded.frames[static_cast<std::size_t>(last_snapshot)].payload);
    for (std::size_t i = static_cast<std::size_t>(last_snapshot) + 1;
         i < decoded.frames.size(); ++i) {
      if (decoded.frames[i].kind == FrameKind::kRecord) {
        append_wal_frame(bytes, FrameKind::kRecord,
                         decoded.frames[i].payload);
      }
    }
  } else {
    // No snapshot to anchor on: fold everything into one. Account for a
    // compacted head that recover_wal would have credited (cannot happen
    // here — a compacted file starts with a snapshot — but fold from
    // scratch keeps the invariant obvious).
    ReplayEngine engine;
    for (const WalFrame& frame : decoded.frames) {
      if (frame.kind != FrameKind::kRecord) continue;
      if (!engine.apply_line(frame.payload, error)) return false;
    }
    append_wal_frame(bytes, FrameKind::kSnapshot,
                     state_json(engine.state()));
  }

  std::ofstream outf(path, std::ios::binary | std::ios::trunc);
  if (!outf) {
    if (error != nullptr) *error = "cannot rewrite " + path;
    return false;
  }
  outf.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  outf.close();
  if (!outf) {
    if (error != nullptr) *error = "short write rewriting " + path;
    return false;
  }
  return true;
}

}  // namespace muri::recovery
