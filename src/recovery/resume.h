// Crash-safe simulation driver: recover a WAL, then re-execute the run
// deterministically with the DurableSink re-attached, converging to the
// byte-identical WAL and bit-identical SimResult of an uninterrupted
// run (DESIGN.md "Durability and recovery").
//
// The simulator is a deterministic state machine over (trace, scheduler,
// options, seeds); the WAL is its authoritative decision history. After
// a crash we therefore do not try to warp the simulator into the
// recovered state — we replay the state machine from the start and let
// the sink skip/verify the prefix that is already durable. Recovery cost
// is re-execution time (simulated time is free); durability cost is the
// fsync policy. The recovered ReplayState is still computed first and
// returned, because that — not the re-execution — is what a live daemon
// would serve from while catching up.
#pragma once

#include <string>

#include "recovery/durable.h"
#include "sim/simulator.h"

namespace muri::recovery {

struct ResumeOptions {
  // WAL path to recover and continue appending to.
  std::string wal_path;
  // Sink configuration; must match the crashed run's cadence for the
  // resumed file to converge byte-for-byte (a different snapshot cadence
  // still recovers, but the file layouts differ).
  DurableSinkOptions sink;
};

struct ResumeReport {
  // State reconstructed from the WAL before re-execution (last snapshot
  // + suffix replay).
  ReplayState recovered;
  std::int64_t records_on_disk = 0;
  bool used_snapshot = false;
  std::int64_t suffix_replayed = 0;
  bool torn_tail = false;
  std::string torn_reason;
  // Re-execution accounting from the sink.
  std::int64_t records_verified = 0;
  std::int64_t records_appended = 0;
  bool diverged = false;
};

// Recovers `options.wal_path` (tolerating and truncating a torn tail),
// re-runs the simulation with the DurableSink resumed onto the WAL, and
// returns the final SimResult. False with `error` on I/O failure,
// undecodable WAL contents, or divergence (the regenerated records do
// not match the durable prefix — wrong trace/seed/options for this WAL).
// A missing WAL file is a cold start: the run simply executes durably.
//
// `options.sim.decisions` is overridden with the recovery-owned log;
// `scheduler` must be a fresh instance (schedulers carry state across
// rounds).
bool resume_simulation(const Trace& trace, Scheduler& scheduler,
                       const SimOptions& sim_options,
                       const ResumeOptions& options, SimResult& result,
                       ResumeReport& report, std::string* error = nullptr);

}  // namespace muri::recovery
