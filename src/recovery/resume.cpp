#include "recovery/resume.h"

#include <fstream>

namespace muri::recovery {

bool resume_simulation(const Trace& trace, Scheduler& scheduler,
                       const SimOptions& sim_options,
                       const ResumeOptions& options, SimResult& result,
                       ResumeReport& report, std::string* error) {
  report = ResumeReport{};

  // Phase 1: reconstruct state from the durable prefix — what a daemon
  // would serve from while catching up. A missing file is a cold start.
  const bool have_wal = std::ifstream(options.wal_path).good();
  if (have_wal) {
    RecoverResult recovered;
    if (!recover_wal(options.wal_path, recovered, error)) return false;
    if (recovered.torn && !truncate_wal_file(options.wal_path, error)) {
      return false;
    }
    report.recovered = recovered.state;
    report.records_on_disk = recovered.records_on_disk;
    report.used_snapshot = recovered.used_snapshot;
    report.suffix_replayed = recovered.replayed_records;
    report.torn_tail = recovered.torn;
    report.torn_reason = recovered.torn_reason;
  }

  // Phase 2: deterministic re-execution with the sink resumed onto the
  // WAL. The durable prefix is byte-verified as it is regenerated; new
  // records append past the old tail.
  DurableSinkOptions sink_options = options.sink;
  sink_options.resume = true;
  DurableSink sink(options.wal_path, sink_options);
  if (!sink.ok()) {
    if (error != nullptr) *error = sink.error();
    return false;
  }

  obs::DecisionLog log;
  log.set_sink(&sink);
  SimOptions sim = sim_options;
  sim.decisions = &log;
  scheduler.set_decision_log(&log);
  result = run_simulation(trace, scheduler, sim);
  log.set_sink(nullptr);
  sink.close();

  report.records_verified = sink.records_verified();
  report.records_appended = sink.records_appended();
  report.diverged = sink.diverged();
  if (!sink.ok()) {
    if (error != nullptr) *error = sink.error();
    return false;
  }
  return true;
}

}  // namespace muri::recovery
