#include "recovery/wal.h"

#include <cstdio>
#include <cstring>
#include <fstream>

namespace muri::recovery {

namespace {

// Table-driven CRC-32; the table is built once, on first use.
const std::uint32_t* crc_table() {
  static const auto* table = [] {
    auto* t = new std::uint32_t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_u32le(std::string& out, std::uint32_t v) {
  out += static_cast<char>(v & 0xFF);
  out += static_cast<char>((v >> 8) & 0xFF);
  out += static_cast<char>((v >> 16) & 0xFF);
  out += static_cast<char>((v >> 24) & 0xFF);
}

std::uint32_t get_u32le(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

}  // namespace

std::uint32_t crc32_ieee(const void* data, std::size_t size,
                         std::uint32_t seed) {
  const std::uint32_t* table = crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void append_wal_frame(std::string& out, FrameKind kind,
                      std::string_view payload) {
  out.append(kWalMagic, sizeof(kWalMagic));
  out += static_cast<char>(kind);
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  put_u32le(out, crc32_ieee(payload.data(), payload.size()));
  out.append(payload.data(), payload.size());
}

bool looks_like_wal(std::string_view bytes) {
  return bytes.size() >= sizeof(kWalMagic) &&
         std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) == 0;
}

WalReadResult decode_wal(std::string_view bytes) {
  WalReadResult result;
  std::size_t pos = 0;
  const auto stop = [&](const std::string& why) {
    result.torn = true;
    result.torn_reason = why + " at byte offset " + std::to_string(pos);
  };
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kWalHeaderSize) {
      stop("incomplete frame header");
      break;
    }
    if (std::memcmp(bytes.data() + pos, kWalMagic, sizeof(kWalMagic)) != 0) {
      stop("bad frame magic");
      break;
    }
    const auto kind_byte =
        static_cast<unsigned char>(bytes[pos + sizeof(kWalMagic)]);
    if (kind_byte != static_cast<unsigned char>(FrameKind::kRecord) &&
        kind_byte != static_cast<unsigned char>(FrameKind::kSnapshot)) {
      stop("unknown frame kind " + std::to_string(kind_byte));
      break;
    }
    const std::uint32_t len = get_u32le(bytes.data() + pos + 5);
    const std::uint32_t crc = get_u32le(bytes.data() + pos + 9);
    if (bytes.size() - pos - kWalHeaderSize < len) {
      stop("incomplete frame payload (" + std::to_string(len) + " bytes)");
      break;
    }
    const std::string_view payload =
        bytes.substr(pos + kWalHeaderSize, len);
    if (crc32_ieee(payload.data(), payload.size()) != crc) {
      stop("checksum mismatch");
      break;
    }
    WalFrame frame;
    frame.kind = static_cast<FrameKind>(kind_byte);
    frame.payload.assign(payload);
    result.frames.push_back(std::move(frame));
    pos += kWalHeaderSize + len;
  }
  result.valid_bytes = pos;
  return result;
}

bool read_wal_file(const std::string& path, WalReadResult& out,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  out = decode_wal(bytes);
  return true;
}

bool truncate_wal_file(const std::string& path, std::string* error) {
  WalReadResult decoded;
  if (!read_wal_file(path, decoded, error)) return false;
  if (!decoded.torn) return true;
  // Rewrite the valid prefix; frame-at-a-time re-encoding yields exactly
  // the first valid_bytes of the original file.
  std::string bytes;
  for (const WalFrame& frame : decoded.frames) {
    append_wal_frame(bytes, frame.kind, frame.payload);
  }
  std::ofstream outf(path, std::ios::binary | std::ios::trunc);
  if (!outf) {
    if (error != nullptr) *error = "cannot rewrite " + path;
    return false;
  }
  outf.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  outf.close();
  if (!outf) {
    if (error != nullptr) *error = "short write rewriting " + path;
    return false;
  }
  return true;
}

}  // namespace muri::recovery
