// Write-ahead-log framing for the durable DecisionLog (DESIGN.md
// "Durability and recovery").
//
// A WAL file is a sequence of self-checking frames:
//
//   offset 0:  'M' 'W' 'A' 'L'      magic (4 bytes)
//   offset 4:  kind                 u8: 1 = record, 2 = snapshot
//   offset 5:  payload length       u32 little-endian
//   offset 9:  CRC-32 (IEEE)        u32 little-endian, over the payload
//   offset 13: payload              `length` bytes
//
// Record payloads are single DecisionLog JSONL lines (no trailing
// newline); snapshot payloads are ReplayState JSON (replay.h). The
// format is append-only and self-delimiting: a reader scans frames until
// the first one that is incomplete or fails its checksum — the signature
// of an append cut short by a crash — and reports the byte offset where
// the valid prefix ends, so recovery can truncate the torn tail and
// resume appending from a clean boundary.
//
// A file whose *first* frame is a snapshot has been compacted: the
// records the snapshot summarizes were dropped, and the first record
// frame after it carries ordinal snapshot.records + 1.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace muri::recovery {

// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum gzip and
// Ethernet use. `seed` chains incremental computations.
std::uint32_t crc32_ieee(const void* data, std::size_t size,
                         std::uint32_t seed = 0);

enum class FrameKind : std::uint8_t { kRecord = 1, kSnapshot = 2 };

inline constexpr std::size_t kWalHeaderSize = 13;
inline constexpr char kWalMagic[4] = {'M', 'W', 'A', 'L'};

struct WalFrame {
  FrameKind kind = FrameKind::kRecord;
  std::string payload;
};

// Serializes one frame onto `out`.
void append_wal_frame(std::string& out, FrameKind kind,
                      std::string_view payload);

struct WalReadResult {
  std::vector<WalFrame> frames;
  // Byte offset where the valid frame prefix ends (== bytes.size() for a
  // clean file).
  std::size_t valid_bytes = 0;
  // True when trailing bytes past valid_bytes had to be ignored.
  bool torn = false;
  std::string torn_reason;  // empty unless torn
};

// Decodes the longest valid frame prefix of `bytes`. Never fails: a torn
// or corrupt tail just stops the scan and is reported in the result.
WalReadResult decode_wal(std::string_view bytes);

// True when `bytes` opens with the WAL magic (muri-report uses this to
// tell a WAL from a plain JSONL dump).
bool looks_like_wal(std::string_view bytes);

// Reads and decodes `path`. False (with `error`) only on I/O failure;
// torn tails are reported through the result, not as errors.
bool read_wal_file(const std::string& path, WalReadResult& out,
                   std::string* error = nullptr);

// Truncates `path` to its valid frame prefix. No-op on a clean file.
// False (with `error`) on I/O failure.
bool truncate_wal_file(const std::string& path, std::string* error = nullptr);

}  // namespace muri::recovery
