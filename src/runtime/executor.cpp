#include "runtime/executor.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cassert>
#include <chrono>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"

namespace muri::runtime {

namespace {

using Clock = std::chrono::steady_clock;

// Stage-span names, indexed by Resource; trace events store the pointer,
// so they must be literals with static storage.
constexpr const char* kResourceNames[kNumResources] = {"storage", "cpu",
                                                       "gpu", "network"};

// Occupies the stage's resource for `seconds`. The resource token (mutex)
// models exclusivity; the thread itself sleeps for longer stages so that
// grouped jobs overlap even on a single-core host, and spins only for
// sub-2ms stages where sleep granularity would distort timing.
void work_for(double seconds) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  if (seconds > 2e-3) {
    std::this_thread::sleep_until(deadline);
    return;
  }
  while (Clock::now() < deadline) {
    // Spin; the stage is "in use".
  }
}

struct Resources {
  std::array<std::mutex, kNumResources> tokens;
};

}  // namespace

ExecResult run_group(const std::vector<ExecJobSpec>& jobs,
                     const ExecOptions& options) {
  assert(!jobs.empty());
  const auto p = jobs.size();

  Resources resources;
  std::atomic<bool> stop{false};

  // Completion step flips the stop flag once the window has elapsed, so
  // all members leave the phase loop together after a whole round.
  const Clock::time_point t_end =
      Clock::now() +
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(options.run_for));
  auto on_phase_complete = [&stop, t_end]() noexcept {
    if (Clock::now() >= t_end) stop.store(true, std::memory_order_relaxed);
  };
  std::barrier phase_barrier(static_cast<std::ptrdiff_t>(p),
                             on_phase_complete);

  std::vector<ExecJobResult> results(p);
  std::vector<std::thread> threads;
  threads.reserve(p);

  obs::Tracer* const tracer = options.tracer;
  const double run_epoch =
      tracer != nullptr ? static_cast<double>(tracer->begin_run_epoch()) : 0.0;
  if (options.decisions != nullptr) {
    std::vector<std::string> names;
    std::vector<int> offsets;
    names.reserve(p);
    offsets.reserve(p);
    for (const ExecJobSpec& j : jobs) {
      names.push_back(j.name);
      offsets.push_back(j.offset);
    }
    options.decisions->entry("exec_group")
        .strs("names", names)
        .integer("slots", static_cast<std::int64_t>(
                              options.slots.empty() ? kNumResources
                                                    : options.slots.size()))
        .ints("offsets", offsets)
        .str("mode", options.coordinate ? "coordinated" : "uncoordinated");
  }
  if (tracer != nullptr) {
    tracer->name_track(obs::kExecutorTrack, "executor");
    for (size_t i = 0; i < p; ++i) {
      tracer->name_lane(obs::kExecutorTrack, static_cast<int>(i),
                        jobs[i].name.empty() ? "job " + std::to_string(i)
                                             : jobs[i].name);
    }
  }

  // Live occupancy counters: each completed stage credits its nominal
  // duration, so a /metrics poll mid-window sees progress, not a final
  // dump. Handles are registry-owned and safe from the member threads.
  std::array<obs::Counter*, kNumResources> busy_counters{};
  if (options.metrics != nullptr) {
    for (int r = 0; r < kNumResources; ++r) {
      busy_counters[static_cast<size_t>(r)] = &options.metrics->counter(
          "muri_resource_busy_seconds",
          "Nominal busy wall-seconds per machine and resource",
          {{"machine", "executor"}, {"resource", kResourceNames[r]}});
    }
  }
  // Per-member nominal occupancy, merged after the join (no contention).
  std::vector<std::array<double, kNumResources>> member_busy(
      p, std::array<double, kNumResources>{});

  const Clock::time_point t_begin = Clock::now();

  for (size_t i = 0; i < p; ++i) {
    threads.emplace_back([&, i] {
      const ExecJobSpec& spec = jobs[i];
      ExecJobResult& out = results[i];
      out.name = spec.name;
      const int lane = static_cast<int>(i);
      const Clock::time_point t_start = Clock::now();
      // Injected fault: the wall-clock instant this thread dies.
      const Clock::time_point t_kill =
          spec.kill_after > 0
              ? t_start + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(spec.kill_after))
              : Clock::time_point::max();

      // Rotation axis: the planner's slots, or all four resources.
      std::vector<Resource> slots = options.slots;
      if (slots.empty()) {
        slots.assign(kAllResources.begin(), kAllResources.end());
      }
      const int s = static_cast<int>(slots.size());

      if (options.coordinate) {
        // Phase-locked rotation: in phase `ph`, use slot
        // (offset + ph) mod S; barrier after every phase (§4.1).
        bool dropped = false;
        while (!stop.load(std::memory_order_relaxed) && !dropped) {
          for (int ph = 0; ph < s; ++ph) {
            // A dying member leaves at a phase boundary: arrive-and-drop
            // shrinks the barrier so the survivors keep rotating with the
            // dead member's slot idle — no deadlock.
            if (Clock::now() >= t_kill) {
              out.completed = false;
              if (tracer != nullptr) {
                tracer->instant("killed", "fault", obs::kExecutorTrack, lane);
              }
              phase_barrier.arrive_and_drop();
              dropped = true;
              break;
            }
            const auto r = static_cast<int>(
                slots[static_cast<size_t>((spec.offset + ph) % s)]);
            const Duration t = spec.profile[static_cast<size_t>(r)];
            if (t > 0) {
              obs::ScopedSpan span(
                  tracer, kResourceNames[r], "stage", obs::kExecutorTrack,
                  lane,
                  obs::TraceArgs("resource", r, "phase", ph, "run",
                                 run_epoch));
              std::scoped_lock lock(
                  resources.tokens[static_cast<size_t>(r)]);
              work_for(t * options.time_scale);
              const double busy = t * options.time_scale;
              member_busy[i][static_cast<size_t>(r)] += busy;
              if (busy_counters[static_cast<size_t>(r)] != nullptr) {
                busy_counters[static_cast<size_t>(r)]->inc(busy);
              }
            }
            {
              obs::ScopedSpan span(tracer, "barrier", "sync",
                                   obs::kExecutorTrack, lane);
              phase_barrier.arrive_and_wait();
            }
          }
          if (!dropped) ++out.iterations;
        }
        if (!dropped) phase_barrier.arrive_and_drop();
      } else {
        // Free-running: natural stage order, contending on tokens.
        while (!stop.load(std::memory_order_relaxed)) {
          if (Clock::now() >= t_kill) {
            out.completed = false;
            if (tracer != nullptr) {
              tracer->instant("killed", "fault", obs::kExecutorTrack, lane);
            }
            break;
          }
          if (Clock::now() >= t_end) {
            stop.store(true, std::memory_order_relaxed);
            break;
          }
          for (int r = 0; r < kNumResources; ++r) {
            const Duration t = spec.profile[static_cast<size_t>(r)];
            if (t > 0) {
              // The span covers token wait + work: contention on the
              // shared resource shows up as stretched stages. The busy
              // credit is nominal work only — waiting occupies nothing.
              obs::ScopedSpan span(
                  tracer, kResourceNames[r], "stage", obs::kExecutorTrack,
                  lane, obs::TraceArgs("resource", r, "run", run_epoch));
              std::scoped_lock lock(
                  resources.tokens[static_cast<size_t>(r)]);
              work_for(t * options.time_scale);
              const double busy = t * options.time_scale;
              member_busy[i][static_cast<size_t>(r)] += busy;
              if (busy_counters[static_cast<size_t>(r)] != nullptr) {
                busy_counters[static_cast<size_t>(r)]->inc(busy);
              }
            }
          }
          ++out.iterations;
        }
      }

      out.wall_seconds =
          std::chrono::duration<double>(Clock::now() - t_start).count();
      if (out.wall_seconds > 0 && options.time_scale > 0) {
        // iterations per simulated second: simulated time elapsed is
        // wall_seconds / time_scale.
        out.sim_throughput = static_cast<double>(out.iterations) *
                             options.time_scale / out.wall_seconds;
      }
    });
  }
  for (auto& t : threads) t.join();

  ExecResult result;
  result.jobs = std::move(results);
  for (const ExecJobResult& j : result.jobs) {
    if (!j.completed) ++result.killed_jobs;
  }
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - t_begin).count();
  for (const auto& busy : member_busy) {
    for (int r = 0; r < kNumResources; ++r) {
      result.busy_seconds[static_cast<size_t>(r)] +=
          busy[static_cast<size_t>(r)];
    }
  }
  // Realized γ: mean busy fraction across the resources the group touches
  // (interleave/group_efficiency averaging). Clamped per resource — timer
  // slop can nudge nominal credit past the wall window.
  int used = 0;
  double fraction_sum = 0;
  for (int r = 0; r < kNumResources; ++r) {
    const double busy = result.busy_seconds[static_cast<size_t>(r)];
    if (busy <= 0) continue;
    ++used;
    if (result.wall_seconds > 0) {
      fraction_sum += std::min(busy / result.wall_seconds, 1.0);
    }
  }
  if (used > 0) result.gamma_realized = fraction_sum / used;
  if (options.metrics != nullptr && used > 0) {
    options.metrics
        ->summary("muri_group_gamma_realized",
                  "Realized interleaving efficiency per group window",
                  {{"machine", "executor"}})
        .observe(result.gamma_realized);
    if (options.gamma_predicted > 0) {
      options.metrics
          ->summary("muri_group_gamma_error",
                    "Realized minus predicted interleaving efficiency",
                    {{"machine", "executor"}})
          .observe(result.gamma_realized - options.gamma_predicted);
    }
  }
  if (options.decisions != nullptr) {
    std::vector<std::string> names;
    names.reserve(p);
    for (const ExecJobSpec& j : jobs) names.push_back(j.name);
    options.decisions->entry("exec_result")
        .strs("names", names)
        .num("gamma", result.gamma_realized)
        .integer("killed", result.killed_jobs);
  }
  return result;
}

ExecJobResult run_solo(const ExecJobSpec& job, const ExecOptions& options) {
  ExecOptions solo = options;
  solo.coordinate = false;  // no partners, so coordination is moot
  return run_group({job}, solo).jobs.front();
}

}  // namespace muri::runtime
