// Live interleaving executor — the Muri-executor substitute (§5).
//
// The paper's executor merges grouped PyTorch jobs into one process and
// interleaves their stages with synchronization barriers after overlapped
// stages (§4.1). We reproduce that runtime mechanism with real threads:
// each of the four resources is an exclusive token (mutex), a job is a
// thread that executes its stages by holding the token for the stage's
// (scaled) duration, and a group runs phase-locked through a std::barrier.
//
// Two modes mirror the two sharing regimes in the paper:
//  - coordinated:    Muri's rotation schedule — distinct offsets, a barrier
//                    after each phase, so resources never contend;
//  - uncoordinated:  every job free-runs its natural stage order and
//                    contends on the resource tokens (the §2.1 GPU-sharing
//                    pathology / AntMan-style packing).
//
// Stage "work" is a calibrated busy-wait: it burns the resource just like
// the real stage burns a device, and it keeps sub-millisecond durations
// accurate where sleep() cannot.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace muri::obs {
class DecisionLog;
class MetricsRegistry;
class Tracer;
}  // namespace muri::obs

namespace muri::runtime {

struct ExecJobSpec {
  std::string name;
  // Per-resource stage durations in simulated seconds.
  ResourceVector profile{};
  // Rotation offset in the coordinated schedule.
  int offset = 0;
  // Fault injection: kill this job's thread once it has run for this many
  // wall seconds (<= 0 disables). In coordinated mode the dying member
  // leaves through the barrier's arrive-and-drop path at the next phase
  // boundary, so the survivors keep rotating instead of deadlocking — the
  // runtime analogue of the simulator's degraded-group continuation.
  double kill_after = 0;
};

struct ExecOptions {
  // Wall seconds of work per simulated second of stage time.
  double time_scale = 0.01;
  // Wall-clock measurement window in seconds.
  double run_for = 1.0;
  // Coordinated (Muri) vs uncoordinated (free-for-all) execution.
  bool coordinate = true;
  // Rotation axis for the coordinated schedule (InterleavePlan::slots).
  // Empty means all four resources in canonical order.
  std::vector<Resource> slots;
  // Optional src/obs tracer (wall-clock domain). Each member thread
  // records its stage occupancy spans (named by resource, including token
  // wait in uncoordinated mode), barrier-wait spans, and kill instants on
  // the executor track — one lane per member. Stage spans carry the
  // resource index, phase, and a per-run_group epoch as args so the
  // analysis layer (obs/analysis) needs no name parsing. Null skips
  // everything.
  obs::Tracer* tracer = nullptr;
  // Optional metrics sink. Nominal per-resource occupancy is accumulated
  // into muri_resource_busy_seconds{machine="executor"} counters as stages
  // complete (live-pollable via obs::HttpExporter), and the group's
  // realized γ lands in the muri_group_gamma_realized summary at the end
  // of the window. Null skips everything.
  obs::MetricsRegistry* metrics = nullptr;
  // Schedule-time γ prediction for this group (interleave/efficiency).
  // When > 0 and metrics is set, realized − predicted is observed into
  // muri_group_gamma_error.
  double gamma_predicted = 0;
  // Optional decision-provenance sink: run_group records an exec_group
  // entry (members, mode, rotation offsets) when the window opens and an
  // exec_result entry (realized γ, kills) when it closes — the executor's
  // ground-truth answer to the scheduler's group records. Null skips both.
  obs::DecisionLog* decisions = nullptr;
};

struct ExecJobResult {
  std::string name;
  std::int64_t iterations = 0;
  double wall_seconds = 0;
  // Iterations per *simulated* second (wall rate divided by time_scale),
  // directly comparable with 1 / iteration_time.
  double sim_throughput = 0;
  // True if the job ran to the end of the measurement window; false if it
  // was killed by fault injection (its wall_seconds/throughput then cover
  // the window it survived).
  bool completed = true;
};

struct ExecResult {
  std::vector<ExecJobResult> jobs;
  // Number of members killed by fault injection.
  int killed_jobs = 0;
  // Nominal resource occupancy summed over members: each completed stage
  // credits profile[r] * time_scale wall seconds to its resource (token
  // wait excluded — waiting does not occupy the device).
  std::array<double, kNumResources> busy_seconds{};
  // Wall window actually covered (start of run_group to last thread out).
  double wall_seconds = 0;
  // Realized interleaving efficiency over the window: the mean of
  // min(busy_r / wall, 1) across the resources the group touches — the
  // same averaging as interleave/group_efficiency and the simulator's
  // realized-γ accounting, so it is directly comparable with a
  // schedule-time prediction.
  double gamma_realized = 0;
};

// Runs the group for options.run_for wall seconds and reports per-job
// throughput. Thread count equals jobs.size().
ExecResult run_group(const std::vector<ExecJobSpec>& jobs,
                     const ExecOptions& options);

// Convenience: runs a single job alone (its solo throughput baseline).
ExecJobResult run_solo(const ExecJobSpec& job, const ExecOptions& options);

}  // namespace muri::runtime
