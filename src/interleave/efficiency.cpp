#include "interleave/efficiency.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace muri {

void rotation_slots_into(const std::vector<ResourceVector>& profiles,
                         std::vector<Resource>& slots) {
  slots.clear();
  std::array<bool, kNumResources> active{};
  for (const ResourceVector& prof : profiles) {
    for (int j = 0; j < kNumResources; ++j) {
      if (prof[static_cast<size_t>(j)] > 0) active[static_cast<size_t>(j)] = true;
    }
  }
  for (int j = 0; j < kNumResources; ++j) {
    if (active[static_cast<size_t>(j)]) {
      slots.push_back(static_cast<Resource>(j));
    }
  }
  // Pad with unused resources so every member gets a distinct offset.
  for (int j = 0; j < kNumResources &&
                  slots.size() < std::max<size_t>(profiles.size(), 1);
       ++j) {
    if (!active[static_cast<size_t>(j)]) {
      slots.push_back(static_cast<Resource>(j));
    }
  }
  if (slots.empty()) slots.push_back(Resource::kStorage);
}

std::vector<Resource> rotation_slots(
    const std::vector<ResourceVector>& profiles) {
  std::vector<Resource> slots;
  rotation_slots_into(profiles, slots);
  return slots;
}

Duration group_period(const std::vector<ResourceVector>& profiles,
                      const std::vector<Resource>& slots,
                      const std::vector<int>& offsets) {
  assert(profiles.size() == offsets.size());
  assert(profiles.size() <= slots.size());
  const int p = static_cast<int>(profiles.size());
  const int s = static_cast<int>(slots.size());
  if (p == 0) return 0;

  Duration period = 0;
  for (int phase = 0; phase < s; ++phase) {
    Duration longest = 0;
    for (int i = 0; i < p; ++i) {
      const int pos = (offsets[static_cast<size_t>(i)] + phase) % s;
      const auto r = static_cast<size_t>(slots[static_cast<size_t>(pos)]);
      longest = std::max(longest, profiles[static_cast<size_t>(i)][r]);
    }
    period += longest;
  }
  return period;
}

Duration group_period(const std::vector<ResourceVector>& profiles,
                      const std::vector<int>& offsets) {
  return group_period(profiles, rotation_slots(profiles), offsets);
}

double group_efficiency(const std::vector<ResourceVector>& profiles,
                        Duration period) {
  if (period <= 0 || profiles.empty()) return 0;

  double idle_fraction_sum = 0;
  int active_resources = 0;
  for (int j = 0; j < kNumResources; ++j) {
    Duration busy = 0;
    for (const ResourceVector& prof : profiles) {
      busy += prof[static_cast<size_t>(j)];
    }
    if (busy <= 0) continue;  // resource unused by the whole group
    ++active_resources;
    // Distinct offsets guarantee busy <= period; clamp defensively for
    // merged pseudo-profiles where the invariant is approximate.
    busy = std::min(busy, period);
    idle_fraction_sum += (period - busy) / period;
  }
  if (active_resources == 0) return 0;
  return 1.0 - idle_fraction_sum / active_resources;
}

InterleavePlan plan_interleave(const std::vector<ResourceVector>& profiles,
                               OrderingPolicy policy) {
  InterleavePlan plan;
  const int p = static_cast<int>(profiles.size());
  if (p == 0) return plan;

  plan.slots = rotation_slots(profiles);
  const int s = static_cast<int>(plan.slots.size());

  if (p == 1) {
    plan.offsets = {0};
    plan.period = total(profiles[0]);
    plan.efficiency = group_efficiency(profiles, plan.period);
    return plan;
  }
  // More members than distinct slots cannot rotate without collision; the
  // scheduler never builds such groups (p ≤ k), but stay defensive.
  assert(p <= s);

  // Enumerate injective offset assignments with offsets[0] == 0. Permute
  // the remaining s-1 positions and take a prefix for members 1..p-1.
  std::vector<int> rest;
  for (int o = 1; o < s; ++o) rest.push_back(o);

  std::vector<int> offsets(static_cast<size_t>(p), 0);
  bool first = true;
  do {
    for (int i = 1; i < p; ++i) {
      offsets[static_cast<size_t>(i)] = rest[static_cast<size_t>(i - 1)];
    }
    const Duration period = group_period(profiles, plan.slots, offsets);
    const bool better = policy == OrderingPolicy::kBest
                            ? period < plan.period
                            : period > plan.period;
    if (first || better) {
      plan.offsets = offsets;
      plan.period = period;
      first = false;
    }
  } while (std::next_permutation(rest.begin(), rest.end()));

  plan.efficiency = group_efficiency(profiles, plan.period);
  return plan;
}

double interleave_efficiency(const std::vector<ResourceVector>& profiles,
                             PlanScratch& scratch, OrderingPolicy policy) {
  // Mirrors plan_interleave exactly — same slot derivation, the same
  // enumeration order over offset assignments, the same strict-improvement
  // comparison — so the returned γ is bit-identical to the allocating
  // path; only the InterleavePlan bookkeeping (best offsets) is dropped.
  const int p = static_cast<int>(profiles.size());
  if (p == 0) return 0;

  rotation_slots_into(profiles, scratch.slots);
  const int s = static_cast<int>(scratch.slots.size());

  if (p == 1) {
    return group_efficiency(profiles, total(profiles[0]));
  }
  assert(p <= s);

  scratch.rest.clear();
  for (int o = 1; o < s; ++o) scratch.rest.push_back(o);
  scratch.offsets.assign(static_cast<size_t>(p), 0);

  Duration chosen = 0;
  bool first = true;
  do {
    for (int i = 1; i < p; ++i) {
      scratch.offsets[static_cast<size_t>(i)] =
          scratch.rest[static_cast<size_t>(i - 1)];
    }
    const Duration period =
        group_period(profiles, scratch.slots, scratch.offsets);
    const bool better = policy == OrderingPolicy::kBest ? period < chosen
                                                        : period > chosen;
    if (first || better) {
      chosen = period;
      first = false;
    }
  } while (std::next_permutation(scratch.rest.begin(), scratch.rest.end()));

  return group_efficiency(profiles, chosen);
}

double pairwise_efficiency(const ResourceVector& a, const ResourceVector& b,
                           OrderingPolicy policy) {
  // Allocation-free fast path: this is the inner loop of the matching
  // graph construction (O(n²) edges per scheduling round).
  std::array<int, kNumResources> slot_resource;
  int s = 0;
  for (int j = 0; j < kNumResources; ++j) {
    if (a[static_cast<size_t>(j)] > 0 || b[static_cast<size_t>(j)] > 0) {
      slot_resource[static_cast<size_t>(s++)] = j;
    }
  }
  if (s < 2) {
    // One (or zero) active resources: both jobs serialize on it.
    if (s == 0) return 0;
    return 1.0;  // the single active resource is busy the whole period
  }

  Duration chosen = 0;
  bool first = true;
  for (int o = 1; o < s; ++o) {
    Duration period = 0;
    for (int phase = 0; phase < s; ++phase) {
      const auto ra = static_cast<size_t>(
          slot_resource[static_cast<size_t>(phase)]);
      const auto rb = static_cast<size_t>(
          slot_resource[static_cast<size_t>((o + phase) % s)]);
      period += std::max(a[ra], b[rb]);
    }
    const bool better =
        policy == OrderingPolicy::kBest ? period < chosen : period > chosen;
    if (first || better) {
      chosen = period;
      first = false;
    }
  }
  if (chosen <= 0) return 0;
  double idle_fraction_sum = 0;
  for (int slot = 0; slot < s; ++slot) {
    const auto r = static_cast<size_t>(slot_resource[static_cast<size_t>(slot)]);
    const Duration busy = std::min(a[r] + b[r], chosen);
    idle_fraction_sum += (chosen - busy) / chosen;
  }
  return 1.0 - idle_fraction_sum / s;
}

ResourceVector merge_profiles(const std::vector<ResourceVector>& profiles) {
  ResourceVector merged{};
  for (const ResourceVector& prof : profiles) {
    for (int j = 0; j < kNumResources; ++j) {
      merged[static_cast<size_t>(j)] += prof[static_cast<size_t>(j)];
    }
  }
  return merged;
}

}  // namespace muri
