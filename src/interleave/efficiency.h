// Interleaving-efficiency model — the analytical core of Muri (§4).
//
// A group of p jobs runs in a rotating schedule over a list of rotation
// *slots*. The slots are the resources actively used by the group (in
// canonical resource order), padded with unused resources if the group has
// more members than active resources. Member i is assigned a distinct
// offset o_i; in phase j of each period it runs its stage on slot
// (o_i + j) mod S. The phase length is the longest stage any member runs
// in that phase, so the period is
//
//     T = Σ_{j=0}^{S-1} max_i t_i^{slot[(o_i + j) mod S]}     (Eq. 3)
//
// and the interleaving efficiency is the average non-idle fraction over
// the active resources
//
//     γ = 1 - (1/k') Σ_{j active} (T - Σ_i t_i^j) / T         (Eq. 4)
//
// which reduces exactly to Eq. 1/2 for two jobs over two resource types
// (the Figure 4 worked examples). Different offset assignments
// ("orderings", Fig. 6) yield different T; Muri enumerates them (S ≤ 4)
// and takes the best — or the worst, for the Fig. 11 ablation.
#pragma once

#include <vector>

#include "common/types.h"

namespace muri {

// A concrete interleaving of a group of jobs.
struct InterleavePlan {
  // Rotation axis: distinct resources, actives first in canonical order.
  std::vector<Resource> slots;
  // offsets[i] is the rotation offset of member i into `slots`; offsets
  // are distinct and offsets[0] == 0 (a common rotation shifts phases
  // only).
  std::vector<int> offsets;
  // Period T of one interleaved round (Eq. 3).
  Duration period = 0;
  // Interleaving efficiency γ (Eq. 4) in [0, 1].
  double efficiency = 0;
};

// Which offset assignment to pick among all enumerated orderings.
enum class OrderingPolicy {
  kBest,   // minimize T (the Muri default)
  kWorst,  // maximize T (the Fig. 11 ablation)
};

// Derives the rotation axis for a group: every resource used by at least
// one member (canonical order), padded with unused resources until there
// are at least profiles.size() slots (capped at kNumResources).
std::vector<Resource> rotation_slots(
    const std::vector<ResourceVector>& profiles);

// Allocation-free variant: clears and refills `slots` in place.
void rotation_slots_into(const std::vector<ResourceVector>& profiles,
                         std::vector<Resource>& slots);

// Reusable buffers for the allocation-free planning path. One instance per
// thread (or per call site); vectors grow to a high-water mark and are
// reused across evaluations — the scheduling round's edge loop evaluates
// O(n²) candidate groups per round and must not allocate per edge.
struct PlanScratch {
  std::vector<Resource> slots;
  std::vector<int> rest;
  std::vector<int> offsets;
};

// Best- (or worst-) ordering efficiency γ of interleaving `profiles`,
// bit-identical to plan_interleave(profiles, policy).efficiency but
// without building an InterleavePlan or allocating (scratch reused). This
// is the matching-graph edge-weight evaluator for merged super-nodes.
double interleave_efficiency(const std::vector<ResourceVector>& profiles,
                             PlanScratch& scratch,
                             OrderingPolicy policy = OrderingPolicy::kBest);

// Period of one interleaved round (Eq. 3) for explicit slots + offsets.
// Preconditions: slots distinct; offsets distinct, in [0, slots.size());
// offsets.size() == profiles.size() <= slots.size().
Duration group_period(const std::vector<ResourceVector>& profiles,
                      const std::vector<Resource>& slots,
                      const std::vector<int>& offsets);

// Convenience overload deriving the slots via rotation_slots().
Duration group_period(const std::vector<ResourceVector>& profiles,
                      const std::vector<int>& offsets);

// Efficiency γ for a group running with period T (Eq. 4); averages the
// idle fraction over resources used by at least one member.
double group_efficiency(const std::vector<ResourceVector>& profiles,
                        Duration period);

// Enumerates all distinct-offset assignments (member 0 pinned to offset 0)
// over the derived slots and returns the plan selected by `policy`. For
// the empty group returns a zero plan; for a single member returns its
// solo period.
InterleavePlan plan_interleave(const std::vector<ResourceVector>& profiles,
                               OrderingPolicy policy = OrderingPolicy::kBest);

// Convenience: best-ordering efficiency of grouping exactly two jobs —
// the edge weight of the matching graph (§4.1).
double pairwise_efficiency(const ResourceVector& a, const ResourceVector& b,
                           OrderingPolicy policy = OrderingPolicy::kBest);

// Profile of a merged super-node for the multi-round algorithm
// (Algorithm 1, line 17): the group is represented downstream as a single
// pseudo-job whose per-resource usage is the summed busy time of its
// members. Phases of the merged schedule are not tracked; the next round
// re-plans orderings over merged profiles.
ResourceVector merge_profiles(const std::vector<ResourceVector>& profiles);

}  // namespace muri
