// Matching-round capture hook — the raw material of decision provenance.
//
// The multi-round grouping (Algorithm 1) makes its choices inside the
// matching layer: which candidate pairs were offered to Blossom at what γ
// edge weight, which were matched and merged into super-nodes, and which
// survived a round unmatched. A `GroupingCapture` passed down from the
// scheduler records exactly that, one `MatchingRoundRecord` per Blossom
// round, so the provenance log (src/obs/provenance) can later answer "why
// did job J end up grouped with K and not L".
//
// Capture is plan-neutral by construction: records are copied out of the
// already-built matching graph and matching result after the fact, never
// consulted by the algorithm, so a null capture pointer and a populated
// one yield bit-identical groupings. Node member lists and edges are
// indices local to the captured instance (the caller maps them to job
// ids); edges are stored with u < v in row-major order, which makes the
// capture a pure function of the (deterministic) graph contents.
#pragma once

#include <cstdint>
#include <vector>

namespace muri {

// One Blossom round of one multi_round_grouping call.
struct MatchingRoundRecord {
  // A candidate edge offered to the matcher: nodes[u] ∪ nodes[v] with the
  // interleaving-efficiency weight γ(u ∪ v) > 0.
  struct Edge {
    int u = 0;
    int v = 0;
    double gamma = 0;
  };

  // 0-based Blossom round within the grouping call (log₂k rounds total).
  int stage = 0;
  // Member-index sets of each node entering this round (singletons in
  // round 0, merged super-nodes afterwards). Indices address the profile
  // array the grouping was called with.
  std::vector<std::vector<int>> nodes;
  // All positive-weight edges fed into the matching graph, u < v.
  std::vector<Edge> edges;
  // Matched node pairs (u < v) that merged into super-nodes.
  std::vector<std::pair<int, int>> matched;
  // Nodes that survived this round unmatched.
  std::vector<int> unmatched;
  // True when the round ended without a productive matching (no positive
  // edges, or Blossom matched zero pairs) and grouping fell back to
  // emitting the current nodes as final groups.
  bool fallback = false;
};

// Every Blossom round of one multi_round_grouping call, in order.
struct GroupingCapture {
  std::vector<MatchingRoundRecord> rounds;
};

}  // namespace muri
