// Exact matchers by exhaustive dynamic programming. Exponential in the
// number of nodes; usable up to ~20 nodes for pairs and ~16 for hypergroups.
// These serve as optimality oracles for the Blossom implementation and for
// measuring the optimality gap of the multi-round grouping heuristic.
#pragma once

#include <vector>

#include "matching/graph.h"

namespace muri {

// Exact maximum weight matching by bitmask DP in O(2^n * n). n <= 24.
Matching brute_force_matching(const DenseGraph& graph);

// A grouping of n items into disjoint groups (each of size >= 1).
struct Grouping {
  std::vector<std::vector<int>> groups;
  double weight = 0;
};

// Weight oracle for a candidate group (by member indices, sorted).
using GroupWeightFn = double (*)(const std::vector<int>&, const void*);

// Exact maximum-weight partition of n items into groups of size at most
// `max_group`, where the value of a group is given by `weight_of`
// (singletons score 0). Bitmask DP over subsets: O(3^n) worst case, usable
// for n <= 16. This is the hypergraph-matching optimum the paper calls
// NP-hard (§4.2), used to quantify the multi-round heuristic's gap.
template <typename WeightFn>
Grouping brute_force_grouping(int n, int max_group, WeightFn&& weight_of);

// --- template definition ---

template <typename WeightFn>
Grouping brute_force_grouping(int n, int max_group, WeightFn&& weight_of) {
  const int full = (1 << n) - 1;
  std::vector<double> best(static_cast<size_t>(full) + 1, 0.0);
  std::vector<int> choice(static_cast<size_t>(full) + 1, 0);

  // Pre-enumerate candidate groups of size 2..max_group.
  std::vector<std::pair<int, double>> candidates;  // (mask, weight)
  for (int mask = 1; mask <= full; ++mask) {
    const int bits = __builtin_popcount(static_cast<unsigned>(mask));
    if (bits < 2 || bits > max_group) continue;
    std::vector<int> members;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) members.push_back(i);
    }
    const double w = weight_of(members);
    if (w > 0) candidates.emplace_back(mask, w);
  }

  for (int mask = 1; mask <= full; ++mask) {
    // Option: lowest set bit stays a singleton.
    const int low = mask & (-mask);
    best[static_cast<size_t>(mask)] = best[static_cast<size_t>(mask ^ low)];
    choice[static_cast<size_t>(mask)] = low;
    for (const auto& [gmask, w] : candidates) {
      if ((gmask & mask) != gmask) continue;
      if ((gmask & low) == 0) continue;  // canonical: group contains low bit
      const double cand = best[static_cast<size_t>(mask ^ gmask)] + w;
      if (cand > best[static_cast<size_t>(mask)]) {
        best[static_cast<size_t>(mask)] = cand;
        choice[static_cast<size_t>(mask)] = gmask;
      }
    }
  }

  Grouping result;
  result.weight = best[static_cast<size_t>(full)];
  int mask = full;
  while (mask != 0) {
    const int gmask = choice[static_cast<size_t>(mask)];
    std::vector<int> members;
    for (int i = 0; i < n; ++i) {
      if (gmask & (1 << i)) members.push_back(i);
    }
    result.groups.push_back(std::move(members));
    mask ^= gmask;
  }
  return result;
}

}  // namespace muri
