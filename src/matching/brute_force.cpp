#include "matching/brute_force.h"

#include <cassert>

namespace muri {

Matching brute_force_matching(const DenseGraph& graph) {
  const int n = graph.size();
  assert(n <= 24 && "brute force matching is exponential");
  Matching result;
  result.mate.assign(static_cast<size_t>(n), -1);
  if (n < 2) return result;

  const int full = (1 << n) - 1;
  // best[mask]: max weight matching among nodes in mask.
  std::vector<double> best(static_cast<size_t>(full) + 1, 0.0);
  // partner[mask]: for the lowest node in mask, its chosen partner or -1.
  std::vector<int> partner(static_cast<size_t>(full) + 1, -1);

  for (int mask = 1; mask <= full; ++mask) {
    int low = 0;
    while (!(mask & (1 << low))) ++low;
    // Option 1: leave `low` unmatched.
    best[static_cast<size_t>(mask)] =
        best[static_cast<size_t>(mask ^ (1 << low))];
    partner[static_cast<size_t>(mask)] = -1;
    // Option 2: match `low` with any other node in mask.
    for (int v = low + 1; v < n; ++v) {
      if (!(mask & (1 << v))) continue;
      const double w = graph.weight(low, v);
      if (w <= 0) continue;
      const double cand =
          best[static_cast<size_t>(mask ^ (1 << low) ^ (1 << v))] + w;
      if (cand > best[static_cast<size_t>(mask)]) {
        best[static_cast<size_t>(mask)] = cand;
        partner[static_cast<size_t>(mask)] = v;
      }
    }
  }

  result.weight = best[static_cast<size_t>(full)];
  int mask = full;
  while (mask != 0) {
    int low = 0;
    while (!(mask & (1 << low))) ++low;
    const int p = partner[static_cast<size_t>(mask)];
    if (p < 0) {
      mask ^= 1 << low;
    } else {
      result.mate[static_cast<size_t>(low)] = p;
      result.mate[static_cast<size_t>(p)] = low;
      ++result.pairs;
      mask ^= (1 << low) | (1 << p);
    }
  }
  return result;
}

}  // namespace muri
