#include "matching/incremental/incremental.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace muri {

namespace {

// Strict total order on neighbor candidates. Scores are exact doubles
// produced by the same expression on both the maintained and the
// from-scratch path, so comparing them directly (no epsilon) is what
// makes the two paths bit-identical.
bool neighbor_less(double score_a, JobId id_a, double score_b, JobId id_b) {
  if (score_a != score_b) return score_a < score_b;
  return id_a < id_b;
}

ResourceVector unit_of(const ResourceVector& p) {
  double sum = 0;
  for (double t : p) sum += t;
  ResourceVector u{};
  if (sum > 0) {
    for (int r = 0; r < kNumResources; ++r) {
      u[static_cast<std::size_t>(r)] = p[static_cast<std::size_t>(r)] / sum;
    }
  }
  return u;
}

double unit_dot(const ResourceVector& a, const ResourceVector& b) {
  double s = 0;
  for (int r = 0; r < kNumResources; ++r) {
    s += a[static_cast<std::size_t>(r)] * b[static_cast<std::size_t>(r)];
  }
  return s;
}

}  // namespace

double profile_similarity(const ResourceVector& a, const ResourceVector& b) {
  return unit_dot(unit_of(a), unit_of(b));
}

TopKMask::TopKMask(int k, int slack) : k_(k > 0 ? k : 0), slack_(slack) {}

void TopKMask::rescan(JobId id, Entry& e) {
  e.buffer.clear();
  for (const auto& [oid, other] : jobs_) {
    if (oid == id) continue;
    const double score = unit_dot(e.unit, other.unit);
    // Insert into sorted position; trim to cap. For a rescan this is an
    // O(n·cap) insertion sort — fine, rescans are rare by design.
    Neighbor cand{score, oid};
    auto it = std::upper_bound(
        e.buffer.begin(), e.buffer.end(), cand,
        [](const Neighbor& x, const Neighbor& y) {
          return neighbor_less(x.score, x.id, y.score, y.id);
        });
    if (e.buffer.size() < cap() ||
        it != e.buffer.end()) {
      e.buffer.insert(it, cand);
      if (e.buffer.size() > cap()) e.buffer.pop_back();
    }
  }
}

std::int64_t TopKMask::update(const std::vector<JobId>& ids,
                              const std::vector<ResourceVector>& profiles,
                              IncrementalStats* stats) {
  assert(ids.size() == profiles.size());
  std::int64_t churn = 0;

  // One hash pass classifies the whole input: a resident with matching
  // profile bits gets this round's stamp; everything else — unknown id,
  // or present with different bits (a profile flip, handled as remove +
  // add) — is an arrival. Residents left unstamped afterwards departed.
  ++seen_stamp_;
  std::vector<std::pair<JobId, const ResourceVector*>> added;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto it = jobs_.find(ids[i]);
    if (it != jobs_.end() && it->second.profile == profiles[i]) {
      it->second.seen = seen_stamp_;
    } else {
      added.emplace_back(ids[i], &profiles[i]);
    }
  }
  std::unordered_set<JobId> removed;
  for (const auto& [id, e] : jobs_) {
    if (e.seen != seen_stamp_) removed.insert(id);
  }
  if (!removed.empty()) {
    churn += static_cast<std::int64_t>(removed.size());
    for (JobId id : removed) {
      touch(id);
      jobs_.erase(id);
    }
    // One pass over every buffer beats a reverse index: O(n·cap) with a
    // tiny constant, and no extra structure to keep consistent. A buffer
    // only dirties the edge cache when the loss lands inside its first
    // min(k, size) entries — slack-region losses leave the emitted edges
    // untouched.
    for (auto& [id, e] : jobs_) {
      const std::size_t take =
          std::min<std::size_t>(static_cast<std::size_t>(k_),
                                e.buffer.size());
      std::size_t w = 0;
      std::size_t first_hit = e.buffer.size();
      for (std::size_t r = 0; r < e.buffer.size(); ++r) {
        if (removed.count(e.buffer[r].id) != 0) {
          if (r < first_hit) first_hit = r;
        } else {
          if (w != r) e.buffer[w] = e.buffer[r];
          ++w;
        }
      }
      if (w != e.buffer.size()) {
        e.buffer.resize(w);
        if (first_hit < take) touch(id);
      }
    }
  }

  // Arrivals: score against every resident once. The symmetric score
  // feeds both the arrival's own buffer and, when it ranks, the
  // resident's — keeping every buffer the exact best-|buffer| set.
  churn += static_cast<std::int64_t>(added.size());
  for (const auto& [id, prof] : added) {
    Entry e;
    e.profile = *prof;
    e.unit = unit_of(*prof);
    for (auto& [oid, other] : jobs_) {
      const double score = unit_dot(e.unit, other.unit);
      Neighbor mine{score, oid};
      auto it = std::upper_bound(
          e.buffer.begin(), e.buffer.end(), mine,
          [](const Neighbor& x, const Neighbor& y) {
            return neighbor_less(x.score, x.id, y.score, y.id);
          });
      if (e.buffer.size() < cap() || it != e.buffer.end()) {
        e.buffer.insert(it, mine);
        if (e.buffer.size() > cap()) e.buffer.pop_back();
      }
      Neighbor theirs{score, id};
      auto jt = std::upper_bound(
          other.buffer.begin(), other.buffer.end(), theirs,
          [](const Neighbor& x, const Neighbor& y) {
            return neighbor_less(x.score, x.id, y.score, y.id);
          });
      // A buffer below capacity only stays an *exact* best-set if it is
      // complete (holds every other job); an incomplete one — departures
      // shrank it — may only accept arrivals that beat its tail, because
      // everything outside it is known to rank worse than the tail.
      const bool complete = other.buffer.size() == jobs_.size() - 1;
      if ((other.buffer.size() < cap() && complete) ||
          jt != other.buffer.end()) {
        // An insert beyond position k only reshuffles the slack region;
        // the resident's emitted edges change only when the newcomer
        // lands inside the first k.
        if (jt - other.buffer.begin() < static_cast<std::ptrdiff_t>(k_)) {
          touch(oid);
        }
        other.buffer.insert(jt, theirs);
        if (other.buffer.size() > cap()) other.buffer.pop_back();
      }
    }
    touch(id);
    jobs_.emplace(id, std::move(e));
  }

  // Refill: a buffer that decayed below k no longer proves it holds the
  // true top-k, so rebuild it. (A buffer of size s < k is still the
  // exact best-s set when fewer than k others exist — no rescan then.)
  const std::size_t others =
      jobs_.empty() ? 0 : jobs_.size() - 1;
  const std::size_t need = std::min<std::size_t>(
      static_cast<std::size_t>(k_), others);
  for (auto& [id, e] : jobs_) {
    if (e.buffer.size() < need) {
      touch(id);  // a rescan can pull previously-evicted jobs into the top k
      rescan(id, e);
      if (stats != nullptr) ++stats->topk_rescans;
    }
  }
  if (stats != nullptr) stats->dirty_jobs += churn;
  return churn;
}

TopKMask TopKMask::from_scratch(const std::vector<JobId>& ids,
                                const std::vector<ResourceVector>& profiles,
                                int k, int slack) {
  TopKMask m(k, slack);
  m.update(ids, profiles, nullptr);
  return m;
}

namespace {

bool edge_less(const MaskEdge& x, const MaskEdge& y) {
  if (x.score != y.score) return x.score < y.score;
  if (x.a != y.a) return x.a < y.a;
  return x.b < y.b;
}

}  // namespace

std::vector<MaskEdge> TopKMask::build_full_edges() const {
  std::vector<MaskEdge> out;
  out.reserve(jobs_.size() * static_cast<std::size_t>(k_ > 0 ? k_ : 1));
  for (const auto& [id, e] : jobs_) {
    const std::size_t take =
        std::min<std::size_t>(static_cast<std::size_t>(k_), e.buffer.size());
    for (std::size_t i = 0; i < take; ++i) {
      const Neighbor& nb = e.buffer[i];
      MaskEdge edge;
      edge.a = std::min(id, nb.id);
      edge.b = std::max(id, nb.id);
      edge.score = nb.score;
      out.push_back(edge);
    }
  }
  std::sort(out.begin(), out.end(), edge_less);
  // The same undirected edge can come in from both endpoints' buffers
  // (same score both ways — the score is symmetric), so adjacent
  // duplicates after the sort are exact.
  out.erase(std::unique(out.begin(), out.end(),
                        [](const MaskEdge& x, const MaskEdge& y) {
                          return x.a == y.a && x.b == y.b;
                        }),
            out.end());
  return out;
}

bool TopKMask::lists(JobId of, JobId other, double* score) const {
  const auto it = jobs_.find(of);
  if (it == jobs_.end()) return false;
  const Entry& e = it->second;
  const std::size_t take =
      std::min<std::size_t>(static_cast<std::size_t>(k_), e.buffer.size());
  for (std::size_t i = 0; i < take; ++i) {
    if (e.buffer[i].id == other) {
      *score = e.buffer[i].score;
      return true;
    }
  }
  return false;
}

std::vector<MaskEdge> TopKMask::edges() const {
  if (!edge_cache_valid_) {
    edge_cache_ = build_full_edges();
    edge_cache_valid_ = true;
    edge_dirty_.clear();
    return edge_cache_;
  }
  if (edge_dirty_.empty()) return edge_cache_;

  // Drop every cached edge touching a dirty job, remembering the pair —
  // it may still exist (re-derived below from the live buffers). Edges
  // between two clean jobs are exactly the ones neither endpoint's
  // contribution could have changed, so they stay, in order.
  std::vector<std::pair<JobId, JobId>> candidates;
  {
    auto out = edge_cache_.begin();
    for (const MaskEdge& e : edge_cache_) {
      if (edge_dirty_.count(e.a) != 0 || edge_dirty_.count(e.b) != 0) {
        candidates.emplace_back(e.a, e.b);
      } else {
        *out = e;
        ++out;
      }
    }
    edge_cache_.erase(out, edge_cache_.end());
  }
  // Plus everything a dirty job currently offers (dead jobs offer
  // nothing). Clean→dirty edges absent from the old cache cannot exist:
  // a clean endpoint's contribution is unchanged by definition.
  for (const JobId id : edge_dirty_) {
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) continue;
    const Entry& e = it->second;
    const std::size_t take =
        std::min<std::size_t>(static_cast<std::size_t>(k_), e.buffer.size());
    for (std::size_t i = 0; i < take; ++i) {
      candidates.emplace_back(std::min(id, e.buffer[i].id),
                              std::max(id, e.buffer[i].id));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  std::vector<MaskEdge> fresh;
  fresh.reserve(candidates.size());
  for (const auto& [a, b] : candidates) {
    double score = 0;
    if (lists(a, b, &score) || lists(b, a, &score)) {
      fresh.push_back({a, b, score});
    }
  }
  std::sort(fresh.begin(), fresh.end(), edge_less);

  // The retained range and the re-derived range are disjoint in (a, b) —
  // every fresh pair has a dirty endpoint, every retained pair has none —
  // so merging under the same strict order reproduces the full sort
  // bit for bit.
  std::vector<MaskEdge> merged;
  merged.reserve(edge_cache_.size() + fresh.size());
  std::merge(edge_cache_.begin(), edge_cache_.end(), fresh.begin(),
             fresh.end(), std::back_inserter(merged), edge_less);
  edge_cache_ = std::move(merged);
  edge_dirty_.clear();
  return edge_cache_;
}

std::vector<MaskEdge> TopKMask::neighbors(JobId id) const {
  std::vector<MaskEdge> out;
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return out;
  const Entry& e = it->second;
  const std::size_t take =
      std::min<std::size_t>(static_cast<std::size_t>(k_), e.buffer.size());
  for (std::size_t i = 0; i < take; ++i) {
    const Neighbor& nb = e.buffer[i];
    out.push_back({std::min(id, nb.id), std::max(id, nb.id), nb.score});
  }
  return out;
}

std::vector<std::vector<int>> split_components(
    const std::vector<JobId>& ids, const std::vector<MaskEdge>& edges,
    int component_cap) {
  const int n = static_cast<int>(ids.size());
  std::unordered_map<JobId, int> pos;
  pos.reserve(ids.size());
  for (int i = 0; i < n; ++i) pos.emplace(ids[static_cast<std::size_t>(i)], i);

  std::vector<int> parent(static_cast<std::size_t>(n));
  std::vector<int> csize(static_cast<std::size_t>(n), 1);
  for (int i = 0; i < n; ++i) parent[static_cast<std::size_t>(i)] = i;
  const auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };

  if (component_cap >= 2) {
    for (const MaskEdge& e : edges) {
      const auto ia = pos.find(e.a);
      const auto ib = pos.find(e.b);
      if (ia == pos.end() || ib == pos.end()) continue;
      int ra = find(ia->second);
      int rb = find(ib->second);
      if (ra == rb) continue;
      if (csize[static_cast<std::size_t>(ra)] +
              csize[static_cast<std::size_t>(rb)] >
          component_cap) {
        continue;
      }
      // Union by root index (smaller root wins) — the tie rule matters
      // only for determinism, and index comparison is deterministic.
      if (rb < ra) std::swap(ra, rb);
      parent[static_cast<std::size_t>(rb)] = ra;
      csize[static_cast<std::size_t>(ra)] +=
          csize[static_cast<std::size_t>(rb)];
    }
  }

  // Emit components ordered by their minimum member index, members
  // ascending — the order a serial scan produces.
  std::vector<int> comp_of_root(static_cast<std::size_t>(n), -1);
  std::vector<std::vector<int>> components;
  for (int i = 0; i < n; ++i) {
    const int r = find(i);
    int& c = comp_of_root[static_cast<std::size_t>(r)];
    if (c < 0) {
      c = static_cast<int>(components.size());
      components.emplace_back();
    }
    components[static_cast<std::size_t>(c)].push_back(i);
  }
  return components;
}

bool PairGammaCache::lookup(JobId a, const ResourceVector& pa, JobId b,
                            const ResourceVector& pb, double* gamma) const {
  const auto it = map_.find(Key{a, b});
  if (it == map_.end()) return false;
  if (!(it->second.pa == pa) || !(it->second.pb == pb)) return false;
  *gamma = it->second.gamma;
  return true;
}

void PairGammaCache::store(JobId a, const ResourceVector& pa, JobId b,
                           const ResourceVector& pb, double gamma,
                           std::int64_t round) {
  Value& v = map_[Key{a, b}];
  v.pa = pa;
  v.pb = pb;
  v.gamma = gamma;
  v.last_used = round;
}

void PairGammaCache::age(std::int64_t current_round, std::int64_t max_age) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (current_round - it->second.last_used > max_age) {
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

bool ComponentPairHook::lookup(int u, int v, double* gamma) const {
  const auto su = static_cast<std::size_t>(u);
  const auto sv = static_cast<std::size_t>(v);
  const bool hit =
      cache_ != nullptr &&
      cache_->lookup(ids_[su], (*profiles_)[su], ids_[sv], (*profiles_)[sv],
                     gamma);
  (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  return hit;
}

void ComponentPairHook::store(int u, int v, double gamma) {
  const auto su = static_cast<std::size_t>(u);
  const auto sv = static_cast<std::size_t>(v);
  PendingPairStore p;
  p.a = ids_[su];
  p.b = ids_[sv];
  p.pa = (*profiles_)[su];
  p.pb = (*profiles_)[sv];
  p.gamma = gamma;
  pending_.push_back(p);
}

const ComponentResultCache::CachedComponent* ComponentResultCache::lookup(
    const std::vector<JobId>& ids,
    const std::vector<ResourceVector>& profiles, bool need_capture,
    std::int64_t round) {
  const auto it = map_.find(ids);
  if (it == map_.end()) return nullptr;
  CachedComponent& c = it->second;
  if (need_capture && !c.has_capture) return nullptr;
  if (c.profiles.size() != profiles.size()) return nullptr;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    if (!(c.profiles[i] == profiles[i])) return nullptr;
  }
  c.last_used = round;
  return &c;
}

void ComponentResultCache::store(CachedComponent entry, std::int64_t round) {
  entry.last_used = round;
  std::vector<JobId> key = entry.ids;
  map_.insert_or_assign(std::move(key), std::move(entry));
}

void ComponentResultCache::age(std::int64_t current_round,
                               std::int64_t max_age) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (current_round - it->second.last_used > max_age) {
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace muri
