// Incremental candidate-graph maintenance for delta-based scheduling
// rounds (ROADMAP "Incremental scheduling rounds").
//
// A full Muri round rebuilds the γ edge graph and re-runs multi-round
// Blossom over every queued job. At 10k+ queued jobs the O(n²) candidate
// graph itself dominates the round. This module makes rounds delta-based
// while staying *bit-identical* to the full rebuild:
//
//   1. TopKMask — per-job top-k candidate neighbors ranked by
//      bottleneck-profile similarity (normalized stage-time dot product;
//      lower = more complementary = better interleaving partner, the
//      Table-1 bottleneck-class structure). Maintained exactly across
//      rounds: arrivals score against all residents once (O(n) per
//      arrival), departures are erased from every neighbor buffer
//      (O(n·K) scan, no reverse index needed), and a buffer that decays
//      below k is rebuilt by a full rescan. The buffer invariant — it
//      always holds the *exact* best-|buffer| neighbors under a strict
//      total order (score, id) — makes the first k entries equal to a
//      from-scratch top-k selection bit-for-bit, which is what the
//      property tests assert (edge set + weight equality, not just
//      matching equality).
//
//   2. split_components — capacity-capped greedy union-find over the
//      mask's edges in ascending (score, min_id, max_id) order: an edge
//      merges two clusters only if the combined size stays within
//      `component_cap`. Top-k graphs are nearly always one giant
//      connected component, so a plain connected-components split would
//      put Blossom right back at O(n³); the cap bounds every component,
//      making per-component grouping O(n·C²) total. Both the rebuild and
//      the incremental path run this same split on the same mask, so the
//      decomposition never has to be argued equivalent — it is the same
//      computation.
//
//   3. PairGammaCache — cross-round memo of round-0 pairwise γ values
//      keyed by job-id pair with the *full profile doubles* stored and
//      compared bitwise on lookup (a hash-only key could collide and
//      silently break bit-identity). Only edges touching churned jobs
//      miss; everything else is folded forward.
//
//   4. ComponentResultCache — whole-component grouping results keyed by
//      the ordered (id, profile) member list. An unchanged component's
//      groups (and its provenance capture, when a DecisionLog is
//      attached) are folded forward without re-running Blossom at all.
//
// Thread-safety contract: all lookup paths are const and safe to call
// concurrently; all mutation happens through explicit serial fold steps
// (PendingPairStores, insert calls) that the round driver executes in
// deterministic (bucket, component) order. Cache evolution is therefore
// identical for every thread count, which keeps incremental rounds
// bit-identical across the num_threads axis, same as the rest of the
// scheduler.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "matching/capture.h"

namespace muri {

// Work/avoidance counters for one incremental round, folded by the
// scheduler into GroupingStats (and from there into /metrics). None of
// these appear in any byte-compared output (plans, DecisionLog, trace):
// they describe *work done*, which is exactly what differs between the
// rebuild and incremental modes.
struct IncrementalStats {
  std::int64_t dirty_jobs = 0;        // bucket membership delta processed
  std::int64_t topk_rescans = 0;      // neighbor buffers rebuilt by full rescan
  std::int64_t edges_reused = 0;      // round-0 γs served from PairGammaCache
  std::int64_t edges_patched = 0;     // round-0 γs recomputed (dirty edges)
  std::int64_t components_total = 0;  // components offered to grouping
  std::int64_t components_reused = 0; // served whole from ComponentResultCache

  void accumulate(const IncrementalStats& o) {
    dirty_jobs += o.dirty_jobs;
    topk_rescans += o.topk_rescans;
    edges_reused += o.edges_reused;
    edges_patched += o.edges_patched;
    components_total += o.components_total;
    components_reused += o.components_reused;
  }
};

// Similarity score of two jobs: dot product of their L1-normalized
// stage-time vectors. Two jobs bottlenecked on the same resource score
// near 1 (poor interleaving partners); fully complementary profiles
// score near 0. Deterministic given the profile bits — both the
// maintained mask and the from-scratch reference use this exact
// expression, so their scores are bit-identical.
double profile_similarity(const ResourceVector& a, const ResourceVector& b);

// One candidate edge of the pruned γ graph.
struct MaskEdge {
  JobId a = kInvalidJob;  // a < b
  JobId b = kInvalidJob;
  double score = 0;
};

// Per-job top-k candidate neighbors, maintained exactly across rounds.
class TopKMask {
 public:
  // Neighbor buffers hold up to k + slack entries so departures rarely
  // force a rescan; slack ≤ 0 keeps exactly k.
  explicit TopKMask(int k, int slack = 8);

  int k() const noexcept { return k_; }
  std::size_t size() const noexcept { return jobs_.size(); }

  // Reconciles the mask with the current job set: `ids[i]` has profile
  // `profiles[i]`. Jobs absent from `ids` are removed; new ids are scored
  // against every resident; a resident whose profile bits changed is
  // treated as remove + add. Returns the number of membership changes
  // processed (the per-bucket dirty count). `stats` (may be null)
  // receives rescan accounting.
  std::int64_t update(const std::vector<JobId>& ids,
                      const std::vector<ResourceVector>& profiles,
                      IncrementalStats* stats);

  // From-scratch construction over the same inputs — the reference the
  // property tests compare against, and the rebuild mode's path. Shares
  // the scoring and ordering code with the maintained path.
  static TopKMask from_scratch(const std::vector<JobId>& ids,
                               const std::vector<ResourceVector>& profiles,
                               int k, int slack = 8);

  // The undirected pruned edge set: union over jobs of their first
  // min(k, |buffer|) neighbors, deduplicated, sorted ascending by
  // (score, a, b). Deterministic given the buffers.
  std::vector<MaskEdge> edges() const;

  // The first min(k, |buffer|) neighbors of `id`, sorted by (score, id).
  // Empty if the job is unknown. Exposed for the property tests.
  std::vector<MaskEdge> neighbors(JobId id) const;

 private:
  struct Neighbor {
    double score = 0;
    JobId id = kInvalidJob;
  };
  struct Entry {
    ResourceVector profile{};
    ResourceVector unit{};  // profile / total(profile), scoring operand
    std::vector<Neighbor> buffer;  // sorted by (score, id), size ≤ cap
    std::int64_t seen = 0;  // membership-diff stamp (update() internal)
  };

  void rescan(JobId id, Entry& e);
  std::size_t cap() const noexcept {
    return static_cast<std::size_t>(k_ + (slack_ > 0 ? slack_ : 0));
  }
  // Records that `id`'s first-min(k, |buffer|) contribution may have
  // changed since the cached edge list was built. No-op while no cache
  // exists (the first edges() call builds it in full anyway).
  void touch(JobId id) {
    if (edge_cache_valid_) edge_dirty_.insert(id);
  }
  std::vector<MaskEdge> build_full_edges() const;
  // True iff `of`'s first min(k, |buffer|) neighbors include `other`;
  // writes the stored score. The score is orientation-free bitwise: both
  // endpoints' buffers hold unit_dot over the same element order, and
  // double multiplication commutes exactly.
  bool lists(JobId of, JobId other, double* score) const;

  int k_ = 0;
  int slack_ = 0;
  std::int64_t seen_stamp_ = 0;
  std::unordered_map<JobId, Entry> jobs_;

  // Sorted-edge cache: edges() pays the full O(E log E) collect-and-sort
  // only once; afterwards update() marks the jobs whose top-k
  // contribution changed and edges() splices exactly their edges — drop,
  // re-derive from the live buffers, merge — in O(E + d·k·log(d·k)).
  // Bitwise equal to the full rebuild by construction: retained edges
  // keep their sorted order, re-derived ones are sorted with the same
  // comparator, and the two ranges are disjoint in (a, b), so the merge
  // reproduces the full sort exactly.
  mutable std::vector<MaskEdge> edge_cache_;
  mutable bool edge_cache_valid_ = false;
  mutable std::unordered_set<JobId> edge_dirty_;
};

// Splits the jobs listed in `ids` (with `local[i]` their caller-side
// index, used only for deterministic output ordering) into
// capacity-capped components along `edges`: edges are taken in the given
// (already sorted) order and union two clusters only when the merged
// size stays ≤ component_cap. Returns components as lists of positions
// into `ids`/`local`, each sorted ascending by local index, the
// components themselves ordered by their minimum local index — the order
// the serial round driver would visit them, independent of threading.
// component_cap < 2 degenerates to all-singletons; an empty edge list
// yields singletons too.
std::vector<std::vector<int>> split_components(
    const std::vector<JobId>& ids, const std::vector<MaskEdge>& edges,
    int component_cap);

// Cross-round memo of round-0 pairwise γ values. Lookup is const and
// concurrency-safe; stores are buffered per call site (PendingPairStores)
// and folded serially in deterministic order by the round driver.
//
// Entries are *directional*: pairwise_efficiency(a, b) and
// pairwise_efficiency(b, a) agree only to rounding, not bitwise — the
// floating-point reduction order follows the argument order — so a hit
// must replay the exact orientation the rebuild would evaluate. Both
// orientations may be cached independently.
class PairGammaCache {
 public:
  // True if γ for exactly these two single-job profiles is known with
  // both stored profiles bitwise equal to `pa`/`pb`; writes it to *gamma.
  bool lookup(JobId a, const ResourceVector& pa, JobId b,
              const ResourceVector& pb, double* gamma) const;

  void store(JobId a, const ResourceVector& pa, JobId b,
             const ResourceVector& pb, double gamma, std::int64_t round);

  // Drops entries not touched for `max_age` rounds (both caches age by
  // the same round counter the scheduler advances per schedule() call).
  void age(std::int64_t current_round, std::int64_t max_age);

  std::size_t size() const noexcept { return map_.size(); }

 private:
  struct Key {
    JobId a = kInvalidJob;  // directional: (a, b) != (b, a)
    JobId b = kInvalidJob;
    bool operator==(const Key& o) const noexcept {
      return a == o.a && b == o.b;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::size_t h = std::hash<JobId>{}(k.a);
      h ^= std::hash<JobId>{}(k.b) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
      return h;
    }
  };
  struct Value {
    ResourceVector pa{};
    ResourceVector pb{};
    double gamma = 0;
    std::int64_t last_used = 0;
  };
  std::unordered_map<Key, Value, KeyHash> map_;
};

// Deferred γ stores collected during a (possibly parallel) grouping
// phase; the driver folds them into the PairGammaCache serially.
struct PendingPairStore {
  JobId a = kInvalidJob;
  JobId b = kInvalidJob;
  ResourceVector pa{};
  ResourceVector pb{};
  double gamma = 0;
};

// Hook the grouping core consults for round-0 pairwise γ values.
// `lookup` may be called concurrently (const); `store` is called from
// the core's serial fold loop only, once per admissible round-0 pair,
// with the final γ. Implementations must return values bit-identical to
// what pairwise_efficiency would compute — the cache guarantees this by
// validating the full profile bits.
class PairGammaHook {
 public:
  virtual ~PairGammaHook() = default;
  virtual bool lookup(int u, int v, double* gamma) const = 0;
  virtual void store(int u, int v, double gamma) = 0;
};

// PairGammaHook over one component: maps component-local indices to job
// ids + profiles, reads the shared cache, and buffers stores locally so
// concurrent components never race on the cache. Atomic hit/miss
// counters are deterministic across thread counts because the *set* of
// lookups is (every admissible round-0 pair of the component).
class ComponentPairHook final : public PairGammaHook {
 public:
  ComponentPairHook(const PairGammaCache* cache, std::vector<JobId> ids,
                    const std::vector<ResourceVector>* profiles)
      : cache_(cache), ids_(std::move(ids)), profiles_(profiles) {}

  bool lookup(int u, int v, double* gamma) const override;
  void store(int u, int v, double gamma) override;

  const std::vector<PendingPairStore>& pending() const noexcept {
    return pending_;
  }
  std::int64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  std::int64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  const PairGammaCache* cache_ = nullptr;
  std::vector<JobId> ids_;
  const std::vector<ResourceVector>* profiles_ = nullptr;
  std::vector<PendingPairStore> pending_;
  mutable std::atomic<std::int64_t> hits_{0};
  mutable std::atomic<std::int64_t> misses_{0};
};

// Whole-component grouping results folded forward across rounds. Keyed
// by the *ordered* (id, profile) member list — membership, order, and
// profile bits must all match, so a hit replays exactly the computation
// a re-run would perform.
class ComponentResultCache {
 public:
  struct CachedComponent {
    std::vector<JobId> ids;                 // component order
    std::vector<ResourceVector> profiles;   // parallel to ids
    std::vector<std::vector<int>> groups;   // component-local indices
    GroupingCapture capture;                // provenance, if captured
    bool has_capture = false;
    std::int64_t last_used = 0;
  };

  // `need_capture` mirrors "a DecisionLog is attached": an entry cached
  // without provenance must miss when provenance is now required,
  // otherwise the log would lose its match_round records.
  const CachedComponent* lookup(const std::vector<JobId>& ids,
                                const std::vector<ResourceVector>& profiles,
                                bool need_capture, std::int64_t round);

  void store(CachedComponent entry, std::int64_t round);

  void age(std::int64_t current_round, std::int64_t max_age);

  std::size_t size() const noexcept { return map_.size(); }

 private:
  struct IdsHash {
    std::size_t operator()(const std::vector<JobId>& v) const noexcept {
      std::size_t h = 0x9e3779b97f4a7c15ull ^ v.size();
      for (JobId x : v) {
        h ^= static_cast<std::size_t>(x) + 0x9e3779b97f4a7c15ull + (h << 6) +
             (h >> 2);
      }
      return h;
    }
  };
  std::unordered_map<std::vector<JobId>, CachedComponent, IdsHash> map_;
};

// Everything one GPU bucket persists across rounds in incremental mode.
struct BucketGraphState {
  TopKMask mask;
  PairGammaCache pair_cache;
  ComponentResultCache component_cache;
  std::int64_t last_seen_round = 0;

  explicit BucketGraphState(int k) : mask(k) {}
};

}  // namespace muri
