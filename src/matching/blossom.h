// Maximum weight matching in general graphs — the Blossom algorithm.
//
// Muri (§4.1) reduces optimal 2-resource job grouping to maximum weighted
// matching: jobs are nodes, the weight of (u, v) is the interleaving
// efficiency γ(u, v), and the optimal grouping plan is the maximum weight
// matching. This file implements the primal-dual O(V³) Blossom algorithm
// for general (non-bipartite) graphs, including odd-cycle ("blossom")
// contraction and expansion and integral dual maintenance.
//
// Weights are accepted as doubles and quantized to 64-bit integers
// (kWeightScale steps) so the dual-variable arithmetic stays exact; the
// returned matching weight is recomputed from the original doubles.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "matching/graph.h"

namespace muri {

// Quantization factor for double weights. With efficiencies in [0, k] the
// quantization error per edge is below 1e-8, far under any meaningful
// difference between grouping plans.
inline constexpr double kWeightScale = 1e8;

// Computes a maximum weight matching of `graph`. Edges with weight <= 0 are
// treated as absent. Runs in O(V^3). The result satisfies
// graph.validate(result).
Matching max_weight_matching(const DenseGraph& graph);

// Greedy baseline: repeatedly match the heaviest remaining edge. Used for
// the "Muri w/o Blossom" ablation (Fig. 11) and as a lower bound in tests.
Matching greedy_matching(const DenseGraph& graph);

namespace detail {

// The Blossom machinery, exposed for white-box tests. Nodes are 0-indexed
// at the API boundary and 1-indexed internally; indices above n denote
// contracted blossoms.
class BlossomMatcher {
 public:
  explicit BlossomMatcher(int n);

  // Sets the (symmetric) integer weight of edge (u, v); u, v 0-indexed.
  // Weights must be non-negative; 0 means no edge.
  void set_weight(int u, int v, std::int64_t w);

  // Runs the algorithm; returns mate[] 0-indexed with -1 for unmatched,
  // and the total integer weight via out-param.
  std::vector<int> solve(std::int64_t& total_weight);

 private:
  struct Edge {
    int u = 0;
    int v = 0;
    std::int64_t w = 0;
  };

  std::int64_t edge_delta(const Edge& e) const {
    return lab_[static_cast<size_t>(e.u)] + lab_[static_cast<size_t>(e.v)] -
           g_(e.u, e.v).w * 2;
  }

  Edge& g_(int u, int v) { return edges_[static_cast<size_t>(u) * stride_ + v]; }
  const Edge& g_(int u, int v) const {
    return edges_[static_cast<size_t>(u) * stride_ + v];
  }
  int& flower_from_(int b, int x) {
    return flower_from_storage_[static_cast<size_t>(b) * (n_ + 1) + x];
  }

  void update_slack(int u, int x);
  void set_slack(int x);
  void push_queue(int x);
  void set_state(int x, int b);
  int blossom_rotation(int b, int xr);
  void set_match(int u, int v);
  void augment(int u, int v);
  int get_lca(int u, int v);
  void add_blossom(int u, int lca, int v);
  void expand_blossom(int b);
  bool on_found_edge(const Edge& e);
  bool matching_round();

  int n_ = 0;       // real nodes
  int n_x_ = 0;     // nodes including active blossoms
  int stride_ = 0;  // 2n + 1
  std::vector<Edge> edges_;
  std::vector<std::int64_t> lab_;  // dual variables
  std::vector<int> match_, slack_, st_, pa_, s_, vis_;
  std::vector<int> flower_from_storage_;
  std::vector<std::vector<int>> flower_;
  std::deque<int> queue_;
  int lca_stamp_ = 0;
};

}  // namespace detail
}  // namespace muri
