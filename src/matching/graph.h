// Dense undirected weighted graph used by the grouping algorithms.
//
// Muri builds a complete graph over the queued jobs where the weight of
// edge (u, v) is the interleaving efficiency of grouping jobs u and v
// (§4.1). Queue sizes are bounded by what can fill the cluster, so a dense
// representation is both the simplest and the fastest here.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace muri {

// Result of a matching computation over a graph with n nodes.
struct Matching {
  // mate[v] is the matched partner of v, or -1 if v is unmatched.
  std::vector<int> mate;
  // Sum of the weights of matched edges.
  double weight = 0;
  // Number of matched pairs.
  int pairs = 0;

  bool is_matched(int v) const { return mate[static_cast<size_t>(v)] >= 0; }
};

// Validates the symmetry invariant mate[mate[v]] == v and recomputes the
// weight/pair counters from a graph. Used by tests.
class DenseGraph {
 public:
  explicit DenseGraph(int n);

  int size() const noexcept { return n_; }

  // Sets the weight of undirected edge (u, v). Weights <= 0 mean "no edge".
  // Self-loops are ignored.
  void set_weight(int u, int v, double w);

  double weight(int u, int v) const;

  bool has_edge(int u, int v) const { return weight(u, v) > 0; }

  // Number of edges with positive weight.
  int edge_count() const;

  // True if `m` is a valid matching of this graph: partner symmetry holds
  // and every matched pair is an existing edge.
  bool validate(const Matching& m) const;

  // Recomputes the total weight of matching `m` against this graph.
  double matching_weight(const Matching& m) const;

 private:
  int n_;
  std::vector<double> w_;  // row-major n*n
};

}  // namespace muri
