#include "matching/graph.h"

#include <cstddef>

#include <cassert>

namespace muri {

DenseGraph::DenseGraph(int n) : n_(n), w_(static_cast<size_t>(n) * n, 0.0) {
  assert(n >= 0);
}

void DenseGraph::set_weight(int u, int v, double w) {
  assert(u >= 0 && u < n_ && v >= 0 && v < n_);
  if (u == v) return;
  w_[static_cast<size_t>(u) * n_ + v] = w;
  w_[static_cast<size_t>(v) * n_ + u] = w;
}

double DenseGraph::weight(int u, int v) const {
  assert(u >= 0 && u < n_ && v >= 0 && v < n_);
  return w_[static_cast<size_t>(u) * n_ + v];
}

int DenseGraph::edge_count() const {
  int count = 0;
  for (int u = 0; u < n_; ++u) {
    for (int v = u + 1; v < n_; ++v) {
      if (has_edge(u, v)) ++count;
    }
  }
  return count;
}

bool DenseGraph::validate(const Matching& m) const {
  if (static_cast<int>(m.mate.size()) != n_) return false;
  for (int v = 0; v < n_; ++v) {
    const int p = m.mate[static_cast<size_t>(v)];
    if (p < -1 || p >= n_ || p == v) return false;
    if (p >= 0) {
      if (m.mate[static_cast<size_t>(p)] != v) return false;
      if (!has_edge(v, p)) return false;
    }
  }
  return true;
}

double DenseGraph::matching_weight(const Matching& m) const {
  double total = 0;
  for (int v = 0; v < n_; ++v) {
    const int p = m.mate[static_cast<size_t>(v)];
    if (p > v) total += weight(v, p);
  }
  return total;
}

}  // namespace muri
