#include "matching/blossom.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace muri {
namespace detail {

namespace {
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
}  // namespace

BlossomMatcher::BlossomMatcher(int n)
    : n_(n),
      n_x_(n),
      stride_(2 * n + 1),
      edges_(static_cast<size_t>(stride_) * stride_),
      lab_(static_cast<size_t>(stride_), 0),
      match_(static_cast<size_t>(stride_), 0),
      slack_(static_cast<size_t>(stride_), 0),
      st_(static_cast<size_t>(stride_), 0),
      pa_(static_cast<size_t>(stride_), 0),
      s_(static_cast<size_t>(stride_), -1),
      vis_(static_cast<size_t>(stride_), 0),
      flower_from_storage_(static_cast<size_t>(stride_) * (n + 1), 0),
      flower_(static_cast<size_t>(stride_)) {
  for (int u = 0; u < stride_; ++u) {
    for (int v = 0; v < stride_; ++v) {
      g_(u, v) = Edge{u, v, 0};
    }
  }
}

void BlossomMatcher::set_weight(int u, int v, std::int64_t w) {
  assert(u >= 0 && u < n_ && v >= 0 && v < n_ && u != v);
  assert(w >= 0);
  g_(u + 1, v + 1).w = w;
  g_(v + 1, u + 1).w = w;
}

void BlossomMatcher::update_slack(int u, int x) {
  if (slack_[static_cast<size_t>(x)] == 0 ||
      edge_delta(g_(u, x)) < edge_delta(g_(slack_[static_cast<size_t>(x)], x))) {
    slack_[static_cast<size_t>(x)] = u;
  }
}

void BlossomMatcher::set_slack(int x) {
  slack_[static_cast<size_t>(x)] = 0;
  for (int u = 1; u <= n_; ++u) {
    if (g_(u, x).w > 0 && st_[static_cast<size_t>(u)] != x &&
        s_[static_cast<size_t>(st_[static_cast<size_t>(u)])] == 0) {
      update_slack(u, x);
    }
  }
}

void BlossomMatcher::push_queue(int x) {
  if (x <= n_) {
    queue_.push_back(x);
  } else {
    for (int sub : flower_[static_cast<size_t>(x)]) push_queue(sub);
  }
}

void BlossomMatcher::set_state(int x, int b) {
  st_[static_cast<size_t>(x)] = b;
  if (x > n_) {
    for (int sub : flower_[static_cast<size_t>(x)]) set_state(sub, b);
  }
}

int BlossomMatcher::blossom_rotation(int b, int xr) {
  auto& fl = flower_[static_cast<size_t>(b)];
  const int pr =
      static_cast<int>(std::find(fl.begin(), fl.end(), xr) - fl.begin());
  if (pr % 2 == 1) {
    // Walk the blossom cycle in the other direction so the path from the
    // base has even length (alternating structure requirement).
    std::reverse(fl.begin() + 1, fl.end());
    return static_cast<int>(fl.size()) - pr;
  }
  return pr;
}

void BlossomMatcher::set_match(int u, int v) {
  match_[static_cast<size_t>(u)] = g_(u, v).v;
  if (u > n_) {
    const Edge e = g_(u, v);
    const int xr = flower_from_(u, e.u);
    const int pr = blossom_rotation(u, xr);
    auto& fl = flower_[static_cast<size_t>(u)];
    for (int i = 0; i < pr; ++i) {
      set_match(fl[static_cast<size_t>(i)], fl[static_cast<size_t>(i ^ 1)]);
    }
    set_match(xr, v);
    std::rotate(fl.begin(), fl.begin() + pr, fl.end());
  }
}

void BlossomMatcher::augment(int u, int v) {
  while (true) {
    const int xnv = st_[static_cast<size_t>(match_[static_cast<size_t>(u)])];
    set_match(u, v);
    if (xnv == 0) return;
    set_match(xnv, st_[static_cast<size_t>(pa_[static_cast<size_t>(xnv)])]);
    u = st_[static_cast<size_t>(pa_[static_cast<size_t>(xnv)])];
    v = xnv;
  }
}

int BlossomMatcher::get_lca(int u, int v) {
  for (++lca_stamp_; u != 0 || v != 0; std::swap(u, v)) {
    if (u == 0) continue;
    if (vis_[static_cast<size_t>(u)] == lca_stamp_) return u;
    vis_[static_cast<size_t>(u)] = lca_stamp_;
    u = st_[static_cast<size_t>(match_[static_cast<size_t>(u)])];
    if (u != 0) u = st_[static_cast<size_t>(pa_[static_cast<size_t>(u)])];
  }
  return 0;
}

void BlossomMatcher::add_blossom(int u, int lca, int v) {
  int b = n_ + 1;
  while (b <= n_x_ && st_[static_cast<size_t>(b)] != 0) ++b;
  if (b > n_x_) ++n_x_;
  assert(b < stride_);

  lab_[static_cast<size_t>(b)] = 0;
  s_[static_cast<size_t>(b)] = 0;
  match_[static_cast<size_t>(b)] = match_[static_cast<size_t>(lca)];
  auto& fl = flower_[static_cast<size_t>(b)];
  fl.clear();
  fl.push_back(lca);
  for (int x = u, y; x != lca;
       x = st_[static_cast<size_t>(pa_[static_cast<size_t>(y)])]) {
    fl.push_back(x);
    y = st_[static_cast<size_t>(match_[static_cast<size_t>(x)])];
    fl.push_back(y);
    push_queue(y);
  }
  std::reverse(fl.begin() + 1, fl.end());
  for (int x = v, y; x != lca;
       x = st_[static_cast<size_t>(pa_[static_cast<size_t>(y)])]) {
    fl.push_back(x);
    y = st_[static_cast<size_t>(match_[static_cast<size_t>(x)])];
    fl.push_back(y);
    push_queue(y);
  }
  set_state(b, b);
  for (int x = 1; x <= n_x_; ++x) {
    g_(b, x).w = 0;
    g_(x, b).w = 0;
  }
  for (int x = 1; x <= n_; ++x) flower_from_(b, x) = 0;
  for (int xs : fl) {
    for (int x = 1; x <= n_x_; ++x) {
      if (g_(b, x).w == 0 || edge_delta(g_(xs, x)) < edge_delta(g_(b, x))) {
        g_(b, x) = g_(xs, x);
        g_(x, b) = g_(x, xs);
      }
    }
    for (int x = 1; x <= n_; ++x) {
      if (flower_from_(xs, x) != 0) flower_from_(b, x) = xs;
    }
  }
  set_slack(b);
}

void BlossomMatcher::expand_blossom(int b) {
  auto& fl = flower_[static_cast<size_t>(b)];
  for (int sub : fl) set_state(sub, sub);
  const int xr = flower_from_(b, g_(b, pa_[static_cast<size_t>(b)]).u);
  const int pr = blossom_rotation(b, xr);
  for (int i = 0; i < pr; i += 2) {
    const int xs = fl[static_cast<size_t>(i)];
    const int xns = fl[static_cast<size_t>(i + 1)];
    pa_[static_cast<size_t>(xs)] = g_(xns, xs).u;
    s_[static_cast<size_t>(xs)] = 1;
    s_[static_cast<size_t>(xns)] = 0;
    slack_[static_cast<size_t>(xs)] = 0;
    set_slack(xns);
    push_queue(xns);
  }
  s_[static_cast<size_t>(xr)] = 1;
  pa_[static_cast<size_t>(xr)] = pa_[static_cast<size_t>(b)];
  for (std::size_t i = static_cast<std::size_t>(pr) + 1; i < fl.size(); ++i) {
    const int xs = fl[i];
    s_[static_cast<size_t>(xs)] = -1;
    set_slack(xs);
  }
  st_[static_cast<size_t>(b)] = 0;
}

bool BlossomMatcher::on_found_edge(const Edge& e) {
  const int u = st_[static_cast<size_t>(e.u)];
  const int v = st_[static_cast<size_t>(e.v)];
  if (s_[static_cast<size_t>(v)] == -1) {
    pa_[static_cast<size_t>(v)] = e.u;
    s_[static_cast<size_t>(v)] = 1;
    const int nu = st_[static_cast<size_t>(match_[static_cast<size_t>(v)])];
    slack_[static_cast<size_t>(v)] = 0;
    slack_[static_cast<size_t>(nu)] = 0;
    s_[static_cast<size_t>(nu)] = 0;
    push_queue(nu);
  } else if (s_[static_cast<size_t>(v)] == 0) {
    const int lca = get_lca(u, v);
    if (lca == 0) {
      augment(u, v);
      augment(v, u);
      return true;
    }
    add_blossom(u, lca, v);
  }
  return false;
}

bool BlossomMatcher::matching_round() {
  std::fill(s_.begin() + 1, s_.begin() + 1 + n_x_, -1);
  std::fill(slack_.begin() + 1, slack_.begin() + 1 + n_x_, 0);
  queue_.clear();
  for (int x = 1; x <= n_x_; ++x) {
    if (st_[static_cast<size_t>(x)] == x && match_[static_cast<size_t>(x)] == 0) {
      pa_[static_cast<size_t>(x)] = 0;
      s_[static_cast<size_t>(x)] = 0;
      push_queue(x);
    }
  }
  if (queue_.empty()) return false;  // matching is perfect

  while (true) {
    while (!queue_.empty()) {
      const int u = queue_.front();
      queue_.pop_front();
      if (s_[static_cast<size_t>(st_[static_cast<size_t>(u)])] == 1) continue;
      for (int v = 1; v <= n_; ++v) {
        if (g_(u, v).w > 0 &&
            st_[static_cast<size_t>(u)] != st_[static_cast<size_t>(v)]) {
          if (edge_delta(g_(u, v)) == 0) {
            if (on_found_edge(g_(u, v))) return true;
          } else {
            update_slack(u, st_[static_cast<size_t>(v)]);
          }
        }
      }
    }

    // Dual adjustment.
    std::int64_t d = kInf;
    for (int b = n_ + 1; b <= n_x_; ++b) {
      if (st_[static_cast<size_t>(b)] == b && s_[static_cast<size_t>(b)] == 1) {
        d = std::min(d, lab_[static_cast<size_t>(b)] / 2);
      }
    }
    for (int x = 1; x <= n_x_; ++x) {
      if (st_[static_cast<size_t>(x)] == x && slack_[static_cast<size_t>(x)] != 0) {
        if (s_[static_cast<size_t>(x)] == -1) {
          d = std::min(d, edge_delta(g_(slack_[static_cast<size_t>(x)], x)));
        } else if (s_[static_cast<size_t>(x)] == 0) {
          d = std::min(d, edge_delta(g_(slack_[static_cast<size_t>(x)], x)) / 2);
        }
      }
    }
    for (int u = 1; u <= n_; ++u) {
      const int root_state = s_[static_cast<size_t>(st_[static_cast<size_t>(u)])];
      if (root_state == 0) {
        if (lab_[static_cast<size_t>(u)] <= d) return false;
        lab_[static_cast<size_t>(u)] -= d;
      } else if (root_state == 1) {
        lab_[static_cast<size_t>(u)] += d;
      }
    }
    for (int b = n_ + 1; b <= n_x_; ++b) {
      if (st_[static_cast<size_t>(b)] == b) {
        if (s_[static_cast<size_t>(b)] == 0) {
          lab_[static_cast<size_t>(b)] += d * 2;
        } else if (s_[static_cast<size_t>(b)] == 1) {
          lab_[static_cast<size_t>(b)] -= d * 2;
        }
      }
    }

    queue_.clear();
    for (int x = 1; x <= n_x_; ++x) {
      if (st_[static_cast<size_t>(x)] == x && slack_[static_cast<size_t>(x)] != 0 &&
          st_[static_cast<size_t>(slack_[static_cast<size_t>(x)])] != x &&
          edge_delta(g_(slack_[static_cast<size_t>(x)], x)) == 0) {
        if (on_found_edge(g_(slack_[static_cast<size_t>(x)], x))) return true;
      }
    }
    for (int b = n_ + 1; b <= n_x_; ++b) {
      if (st_[static_cast<size_t>(b)] == b && s_[static_cast<size_t>(b)] == 1 &&
          lab_[static_cast<size_t>(b)] == 0) {
        expand_blossom(b);
      }
    }
  }
}

std::vector<int> BlossomMatcher::solve(std::int64_t& total_weight) {
  std::fill(match_.begin() + 1, match_.begin() + 1 + n_, 0);
  n_x_ = n_;
  for (int u = 0; u <= n_; ++u) {
    st_[static_cast<size_t>(u)] = u;
    flower_[static_cast<size_t>(u)].clear();
  }
  std::int64_t w_max = 0;
  for (int u = 1; u <= n_; ++u) {
    for (int v = 1; v <= n_; ++v) {
      flower_from_(u, v) = (u == v ? u : 0);
      w_max = std::max(w_max, g_(u, v).w);
    }
  }
  for (int u = 1; u <= n_; ++u) lab_[static_cast<size_t>(u)] = w_max;

  while (matching_round()) {
  }

  total_weight = 0;
  std::vector<int> mate(static_cast<size_t>(n_), -1);
  for (int u = 1; u <= n_; ++u) {
    const int m = match_[static_cast<size_t>(u)];
    if (m != 0) {
      mate[static_cast<size_t>(u - 1)] = m - 1;
      if (m < u) total_weight += g_(u, m).w;
    }
  }
  return mate;
}

}  // namespace detail

Matching max_weight_matching(const DenseGraph& graph) {
  const int n = graph.size();
  Matching result;
  result.mate.assign(static_cast<size_t>(n), -1);
  if (n < 2) return result;

  detail::BlossomMatcher matcher(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const double w = graph.weight(u, v);
      if (w > 0) {
        const auto scaled = static_cast<std::int64_t>(
            std::llround(w * kWeightScale));
        matcher.set_weight(u, v, std::max<std::int64_t>(scaled, 1));
      }
    }
  }
  std::int64_t unused = 0;
  result.mate = matcher.solve(unused);
  result.weight = graph.matching_weight(result);
  for (int v = 0; v < n; ++v) {
    if (result.mate[static_cast<size_t>(v)] > v) ++result.pairs;
  }
  return result;
}

Matching greedy_matching(const DenseGraph& graph) {
  const int n = graph.size();
  Matching result;
  result.mate.assign(static_cast<size_t>(n), -1);

  struct E {
    double w;
    int u, v;
  };
  std::vector<E> edges;
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      const double w = graph.weight(u, v);
      if (w > 0) edges.push_back({w, u, v});
    }
  }
  std::sort(edges.begin(), edges.end(), [](const E& a, const E& b) {
    if (a.w != b.w) return a.w > b.w;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  for (const E& e : edges) {
    if (result.mate[static_cast<size_t>(e.u)] < 0 &&
        result.mate[static_cast<size_t>(e.v)] < 0) {
      result.mate[static_cast<size_t>(e.u)] = e.v;
      result.mate[static_cast<size_t>(e.v)] = e.u;
      result.weight += e.w;
      ++result.pairs;
    }
  }
  return result;
}

}  // namespace muri
