#include "job/model.h"

#include <cassert>
#include <cmath>

namespace muri {

namespace {

// Stage fractions follow Table 1 for the four models it reports
// (ShuffleNet, VGG19, GPT-2, A2C) verbatim — including the property that
// rows do not sum to 100% (idle gaps below, stage overlap above). The
// remaining four models are assigned fractions consistent with their
// Table 3 bottleneck class and their published compute/communication
// character.
constexpr std::array<ModelSpec, kNumModels> kZoo = {{
    {ModelKind::kResNet18, "resnet18", "imagenet", 128, Resource::kStorage,
     {0.42, 0.18, 0.22, 0.09}, 0.30},
    {ModelKind::kShuffleNet, "shufflenet", "imagenet", 128, Resource::kStorage,
     {0.60, 0.18, 0.06, 0.02}, 0.22},
    {ModelKind::kVgg16, "vgg16", "imagenet", 16, Resource::kNetwork,
     {0.20, 0.04, 0.25, 0.44}, 0.36},
    {ModelKind::kVgg19, "vgg19", "imagenet", 16, Resource::kNetwork,
     {0.24, 0.04, 0.26, 0.41}, 0.40},
    {ModelKind::kBert, "bert", "wikitext", 4, Resource::kGpu,
     {0.02, 0.03, 0.62, 0.30}, 0.55},
    {ModelKind::kGpt2, "gpt2", "wikitext", 4, Resource::kGpu,
     {0.0006, 0.0003, 0.85, 0.28}, 0.90},
    {ModelKind::kA2c, "a2c", "breakout", 64, Resource::kCpu,
     {0.00, 0.91, 0.03, 0.002}, 0.25},
    {ModelKind::kDqn, "dqn", "breakout", 128, Resource::kCpu,
     {0.02, 0.76, 0.14, 0.03}, 0.30},
}};

}  // namespace

std::string_view to_string(ModelKind m) noexcept {
  return model_spec(m).name;
}

bool parse_model(std::string_view text, ModelKind& out) noexcept {
  for (ModelKind m : kAllModels) {
    if (text == to_string(m)) {
      out = m;
      return true;
    }
  }
  return false;
}

const ModelSpec& model_spec(ModelKind m) noexcept {
  const auto idx = static_cast<size_t>(m);
  assert(idx < kZoo.size());
  return kZoo[idx];
}

IterationProfile model_profile(ModelKind m, int num_gpus) {
  assert(num_gpus >= 1);
  const ModelSpec& spec = model_spec(m);
  IterationProfile p;
  p.span = spec.base_iteration_time;
  for (int j = 0; j < kNumResources; ++j) {
    p.stage_time[static_cast<size_t>(j)] =
        spec.stage_fraction[static_cast<size_t>(j)] * spec.base_iteration_time;
  }
  if (num_gpus > 1) {
    // Ring-allreduce traffic per worker is ~2(n-1)/n of the model size and
    // contends for the per-machine NIC, so synchronization time grows
    // mildly with the worker count. The extra synchronization tail cannot
    // be hidden by intra-job pipelining, so it extends the span too.
    const double scale = 1.0 + 0.1 * std::log2(static_cast<double>(num_gpus));
    const auto net = static_cast<size_t>(Resource::kNetwork);
    const Duration extra = p.stage_time[net] * (scale - 1.0);
    p.stage_time[net] += extra;
    p.span += extra;
  }
  return p;
}

}  // namespace muri
