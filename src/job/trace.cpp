#include "job/trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/logging.h"

namespace muri {

namespace {

constexpr std::array<int, 6> kGpuCounts = {1, 2, 4, 8, 16, 32};

std::int64_t iterations_for(ModelKind model, int num_gpus,
                            Duration duration) {
  const Duration iter = model_profile(model, num_gpus).iteration_time();
  const auto iters = static_cast<std::int64_t>(std::llround(duration / iter));
  return std::max<std::int64_t>(iters, 1);
}

}  // namespace

double Trace::total_gpu_seconds() const {
  double sum = 0;
  for (const Job& j : jobs) sum += j.solo_duration() * j.num_gpus;
  return sum;
}

Trace generate_philly_like(const PhillyTraceOptions& options) {
  assert(options.num_jobs > 0);
  Trace trace;
  trace.name = options.name;
  trace.jobs.reserve(static_cast<size_t>(options.num_jobs));

  Rng rng(options.seed);
  Rng arrival_rng = rng.fork();
  Rng duration_rng = rng.fork();
  Rng gpu_rng = rng.fork();
  Rng model_rng = rng.fork();

  const std::vector<ModelKind> models =
      options.models.empty()
          ? std::vector<ModelKind>(kAllModels.begin(), kAllModels.end())
          : options.models;

  Time now = 0;
  const double base_rate = options.jobs_per_hour / 3600.0;  // per second
  for (int i = 0; i < options.num_jobs; ++i) {
    // Diurnal modulation: thin a homogeneous Poisson process with a
    // sinusoidal acceptance probability (one cycle per 24 h).
    while (true) {
      now += arrival_rng.exponential(base_rate);
      const double phase = 2.0 * M_PI * std::fmod(now, 86400.0) / 86400.0;
      const double accept =
          (1.0 + options.diurnal_amplitude * std::sin(phase)) /
          (1.0 + options.diurnal_amplitude);
      if (arrival_rng.bernoulli(accept)) break;
    }

    Job job;
    job.id = i;
    job.submit_time = now;
    job.model = models[static_cast<size_t>(
        model_rng.uniform_int(0, static_cast<std::int64_t>(models.size()) - 1))];
    job.num_gpus = kGpuCounts[gpu_rng.weighted_index(options.gpu_count_weights)];
    job.profile = model_profile(job.model, job.num_gpus);

    Duration duration = duration_rng.lognormal(options.duration_log_mean,
                                               options.duration_log_sigma);
    duration = std::clamp(duration, options.min_duration, options.max_duration);
    job.iterations = iterations_for(job.model, job.num_gpus, duration);
    trace.jobs.push_back(job);
  }
  return trace;
}

Trace standard_trace(int trace_id) {
  PhillyTraceOptions opt;
  switch (trace_id) {
    case 1:
      // Sustained overload (~2x capacity at 64 GPUs).
      opt = {.name = "trace1",
             .num_jobs = 992,
             .seed = 101,
             .jobs_per_hour = 60.0,
             .duration_log_mean = 7.6,
             .duration_log_sigma = 1.5,
             .max_duration = 24.0 * 3600};
      break;
    case 2:
      opt = {.name = "trace2",
             .num_jobs = 2137,
             .seed = 202,
             .jobs_per_hour = 70.0,
             .duration_log_mean = 7.4,
             .duration_log_sigma = 1.5,
             .max_duration = 24.0 * 3600};
      break;
    case 3:
      // Lightly loaded with several very long jobs submitted early (the
      // paper notes trace 3 is lightly loaded and its makespan is
      // dominated by a few long jobs).
      opt = {.name = "trace3",
             .num_jobs = 3489,
             .seed = 303,
             .jobs_per_hour = 18.0,
             .duration_log_mean = 6.2,
             .duration_log_sigma = 2.0,
             .max_duration = 96.0 * 3600};
      break;
    case 4:
      opt = {.name = "trace4",
             .num_jobs = 5755,
             .seed = 404,
             .jobs_per_hour = 100.0,
             .duration_log_mean = 7.0,
             .duration_log_sigma = 1.5,
             .max_duration = 24.0 * 3600};
      break;
    default:
      throw std::invalid_argument("standard_trace: trace_id must be 1..4");
  }
  return generate_philly_like(opt);
}

Trace testbed_trace() {
  // The busiest 400-job interval used for the 64-GPU testbed runs (§6.1).
  // Bursty and duration-capped: the busiest interval of a production
  // trace concentrates submissions into a few hours and its per-interval
  // durations are bounded, which is what makes the backlog (not one giant
  // job) dominate completion times.
  PhillyTraceOptions opt;
  opt.name = "testbed400";
  opt.num_jobs = 400;
  opt.seed = 64;
  opt.jobs_per_hour = 150.0;
  opt.duration_log_mean = 8.0;
  opt.duration_log_sigma = 1.5;
  opt.max_duration = 8.0 * 3600;
  // The busiest interval skews toward distributed jobs.
  opt.gpu_count_weights = {0.55, 0.12, 0.12, 0.10, 0.08, 0.03};
  return generate_philly_like(opt);
}

Trace zero_arrivals(Trace trace) {
  trace.name += "-zero";
  for (Job& j : trace.jobs) j.submit_time = 0;
  return trace;
}

Trace restrict_models(Trace trace, const std::vector<ModelKind>& models,
                      std::uint64_t seed) {
  assert(!models.empty());
  Rng rng(seed);
  for (Job& j : trace.jobs) {
    j.model = models[static_cast<size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(models.size()) - 1))];
    const Duration solo = j.solo_duration();
    j.profile = model_profile(j.model, j.num_gpus);
    j.iterations = iterations_for(j.model, j.num_gpus, solo);
  }
  return trace;
}

void write_trace_csv(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out.precision(17);  // lossless double round trip
  out << "submit_time,duration_s,num_gpus,model\n";
  for (const Job& j : trace.jobs) {
    out << j.submit_time << ',' << j.solo_duration() << ',' << j.num_gpus
        << ',' << to_string(j.model) << '\n';
  }
}

Trace read_trace_csv(const std::string& path, const std::string& name) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path + " for reading");
  Trace trace;
  trace.name = name;
  std::string line;
  std::getline(in, line);  // header
  JobId next_id = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string field;
    Job job;
    job.id = next_id++;

    std::getline(ls, field, ',');
    job.submit_time = std::stod(field);
    std::getline(ls, field, ',');
    const Duration duration = std::stod(field);
    std::getline(ls, field, ',');
    job.num_gpus = std::stoi(field);
    std::getline(ls, field, ',');
    if (!parse_model(field, job.model)) {
      throw std::runtime_error("unknown model in trace: " + field);
    }
    job.profile = model_profile(job.model, job.num_gpus);
    job.iterations = iterations_for(job.model, job.num_gpus, duration);
    trace.jobs.push_back(job);
  }
  std::sort(trace.jobs.begin(), trace.jobs.end(),
            [](const Job& a, const Job& b) {
              return a.submit_time < b.submit_time;
            });
  for (size_t i = 0; i < trace.jobs.size(); ++i) {
    trace.jobs[i].id = static_cast<JobId>(i);
  }
  return trace;
}

}  // namespace muri
