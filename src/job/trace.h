// Workload traces: a Philly-like synthetic generator plus CSV round-trip.
//
// The paper evaluates on four virtual-cluster slices of the Microsoft
// Philly trace (992–5755 jobs) and a 400-job "busiest interval" for the
// testbed, assigning each trace job one of the eight Table-3 models at
// random because the trace does not record models. We cannot ship the
// Philly data, so `generate_philly_like` reproduces its published
// statistical shape: heavy-tailed (log-normal) durations, bursty Poisson
// arrivals with a diurnal factor, and a power-of-two GPU-count mixture
// dominated by single-GPU jobs. All draws are seeded and deterministic.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "job/job.h"

namespace muri {

struct Trace {
  std::string name;
  std::vector<Job> jobs;  // sorted by submit_time, ids dense from 0

  // Total GPU-seconds of work in the trace.
  double total_gpu_seconds() const;
};

struct PhillyTraceOptions {
  std::string name = "trace";
  int num_jobs = 1000;
  std::uint64_t seed = 1;

  // Mean arrival rate in jobs per hour; arrivals are a Poisson process
  // modulated by a diurnal sine (daytime burstier than night, matching
  // Philly's published arrival pattern).
  double jobs_per_hour = 12.0;
  double diurnal_amplitude = 0.6;  // in [0, 1)

  // Duration distribution: log-normal over seconds. Philly job durations
  // are heavy-tailed with a median around 10-20 minutes and a long tail of
  // multi-day jobs.
  double duration_log_mean = 7.0;    // e^7 ≈ 1100 s median
  double duration_log_sigma = 1.6;
  Duration min_duration = 60.0;
  Duration max_duration = 30.0 * 24 * 3600;

  // Mixture over GPU counts {1, 2, 4, 8, 16, 32}; renormalized internally.
  std::vector<double> gpu_count_weights = {0.72, 0.10, 0.09, 0.05, 0.03, 0.01};

  // Candidate models assigned uniformly at random (§6.1 "randomly choose
  // DL models from eight popular DL models"). Defaults to all eight.
  std::vector<ModelKind> models{};
};

// Generates a deterministic Philly-like trace.
Trace generate_philly_like(const PhillyTraceOptions& options);

// The four simulation traces of §6.3 (IDs 1..4) with the paper's job-count
// range (992..5755), and the 400-job busiest-interval testbed trace (§6.1).
Trace standard_trace(int trace_id);
Trace testbed_trace();

// Returns a copy with every submit time set to 0 — the 1'–4' variants used
// to study the impact of load (§6.3).
Trace zero_arrivals(Trace trace);

// Returns a copy keeping only jobs whose model is in `models` (used by the
// workload-distribution study, Fig. 13); job ids are re-densified and the
// job count is preserved by resampling models from the allowed set instead
// of dropping jobs.
Trace restrict_models(Trace trace, const std::vector<ModelKind>& models,
                      std::uint64_t seed);

// CSV round trip: "submit_time,duration_s,num_gpus,model" with a header.
// Durations are mapped back to iteration counts through the model profile.
void write_trace_csv(const Trace& trace, const std::string& path);
Trace read_trace_csv(const std::string& path, const std::string& name);

}  // namespace muri
