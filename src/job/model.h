// The model zoo: the eight DL models used in the paper's evaluation
// (Table 3) with per-stage duration profiles consistent with the stage
// breakdown the authors measured with PyTorch Profiler (Table 1).
//
// The paper used real PyTorch models on V100s; we cannot, so the zoo encodes
// the published stage-duration fractions (and bottleneck classes for the
// models Table 1 omits) as the profile source of truth. Muri itself only
// ever consumes these per-resource durations, so this substitution
// preserves all scheduling behaviour (see DESIGN.md §2).
#pragma once

#include <array>
#include <string_view>

#include "common/types.h"

namespace muri {

enum class ModelKind : std::uint8_t {
  kResNet18 = 0,
  kShuffleNet = 1,
  kVgg16 = 2,
  kVgg19 = 3,
  kBert = 4,
  kGpt2 = 5,
  kA2c = 6,
  kDqn = 7,
};

inline constexpr int kNumModels = 8;

inline constexpr std::array<ModelKind, kNumModels> kAllModels = {
    ModelKind::kResNet18, ModelKind::kShuffleNet, ModelKind::kVgg16,
    ModelKind::kVgg19,    ModelKind::kBert,       ModelKind::kGpt2,
    ModelKind::kA2c,      ModelKind::kDqn};

std::string_view to_string(ModelKind m) noexcept;
bool parse_model(std::string_view text, ModelKind& out) noexcept;

// The resource profile of one training iteration: seconds spent on each
// resource type (after the intra-job pipelining the paper assumes is
// already applied — §6.1 "have already applied intra-job pipelining").
//
// Table 1's stage percentages do not sum to 100%: idle gaps (e.g. CUDA
// launch delays) make the iteration *span* longer than the busy stage
// times, and stage overlap can make the busy sum exceed the span. `span`
// records the measured wall time of one iteration; the per-resource busy
// times drive interleaving math, the span drives solo pacing and duty
// cycles.
struct IterationProfile {
  ResourceVector stage_time{};  // busy seconds per resource per iteration
  // Measured wall time of one solo iteration; 0 means "use the busy sum".
  Duration span = 0;

  // Solo (un-interleaved) iteration wall time.
  Duration iteration_time() const noexcept {
    return span > 0 ? span : total(stage_time);
  }

  // Fraction of the iteration during which resource r is busy (a Table 1
  // row entry); fractions sum to the stage-overlap factor, not to 1.
  double duty(Resource r) const noexcept {
    const Duration t = iteration_time();
    return t > 0 ? stage_time[static_cast<size_t>(r)] / t : 0.0;
  }

  Resource bottleneck_resource() const noexcept {
    return bottleneck(stage_time);
  }

  // Alias of duty(); kept for Table 1 reporting.
  double fraction(Resource r) const noexcept { return duty(r); }
};

// Static facts about a model: batch size, dataset and bottleneck from
// Table 3, plus the stage-duration fractions and a base iteration time.
struct ModelSpec {
  ModelKind kind;
  std::string_view name;
  std::string_view dataset;
  int batch_size;
  Resource bottleneck;
  // Busy fractions of one iteration per resource (storage, cpu, gpu,
  // network). Like Table 1's rows these do NOT sum to 1: idle gaps leave
  // the sum below 1 (ShuffleNet 0.86) and stage overlap can push it above
  // (GPT-2 1.13).
  ResourceVector stage_fraction;
  // Seconds per iteration on a single V100-class GPU at the Table 3 batch
  // size; sets the absolute time scale only.
  Duration base_iteration_time;
};

const ModelSpec& model_spec(ModelKind m) noexcept;

// The iteration profile of `m` when trained on `num_gpus` workers.
// Gradient synchronization cost grows mildly with the worker count
// (ring-allreduce on an oversubscribed NIC), matching the paper's
// observation that distributed jobs shift toward network bottleneck.
IterationProfile model_profile(ModelKind m, int num_gpus);

}  // namespace muri
