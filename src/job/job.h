// The static description of a DL training job as submitted to the cluster.
// Runtime state (progress, placement, grouping) lives in the simulator.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"
#include "job/model.h"

namespace muri {

struct Job {
  JobId id = kInvalidJob;
  ModelKind model = ModelKind::kResNet18;
  // Number of GPUs (workers); the paper follows common practice and uses
  // powers of two (§5).
  int num_gpus = 1;
  Time submit_time = 0;
  // Total number of training iterations to run.
  std::int64_t iterations = 0;
  // Ground-truth per-iteration resource profile. Schedulers must not read
  // this directly; they see the (possibly noisy) profiler output.
  IterationProfile profile;

  // Solo runtime if the job ran alone from start to finish.
  Duration solo_duration() const noexcept {
    return static_cast<Duration>(iterations) * profile.iteration_time();
  }

  // GPU-time product used by SRSF/2D-LAS style priorities.
  double gpu_time(Duration t) const noexcept {
    return t * static_cast<double>(num_gpus);
  }

  std::string to_string() const;
};

// True if g is a positive power of two (the placement and bucketing logic
// relies on this normal form).
bool is_power_of_two(int g) noexcept;

}  // namespace muri
