#include "job/job.h"

#include <sstream>

namespace muri {

std::string Job::to_string() const {
  std::ostringstream os;
  os << "job#" << id << '{' << muri::to_string(model) << " gpus=" << num_gpus
     << " submit=" << submit_time << " iters=" << iterations
     << " solo=" << solo_duration() << "s}";
  return os.str();
}

bool is_power_of_two(int g) noexcept { return g > 0 && (g & (g - 1)) == 0; }

}  // namespace muri
