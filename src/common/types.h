// Core vocabulary types shared by every Muri module.
//
// The paper models four resource types used by DL training stages
// (storage IO for data loading, CPU for preprocessing, GPU for
// forward/backward propagation, network IO for gradient synchronization).
// All durations are kept in double-precision seconds of simulated time.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace muri {

// Simulated wall-clock time in seconds. Negative values are invalid except
// for kNoTime sentinels.
using Time = double;

// A duration in seconds of simulated time.
using Duration = double;

inline constexpr Time kNoTime = -1.0;

// Identifier of a job; assigned densely at submission order.
using JobId = std::int64_t;
inline constexpr JobId kInvalidJob = -1;

// Identifier of a machine in the cluster.
using MachineId = std::int32_t;
inline constexpr MachineId kInvalidMachine = -1;

// Identifier of a single GPU, global across the cluster.
using GpuId = std::int32_t;
inline constexpr GpuId kInvalidGpu = -1;

// The four resource types a DL training stage is dominated by (§2.2,
// Table 1). The order matches the natural stage order of one iteration:
// load data (storage) -> preprocess (CPU) -> propagate (GPU) ->
// synchronize (network).
enum class Resource : std::uint8_t {
  kStorage = 0,
  kCpu = 1,
  kGpu = 2,
  kNetwork = 3,
};

inline constexpr int kNumResources = 4;

inline constexpr std::array<Resource, kNumResources> kAllResources = {
    Resource::kStorage, Resource::kCpu, Resource::kGpu, Resource::kNetwork};

// Short human-readable name, e.g. for bench table headers.
std::string_view to_string(Resource r) noexcept;

// Parses "storage" / "cpu" / "gpu" / "network" (case-sensitive).
// Returns false on unknown names.
bool parse_resource(std::string_view text, Resource& out) noexcept;

// A per-resource vector of durations: t^j for j in [0, kNumResources).
// This is the "resource profile" of one training iteration of a job (§4.1).
using ResourceVector = std::array<Duration, kNumResources>;

// Sum over all resource types; the solo (un-interleaved) iteration time
// under the paper's one-stage-one-resource model.
Duration total(const ResourceVector& v) noexcept;

// The resource with the largest duration: the job's bottleneck (Table 3).
Resource bottleneck(const ResourceVector& v) noexcept;

// Formats e.g. "[storage=0.12 cpu=0.03 gpu=0.40 network=0.08]".
std::string to_string(const ResourceVector& v);

}  // namespace muri
