#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace muri {

double mean(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  if (lo == hi) return xs[lo];
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double min_of(const std::vector<double>& xs) noexcept {
  double m = std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::min(m, x);
  return xs.empty() ? 0.0 : m;
}

double max_of(const std::vector<double>& xs) noexcept {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : xs) m = std::max(m, x);
  return xs.empty() ? 0.0 : m;
}

void TimeWeightedAverage::observe(Time now, double value) {
  if (started_ && now > last_time_) {
    weighted_sum_ += last_value_ * (now - last_time_);
    total_time_ += now - last_time_;
  }
  started_ = true;
  last_time_ = now;
  last_value_ = value;
}

double TimeWeightedAverage::finalize(Time now) {
  observe(now, last_value_);
  return total_time_ > 0 ? weighted_sum_ / total_time_ : 0.0;
}

double TimeWeightedAverage::value_at(Time now) const {
  double ws = weighted_sum_;
  Duration tt = total_time_;
  if (started_ && now > last_time_) {
    ws += last_value_ * (now - last_time_);
    tt += now - last_time_;
  }
  return tt > 0 ? ws / tt : 0.0;
}

SeriesRecorder::SeriesRecorder(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ < 2) capacity_ = 2;
}

void SeriesRecorder::record(Time t, double value) {
  if (seen_++ % stride_ == 0) {
    points_.push_back({t, value});
    if (points_.size() >= capacity_) {
      // Thin in place: keep every other point, double the stride.
      std::vector<Point> kept;
      kept.reserve(points_.size() / 2 + 1);
      for (std::size_t i = 0; i < points_.size(); i += 2) {
        kept.push_back(points_[i]);
      }
      points_ = std::move(kept);
      stride_ *= 2;
    }
  }
}

}  // namespace muri
