#include "common/threadpool.h"

#include <atomic>
#include <cassert>
#include <exception>
#include <memory>

namespace muri {

namespace {

// Identifies the pool (if any) the current thread belongs to, so nested
// parallel_for calls from a worker run inline instead of re-enqueuing —
// a worker that blocked waiting on tasks only its own queue can run would
// deadlock the pool.
thread_local const ThreadPool* t_current_pool = nullptr;

// Shared state of one parallel_for call. Enqueued runners hold it via
// shared_ptr: a runner that wakes up after the loop already drained (and
// the caller returned) must still find its chunk list alive.
struct LoopState {
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  std::function<void(std::int64_t)> body;
  std::atomic<size_t> next_chunk{0};
  std::atomic<bool> failed{false};
  std::mutex mutex;
  std::condition_variable all_done;
  size_t chunks_done = 0;
  std::exception_ptr error;

  // Claims and runs chunks until none remain. Safe to call from any number
  // of threads; every chunk executes exactly once.
  void run() {
    for (;;) {
      const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= chunks.size()) return;
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          for (std::int64_t i = chunks[c].first; i < chunks[c].second; ++i) {
            body(i);
          }
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
      std::lock_guard<std::mutex> lock(mutex);
      if (++chunks_done == chunks.size()) all_done.notify_all();
    }
  }
};

}  // namespace

ThreadPool::ThreadPool(int workers) {
  assert(workers >= 0);
  threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::on_worker_thread() const noexcept {
  return t_current_pool == this;
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

std::vector<std::pair<std::int64_t, std::int64_t>> ThreadPool::partition(
    std::int64_t begin, std::int64_t end, int max_chunks) {
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  if (end <= begin || max_chunks < 1) return chunks;
  const std::int64_t n = end - begin;
  const std::int64_t count = std::min<std::int64_t>(n, max_chunks);
  const std::int64_t base = n / count;
  const std::int64_t extra = n % count;  // first `extra` chunks get +1
  chunks.reserve(static_cast<size_t>(count));
  std::int64_t at = begin;
  for (std::int64_t c = 0; c < count; ++c) {
    const std::int64_t size = base + (c < extra ? 1 : 0);
    chunks.emplace_back(at, at + size);
    at += size;
  }
  assert(at == end);
  return chunks;
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              const std::function<void(std::int64_t)>& body) {
  if (end <= begin) return;
  // Serial fast paths: no workers, a one-element range, or a nested call
  // from one of our own workers (which must not block on the queue).
  if (workers() == 0 || end - begin == 1 || on_worker_thread()) {
    for (std::int64_t i = begin; i < end; ++i) body(i);
    return;
  }

  auto state = std::make_shared<LoopState>();
  // Over-split relative to the thread count so a slow chunk (one expensive
  // bucket, a heavy row of the matching graph) rebalances onto idle
  // threads; boundaries stay a pure function of the range.
  state->chunks = partition(begin, end, concurrency() * 4);
  state->body = body;

  const size_t runners =
      std::min(static_cast<size_t>(workers()), state->chunks.size() - 1);
  for (size_t i = 0; i < runners; ++i) {
    enqueue([state] { state->run(); });
  }
  state->run();  // the caller works too

  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock,
                       [&] { return state->chunks_done == state->chunks.size(); });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace muri
