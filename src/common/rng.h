// Deterministic random number generation for reproducible traces and
// simulations. Every stochastic component takes an explicit Rng (or a seed)
// so that benches regenerate identical numbers run-to-run.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace muri {

// Derives an independent substream seed from (seed, salt) via a SplitMix64
// finalizer. Components that own one stream per entity (per job, per
// machine) key it this way so that adding or removing entity k never
// perturbs the draws of entity k+1.
inline std::uint64_t substream_seed(std::uint64_t seed,
                                    std::uint64_t salt) noexcept {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Thin wrapper over a fixed-algorithm engine (mt19937_64) so the stream is
// stable across standard libraries and platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  // Uniform in [0, 1).
  double uniform() { return unit_(engine_); }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
  }

  // Exponential with the given rate (events per unit time).
  double exponential(double rate) {
    std::exponential_distribution<double> d(rate);
    return d(engine_);
  }

  // Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    std::lognormal_distribution<double> d(mu, sigma);
    return d(engine_);
  }

  double normal(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  bool bernoulli(double p) { return uniform() < p; }

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Precondition: weights non-empty with non-negative entries, positive sum.
  std::size_t weighted_index(const std::vector<double>& weights);

  // Splits off an independent sub-stream; used to give each component its
  // own generator so adding draws in one place does not perturb another.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace muri
