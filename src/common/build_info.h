// Build identity and process uptime, shared by every binary that exports
// metrics (bench tools, muri-daemon). Values are baked in at configure
// time via compile definitions on muri_common; uptime is measured from a
// steady clock captured at process start (first static init of this TU).
#pragma once

namespace muri {

// Semantic version of this build ("0.9.0"); never null.
const char* build_version() noexcept;

// Short git commit sha at configure time, or "unknown" outside a
// checkout; never null.
const char* build_git_sha() noexcept;

// Wall seconds this process has been alive (steady clock, monotone).
double process_uptime_seconds() noexcept;

}  // namespace muri
