#include "common/build_info.h"

#include <chrono>

#ifndef MURI_VERSION
#define MURI_VERSION "0.0.0"
#endif
#ifndef MURI_GIT_SHA
#define MURI_GIT_SHA "unknown"
#endif

namespace muri {

namespace {
// Captured when the process loads this TU's statics — close enough to
// process start for an uptime gauge.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();
}  // namespace

const char* build_version() noexcept { return MURI_VERSION; }

const char* build_git_sha() noexcept { return MURI_GIT_SHA; }

double process_uptime_seconds() noexcept {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_process_start)
      .count();
}

}  // namespace muri
