#include "common/types.h"

#include <sstream>

namespace muri {

std::string_view to_string(Resource r) noexcept {
  switch (r) {
    case Resource::kStorage:
      return "storage";
    case Resource::kCpu:
      return "cpu";
    case Resource::kGpu:
      return "gpu";
    case Resource::kNetwork:
      return "network";
  }
  return "unknown";
}

bool parse_resource(std::string_view text, Resource& out) noexcept {
  for (Resource r : kAllResources) {
    if (text == to_string(r)) {
      out = r;
      return true;
    }
  }
  return false;
}

Duration total(const ResourceVector& v) noexcept {
  Duration sum = 0;
  for (Duration d : v) sum += d;
  return sum;
}

Resource bottleneck(const ResourceVector& v) noexcept {
  int best = 0;
  for (int j = 1; j < kNumResources; ++j) {
    if (v[static_cast<size_t>(j)] > v[static_cast<size_t>(best)]) best = j;
  }
  return static_cast<Resource>(best);
}

std::string to_string(const ResourceVector& v) {
  std::ostringstream os;
  os << '[';
  for (int j = 0; j < kNumResources; ++j) {
    if (j > 0) os << ' ';
    os << to_string(static_cast<Resource>(j)) << '='
       << v[static_cast<size_t>(j)];
  }
  os << ']';
  return os.str();
}

}  // namespace muri
