// Tiny command-line flag parser for the example binaries.
// Supports --name=value and --name value forms plus boolean switches.
// Unknown flags are collected so callers can reject or ignore them.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace muri {

class Flags {
 public:
  // Parses argv; flags start with "--". "--x=1", "--x 1" and bare "--x"
  // (empty value) are accepted. Non-flag tokens become positional args.
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  // Typed getters with defaults; throw std::invalid_argument on a value
  // that does not parse.
  std::string get(const std::string& name,
                  const std::string& fallback = "") const;
  double get_double(const std::string& name, double fallback) const;
  int get_int(const std::string& name, int fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  // Names that were provided but never read; useful for typo detection.
  std::vector<std::string> unread() const;

  const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> read_;
  std::vector<std::string> positional_;
};

}  // namespace muri
