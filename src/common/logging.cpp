#include "common/logging.h"

#include <atomic>

namespace muri {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool parse_log_level(std::string_view text, LogLevel& out) noexcept {
  if (text == "debug") {
    out = LogLevel::kDebug;
  } else if (text == "info") {
    out = LogLevel::kInfo;
  } else if (text == "warn") {
    out = LogLevel::kWarn;
  } else if (text == "error") {
    out = LogLevel::kError;
  } else if (text == "off") {
    out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

namespace {
// Hook state shared with emit(); both sides serialize on log_mutex(), so a
// plain pair is race-free and the hook never observes a torn (fn, ctx).
LogHook g_hook = nullptr;
void* g_hook_ctx = nullptr;
}  // namespace

void set_log_hook(LogHook hook, void* ctx) noexcept {
  std::lock_guard<std::mutex> lock(detail::log_mutex());
  g_hook = hook;
  g_hook_ctx = ctx;
}

namespace detail {

std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

void emit(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(log_mutex());
  std::cerr << "[muri:" << level_name(level) << "] " << message << '\n';
  if (g_hook != nullptr) g_hook(level, message.c_str(), g_hook_ctx);
}

}  // namespace detail
}  // namespace muri
