#include "common/flags.h"

#include <stdexcept>

namespace muri {

Flags::Flags(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(std::move(token));
      continue;
    }
    token = token.substr(2);
    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    // "--name value" unless the next token is itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[token] = argv[++i];
    } else {
      values_[token] = "";
    }
  }
}

bool Flags::has(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  read_[name] = true;
  return true;
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  return it->second;
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

int Flags::get_int(const std::string& name, int fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  try {
    return std::stoi(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name +
                                " expects an integer, got '" + it->second +
                                "'");
  }
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  read_[name] = true;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              v + "'");
}

std::vector<std::string> Flags::unread() const {
  std::vector<std::string> names;
  for (const auto& [name, value] : values_) {
    const auto it = read_.find(name);
    if (it == read_.end() || !it->second) names.push_back(name);
  }
  return names;
}

}  // namespace muri
