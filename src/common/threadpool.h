// Fixed-worker thread pool with a deterministic parallel_for.
//
// Built for the scheduler's round hot path (parallel matching-graph
// construction, concurrent per-bucket grouping): a scheduling round fans
// out index ranges whose iterations write to disjoint, index-owned slots,
// so the *assignment* of chunks to threads may be racy while the *output*
// stays bit-identical to a serial run. The pool therefore promises only:
//
//  - every index in [begin, end) is executed exactly once;
//  - chunk boundaries are a pure function of (range, max_chunks) — see
//    partition() — never of thread timing;
//  - parallel_for returns only after every index has completed, and
//    rethrows the first exception a body threw;
//  - calls from one of the pool's own worker threads run inline (no new
//    tasks), so nested use — a bucket task that itself parallelizes its
//    edge loop — cannot deadlock.
//
// The calling thread participates in the loop, so a pool with W workers
// gives W+1-way concurrency. A pool with 0 workers degenerates to a plain
// serial loop behind the same API.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace muri {

class ThreadPool {
 public:
  // Spawns `workers` threads immediately; 0 means "no threads, run
  // everything inline on the caller".
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int workers() const noexcept { return static_cast<int>(threads_.size()); }

  // Worker threads plus the calling thread.
  int concurrency() const noexcept { return workers() + 1; }

  // True when called from one of this pool's worker threads.
  bool on_worker_thread() const noexcept;

  // Runs body(i) for every i in [begin, end), blocking until all indices
  // have executed. Iterations must only write to locations owned by their
  // index (or otherwise synchronize): chunks are claimed dynamically, so
  // which thread runs an index is unspecified. The first exception thrown
  // by a body is rethrown here after the range drains; remaining chunks
  // are skipped once a failure is recorded.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t)>& body);

  // Deterministic contiguous split of [begin, end) into at most max_chunks
  // chunks whose sizes differ by at most one, larger chunks first. Pure
  // function of its arguments — the unit of work assignment parallel_for
  // uses, exposed for tests.
  static std::vector<std::pair<std::int64_t, std::int64_t>> partition(
      std::int64_t begin, std::int64_t end, int max_chunks);

 private:
  void worker_loop();
  void enqueue(std::function<void()> task);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace muri
