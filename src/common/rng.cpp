#include "common/rng.h"

#include <cassert>
#include <numeric>

namespace muri {

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  assert(!weights.empty());
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  assert(sum > 0.0);
  double x = uniform() * sum;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace muri
