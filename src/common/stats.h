// Summary statistics used by the metrics collector and the bench tables:
// mean, percentiles (tail JCT is the 99th percentile in the paper),
// plus a small time-weighted average accumulator for utilization curves.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace muri {

// Arithmetic mean; 0 for an empty sample.
double mean(const std::vector<double>& xs) noexcept;

// Sample standard deviation; 0 for fewer than two samples.
double stddev(const std::vector<double>& xs) noexcept;

// p-th percentile with linear interpolation, p in [0, 100].
// Returns 0 for an empty sample. Does not require sorted input.
double percentile(std::vector<double> xs, double p);

double min_of(const std::vector<double>& xs) noexcept;
double max_of(const std::vector<double>& xs) noexcept;

// Accumulates a piecewise-constant signal x(t) and reports its
// time-weighted average over the observed span. Used for average queue
// length, blocking index and resource utilization (§6.2, Fig. 8).
class TimeWeightedAverage {
 public:
  // Records that the signal takes `value` from `now` onward.
  void observe(Time now, double value);

  // Closes the signal at `now` and returns the time-weighted mean.
  // Returns 0 if no interval was observed.
  double finalize(Time now);

  // Mean over what has been observed so far without closing.
  double value_at(Time now) const;

  bool empty() const noexcept { return !started_; }

 private:
  bool started_ = false;
  Time last_time_ = 0;
  double last_value_ = 0;
  double weighted_sum_ = 0;
  Duration total_time_ = 0;
};

// A fixed-capacity reservoir of (time, value) samples for plotting
// time series without unbounded memory. Keeps every k-th sample once
// capacity is hit (k doubles each time), preserving temporal order.
class SeriesRecorder {
 public:
  explicit SeriesRecorder(std::size_t capacity = 4096);

  void record(Time t, double value);

  struct Point {
    Time time;
    double value;
  };
  const std::vector<Point>& points() const noexcept { return points_; }

 private:
  std::size_t capacity_;
  std::size_t stride_ = 1;
  std::size_t seen_ = 0;
  std::vector<Point> points_;
};

}  // namespace muri
