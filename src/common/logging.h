// Minimal leveled logger. The simulator is hot-path sensitive, so log calls
// below the active level cost one branch. Not thread-safe by design for the
// simulator; the live runtime serializes through log_locked().
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace muri {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

// Process-wide log level; defaults to kWarn so tests and benches stay quiet.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void emit(LogLevel level, const std::string& message);
std::mutex& log_mutex();
}  // namespace detail

// Usage: MURI_LOG(kInfo) << "scheduled " << n << " jobs";
#define MURI_LOG(level)                                         \
  if (::muri::LogLevel::level < ::muri::log_level()) {          \
  } else                                                        \
    ::muri::LogStatement(::muri::LogLevel::level)

class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement() { detail::emit(level_, stream_.str()); }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace muri
