// Minimal leveled logger. The simulator is hot-path sensitive, so log calls
// below the active level cost one branch. Not thread-safe by design for the
// simulator; the live runtime serializes through log_locked().
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace muri {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

// Process-wide log level; defaults to kWarn so tests and benches stay quiet.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

// Parses "debug" / "info" / "warn" / "error" / "off" (case-sensitive, the
// shared --log-level flag vocabulary). Returns false on unknown names.
bool parse_log_level(std::string_view text, LogLevel& out) noexcept;

// Optional observer invoked (under the log mutex) for every message that
// clears the active level, after it is written to stderr. The observability
// layer uses this to mirror warnings onto the trace timeline
// (obs::attach_log_tracer); anything else that wants a copy of the log
// stream can install one too. Null detaches. The hook must not log.
using LogHook = void (*)(LogLevel level, const char* message, void* ctx);
void set_log_hook(LogHook hook, void* ctx) noexcept;

namespace detail {
void emit(LogLevel level, const std::string& message);
std::mutex& log_mutex();
}  // namespace detail

// Usage: MURI_LOG(kInfo) << "scheduled " << n << " jobs";
#define MURI_LOG(level)                                         \
  if (::muri::LogLevel::level < ::muri::log_level()) {          \
  } else                                                        \
    ::muri::LogStatement(::muri::LogLevel::level)

class LogStatement {
 public:
  explicit LogStatement(LogLevel level) : level_(level) {}
  ~LogStatement() { detail::emit(level_, stream_.str()); }
  LogStatement(const LogStatement&) = delete;
  LogStatement& operator=(const LogStatement&) = delete;

  template <typename T>
  LogStatement& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace muri
