// Cluster model: homogeneous machines with a fixed number of GPUs plus
// per-machine CPU / storage-IO / network capacities, and the GPU placement
// policy of §5 — allocate in descending order of GPU demand, consolidating
// each job (or interleaving group) onto as few machines as possible to
// avoid fragmentation.
//
// Allocation is keyed by an opaque owner id: with interleaving, a *group*
// of jobs owns a GPU set, so the owner is a group, not a job.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace muri {

struct ClusterSpec {
  int num_machines = 8;
  int gpus_per_machine = 8;
  // Informational per-machine capacities (used by the worker monitor and
  // utilization accounting; stages are modeled at full capacity).
  double cpu_cores = 48;
  double storage_mbps = 2000;
  double network_gbps = 100;
};

using OwnerId = std::int64_t;
inline constexpr OwnerId kNoOwner = -1;

class Cluster {
 public:
  explicit Cluster(ClusterSpec spec);

  const ClusterSpec& spec() const noexcept { return spec_; }
  int num_machines() const noexcept { return spec_.num_machines; }
  int total_gpus() const noexcept {
    return spec_.num_machines * spec_.gpus_per_machine;
  }
  int free_gpus() const noexcept { return free_gpus_; }
  int free_gpus_on(MachineId m) const;

  // Fault-domain pool membership: a machine taken out of the pool (crash,
  // blacklist) contributes no free GPUs and is skipped by allocation.
  // Taking a machine out does NOT release its current owners — evict them
  // first (release) so their GPUs do not leak back on recovery.
  void set_machine_available(MachineId m, bool available);
  bool machine_available(MachineId m) const;
  int available_machines() const noexcept { return available_machines_; }
  // GPUs on in-pool machines (allocated or free).
  int available_gpus() const;

  MachineId machine_of(GpuId g) const;
  OwnerId owner_of(GpuId g) const;

  // True if `num_gpus` could be allocated with the consolidation rules
  // below without mutating state.
  bool can_allocate(int num_gpus) const;

  // Allocates `num_gpus` GPUs to `owner`. Placement policy (§5):
  //  - demands of at least one full machine take whole free machines;
  //  - smaller demands go to the feasible machine with the fewest free
  //    GPUs (best fit), never spanning machines.
  // Returns the allocated GPU ids, or an empty vector if infeasible.
  std::vector<GpuId> allocate(OwnerId owner, int num_gpus);

  // Releases everything held by `owner`.
  void release(OwnerId owner);

  // Releases all allocations (the scheduler re-places from scratch each
  // scheduling round, per §5).
  void reset();

  // GPUs currently held by `owner`.
  std::vector<GpuId> gpus_of(OwnerId owner) const;

  // Number of distinct machines hosting `owner` (1 unless the owner spans
  // machines because it needs more than one full machine).
  int machines_used_by(OwnerId owner) const;

  // Fragmentation: number of machines that are partially (but not fully)
  // occupied. Low is good for future large jobs.
  int fragmented_machines() const;

 private:
  GpuId first_gpu(MachineId m) const {
    return m * spec_.gpus_per_machine;
  }

  ClusterSpec spec_;
  std::vector<OwnerId> gpu_owner_;   // indexed by GpuId
  std::vector<int> machine_free_;    // free GPUs per machine (0 when out)
  std::vector<bool> machine_out_;    // out of the allocatable pool
  int available_machines_ = 0;
  int free_gpus_ = 0;
};

}  // namespace muri
