#include "cluster/cluster.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace muri {

Cluster::Cluster(ClusterSpec spec)
    : spec_(spec),
      gpu_owner_(static_cast<size_t>(spec.num_machines) *
                     static_cast<size_t>(spec.gpus_per_machine),
                 kNoOwner),
      machine_free_(static_cast<size_t>(spec.num_machines),
                    spec.gpus_per_machine),
      machine_out_(static_cast<size_t>(spec.num_machines), false),
      available_machines_(spec.num_machines),
      free_gpus_(spec.num_machines * spec.gpus_per_machine) {
  assert(spec.num_machines > 0 && spec.gpus_per_machine > 0);
}

void Cluster::set_machine_available(MachineId m, bool available) {
  assert(m >= 0 && m < spec_.num_machines);
  const auto idx = static_cast<size_t>(m);
  if (machine_out_[idx] == !available) return;
  if (!available) {
    free_gpus_ -= machine_free_[idx];
    machine_free_[idx] = 0;
    machine_out_[idx] = true;
    --available_machines_;
  } else {
    machine_out_[idx] = false;
    ++available_machines_;
    // Restore free slots for GPUs nobody still owns (owners evicted before
    // the machine left the pool keep nothing here).
    int free = 0;
    for (int i = 0; i < spec_.gpus_per_machine; ++i) {
      if (gpu_owner_[static_cast<size_t>(first_gpu(m) + i)] == kNoOwner) {
        ++free;
      }
    }
    machine_free_[idx] = free;
    free_gpus_ += free;
  }
}

bool Cluster::machine_available(MachineId m) const {
  assert(m >= 0 && m < spec_.num_machines);
  return !machine_out_[static_cast<size_t>(m)];
}

int Cluster::available_gpus() const {
  return available_machines_ * spec_.gpus_per_machine;
}

int Cluster::free_gpus_on(MachineId m) const {
  assert(m >= 0 && m < spec_.num_machines);
  return machine_free_[static_cast<size_t>(m)];
}

MachineId Cluster::machine_of(GpuId g) const {
  assert(g >= 0 && g < total_gpus());
  return g / spec_.gpus_per_machine;
}

OwnerId Cluster::owner_of(GpuId g) const {
  assert(g >= 0 && g < total_gpus());
  return gpu_owner_[static_cast<size_t>(g)];
}

bool Cluster::can_allocate(int num_gpus) const {
  assert(num_gpus > 0);
  if (num_gpus > free_gpus_) return false;
  if (num_gpus >= spec_.gpus_per_machine) {
    // Whole free machines only.
    if (num_gpus % spec_.gpus_per_machine != 0) return false;
    int whole_free = 0;
    for (int free : machine_free_) {
      if (free == spec_.gpus_per_machine) ++whole_free;
    }
    return whole_free * spec_.gpus_per_machine >= num_gpus;
  }
  // Must fit within one machine.
  for (int free : machine_free_) {
    if (free >= num_gpus) return true;
  }
  return false;
}

std::vector<GpuId> Cluster::allocate(OwnerId owner, int num_gpus) {
  assert(owner != kNoOwner);
  if (!can_allocate(num_gpus)) return {};

  std::vector<GpuId> granted;
  granted.reserve(static_cast<size_t>(num_gpus));

  auto take_from_machine = [&](MachineId m, int count) {
    int taken = 0;
    for (int i = 0; i < spec_.gpus_per_machine && taken < count; ++i) {
      const GpuId g = first_gpu(m) + i;
      if (gpu_owner_[static_cast<size_t>(g)] == kNoOwner) {
        gpu_owner_[static_cast<size_t>(g)] = owner;
        granted.push_back(g);
        ++taken;
      }
    }
    machine_free_[static_cast<size_t>(m)] -= taken;
    free_gpus_ -= taken;
    assert(taken == count);
  };

  if (num_gpus >= spec_.gpus_per_machine) {
    int remaining = num_gpus;
    for (MachineId m = 0; m < spec_.num_machines && remaining > 0; ++m) {
      if (machine_free_[static_cast<size_t>(m)] == spec_.gpus_per_machine) {
        take_from_machine(m, spec_.gpus_per_machine);
        remaining -= spec_.gpus_per_machine;
      }
    }
    assert(remaining == 0);
  } else {
    // Best fit: the machine with the fewest free GPUs that still fits.
    MachineId best = kInvalidMachine;
    int best_free = std::numeric_limits<int>::max();
    for (MachineId m = 0; m < spec_.num_machines; ++m) {
      const int free = machine_free_[static_cast<size_t>(m)];
      if (free >= num_gpus && free < best_free) {
        best = m;
        best_free = free;
      }
    }
    assert(best != kInvalidMachine);
    take_from_machine(best, num_gpus);
  }
  return granted;
}

void Cluster::release(OwnerId owner) {
  for (GpuId g = 0; g < total_gpus(); ++g) {
    if (gpu_owner_[static_cast<size_t>(g)] == owner) {
      gpu_owner_[static_cast<size_t>(g)] = kNoOwner;
      const auto m = static_cast<size_t>(machine_of(g));
      // GPUs on out-of-pool machines stay unallocatable until recovery.
      if (!machine_out_[m]) {
        ++machine_free_[m];
        ++free_gpus_;
      }
    }
  }
}

void Cluster::reset() {
  std::fill(gpu_owner_.begin(), gpu_owner_.end(), kNoOwner);
  free_gpus_ = 0;
  for (size_t m = 0; m < machine_free_.size(); ++m) {
    machine_free_[m] = machine_out_[m] ? 0 : spec_.gpus_per_machine;
    free_gpus_ += machine_free_[m];
  }
}

std::vector<GpuId> Cluster::gpus_of(OwnerId owner) const {
  std::vector<GpuId> result;
  for (GpuId g = 0; g < total_gpus(); ++g) {
    if (gpu_owner_[static_cast<size_t>(g)] == owner) result.push_back(g);
  }
  return result;
}

int Cluster::machines_used_by(OwnerId owner) const {
  std::vector<bool> used(static_cast<size_t>(spec_.num_machines), false);
  int count = 0;
  for (GpuId g = 0; g < total_gpus(); ++g) {
    if (gpu_owner_[static_cast<size_t>(g)] == owner) {
      const auto m = static_cast<size_t>(machine_of(g));
      if (!used[m]) {
        used[m] = true;
        ++count;
      }
    }
  }
  return count;
}

int Cluster::fragmented_machines() const {
  int count = 0;
  for (int free : machine_free_) {
    if (free > 0 && free < spec_.gpus_per_machine) ++count;
  }
  return count;
}

}  // namespace muri
