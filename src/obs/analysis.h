// Utilization analytics over exported Chrome traces — the "audit it" third
// of src/obs (trace.h records, metrics.h counts, this reconstructs).
//
// The simulator and executor tag every run/stage span with enough context
// (per-resource busy fractions, restart-gate overhead, group incarnation id
// and predicted γ) that analysis is pure arithmetic: no heuristics, no
// model re-evaluation. From one parsed trace this computes
//
//  - per-track (machine), per-resource busy/idle interval sets and busy
//    seconds (a span with busy fraction b on resource r contributes
//    b × (dur − overhead) seconds over its post-gate window);
//  - per group incarnation, the *realized* interleaving efficiency γ:
//    busy seconds over the active window, averaged across the resources
//    the group uses — the same averaging as interleave/group_efficiency,
//    so it is directly comparable to the schedule-time prediction stamped
//    on the spans (`gamma_pred`), and the per-group error realized −
//    predicted;
//  - per job, the JCT breakdown (queueing / running / restart-overhead
//    wall seconds and preemption count) from the lifecycle instants.
//
// The fluid execution model is work-conserving while the rotation schedule
// of Eq. 4 quantizes to stage boundaries, so on noise-free stage timings
// realized γ matches predicted γ to within a few percent and may slightly
// exceed it; perfectly complementary groups match exactly.
//
// All outputs are deterministic functions of the trace bytes: containers
// are keyed and iterated in sorted order and numbers are printed with a
// fixed format, so a fixed-seed run reports byte-identically every time.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/json.h"

namespace muri::obs {

// Half-open [start, end) wall window in seconds (trace timestamps / 1e6).
struct BusyInterval {
  double start = 0;
  double end = 0;
};

// Busy accounting for one (run, track, resource) triple. `track` is the
// trace pid (machine tracks are 10 + machine id; the executor track is 2).
// `run` is the run epoch stamped on the spans: several simulator runs may
// share one tracer with overlapping sim-time windows and reused ids, so
// every table is segmented by it (0 for spans without the tag).
struct ResourceTimeline {
  int run = 0;
  int track = 0;
  std::string label;  // track name from trace metadata, or "track <pid>"
  Resource resource = Resource::kStorage;
  // Fraction-weighted busy seconds: Σ busy_r × (dur − overhead).
  double busy_seconds = 0;
  // Merged wall windows with any activity on this resource; idle time is
  // the report window minus these.
  std::vector<BusyInterval> intervals;
};

// Realized-γ accounting for one group incarnation.
struct GroupGammaStat {
  int run = 0;
  std::int64_t group = 0;
  int track = 0;
  int size = 0;
  bool degraded = false;
  double window_start = 0;
  double window_end = 0;
  // Shared restart-gate stall at the head of the window, excluded from the
  // γ denominator.
  double stall_seconds = 0;
  double gamma_predicted = 0;
  double gamma_realized = 0;
  std::array<double, kNumResources> busy_seconds{};

  double error() const { return gamma_realized - gamma_predicted; }
};

// Offline JCT decomposition for one job (from submit/finish instants and
// run-stage spans): jct = queueing + running + restart overhead.
struct JobJctBreakdown {
  int run = 0;
  int job = 0;
  bool finished = false;
  double submit = 0;
  double finish = 0;  // meaningful only when finished
  double jct_seconds = 0;
  double queueing_seconds = 0;
  double running_seconds = 0;
  double restart_overhead_seconds = 0;
  int preemptions = 0;
};

struct UtilizationReport {
  // Wall window covered by the trace (earliest to latest event).
  double window_start = 0;
  double window_end = 0;
  std::int64_t span_events = 0;

  // Sorted by (run, track, resource).
  std::vector<ResourceTimeline> timelines;
  // Sorted by (run, group id).
  std::vector<GroupGammaStat> groups;
  // Sorted by (run, job id).
  std::vector<JobJctBreakdown> jobs;

  // Aggregates. Busy seconds summed over tracks; γ means are weighted by
  // each group's active window, matching SimResult's averaging.
  std::array<double, kNumResources> busy_seconds{};
  double gamma_realized_mean = 0;
  double gamma_error_mean = 0;
  double gamma_error_max_abs = 0;

  bool empty() const {
    return timelines.empty() && groups.empty() && jobs.empty();
  }
};

// Computes the report from a parsed Chrome trace (the object that
// Tracer::export_json produces). Returns false with a message in `error`
// when the value is not a trace; an event-free trace yields an empty
// report and succeeds.
bool analyze_trace(const JsonValue& root, UtilizationReport& out,
                   std::string* error);

// Renderers. Byte-stable for a given report.
std::string report_text(const UtilizationReport& report);
std::string report_csv(const UtilizationReport& report);
std::string report_json(const UtilizationReport& report);

}  // namespace muri::obs
