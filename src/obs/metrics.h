// Metrics registry — the "count it" half of src/obs.
//
// Named, labeled counters / gauges / fixed-bucket histograms / sample
// summaries with a Prometheus-style text exposition and a JSON snapshot.
// Handles returned by the registry are stable for the registry's lifetime
// and safe to update from any thread: scalar metrics are single atomics,
// histograms are per-bucket atomics, and summaries take a short mutex.
// Asking for the same (name, labels) twice returns the same metric, so
// independent modules can share a series without coordination.
//
// Summaries keep raw samples (bounded) and export quantiles through the
// percentile helpers in common/stats.h — the same math the bench tables
// use, so a p99 in a metrics dump matches a p99 in a table.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace muri::obs {

// Label set attached to a series, e.g. {{"scheduler", "Muri-L"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {
// fetch_add for doubles via CAS: portable to toolchains whose
// atomic<double> lacks native fetch_add, and exactly as deterministic as
// the single-writer sequences we use it in.
inline void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace detail

// Monotonically increasing value (event counts, accumulated seconds).
class Counter {
 public:
  void inc(double delta = 1.0) noexcept { detail::atomic_add(value_, delta); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0};
};

// Instantaneous value (queue length, active groups).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept { detail::atomic_add(value_, delta); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0};
};

// Fixed-bucket histogram. Buckets are the Prometheus convention: an
// observation lands in the first bucket whose upper bound is >= the value
// (`le`, less-or-equal edges), with an implicit +Inf bucket at the end.
class Histogram {
 public:
  // `upper_bounds` must be strictly increasing; the +Inf bucket is
  // appended automatically.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  std::int64_t count() const noexcept;
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  const std::vector<double>& upper_bounds() const noexcept { return bounds_; }
  // Non-cumulative count of bucket i (i == bounds().size() is +Inf).
  std::int64_t bucket_count(std::size_t i) const noexcept;

  // Quantile estimate (q in [0,1]) by linear interpolation inside the
  // bucket containing the target rank; returns 0 with no observations.
  double quantile(double q) const;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> counts_;  // bounds_.size() + 1
  std::atomic<double> sum_{0};
};

// Raw-sample summary with exact quantiles via common/stats.h. Bounded:
// past `capacity` samples it keeps every k-th one (k doubling), like
// SeriesRecorder, so long runs cannot grow it without bound.
class Summary {
 public:
  explicit Summary(std::size_t capacity = 4096);

  void observe(double v);

  std::int64_t count() const;
  double sum() const;
  double mean() const;
  // p in [0, 100], matching common/stats.h percentile().
  double percentile(double p) const;

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::size_t stride_ = 1;
  std::int64_t seen_ = 0;
  double sum_ = 0;
  std::vector<double> samples_;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create. `help` is recorded on first creation; a metric name
  // must keep one kind for the registry's lifetime (asserted).
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> upper_bounds,
                       const Labels& labels = {});
  Summary& summary(const std::string& name, const std::string& help,
                   const Labels& labels = {});

  // Prometheus text exposition format (# HELP / # TYPE / series lines).
  // Histograms expand to _bucket{le=...}/_sum/_count; summaries to
  // {quantile=...}/_sum/_count. Series are sorted by (name, labels), so
  // the output is deterministic for a given metric state.
  std::string prometheus_text() const;

  // One JSON object keyed by series id, for machine-readable dumps.
  std::string json_snapshot() const;

  bool write_prometheus(const std::string& path) const;

 private:
  struct Series;
  Series& get_or_create(const std::string& name, const std::string& help,
                        const Labels& labels, int kind);

  mutable std::mutex mu_;
  // (name, serialized labels) -> series; std::map keeps export order
  // deterministic.
  std::map<std::pair<std::string, std::string>, std::unique_ptr<Series>>
      series_;
};

// Registers the process-identity series every exporting binary shares:
// muri_build_info (constant 1, version/git_sha labels from
// common/build_info.h) and muri_process_uptime_seconds. Refreshes the
// uptime gauge on every call, so call it again just before exporting.
void export_build_info(MetricsRegistry& registry);

}  // namespace muri::obs
