#include "obs/slo.h"

#include <cstdio>

#include "obs/metrics.h"

namespace muri::obs {

namespace {

void append_number(std::string& out, double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 &&
      v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

}  // namespace

SloTracker::SloTracker(const SloConfig& cfg, MetricsRegistry* registry)
    : window_s_(cfg.window_s > 0 ? cfg.window_s : 60.0),
      registry_(registry) {
  auto add = [&](const char* name, double threshold, Reduce reduce) {
    if (threshold < 0) return;
    Entry e;
    e.state.name = name;
    e.state.threshold = threshold;
    e.state.reduce = reduce;
    entries_.push_back(std::move(e));
  };
  add("queue_wait_s", cfg.queue_wait_p99_s, Reduce::kP99);
  add("round_latency_s", cfg.round_latency_p99_s, Reduce::kP99);
  add("wal_fsync_s", cfg.fsync_max_s, Reduce::kMax);
  add("loop_stall_s", cfg.loop_stall_max_s, Reduce::kMax);
}

void SloTracker::observe(const std::string& target, double t, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.state.name == target) {
      e.samples.append(t, v);
      return;
    }
  }
}

void SloTracker::evaluate_locked(double now) {
  for (Entry& e : entries_) {
    const WindowStats ws = e.samples.stats(now, window_s_);
    e.state.samples = ws.count;
    if (ws.count == 0) {
      // No data in window: the target is not being missed, but keep the
      // violating latch only until evidence clears it — an empty window
      // *is* evidence of recovery for event-driven series.
      e.state.value = 0;
      e.state.burn_rate = 0;
      e.state.violating = false;
    } else {
      e.state.value =
          e.state.reduce == Reduce::kP99 ? ws.p99 : ws.max;
      e.state.burn_rate =
          e.state.threshold > 0 ? e.state.value / e.state.threshold : 0;
      const bool violating = e.state.value > e.state.threshold;
      if (violating && !e.state.violating) ++e.state.violations;
      e.state.violating = violating;
    }
    if (registry_) {
      const Labels labels{{"target", e.state.name}};
      auto& violations = registry_->counter(
          "muri_slo_violations_total",
          "SLO ok->violating transitions per target.", labels);
      const double delta =
          static_cast<double>(e.state.violations) - violations.value();
      if (delta > 0) violations.inc(delta);
      registry_
          ->gauge("muri_slo_burn_rate",
                  "Observed value / threshold per SLO target.", labels)
          .set(e.state.burn_rate);
      registry_
          ->gauge("muri_slo_violating",
                  "1 when the SLO target is currently violated.", labels)
          .set(e.state.violating ? 1.0 : 0.0);
    }
  }
}

void SloTracker::evaluate(double now) {
  std::lock_guard<std::mutex> lock(mu_);
  evaluate_locked(now);
}

std::vector<SloTracker::TargetState> SloTracker::targets() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TargetState> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.state);
  return out;
}

bool SloTracker::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !entries_.empty();
}

bool SloTracker::ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (e.state.violating) return false;
  }
  return true;
}

std::string SloTracker::reason() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const Entry& e : entries_) {
    if (!e.state.violating) continue;
    if (!out.empty()) out += ',';
    out += e.state.name;
  }
  return out;
}

std::int64_t SloTracker::violations_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::int64_t total = 0;
  for (const Entry& e : entries_) total += e.state.violations;
  return total;
}

std::string SloTracker::json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"enabled\":";
  out += entries_.empty() ? "false" : "true";
  bool violating = false;
  for (const Entry& e : entries_) violating = violating || e.state.violating;
  out += ",\"status\":\"";
  out += violating ? "violating" : "ok";
  out += "\",\"window_s\":";
  append_number(out, window_s_);
  out += ",\"targets\":[";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const TargetState& s = entries_[i].state;
    if (i) out += ',';
    out += "{\"name\":\"";
    out += s.name;
    out += "\",\"reduce\":\"";
    out += s.reduce == Reduce::kP99 ? "p99" : "max";
    out += "\",\"threshold\":";
    append_number(out, s.threshold);
    out += ",\"value\":";
    append_number(out, s.value);
    out += ",\"burn_rate\":";
    append_number(out, s.burn_rate);
    out += ",\"violating\":";
    out += s.violating ? "true" : "false";
    out += ",\"violations\":";
    append_number(out, static_cast<double>(s.violations));
    out += ",\"samples\":";
    append_number(out, static_cast<double>(s.samples));
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace muri::obs
