// Per-job causal tracing & wait-state attribution — the per-job quarter
// of src/obs (trace.h shows machines, metrics.h counts, provenance.h
// explains rounds; this one follows a single job end to end).
//
// A JobTraceLog turns lifecycle events — submit, every scheduling-round
// verdict, placement/restart, preemption, eviction, fault, degraded
// continuation, straggler window, finish — into one contiguous span
// timeline per job. Spans partition the interval [submit, finish]: each
// span's end is the next span's start, the first starts at submit and the
// last ends at finish, so bucket seconds plus run seconds sum to the
// realized JCT *by construction*. Every non-running interval is
// classified into exactly one wait bucket:
//
//   awaiting_round  in the system before any round has judged it
//   no_capacity     a round ran; demand exceeds the allocatable pool
//   lost_priority   capacity existed; higher-priority work took it
//   deferred        the scheduler explicitly deferred it (beyond the
//                   Muri candidate prefix — the "deferred" record)
//   preempted       displaced from a placement it held
//   faulted         evicted by a machine crash or failed (job fault)
//
// and every placed interval into exactly one of:
//
//   restart         inside the restart-penalty gate (placed, stalled)
//   run             placed and progressing
//   degraded        progressing in a degraded-group continuation
//
// Spans carry the DecisionLog round ids that produced (or re-confirmed)
// them, the group co-members and the scheduler's predicted γ for placed
// spans, and the straggler inflation factor — the causal chain from
// decision to realized time.
//
// Two drivers feed the same state machine:
//
//  - live: the simulator and the service engine/daemon call the typed
//    event methods directly via a nullable JobTraceLog* (null = no-op;
//    attaching never perturbs results — the obs bit-identity contract).
//  - fold: build_job_traces() replays a parsed decision log
//    (simulator or daemon WAL) through the same methods, so
//    `muri-report timeline` reconstructs the identical spans offline.
//    Exact agreement leans on two record types the emitters write for
//    this purpose: "wait" (per-round bucket verdicts for every waiting
//    job) and "straggler" (per-job factor changes), plus the
//    "restart_penalty" field on sim_start/daemon_start (older logs fold
//    with a zero gate: restart time shows up as run time).
//
// All renderers are byte-stable: a fixed-seed run produces the same
// bytes for any num_threads, with doubles in the shared shortest
// round-trip format.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/provenance.h"

namespace muri::obs {

class MetricsRegistry;

// One bucket per span; wait kinds first, placed kinds last.
enum class SpanKind : std::uint8_t {
  kAwaitingRound = 0,
  kNoCapacity,
  kLostPriority,
  kDeferred,
  kPreempted,
  kFaulted,
  kRestart,
  kRun,
  kDegraded,
};
inline constexpr int kNumSpanKinds = 9;

// Stable snake_case name ("awaiting_round", "run", ...); never null.
const char* span_kind_name(SpanKind kind) noexcept;
// Reverse lookup; false on unknown names.
bool span_kind_from_name(std::string_view name, SpanKind& out) noexcept;
// True for the six queued/displaced kinds, false for the placed three.
bool span_kind_is_wait(SpanKind kind) noexcept;

// The shared post-round verdict for a job left waiting: the scheduler
// explicitly deferred it, its demand exceeds the allocatable pool, or it
// simply lost the priority race. Mutually exclusive and exhaustive; both
// the simulator and the service engine classify with this exact function
// so the "wait" records they emit agree.
SpanKind classify_wait(bool deferred_by_scheduler, int need_gpus,
                       int capacity_gpus) noexcept;

// One attributed span. Placed spans carry group/γ/straggler; wait spans
// leave them at their defaults.
struct TimelineSpan {
  SpanKind kind = SpanKind::kAwaitingRound;
  double start = 0;
  double end = 0;
  // Decision-log round ids that produced or re-confirmed this state, in
  // order. Matches explain-job/explain-round numbering.
  std::vector<std::int64_t> rounds;
  // Sorted co-members at placement, including the job itself.
  std::vector<std::int64_t> group;
  std::string mode;        // execution mode of the placement
  double gamma = 1.0;      // scheduler-predicted γ of the group
  double straggler = 1.0;  // period inflation from straggler windows

  double seconds() const noexcept { return end - start; }
};

// A job's full attributed timeline (restart-gate splitting applied).
struct JobTimeline {
  std::int64_t job = -1;
  double submit = 0;
  double finish = 0;  // finish/cancel instant; meaningless while in flight
  // Daemon HTTP-accept instant (< 0 when unknown); the accept→submit gap
  // is the admission-queue wait, reported separately from the JCT buckets
  // (the finish record's jct runs submit→finish).
  double accept = -1;
  bool finished = false;
  bool cancelled = false;
  // Restored from a WAL after a crash: spans only cover the post-resume
  // era, so the buckets==JCT invariant is not checkable.
  bool restored = false;
  // The finish record's jct (< 0 until finished).
  double reported_jct = -1;
  std::array<double, kNumSpanKinds> bucket_seconds{};
  std::vector<TimelineSpan> spans;

  double jct() const noexcept { return finish - submit; }
  double total_seconds() const noexcept {
    double s = 0;
    for (const double b : bucket_seconds) s += b;
    return s;
  }
};

// Checks the attribution invariant: spans contiguous (each end is the
// next start), first span starts at submit, last ends at finish, buckets
// sum to the span total, and — for finished, non-restored jobs — the
// total matches the reported JCT within float-sum tolerance. Returns ""
// when it holds, else a diagnostic.
std::string validate_timeline(const JobTimeline& t);

class JobTraceLog {
 public:
  JobTraceLog() = default;
  JobTraceLog(const JobTraceLog&) = delete;
  JobTraceLog& operator=(const JobTraceLog&) = delete;

  // Optional aggregate sink: each finished job observes its per-bucket
  // seconds into `muri_job_wait_bucket_seconds{bucket=...}` histograms.
  // Call before feeding events.
  void set_metrics(MetricsRegistry* metrics) noexcept { metrics_ = metrics; }
  // The restart-penalty gate opened at every (re)placement. The live
  // emitters pass their configured penalty; the fold reads it from the
  // sim_start/daemon_start record (0 when absent).
  void set_restart_penalty(double seconds) noexcept {
    restart_penalty_ = seconds;
  }
  double restart_penalty() const noexcept { return restart_penalty_; }

  // -- Lifecycle events (all thread-safe; unknown jobs are ignored) --

  // Daemon HTTP accept, ahead of the engine submit.
  void accepted(std::int64_t job, double t);
  // The job enters the scheduler's queue; opens the awaiting_round span.
  // `restored` marks WAL-recovered jobs (pre-crash time unattributable).
  void submitted(std::int64_t job, double t, bool restored = false);
  // A round judged the job and left it waiting.
  void wait_verdict(std::int64_t job, double t, std::int64_t round,
                    SpanKind bucket);
  // The job is in the round's placed plan. Re-placement with the same
  // group and mode merges into the open span (matching the executor's
  // "unchanged" test); a changed configuration — or a first placement —
  // restarts it behind a fresh gate at t + restart_penalty().
  void placed(std::int64_t job, double t, std::int64_t round,
              const std::vector<std::int64_t>& group, double gamma,
              std::string_view mode);
  // Mid-round degraded continuation: same GPUs, new configuration, old
  // gate kept. Empty mode inherits the open span's.
  void degraded_continue(std::int64_t job, double t, std::int64_t round,
                         const std::vector<std::int64_t>& group,
                         double gamma, std::string_view mode);
  // Straggler inflation factor changed while placed.
  void straggler(std::int64_t job, double t, double factor);
  void preempted(std::int64_t job, double t, std::int64_t round);
  // Machine eviction or job fault: back to the queue under `faulted`.
  void faulted(std::int64_t job, double t, std::int64_t round);
  void finished(std::int64_t job, double t, double reported_jct);
  void cancelled(std::int64_t job, double t);

  // Drops every job (a new run begins in a shared log). Aggregates and
  // the metrics registry attachment survive.
  void clear();

  // -- Snapshots (attributed, restart-gate split applied) --

  // All jobs, ascending by id. In-flight jobs carry their open span
  // truncated at its start (zero length) — render `timelines()` of a
  // finished run for the invariant-checked picture.
  std::vector<JobTimeline> timelines() const;
  bool timeline(std::int64_t job, JobTimeline& out) const;
  // Aggregate bucket seconds over finished jobs (cancelled excluded).
  std::array<double, kNumSpanKinds> totals(
      std::int64_t* finished_jobs = nullptr) const;

 private:
  struct RawSpan {
    SpanKind kind = SpanKind::kAwaitingRound;
    double start = 0;
    double end = 0;
    bool open = false;
    std::vector<std::int64_t> rounds;
    std::vector<std::int64_t> group;
    std::string mode;
    double gamma = 1.0;
    double straggler = 1.0;
    double gate_until = 0;  // placed spans only
  };
  struct State {
    std::int64_t job = -1;
    double accept = -1;
    double submit = 0;
    double finish = 0;
    bool placed = false;
    bool finished = false;
    bool cancelled = false;
    bool restored = false;
    double reported_jct = -1;
    double cur_straggler = 1.0;
    std::vector<RawSpan> spans;
  };

  State* live(std::int64_t job);
  static void close_open(State& s, double t);
  static void open_span(State& s, RawSpan span);
  static JobTimeline attribute(const State& s);
  void finalize_locked(State& s);

  mutable std::mutex mu_;
  std::map<std::int64_t, State> jobs_;
  MetricsRegistry* metrics_ = nullptr;
  double restart_penalty_ = 0;
  std::array<double, kNumSpanKinds> totals_{};
  std::int64_t finished_jobs_ = 0;
};

// Replays a parsed decision log (simulator run or daemon WAL) through
// `out`, producing the same spans the live recorder saw. `out` should be
// freshly constructed; its restart penalty is taken from the
// sim_start/daemon_start record when present.
void build_job_traces(const std::vector<DecisionRecord>& records,
                      JobTraceLog& out);

// -- Byte-stable renderers --

// Human waterfall: one header line, one row per span, bucket totals.
std::string timeline_text(const JobTimeline& t);
// "job,kind,start,end,seconds,rounds,group,mode,gamma,straggler" rows;
// rounds/group joined with ';'.
std::string timeline_csv(const std::vector<JobTimeline>& ts);
// One job as a JSON object (spans, buckets, validity).
std::string timeline_json(const JobTimeline& t);
// {"jobs":[...],"finished":N,"totals":{bucket:seconds}}.
std::string timelines_json(const std::vector<JobTimeline>& ts);
// Chrome trace_event export: one pid (track) per job, complete events
// named by bucket, cat "jobtrace". Passes validate_chrome_trace.
std::string chrome_trace_json(const std::vector<JobTimeline>& ts);

}  // namespace muri::obs
