// Decision provenance — the "why" quarter of src/obs (trace.h shows what
// happened, metrics.h counts it, analysis.h audits it, this explains it).
//
// A DecisionLog is an append-only, structured record of every choice a
// scheduling round made: the priority scores that ordered the queue, the
// per-bucket candidate sets, every γ edge weight offered to the matching
// graph, each Blossom round's matched/merged/unmatched nodes, the winning
// groups with predicted γ, and the simulator's placement outcomes
// (descending-GPU slot chosen, displaced victims, evictions with cause).
// Export is JSONL: one self-contained JSON object per line, so the log
// streams, greps, and diffs like a log file while staying machine-
// parseable by the src/obs/json parser.
//
// Design constraints (DESIGN.md "Decision provenance"):
//
//  - Null is free: a null DecisionLog* in MuriOptions / SimOptions /
//    ExecOptions skips every record call, and attaching a log never
//    perturbs the decisions it records — plans and SimResult are
//    bit-identical either way.
//  - Byte-stable: records carry no wall-clock timestamps — only round
//    ids, simulated time, and the deterministic doubles already computed
//    by the scheduler — and doubles print in the same shortest-round-trip
//    format the trace exporter uses. A fixed-seed run dumps a
//    byte-identical log every time, for any num_threads.
//  - Cross-linked: every record carries the round id that the tracer
//    stamps on its scheduler-track round spans ("round" arg), so a
//    Perfetto timeline and a provenance log index into each other.
//
// Record catalog (field "type"; every record also carries integer
// "round"):
//
//   sim_start     t, jobs, machines, gpus, interval [, restart_penalty]
//                                                    (run lifecycle)
//   arrival       t, job, gpus
//   round_start   scheduler, policy, queue, capacity
//   priority      policy, job:[ids], score:[doubles]   (queue order)
//   bucket        gpus, jobs:[ids]                     (candidate set)
//   match_round   gpus, stage, nodes:[[ids]], edges:[[u,v,gamma]],
//                 matched:[[u,v]], unmatched:[node], fallback
//   group         jobs:[ids], gpus, mode, gamma, priority, admitted,
//                 reason (rejections only), budget_left
//   deferred      jobs:[ids], reason                   (beyond the prefix)
//   round_end     groups, admitted, rejected, contended
//   placement     t, jobs:[ids], gpus, mode, machines:[ids], owner
//   placement_skip t, jobs:[ids], gpus, reason, available_gpus
//   preempt       t, job, reason
//   restart       t, job, reason
//   evict         t, job, machine, reason
//   fault         t, job, reason
//   machine_down  t, machine                          (fault domains)
//   machine_up    t, machine
//   degraded_continue t, jobs:[ids], gamma [, mode]
//   finish        t, job, jct, queueing, running, restart_overhead,
//                 preemptions
//   sim_end       t, makespan, finished, unfinished
//   exec_group    names:[strings], slots, offsets, mode  (live executor)
//   exec_result   names:[strings], gamma, killed
//   job_submit    t, job, model, gpus, iterations [, name]  (service daemon)
//   job_cancel    t, job, reason
//   job_progress  t, job, done          (graceful-shutdown checkpoint)
//   job_restore   t, job, done          (WAL recovery re-admission)
//   daemon_start  t, machines, gpus [, resumed, restart_penalty]
//   daemon_stop   t [, reason]
//   wait          t, job:[ids], bucket:[strings]  (per-job tracing; one
//                 post-round verdict per waiting job, ids ascending)
//   straggler     t, job, factor        (period-inflation change)
//
// Edge/matched indices address the sibling "nodes" arrays of the same
// record; everything else is in job ids.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace muri::obs {

// Appends `v` to `out` in the byte-stable JSON number format shared by
// the obs exporters: integers plain, everything else shortest
// round-trippable %.17g.
void append_json_double(std::string& out, double v);

class DecisionLog {
 public:
  // One record under construction. Obtained from DecisionLog::entry();
  // commits to the log when it goes out of scope (end of the chained
  // full expression, in the idiomatic use). Keys must be JSON-safe
  // literals; string values are escaped.
  class Entry {
   public:
    ~Entry();
    Entry(Entry&& other) noexcept;
    Entry(const Entry&) = delete;
    Entry& operator=(const Entry&) = delete;
    Entry& operator=(Entry&&) = delete;

    Entry& num(const char* key, double v);
    Entry& integer(const char* key, std::int64_t v);
    Entry& str(const char* key, std::string_view v);
    // Arrays of integers (machine lists, node indices, job ids).
    Entry& ints(const char* key, const std::vector<int>& v);
    Entry& ids(const char* key, const std::vector<std::int64_t>& v);
    Entry& nums(const char* key, const std::vector<double>& v);
    Entry& strs(const char* key, const std::vector<std::string>& v);
    // Pre-serialized JSON value (nested arrays built by the caller).
    Entry& raw(const char* key, std::string_view json);

   private:
    friend class DecisionLog;
    Entry(DecisionLog* log, std::string line) noexcept
        : log_(log), line_(std::move(line)) {}

    DecisionLog* log_;
    std::string line_;
  };

  // Durable tap (src/recovery): every committed record line is forwarded
  // — without the trailing newline — under the same lock that orders the
  // in-memory log, so a sink observes records in exactly jsonl() order.
  // on_record() runs inside Entry's destructor; it must not throw and
  // must not call back into this DecisionLog.
  class Sink {
   public:
    virtual ~Sink() = default;
    virtual void on_record(std::string_view line) = 0;
  };

  DecisionLog() = default;

  DecisionLog(const DecisionLog&) = delete;
  DecisionLog& operator=(const DecisionLog&) = delete;

  // Round bookkeeping. A scheduler calls begin_round() once at the top of
  // each schedule() invocation; everyone else (the simulator's placement
  // and preemption records, the explain queries) reads current_round().
  // Ids are 1-based and never reused; a fresh log starts at round 1.
  std::int64_t begin_round() noexcept {
    return round_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  std::int64_t current_round() const noexcept {
    return round_.load(std::memory_order_relaxed);
  }
  // Continues round numbering from a prior log (daemon restart: the
  // recovered WAL's highest round becomes the floor, so resumed rounds
  // never reuse ids). Never moves the counter backwards.
  void resume_round(std::int64_t round) noexcept {
    std::int64_t cur = round_.load(std::memory_order_relaxed);
    while (cur < round &&
           !round_.compare_exchange_weak(cur, round,
                                         std::memory_order_relaxed)) {
    }
  }

  // Starts a record of `type`, stamped with current_round(). Records are
  // appended in commit order; concurrent writers are safe but the
  // schedulers/simulator serialize their rounds, so logs from fixed-seed
  // runs are byte-identical.
  Entry entry(std::string_view type);

  // Committed record count.
  std::int64_t records() const;

  // The full JSONL dump (one '\n'-terminated line per record).
  std::string jsonl() const;

  // Writes jsonl() to `path`; false on I/O failure.
  bool write_jsonl(const std::string& path) const;

  // Drops all records and resets the round counter. The sink, if any,
  // stays attached (it is transport, not content).
  void clear();

  // Attaches (or, with null, detaches) the durable tap. The sink must
  // outlive the log or be detached first.
  void set_sink(Sink* sink);

 private:
  friend class Entry;
  void append(std::string line);

  std::atomic<std::int64_t> round_{0};
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
  Sink* sink_ = nullptr;
};

// One parsed JSONL record: the JSON value plus the original line bytes
// (so queries can re-emit records verbatim, byte-stably).
struct DecisionRecord {
  JsonValue value;
  std::string raw;
};

// Parses a decisions JSONL dump (blank lines ignored). On failure returns
// false with a 1-based line number and message in `error`.
//
// A non-null `tail_warning` opts into torn-tail tolerance: a line that
// fails to parse *and* has nothing but blank lines after it — the
// signature of a crash or disk-full mid-append — is dropped instead of
// failing the whole file, and `tail_warning` receives a diagnostic with
// the byte offset where the valid prefix ends. `tail_warning` is cleared
// when the dump is clean. Errors anywhere before the final line still
// fail: only a torn tail is survivable, corruption in the middle is not.
bool parse_decision_log(std::string_view jsonl,
                        std::vector<DecisionRecord>& out,
                        std::string* error = nullptr,
                        std::string* tail_warning = nullptr);

// Schema check for a decisions JSONL dump: every record must be an object
// carrying a string "type" and a non-negative integer "round", and the
// per-type required fields of the catalog above must be present with the
// right JSON types. Returns false with a diagnostic in `error`.
// `tail_warning` has the parse_decision_log contract, extended to schema
// checks: a final record that parses but fails the schema is also
// reported as a warning (with its byte offset) rather than an error.
bool validate_decision_log(std::string_view jsonl,
                           std::string* error = nullptr,
                           std::string* tail_warning = nullptr);

// Query: reconstructs one job's full decision history — the rounds it was
// queued with its priority score, the candidate pairings considered with
// their γ edge weights (matched partner marked, rejected alternatives
// listed), the groups it landed in with predicted γ and admission
// outcome, and every placement / preemption / eviction / fault with its
// cause. Returns "" when the log holds no record mentioning the job.
std::string explain_job_text(const std::vector<DecisionRecord>& records,
                             std::int64_t job);
// JSON form: {"job":N,"rounds":[{"round":R,"records":[...]}]} with the
// records embedded verbatim.
std::string explain_job_json(const std::vector<DecisionRecord>& records,
                             std::int64_t job);

// Query: renders everything one round decided — queue and priorities,
// candidate buckets, each matching round's nodes/edges/merges, the groups
// formed or rejected, and the resulting placements and preemptions.
// Returns "" when the log holds no record for the round.
std::string explain_round_text(const std::vector<DecisionRecord>& records,
                               std::int64_t round);
// JSON form: {"round":N,"records":[...]} with records embedded verbatim.
std::string explain_round_json(const std::vector<DecisionRecord>& records,
                               std::int64_t round);

}  // namespace muri::obs
