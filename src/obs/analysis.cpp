#include "obs/analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <tuple>

namespace muri::obs {

namespace {

constexpr double kUs = 1e-6;

// Track layout mirror of trace.h's machine_track(): machine m exports as
// pid 10 + m. Used only for fallback labels when metadata is absent.
constexpr int kMachineTrackBase = 10;

struct GroupAgg {
  int track = 0;
  int size = 0;
  bool degraded = false;
  double window_start = 0;
  double window_end = 0;
  double gamma_predicted = 0;
  std::array<double, kNumResources> busy{};
  // Per-member restart-gate overhead; the group-level stall is the max
  // (members share one gate, so each member's sum re-measures it).
  std::map<int, double> member_overhead;
};

struct JobAgg {
  bool has_submit = false;
  bool has_finish = false;
  double submit = 0;
  double finish = 0;
  double placed_seconds = 0;    // Σ span durations
  double overhead_seconds = 0;  // Σ span restart-gate overheads
  int preemptions = 0;
};

double arg_number(const JsonValue& args, const char* key, double fallback) {
  const JsonValue& v = args.at(key);
  return v.is_number() ? v.number : fallback;
}

void merge_intervals(std::vector<BusyInterval>& intervals) {
  std::sort(intervals.begin(), intervals.end(),
            [](const BusyInterval& a, const BusyInterval& b) {
              return a.start != b.start ? a.start < b.start : a.end < b.end;
            });
  std::vector<BusyInterval> merged;
  for (const BusyInterval& iv : intervals) {
    if (!merged.empty() && iv.start <= merged.back().end + 1e-9) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  intervals = std::move(merged);
}

void append_fixed(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out += buf;
}

void append_compact(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

bool analyze_trace(const JsonValue& root, UtilizationReport& out,
                   std::string* error) {
  out = UtilizationReport{};
  if (!root.is_object()) {
    if (error != nullptr) *error = "trace root is not an object";
    return false;
  }
  const JsonValue& events = root.at("traceEvents");
  if (!events.is_array()) {
    if (error != nullptr) *error = "traceEvents missing or not an array";
    return false;
  }

  std::map<int, std::string> track_labels;
  // (run, track, resource) -> accumulated busy + raw intervals.
  std::map<std::tuple<int, int, int>, ResourceTimeline> timelines;
  // (run, group id) and (run, job id): run epochs separate the reused ids
  // of back-to-back runs sharing one tracer.
  std::map<std::pair<int, std::int64_t>, GroupAgg> groups;
  std::map<std::pair<int, int>, JobAgg> jobs;
  double window_start = 0, window_end = 0;
  bool any_event = false;

  auto observe_window = [&](double start, double end) {
    if (!any_event) {
      window_start = start;
      window_end = end;
      any_event = true;
    } else {
      window_start = std::min(window_start, start);
      window_end = std::max(window_end, end);
    }
  };

  auto timeline_for = [&](int run, int track,
                          int resource) -> ResourceTimeline& {
    ResourceTimeline& tl = timelines[{run, track, resource}];
    tl.run = run;
    tl.track = track;
    tl.resource = static_cast<Resource>(resource);
    return tl;
  };

  for (const JsonValue& e : events.array) {
    if (!e.is_object()) {
      if (error != nullptr) *error = "trace event is not an object";
      return false;
    }
    const std::string& ph = e.at("ph").string;
    const std::string& name = e.at("name").string;
    const int pid = static_cast<int>(e.at("pid").number);
    const int tid = static_cast<int>(e.at("tid").number);
    const JsonValue& args = e.at("args");

    if (ph == "M") {
      if (name == "process_name" && args.at("name").is_string()) {
        track_labels[pid] = args.at("name").string;
      }
      continue;
    }
    if (!e.at("ts").is_number()) continue;
    const double ts = e.at("ts").number * kUs;

    if (ph == "X" && name == "run-stage") {
      // Simulator span: busy fractions + restart-gate overhead + group
      // incarnation tags stamped by the sim (sim/simulator.cpp).
      const double dur = e.at("dur").number * kUs;
      observe_window(ts, ts + dur);
      ++out.span_events;
      const int run = static_cast<int>(arg_number(args, "run", 0.0));
      const double overhead =
          std::clamp(arg_number(args, "overhead", 0.0), 0.0, dur);
      const double effective = dur - overhead;
      const double busy_fraction[kNumResources] = {
          arg_number(args, "busy_storage", 0.0),
          arg_number(args, "busy_cpu", 0.0),
          arg_number(args, "busy_gpu", 0.0),
          arg_number(args, "busy_net", 0.0),
      };
      for (int r = 0; r < kNumResources; ++r) {
        if (busy_fraction[r] <= 0) continue;
        ResourceTimeline& tl = timeline_for(run, pid, r);
        tl.busy_seconds += busy_fraction[r] * effective;
        if (effective > 0) {
          tl.intervals.push_back({ts + overhead, ts + dur});
        }
      }

      JobAgg& job = jobs[{run, tid}];
      job.placed_seconds += dur;
      job.overhead_seconds += overhead;

      const double gid = arg_number(args, "group", -1.0);
      if (gid >= 0) {
        GroupAgg& g = groups[{run, static_cast<std::int64_t>(gid)}];
        if (g.size == 0) {
          g.track = pid;
          g.window_start = ts;
          g.window_end = ts + dur;
        } else {
          g.window_start = std::min(g.window_start, ts);
          g.window_end = std::max(g.window_end, ts + dur);
        }
        g.size = static_cast<int>(arg_number(args, "group_size", 1.0));
        g.degraded =
            g.degraded || arg_number(args, "degraded", 0.0) > 0;
        g.gamma_predicted = arg_number(args, "gamma_pred", 0.0);
        g.member_overhead[tid] += overhead;
        for (int r = 0; r < kNumResources; ++r) {
          g.busy[static_cast<size_t>(r)] += busy_fraction[r] * effective;
        }
      }
      continue;
    }

    if (ph == "X" && e.at("cat").string == "stage") {
      // Executor stage span: one resource fully busy for the span (the
      // lane blocks on the stage); tagged with its resource index.
      const double dur = e.at("dur").number * kUs;
      observe_window(ts, ts + dur);
      ++out.span_events;
      Resource r = Resource::kStorage;
      const double ri = arg_number(args, "resource", -1.0);
      if (ri >= 0 && ri < kNumResources) {
        r = static_cast<Resource>(static_cast<int>(ri));
      } else if (!parse_resource(name, r)) {
        continue;
      }
      const int run = static_cast<int>(arg_number(args, "run", 0.0));
      ResourceTimeline& tl = timeline_for(run, pid, static_cast<int>(r));
      tl.busy_seconds += dur;
      if (dur > 0) tl.intervals.push_back({ts, ts + dur});
      continue;
    }

    if (ph == "i" && e.at("cat").string == "job") {
      observe_window(ts, ts);
      const int run = static_cast<int>(arg_number(args, "run", 0.0));
      JobAgg& job = jobs[{run, tid}];
      if (name == "submit") {
        if (!job.has_submit || ts < job.submit) job.submit = ts;
        job.has_submit = true;
      } else if (name == "finish") {
        job.finish = ts;
        job.has_finish = true;
      } else if (name == "preempt" || name == "evict") {
        ++job.preemptions;
      }
      continue;
    }

    if (ph == "X" || ph == "i" || ph == "C") {
      const double dur =
          ph == "X" && e.at("dur").is_number() ? e.at("dur").number * kUs : 0;
      observe_window(ts, ts + dur);
    }
  }

  out.window_start = any_event ? window_start : 0;
  out.window_end = any_event ? window_end : 0;

  for (auto& [key, tl] : timelines) {
    merge_intervals(tl.intervals);
    const auto label = track_labels.find(tl.track);
    if (label != track_labels.end()) {
      tl.label = label->second;
    } else if (tl.track >= kMachineTrackBase) {
      tl.label = "machine " + std::to_string(tl.track - kMachineTrackBase);
    } else {
      tl.label = "track " + std::to_string(tl.track);
    }
    out.busy_seconds[static_cast<size_t>(tl.resource)] += tl.busy_seconds;
    out.timelines.push_back(std::move(tl));
  }

  double weight = 0, realized_sum = 0, error_sum = 0;
  for (const auto& [key, g] : groups) {
    GroupGammaStat stat;
    stat.run = key.first;
    stat.group = key.second;
    stat.track = g.track;
    stat.size = g.size;
    stat.degraded = g.degraded;
    stat.window_start = g.window_start;
    stat.window_end = g.window_end;
    stat.gamma_predicted = g.gamma_predicted;
    stat.busy_seconds = g.busy;
    for (const auto& [member, overhead] : g.member_overhead) {
      stat.stall_seconds = std::max(stat.stall_seconds, overhead);
    }
    const double wall = g.window_end - g.window_start;
    const double active_window =
        wall - std::clamp(stat.stall_seconds, 0.0, wall);
    int used = 0;
    double fraction_sum = 0;
    for (int r = 0; r < kNumResources; ++r) {
      const double busy = g.busy[static_cast<size_t>(r)];
      if (busy <= 0) continue;
      ++used;
      if (active_window > 0) {
        fraction_sum += std::min(busy / active_window, 1.0);
      }
    }
    if (used > 0 && active_window > 0) {
      stat.gamma_realized = fraction_sum / used;
      realized_sum += stat.gamma_realized * active_window;
      error_sum += stat.error() * active_window;
      weight += active_window;
      out.gamma_error_max_abs =
          std::max(out.gamma_error_max_abs, std::abs(stat.error()));
    }
    out.groups.push_back(std::move(stat));
  }
  if (weight > 0) {
    out.gamma_realized_mean = realized_sum / weight;
    out.gamma_error_mean = error_sum / weight;
  }

  for (const auto& [key, agg] : jobs) {
    JobJctBreakdown b;
    b.run = key.first;
    b.job = key.second;
    b.finished = agg.has_submit && agg.has_finish;
    b.submit = agg.submit;
    b.finish = agg.finish;
    b.restart_overhead_seconds = agg.overhead_seconds;
    b.running_seconds =
        std::max(agg.placed_seconds - agg.overhead_seconds, 0.0);
    b.preemptions = agg.preemptions;
    if (b.finished) {
      b.jct_seconds = agg.finish - agg.submit;
      b.queueing_seconds =
          std::max(b.jct_seconds - agg.placed_seconds, 0.0);
    }
    out.jobs.push_back(b);
  }

  return true;
}

std::string report_text(const UtilizationReport& report) {
  std::string out;
  char buf[256];
  const double window = report.window_end - report.window_start;

  std::snprintf(buf, sizeof(buf),
                "window: %.6f .. %.6f s  (%.6f s, %lld spans)\n",
                report.window_start, report.window_end, window,
                static_cast<long long>(report.span_events));
  out += buf;

  out += "\nutilization (busy seconds per run, track, and resource)\n";
  std::snprintf(buf, sizeof(buf), "  %4s %-18s %-8s %14s %8s %10s\n", "run",
                "track", "resource", "busy_s", "util", "intervals");
  out += buf;
  for (const ResourceTimeline& tl : report.timelines) {
    const double util = window > 0 ? tl.busy_seconds / window : 0;
    std::snprintf(buf, sizeof(buf), "  %4d %-18s %-8s %14.6f %7.1f%% %10zu\n",
                  tl.run, tl.label.c_str(),
                  std::string(to_string(tl.resource)).c_str(),
                  tl.busy_seconds, util * 100.0, tl.intervals.size());
    out += buf;
  }

  out += "\ngroups (realized vs predicted interleaving efficiency)\n";
  std::snprintf(buf, sizeof(buf),
                "  %4s %6s %6s %4s %4s %12s %10s %10s %10s %10s\n", "run",
                "group", "track", "size", "deg", "window_s", "stall_s",
                "pred", "realized", "error");
  out += buf;
  for (const GroupGammaStat& g : report.groups) {
    std::snprintf(
        buf, sizeof(buf),
        "  %4d %6lld %6d %4d %4d %12.6f %10.6f %10.6f %10.6f %+10.6f\n",
        g.run, static_cast<long long>(g.group), g.track, g.size,
        g.degraded ? 1 : 0, g.window_end - g.window_start, g.stall_seconds,
        g.gamma_predicted, g.gamma_realized, g.error());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  realized mean %.6f, error mean %+.6f, max |error| %.6f\n",
                report.gamma_realized_mean, report.gamma_error_mean,
                report.gamma_error_max_abs);
  out += buf;

  out += "\njobs (JCT breakdown)\n";
  std::snprintf(buf, sizeof(buf), "  %4s %6s %12s %12s %12s %12s %9s %4s\n",
                "run", "job", "jct_s", "queue_s", "run_s", "restart_s",
                "preempts", "fin");
  out += buf;
  for (const JobJctBreakdown& j : report.jobs) {
    std::snprintf(buf, sizeof(buf),
                  "  %4d %6d %12.6f %12.6f %12.6f %12.6f %9d %4d\n", j.run,
                  j.job, j.jct_seconds, j.queueing_seconds,
                  j.running_seconds, j.restart_overhead_seconds,
                  j.preemptions, j.finished ? 1 : 0);
    out += buf;
  }
  return out;
}

std::string report_csv(const UtilizationReport& report) {
  std::string out;
  const double window = report.window_end - report.window_start;

  out +=
      "table,run,track,label,resource,busy_seconds,utilization,intervals\n";
  for (const ResourceTimeline& tl : report.timelines) {
    out += "utilization,";
    out += std::to_string(tl.run);
    out += ',';
    out += std::to_string(tl.track);
    out += ',';
    out += tl.label;  // labels are plain identifiers; no quoting needed
    out += ',';
    out += to_string(tl.resource);
    out += ',';
    append_fixed(out, tl.busy_seconds);
    out += ',';
    append_fixed(out, window > 0 ? tl.busy_seconds / window : 0);
    out += ',';
    out += std::to_string(tl.intervals.size());
    out += '\n';
  }

  out += "\ntable,run,group,track,size,degraded,window_seconds,"
         "stall_seconds,gamma_predicted,gamma_realized,error\n";
  for (const GroupGammaStat& g : report.groups) {
    out += "group,";
    out += std::to_string(g.run);
    out += ',';
    out += std::to_string(g.group);
    out += ',';
    out += std::to_string(g.track);
    out += ',';
    out += std::to_string(g.size);
    out += ',';
    out += g.degraded ? '1' : '0';
    out += ',';
    append_fixed(out, g.window_end - g.window_start);
    out += ',';
    append_fixed(out, g.stall_seconds);
    out += ',';
    append_fixed(out, g.gamma_predicted);
    out += ',';
    append_fixed(out, g.gamma_realized);
    out += ',';
    append_fixed(out, g.error());
    out += '\n';
  }

  out += "\ntable,run,job,jct_seconds,queueing_seconds,running_seconds,"
         "restart_overhead_seconds,preemptions,finished\n";
  for (const JobJctBreakdown& j : report.jobs) {
    out += "job,";
    out += std::to_string(j.run);
    out += ',';
    out += std::to_string(j.job);
    out += ',';
    append_fixed(out, j.jct_seconds);
    out += ',';
    append_fixed(out, j.queueing_seconds);
    out += ',';
    append_fixed(out, j.running_seconds);
    out += ',';
    append_fixed(out, j.restart_overhead_seconds);
    out += ',';
    out += std::to_string(j.preemptions);
    out += ',';
    out += j.finished ? '1' : '0';
    out += '\n';
  }
  return out;
}

std::string report_json(const UtilizationReport& report) {
  std::string out;
  out += "{\"window\":{\"start\":";
  append_compact(out, report.window_start);
  out += ",\"end\":";
  append_compact(out, report.window_end);
  out += ",\"span_events\":";
  out += std::to_string(report.span_events);
  out += "},\"utilization\":[";
  bool first = true;
  for (const ResourceTimeline& tl : report.timelines) {
    if (!first) out += ',';
    first = false;
    out += "{\"run\":";
    out += std::to_string(tl.run);
    out += ",\"track\":";
    out += std::to_string(tl.track);
    out += ",\"label\":\"";
    append_escaped(out, tl.label);
    out += "\",\"resource\":\"";
    out += to_string(tl.resource);
    out += "\",\"busy_seconds\":";
    append_compact(out, tl.busy_seconds);
    out += ",\"intervals\":[";
    bool ifirst = true;
    for (const BusyInterval& iv : tl.intervals) {
      if (!ifirst) out += ',';
      ifirst = false;
      out += '[';
      append_compact(out, iv.start);
      out += ',';
      append_compact(out, iv.end);
      out += ']';
    }
    out += "]}";
  }
  out += "],\"groups\":[";
  first = true;
  for (const GroupGammaStat& g : report.groups) {
    if (!first) out += ',';
    first = false;
    out += "{\"run\":";
    out += std::to_string(g.run);
    out += ",\"group\":";
    out += std::to_string(g.group);
    out += ",\"track\":";
    out += std::to_string(g.track);
    out += ",\"size\":";
    out += std::to_string(g.size);
    out += ",\"degraded\":";
    out += g.degraded ? "true" : "false";
    out += ",\"window_start\":";
    append_compact(out, g.window_start);
    out += ",\"window_end\":";
    append_compact(out, g.window_end);
    out += ",\"stall_seconds\":";
    append_compact(out, g.stall_seconds);
    out += ",\"gamma_predicted\":";
    append_compact(out, g.gamma_predicted);
    out += ",\"gamma_realized\":";
    append_compact(out, g.gamma_realized);
    out += ",\"error\":";
    append_compact(out, g.error());
    out += ",\"busy_seconds\":{";
    for (int r = 0; r < kNumResources; ++r) {
      if (r > 0) out += ',';
      out += '"';
      out += to_string(static_cast<Resource>(r));
      out += "\":";
      append_compact(out, g.busy_seconds[static_cast<size_t>(r)]);
    }
    out += "}}";
  }
  out += "],\"jobs\":[";
  first = true;
  for (const JobJctBreakdown& j : report.jobs) {
    if (!first) out += ',';
    first = false;
    out += "{\"run\":";
    out += std::to_string(j.run);
    out += ",\"job\":";
    out += std::to_string(j.job);
    out += ",\"finished\":";
    out += j.finished ? "true" : "false";
    out += ",\"jct_seconds\":";
    append_compact(out, j.jct_seconds);
    out += ",\"queueing_seconds\":";
    append_compact(out, j.queueing_seconds);
    out += ",\"running_seconds\":";
    append_compact(out, j.running_seconds);
    out += ",\"restart_overhead_seconds\":";
    append_compact(out, j.restart_overhead_seconds);
    out += ",\"preemptions\":";
    out += std::to_string(j.preemptions);
    out += '}';
  }
  out += "],\"summary\":{\"busy_seconds\":{";
  for (int r = 0; r < kNumResources; ++r) {
    if (r > 0) out += ',';
    out += '"';
    out += to_string(static_cast<Resource>(r));
    out += "\":";
    append_compact(out, report.busy_seconds[static_cast<size_t>(r)]);
  }
  out += "},\"gamma_realized_mean\":";
  append_compact(out, report.gamma_realized_mean);
  out += ",\"gamma_error_mean\":";
  append_compact(out, report.gamma_error_mean);
  out += ",\"gamma_error_max_abs\":";
  append_compact(out, report.gamma_error_max_abs);
  out += "}}";
  return out;
}

}  // namespace muri::obs
