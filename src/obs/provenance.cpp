#include "obs/provenance.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>

namespace muri::obs {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void append_json_double(std::string& out, double v) {
  char buf[40];
  // Same contract as the trace exporter: integers plain (readable, no
  // exponent), everything else %.17g — exact for IEEE doubles and
  // deterministic for a given value, which byte-stability leans on.
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 &&
      v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

DecisionLog::Entry::~Entry() {
  if (log_ == nullptr) return;
  line_ += '}';
  log_->append(std::move(line_));
}

DecisionLog::Entry::Entry(Entry&& other) noexcept
    : log_(other.log_), line_(std::move(other.line_)) {
  other.log_ = nullptr;
}

DecisionLog::Entry& DecisionLog::Entry::num(const char* key, double v) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":";
  append_json_double(line_, v);
  return *this;
}

DecisionLog::Entry& DecisionLog::Entry::integer(const char* key,
                                                std::int64_t v) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  line_ += buf;
  return *this;
}

DecisionLog::Entry& DecisionLog::Entry::str(const char* key,
                                            std::string_view v) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":\"";
  append_escaped(line_, v);
  line_ += '"';
  return *this;
}

DecisionLog::Entry& DecisionLog::Entry::ints(const char* key,
                                             const std::vector<int>& v) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) line_ += ',';
    append_json_double(line_, v[i]);
  }
  line_ += ']';
  return *this;
}

DecisionLog::Entry& DecisionLog::Entry::ids(
    const char* key, const std::vector<std::int64_t>& v) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":[";
  char buf[24];
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) line_ += ',';
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v[i]));
    line_ += buf;
  }
  line_ += ']';
  return *this;
}

DecisionLog::Entry& DecisionLog::Entry::nums(const char* key,
                                             const std::vector<double>& v) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) line_ += ',';
    append_json_double(line_, v[i]);
  }
  line_ += ']';
  return *this;
}

DecisionLog::Entry& DecisionLog::Entry::strs(
    const char* key, const std::vector<std::string>& v) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) line_ += ',';
    line_ += '"';
    append_escaped(line_, v[i]);
    line_ += '"';
  }
  line_ += ']';
  return *this;
}

DecisionLog::Entry& DecisionLog::Entry::raw(const char* key,
                                            std::string_view json) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":";
  line_ += json;
  return *this;
}

DecisionLog::Entry DecisionLog::entry(std::string_view type) {
  std::string line = "{\"type\":\"";
  append_escaped(line, type);
  line += "\",\"round\":";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld",
                static_cast<long long>(current_round()));
  line += buf;
  return Entry(this, std::move(line));
}

std::int64_t DecisionLog::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(lines_.size());
}

std::string DecisionLog::jsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::size_t total = 0;
  for (const auto& line : lines_) total += line.size() + 1;
  out.reserve(total);
  for (const auto& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

bool DecisionLog::write_jsonl(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  const std::string dump = jsonl();
  f.write(dump.data(), static_cast<std::streamsize>(dump.size()));
  return f.good();
}

void DecisionLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.clear();
  round_.store(0, std::memory_order_relaxed);
}

void DecisionLog::set_sink(Sink* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink;
}

void DecisionLog::append(std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.push_back(std::move(line));
  if (sink_ != nullptr) sink_->on_record(lines_.back());
}

bool parse_decision_log(std::string_view jsonl,
                        std::vector<DecisionRecord>& out,
                        std::string* error, std::string* tail_warning) {
  out.clear();
  if (tail_warning != nullptr) tail_warning->clear();
  std::size_t pos = 0;
  std::int64_t line_no = 0;
  while (pos < jsonl.size()) {
    const std::size_t line_start = pos;
    std::size_t eol = jsonl.find('\n', pos);
    if (eol == std::string_view::npos) eol = jsonl.size();
    const std::string_view line = jsonl.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    DecisionRecord rec;
    std::string parse_error;
    if (!parse_json(line, rec.value, &parse_error)) {
      // A broken *final* line is the signature of an append cut short by
      // a crash; callers that pass tail_warning keep the valid prefix.
      if (tail_warning != nullptr &&
          jsonl.find_first_not_of(" \t\r\n", pos) == std::string_view::npos) {
        *tail_warning = "truncated or garbled final line " +
                        std::to_string(line_no) + " dropped at byte offset " +
                        std::to_string(line_start) + ": " + parse_error;
        return true;
      }
      if (error != nullptr) {
        *error = "line " + std::to_string(line_no) + ": " + parse_error;
      }
      return false;
    }
    rec.raw.assign(line);
    out.push_back(std::move(rec));
  }
  return true;
}

namespace {

bool is_int_array(const JsonValue& v) {
  if (!v.is_array()) return false;
  for (const auto& e : v.array) {
    if (!e.is_number()) return false;
  }
  return true;
}

bool is_nested_int_array(const JsonValue& v) {
  if (!v.is_array()) return false;
  for (const auto& e : v.array) {
    if (!is_int_array(e)) return false;
  }
  return true;
}

bool is_string_array(const JsonValue& v) {
  if (!v.is_array()) return false;
  for (const auto& e : v.array) {
    if (!e.is_string()) return false;
  }
  return true;
}

// Per-type required fields. `i` = int array, `I` = nested int array,
// `n` = number, `s` = string, `S` = string array, `e` = [u,v,γ] triples.
struct FieldSpec {
  const char* key;
  char kind;
};

bool check_fields(const JsonValue& rec, const FieldSpec* specs,
                  std::size_t n, std::string* why) {
  for (std::size_t i = 0; i < n; ++i) {
    const JsonValue& v = rec.at(specs[i].key);
    bool ok = false;
    switch (specs[i].kind) {
      case 'n':
        ok = v.is_number();
        break;
      case 's':
        ok = v.is_string();
        break;
      case 'S':
        ok = is_string_array(v);
        break;
      case 'i':
        ok = is_int_array(v);
        break;
      case 'I':
        ok = is_nested_int_array(v);
        break;
      case 'e': {
        ok = v.is_array();
        if (ok) {
          for (const auto& edge : v.array) {
            if (!edge.is_array() || edge.array.size() != 3 ||
                !edge.array[0].is_number() || !edge.array[1].is_number() ||
                !edge.array[2].is_number()) {
              ok = false;
              break;
            }
          }
        }
        break;
      }
      default:
        ok = false;
    }
    if (!ok) {
      if (why != nullptr) {
        *why = std::string("missing or mistyped field \"") + specs[i].key +
               "\"";
      }
      return false;
    }
  }
  return true;
}

bool check_record_schema(const JsonValue& rec, const std::string& type,
                         std::string* why) {
  static const FieldSpec kRoundStart[] = {
      {"scheduler", 's'}, {"policy", 's'}, {"queue", 'n'}, {"capacity", 'n'}};
  static const FieldSpec kPriority[] = {
      {"policy", 's'}, {"job", 'i'}, {"score", 'i'}};
  static const FieldSpec kBucket[] = {{"gpus", 'n'}, {"jobs", 'i'}};
  static const FieldSpec kMatchRound[] = {{"gpus", 'n'},    {"stage", 'n'},
                                          {"nodes", 'I'},   {"edges", 'e'},
                                          {"matched", 'I'}, {"unmatched", 'i'}};
  static const FieldSpec kGroup[] = {
      {"jobs", 'i'}, {"gpus", 'n'}, {"mode", 's'}, {"gamma", 'n'}};
  static const FieldSpec kDeferred[] = {{"jobs", 'i'}, {"reason", 's'}};
  static const FieldSpec kRoundEnd[] = {
      {"groups", 'n'}, {"admitted", 'n'}, {"rejected", 'n'}};
  static const FieldSpec kPlacement[] = {
      {"t", 'n'}, {"jobs", 'i'}, {"gpus", 'n'}, {"machines", 'i'}};
  static const FieldSpec kPlacementSkip[] = {
      {"t", 'n'}, {"jobs", 'i'}, {"reason", 's'}};
  static const FieldSpec kJobEvent[] = {
      {"t", 'n'}, {"job", 'n'}, {"reason", 's'}};
  static const FieldSpec kEvict[] = {
      {"t", 'n'}, {"job", 'n'}, {"machine", 'n'}, {"reason", 's'}};
  static const FieldSpec kDegraded[] = {
      {"t", 'n'}, {"jobs", 'i'}, {"gamma", 'n'}};
  static const FieldSpec kExecGroup[] = {{"names", 'S'}, {"slots", 'n'}};
  static const FieldSpec kExecResult[] = {{"names", 'S'}, {"gamma", 'n'}};
  static const FieldSpec kSimStart[] = {{"t", 'n'},
                                        {"jobs", 'n'},
                                        {"machines", 'n'},
                                        {"gpus", 'n'},
                                        {"interval", 'n'}};
  static const FieldSpec kArrival[] = {{"t", 'n'}, {"job", 'n'}, {"gpus", 'n'}};
  static const FieldSpec kMachineEvent[] = {{"t", 'n'}, {"machine", 'n'}};
  static const FieldSpec kFinish[] = {{"t", 'n'},
                                      {"job", 'n'},
                                      {"jct", 'n'},
                                      {"queueing", 'n'},
                                      {"running", 'n'},
                                      {"restart_overhead", 'n'},
                                      {"preemptions", 'n'}};
  static const FieldSpec kSimEnd[] = {{"t", 'n'},
                                      {"makespan", 'n'},
                                      {"finished", 'n'},
                                      {"unfinished", 'n'}};
  // Service-daemon lifecycle records (src/service).
  static const FieldSpec kJobSubmit[] = {{"t", 'n'},
                                         {"job", 'n'},
                                         {"model", 's'},
                                         {"gpus", 'n'},
                                         {"iterations", 'n'}};
  static const FieldSpec kJobProgress[] = {
      {"t", 'n'}, {"job", 'n'}, {"done", 'n'}};
  static const FieldSpec kDaemonStart[] = {
      {"t", 'n'}, {"machines", 'n'}, {"gpus", 'n'}};
  static const FieldSpec kDaemonStop[] = {{"t", 'n'}};
  // Per-job tracing records (src/obs/jobtrace).
  static const FieldSpec kWait[] = {{"t", 'n'}, {"job", 'i'}, {"bucket", 'S'}};
  static const FieldSpec kStraggler[] = {
      {"t", 'n'}, {"job", 'n'}, {"factor", 'n'}};

  struct Schema {
    const char* type;
    const FieldSpec* specs;
    std::size_t n;
  };
  static const Schema kSchemas[] = {
      {"round_start", kRoundStart, std::size(kRoundStart)},
      {"priority", kPriority, std::size(kPriority)},
      {"bucket", kBucket, std::size(kBucket)},
      {"match_round", kMatchRound, std::size(kMatchRound)},
      {"group", kGroup, std::size(kGroup)},
      {"deferred", kDeferred, std::size(kDeferred)},
      {"round_end", kRoundEnd, std::size(kRoundEnd)},
      {"placement", kPlacement, std::size(kPlacement)},
      {"placement_skip", kPlacementSkip, std::size(kPlacementSkip)},
      {"preempt", kJobEvent, std::size(kJobEvent)},
      {"restart", kJobEvent, std::size(kJobEvent)},
      {"evict", kEvict, std::size(kEvict)},
      {"fault", kJobEvent, std::size(kJobEvent)},
      {"degraded_continue", kDegraded, std::size(kDegraded)},
      {"exec_group", kExecGroup, std::size(kExecGroup)},
      {"exec_result", kExecResult, std::size(kExecResult)},
      {"sim_start", kSimStart, std::size(kSimStart)},
      {"arrival", kArrival, std::size(kArrival)},
      {"machine_down", kMachineEvent, std::size(kMachineEvent)},
      {"machine_up", kMachineEvent, std::size(kMachineEvent)},
      {"finish", kFinish, std::size(kFinish)},
      {"sim_end", kSimEnd, std::size(kSimEnd)},
      {"job_submit", kJobSubmit, std::size(kJobSubmit)},
      {"job_cancel", kJobEvent, std::size(kJobEvent)},
      {"job_progress", kJobProgress, std::size(kJobProgress)},
      {"job_restore", kJobProgress, std::size(kJobProgress)},
      {"daemon_start", kDaemonStart, std::size(kDaemonStart)},
      {"daemon_stop", kDaemonStop, std::size(kDaemonStop)},
      {"wait", kWait, std::size(kWait)},
      {"straggler", kStraggler, std::size(kStraggler)},
  };
  for (const auto& schema : kSchemas) {
    if (type == schema.type) {
      return check_fields(rec, schema.specs, schema.n, why);
    }
  }
  // Unknown types are forward-compatible: type+round alone suffice.
  return true;
}

}  // namespace

bool validate_decision_log(std::string_view jsonl, std::string* error,
                           std::string* tail_warning) {
  std::vector<DecisionRecord> records;
  if (!parse_decision_log(jsonl, records, error, tail_warning)) return false;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JsonValue& rec = records[i].value;
    const auto fail = [&](const std::string& why) {
      // A schema-broken *final* record gets the same torn-tail grace as a
      // parse-broken final line: report, drop, keep the prefix.
      if (tail_warning != nullptr && i + 1 == records.size()) {
        const std::size_t offset = jsonl.rfind(records[i].raw);
        *tail_warning = "truncated or garbled final record " +
                        std::to_string(i + 1) + " dropped at byte offset " +
                        std::to_string(offset) + ": " + why;
        return true;
      }
      if (error != nullptr) {
        *error = "record " + std::to_string(i + 1) + ": " + why;
      }
      return false;
    };
    if (!rec.is_object()) return fail("not a JSON object");
    const JsonValue& type = rec.at("type");
    if (!type.is_string()) return fail("missing string \"type\"");
    const JsonValue& round = rec.at("round");
    if (!round.is_number() || round.number < 0 ||
        round.number != static_cast<double>(
                            static_cast<std::int64_t>(round.number))) {
      return fail("missing non-negative integer \"round\"");
    }
    std::string why;
    if (!check_record_schema(rec, type.string, &why)) {
      return fail("type \"" + type.string + "\": " + why);
    }
  }
  return true;
}

namespace {

std::int64_t round_of(const JsonValue& rec) {
  return static_cast<std::int64_t>(rec.at("round").number);
}

bool int_array_contains(const JsonValue& arr, std::int64_t job) {
  if (!arr.is_array()) return false;
  for (const auto& e : arr.array) {
    if (e.is_number() &&
        static_cast<std::int64_t>(e.number) == job) {
      return true;
    }
  }
  return false;
}

// Does this record mention `job`? Checks every field that carries job ids:
// scalar "job", list "jobs", priority's parallel "job" array, and
// match_round's nested "nodes" member lists.
bool mentions_job(const JsonValue& rec, std::int64_t job) {
  const JsonValue& scalar = rec.at("job");
  if (scalar.is_number() &&
      static_cast<std::int64_t>(scalar.number) == job) {
    return true;
  }
  if (int_array_contains(scalar, job)) return true;
  if (int_array_contains(rec.at("jobs"), job)) return true;
  const JsonValue& nodes = rec.at("nodes");
  if (nodes.is_array()) {
    for (const auto& node : nodes.array) {
      if (int_array_contains(node, job)) return true;
    }
  }
  return false;
}

std::string fmt_num(double v) {
  std::string out;
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 &&
      v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  out = buf;
  return out;
}

std::string fmt_int_array(const JsonValue& arr) {
  std::string out = "[";
  for (std::size_t i = 0; i < arr.array.size(); ++i) {
    if (i != 0) out += ' ';
    out += fmt_num(arr.array[i].number);
  }
  out += ']';
  return out;
}

// One human line per record, used by both explain queries. `focus_job` < 0
// renders neutrally; otherwise phrasing centers on that job (its priority
// score, its node's incident edges).
std::string render_record(const JsonValue& rec, std::int64_t focus_job) {
  const std::string& type = rec.at("type").string;
  std::string out;
  if (type == "round_start") {
    out = "queue of " + fmt_num(rec.at("queue").number) + " under " +
          rec.at("scheduler").string + "/" + rec.at("policy").string +
          ", capacity " + fmt_num(rec.at("capacity").number) + " GPUs";
  } else if (type == "priority") {
    const JsonValue& jobs = rec.at("job");
    const JsonValue& scores = rec.at("score");
    if (focus_job >= 0) {
      for (std::size_t i = 0; i < jobs.array.size(); ++i) {
        if (static_cast<std::int64_t>(jobs.array[i].number) == focus_job) {
          out = "queued at position " + std::to_string(i + 1) + "/" +
                std::to_string(jobs.array.size()) + " with " +
                rec.at("policy").string + " score " +
                fmt_num(i < scores.array.size() ? scores.array[i].number : 0);
          break;
        }
      }
    } else {
      out = rec.at("policy").string + " priorities for " +
            std::to_string(jobs.array.size()) + " jobs: job " +
            fmt_int_array(jobs) + " score " + fmt_int_array(scores);
    }
  } else if (type == "bucket") {
    out = "candidate bucket gpus=" + fmt_num(rec.at("gpus").number) +
          " jobs=" + fmt_int_array(rec.at("jobs"));
  } else if (type == "match_round") {
    const JsonValue& nodes = rec.at("nodes");
    const JsonValue& edges = rec.at("edges");
    const JsonValue& matched = rec.at("matched");
    out = "matching stage " + fmt_num(rec.at("stage").number) + " (gpus=" +
          fmt_num(rec.at("gpus").number) + "): " +
          std::to_string(nodes.array.size()) + " nodes, " +
          std::to_string(edges.array.size()) + " edges, " +
          std::to_string(matched.array.size()) + " merged";
    if (rec.at("fallback").boolean) out += " [fallback]";
    // The γ evidence: for a focused job, its node's incident edges with
    // the matched partner flagged; otherwise every edge.
    int focus_node = -1;
    if (focus_job >= 0) {
      for (std::size_t i = 0; i < nodes.array.size(); ++i) {
        if (int_array_contains(nodes.array[i], focus_job)) {
          focus_node = static_cast<int>(i);
          break;
        }
      }
    }
    for (const auto& edge : edges.array) {
      const int u = static_cast<int>(edge.array[0].number);
      const int v = static_cast<int>(edge.array[1].number);
      if (focus_node >= 0 && u != focus_node && v != focus_node) continue;
      bool won = false;
      for (const auto& pair : matched.array) {
        if (static_cast<int>(pair.array[0].number) == u &&
            static_cast<int>(pair.array[1].number) == v) {
          won = true;
          break;
        }
      }
      out += "\n      ";
      out += won ? "merged " : "rejected ";
      if (u < static_cast<int>(nodes.array.size()) &&
          v < static_cast<int>(nodes.array.size())) {
        out += fmt_int_array(nodes.array[u]) + "+" +
               fmt_int_array(nodes.array[v]);
      } else {
        out += "(" + std::to_string(u) + "," + std::to_string(v) + ")";
      }
      out += " gamma=" + fmt_num(edge.array[2].number);
    }
  } else if (type == "group") {
    const bool admitted = rec.at("admitted").boolean;
    out = std::string(admitted ? "group admitted " : "group rejected ") +
          fmt_int_array(rec.at("jobs")) + " gpus=" +
          fmt_num(rec.at("gpus").number) + " mode=" +
          rec.at("mode").string + " gamma=" +
          fmt_num(rec.at("gamma").number);
    const JsonValue& reason = rec.at("reason");
    if (reason.is_string()) out += " (" + reason.string + ")";
  } else if (type == "deferred") {
    out = "deferred " + fmt_int_array(rec.at("jobs")) + " (" +
          rec.at("reason").string + ")";
  } else if (type == "round_end") {
    out = "round produced " + fmt_num(rec.at("groups").number) +
          " groups, admitted " + fmt_num(rec.at("admitted").number) +
          ", rejected " + fmt_num(rec.at("rejected").number);
  } else if (type == "placement") {
    out = "t=" + fmt_num(rec.at("t").number) + " placed " +
          fmt_int_array(rec.at("jobs")) + " on machines " +
          fmt_int_array(rec.at("machines")) + " (" +
          fmt_num(rec.at("gpus").number) + " GPUs)";
  } else if (type == "placement_skip") {
    out = "t=" + fmt_num(rec.at("t").number) + " could not place " +
          fmt_int_array(rec.at("jobs")) + " (" + rec.at("reason").string +
          ")";
  } else if (type == "preempt" || type == "restart" || type == "fault") {
    out = "t=" + fmt_num(rec.at("t").number) + " " + type + " job " +
          fmt_num(rec.at("job").number) + " (" + rec.at("reason").string +
          ")";
  } else if (type == "evict") {
    out = "t=" + fmt_num(rec.at("t").number) + " evicted job " +
          fmt_num(rec.at("job").number) + " from machine " +
          fmt_num(rec.at("machine").number) + " (" +
          rec.at("reason").string + ")";
  } else if (type == "degraded_continue") {
    out = "t=" + fmt_num(rec.at("t").number) + " degraded group " +
          fmt_int_array(rec.at("jobs")) + " continues, gamma=" +
          fmt_num(rec.at("gamma").number);
  } else if (type == "wait") {
    const JsonValue& ids = rec.at("job");
    const JsonValue& buckets = rec.at("bucket");
    std::string bucket;
    if (focus_job >= 0 && ids.is_array() && buckets.is_array() &&
        buckets.array.size() == ids.array.size()) {
      for (std::size_t i = 0; i < ids.array.size(); ++i) {
        if (ids.array[i].is_number() &&
            static_cast<std::int64_t>(ids.array[i].number) == focus_job &&
            buckets.array[i].is_string()) {
          bucket = buckets.array[i].string;
          break;
        }
      }
    }
    out = "t=" + fmt_num(rec.at("t").number) + " ";
    if (!bucket.empty()) {
      out += "left waiting (" + bucket + ")";
    } else {
      out += std::to_string(ids.is_array() ? ids.array.size() : 0) +
             " jobs left waiting " + fmt_int_array(ids);
    }
  } else if (type == "straggler") {
    out = "t=" + fmt_num(rec.at("t").number) + " job " +
          fmt_num(rec.at("job").number) + " straggler factor " +
          fmt_num(rec.at("factor").number);
  } else if (type == "exec_group") {
    out = "executor launched " +
          std::to_string(rec.at("names").array.size()) + " members over " +
          fmt_num(rec.at("slots").number) + " slots";
  } else if (type == "exec_result") {
    out = "executor window closed, realized gamma=" +
          fmt_num(rec.at("gamma").number);
  } else {
    out = type;
  }
  return out;
}

}  // namespace

std::string explain_job_text(const std::vector<DecisionRecord>& records,
                             std::int64_t job) {
  std::string out;
  std::int64_t last_round = -1;
  for (const auto& rec : records) {
    if (!rec.value.is_object() || !mentions_job(rec.value, job)) continue;
    const std::int64_t round = round_of(rec.value);
    if (out.empty()) {
      out = "job " + std::to_string(job) + " decision history\n";
    }
    if (round != last_round) {
      out += "  round " + std::to_string(round) + ":\n";
      last_round = round;
    }
    out += "    " + render_record(rec.value, job) + "\n";
  }
  return out;
}

std::string explain_job_json(const std::vector<DecisionRecord>& records,
                             std::int64_t job) {
  std::string body;
  std::int64_t last_round = -1;
  bool any = false;
  for (const auto& rec : records) {
    if (!rec.value.is_object() || !mentions_job(rec.value, job)) continue;
    const std::int64_t round = round_of(rec.value);
    if (round != last_round) {
      if (any) body += "]},";
      body += "{\"round\":" + std::to_string(round) + ",\"records\":[";
      last_round = round;
      any = true;
    } else {
      body += ',';
    }
    body += rec.raw;
  }
  if (!any) return "";
  body += "]}";
  return "{\"job\":" + std::to_string(job) + ",\"rounds\":[" + body + "]}\n";
}

std::string explain_round_text(const std::vector<DecisionRecord>& records,
                               std::int64_t round) {
  std::string out;
  for (const auto& rec : records) {
    if (!rec.value.is_object() || round_of(rec.value) != round) continue;
    if (out.empty()) {
      out = "round " + std::to_string(round) + " decisions\n";
    }
    out += "  " + render_record(rec.value, -1) + "\n";
  }
  return out;
}

std::string explain_round_json(const std::vector<DecisionRecord>& records,
                               std::int64_t round) {
  std::string body;
  bool any = false;
  for (const auto& rec : records) {
    if (!rec.value.is_object() || round_of(rec.value) != round) continue;
    if (any) body += ',';
    body += rec.raw;
    any = true;
  }
  if (!any) return "";
  return "{\"round\":" + std::to_string(round) + ",\"records\":[" + body +
         "]}\n";
}

}  // namespace muri::obs
