// Time-series store — the "remember it" half of the live SLO plane.
//
// The metrics registry (metrics.h) answers "what is the value now"; this
// module answers "what has it been doing lately". A TimeSeriesStore holds a
// fixed-capacity ring buffer per named series, filled either by registered
// probes (sampled together at a configurable cadence on the daemon event
// loop) or by explicit event appends (per-round latency, per-fsync cost).
// Windowed queries reduce the retained points of the last N seconds to
// min/max/avg/p50/p90/p99 using the same percentile math as the bench
// tables (common/stats.h), so a p99 served at /metrics/history matches a
// p99 in a report.
//
// Timestamps are caller-supplied doubles in whatever clock domain the
// caller samples with (the daemon uses wall seconds since process start);
// the store only requires them to be non-decreasing per series. Like every
// obs hook, the store is optional: nothing in the scheduling path depends
// on it existing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace muri::obs {

// Reduction of the points of one series that fall inside a query window.
struct WindowStats {
  std::int64_t count = 0;
  double min = 0;
  double max = 0;
  double avg = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double last = 0;        // most recent value in the window
  double first_time = 0;  // timestamp of the oldest point in the window
  double last_time = 0;   // timestamp of the newest point in the window
};

// Fixed-capacity ring buffer of (time, value) points. Oldest points are
// overwritten once capacity is reached; unlike SeriesRecorder's
// stride-doubling reservoir this keeps the *recent* window dense, which is
// what windowed SLO queries need.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity);

  struct Point {
    double time;
    double value;
  };

  void append(double t, double v);

  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  std::int64_t total_appended() const noexcept { return appended_; }

  // Oldest-first copy of the retained points with time >= now - window_s.
  // window_s <= 0 means "everything retained".
  std::vector<Point> window(double now, double window_s) const;

  // Reduce the window to summary statistics. count == 0 (all-zero stats)
  // when no retained point falls inside the window.
  WindowStats stats(double now, double window_s) const;

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // next write slot
  std::size_t size_ = 0;
  std::int64_t appended_ = 0;
  std::vector<Point> ring_;
};

// How a probe's raw reading becomes a stored point.
enum class ProbeKind {
  kGauge,  // store the reading as-is
  kRate,   // store d(reading)/dt vs. the previous sample (counters -> rates)
};

// Named collection of ring-buffer series. Thread-safe: the daemon samples
// from its event loop while HTTP handlers query concurrently.
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(std::size_t capacity_per_series = 600);

  using Probe = std::function<double()>;

  // Register a probe evaluated on every sample(). kRate probes store the
  // per-second derivative of the underlying reading, so a registry counter
  // probe becomes a throughput series; the first sample of a rate series
  // is dropped (no previous reading to diff against).
  void add_probe(const std::string& name, ProbeKind kind, Probe probe);

  // Append one point to a named event series (created on first use) —
  // for quantities that occur at their own cadence (round latency,
  // fsync cost) rather than on the sampling clock.
  void append(const std::string& name, double t, double v);

  // Evaluate all probes at time `now` and store the resulting points.
  void sample(double now);

  std::size_t samples_taken() const;
  double last_sample_time() const;
  std::size_t capacity_per_series() const noexcept { return capacity_; }

  std::vector<std::string> names() const;
  bool has_series(const std::string& name) const;
  WindowStats stats(const std::string& name, double now,
                    double window_s) const;
  std::vector<TimeSeries::Point> points(const std::string& name, double now,
                                        double window_s) const;

  // Full dump served at GET /metrics/history: one JSON object
  //   {"now": .., "window_s": .., "samples": .., "series": {name:
  //     {"count": .., "min": .., ..., "points": [[t, v], ...]}, ...}}
  // Series are emitted in name order, so the dump is deterministic for a
  // given store state.
  std::string history_json(double now, double window_s,
                           bool include_points = true) const;

 private:
  struct Entry {
    ProbeKind kind = ProbeKind::kGauge;
    Probe probe;              // null for event series
    bool has_prev = false;    // rate probes: previous raw reading valid
    double prev_raw = 0;
    double prev_time = 0;
    TimeSeries series;
    explicit Entry(std::size_t cap) : series(cap) {}
  };

  Entry& entry_locked(const std::string& name);

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::size_t samples_ = 0;
  double last_sample_time_ = 0;
  // std::map keeps history_json output order deterministic.
  std::map<std::string, Entry> series_;
  std::vector<std::string> probe_order_;  // evaluation order = registration
};

}  // namespace muri::obs
