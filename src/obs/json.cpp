#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace muri::obs {

namespace {

const JsonValue& null_value() {
  static const JsonValue v;
  return v;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out, std::string* error) {
    skip_ws();
    if (!parse_value(out)) {
      if (error != nullptr) {
        *error = message_ + " at offset " + std::to_string(pos_);
      }
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        *error = "trailing characters at offset " + std::to_string(pos_);
      }
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* message) {
    if (message_.empty()) message_ = message;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  // Containers recurse; a hostile input of  [[[[…  must fail cleanly
  // instead of overflowing the stack.
  static constexpr int kMaxDepth = 192;

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        if (depth_ >= kMaxDepth) return fail("nesting too deep");
        return parse_object(out);
      case '[':
        if (depth_ >= kMaxDepth) return fail("nesting too deep");
        return parse_array(out);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.string);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return literal("true") || fail("bad literal");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return literal("false") || fail("bad literal");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return literal("null") || fail("bad literal");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    const DepthGuard guard(this);
    if (!consume('{')) return fail("expected '{'");
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    const DepthGuard guard(this);
    if (!consume('[')) return fail("expected '['");
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("bad escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out += esc;
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // Only BMP escapes are produced by our writers; encode UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("bad number");
    out.type = JsonValue::Type::kNumber;
    return true;
  }

  struct DepthGuard {
    explicit DepthGuard(Parser* p) : parser(p) { ++parser->depth_; }
    ~DepthGuard() { --parser->depth_; }
    Parser* parser;
  };

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string message_;
};

bool check(bool ok, const char* message, std::string* error) {
  if (!ok && error != nullptr && error->empty()) *error = message;
  return ok;
}

}  // namespace

const JsonValue& JsonValue::at(const std::string& key) const {
  if (type != Type::kObject) return null_value();
  const auto it = object.find(key);
  return it != object.end() ? it->second : null_value();
}

bool parse_json(std::string_view text, JsonValue& out, std::string* error) {
  return Parser(text).parse(out, error);
}

bool validate_chrome_trace(std::string_view text, std::string* error) {
  JsonValue root;
  if (!parse_json(text, root, error)) return false;
  if (!check(root.is_object(), "top level is not an object", error)) {
    return false;
  }
  const JsonValue& events = root.at("traceEvents");
  if (!check(events.is_array(), "traceEvents missing or not an array",
             error)) {
    return false;
  }
  if (!check(!events.array.empty(), "traceEvents is empty", error)) {
    return false;
  }
  for (const JsonValue& e : events.array) {
    if (!check(e.is_object(), "event is not an object", error)) return false;
    if (!check(e.at("name").is_string(), "event missing name", error) ||
        !check(e.at("ph").is_string(), "event missing ph", error) ||
        !check(e.at("pid").is_number(), "event missing pid", error) ||
        !check(e.at("tid").is_number(), "event missing tid", error)) {
      return false;
    }
    const std::string& ph = e.at("ph").string;
    if (ph == "M") continue;  // metadata events carry no timestamp
    if (!check(e.at("ts").is_number(), "event missing ts", error)) {
      return false;
    }
    if (ph == "X" &&
        !check(e.at("dur").is_number(), "complete event missing dur",
               error)) {
      return false;
    }
  }
  return true;
}

}  // namespace muri::obs
