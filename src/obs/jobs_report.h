// Per-job service latency report over a decision stream (the
// `muri-report jobs` subcommand, and the loadgen's validation hook).
//
// Folds a decision log — from the batch simulator or the service daemon —
// into one row per job: when it entered the system (job_submit for daemon
// logs, arrival for simulator logs), when it was first placed, and when
// it finished or was cancelled, plus its preemption/restart counts. The
// derived latencies are the service-level quantities the daemon's SLOs
// care about: submit→scheduled wait and submit→finished JCT. Renderers
// are byte-stable: the same records produce the same bytes, so CI can
// diff reports across runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/provenance.h"

namespace muri::obs {

struct JobLatencyRow {
  std::int64_t job = -1;
  double submit_t = -1;           // job_submit/arrival "t"; -1 unknown
  double first_scheduled_t = -1;  // first placement containing the job
  double end_t = -1;              // finish or cancel "t"
  bool finished = false;
  bool cancelled = false;
  std::int64_t preemptions = 0;
  std::int64_t restarts = 0;

  bool has_wait() const {
    return submit_t >= 0 && first_scheduled_t >= 0;
  }
  double wait() const { return first_scheduled_t - submit_t; }
  bool has_jct() const { return finished && submit_t >= 0 && end_t >= 0; }
  double jct() const { return end_t - submit_t; }
};

struct JobsReport {
  std::vector<JobLatencyRow> rows;  // ascending by job id
  std::int64_t finished = 0;
  std::int64_t cancelled = 0;
  std::int64_t in_flight = 0;  // submitted, neither finished nor cancelled

  bool empty() const { return rows.empty(); }
};

// Folds parsed decision records into the per-job table. Records that do
// not mention a job are ignored; unknown record types are skipped (the
// log's forward-compatibility contract).
JobsReport build_jobs_report(const std::vector<DecisionRecord>& records);

// Renderers. Text is a human table with wait/JCT percentiles; CSV is one
// header plus a row per job; JSON carries rows and the percentile
// summary. All byte-stable for a given report.
std::string jobs_report_text(const JobsReport& report);
std::string jobs_report_csv(const JobsReport& report);
std::string jobs_report_json(const JobsReport& report);

}  // namespace muri::obs
