#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace muri::obs {

namespace {

std::uint64_t next_generation() {
  static std::atomic<std::uint64_t> gen{1};
  return gen.fetch_add(1, std::memory_order_relaxed);
}

// Per-thread cache of "my ring in tracer X". The generation check makes a
// new Tracer constructed at a recycled address miss the cache instead of
// writing into a dead ring.
struct LocalRingCache {
  const void* tracer = nullptr;
  std::uint64_t generation = 0;
  void* ring = nullptr;
};
thread_local LocalRingCache t_ring_cache;

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[40];
  // Shortest round-trippable decimal: %.17g is exact for IEEE doubles and
  // deterministic for a given value, which the byte-stability guarantee
  // leans on. Integers print without an exponent for readability.
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

void append_args(std::string& out, const TraceArgs& args,
                 const std::string& detail) {
  bool any = false;
  for (int i = 0; i < TraceArgs::kCapacity; ++i) {
    if (args.key[i] == nullptr) continue;
    out += any ? ",\"" : ",\"args\":{\"";
    append_escaped(out, args.key[i]);
    out += "\":";
    append_double(out, args.value[i]);
    any = true;
  }
  if (!detail.empty()) {
    out += any ? ",\"message\":\"" : ",\"args\":{\"message\":\"";
    append_escaped(out, detail.c_str());
    out += '"';
    any = true;
  }
  if (any) out += '}';
}

}  // namespace

ScopedSpan::ScopedSpan(Tracer* tracer, const char* name, const char* cat,
                       int pid, int tid, TraceArgs args)
    : tracer_(tracer),
      name_(name),
      cat_(cat),
      pid_(pid),
      tid_(tid),
      args_(args),
      start_us_(tracer != nullptr && tracer->enabled() ? tracer->now_micros()
                                                       : -1) {}

ScopedSpan::~ScopedSpan() {
  if (start_us_ < 0 || tracer_ == nullptr) return;
  const std::int64_t end_us = tracer_->now_micros();
  tracer_->complete(start_us_, std::max<std::int64_t>(end_us - start_us_, 0),
                    name_, cat_, pid_, tid_, args_);
}

Tracer::Tracer(std::size_t ring_capacity)
    : ring_capacity_(std::max<std::size_t>(ring_capacity, 8)),
      generation_(next_generation()),
      origin_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

std::int64_t Tracer::now_micros() const noexcept {
  if (manual_mode_.load(std::memory_order_relaxed)) {
    return manual_us_.load(std::memory_order_relaxed);
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

void Tracer::set_manual_seconds(double seconds) noexcept {
  manual_us_.store(static_cast<std::int64_t>(seconds * 1e6),
                   std::memory_order_relaxed);
  manual_mode_.store(true, std::memory_order_relaxed);
}

Tracer::Ring& Tracer::local_ring() {
  LocalRingCache& cache = t_ring_cache;
  if (cache.tracer == this && cache.generation == generation_) {
    return *static_cast<Ring*>(cache.ring);
  }
  std::lock_guard<std::mutex> lock(registry_mu_);
  rings_.push_back(std::make_unique<Ring>(ring_capacity_));
  Ring& ring = *rings_.back();
  ring.capacity = ring_capacity_;
  cache = {this, generation_, &ring};
  return ring;
}

void Tracer::record(char phase, std::int64_t ts_us, std::int64_t dur_us,
                    const char* name, const char* cat, int pid, int tid,
                    const TraceArgs& args, const std::string* detail) {
  Ring& ring = local_ring();
  std::lock_guard<std::mutex> lock(ring.mu);
  Event e{name,   cat,    phase,     pid,  tid, ts_us,
          dur_us, ring.seq++, args, detail != nullptr ? *detail : std::string()};
  if (ring.events.size() < ring.capacity) {
    ring.events.push_back(std::move(e));
  } else {
    // Full: overwrite the oldest event so the ring always holds the most
    // recent window, and account for the loss.
    ring.events[ring.next] = std::move(e);
    ring.next = (ring.next + 1) % ring.capacity;
    ++ring.dropped;
  }
}

void Tracer::instant(const char* name, const char* cat, int pid, int tid,
                     TraceArgs args) {
  if (!enabled()) return;
  record('i', now_micros(), 0, name, cat, pid, tid, args);
}

void Tracer::instant_at(std::int64_t ts_us, const char* name, const char* cat,
                        int pid, int tid, TraceArgs args) {
  if (!enabled()) return;
  record('i', ts_us, 0, name, cat, pid, tid, args);
}

void Tracer::complete(std::int64_t ts_us, std::int64_t dur_us,
                      const char* name, const char* cat, int pid, int tid,
                      TraceArgs args) {
  if (!enabled()) return;
  record('X', ts_us, dur_us, name, cat, pid, tid, args);
}

void Tracer::counter(std::int64_t ts_us, const char* name, int pid,
                     TraceArgs args) {
  if (!enabled()) return;
  record('C', ts_us, 0, name, "counter", pid, 0, args);
}

void Tracer::instant_text(std::int64_t ts_us, const char* name,
                          const char* cat, int pid, int tid,
                          const std::string& message) {
  if (!enabled()) return;
  record('i', ts_us, 0, name, cat, pid, tid, TraceArgs{}, &message);
}

void Tracer::name_track(int pid, const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  track_names_[pid] = name;
}

void Tracer::name_lane(int pid, int tid, const std::string& name) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  lane_names_[{pid, tid}] = name;
}

std::size_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::size_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->events.size();
  }
  return total;
}

std::int64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::int64_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->dropped;
  }
  return total;
}

std::string Tracer::chrome_trace_json() const {
  struct Keyed {
    Event event;
    std::size_t ring_index;
  };
  std::vector<Keyed> all;
  std::int64_t total_dropped = 0;
  std::map<int, std::string> tracks;
  std::map<std::pair<int, int>, std::string> lanes;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    tracks = track_names_;
    lanes = lane_names_;
    for (std::size_t r = 0; r < rings_.size(); ++r) {
      const Ring& ring = *rings_[r];
      std::lock_guard<std::mutex> ring_lock(ring.mu);
      total_dropped += ring.dropped;
      // Oldest-first: once wrapped, `next` points at the oldest slot.
      const std::size_t sz = ring.events.size();
      const std::size_t start = sz == ring.capacity ? ring.next : 0;
      for (std::size_t i = 0; i < sz; ++i) {
        all.push_back({ring.events[(start + i) % sz], r});
      }
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const Keyed& a, const Keyed& b) {
    if (a.event.ts_us != b.event.ts_us) return a.event.ts_us < b.event.ts_us;
    if (a.event.pid != b.event.pid) return a.event.pid < b.event.pid;
    if (a.event.tid != b.event.tid) return a.event.tid < b.event.tid;
    if (a.ring_index != b.ring_index) return a.ring_index < b.ring_index;
    return a.event.seq < b.event.seq;
  });

  std::string out;
  out.reserve(128 + all.size() * 96);
  out += "{\"traceEvents\":[";
  bool first = true;
  char buf[96];
  for (const auto& [pid, name] : tracks) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":0,\"args\":{\"name\":\"",
                  pid);
    out += buf;
    append_escaped(out, name.c_str());
    out += "\"}}";
  }
  for (const auto& [key, name] : lanes) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":%d,\"args\":{\"name\":\"",
                  key.first, key.second);
    out += buf;
    append_escaped(out, name.c_str());
    out += "\"}}";
  }
  for (const Keyed& k : all) {
    const Event& e = k.event;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"cat\":\"";
    append_escaped(out, e.cat);
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"%c\",\"ts\":%lld,", e.phase,
                  static_cast<long long>(e.ts_us));
    out += buf;
    if (e.phase == 'X') {
      std::snprintf(buf, sizeof(buf), "\"dur\":%lld,",
                    static_cast<long long>(e.dur_us));
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "\"pid\":%d,\"tid\":%d", e.pid, e.tid);
    out += buf;
    append_args(out, e.args, e.detail);
    out += '}';
  }
  std::snprintf(buf, sizeof(buf),
                "],\"displayTimeUnit\":\"ms\","
                "\"otherData\":{\"droppedEvents\":%lld}}",
                static_cast<long long>(total_dropped));
  out += buf;
  return out;
}

bool Tracer::write_json(const std::string& path) const {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

namespace {

// The tracer behind the common/logging hook. Written only by
// attach_log_tracer (under the log mutex via set_log_hook) and read by the
// hook itself, which also runs under the log mutex.
Tracer* g_log_tracer = nullptr;

void log_to_tracer(LogLevel level, const char* message, void* /*ctx*/) {
  Tracer* const t = g_log_tracer;
  if (t == nullptr || level < LogLevel::kWarn) return;
  const char* const name = level >= LogLevel::kError ? "error" : "warn";
  t->instant_text(t->now_micros(), name, "log", kSchedulerTrack, 0, message);
}

}  // namespace

void attach_log_tracer(Tracer* tracer) {
  // Order matters on detach: clear the hook first so no emit() can race a
  // dying tracer. set_log_hook serializes with in-flight emits.
  if (tracer == nullptr) {
    set_log_hook(nullptr, nullptr);
    g_log_tracer = nullptr;
    return;
  }
  g_log_tracer = tracer;
  set_log_hook(&log_to_tracer, nullptr);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->events.clear();
    ring->next = 0;
    ring->dropped = 0;
    ring->seq = 0;
  }
  track_names_.clear();
  lane_names_.clear();
}

}  // namespace muri::obs
