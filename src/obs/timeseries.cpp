#include "obs/timeseries.h"

#include <algorithm>
#include <cstdio>

#include "common/stats.h"

namespace muri::obs {

namespace {

void append_number(std::string& out, double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 &&
      v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

TimeSeries::TimeSeries(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void TimeSeries::append(double t, double v) {
  ring_[head_] = Point{t, v};
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) ++size_;
  ++appended_;
}

std::vector<TimeSeries::Point> TimeSeries::window(double now,
                                                  double window_s) const {
  std::vector<Point> out;
  if (size_ == 0) return out;
  const double cutoff = window_s > 0 ? now - window_s : ring_[0].time;
  const std::size_t oldest = (head_ + capacity_ - size_) % capacity_;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    const Point& p = ring_[(oldest + i) % capacity_];
    if (window_s > 0 && p.time < cutoff) continue;
    out.push_back(p);
  }
  return out;
}

WindowStats TimeSeries::stats(double now, double window_s) const {
  WindowStats ws;
  const std::vector<Point> pts = window(now, window_s);
  if (pts.empty()) return ws;
  std::vector<double> values;
  values.reserve(pts.size());
  for (const Point& p : pts) values.push_back(p.value);
  ws.count = static_cast<std::int64_t>(values.size());
  ws.min = min_of(values);
  ws.max = max_of(values);
  ws.avg = mean(values);
  ws.p50 = percentile(values, 50.0);
  ws.p90 = percentile(values, 90.0);
  ws.p99 = percentile(values, 99.0);
  ws.last = pts.back().value;
  ws.first_time = pts.front().time;
  ws.last_time = pts.back().time;
  return ws;
}

TimeSeriesStore::TimeSeriesStore(std::size_t capacity_per_series)
    : capacity_(capacity_per_series == 0 ? 1 : capacity_per_series) {}

TimeSeriesStore::Entry& TimeSeriesStore::entry_locked(
    const std::string& name) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(name, Entry(capacity_)).first;
  }
  return it->second;
}

void TimeSeriesStore::add_probe(const std::string& name, ProbeKind kind,
                                Probe probe) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry_locked(name);
  e.kind = kind;
  e.probe = std::move(probe);
  probe_order_.push_back(name);
}

void TimeSeriesStore::append(const std::string& name, double t, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  entry_locked(name).series.append(t, v);
}

void TimeSeriesStore::sample(double now) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& name : probe_order_) {
    Entry& e = series_.find(name)->second;
    if (!e.probe) continue;
    const double raw = e.probe();
    if (e.kind == ProbeKind::kGauge) {
      e.series.append(now, raw);
      continue;
    }
    // kRate: the first reading only seeds the diff base.
    if (e.has_prev && now > e.prev_time) {
      e.series.append(now, (raw - e.prev_raw) / (now - e.prev_time));
    }
    e.has_prev = true;
    e.prev_raw = raw;
    e.prev_time = now;
  }
  ++samples_;
  last_sample_time_ = now;
}

std::size_t TimeSeriesStore::samples_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

double TimeSeriesStore::last_sample_time() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_sample_time_;
}

std::vector<std::string> TimeSeriesStore::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, entry] : series_) out.push_back(name);
  return out;
}

bool TimeSeriesStore::has_series(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.count(name) > 0;
}

WindowStats TimeSeriesStore::stats(const std::string& name, double now,
                                   double window_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) return WindowStats{};
  return it->second.series.stats(now, window_s);
}

std::vector<TimeSeries::Point> TimeSeriesStore::points(
    const std::string& name, double now, double window_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end()) return {};
  return it->second.series.window(now, window_s);
}

std::string TimeSeriesStore::history_json(double now, double window_s,
                                          bool include_points) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"now\":";
  append_number(out, now);
  out += ",\"window_s\":";
  append_number(out, window_s);
  out += ",\"samples\":";
  append_number(out, static_cast<double>(samples_));
  out += ",\"capacity_per_series\":";
  append_number(out, static_cast<double>(capacity_));
  out += ",\"series\":{";
  bool first = true;
  for (const auto& [name, entry] : series_) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ":{";
    const WindowStats ws = entry.series.stats(now, window_s);
    out += "\"count\":";
    append_number(out, static_cast<double>(ws.count));
    out += ",\"min\":";
    append_number(out, ws.min);
    out += ",\"max\":";
    append_number(out, ws.max);
    out += ",\"avg\":";
    append_number(out, ws.avg);
    out += ",\"p50\":";
    append_number(out, ws.p50);
    out += ",\"p90\":";
    append_number(out, ws.p90);
    out += ",\"p99\":";
    append_number(out, ws.p99);
    out += ",\"last\":";
    append_number(out, ws.last);
    if (include_points) {
      out += ",\"points\":[";
      const auto pts = entry.series.window(now, window_s);
      for (std::size_t i = 0; i < pts.size(); ++i) {
        if (i) out += ',';
        out += '[';
        append_number(out, pts[i].time);
        out += ',';
        append_number(out, pts[i].value);
        out += ']';
      }
      out += ']';
    }
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace muri::obs
