#include "obs/jobs_report.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/stats.h"

namespace muri::obs {

namespace {

std::string g17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string f3(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

struct Percentiles {
  double p50 = 0, p90 = 0, p99 = 0, mean = 0;
  std::size_t n = 0;
};

Percentiles percentiles_of(std::vector<double> xs) {
  Percentiles p;
  p.n = xs.size();
  if (xs.empty()) return p;
  double sum = 0;
  for (double x : xs) sum += x;
  p.mean = sum / static_cast<double>(xs.size());
  p.p50 = percentile(xs, 50);
  p.p90 = percentile(xs, 90);
  p.p99 = percentile(xs, 99);
  return p;
}

}  // namespace

JobsReport build_jobs_report(const std::vector<DecisionRecord>& records) {
  std::map<std::int64_t, JobLatencyRow> rows;
  auto row = [&rows](std::int64_t job) -> JobLatencyRow& {
    JobLatencyRow& r = rows[job];
    r.job = job;
    return r;
  };

  for (const DecisionRecord& rec : records) {
    const JsonValue& v = rec.value;
    const std::string& type = v.at("type").string;
    const double t = v.at("t").number;
    if (type == "job_submit" || type == "arrival") {
      JobLatencyRow& r = row(static_cast<std::int64_t>(v.at("job").number));
      if (r.submit_t < 0) r.submit_t = t;
    } else if (type == "placement") {
      for (const JsonValue& j : v.at("jobs").array) {
        JobLatencyRow& r = row(static_cast<std::int64_t>(j.number));
        if (r.first_scheduled_t < 0) r.first_scheduled_t = t;
      }
    } else if (type == "finish") {
      JobLatencyRow& r = row(static_cast<std::int64_t>(v.at("job").number));
      r.finished = true;
      r.end_t = t;
    } else if (type == "job_cancel") {
      JobLatencyRow& r = row(static_cast<std::int64_t>(v.at("job").number));
      r.cancelled = true;
      r.end_t = t;
    } else if (type == "preempt" || type == "evict") {
      ++row(static_cast<std::int64_t>(v.at("job").number)).preemptions;
    } else if (type == "restart") {
      ++row(static_cast<std::int64_t>(v.at("job").number)).restarts;
    }
  }

  JobsReport report;
  report.rows.reserve(rows.size());
  for (auto& [id, r] : rows) {
    if (r.finished) {
      ++report.finished;
    } else if (r.cancelled) {
      ++report.cancelled;
    } else {
      ++report.in_flight;
    }
    report.rows.push_back(std::move(r));
  }
  return report;
}

namespace {

std::pair<Percentiles, Percentiles> aggregates(const JobsReport& report) {
  std::vector<double> waits;
  std::vector<double> jcts;
  for (const JobLatencyRow& r : report.rows) {
    if (r.has_wait()) waits.push_back(r.wait());
    if (r.has_jct()) jcts.push_back(r.jct());
  }
  return {percentiles_of(std::move(waits)), percentiles_of(std::move(jcts))};
}

const char* state_of(const JobLatencyRow& r) {
  if (r.finished) return "finished";
  if (r.cancelled) return "cancelled";
  if (r.first_scheduled_t >= 0) return "scheduled";
  return "queued";
}

}  // namespace

std::string jobs_report_text(const JobsReport& report) {
  std::string out;
  out += "job        state      submit_t   wait_s     jct_s      preempt  restart\n";
  for (const JobLatencyRow& r : report.rows) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-10lld %-10s %-10s %-10s %-10s %-8lld %lld\n",
                  static_cast<long long>(r.job), state_of(r),
                  r.submit_t >= 0 ? f3(r.submit_t).c_str() : "-",
                  r.has_wait() ? f3(r.wait()).c_str() : "-",
                  r.has_jct() ? f3(r.jct()).c_str() : "-",
                  static_cast<long long>(r.preemptions),
                  static_cast<long long>(r.restarts));
    out += line;
  }
  const auto [wait, jct] = aggregates(report);
  out += "\njobs: " + std::to_string(report.rows.size()) +
         " (finished " + std::to_string(report.finished) + ", cancelled " +
         std::to_string(report.cancelled) + ", in flight " +
         std::to_string(report.in_flight) + ")\n";
  if (wait.n > 0) {
    out += "wait_s: mean " + f3(wait.mean) + "  p50 " + f3(wait.p50) +
           "  p90 " + f3(wait.p90) + "  p99 " + f3(wait.p99) + "\n";
  }
  if (jct.n > 0) {
    out += "jct_s:  mean " + f3(jct.mean) + "  p50 " + f3(jct.p50) +
           "  p90 " + f3(jct.p90) + "  p99 " + f3(jct.p99) + "\n";
  }
  return out;
}

std::string jobs_report_csv(const JobsReport& report) {
  std::string out =
      "job,state,submit_t,first_scheduled_t,end_t,wait_s,jct_s,preemptions,"
      "restarts\n";
  for (const JobLatencyRow& r : report.rows) {
    out += std::to_string(r.job);
    out += ",";
    out += state_of(r);
    out += ",";
    out += r.submit_t >= 0 ? g17(r.submit_t) : "";
    out += ",";
    out += r.first_scheduled_t >= 0 ? g17(r.first_scheduled_t) : "";
    out += ",";
    out += r.end_t >= 0 ? g17(r.end_t) : "";
    out += ",";
    out += r.has_wait() ? g17(r.wait()) : "";
    out += ",";
    out += r.has_jct() ? g17(r.jct()) : "";
    out += ",";
    out += std::to_string(r.preemptions);
    out += ",";
    out += std::to_string(r.restarts);
    out += "\n";
  }
  return out;
}

std::string jobs_report_json(const JobsReport& report) {
  std::string out = "{\"jobs\":[";
  bool first = true;
  for (const JobLatencyRow& r : report.rows) {
    if (!first) out += ",";
    first = false;
    out += "{\"job\":" + std::to_string(r.job);
    out += ",\"state\":\"";
    out += state_of(r);
    out += "\"";
    if (r.submit_t >= 0) out += ",\"submit_t\":" + g17(r.submit_t);
    if (r.first_scheduled_t >= 0) {
      out += ",\"first_scheduled_t\":" + g17(r.first_scheduled_t);
    }
    if (r.end_t >= 0) out += ",\"end_t\":" + g17(r.end_t);
    if (r.has_wait()) out += ",\"wait_s\":" + g17(r.wait());
    if (r.has_jct()) out += ",\"jct_s\":" + g17(r.jct());
    out += ",\"preemptions\":" + std::to_string(r.preemptions);
    out += ",\"restarts\":" + std::to_string(r.restarts);
    out += "}";
  }
  out += "],\"finished\":" + std::to_string(report.finished);
  out += ",\"cancelled\":" + std::to_string(report.cancelled);
  out += ",\"in_flight\":" + std::to_string(report.in_flight);
  const auto [wait, jct] = aggregates(report);
  if (wait.n > 0) {
    out += ",\"wait_s\":{\"mean\":" + g17(wait.mean) +
           ",\"p50\":" + g17(wait.p50) + ",\"p90\":" + g17(wait.p90) +
           ",\"p99\":" + g17(wait.p99) + "}";
  }
  if (jct.n > 0) {
    out += ",\"jct_s\":{\"mean\":" + g17(jct.mean) +
           ",\"p50\":" + g17(jct.p50) + ",\"p90\":" + g17(jct.p90) +
           ",\"p99\":" + g17(jct.p99) + "}";
  }
  out += "}\n";
  return out;
}

}  // namespace muri::obs
