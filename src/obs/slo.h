// SLO tracker — declarative service-level targets over rolling windows.
//
// A target names one quantity (fed as raw observations), a reduction over
// the rolling window (p99 or max), and a threshold. evaluate() recomputes
// every target, counts ok->violating edges as violations, and exposes a
// burn-rate gauge (observed value / threshold; >= 1 means the target is
// burning). The daemon's watchdog folds the tracker's verdict into
// /healthz, and `muri-loadgen --assert-slo` turns it into an exit code.
//
// Standard target names (used by the daemon, /stats, and muri-report):
//   queue_wait_s    p99 of job queue wait (simulated seconds)
//   round_latency_s p99 of scheduling-round wall latency
//   wal_fsync_s     max WAL fsync latency in the window
//   loop_stall_s    max observed event-loop stall
//
// Like every obs hook the tracker is optional; a default SloConfig has all
// thresholds disabled and any_enabled() false, and nothing in the
// scheduling path reads it.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/timeseries.h"

namespace muri::obs {

class MetricsRegistry;

// Declarative targets; thresholds < 0 disable the target.
struct SloConfig {
  double window_s = 60.0;          // rolling evaluation window (store clock)
  double queue_wait_p99_s = -1;    // p99 job queue wait bound
  double round_latency_p99_s = -1; // p99 scheduling-round wall-latency bound
  double fsync_max_s = -1;         // max WAL fsync latency bound
  double loop_stall_max_s = -1;    // max event-loop stall bound

  bool any_enabled() const noexcept {
    return queue_wait_p99_s >= 0 || round_latency_p99_s >= 0 ||
           fsync_max_s >= 0 || loop_stall_max_s >= 0;
  }
};

class SloTracker {
 public:
  enum class Reduce { kP99, kMax };

  // Builds one tracked target per enabled threshold. When `registry` is
  // non-null, evaluate() mirrors state into muri_slo_violations_total /
  // muri_slo_burn_rate / muri_slo_violating series labeled by target.
  explicit SloTracker(const SloConfig& cfg,
                      MetricsRegistry* registry = nullptr);

  // Feed one raw observation for a target (by standard name). Unknown or
  // disabled targets are ignored, so callers can observe unconditionally.
  void observe(const std::string& target, double t, double v);

  // Recompute every target over [now - window_s, now]. A target with no
  // samples in the window is treated as meeting its SLO.
  void evaluate(double now);

  struct TargetState {
    std::string name;
    double threshold = 0;
    Reduce reduce = Reduce::kP99;
    double value = 0;          // reduced window value at last evaluate()
    double burn_rate = 0;      // value / threshold
    bool violating = false;
    std::int64_t violations = 0;  // ok -> violating edges
    std::int64_t samples = 0;     // samples in window at last evaluate()
  };

  std::vector<TargetState> targets() const;
  bool enabled() const;          // any target configured
  bool ok() const;               // no target currently violating
  std::string reason() const;    // "a,b" list of violating targets; "" if ok
  std::int64_t violations_total() const;
  double window_s() const noexcept { return window_s_; }

  // {"enabled":..,"status":"ok"|"violating","window_s":..,"targets":[...]}
  // Deterministic for a given tracker state.
  std::string json() const;

 private:
  struct Entry {
    TargetState state;
    TimeSeries samples{1024};
  };

  void evaluate_locked(double now);

  mutable std::mutex mu_;
  double window_s_;
  std::vector<Entry> entries_;
  MetricsRegistry* registry_ = nullptr;
};

}  // namespace muri::obs
