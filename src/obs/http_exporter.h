// Minimal loopback HTTP server — the metrics peephole grown into the
// service control plane's front door.
//
// A single background thread runs a blocking accept loop on a loopback
// socket. Three routes are built in:
//
//   GET /metrics        Prometheus text exposition (text/plain; version=0.0.4)
//   GET /metrics.json   the registry's JSON snapshot
//   GET /healthz        liveness probe (200, body "ok\n", no registry access)
//
// An optional handler (set_handler) is consulted *before* the built-ins
// and may claim any method/path — this is how the service daemon
// (src/service) mounts POST /jobs, GET /jobs/<id>, DELETE /jobs/<id> on
// the same listener. A request the handler declines falls through to the
// built-in routes: non-GET methods get 405, unknown paths 404 (both with
// Content-Length, like every response).
//
// Parsing is hardened against abusive clients: the request line + headers
// are bounded (413 when exceeded), a declared Content-Length above the
// body cap is rejected with 413 before the body is read, and every
// connection carries a read timeout — a client that stalls mid-request
// gets 408 instead of wedging the accept loop (set_limits tunes all
// three). Requests are served one at a time with Connection: close — an
// operator peephole and a single-scraper/loadgen door, not a web server.
// The registry handles are thread-safe, so scraping a run in flight is
// safe by construction.
//
// Opt-in via --metrics-port in bench_util and examples/live_interleave;
// port 0 binds an ephemeral port (see port() after start), which is what
// the tests use. stop() (or destruction) shuts the listener down and joins
// the serving thread; in-flight responses finish first.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace muri::obs {

class MetricsRegistry;

// A parsed inbound request: method and path verbatim from the request
// line, body exactly Content-Length bytes (empty when absent).
struct HttpRequest {
  std::string method;
  std::string path;
  std::string body;
};

// What a handler fills in. `status` is the numeric code (the reason
// phrase is derived); `extra_headers` lets a handler attach e.g.
// Retry-After for 429 backpressure.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain";
  std::string body;
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

// Maps a status code to its full "<code> <reason>" status line token
// (unknown codes fall back to "500 Internal Server Error").
const char* http_status_line(int status);

class HttpExporter {
 public:
  // Returns true if it handled the request (the response is sent as
  // filled in), false to fall through to the built-in routes.
  using Handler = std::function<bool(const HttpRequest&, HttpResponse&)>;

  explicit HttpExporter(const MetricsRegistry& registry)
      : registry_(registry) {}
  ~HttpExporter() { stop(); }

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  // Binds 127.0.0.1:port (0 = ephemeral) and starts the serving thread.
  // Returns false with a message in `error` on socket failures or if
  // already running. A port held by another process (EADDRINUSE — the
  // usual race when a daemon restarts before the old socket leaves
  // TIME_WAIT) is retried with doubling backoff, bounded by
  // set_bind_retry; other bind failures are immediate.
  bool start(int port, std::string* error);

  // Tunes the EADDRINUSE retry budget: total bind attempts (>= 1) and
  // the initial backoff between them (doubling, capped at 1s). Defaults:
  // 5 attempts from 50ms, ~1.5s worst case. Call before start().
  void set_bind_retry(int attempts, int initial_backoff_ms) {
    bind_attempts_ = attempts > 0 ? attempts : 1;
    bind_backoff_ms_ = initial_backoff_ms > 0 ? initial_backoff_ms : 1;
  }

  // Mounts the routing handler. Call before start(); the serving thread
  // reads it without synchronization.
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  // Parser hardening knobs. `max_header_bytes` bounds the request line +
  // headers, `max_body_bytes` the declared Content-Length (413 beyond
  // either); `read_timeout_ms` is the per-recv stall budget (408 on
  // expiry; 0 disables). Call before start().
  void set_limits(std::size_t max_header_bytes, std::size_t max_body_bytes,
                  int read_timeout_ms) {
    max_header_bytes_ = max_header_bytes;
    max_body_bytes_ = max_body_bytes;
    read_timeout_ms_ = read_timeout_ms;
  }

  // Optional HTTP-level accounting (response counters by status code,
  // `muri_http_responses_total`). Null — the default — records nothing.
  // Call before start().
  void set_request_metrics(MetricsRegistry* metrics) {
    request_metrics_ = metrics;
  }

  // Shuts the listener down and joins the serving thread. Idempotent.
  void stop();

  bool running() const { return listen_fd_.load() >= 0; }
  // The bound port (resolves ephemeral binds); 0 when not running.
  int port() const { return port_; }

 private:
  void serve();
  void handle_connection(int fd);
  // Sends the response and bumps the per-status counter when accounting
  // is attached.
  void respond(int fd, int status, const char* content_type,
               const std::string& body,
               const std::vector<std::pair<std::string, std::string>>*
                   extra_headers = nullptr);

  const MetricsRegistry& registry_;
  Handler handler_;
  MetricsRegistry* request_metrics_ = nullptr;
  std::thread thread_;
  // Shared with the serving thread (its accept loop re-reads it each
  // iteration), so stop() can retire the socket race-free.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  int bind_attempts_ = 5;
  int bind_backoff_ms_ = 50;
  std::size_t max_header_bytes_ = 8192;
  std::size_t max_body_bytes_ = 1 << 20;
  int read_timeout_ms_ = 5000;
};

}  // namespace muri::obs
