// Minimal live-metrics HTTP endpoint — the "scrape it" door into the
// metrics registry.
//
// A single background thread runs a blocking accept loop on a loopback
// socket and answers three routes:
//
//   GET /metrics        Prometheus text exposition (text/plain; version=0.0.4)
//   GET /metrics.json   the registry's JSON snapshot
//   GET /healthz        liveness probe (200, body "ok\n", no registry access)
//
// anything else is a 404 (with Content-Length, like every response). Requests are served one at a time with
// Connection: close — this is an operator peephole for `curl` and a
// single Prometheus scraper, not a web server. The registry handles are
// thread-safe, so scraping a run in flight is safe by construction.
//
// Opt-in via --metrics-port in bench_util and examples/live_interleave;
// port 0 binds an ephemeral port (see port() after start), which is what
// the tests use. stop() (or destruction) shuts the listener down and joins
// the serving thread; in-flight responses finish first.
#pragma once

#include <atomic>
#include <string>
#include <thread>

namespace muri::obs {

class MetricsRegistry;

class HttpExporter {
 public:
  explicit HttpExporter(const MetricsRegistry& registry)
      : registry_(registry) {}
  ~HttpExporter() { stop(); }

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  // Binds 127.0.0.1:port (0 = ephemeral) and starts the serving thread.
  // Returns false with a message in `error` on socket failures or if
  // already running. A port held by another process (EADDRINUSE — the
  // usual race when a daemon restarts before the old socket leaves
  // TIME_WAIT) is retried with doubling backoff, bounded by
  // set_bind_retry; other bind failures are immediate.
  bool start(int port, std::string* error);

  // Tunes the EADDRINUSE retry budget: total bind attempts (>= 1) and
  // the initial backoff between them (doubling, capped at 1s). Defaults:
  // 5 attempts from 50ms, ~1.5s worst case. Call before start().
  void set_bind_retry(int attempts, int initial_backoff_ms) {
    bind_attempts_ = attempts > 0 ? attempts : 1;
    bind_backoff_ms_ = initial_backoff_ms > 0 ? initial_backoff_ms : 1;
  }

  // Shuts the listener down and joins the serving thread. Idempotent.
  void stop();

  bool running() const { return listen_fd_.load() >= 0; }
  // The bound port (resolves ephemeral binds); 0 when not running.
  int port() const { return port_; }

 private:
  void serve();
  void handle_connection(int fd);

  const MetricsRegistry& registry_;
  std::thread thread_;
  // Shared with the serving thread (its accept loop re-reads it each
  // iteration), so stop() can retire the socket race-free.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  int bind_attempts_ = 5;
  int bind_backoff_ms_ = 50;
};

}  // namespace muri::obs
