// Minimal JSON reader + Chrome-trace schema check.
//
// The obs exporters *write* JSON; tests and the CI bench-smoke gate need
// to *read* it back to prove the output is well-formed and carries the
// tracks/events it claims to. This is a deliberately small recursive-
// descent parser for that closed loop — full JSON value grammar, UTF-8
// passed through verbatim, no streaming — not a general-purpose library.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace muri::obs {

// A parsed JSON value. Objects use std::map so iteration is ordered.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const noexcept { return type == Type::kObject; }
  bool is_array() const noexcept { return type == Type::kArray; }
  bool is_string() const noexcept { return type == Type::kString; }
  bool is_number() const noexcept { return type == Type::kNumber; }

  // Object member or null-typed sentinel when absent / not an object.
  const JsonValue& at(const std::string& key) const;
};

// Parses `text` into `out`. On failure returns false and, if `error` is
// non-null, stores a message with the byte offset of the problem.
bool parse_json(std::string_view text, JsonValue& out,
                std::string* error = nullptr);

// Validates `text` as a Chrome trace_event JSON object: parses, requires
// a non-empty "traceEvents" array whose entries carry name/ph/pid/tid/ts
// with the right types ('X' events also need "dur"). On failure returns
// false with a diagnostic in `error`.
bool validate_chrome_trace(std::string_view text, std::string* error = nullptr);

}  // namespace muri::obs
