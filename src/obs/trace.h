// Structured event tracing — the "see the schedule" half of src/obs.
//
// A Tracer collects begin/end ("complete") spans and instant events into
// per-thread ring buffers and exports them as Chrome trace_event JSON, so
// a simulator run or a live executor window opens directly in
// chrome://tracing / Perfetto with per-machine tracks showing job stages,
// barriers, rounds, preemptions, and fault windows.
//
// Design constraints (DESIGN.md "Observability"):
//
//  - Disabled is free: every record call starts with one relaxed atomic
//    load and returns; a null Tracer* in an options struct costs nothing.
//  - Thread-safe without cross-thread contention: each recording thread
//    owns a ring buffer (registered on first use); the buffer's mutex is
//    only ever contended by a concurrent export, never by another
//    recorder, so steady-state recording is an uncontended lock plus a
//    struct write. This is the property that keeps recording from the
//    scheduler's thread pool TSan-clean.
//  - Bounded memory: rings have fixed capacity; once full the oldest
//    event is overwritten and `dropped()` counts what was lost. An
//    exported trace therefore always holds the *most recent* window.
//  - Two clock domains behind one `now_micros()`: wall time
//    (steady_clock since construction) for the live executor, and
//    manually-advanced simulated time for the simulator — the simulator
//    calls set_manual_seconds() as its event loop advances, which
//    switches the tracer to the manual domain permanently. Manual-domain
//    timestamps are a pure function of simulator state, so a fixed-seed
//    sim run exports byte-identical JSON.
//
// Event names and categories must be string literals (or otherwise
// outlive the tracer): events store the pointers, not copies.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace muri::obs {

// Well-known Chrome-trace "process" ids (tracks). Machines get their own
// track each so the schedule reads as one row per fault domain.
inline constexpr int kSchedulerTrack = 1;  // rounds, queue-level events
inline constexpr int kExecutorTrack = 2;   // live-executor stage/barrier spans
inline constexpr int kMachineTrackBase = 10;
inline constexpr int machine_track(int machine) noexcept {
  return kMachineTrackBase + machine;
}

// Numeric key/value pairs attached to an event. Four constructor slots
// cover the common cases; add() appends further pairs (up to kCapacity,
// enough for a ResourceVector of busy fractions plus group bookkeeping —
// what the analysis layer reads back without heuristics). Keys must be
// string literals; unset slots have null keys.
struct TraceArgs {
  static constexpr int kCapacity = 14;

  const char* key[kCapacity] = {};
  double value[kCapacity] = {};

  TraceArgs() = default;
  TraceArgs(const char* k1, double v1) {
    key[0] = k1;
    value[0] = v1;
  }
  TraceArgs(const char* k1, double v1, const char* k2, double v2)
      : TraceArgs(k1, v1) {
    key[1] = k2;
    value[1] = v2;
  }
  TraceArgs(const char* k1, double v1, const char* k2, double v2,
            const char* k3, double v3)
      : TraceArgs(k1, v1, k2, v2) {
    key[2] = k3;
    value[2] = v3;
  }
  TraceArgs(const char* k1, double v1, const char* k2, double v2,
            const char* k3, double v3, const char* k4, double v4)
      : TraceArgs(k1, v1, k2, v2, k3, v3) {
    key[3] = k4;
    value[3] = v4;
  }

  // Appends a pair into the first free slot; silently drops once full
  // (tracing must never abort the host).
  TraceArgs& add(const char* k, double v) {
    for (int i = 0; i < kCapacity; ++i) {
      if (key[i] == nullptr) {
        key[i] = k;
        value[i] = v;
        break;
      }
    }
    return *this;
  }
};

class Tracer;

// RAII wall-span: records a complete event from construction to
// destruction using the tracer's clock. In the manual (sim-time) domain
// the span collapses to zero duration at the current simulated instant —
// harmless, and still a deterministic marker.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name, const char* cat, int pid,
             int tid, TraceArgs args = {});
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  const char* name_;
  const char* cat_;
  int pid_;
  int tid_;
  TraceArgs args_;
  std::int64_t start_us_;
};

class Tracer {
 public:
  // `ring_capacity` is the per-thread event budget; the default holds a
  // full testbed-trace simulation with room to spare.
  explicit Tracer(std::size_t ring_capacity = 1 << 16);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Recording gate. A disabled tracer drops every record call after one
  // relaxed load; metadata (track names) is still accepted so tracks are
  // labeled even if recording is toggled on mid-run.
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Clock. now_micros() reads steady_clock relative to construction until
  // the first set_manual_seconds() call switches the tracer to the
  // manually-advanced (simulated-time) domain for good.
  std::int64_t now_micros() const noexcept;
  void set_manual_seconds(double seconds) noexcept;
  bool manual_time() const noexcept {
    return manual_mode_.load(std::memory_order_relaxed);
  }

  // Point event at `ts_us` (defaults to now).
  void instant(const char* name, const char* cat, int pid, int tid,
               TraceArgs args = {});
  void instant_at(std::int64_t ts_us, const char* name, const char* cat,
                  int pid, int tid, TraceArgs args = {});

  // Span with explicit timestamps — the simulator's bread and butter: it
  // knows a job's run window only once the job stops, so it records the
  // whole span retroactively in simulated micros.
  void complete(std::int64_t ts_us, std::int64_t dur_us, const char* name,
                const char* cat, int pid, int tid, TraceArgs args = {});

  // Counter sample ('C' phase): Perfetto renders each args key as a
  // stacked counter track under the pid. The utilization analytics emit
  // per-machine busy fractions this way.
  void counter(std::int64_t ts_us, const char* name, int pid,
               TraceArgs args = {});

  // Instant event carrying an owned text payload, exported as
  // args.message — the log-routing path: MURI_LOG lines land on the
  // timeline next to the spans they explain. Unlike name/cat, `message`
  // is copied.
  void instant_text(std::int64_t ts_us, const char* name, const char* cat,
                    int pid, int tid, const std::string& message);

  ScopedSpan span(const char* name, const char* cat, int pid, int tid,
                  TraceArgs args = {}) {
    return ScopedSpan(this, name, cat, pid, tid, args);
  }

  // Hands out 1-based run epochs. Several simulator runs may share one
  // tracer (the bench tables do); each run stamps its epoch on job-scoped
  // events so the analysis layer can separate runs whose simulated-time
  // windows and job ids overlap. Deterministic: a fresh tracer always
  // starts at 1.
  int begin_run_epoch() noexcept {
    return run_epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  // Track labels, shown by Perfetto as process/thread names. Idempotent;
  // accepted even while disabled.
  void name_track(int pid, const std::string& name);
  void name_lane(int pid, int tid, const std::string& name);

  // Events currently held across all rings (drops excluded).
  std::size_t recorded() const;
  // Events lost to ring wraparound since construction (or clear()).
  std::int64_t dropped() const;

  // Chrome trace_event JSON ("traceEvents" array object form). Events are
  // merged from all rings and sorted by (ts, pid, tid, registration, seq),
  // so the output is a pure function of the recorded event set — in the
  // manual clock domain, byte-stable across identical runs.
  std::string chrome_trace_json() const;

  // Writes chrome_trace_json() to `path`; false on I/O failure.
  bool write_json(const std::string& path) const;

  // Drops all events, drop counts, and track names; keeps enabled state
  // and clock domain. Buffers stay registered with their threads.
  void clear();

 private:
  friend class ScopedSpan;

  struct Event {
    const char* name;
    const char* cat;
    char phase;  // 'X' complete, 'i' instant, 'C' counter
    int pid;
    int tid;
    std::int64_t ts_us;
    std::int64_t dur_us;
    std::uint64_t seq;
    TraceArgs args;
    std::string detail;  // optional owned text, exported as args.message
  };

  struct Ring {
    explicit Ring(std::size_t capacity) { events.reserve(capacity); }
    mutable std::mutex mu;  // recorder vs. exporter; never recorder pairs
    std::vector<Event> events;  // grows to capacity, then wraps
    std::size_t capacity = 0;
    std::size_t next = 0;  // overwrite cursor once full
    std::int64_t dropped = 0;
    std::uint64_t seq = 0;
  };

  void record(char phase, std::int64_t ts_us, std::int64_t dur_us,
              const char* name, const char* cat, int pid, int tid,
              const TraceArgs& args, const std::string* detail = nullptr);
  Ring& local_ring();

  const std::size_t ring_capacity_;
  const std::uint64_t generation_;  // distinguishes tracers at reused addresses
  std::atomic<bool> enabled_{false};
  std::atomic<int> run_epoch_{0};
  std::atomic<bool> manual_mode_{false};
  std::atomic<std::int64_t> manual_us_{0};
  std::chrono::steady_clock::time_point origin_;

  mutable std::mutex registry_mu_;  // rings_ vector + track names
  std::vector<std::unique_ptr<Ring>> rings_;
  std::map<int, std::string> track_names_;
  std::map<std::pair<int, int>, std::string> lane_names_;
};

// Routes MURI_LOG(kWarn)/(kError) messages into `tracer` as instant
// "warn"/"error" events (cat "log", scheduler track) via the global hook
// in common/logging. Pass nullptr to detach — required before the tracer
// dies. Messages below kWarn are never forwarded. The hook is process-
// wide; the last attach wins.
void attach_log_tracer(Tracer* tracer);

}  // namespace muri::obs
