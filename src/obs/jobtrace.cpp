#include "obs/jobtrace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/metrics.h"

namespace muri::obs {

namespace {

constexpr const char* kSpanKindNames[kNumSpanKinds] = {
    "awaiting_round", "no_capacity", "lost_priority", "deferred",
    "preempted",      "faulted",     "restart",       "run",
    "degraded",
};

// Relative tolerance for float-sum comparisons: spans are contiguous by
// construction (bit-equal endpoints), but summing their lengths is not
// the same float expression as finish - submit.
bool close_enough(double a, double b) {
  return std::fabs(a - b) <= 1e-9 * std::max({1.0, std::fabs(a),
                                              std::fabs(b)});
}

void append_num(std::string& out, double v) { append_json_double(out, v); }

void append_int(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out += buf;
}

void append_id_array(std::string& out, const std::vector<std::int64_t>& v) {
  out += '[';
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ',';
    append_int(out, v[i]);
  }
  out += ']';
}

std::vector<double> wait_bucket_bounds() {
  return {1, 10, 60, 300, 900, 3600, 14400, 86400};
}

double num_field(const JsonValue& v, const char* key, double fallback) {
  const JsonValue& f = v.at(key);
  return f.is_number() ? f.number : fallback;
}

std::int64_t int_field(const JsonValue& v, const char* key,
                       std::int64_t fallback) {
  const JsonValue& f = v.at(key);
  return f.is_number() ? static_cast<std::int64_t>(f.number) : fallback;
}

std::string str_field(const JsonValue& v, const char* key) {
  const JsonValue& f = v.at(key);
  return f.is_string() ? f.string : std::string();
}

bool id_array_field(const JsonValue& v, const char* key,
                    std::vector<std::int64_t>& out) {
  const JsonValue& f = v.at(key);
  if (!f.is_array()) return false;
  out.clear();
  out.reserve(f.array.size());
  for (const JsonValue& e : f.array) {
    if (!e.is_number()) return false;
    out.push_back(static_cast<std::int64_t>(e.number));
  }
  return true;
}

}  // namespace

const char* span_kind_name(SpanKind kind) noexcept {
  const auto i = static_cast<size_t>(kind);
  return i < static_cast<size_t>(kNumSpanKinds) ? kSpanKindNames[i]
                                                : "unknown";
}

bool span_kind_from_name(std::string_view name, SpanKind& out) noexcept {
  for (int i = 0; i < kNumSpanKinds; ++i) {
    if (name == kSpanKindNames[i]) {
      out = static_cast<SpanKind>(i);
      return true;
    }
  }
  return false;
}

bool span_kind_is_wait(SpanKind kind) noexcept {
  return kind < SpanKind::kRestart;
}

SpanKind classify_wait(bool deferred_by_scheduler, int need_gpus,
                       int capacity_gpus) noexcept {
  if (deferred_by_scheduler) return SpanKind::kDeferred;
  if (need_gpus > capacity_gpus) return SpanKind::kNoCapacity;
  return SpanKind::kLostPriority;
}

// -- JobTraceLog ------------------------------------------------------

JobTraceLog::State* JobTraceLog::live(std::int64_t job) {
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return nullptr;
  State& s = it->second;
  if (s.finished || s.cancelled || s.spans.empty()) return nullptr;
  return &s;
}

void JobTraceLog::close_open(State& s, double t) {
  if (s.spans.empty() || !s.spans.back().open) return;
  RawSpan& b = s.spans.back();
  b.end = t;
  b.open = false;
  // Zero-length spans are transition noise (several events at one
  // instant); dropping them is what makes the offline fold — whose
  // record order differs slightly within an instant — converge to the
  // exact live spans.
  if (b.end <= b.start) s.spans.pop_back();
}

void JobTraceLog::open_span(State& s, RawSpan span) {
  span.open = true;
  s.spans.push_back(std::move(span));
}

void JobTraceLog::accepted(std::int64_t job, double t) {
  std::lock_guard<std::mutex> lock(mu_);
  State& s = jobs_[job];
  if (s.job < 0) s.job = job;
  if (s.accept < 0) s.accept = t;
}

void JobTraceLog::submitted(std::int64_t job, double t, bool restored) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = jobs_.try_emplace(job);
  State& s = it->second;
  if (!inserted && !s.spans.empty()) {
    // Re-submission of a live trace only happens on WAL restore; the
    // pre-crash spans are unattributable, so the trace starts over.
    const double accept = s.accept;
    s = State{};
    s.accept = accept;
  }
  s.job = job;
  s.submit = t;
  s.restored = s.restored || restored;
  s.placed = false;
  s.cur_straggler = 1.0;
  RawSpan span;
  span.kind = SpanKind::kAwaitingRound;
  span.start = t;
  open_span(s, std::move(span));
}

void JobTraceLog::wait_verdict(std::int64_t job, double t, std::int64_t round,
                               SpanKind bucket) {
  std::lock_guard<std::mutex> lock(mu_);
  State* s = live(job);
  if (s == nullptr || s->placed) return;
  RawSpan& b = s->spans.back();
  if (b.open) {
    // Same verdict again: the wait continues, stamped with one more
    // round. A preempted/faulted span opened at this same instant also
    // absorbs the verdict — the displacement is the cause of the wait
    // until the scheduler reconsiders at a later round.
    const bool fresh_displacement =
        (b.kind == SpanKind::kPreempted || b.kind == SpanKind::kFaulted) &&
        b.start == t;
    if (b.kind == bucket || fresh_displacement) {
      if (b.rounds.empty() || b.rounds.back() != round) {
        b.rounds.push_back(round);
      }
      return;
    }
  }
  close_open(*s, t);
  RawSpan span;
  span.kind = bucket;
  span.start = t;
  span.rounds = {round};
  open_span(*s, std::move(span));
}

void JobTraceLog::placed(std::int64_t job, double t, std::int64_t round,
                         const std::vector<std::int64_t>& group, double gamma,
                         std::string_view mode) {
  std::lock_guard<std::mutex> lock(mu_);
  State* s = live(job);
  if (s == nullptr) return;
  std::vector<std::int64_t> sorted = group;
  std::sort(sorted.begin(), sorted.end());
  if (s->placed && s->spans.back().open) {
    RawSpan& b = s->spans.back();
    if (b.group == sorted && b.mode == mode) {
      // Unchanged placement: no new restart gate. Merge when nothing
      // else drifted, otherwise cycle the span (degraded continuation
      // re-admitted as a normal group, or the scheduler's predicted γ
      // moved) keeping the old gate.
      if (b.kind == SpanKind::kRun && b.gamma == gamma) {
        if (b.rounds.empty() || b.rounds.back() != round) {
          b.rounds.push_back(round);
        }
        return;
      }
      const double gate = b.gate_until;
      close_open(*s, t);
      RawSpan span;
      span.kind = SpanKind::kRun;
      span.start = t;
      span.rounds = {round};
      span.group = std::move(sorted);
      span.gamma = gamma;
      span.mode = std::string(mode);
      span.straggler = s->cur_straggler;
      span.gate_until = gate;
      open_span(*s, std::move(span));
      return;
    }
  }
  // First placement or regrouped: the restart gate opens.
  close_open(*s, t);
  RawSpan span;
  span.kind = SpanKind::kRun;
  span.start = t;
  span.rounds = {round};
  span.group = std::move(sorted);
  span.gamma = gamma;
  span.mode = std::string(mode);
  span.straggler = s->cur_straggler;
  span.gate_until = t + restart_penalty_;
  s->placed = true;
  open_span(*s, std::move(span));
}

void JobTraceLog::degraded_continue(std::int64_t job, double t,
                                    std::int64_t round,
                                    const std::vector<std::int64_t>& group,
                                    double gamma, std::string_view mode) {
  std::lock_guard<std::mutex> lock(mu_);
  State* s = live(job);
  if (s == nullptr || !s->placed) return;
  std::vector<std::int64_t> sorted = group;
  std::sort(sorted.begin(), sorted.end());
  const RawSpan& b = s->spans.back();
  // Survivors keep their old gate and straggler factor; only the group
  // configuration (and its predicted γ) changed.
  const double gate = b.gate_until;
  const std::string span_mode = mode.empty() ? b.mode : std::string(mode);
  close_open(*s, t);
  RawSpan span;
  span.kind = SpanKind::kDegraded;
  span.start = t;
  span.rounds = {round};
  span.group = std::move(sorted);
  span.gamma = gamma;
  span.mode = span_mode;
  span.straggler = s->cur_straggler;
  span.gate_until = gate;
  open_span(*s, std::move(span));
}

void JobTraceLog::straggler(std::int64_t job, double t, double factor) {
  std::lock_guard<std::mutex> lock(mu_);
  State* s = live(job);
  if (s == nullptr) return;
  s->cur_straggler = factor;
  if (!s->placed || !s->spans.back().open) return;
  if (s->spans.back().straggler == factor) return;
  // Cycle the placed span so its straggler annotation stays piecewise
  // constant; everything else (group, γ, gate) carries over.
  RawSpan span = s->spans.back();
  close_open(*s, t);
  span.start = t;
  span.straggler = factor;
  span.open = false;
  open_span(*s, std::move(span));
}

void JobTraceLog::preempted(std::int64_t job, double t, std::int64_t round) {
  std::lock_guard<std::mutex> lock(mu_);
  State* s = live(job);
  if (s == nullptr || !s->placed) return;
  close_open(*s, t);
  s->placed = false;
  s->cur_straggler = 1.0;
  RawSpan span;
  span.kind = SpanKind::kPreempted;
  span.start = t;
  span.rounds = {round};
  open_span(*s, std::move(span));
}

void JobTraceLog::faulted(std::int64_t job, double t, std::int64_t round) {
  std::lock_guard<std::mutex> lock(mu_);
  State* s = live(job);
  if (s == nullptr || !s->placed) return;
  close_open(*s, t);
  s->placed = false;
  s->cur_straggler = 1.0;
  RawSpan span;
  span.kind = SpanKind::kFaulted;
  span.start = t;
  span.rounds = {round};
  open_span(*s, std::move(span));
}

void JobTraceLog::finished(std::int64_t job, double t, double reported_jct) {
  std::lock_guard<std::mutex> lock(mu_);
  State* s = live(job);
  if (s == nullptr) return;
  close_open(*s, t);
  s->placed = false;
  s->finished = true;
  s->finish = t;
  s->reported_jct = reported_jct;
  finalize_locked(*s);
}

void JobTraceLog::cancelled(std::int64_t job, double t) {
  std::lock_guard<std::mutex> lock(mu_);
  State* s = live(job);
  if (s == nullptr) return;
  close_open(*s, t);
  s->placed = false;
  s->cancelled = true;
  s->finish = t;
}

void JobTraceLog::finalize_locked(State& s) {
  const JobTimeline tl = attribute(s);
  ++finished_jobs_;
  for (int k = 0; k < kNumSpanKinds; ++k) {
    totals_[static_cast<size_t>(k)] += tl.bucket_seconds[static_cast<size_t>(k)];
  }
  if (metrics_ == nullptr) return;
  for (int k = 0; k < kNumSpanKinds; ++k) {
    metrics_
        ->histogram("muri_job_wait_bucket_seconds",
                    "Attributed seconds per wait/run bucket, observed per "
                    "finished job",
                    wait_bucket_bounds(),
                    {{"bucket", kSpanKindNames[k]}})
        .observe(tl.bucket_seconds[static_cast<size_t>(k)]);
  }
}

void JobTraceLog::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  jobs_.clear();
}

JobTimeline JobTraceLog::attribute(const State& s) {
  JobTimeline tl;
  tl.job = s.job;
  tl.submit = s.submit;
  tl.finish = s.finish;
  tl.accept = s.accept;
  tl.finished = s.finished;
  tl.cancelled = s.cancelled;
  tl.restored = s.restored;
  tl.reported_jct = s.reported_jct;
  for (const RawSpan& r : s.spans) {
    const double end = r.open ? r.start : r.end;
    const auto push = [&](SpanKind kind, double a, double b) {
      TimelineSpan span;
      span.kind = kind;
      span.start = a;
      span.end = b;
      span.rounds = r.rounds;
      span.group = r.group;
      span.gamma = r.gamma;
      span.mode = r.mode;
      span.straggler = r.straggler;
      tl.bucket_seconds[static_cast<size_t>(kind)] += span.seconds();
      tl.spans.push_back(std::move(span));
    };
    if (r.kind == SpanKind::kRun || r.kind == SpanKind::kDegraded) {
      // The restart gate is pure stall: the placed span splits at the
      // gate into restart + progressing time.
      const double gate = std::min(std::max(r.gate_until, r.start), end);
      bool pushed = false;
      if (gate > r.start) {
        push(SpanKind::kRestart, r.start, gate);
        pushed = true;
      }
      if (end > gate || !pushed) push(r.kind, gate, end);
    } else {
      push(r.kind, r.start, end);
    }
  }
  return tl;
}

std::vector<JobTimeline> JobTraceLog::timelines() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobTimeline> out;
  out.reserve(jobs_.size());
  for (const auto& [id, s] : jobs_) {
    if (s.spans.empty()) continue;
    out.push_back(attribute(s));
  }
  return out;
}

bool JobTraceLog::timeline(std::int64_t job, JobTimeline& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(job);
  if (it == jobs_.end() || it->second.spans.empty()) return false;
  out = attribute(it->second);
  return true;
}

std::array<double, kNumSpanKinds> JobTraceLog::totals(
    std::int64_t* finished_jobs) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (finished_jobs != nullptr) *finished_jobs = finished_jobs_;
  return totals_;
}

// -- Validation -------------------------------------------------------

std::string validate_timeline(const JobTimeline& t) {
  if (t.spans.empty()) {
    if (t.finished && t.jct() > 0) return "finished job has no spans";
    return "";
  }
  if (t.spans.front().start != t.submit) {
    return "first span does not start at submit";
  }
  for (size_t i = 0; i + 1 < t.spans.size(); ++i) {
    if (t.spans[i].end != t.spans[i + 1].start) {
      return "spans not contiguous at index " + std::to_string(i);
    }
    if (t.spans[i].end < t.spans[i].start) {
      return "negative span at index " + std::to_string(i);
    }
  }
  double total = 0;
  for (const TimelineSpan& s : t.spans) total += s.seconds();
  if (!close_enough(total, t.total_seconds())) {
    return "bucket seconds do not sum to span seconds";
  }
  if (!t.finished) return "";
  if (t.spans.back().end != t.finish) {
    return "last span does not end at finish";
  }
  if (t.restored || t.cancelled || t.reported_jct < 0) return "";
  if (!close_enough(total, t.reported_jct)) {
    std::string err = "buckets sum to ";
    append_num(err, total);
    err += " but reported jct is ";
    append_num(err, t.reported_jct);
    return err;
  }
  return "";
}

// -- Offline fold -----------------------------------------------------

void build_job_traces(const std::vector<DecisionRecord>& records,
                      JobTraceLog& out) {
  // Scheduler-side group records of the current round, for the predicted
  // γ a placement realizes. Keyed by sorted members; reset per round.
  std::map<std::vector<std::int64_t>, double> round_gammas;
  std::int64_t gamma_round = -1;
  std::vector<std::int64_t> ids;

  for (const DecisionRecord& rec : records) {
    const JsonValue& v = rec.value;
    if (!v.is_object()) continue;
    const std::string type = str_field(v, "type");
    if (type.empty()) continue;
    const std::int64_t round = int_field(v, "round", 0);
    const double t = num_field(v, "t", 0);

    if (type == "sim_start") {
      out.clear();
      out.set_restart_penalty(num_field(v, "restart_penalty", 0));
    } else if (type == "daemon_start") {
      // No clear: a resumed WAL continues the same system; restored jobs
      // re-open via job_restore below.
      out.set_restart_penalty(num_field(v, "restart_penalty", 0));
    } else if (type == "arrival" || type == "job_submit") {
      out.submitted(int_field(v, "job", -1), t);
    } else if (type == "job_restore") {
      out.submitted(int_field(v, "job", -1), t, /*restored=*/true);
    } else if (type == "group") {
      if (id_array_field(v, "jobs", ids)) {
        if (round != gamma_round) {
          gamma_round = round;
          round_gammas.clear();
        }
        std::vector<std::int64_t> key = ids;
        std::sort(key.begin(), key.end());
        round_gammas[std::move(key)] = num_field(v, "gamma", 1.0);
      }
    } else if (type == "wait") {
      const JsonValue& buckets = v.at("bucket");
      if (id_array_field(v, "job", ids) && buckets.is_array() &&
          buckets.array.size() == ids.size()) {
        for (size_t i = 0; i < ids.size(); ++i) {
          SpanKind kind;
          if (buckets.array[i].is_string() &&
              span_kind_from_name(buckets.array[i].string, kind)) {
            out.wait_verdict(ids[i], t, round, kind);
          }
        }
      }
    } else if (type == "placement") {
      if (id_array_field(v, "jobs", ids)) {
        std::vector<std::int64_t> key = ids;
        std::sort(key.begin(), key.end());
        double gamma = 1.0;
        if (round == gamma_round) {
          const auto it = round_gammas.find(key);
          if (it != round_gammas.end()) gamma = it->second;
        }
        const std::string mode = str_field(v, "mode");
        for (const std::int64_t job : ids) {
          out.placed(job, t, round, ids, gamma, mode);
        }
      }
    } else if (type == "degraded_continue") {
      if (id_array_field(v, "jobs", ids)) {
        const double gamma = num_field(v, "gamma", 1.0);
        const std::string mode = str_field(v, "mode");
        for (const std::int64_t job : ids) {
          out.degraded_continue(job, t, round, ids, gamma, mode);
        }
      }
    } else if (type == "straggler") {
      out.straggler(int_field(v, "job", -1), t, num_field(v, "factor", 1.0));
    } else if (type == "preempt") {
      out.preempted(int_field(v, "job", -1), t, round);
    } else if (type == "evict" || type == "fault") {
      out.faulted(int_field(v, "job", -1), t, round);
    } else if (type == "finish") {
      out.finished(int_field(v, "job", -1), t, num_field(v, "jct", -1));
    } else if (type == "job_cancel") {
      out.cancelled(int_field(v, "job", -1), t);
    }
    // Every other record type carries nothing a job timeline tracks.
  }
}

// -- Renderers --------------------------------------------------------

std::string timeline_text(const JobTimeline& t) {
  std::string out = "job ";
  append_int(out, t.job);
  out += ": submit=";
  append_num(out, t.submit);
  if (t.finished || t.cancelled) {
    out += t.cancelled ? " cancelled=" : " finish=";
    append_num(out, t.finish);
    out += " jct=";
    append_num(out, t.jct());
  } else {
    out += " in-flight";
  }
  if (t.accept >= 0 && t.accept != t.submit) {
    out += " admission_wait=";
    append_num(out, t.submit - t.accept);
  }
  if (t.restored) out += " restored";
  out += " spans=";
  append_int(out, static_cast<std::int64_t>(t.spans.size()));
  out += '\n';
  for (const TimelineSpan& s : t.spans) {
    out += "  ";
    out += span_kind_name(s.kind);
    out += ' ';
    append_num(out, s.start);
    out += " .. ";
    append_num(out, s.end);
    out += " +";
    append_num(out, s.seconds());
    out += " rounds=";
    append_id_array(out, s.rounds);
    if (!s.group.empty()) {
      out += " group=";
      append_id_array(out, s.group);
      if (!s.mode.empty()) {
        out += " mode=";
        out += s.mode;
      }
      out += " gamma=";
      append_num(out, s.gamma);
      if (s.straggler != 1.0) {
        out += " straggler=";
        append_num(out, s.straggler);
      }
    }
    out += '\n';
  }
  out += "  buckets:";
  for (int k = 0; k < kNumSpanKinds; ++k) {
    const double sec = t.bucket_seconds[static_cast<size_t>(k)];
    if (sec == 0) continue;
    out += ' ';
    out += kSpanKindNames[k];
    out += '=';
    append_num(out, sec);
  }
  out += '\n';
  return out;
}

std::string timeline_csv(const std::vector<JobTimeline>& ts) {
  std::string out =
      "job,kind,start,end,seconds,rounds,group,mode,gamma,straggler\n";
  for (const JobTimeline& t : ts) {
    for (const TimelineSpan& s : t.spans) {
      append_int(out, t.job);
      out += ',';
      out += span_kind_name(s.kind);
      out += ',';
      append_num(out, s.start);
      out += ',';
      append_num(out, s.end);
      out += ',';
      append_num(out, s.seconds());
      out += ',';
      for (size_t i = 0; i < s.rounds.size(); ++i) {
        if (i > 0) out += ';';
        append_int(out, s.rounds[i]);
      }
      out += ',';
      for (size_t i = 0; i < s.group.size(); ++i) {
        if (i > 0) out += ';';
        append_int(out, s.group[i]);
      }
      out += ',';
      out += s.mode;
      out += ',';
      append_num(out, s.gamma);
      out += ',';
      append_num(out, s.straggler);
      out += '\n';
    }
  }
  return out;
}

std::string timeline_json(const JobTimeline& t) {
  std::string out = "{\"job\":";
  append_int(out, t.job);
  out += ",\"submit\":";
  append_num(out, t.submit);
  out += ",\"finish\":";
  append_num(out, t.finish);
  if (t.accept >= 0) {
    out += ",\"accept\":";
    append_num(out, t.accept);
  }
  out += ",\"jct\":";
  append_num(out, t.finished || t.cancelled ? t.jct() : -1.0);
  out += ",\"reported_jct\":";
  append_num(out, t.reported_jct);
  out += ",\"finished\":";
  out += t.finished ? "true" : "false";
  out += ",\"cancelled\":";
  out += t.cancelled ? "true" : "false";
  out += ",\"restored\":";
  out += t.restored ? "true" : "false";
  out += ",\"valid\":";
  out += validate_timeline(t).empty() ? "true" : "false";
  out += ",\"buckets\":{";
  for (int k = 0; k < kNumSpanKinds; ++k) {
    if (k > 0) out += ',';
    out += '"';
    out += kSpanKindNames[k];
    out += "\":";
    append_num(out, t.bucket_seconds[static_cast<size_t>(k)]);
  }
  out += "},\"spans\":[";
  for (size_t i = 0; i < t.spans.size(); ++i) {
    const TimelineSpan& s = t.spans[i];
    if (i > 0) out += ',';
    out += "{\"kind\":\"";
    out += span_kind_name(s.kind);
    out += "\",\"start\":";
    append_num(out, s.start);
    out += ",\"end\":";
    append_num(out, s.end);
    out += ",\"seconds\":";
    append_num(out, s.seconds());
    out += ",\"rounds\":";
    append_id_array(out, s.rounds);
    if (!s.group.empty()) {
      out += ",\"group\":";
      append_id_array(out, s.group);
      if (!s.mode.empty()) {
        out += ",\"mode\":\"";
        out += s.mode;
        out += '"';
      }
      out += ",\"gamma\":";
      append_num(out, s.gamma);
      out += ",\"straggler\":";
      append_num(out, s.straggler);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string timelines_json(const std::vector<JobTimeline>& ts) {
  std::array<double, kNumSpanKinds> totals{};
  std::int64_t finished = 0;
  for (const JobTimeline& t : ts) {
    if (!t.finished || t.cancelled) continue;
    ++finished;
    for (int k = 0; k < kNumSpanKinds; ++k) {
      totals[static_cast<size_t>(k)] += t.bucket_seconds[static_cast<size_t>(k)];
    }
  }
  std::string out = "{\"finished\":";
  append_int(out, finished);
  out += ",\"totals\":{";
  for (int k = 0; k < kNumSpanKinds; ++k) {
    if (k > 0) out += ',';
    out += '"';
    out += kSpanKindNames[k];
    out += "\":";
    append_num(out, totals[static_cast<size_t>(k)]);
  }
  out += "},\"jobs\":[";
  for (size_t i = 0; i < ts.size(); ++i) {
    if (i > 0) out += ',';
    out += timeline_json(ts[i]);
  }
  out += "]}";
  return out;
}

std::string chrome_trace_json(const std::vector<JobTimeline>& ts) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&]() {
    if (!first) out += ',';
    first = false;
  };
  for (const JobTimeline& t : ts) {
    sep();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    append_int(out, t.job);
    out += ",\"tid\":0,\"args\":{\"name\":\"job ";
    append_int(out, t.job);
    out += "\"}}";
    for (const TimelineSpan& s : t.spans) {
      sep();
      out += "{\"name\":\"";
      out += span_kind_name(s.kind);
      out += "\",\"cat\":\"jobtrace\",\"ph\":\"X\",\"pid\":";
      append_int(out, t.job);
      out += ",\"tid\":0,\"ts\":";
      append_num(out, s.start * 1e6);
      out += ",\"dur\":";
      append_num(out, s.seconds() * 1e6);
      out += ",\"args\":{\"round\":";
      append_int(out, s.rounds.empty() ? 0 : s.rounds.back());
      out += ",\"gamma\":";
      append_num(out, s.gamma);
      out += ",\"straggler\":";
      append_num(out, s.straggler);
      out += "}}";
    }
  }
  out += "]}";
  return out;
}

}  // namespace muri::obs
