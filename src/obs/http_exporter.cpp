#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <cstdio>
#include <thread>

#include "common/build_info.h"
#include "obs/metrics.h"

namespace muri::obs {

namespace {

void send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // client went away; nothing to salvage
    off += static_cast<std::size_t>(n);
  }
}

// Case-insensitively pulls a header's value out of the raw header block
// (request line included — no header starts with a space, so it cannot
// collide). Returns false when absent.
bool header_value(const std::string& head, const char* name,
                  std::string& out) {
  const std::size_t name_len = std::strlen(name);
  std::size_t pos = 0;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    if (eol - pos > name_len && head[pos + name_len] == ':') {
      bool match = true;
      for (std::size_t i = 0; i < name_len && match; ++i) {
        match = std::tolower(static_cast<unsigned char>(head[pos + i])) ==
                std::tolower(static_cast<unsigned char>(name[i]));
      }
      if (match) {
        std::size_t v = pos + name_len + 1;
        while (v < eol && (head[v] == ' ' || head[v] == '\t')) ++v;
        out = head.substr(v, eol - v);
        return true;
      }
    }
    pos = eol + 2;
  }
  return false;
}

}  // namespace

const char* http_status_line(int status) {
  switch (status) {
    case 200: return "200 OK";
    case 201: return "201 Created";
    case 202: return "202 Accepted";
    case 204: return "204 No Content";
    case 400: return "400 Bad Request";
    case 404: return "404 Not Found";
    case 405: return "405 Method Not Allowed";
    case 408: return "408 Request Timeout";
    case 409: return "409 Conflict";
    case 410: return "410 Gone";
    case 413: return "413 Payload Too Large";
    case 429: return "429 Too Many Requests";
    case 503: return "503 Service Unavailable";
    default: return "500 Internal Server Error";
  }
}

bool HttpExporter::start(int port, std::string* error) {
  if (listen_fd_.load() >= 0) {
    if (error != nullptr) *error = "exporter already running";
    return false;
  }
  int fd = -1;
  int backoff_ms = bind_backoff_ms_;
  for (int attempt = 1;; ++attempt) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error != nullptr) *error = std::strerror(errno);
      return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
            0 &&
        ::listen(fd, 8) == 0) {
      break;
    }
    const int bind_errno = errno;
    ::close(fd);
    fd = -1;
    // Only a port held by someone else is worth waiting out; it clears
    // when the previous owner exits or its socket leaves TIME_WAIT.
    if (bind_errno != EADDRINUSE || attempt >= bind_attempts_) {
      if (error != nullptr) *error = std::strerror(bind_errno);
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, 1000);
  }
  // Resolve the ephemeral port for port=0 binds.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
  listen_fd_.store(fd);
  thread_ = std::thread([this] { serve(); });
  return true;
}

void HttpExporter::stop() {
  // Claim the fd atomically so the serving thread's next loop iteration
  // sees the retirement; shutdown makes a blocked accept() return with an
  // error on Linux, and close() drops the fd either way.
  const int fd = listen_fd_.exchange(-1);
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  if (thread_.joinable()) thread_.join();
  port_ = 0;
}

void HttpExporter::serve() {
  while (true) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) return;  // retired by stop()
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpExporter::respond(
    int fd, int status, const char* content_type, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>* extra_headers) {
  std::string head = "HTTP/1.1 ";
  head += http_status_line(status);
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: " + std::to_string(body.size());
  if (extra_headers != nullptr) {
    for (const auto& [name, value] : *extra_headers) {
      head += "\r\n" + name + ": " + value;
    }
  }
  head += "\r\nConnection: close\r\n\r\n";
  send_all(fd, head.data(), head.size());
  send_all(fd, body.data(), body.size());
  if (request_metrics_ != nullptr) {
    request_metrics_
        ->counter("muri_http_responses_total",
                  "HTTP responses sent, by status code",
                  {{"code", std::to_string(status)}})
        .inc();
  }
}

void HttpExporter::handle_connection(int fd) {
  // A stalled client trips the recv timeout instead of wedging the
  // single-threaded accept loop.
  if (read_timeout_ms_ > 0) {
    timeval tv{};
    tv.tv_sec = read_timeout_ms_ / 1000;
    tv.tv_usec = (read_timeout_ms_ % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  // Read until the end of headers, bounded.
  std::string request;
  char buf[1024];
  std::size_t header_end;
  while (true) {
    header_end = request.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    if (request.size() > max_header_bytes_) {
      respond(fd, 413, "text/plain", "request headers too large\n");
      return;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!request.empty()) {
        respond(fd, 408, "text/plain", "request read timed out\n");
      }
      return;
    }
    if (n <= 0) {
      if (request.empty()) return;
      // Torn request with no terminator: parse what arrived (the path may
      // still be answerable, matching the historical behavior).
      header_end = request.size();
      break;
    }
    request.append(buf, static_cast<std::size_t>(n));
  }

  // "<METHOD> <path> HTTP/1.x"
  const std::size_t method_end = request.find(' ');
  if (method_end == std::string::npos || method_end > header_end) {
    respond(fd, 400, "text/plain", "bad request\n");
    return;
  }
  const std::size_t path_end = request.find(' ', method_end + 1);
  HttpRequest req;
  req.method = request.substr(0, method_end);
  req.path = path_end == std::string::npos || path_end > header_end
                 ? std::string()
                 : request.substr(method_end + 1, path_end - method_end - 1);

  // Body, when declared. Oversized declarations are rejected before a
  // single body byte is read.
  const std::string head = request.substr(0, header_end);
  std::string value;
  std::size_t content_length = 0;
  if (header_value(head, "Content-Length", value)) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str()) {
      respond(fd, 400, "text/plain", "bad content-length\n");
      return;
    }
    if (parsed > max_body_bytes_) {
      respond(fd, 413, "text/plain", "request body too large\n");
      return;
    }
    content_length = static_cast<std::size_t>(parsed);
  }
  if (content_length > 0) {
    // curl sends Expect: 100-continue for larger bodies and waits for the
    // interim response before transmitting.
    if (header_value(head, "Expect", value) &&
        value.find("100-continue") != std::string::npos) {
      static const char kContinue[] = "HTTP/1.1 100 Continue\r\n\r\n";
      send_all(fd, kContinue, sizeof(kContinue) - 1);
    }
    std::string body = header_end + 4 <= request.size()
                           ? request.substr(header_end + 4)
                           : std::string();
    while (body.size() < content_length) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        respond(fd, 408, "text/plain", "request read timed out\n");
        return;
      }
      if (n <= 0) return;  // client went away mid-body
      body.append(buf, static_cast<std::size_t>(n));
    }
    body.resize(content_length);
    req.body = std::move(body);
  }

  // The mounted handler sees every request first; a decline falls through
  // to the built-in routes.
  if (handler_) {
    HttpResponse resp;
    if (handler_(req, resp)) {
      respond(fd, resp.status, resp.content_type.c_str(), resp.body,
              &resp.extra_headers);
      return;
    }
  }

  if (req.method != "GET") {
    respond(fd, 405, "text/plain", "only GET is supported\n");
    return;
  }
  // Built-in routes ignore the query string (the daemon's mounted handler
  // parses it for its own routes before falling through here).
  std::string path = req.path;
  std::string query;
  const std::size_t qpos = path.find('?');
  if (qpos != std::string::npos) {
    query = path.substr(qpos + 1);
    path.resize(qpos);
  }
  if (path == "/metrics") {
    respond(fd, 200, "text/plain; version=0.0.4; charset=utf-8",
            registry_.prometheus_text());
  } else if (path == "/metrics.json") {
    respond(fd, 200, "application/json", registry_.json_snapshot());
  } else if (path == "/healthz") {
    // Liveness probe for bare exporters (bench binaries): answering at
    // all is the signal — no registry access, no locks. Hosts with real
    // health state (the daemon) intercept /healthz in their handler.
    // ?plain=1 keeps the historical one-word form for shell probes.
    if (query.find("plain=1") != std::string::npos) {
      respond(fd, 200, "text/plain", "ok\n");
    } else {
      char body[96];
      std::snprintf(body, sizeof(body),
                    "{\"status\":\"ok\",\"uptime_s\":%.3f}\n",
                    process_uptime_seconds());
      respond(fd, 200, "application/json", body);
    }
  } else {
    respond(fd, 404, "text/plain",
            "try /metrics, /metrics.json, or /healthz\n");
  }
}

}  // namespace muri::obs
