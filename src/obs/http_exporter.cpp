#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.h"

namespace muri::obs {

namespace {

// Enough for any sane request line + headers; longer requests are answered
// from whatever fit (the path is all we look at).
constexpr std::size_t kMaxRequest = 8192;

void send_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // client went away; nothing to salvage
    off += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const char* status, const char* content_type,
                   const std::string& body) {
  std::string head = "HTTP/1.1 ";
  head += status;
  head += "\r\nContent-Type: ";
  head += content_type;
  head += "\r\nContent-Length: " + std::to_string(body.size());
  head += "\r\nConnection: close\r\n\r\n";
  send_all(fd, head.data(), head.size());
  send_all(fd, body.data(), body.size());
}

}  // namespace

bool HttpExporter::start(int port, std::string* error) {
  if (listen_fd_.load() >= 0) {
    if (error != nullptr) *error = "exporter already running";
    return false;
  }
  int fd = -1;
  int backoff_ms = bind_backoff_ms_;
  for (int attempt = 1;; ++attempt) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error != nullptr) *error = std::strerror(errno);
      return false;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
            0 &&
        ::listen(fd, 8) == 0) {
      break;
    }
    const int bind_errno = errno;
    ::close(fd);
    fd = -1;
    // Only a port held by someone else is worth waiting out; it clears
    // when the previous owner exits or its socket leaves TIME_WAIT.
    if (bind_errno != EADDRINUSE || attempt >= bind_attempts_) {
      if (error != nullptr) *error = std::strerror(bind_errno);
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, 1000);
  }
  // Resolve the ephemeral port for port=0 binds.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(fd);
    return false;
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
  listen_fd_.store(fd);
  thread_ = std::thread([this] { serve(); });
  return true;
}

void HttpExporter::stop() {
  // Claim the fd atomically so the serving thread's next loop iteration
  // sees the retirement; shutdown makes a blocked accept() return with an
  // error on Linux, and close() drops the fd either way.
  const int fd = listen_fd_.exchange(-1);
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  if (thread_.joinable()) thread_.join();
  port_ = 0;
}

void HttpExporter::serve() {
  while (true) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) return;  // retired by stop()
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by stop()
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpExporter::handle_connection(int fd) {
  // Read until the end of headers (or the cap); only the request line
  // matters.
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequest &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  if (request.empty()) return;

  // "GET <path> HTTP/1.x"
  const std::size_t method_end = request.find(' ');
  if (method_end == std::string::npos) {
    send_response(fd, "400 Bad Request", "text/plain", "bad request\n");
    return;
  }
  const std::size_t path_end = request.find(' ', method_end + 1);
  const std::string path =
      path_end == std::string::npos
          ? std::string()
          : request.substr(method_end + 1, path_end - method_end - 1);

  if (request.compare(0, method_end, "GET") != 0) {
    send_response(fd, "405 Method Not Allowed", "text/plain",
                  "only GET is supported\n");
    return;
  }
  if (path == "/metrics") {
    send_response(fd, "200 OK", "text/plain; version=0.0.4; charset=utf-8",
                  registry_.prometheus_text());
  } else if (path == "/metrics.json") {
    send_response(fd, "200 OK", "application/json",
                  registry_.json_snapshot());
  } else if (path == "/healthz") {
    // Liveness probe: answering at all is the signal, so the body is a
    // constant — no registry access, no locks.
    send_response(fd, "200 OK", "text/plain", "ok\n");
  } else {
    send_response(fd, "404 Not Found", "text/plain",
                  "try /metrics, /metrics.json, or /healthz\n");
  }
}

}  // namespace muri::obs
