#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/build_info.h"
#include "common/stats.h"

namespace muri::obs {

namespace {

enum Kind { kCounter = 0, kGauge = 1, kHistogram = 2, kSummary = 3 };

void append_number(std::string& out, double v) {
  char buf[40];
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 &&
      v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

std::string serialize_labels(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [k, v] : sorted) {
    if (!out.empty()) out += ',';
    out += k;
    out += "=\"";
    for (char c : v) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
  }
  return out;
}

// Joins a base label string with one extra label (le/quantile).
std::string with_label(const std::string& base, const std::string& extra) {
  if (base.empty()) return extra;
  if (extra.empty()) return base;
  return base + "," + extra;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::observe(double v) noexcept {
  // First bucket with bound >= v; +Inf bucket otherwise.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
}

std::int64_t Histogram::count() const noexcept {
  std::int64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

std::int64_t Histogram::bucket_count(std::size_t i) const noexcept {
  return i < counts_.size() ? counts_[i].load(std::memory_order_relaxed) : 0;
}

double Histogram::quantile(double q) const {
  const std::int64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::int64_t in_bucket = counts_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(cum + in_bucket) < rank) {
      cum += in_bucket;
      continue;
    }
    // Interpolate within [lower, upper] of this bucket. The +Inf bucket
    // reports its lower edge (no finite upper bound to interpolate to).
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    if (i >= bounds_.size()) return lower;
    const double upper = bounds_[i];
    if (in_bucket == 0) return upper;
    const double frac = (rank - static_cast<double>(cum)) /
                        static_cast<double>(in_bucket);
    return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

Summary::Summary(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 16)) {}

void Summary::observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  sum_ += v;
  // Same decimation as SeriesRecorder: keep every stride-th sample, and
  // when full drop every other kept sample and double the stride.
  if (seen_ % static_cast<std::int64_t>(stride_) == 0) {
    if (samples_.size() >= capacity_) {
      std::vector<double> kept;
      kept.reserve(samples_.size() / 2 + 1);
      for (std::size_t i = 0; i < samples_.size(); i += 2) {
        kept.push_back(samples_[i]);
      }
      samples_ = std::move(kept);
      stride_ *= 2;
    }
    if (seen_ % static_cast<std::int64_t>(stride_) == 0) {
      samples_.push_back(v);
    }
  }
  ++seen_;
}

std::int64_t Summary::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_;
}

double Summary::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Summary::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seen_ > 0 ? sum_ / static_cast<double>(seen_) : 0.0;
}

double Summary::percentile(double p) const {
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    samples = samples_;
  }
  return muri::percentile(std::move(samples), p);
}

struct MetricsRegistry::Series {
  std::string name;
  std::string labels;  // serialized
  std::string help;
  int kind = kCounter;
  Counter counter;
  Gauge gauge;
  std::unique_ptr<Histogram> histogram;
  std::unique_ptr<Summary> summary;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Series& MetricsRegistry::get_or_create(
    const std::string& name, const std::string& help, const Labels& labels,
    int kind) {
  const std::string key = serialize_labels(labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = series_[{name, key}];
  if (slot == nullptr) {
    slot = std::make_unique<Series>();
    slot->name = name;
    slot->labels = key;
    slot->help = help;
    slot->kind = kind;
  }
  assert(slot->kind == kind && "metric name reused with a different kind");
  return *slot;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  return get_or_create(name, help, labels, kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  return get_or_create(name, help, labels, kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> upper_bounds,
                                      const Labels& labels) {
  Series& s = get_or_create(name, help, labels, kHistogram);
  if (s.histogram == nullptr) {
    s.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *s.histogram;
}

Summary& MetricsRegistry::summary(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  Series& s = get_or_create(name, help, labels, kSummary);
  if (s.summary == nullptr) s.summary = std::make_unique<Summary>();
  return *s.summary;
}

std::string MetricsRegistry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string last_name;
  auto series_line = [&out](const std::string& name, const std::string& suffix,
                            const std::string& labels, double value) {
    out += name;
    out += suffix;
    if (!labels.empty()) {
      out += '{';
      out += labels;
      out += '}';
    }
    out += ' ';
    append_number(out, value);
    out += '\n';
  };
  for (const auto& [key, s] : series_) {
    if (s->name != last_name) {
      last_name = s->name;
      out += "# HELP " + s->name + " " + s->help + "\n";
      out += "# TYPE " + s->name + " ";
      switch (s->kind) {
        case kCounter:
          out += "counter\n";
          break;
        case kGauge:
          out += "gauge\n";
          break;
        case kHistogram:
          out += "histogram\n";
          break;
        default:
          out += "summary\n";
      }
    }
    switch (s->kind) {
      case kCounter:
        series_line(s->name, "", s->labels, s->counter.value());
        break;
      case kGauge:
        series_line(s->name, "", s->labels, s->gauge.value());
        break;
      case kHistogram: {
        const Histogram& h = *s->histogram;
        std::int64_t cum = 0;
        for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
          cum += h.bucket_count(i);
          std::string le = "le=\"";
          char buf[40];
          std::snprintf(buf, sizeof(buf), "%g", h.upper_bounds()[i]);
          le += buf;
          le += '"';
          series_line(s->name, "_bucket", with_label(s->labels, le),
                      static_cast<double>(cum));
        }
        cum += h.bucket_count(h.upper_bounds().size());
        series_line(s->name, "_bucket", with_label(s->labels, "le=\"+Inf\""),
                    static_cast<double>(cum));
        series_line(s->name, "_sum", s->labels, h.sum());
        series_line(s->name, "_count", s->labels,
                    static_cast<double>(h.count()));
        break;
      }
      default: {
        const Summary& sm = *s->summary;
        for (const double q : {0.5, 0.9, 0.99}) {
          char buf[48];
          std::snprintf(buf, sizeof(buf), "quantile=\"%g\"", q);
          series_line(s->name, "", with_label(s->labels, buf),
                      sm.percentile(q * 100.0));
        }
        series_line(s->name, "_sum", s->labels, sm.sum());
        series_line(s->name, "_count", s->labels,
                    static_cast<double>(sm.count()));
      }
    }
  }
  return out;
}

std::string MetricsRegistry::json_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [key, s] : series_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += s->name;
    if (!s->labels.empty()) {
      out += '{';
      for (char c : s->labels) {
        if (c == '"') {
          out += "\\\"";
        } else if (c == '\\') {
          out += "\\\\";
        } else {
          out += c;
        }
      }
      out += '}';
    }
    out += "\":";
    switch (s->kind) {
      case kCounter:
        append_number(out, s->counter.value());
        break;
      case kGauge:
        append_number(out, s->gauge.value());
        break;
      case kHistogram: {
        const Histogram& h = *s->histogram;
        out += "{\"count\":";
        append_number(out, static_cast<double>(h.count()));
        out += ",\"sum\":";
        append_number(out, h.sum());
        out += ",\"p50\":";
        append_number(out, h.quantile(0.5));
        out += ",\"p99\":";
        append_number(out, h.quantile(0.99));
        out += '}';
        break;
      }
      default: {
        const Summary& sm = *s->summary;
        out += "{\"count\":";
        append_number(out, static_cast<double>(sm.count()));
        out += ",\"sum\":";
        append_number(out, sm.sum());
        out += ",\"p50\":";
        append_number(out, sm.percentile(50));
        out += ",\"p99\":";
        append_number(out, sm.percentile(99));
        out += '}';
      }
    }
  }
  out += '}';
  return out;
}

bool MetricsRegistry::write_prometheus(const std::string& path) const {
  const std::string text = prometheus_text();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

void export_build_info(MetricsRegistry& registry) {
  registry
      .gauge("muri_build_info", "Build identity; value is always 1.",
             {{"version", build_version()}, {"git_sha", build_git_sha()}})
      .set(1.0);
  registry
      .gauge("muri_process_uptime_seconds",
             "Wall seconds since process start.")
      .set(process_uptime_seconds());
}

}  // namespace muri::obs
