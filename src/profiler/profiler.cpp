#include "profiler/profiler.h"

#include <algorithm>
#include <cassert>

namespace muri {

ResourceProfiler::ResourceProfiler() : ResourceProfiler(Options{}) {}

ResourceProfiler::ResourceProfiler(Options options)
    : options_(options), rng_(options.seed) {
  assert(options_.noise >= 0.0 && options_.noise <= 1.0);
  assert(options_.dry_run_iterations > 0);
}

IterationProfile ResourceProfiler::profile(const Job& job) {
  const auto key = std::make_pair(job.model, job.num_gpus);
  if (options_.cache_by_model) {
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  IterationProfile measured = measure(job);
  if (options_.cache_by_model) cache_.emplace(key, measured);
  return measured;
}

IterationProfile ResourceProfiler::measure(const Job& job) {
  ++sessions_;
  profiling_time_ +=
      options_.dry_run_iterations * job.profile.iteration_time();

  IterationProfile measured = job.profile;
  if (options_.noise > 0) {
    for (int j = 0; j < kNumResources; ++j) {
      const double factor =
          rng_.uniform(1.0 - options_.noise, 1.0 + options_.noise);
      measured.stage_time[static_cast<size_t>(j)] *= factor;
    }
  }
  // Threshold filter (§4.2): drop stages too short to matter so the
  // ordering search does not chase noise.
  const Duration iter = measured.iteration_time();
  for (int j = 0; j < kNumResources; ++j) {
    if (measured.stage_time[static_cast<size_t>(j)] <
        options_.zero_threshold * iter) {
      measured.stage_time[static_cast<size_t>(j)] = 0;
    }
  }
  return measured;
}

void ResourceProfiler::clear_cache() { cache_.clear(); }

}  // namespace muri
