// Resource profiler (§3, §5): measures the per-stage durations of a job by
// dry-running a few iterations, caches the result per model so re-submitted
// models skip profiling, and optionally injects measurement noise — the
// n_p ∈ [0, 1] multiplicative factor of the Fig. 14 sensitivity study.
//
// Schedulers must consume profiles exclusively through this class; the
// ground-truth Job::profile is reserved for the execution engine.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "common/rng.h"
#include "job/job.h"

namespace muri {

class ResourceProfiler {
 public:
  struct Options {
    // Profiling noise n_p: each stage duration is multiplied by an
    // independent uniform factor in [1 - noise, 1 + noise] (§6.4).
    double noise = 0.0;
    std::uint64_t seed = 7;
    // Reuse the profile of a previously profiled (model, gpu-count) pair
    // (§3: "the resource profile collected in the past can be reused").
    bool cache_by_model = true;
    // Stages shorter than this fraction of the iteration are filtered to
    // zero (§4.2 "filter the resource usage ... below a threshold").
    double zero_threshold = 0.005;
    // Number of dry-run iterations per profiling session; affects only the
    // reported profiling cost, the measured means are what the zoo defines.
    int dry_run_iterations = 20;
  };

  ResourceProfiler();
  explicit ResourceProfiler(Options options);

  // Returns the (possibly noisy) measured iteration profile of `job`.
  IterationProfile profile(const Job& job);

  void clear_cache();

  // Number of dry-run sessions actually executed (cache misses).
  int sessions() const noexcept { return sessions_; }

  // Total simulated seconds spent dry-running (§5 argues this is
  // negligible; the metric lets benches verify that claim).
  Duration profiling_time() const noexcept { return profiling_time_; }

  const Options& options() const noexcept { return options_; }

 private:
  IterationProfile measure(const Job& job);

  Options options_;
  Rng rng_;
  std::map<std::pair<ModelKind, int>, IterationProfile> cache_;
  int sessions_ = 0;
  Duration profiling_time_ = 0;
};

}  // namespace muri
