// Worker monitor (§5 "worker monitor" in the paper's system substrate).
//
// Tracks per-machine health as seen by the scheduler side: healthy,
// degraded (straggling but usable), failed (crashed, out of the pool), or
// on probation (repaired, but recently flaky — kept blacklisted until it
// proves itself). Machines that fail repeatedly are blacklisted: after
// `blacklist_after` strikes, the next recovery starts a probation window
// during which the machine stays out of the allocatable pool. The deadline
// is fixed when probation starts; crashes while blacklisted neither add
// strikes nor extend the window (exile is bounded even when MTBF is much
// shorter than the window). Reaching the deadline clears the strikes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace muri {

enum class MachineHealth : std::uint8_t {
  kHealthy,    // up, full speed, schedulable
  kDegraded,   // up and schedulable, but inside a straggler window
  kFailed,     // crashed; not schedulable
  kProbation,  // repaired but blacklisted; not schedulable yet
};

std::string_view to_string(MachineHealth h) noexcept;

struct WorkerMonitorOptions {
  // Failures before recoveries start to incur probation; <= 0 disables
  // the blacklist (recovered machines rejoin immediately).
  int blacklist_after = 3;
  // Blacklist window after a recovery once the threshold is reached.
  Duration probation_s = 4 * 3600.0;
};

class WorkerMonitor {
 public:
  WorkerMonitor(int num_machines, WorkerMonitorOptions options = {});

  int num_machines() const noexcept {
    return static_cast<int>(machines_.size());
  }

  // Event intake from the executor/fault-injector side.
  void on_failure(MachineId m, Time now);
  void on_recovery(MachineId m, Time now);
  void on_straggler(MachineId m, bool active);

  MachineHealth health(MachineId m) const;
  // Whether the scheduler may place work on `m` (healthy or degraded).
  bool schedulable(MachineId m) const;

  // Earliest pending probation expiry; +inf when none.
  Time next_probation_end() const;
  // Promotes machines whose probation expired by `now` back to healthy
  // (clearing their strike counters) and returns them.
  std::vector<MachineId> end_probation(Time now);

  int failures(MachineId m) const;
  std::int64_t total_failures() const noexcept { return total_failures_; }
  int schedulable_machines() const;

 private:
  struct MachineState {
    MachineHealth health = MachineHealth::kHealthy;
    int failures = 0;
    // True from blacklisting until the sentence is served; the deadline is
    // fixed on entry — crashes during probation do not extend it (a
    // reset-on-crash window livelocks the pool when MTBF < probation_s).
    bool in_probation = false;
    Time probation_until = 0;
  };

  WorkerMonitorOptions options_;
  std::vector<MachineState> machines_;
  std::int64_t total_failures_ = 0;
};

}  // namespace muri
