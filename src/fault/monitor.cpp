#include "fault/monitor.h"

#include <cassert>
#include <limits>

namespace muri {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

std::string_view to_string(MachineHealth h) noexcept {
  switch (h) {
    case MachineHealth::kHealthy:
      return "healthy";
    case MachineHealth::kDegraded:
      return "degraded";
    case MachineHealth::kFailed:
      return "failed";
    case MachineHealth::kProbation:
      return "probation";
  }
  return "unknown";
}

WorkerMonitor::WorkerMonitor(int num_machines, WorkerMonitorOptions options)
    : options_(options), machines_(static_cast<size_t>(num_machines)) {
  assert(num_machines > 0);
}

void WorkerMonitor::on_failure(MachineId m, Time now) {
  (void)now;
  MachineState& s = machines_.at(static_cast<size_t>(m));
  // Strikes only accrue for failures while serving (healthy/degraded); a
  // blacklisted machine is already out of the pool, so crashing there adds
  // no new evidence against it.
  if (s.health != MachineHealth::kProbation) ++s.failures;
  s.health = MachineHealth::kFailed;
  ++total_failures_;
}

void WorkerMonitor::on_recovery(MachineId m, Time now) {
  MachineState& s = machines_.at(static_cast<size_t>(m));
  assert(s.health == MachineHealth::kFailed);
  if (options_.blacklist_after > 0 && s.failures >= options_.blacklist_after &&
      options_.probation_s > 0) {
    if (!s.in_probation) {
      // Fresh blacklisting: the deadline is fixed ONCE on entry. Crashes
      // during probation interrupt service of the sentence but do not
      // extend it — a reset-on-crash policy livelocks the pool whenever
      // MTBF is shorter than the window (the clock never runs out).
      s.in_probation = true;
      s.probation_until = now + options_.probation_s;
      s.health = MachineHealth::kProbation;
    } else if (s.probation_until <= now) {
      // Deadline passed while the machine was down: exile is over.
      s.in_probation = false;
      s.failures = 0;
      s.health = MachineHealth::kHealthy;
    } else {
      s.health = MachineHealth::kProbation;
    }
  } else {
    s.health = MachineHealth::kHealthy;
  }
}

void WorkerMonitor::on_straggler(MachineId m, bool active) {
  MachineState& s = machines_.at(static_cast<size_t>(m));
  // Straggler windows only matter while the machine serves jobs; a crash
  // or probation already removed it from the pool.
  if (s.health == MachineHealth::kHealthy && active) {
    s.health = MachineHealth::kDegraded;
  } else if (s.health == MachineHealth::kDegraded && !active) {
    s.health = MachineHealth::kHealthy;
  }
}

MachineHealth WorkerMonitor::health(MachineId m) const {
  return machines_.at(static_cast<size_t>(m)).health;
}

bool WorkerMonitor::schedulable(MachineId m) const {
  const MachineHealth h = health(m);
  return h == MachineHealth::kHealthy || h == MachineHealth::kDegraded;
}

Time WorkerMonitor::next_probation_end() const {
  Time next = kInf;
  for (const MachineState& s : machines_) {
    if (s.health == MachineHealth::kProbation) {
      next = std::min(next, s.probation_until);
    }
  }
  return next;
}

std::vector<MachineId> WorkerMonitor::end_probation(Time now) {
  std::vector<MachineId> promoted;
  for (MachineId m = 0; m < num_machines(); ++m) {
    MachineState& s = machines_[static_cast<size_t>(m)];
    if (s.health == MachineHealth::kProbation && s.probation_until <= now) {
      s.health = MachineHealth::kHealthy;
      s.failures = 0;  // served its sentence
      s.in_probation = false;
      promoted.push_back(m);
    }
  }
  return promoted;
}

int WorkerMonitor::failures(MachineId m) const {
  return machines_.at(static_cast<size_t>(m)).failures;
}

int WorkerMonitor::schedulable_machines() const {
  int count = 0;
  for (MachineId m = 0; m < num_machines(); ++m) {
    if (schedulable(m)) ++count;
  }
  return count;
}

}  // namespace muri
