#include "fault/fault.h"

#include <cassert>
#include <limits>

namespace muri {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

FaultInjector::FaultInjector(int num_machines, FaultInjectorOptions options,
                             Time start)
    : options_(options) {
  assert(num_machines > 0);
  crash_rate_ = options_.machine_mtbf_hours > 0
                    ? 1.0 / (options_.machine_mtbf_hours * 3600.0)
                    : 0.0;
  repair_rate_ = options_.machine_mttr_hours > 0
                     ? 1.0 / (options_.machine_mttr_hours * 3600.0)
                     : 0.0;
  straggler_rate_ = options_.straggler_rate_per_hour > 0
                        ? options_.straggler_rate_per_hour / 3600.0
                        : 0.0;
  enabled_ = crash_rate_ > 0 || straggler_rate_ > 0;
  if (!enabled_) return;

  machines_.resize(static_cast<size_t>(num_machines));
  for (MachineId m = 0; m < num_machines; ++m) {
    MachineProcess& proc = machines_[static_cast<size_t>(m)];
    proc.rng = Rng(substream_seed(options_.seed, static_cast<std::uint64_t>(m)));
    proc.next_crash =
        crash_rate_ > 0 ? start + proc.rng.exponential(crash_rate_) : kInf;
    proc.next_straggler = straggler_rate_ > 0
                              ? start + proc.rng.exponential(straggler_rate_)
                              : kInf;
    push_next(m);
  }
}

Time FaultInjector::next_time() const {
  if (!enabled_ || heap_.empty()) return kInf;
  return heap_.top().event.time;
}

FaultEvent FaultInjector::generate_next(MachineId m) {
  MachineProcess& proc = machines_[static_cast<size_t>(m)];
  FaultEvent e;
  e.machine = m;

  if (!proc.up) {
    // Only repair can happen while down.
    e.kind = FaultEvent::Kind::kMachineUp;
    e.time = proc.next_repair;
    proc.up = true;
    proc.next_crash = e.time + proc.rng.exponential(crash_rate_);
    if (straggler_rate_ > 0) {
      proc.next_straggler = e.time + proc.rng.exponential(straggler_rate_);
    }
    return e;
  }

  if (proc.straggling) {
    // A crash closes the window at the crash timestamp; the crash itself
    // is emitted on the next call.
    const Time end = std::min(proc.straggler_end, proc.next_crash);
    e.kind = FaultEvent::Kind::kStragglerEnd;
    e.time = end;
    proc.straggling = false;
    if (straggler_rate_ > 0) {
      proc.next_straggler = end + proc.rng.exponential(straggler_rate_);
    }
    return e;
  }

  if (proc.next_crash <= proc.next_straggler) {
    e.kind = FaultEvent::Kind::kMachineDown;
    e.time = proc.next_crash;
    proc.up = false;
    proc.next_repair =
        repair_rate_ > 0 ? e.time + proc.rng.exponential(repair_rate_)
                         : e.time + options_.machine_mttr_hours * 3600.0;
    return e;
  }

  e.kind = FaultEvent::Kind::kStragglerStart;
  e.time = proc.next_straggler;
  for (size_t r = 0; r < static_cast<size_t>(kNumResources); ++r) {
    e.slowdown[r] =
        proc.rng.uniform(1.0, std::max(1.0, options_.straggler_severity));
  }
  proc.straggling = true;
  proc.straggler_end =
      e.time + proc.rng.exponential(1.0 / options_.straggler_duration_s);
  return e;
}

void FaultInjector::push_next(MachineId m) {
  const MachineProcess& proc = machines_[static_cast<size_t>(m)];
  // A machine with no pending process (crashes off and stragglers off)
  // never produces events.
  if (proc.up && proc.next_crash == kInf && proc.next_straggler == kInf &&
      !proc.straggling) {
    return;
  }
  Pending p;
  p.event = generate_next(m);
  heap_.push(p);
}

std::vector<FaultEvent> FaultInjector::pop_until(Time now) {
  std::vector<FaultEvent> events;
  while (!heap_.empty() && heap_.top().event.time <= now) {
    events.push_back(heap_.top().event);
    heap_.pop();
    push_next(events.back().machine);
  }
  return events;
}

}  // namespace muri
