// Machine-level fault domains (§3/§5: the worker monitor "detects errors,
// reports them to the scheduler, and pushes the job back to the queue").
//
// The paper's executor path only surfaces *job* errors; a production
// cluster also loses whole machines and suffers transient stragglers
// (slow disks, thermal throttling, congested NICs). This module generates
// those events deterministically so robustness sweeps are reproducible:
//
//  - crash/recover: each machine alternates up -> down with exponential
//    MTBF/MTTR holding times;
//  - stragglers: while a machine is up, transient slowdown windows arrive
//    as a Poisson process; each window carries per-resource slowdown
//    factors (a slow disk inflates storage stages, a flaky NIC inflates
//    network stages, ...).
//
// Every machine owns an independent RNG stream derived from (seed,
// machine id), so adding machine k+1 to a sweep never perturbs the event
// timeline of machines 0..k — the same property the simulator's per-job
// fault streams have.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace muri {

struct FaultEvent {
  enum class Kind : std::uint8_t {
    kMachineDown,     // machine crashed: evict residents, leave the pool
    kMachineUp,       // machine repaired: candidate to rejoin the pool
    kStragglerStart,  // transient slowdown window opens
    kStragglerEnd,    // slowdown window closes
  };
  Kind kind = Kind::kMachineDown;
  MachineId machine = kInvalidMachine;
  Time time = 0;
  // Per-resource slowdown factors (>= 1), kStragglerStart only.
  ResourceVector slowdown{1.0, 1.0, 1.0, 1.0};
};

struct FaultInjectorOptions {
  // Mean time between machine crashes, per machine, in hours; 0 disables
  // the crash/recover process.
  double machine_mtbf_hours = 0;
  // Mean time to repair a crashed machine, in hours.
  double machine_mttr_hours = 0.5;
  // Straggler windows per machine per hour (Poisson); 0 disables.
  double straggler_rate_per_hour = 0;
  // Mean straggler window length in seconds (exponential).
  double straggler_duration_s = 1800;
  // Worst-case per-resource slowdown factor; each window draws each
  // resource's factor uniformly from [1, severity].
  double straggler_severity = 2.0;
  std::uint64_t seed = 2024;
};

// Lazily generates the merged machine-event timeline. Events come out in
// nondecreasing time order; a crash during an active straggler window
// closes the window first (kStragglerEnd then kMachineDown at the same
// timestamp).
class FaultInjector {
 public:
  FaultInjector(int num_machines, FaultInjectorOptions options,
                Time start = 0);

  // True when at least one stochastic process is switched on.
  bool enabled() const noexcept { return enabled_; }

  // Timestamp of the earliest pending event; +inf when disabled.
  Time next_time() const;

  // Pops every event with time <= now, chronologically.
  std::vector<FaultEvent> pop_until(Time now);

  const FaultInjectorOptions& options() const noexcept { return options_; }

 private:
  // Per-machine renewal process: holds its own RNG and the next pending
  // event; regenerates on consumption.
  struct MachineProcess {
    Rng rng{0};
    bool up = true;
    bool straggling = false;
    Time next_crash = 0;       // +inf when crashes disabled
    Time next_repair = 0;      // valid while down
    Time next_straggler = 0;   // +inf when stragglers disabled
    Time straggler_end = 0;    // valid while straggling
  };

  FaultEvent generate_next(MachineId m);
  void push_next(MachineId m);

  FaultInjectorOptions options_;
  bool enabled_ = false;
  double crash_rate_ = 0;      // events per second
  double repair_rate_ = 0;
  double straggler_rate_ = 0;
  std::vector<MachineProcess> machines_;

  struct Pending {
    FaultEvent event;
    bool operator>(const Pending& other) const {
      if (event.time != other.event.time) return event.time > other.event.time;
      return event.machine > other.event.machine;  // deterministic tie-break
    }
  };
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> heap_;
};

}  // namespace muri
