// ServiceEngine — the online scheduling core of the daemon.
//
// The offline simulator (sim/simulator.cpp) owns time: it jumps between
// events of a closed trace. A live service cannot — jobs arrive, finish,
// and get cancelled while the clock runs. ServiceEngine is the steppable
// twin: the same scheduler interface, cluster model, restart-penalty
// rules, and — via sim/exec_model — the exact same period arithmetic, but
// driven from outside:
//
//   submit()/restore()/cancel()   mutate the job table (and the log)
//   advance_to(t)                 progresses running jobs to sim time t,
//                                 emitting finish records as jobs complete
//   run_round(t)                  one scheduling round: build JobViews,
//                                 call the scheduler, place the plan
//   next_finish_time()            the next interesting instant, for the
//                                 daemon's event loop to sleep until
//
// Not modeled (v1): machine faults, stragglers, degraded continuation —
// the daemon serves the fault-free execution model; the fault machinery
// stays in the batch simulator (ROADMAP: fold it in with the
// heterogeneous-cluster work).
//
// The engine is deliberately NOT thread-safe: the daemon serializes every
// call under its own mutex (HTTP handler and event loop alike), which
// keeps the DecisionLog append order — and therefore the WAL — a single
// coherent story.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/types.h"
#include "job/job.h"
#include "profiler/profiler.h"
#include "scheduler/scheduler.h"
#include "service/admission.h"
#include "sim/exec_model.h"

namespace muri::obs {
class DecisionLog;
class JobTraceLog;
}  // namespace muri::obs

namespace muri::service {

enum class JobPhase : std::uint8_t {
  kQueued,     // admitted, waiting for a placement
  kRunning,    // placed, progressing (or inside a restart-penalty window)
  kFinished,
  kCancelled,
};

const char* to_string(JobPhase phase) noexcept;

// Snapshot of one job for the API (GET /jobs, GET /jobs/<id>).
struct JobStatus {
  JobId id = kInvalidJob;
  JobPhase phase = JobPhase::kQueued;
  ModelKind model = ModelKind::kResNet18;
  std::string name;
  int num_gpus = 1;
  std::int64_t iterations = 0;
  double done_iterations = 0;
  Time submit_time = 0;
  // Simulated time of the first placement; < 0 while never scheduled.
  Time first_scheduled = -1;
  // Simulated completion/cancel time; < 0 while in flight.
  Time end_time = -1;
  int preemptions = 0;
};

// Observational callbacks the daemon hooks to feed its live SLO plane
// (queue-wait and JCT distributions, round phase split). Fire-and-forget:
// implementations must not call back into the engine. Like every obs
// hook, null is a zero-cost no-op and attaching an observer never changes
// plans, decision records, or traces.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  // A job received its first placement `wait_s` simulated seconds after
  // submission.
  virtual void on_first_schedule(Time now, double wait_s) {
    (void)now;
    (void)wait_s;
  }
  // A job finished with simulated JCT `jct_s`.
  virtual void on_job_finish(Time now, double jct_s) {
    (void)now;
    (void)jct_s;
  }
  // One run_round() completed: wall seconds inside scheduler_.schedule()
  // vs. wall seconds placing the plan (cluster allocation + group
  // execution arithmetic). Only measured when an observer is attached.
  virtual void on_round(Time now, double schedule_s, double place_s) {
    (void)now;
    (void)schedule_s;
    (void)place_s;
  }
};

struct EngineOptions {
  ClusterSpec cluster{};
  ExecModelParams exec{};
  Duration restart_penalty = 30;
  bool durations_known = false;
  ResourceProfiler::Options profiler{};
  // Decision provenance + durable WAL tap; may be null (no-op).
  obs::DecisionLog* decisions = nullptr;
  // Per-job causal span recorder (src/obs/jobtrace); may be null (no-op).
  // Attaching never changes plans, records, or the WAL.
  obs::JobTraceLog* jobtrace = nullptr;
  // Live SLO plane hook; may be null (no-op).
  EngineObserver* observer = nullptr;
};

class ServiceEngine {
 public:
  explicit ServiceEngine(Scheduler& scheduler, EngineOptions options);

  ServiceEngine(const ServiceEngine&) = delete;
  ServiceEngine& operator=(const ServiceEngine&) = delete;

  // Admits a job at sim time `now` (its queueing clock start). `id` is
  // the pre-assigned id from the admission path; ids must be fresh and
  // increasing. Writes a job_submit record.
  void submit(const JobSpec& spec, JobId id, Time now);

  // WAL-recovery re-admission: the job keeps its original submit time and
  // checkpointed progress. Writes a job_restore record at `now`.
  void restore(const JobSpec& spec, JobId id, Time original_submit,
               double done_iterations, Time now);

  // Cancels a queued or running job. False if unknown or already
  // finished/cancelled. Writes a job_cancel record with `reason`.
  bool cancel(JobId id, Time now, const char* reason);

  // Progresses every running job from the last advance point to `t`
  // (monotone; earlier times are ignored), finishing jobs whose remaining
  // iterations complete within the window.
  void advance_to(Time t);

  // One scheduling round at sim time `now` (advance first). Enforces
  // start deadlines, invokes the scheduler, places the plan, applies
  // restart penalties, emits placement/preempt/restart records.
  void run_round(Time now);

  // True when the queue changed since the last round (arrival, finish,
  // cancel) — the daemon's event-driven round trigger. Preemptions do NOT
  // set this (they feed only the scheduler's delta set): otherwise any
  // displacement would re-trigger a round immediately and the debounce
  // window could never close. Waiting jobs still get rounds from the
  // daemon's fixed-interval fallback (time-varying priorities must be
  // able to preempt, exactly like the batch simulator's keep-alive).
  bool dirty() const noexcept { return queue_changed_; }

  // The earliest simulated instant a running job completes (infinity when
  // nothing is running) — the event loop's sleep horizon.
  Time next_finish_time() const;

  // API snapshots.
  std::vector<JobStatus> list_jobs() const;
  bool job_status(JobId id, JobStatus& out) const;

  // Jobs not yet finished/cancelled.
  int active_jobs() const noexcept { return active_; }
  int running_jobs() const noexcept { return running_; }
  std::int64_t rounds_run() const noexcept { return rounds_; }
  Time last_advance() const noexcept { return last_advance_; }

  // Graceful-shutdown checkpoint: one job_progress record per unfinished
  // job with progress, so a restart resumes iterations instead of
  // replaying them.
  void checkpoint_progress(Time now);

  const Cluster& cluster() const noexcept { return cluster_; }

 private:
  struct GroupKey {
    std::vector<JobId> members;  // sorted
    GroupMode mode = GroupMode::kExclusive;
    int num_gpus = 0;
    bool operator==(const GroupKey&) const = default;
  };

  struct JobRecord {
    Job job;  // ground truth: id, model, gpus, submit, iterations, profile
    IterationProfile measured;
    std::string name;
    JobPhase phase = JobPhase::kQueued;
    double deadline_s = 0;
    double done_iterations = 0;
    double attained_gpu_seconds = 0;
    double queueing_seconds = 0;
    double running_seconds = 0;
    double restart_overhead_seconds = 0;
    int preemptions = 0;
    Time ready_at = 0;       // progress gate after (re)start
    Duration period = 0;     // current wall seconds per iteration
    GroupKey key;
    OwnerId owner = kNoOwner;
    Time first_scheduled = -1;
    Time end_time = -1;
  };

  void finish_job(JobRecord& rec, Time t);
  void mark_dirty(JobId id);
  JobRecord* find(JobId id);
  const JobRecord* find(JobId id) const;

  Scheduler& scheduler_;
  EngineOptions options_;
  Cluster cluster_;
  ResourceProfiler profiler_;
  std::map<JobId, JobRecord> jobs_;
  // The lifecycle delta handed to the scheduler as ctx.dirty_jobs
  // (includes displacements); `queue_changed_` is the narrower
  // round-trigger bit (arrivals, finishes, cancels only).
  std::vector<JobId> dirty_jobs_;
  bool queue_changed_ = false;
  Time last_advance_ = 0;
  int active_ = 0;
  int running_ = 0;
  std::int64_t rounds_ = 0;
  OwnerId next_owner_ = 1;
};

}  // namespace muri::service
