#include "service/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace muri::service {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

bool fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
  return false;
}

}  // namespace

std::string ClientResponse::header(const std::string& name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return v;
  }
  return "";
}

bool http_request(int port, const std::string& method,
                  const std::string& path, const std::string& body,
                  ClientResponse& out, std::string* error) {
  out = ClientResponse{};
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail(error, "socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return fail(error, "connect to 127.0.0.1:" + std::to_string(port));
  }

  std::string request = method + " " + path + " HTTP/1.1\r\n";
  request += "Host: 127.0.0.1\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    request += "Content-Type: application/json\r\n";
  }
  request += "Connection: close\r\n\r\n";
  request += body;

  const char* data = request.data();
  std::size_t left = request.size();
  while (left > 0) {
    const ssize_t n = ::send(fd, data, left, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return fail(error, "send");
    }
    data += n;
    left -= static_cast<std::size_t>(n);
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return fail(error, "recv");
    }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (error != nullptr) *error = "truncated response (no header terminator)";
    return false;
  }
  const std::size_t line_end = raw.find("\r\n");
  const std::string status_line = raw.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string::npos) {
    if (error != nullptr) *error = "malformed status line: " + status_line;
    return false;
  }
  out.status = std::atoi(status_line.c_str() + sp + 1);

  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t eol = raw.find("\r\n", pos);
    if (eol == std::string::npos || eol > header_end) eol = header_end;
    const std::string line = raw.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string value = line.substr(colon + 1);
      const std::size_t first = value.find_first_not_of(" \t");
      value = first == std::string::npos ? "" : value.substr(first);
      out.headers.emplace_back(lower(line.substr(0, colon)), value);
    }
    pos = eol + 2;
  }
  out.body = raw.substr(header_end + 4);
  return true;
}

}  // namespace muri::service
