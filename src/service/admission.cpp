#include "service/admission.h"

#include <algorithm>

namespace muri::service {

bool AdmissionQueue::try_push(QueuedSubmission submission) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.size() >= capacity_) {
    ++stats_.rejected_full;
    return false;
  }
  queue_.push_back(std::move(submission));
  ++stats_.accepted;
  return true;
}

std::vector<QueuedSubmission> AdmissionQueue::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueuedSubmission> out(queue_.begin(), queue_.end());
  queue_.clear();
  stats_.drained += static_cast<std::int64_t>(out.size());
  return out;
}

bool AdmissionQueue::cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = std::find_if(
      queue_.begin(), queue_.end(),
      [id](const QueuedSubmission& s) { return s.id == id; });
  if (it == queue_.end()) return false;
  queue_.erase(it);
  ++stats_.cancelled;
  return true;
}

std::vector<QueuedSubmission> AdmissionQueue::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<QueuedSubmission>(queue_.begin(), queue_.end());
}

bool AdmissionQueue::contains(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(queue_.begin(), queue_.end(),
                     [id](const QueuedSubmission& s) { return s.id == id; });
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

AdmissionQueue::Stats AdmissionQueue::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace muri::service
