#include "service/daemon.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/build_info.h"
#include "job/model.h"
#include "obs/jobtrace.h"
#include "obs/json.h"
#include "recovery/wal.h"
#include "scheduler/baselines.h"
#include "scheduler/muri.h"

namespace muri::service {

namespace {

using Clock = std::chrono::steady_clock;

std::string fmt_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Uniform error body for every job-API failure path: {"error": ..,
// "code": ..} with the HTTP status mirrored into "code" so clients that
// only see the body (or log it) keep the status.
void json_error(obs::HttpResponse& resp, int status, const std::string& what) {
  resp.status = status;
  resp.content_type = "application/json";
  resp.body = "{\"error\":\"" + json_escape(what) +
              "\",\"code\":" + std::to_string(status) + "}\n";
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  if (name == "muri-l") {
    return std::make_unique<MuriScheduler>();
  }
  if (name == "muri-s") {
    MuriOptions opt;
    opt.durations_known = true;
    return std::make_unique<MuriScheduler>(opt);
  }
  if (name == "fifo") return std::make_unique<FifoScheduler>();
  if (name == "srtf") return std::make_unique<SrtfScheduler>();
  if (name == "srsf") return std::make_unique<SrsfScheduler>();
  return nullptr;
}

std::string job_status_json(const JobStatus& st) {
  std::string out = "{\"job\":" + std::to_string(st.id);
  out += ",\"state\":\"";
  out += to_string(st.phase);
  out += "\",\"model\":\"";
  out += muri::to_string(st.model);
  out += "\"";
  if (!st.name.empty()) out += ",\"name\":\"" + json_escape(st.name) + "\"";
  out += ",\"gpus\":" + std::to_string(st.num_gpus);
  out += ",\"iterations\":" + std::to_string(st.iterations);
  out += ",\"done\":" + fmt_num(st.done_iterations);
  out += ",\"submit_t\":" + fmt_num(st.submit_time);
  if (st.first_scheduled >= 0) {
    out += ",\"first_scheduled_t\":" + fmt_num(st.first_scheduled);
  }
  if (st.end_time >= 0) out += ",\"end_t\":" + fmt_num(st.end_time);
  out += ",\"preemptions\":" + std::to_string(st.preemptions);
  out += "}";
  return out;
}

std::string admitted_json(const QueuedSubmission& s) {
  std::string out = "{\"job\":" + std::to_string(s.id);
  out += ",\"state\":\"admitted\",\"model\":\"";
  out += muri::to_string(s.spec.model);
  out += "\"";
  if (!s.spec.name.empty()) {
    out += ",\"name\":\"" + json_escape(s.spec.name) + "\"";
  }
  out += ",\"gpus\":" + std::to_string(s.spec.num_gpus);
  out += ",\"iterations\":" + std::to_string(s.spec.iterations);
  out += ",\"submit_t\":" + fmt_num(s.submit_time);
  out += "}";
  return out;
}

}  // namespace

// Engine-side feed of the live SLO plane. Runs inside engine calls (under
// engine_mu_), so it only touches self-locking sinks: the registry, the
// time-series store, and the SLO tracker.
struct MuriDaemon::Observer final : EngineObserver {
  explicit Observer(MuriDaemon& daemon) : d(daemon) {}

  void on_first_schedule(Time now, double wait_s) override {
    (void)now;
    const double w = d.wall_now();
    d.registry_
        .summary("muri_daemon_queue_wait_seconds",
                 "Simulated seconds from submission to first placement")
        .observe(wait_s);
    if (d.slo_ != nullptr) d.slo_->observe("queue_wait_s", w, wait_s);
    if (d.history_ != nullptr) d.history_->append("queue_wait_s", w, wait_s);
  }

  void on_job_finish(Time now, double jct_s) override {
    (void)now;
    const double w = d.wall_now();
    d.registry_
        .summary("muri_daemon_jct_seconds",
                 "Simulated job completion time (finish - submit)")
        .observe(jct_s);
    if (d.history_ != nullptr) d.history_->append("jct_s", w, jct_s);
  }

  void on_round(Time now, double schedule_s, double place_s) override {
    (void)now;
    static const std::vector<double> kBounds{1e-5, 1e-4, 1e-3, 1e-2,
                                             0.1,  1.0,  10.0};
    d.registry_
        .histogram("muri_daemon_round_phase_seconds",
                   "Wall seconds per engine round phase", kBounds,
                   {{"phase", "schedule"}})
        .observe(schedule_s);
    d.registry_
        .histogram("muri_daemon_round_phase_seconds",
                   "Wall seconds per engine round phase", kBounds,
                   {{"phase", "place"}})
        .observe(place_s);
  }

  MuriDaemon& d;
};

MuriDaemon::MuriDaemon(DaemonOptions options) : options_(std::move(options)) {}

MuriDaemon::~MuriDaemon() { stop("destructor"); }

double MuriDaemon::wall_now() const {
  return std::chrono::duration<double>(Clock::now() - wall_base_).count();
}

void MuriDaemon::inject_loop_stall_for_test(double stall_s) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  heartbeat_wall_.store(heartbeat_wall_.load() - stall_s);
}

Time MuriDaemon::wall_to_sim(Clock::time_point t) const {
  const double elapsed =
      std::chrono::duration<double>(t - wall_base_).count();
  return sim_base_ + elapsed * options_.compression;
}

Time MuriDaemon::sim_now() const {
  if (options_.manual_time) return manual_now_;
  return wall_to_sim(Clock::now());
}

bool MuriDaemon::recover(std::string* error) {
  recovery::WalReadResult decoded;
  std::string io_error;
  if (!recovery::read_wal_file(options_.wal_path, decoded, &io_error)) {
    // Nothing durable yet: a first start under --resume is legal.
    return true;
  }
  for (const recovery::WalFrame& frame : decoded.frames) {
    if (frame.kind != recovery::FrameKind::kRecord) continue;
    obs::JsonValue rec;
    if (!obs::parse_json(frame.payload, rec, error)) return false;
    const std::string& type = rec.at("type").string;
    const JobId id = static_cast<JobId>(rec.at("job").number);
    if (type == "job_submit") {
      RecoveredJob& job = recovered_[id];
      ModelKind model;
      if (!parse_model(rec.at("model").string, model)) {
        if (error != nullptr) {
          *error = "WAL job_submit for job " + std::to_string(id) +
                   " has unknown model '" + rec.at("model").string + "'";
        }
        return false;
      }
      job.spec.model = model;
      job.spec.num_gpus = static_cast<int>(rec.at("gpus").number);
      job.spec.iterations =
          static_cast<std::int64_t>(rec.at("iterations").number);
      if (rec.at("name").is_string()) job.spec.name = rec.at("name").string;
      job.submit_time = rec.at("t").number;
    } else if (type == "job_restore" || type == "job_progress") {
      recovered_[id].done = rec.at("done").number;
    } else if (type == "finish" || type == "job_cancel") {
      recovered_[id].terminal = true;
    }
  }

  recovery::RecoverResult state;
  if (!recovery::recover_wal(options_.wal_path, state, error)) return false;
  sim_base_ = state.state.sim_time;
  log_.resume_round(state.state.round);
  for (const auto& [id, job] : recovered_) {
    next_job_id_ = std::max(next_job_id_, id + 1);
    if (!job.spec.name.empty() && !job.terminal) {
      name_to_id_[job.spec.name] = id;
    }
  }
  return true;
}

bool MuriDaemon::start(std::string* error) {
  scheduler_ = make_scheduler(options_.scheduler);
  if (scheduler_ == nullptr) {
    if (error != nullptr) {
      *error = "unknown scheduler '" + options_.scheduler +
               "' (expected muri-l, muri-s, fifo, srtf, or srsf)";
    }
    return false;
  }

  if (options_.resume && !options_.wal_path.empty()) {
    if (!recover(error)) return false;
  }

  if (!options_.wal_path.empty()) {
    recovery::DurableSinkOptions sink_opts;
    sink_opts.fsync = options_.fsync;
    sink_opts.append_resume = options_.resume;
    sink_opts.honor_crash_env = options_.honor_crash_env;
    sink_ = std::make_unique<recovery::DurableSink>(options_.wal_path,
                                                    sink_opts);
    if (!sink_->ok()) {
      if (error != nullptr) *error = sink_->error();
      return false;
    }
    log_.set_sink(sink_.get());
  }
  scheduler_->set_decision_log(&log_);

  // Live SLO plane. The store and tracker are nullable hooks; the
  // observer is always attached (registry summaries back /stats even with
  // sampling off) and checks them internally.
  if (options_.sample_interval_s > 0) {
    history_ =
        std::make_unique<obs::TimeSeriesStore>(options_.history_capacity);
  }
  if (options_.slo.any_enabled()) {
    slo_ = std::make_unique<obs::SloTracker>(options_.slo, &registry_);
  }
  observer_ = std::make_unique<Observer>(*this);
  if (options_.jobtrace_enabled) {
    jobtrace_ = std::make_unique<obs::JobTraceLog>();
    jobtrace_->set_metrics(&registry_);
  }

  EngineOptions eng;
  eng.cluster = options_.cluster;
  eng.exec = options_.exec;
  eng.restart_penalty = options_.restart_penalty_s;
  eng.durations_known = scheduler_->needs_durations();
  eng.profiler = options_.profiler;
  eng.decisions = &log_;
  eng.jobtrace = jobtrace_.get();
  eng.observer = observer_.get();
  engine_ = std::make_unique<ServiceEngine>(*scheduler_, eng);
  queue_ = std::make_unique<AdmissionQueue>(options_.queue_capacity);

  wall_base_ = Clock::now();
  manual_now_ = sim_base_;
  last_round_sim_ = sim_base_;
  heartbeat_wall_.store(0.0);
  next_sample_wall_ = 0;

  if (history_ != nullptr) {
    // Sampled-gauge probes read daemon state guarded by engine_mu_;
    // sample() is only called from pump(), which holds it.
    history_->add_probe("queue_depth", obs::ProbeKind::kGauge, [this] {
      return static_cast<double>(queue_->depth());
    });
    history_->add_probe("active_jobs", obs::ProbeKind::kGauge, [this] {
      return static_cast<double>(engine_->active_jobs());
    });
    history_->add_probe("running_jobs", obs::ProbeKind::kGauge, [this] {
      return static_cast<double>(engine_->running_jobs());
    });
    history_->add_probe("sim_time", obs::ProbeKind::kGauge,
                        [this] { return engine_->last_advance(); });
    history_->add_probe("submission_rate", obs::ProbeKind::kRate, [this] {
      return static_cast<double>(queue_->stats().accepted);
    });
    history_->add_probe("rejection_rate", obs::ProbeKind::kRate, [this] {
      return static_cast<double>(queue_->stats().rejected_full);
    });
    history_->add_probe("round_rate", obs::ProbeKind::kRate, [this] {
      return static_cast<double>(engine_->rounds_run());
    });
    if (sink_ != nullptr) {
      history_->add_probe("wal_unsynced_records", obs::ProbeKind::kGauge,
                          [this] {
                            return static_cast<double>(
                                sink_->io_stats().unsynced_records);
                          });
    }
  }

  {
    auto e = log_.entry("daemon_start");
    e.num("t", sim_base_)
        .integer("machines", options_.cluster.num_machines)
        .integer("gpus", static_cast<std::int64_t>(
                             options_.cluster.num_machines) *
                             options_.cluster.gpus_per_machine)
        .num("restart_penalty", options_.restart_penalty_s);
    if (!recovered_.empty()) e.integer("resumed", 1);
  }
  for (const auto& [id, job] : recovered_) {
    if (job.terminal) continue;
    engine_->restore(job.spec, id, job.submit_time, job.done, sim_base_);
    ++recovered_resumed_;
  }

  exporter_ = std::make_unique<obs::HttpExporter>(registry_);
  exporter_->set_limits(options_.max_header_bytes, options_.max_body_bytes,
                        options_.read_timeout_ms);
  exporter_->set_request_metrics(&registry_);
  exporter_->set_handler(
      [this](const obs::HttpRequest& req, obs::HttpResponse& resp) {
        return handle(req, resp);
      });
  if (!exporter_->start(options_.http_port, error)) return false;

  running_.store(true);
  accepting_.store(true);
  obs::export_build_info(registry_);
  update_gauges();
  if (!options_.manual_time) {
    loop_thread_ = std::thread([this] { loop(); });
  }
  return true;
}

void MuriDaemon::stop(const char* reason) {
  if (stopped_) return;
  stopped_ = true;
  accepting_.store(false);
  const bool was_running = running_.exchange(false);
  loop_cv_.notify_all();
  if (loop_thread_.joinable()) loop_thread_.join();

  if (was_running && engine_ != nullptr) {
    std::lock_guard<std::mutex> lock(engine_mu_);
    const Time now = sim_now();
    engine_->advance_to(now);
    // Persist what the queue still holds: every drained submission writes
    // a durable job_submit, so a restart re-queues it (no job lost).
    for (const QueuedSubmission& s : queue_->drain()) {
      engine_->submit(s.spec, s.id, s.submit_time);
    }
    engine_->checkpoint_progress(now);
    log_.entry("daemon_stop").num("t", now).str("reason", reason);
    update_gauges();
  }
  if (sink_ != nullptr) {
    sink_->sync();
    sink_->close();
  }
  log_.set_sink(nullptr);
  if (exporter_ != nullptr) exporter_->stop();
}

void MuriDaemon::pump(Time now, bool force_round) {
  // Heartbeat first: measure the gap since the previous pass (the
  // event-loop stall signal), then refresh. The injection test hook
  // backdates heartbeat_wall_, which reads as exactly such a gap.
  const double wnow = wall_now();
  const double prev_beat = heartbeat_wall_.load();
  // 0 is the "never beaten" sentinel; a backdated (possibly negative)
  // heartbeat from the injection hook still reads as a stall.
  const double stall_s = prev_beat != 0 ? wnow - prev_beat : 0;
  heartbeat_wall_.store(wnow);
  if (stall_s > 0) {
    if (slo_ != nullptr) slo_->observe("loop_stall_s", wnow, stall_s);
    if (history_ != nullptr) history_->append("loop_stall_s", wnow, stall_s);
  }

  engine_->advance_to(now);
  for (const QueuedSubmission& s : queue_->drain()) {
    engine_->submit(s.spec, s.id, s.submit_time);
  }
  if (engine_->dirty() && !round_pending_) {
    round_pending_ = true;
    round_due_ = Clock::now() +
                 std::chrono::milliseconds(options_.debounce_ms);
  }
  const bool debounced =
      round_pending_ &&
      (force_round || options_.manual_time || Clock::now() >= round_due_);
  const bool fallback =
      engine_->active_jobs() > 0 &&
      now >= last_round_sim_ + options_.round_interval_s;
  if (debounced || fallback) {
    // Round latency as the SLO sees it: the whole run_round call,
    // including the decision records the WAL persists inline. The
    // schedule/place split lands in muri_daemon_round_phase_seconds via
    // the engine observer; the WAL split is the sink's I/O delta.
    const recovery::DurableSink::IoStats io0 =
        sink_ != nullptr ? sink_->io_stats()
                         : recovery::DurableSink::IoStats{};
    const auto t0 = Clock::now();
    engine_->run_round(now);
    const double round_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    last_round_sim_ = now;
    round_pending_ = false;

    registry_
        .summary("muri_daemon_round_wall_seconds",
                 "End-to-end wall time of one daemon scheduling round")
        .observe(round_s);
    const double w = wall_now();
    if (slo_ != nullptr) slo_->observe("round_latency_s", w, round_s);
    if (history_ != nullptr) history_->append("round_latency_s", w, round_s);
    if (sink_ != nullptr) {
      const recovery::DurableSink::IoStats io1 = sink_->io_stats();
      static const std::vector<double> kBounds{1e-5, 1e-4, 1e-3, 1e-2,
                                               0.1,  1.0,  10.0};
      registry_
          .histogram("muri_daemon_round_phase_seconds",
                     "Wall seconds per engine round phase", kBounds,
                     {{"phase", "wal"}})
          .observe((io1.append_seconds - io0.append_seconds) +
                   (io1.fsync_seconds - io0.fsync_seconds));
      if (io1.fsyncs > io0.fsyncs) {
        if (slo_ != nullptr) {
          slo_->observe("wal_fsync_s", w, io1.last_fsync_seconds);
        }
        if (history_ != nullptr) {
          history_->append("wal_fsync_s", w, io1.last_fsync_seconds);
        }
      }
    }
  }

  // Sample the time-series store: every step in manual mode (the test's
  // clock), on the wall cadence otherwise.
  if (history_ != nullptr &&
      (options_.manual_time || wnow >= next_sample_wall_)) {
    history_->sample(wall_now());
    next_sample_wall_ = wnow + options_.sample_interval_s;
  }
  if (slo_ != nullptr) slo_->evaluate(wall_now());
  update_gauges();
}

void MuriDaemon::step(double sim_dt) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  manual_now_ += sim_dt;
  pump(manual_now_, false);
}

void MuriDaemon::loop() {
  std::unique_lock<std::mutex> lk(loop_mu_);
  while (running_.load()) {
    // Pick the earliest reason to wake: the debounce window closing, the
    // next predicted finish, or the fixed round-interval fallback; cap at
    // 200ms so clock drift cannot wedge the loop.
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(200);
    {
      std::lock_guard<std::mutex> eng(engine_mu_);
      if (round_pending_) {
        deadline = std::min(deadline, round_due_);
      }
      const Time nf = engine_->next_finish_time();
      if (std::isfinite(nf) && options_.compression > 0) {
        const double wall_s = (nf - sim_base_) / options_.compression;
        deadline = std::min(
            deadline,
            wall_base_ + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(wall_s)));
      }
      if (engine_->active_jobs() > 0 && options_.compression > 0) {
        const double wall_s =
            (last_round_sim_ + options_.round_interval_s - sim_base_) /
            options_.compression;
        deadline = std::min(
            deadline,
            wall_base_ + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(wall_s)));
      }
    }
    loop_cv_.wait_until(lk, deadline);
    if (!running_.load()) break;
    lk.unlock();
    {
      std::lock_guard<std::mutex> eng(engine_mu_);
      pump(sim_now(), false);
    }
    lk.lock();
  }
}

void MuriDaemon::update_gauges() {
  registry_.gauge("muri_daemon_queue_depth", "Admission queue depth")
      .set(static_cast<double>(queue_->depth()));
  registry_
      .gauge("muri_daemon_queue_capacity", "Admission queue capacity")
      .set(static_cast<double>(queue_->capacity()));
  registry_.gauge("muri_daemon_active_jobs", "Jobs admitted and unfinished")
      .set(static_cast<double>(engine_->active_jobs()));
  registry_.gauge("muri_daemon_running_jobs", "Jobs currently placed")
      .set(static_cast<double>(engine_->running_jobs()));
  registry_.gauge("muri_daemon_sim_time", "Simulated clock (seconds)")
      .set(engine_->last_advance());
  registry_
      .gauge("muri_daemon_rounds_total", "Scheduling rounds run")
      .set(static_cast<double>(engine_->rounds_run()));
  const AdmissionQueue::Stats st = queue_->stats();
  registry_
      .gauge("muri_daemon_submissions_accepted_total",
             "Submissions accepted into the admission queue")
      .set(static_cast<double>(st.accepted));
  registry_
      .gauge("muri_daemon_submissions_rejected_total",
             "Submissions rejected with 429 (queue full)")
      .set(static_cast<double>(st.rejected_full));
  if (sink_ != nullptr) {
    const recovery::DurableSink::IoStats io = sink_->io_stats();
    registry_
        .gauge("muri_wal_appended_bytes", "WAL bytes handed to write()")
        .set(static_cast<double>(io.appended_bytes));
    registry_.gauge("muri_wal_fsyncs_total", "WAL fsync calls")
        .set(static_cast<double>(io.fsyncs));
    registry_
        .gauge("muri_wal_unsynced_records",
               "Records appended since the last fsync (durability lag)")
        .set(static_cast<double>(io.unsynced_records));
    registry_
        .gauge("muri_wal_last_fsync_seconds",
               "Wall seconds of the most recent fsync")
        .set(io.last_fsync_seconds);
  }
  obs::export_build_info(registry_);
}

MuriDaemon::Health MuriDaemon::evaluate_health() {
  Health h;
  const double beat = heartbeat_wall_.load();
  // beat == 0: the loop has not had its first pass yet (manual daemons
  // before any step()) — no heartbeat age to measure.
  h.stall_s = beat != 0 ? wall_now() - beat : 0;
  h.stalled = h.stall_s > options_.watchdog_stall_s;
  h.round_overdue =
      engine_->active_jobs() > 0 && options_.round_interval_s > 0 &&
      sim_now() - last_round_sim_ >
          options_.watchdog_round_factor * options_.round_interval_s;
  h.ok = !h.stalled && !h.round_overdue;
  if (h.stalled) h.reason = "event_loop_stall";
  if (h.round_overdue) {
    if (!h.reason.empty()) h.reason += ',';
    h.reason += "round_overdue";
  }
  // Edge-triggered violation accounting, one per ok->degraded flip.
  if (!h.ok && !watchdog_degraded_) {
    registry_
        .counter("muri_watchdog_violations_total",
                 "Watchdog ok->degraded transitions",
                 {{"reason", h.stalled ? "event_loop_stall"
                                       : "round_overdue"}})
        .inc();
  }
  watchdog_degraded_ = !h.ok;
  registry_
      .gauge("muri_daemon_degraded",
             "1 while the watchdog reports degraded health")
      .set(h.ok ? 0.0 : 1.0);
  registry_
      .gauge("muri_daemon_loop_stall_seconds",
             "Age of the event-loop heartbeat at the last health check")
      .set(h.stall_s);
  return h;
}

std::string MuriDaemon::decisions_jsonl() const { return log_.jsonl(); }

bool MuriDaemon::handle(const obs::HttpRequest& req,
                        obs::HttpResponse& resp) {
  std::string path = req.path;
  std::string query;
  bool explain = false;
  const std::size_t q = path.find('?');
  if (q != std::string::npos) {
    query = path.substr(q + 1);
    explain = query.find("explain=1") != std::string::npos;
    path.resize(q);
  }

  if (path == "/healthz" && req.method == "GET") {
    handle_healthz(query.find("plain=1") != std::string::npos, resp);
    return true;
  }
  if (path == "/stats" && req.method == "GET") {
    handle_stats(resp);
    return true;
  }
  if (path == "/metrics/history" && req.method == "GET") {
    handle_history(query, resp);
    return true;
  }
  if (path == "/jobs") {
    if (req.method == "POST") {
      handle_submit(req, resp);
      return true;
    }
    if (req.method == "GET") {
      handle_list(resp);
      return true;
    }
    json_error(resp, 405, "use GET or POST on /jobs");
    return true;
  }
  if (path.rfind("/jobs/", 0) == 0) {
    char* end = nullptr;
    const long long id = std::strtoll(path.c_str() + 6, &end, 10);
    if (end == path.c_str() + 6) {
      json_error(resp, 404, "bad job id");
      return true;
    }
    if (std::string_view(end) == "/timeline") {
      if (req.method != "GET") {
        json_error(resp, 405, "use GET on /jobs/<id>/timeline");
        return true;
      }
      handle_timeline(static_cast<JobId>(id), resp);
      return true;
    }
    if (*end != '\0') {
      json_error(resp, 404, "bad job id");
      return true;
    }
    if (req.method == "GET") {
      handle_job_get(static_cast<JobId>(id), explain, resp);
      return true;
    }
    if (req.method == "DELETE") {
      handle_job_delete(static_cast<JobId>(id), resp);
      return true;
    }
    json_error(resp, 405, "use GET or DELETE on /jobs/<id>");
    return true;
  }
  if (path == "/decisions" && req.method == "GET") {
    resp.content_type = "application/x-ndjson";
    resp.body = log_.jsonl();
    return true;
  }
  return false;  // fall through to /metrics and /metrics.json
}

void MuriDaemon::handle_healthz(bool plain, obs::HttpResponse& resp) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  const Health h = evaluate_health();
  resp.status = h.ok ? 200 : 503;
  if (plain) {
    // Compatibility form for shell probes (`curl -sf .../healthz?plain=1`
    // still distinguishes ok/degraded by status code alone).
    resp.content_type = "text/plain";
    resp.body = h.ok ? "ok\n" : "degraded\n";
    return;
  }
  std::string out = "{\"status\":\"";
  out += h.ok ? "ok" : "degraded";
  out += "\"";
  if (!h.ok) out += ",\"reason\":\"" + json_escape(h.reason) + "\"";
  out += ",\"uptime_s\":" + fmt_num(wall_now());
  out += ",\"sim_t\":" + fmt_num(sim_now());
  out += ",\"loop_stall_s\":" + fmt_num(h.stall_s);
  out += ",\"version\":\"" + std::string(build_version()) + "\"";
  out += ",\"git_sha\":\"" + std::string(build_git_sha()) + "\"}\n";
  resp.content_type = "application/json";
  resp.body = std::move(out);
}

void MuriDaemon::handle_stats(obs::HttpResponse& resp) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  const Health h = evaluate_health();
  if (slo_ != nullptr) slo_->evaluate(wall_now());
  const AdmissionQueue::Stats qs = queue_->stats();

  // Percentile blocks come from the registry summaries the observer and
  // pump() feed; they cover the daemon's whole lifetime (the windowed
  // view lives at /metrics/history).
  const auto summary_block = [&](const char* metric, const char* help) {
    obs::Summary& s = registry_.summary(metric, help);
    std::string out = "{\"count\":" + std::to_string(s.count());
    out += ",\"mean\":" + fmt_num(s.mean());
    out += ",\"p50\":" + fmt_num(s.percentile(50));
    out += ",\"p90\":" + fmt_num(s.percentile(90));
    out += ",\"p99\":" + fmt_num(s.percentile(99));
    out += "}";
    return out;
  };

  std::string out = "{\"uptime_s\":" + fmt_num(wall_now());
  out += ",\"sim_t\":" + fmt_num(sim_now());
  out += ",\"version\":\"" + std::string(build_version()) + "\"";
  out += ",\"git_sha\":\"" + std::string(build_git_sha()) + "\"";
  out += ",\"scheduler\":\"" + json_escape(scheduler_->name()) + "\"";
  out += ",\"health\":{\"status\":\"";
  out += h.ok ? "ok" : "degraded";
  out += "\",\"loop_stall_s\":" + fmt_num(h.stall_s);
  out += ",\"round_overdue\":";
  out += h.round_overdue ? "true" : "false";
  if (!h.ok) out += ",\"reason\":\"" + json_escape(h.reason) + "\"";
  out += "}";
  out += ",\"queue\":{\"depth\":" + std::to_string(queue_->depth());
  out += ",\"capacity\":" + std::to_string(queue_->capacity());
  out += ",\"accepted\":" + std::to_string(qs.accepted);
  out += ",\"rejected\":" + std::to_string(qs.rejected_full);
  out += ",\"cancelled\":" + std::to_string(qs.cancelled);
  out += "}";
  out += ",\"jobs\":{\"active\":" + std::to_string(engine_->active_jobs());
  out += ",\"running\":" + std::to_string(engine_->running_jobs());
  out += ",\"rounds\":" + std::to_string(engine_->rounds_run());
  out += "}";
  out += ",\"wait_s\":" +
         summary_block("muri_daemon_queue_wait_seconds",
                       "Simulated seconds from submission to first "
                       "placement");
  out += ",\"jct_s\":" +
         summary_block("muri_daemon_jct_seconds",
                       "Simulated job completion time (finish - submit)");
  out += ",\"round_s\":" +
         summary_block("muri_daemon_round_wall_seconds",
                       "End-to-end wall time of one daemon scheduling "
                       "round");
  // Round-phase histograms (observer + pump): sum/count per phase.
  out += ",\"round_phases\":{";
  {
    static const std::vector<double> kBounds{1e-5, 1e-4, 1e-3, 1e-2,
                                             0.1,  1.0,  10.0};
    bool first = true;
    for (const char* phase : {"schedule", "place", "wal"}) {
      obs::Histogram& hg = registry_.histogram(
          "muri_daemon_round_phase_seconds",
          "Wall seconds per engine round phase", kBounds,
          {{"phase", phase}});
      if (!first) out += ',';
      first = false;
      out += "\"";
      out += phase;
      out += "\":{\"count\":" + std::to_string(hg.count());
      out += ",\"sum_s\":" + fmt_num(hg.sum());
      out += ",\"p99\":" + fmt_num(hg.quantile(0.99));
      out += "}";
    }
  }
  out += "}";
  if (sink_ != nullptr) {
    const recovery::DurableSink::IoStats io = sink_->io_stats();
    out += ",\"wal\":{\"records\":" + std::to_string(sink_->records_seen());
    out += ",\"appended\":" + std::to_string(sink_->records_appended());
    out += ",\"appended_bytes\":" + std::to_string(io.appended_bytes);
    out += ",\"unsynced_records\":" + std::to_string(io.unsynced_records);
    out += ",\"fsyncs\":" + std::to_string(io.fsyncs);
    out += ",\"append_s\":" + fmt_num(io.append_seconds);
    out += ",\"fsync_s\":" + fmt_num(io.fsync_seconds);
    out += ",\"last_fsync_s\":" + fmt_num(io.last_fsync_seconds);
    out += ",\"max_fsync_s\":" + fmt_num(io.max_fsync_seconds);
    out += "}";
  }
  out += ",\"engine\":{\"last_round_t\":" + fmt_num(last_round_sim_);
  const Time nf = engine_->next_finish_time();
  out += ",\"next_finish_t\":";
  out += std::isfinite(nf) ? fmt_num(nf) : std::string("null");
  out += ",\"last_advance_t\":" + fmt_num(engine_->last_advance());
  out += "}";
  out += ",\"wait_buckets\":{\"enabled\":";
  out += jobtrace_ != nullptr ? "true" : "false";
  if (jobtrace_ != nullptr) {
    std::int64_t finished = 0;
    const std::array<double, obs::kNumSpanKinds> totals =
        jobtrace_->totals(&finished);
    out += ",\"finished_jobs\":" + std::to_string(finished);
    out += ",\"seconds\":{";
    for (int k = 0; k < obs::kNumSpanKinds; ++k) {
      if (k > 0) out += ',';
      out += "\"";
      out += obs::span_kind_name(static_cast<obs::SpanKind>(k));
      out += "\":" + fmt_num(totals[static_cast<std::size_t>(k)]);
    }
    out += "}";
  }
  out += "}";
  out += ",\"slo\":";
  out += slo_ != nullptr ? slo_->json() : std::string("{\"enabled\":false}");
  out += ",\"history\":{\"enabled\":";
  out += history_ != nullptr ? "true" : "false";
  if (history_ != nullptr) {
    out += ",\"samples\":" + std::to_string(history_->samples_taken());
    out += ",\"interval_s\":" + fmt_num(options_.sample_interval_s);
    out +=
        ",\"capacity\":" + std::to_string(history_->capacity_per_series());
  }
  out += "}}\n";
  resp.content_type = "application/json";
  resp.body = std::move(out);
}

void MuriDaemon::handle_history(const std::string& query,
                                obs::HttpResponse& resp) {
  if (history_ == nullptr) {
    json_error(resp, 404,
               "history sampling disabled (start the daemon with "
               "--sample-interval > 0)");
    return;
  }
  double window_s = 0;  // 0 = everything retained
  bool points = true;
  const std::size_t w = query.find("window=");
  if (w != std::string::npos) {
    window_s = std::strtod(query.c_str() + w + 7, nullptr);
  }
  if (query.find("points=0") != std::string::npos) points = false;
  resp.content_type = "application/json";
  resp.body = history_->history_json(wall_now(), window_s, points) + "\n";
}

void MuriDaemon::handle_submit(const obs::HttpRequest& req,
                               obs::HttpResponse& resp) {
  if (!accepting_.load()) {
    resp.extra_headers.emplace_back("Retry-After",
                                    std::to_string(options_.retry_after_s));
    json_error(resp, 503, "shutting down");
    return;
  }
  obs::JsonValue body;
  std::string parse_error;
  if (!obs::parse_json(req.body, body, &parse_error) || !body.is_object()) {
    json_error(resp, 400, "body is not a JSON object: " + parse_error);
    return;
  }
  JobSpec spec;
  if (!body.at("model").is_string() ||
      !parse_model(body.at("model").string, spec.model)) {
    json_error(resp, 400, "missing or unknown \"model\"");
    return;
  }
  if (!body.at("gpus").is_number()) {
    json_error(resp, 400, "missing \"gpus\"");
    return;
  }
  spec.num_gpus = static_cast<int>(body.at("gpus").number);
  const int total =
      options_.cluster.num_machines * options_.cluster.gpus_per_machine;
  if (spec.num_gpus < 1 || spec.num_gpus > total) {
    json_error(resp, 400,
               "\"gpus\" must be in [1, " + std::to_string(total) + "]");
    return;
  }
  if (!body.at("iterations").is_number() ||
      body.at("iterations").number < 1) {
    json_error(resp, 400, "missing or non-positive \"iterations\"");
    return;
  }
  spec.iterations = static_cast<std::int64_t>(body.at("iterations").number);
  if (body.at("name").is_string()) spec.name = body.at("name").string;
  if (body.at("deadline_s").is_number()) {
    spec.deadline_s = body.at("deadline_s").number;
  }

  std::lock_guard<std::mutex> lock(engine_mu_);
  if (!spec.name.empty()) {
    const auto it = name_to_id_.find(spec.name);
    if (it != name_to_id_.end()) {
      resp.status = 200;
      resp.content_type = "application/json";
      resp.body = "{\"job\":" + std::to_string(it->second) +
                  ",\"duplicate\":true}\n";
      return;
    }
  }
  if (options_.max_active_jobs > 0 &&
      engine_->active_jobs() + static_cast<int>(queue_->depth()) >=
          options_.max_active_jobs) {
    resp.extra_headers.emplace_back("Retry-After",
                                    std::to_string(options_.retry_after_s));
    registry_
        .counter("muri_daemon_rejected_at_capacity_total",
                 "Submissions shed by the max-active-jobs admission bound")
        .inc();
    json_error(resp, 429,
               "at capacity: " +
                   std::to_string(options_.max_active_jobs) +
                   " jobs in the system");
    update_gauges();
    return;
  }
  QueuedSubmission submission;
  submission.spec = spec;
  submission.id = next_job_id_++;
  submission.submit_time = sim_now();
  if (!queue_->try_push(submission)) {
    resp.extra_headers.emplace_back("Retry-After",
                                    std::to_string(options_.retry_after_s));
    json_error(resp, 429, "admission queue full");
    update_gauges();
    return;
  }
  if (!spec.name.empty()) name_to_id_[spec.name] = submission.id;
  // Timeline anchor: the HTTP-accept instant, ahead of the event loop
  // draining the queue into the engine (accept→submit gap = queue wait).
  if (jobtrace_ != nullptr) {
    jobtrace_->accepted(submission.id, submission.submit_time);
  }
  update_gauges();
  loop_cv_.notify_all();
  resp.status = 202;
  resp.content_type = "application/json";
  resp.body = "{\"job\":" + std::to_string(submission.id) + "}\n";
}

void MuriDaemon::handle_list(obs::HttpResponse& resp) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  std::string out = "{\"jobs\":[";
  bool first = true;
  for (const QueuedSubmission& s : queue_->snapshot()) {
    if (!first) out += ",";
    first = false;
    out += admitted_json(s);
  }
  for (const JobStatus& st : engine_->list_jobs()) {
    if (!first) out += ",";
    first = false;
    out += job_status_json(st);
  }
  out += "],\"sim_t\":" + fmt_num(sim_now()) + "}\n";
  resp.content_type = "application/json";
  resp.body = std::move(out);
}

void MuriDaemon::handle_job_get(JobId id, bool explain,
                                obs::HttpResponse& resp) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  std::string status_json;
  JobStatus st;
  if (engine_->job_status(id, st)) {
    status_json = job_status_json(st);
  } else {
    bool queued = false;
    for (const QueuedSubmission& s : queue_->snapshot()) {
      if (s.id == id) {
        status_json = admitted_json(s);
        queued = true;
        break;
      }
    }
    if (!queued) {
      json_error(resp, 404, "unknown job " + std::to_string(id));
      return;
    }
  }
  resp.content_type = "application/json";
  if (!explain) {
    resp.body = status_json + "\n";
    return;
  }
  std::vector<obs::DecisionRecord> records;
  std::string why = "null";
  if (obs::parse_decision_log(log_.jsonl(), records)) {
    const std::string explained = obs::explain_job_json(records, id);
    if (!explained.empty()) why = explained;
  }
  resp.body =
      "{\"status\":" + status_json + ",\"explain\":" + why + "}\n";
}

void MuriDaemon::handle_timeline(JobId id, obs::HttpResponse& resp) {
  if (jobtrace_ == nullptr) {
    json_error(resp, 404,
               "job tracing disabled (start the daemon with jobtrace "
               "enabled)");
    return;
  }
  std::lock_guard<std::mutex> lock(engine_mu_);
  obs::JobTimeline t;
  if (!jobtrace_->timeline(id, t)) {
    // Accepted-but-not-yet-drained jobs have no timeline yet; report them
    // like any unknown id (the client can poll /jobs/<id> meanwhile).
    json_error(resp, 404, "no timeline for job " + std::to_string(id));
    return;
  }
  std::string out = "{\"version\":\"" + std::string(build_version()) + "\"";
  out += ",\"git_sha\":\"" + std::string(build_git_sha()) + "\"";
  out += ",\"sim_t\":" + fmt_num(sim_now());
  out += ",\"timeline\":" + obs::timeline_json(t) + "}\n";
  resp.content_type = "application/json";
  resp.body = std::move(out);
}

void MuriDaemon::handle_job_delete(JobId id, obs::HttpResponse& resp) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  const Time now = sim_now();
  if (queue_->cancel(id)) {
    // Never reached the engine: no job_submit exists, so record the
    // cancel for the audit trail only (replay treats an unknown id as a
    // no-op).
    log_.entry("job_cancel")
        .num("t", now)
        .integer("job", id)
        .str("reason", "client_queued");
    update_gauges();
    resp.content_type = "application/json";
    resp.body = "{\"job\":" + std::to_string(id) + ",\"cancelled\":true}\n";
    return;
  }
  JobStatus st;
  if (!engine_->job_status(id, st)) {
    json_error(resp, 404, "unknown job " + std::to_string(id));
    return;
  }
  if (st.phase == JobPhase::kFinished || st.phase == JobPhase::kCancelled) {
    json_error(resp, 409,
               std::string("job already ") + to_string(st.phase));
    return;
  }
  engine_->cancel(id, now, "client");
  update_gauges();
  loop_cv_.notify_all();
  resp.content_type = "application/json";
  resp.body = "{\"job\":" + std::to_string(id) + ",\"cancelled\":true}\n";
}

}  // namespace muri::service
