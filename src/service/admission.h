// Bounded admission queue — the backpressure stage between the HTTP
// front door and the scheduling engine (borrowing the typed-queue /
// start-deadline / per-type-statistics idiom of the JobScheduler
// exemplar in SNIPPETS.md).
//
// POST /jobs lands here: the handler thread pushes, the daemon's event
// loop drains. The queue is strictly FIFO, capacity-bounded (a full
// queue rejects — the daemon answers 429 + Retry-After), and supports
// cancel-while-queued (DELETE /jobs/<id> before the submission ever
// reaches the engine). All operations are thread-safe; statistics are
// monotonic counters a metrics registry can mirror.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "job/model.h"

namespace muri::service {

// What a client submits: the job's static description plus service-side
// knobs. The ground-truth profile is derived from (model, gpus) at
// admission into the engine, exactly like trace generation does.
struct JobSpec {
  ModelKind model = ModelKind::kResNet18;
  int num_gpus = 1;
  std::int64_t iterations = 0;
  // Client-chosen idempotency key; resubmitting an identical name returns
  // the original job id instead of a duplicate job. Empty = no dedupe.
  std::string name;
  // Start deadline in simulated seconds: a job still unscheduled this
  // long after submission is cancelled by the service (0 = none) — the
  // exemplar's start-deadline semantics.
  double deadline_s = 0;
};

struct QueuedSubmission {
  JobSpec spec;
  // Assigned at admission (ids are handed out before the engine sees the
  // job, so the POST response can carry one).
  JobId id = kInvalidJob;
  // Simulated submission time, stamped when the POST was accepted — a
  // job's queueing clock starts at the door, not at the drain.
  Time submit_time = 0;
};

class AdmissionQueue {
 public:
  struct Stats {
    std::int64_t accepted = 0;       // pushes that fit
    std::int64_t rejected_full = 0;  // pushes refused at capacity
    std::int64_t cancelled = 0;      // removed while queued
    std::int64_t drained = 0;        // handed to the engine
  };

  explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  // False (and no state change beyond the rejection counter) when full.
  bool try_push(QueuedSubmission submission);

  // Removes and returns everything, FIFO order.
  std::vector<QueuedSubmission> drain();

  // Removes a still-queued submission; false if `id` is not in the queue
  // (already drained, or never admitted).
  bool cancel(JobId id);

  // Copy of the queue contents, FIFO order (status endpoints report
  // admitted-but-not-yet-drained jobs from this).
  std::vector<QueuedSubmission> snapshot() const;
  bool contains(JobId id) const;

  std::size_t depth() const;
  std::size_t capacity() const noexcept { return capacity_; }
  Stats stats() const;

 private:
  mutable std::mutex mu_;
  std::deque<QueuedSubmission> queue_;
  const std::size_t capacity_;
  Stats stats_;
};

}  // namespace muri::service
