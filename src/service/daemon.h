// MuriDaemon — Muri as a long-running service (DESIGN.md "Service
// architecture").
//
// One process owns the whole stack: an HTTP front door (obs/http_exporter
// with the job API mounted as its handler), a bounded admission queue
// (admission.h), the online scheduling engine (engine.h), a scheduler
// instance, a DecisionLog with an optional durable WAL tap
// (recovery/durable), and a metrics registry. A single event-loop thread
// sequences everything that touches the engine:
//
//   wake on: submission / cancel (condition variable), the next predicted
//            job finish, the debounce window closing, or the fixed
//            round-interval fallback
//   then:    advance the engine to "now", drain the admission queue, and
//            run a scheduling round if the queue changed (debounced) or
//            the round timer expired
//
// Simulated time runs at `compression` × wall time (sim_now = sim_base +
// elapsed_wall × compression), so a Philly-style trace replays against
// the live daemon hundreds of times faster than real time while the
// engine's arithmetic stays in simulated seconds. `manual_time` unplugs
// the wall clock entirely: no event-loop thread starts and tests drive
// the daemon deterministically through step().
//
// Restart story: with a WAL configured, every decision record is durable
// (DurableSink, append_resume mode). On --resume the daemon replays the
// WAL to rebuild the job table (job_submit/job_restore give specs,
// job_progress the checkpointed iterations, finish/job_cancel retire
// ids), continues the simulated clock from the recovered state, resumes
// round numbering, and re-admits unfinished jobs via engine.restore() —
// an accepted job survives any crash that happens after its job_submit
// record hit the WAL. Graceful stop() closes that window: it stops
// admitting (503), drains the queue into the engine, checkpoints
// progress, writes daemon_stop, and fsyncs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "cluster/cluster.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "profiler/profiler.h"
#include "recovery/durable.h"
#include "scheduler/scheduler.h"
#include "service/admission.h"
#include "service/engine.h"
#include "sim/exec_model.h"

namespace muri::service {

struct DaemonOptions {
  ClusterSpec cluster{};
  // Scheduler policy: muri-l (default), muri-s, fifo, srtf, srsf.
  std::string scheduler = "muri-l";
  // Simulated seconds between fallback scheduling rounds while jobs are
  // in the system (the batch simulator's schedule_interval).
  double round_interval_s = 360;
  // Wall milliseconds an event-triggered round waits to batch arrivals.
  int debounce_ms = 50;
  // Simulated seconds per wall second (time compression for replays).
  double compression = 1.0;
  std::size_t queue_capacity = 64;
  // Admission bound on the total backlog (engine active jobs + handoff
  // queue): submissions past it answer 429. 0 (default) = unbounded —
  // the handoff queue alone sheds only arrival bursts the event loop
  // cannot drain. Saturation load tests set this so an undersized
  // cluster produces real backpressure instead of an ever-growing
  // scheduler queue.
  int max_active_jobs = 0;
  // Advisory Retry-After (seconds) attached to 429 responses.
  int retry_after_s = 1;
  // Durable WAL for the DecisionLog; empty = in-memory log only.
  std::string wal_path;
  // Recover from an existing WAL instead of starting fresh.
  bool resume = false;
  recovery::DurableSinkOptions::Fsync fsync =
      recovery::DurableSinkOptions::Fsync::kInterval;
  // Honor MURI_CRASH_AT / MURI_CRASH_TORN on the WAL (CI crash legs).
  bool honor_crash_env = false;
  Duration restart_penalty_s = 30;
  ExecModelParams exec{};
  ResourceProfiler::Options profiler{};
  // HTTP knobs (0 port = ephemeral; limits passed to set_limits).
  int http_port = 0;
  std::size_t max_header_bytes = 8192;
  std::size_t max_body_bytes = 1 << 20;
  int read_timeout_ms = 5000;
  // Deterministic mode for tests: no event-loop thread, time only moves
  // through step().
  bool manual_time = false;

  // ---- Live SLO & health plane (DESIGN.md "Live SLO & health plane").
  // All of it follows the obs-off contract: with sampling disabled and no
  // SLO targets set, plans, DecisionLog, and trace bytes are bit-identical
  // to a daemon without the plane.
  //
  // Wall seconds between time-series samples; 0 (default) disables the
  // store and GET /metrics/history answers 404. In manual_time mode every
  // step() takes one sample regardless of cadence, so deterministic tests
  // control the series point-by-point.
  double sample_interval_s = 0;
  // Ring-buffer capacity per series (oldest points overwritten).
  std::size_t history_capacity = 600;
  // Declarative SLO targets (obs/slo.h); default: everything disabled.
  obs::SloConfig slo{};
  // Watchdog: /healthz flips to degraded when the event-loop heartbeat is
  // older than this many wall seconds. The loop normally beats at least
  // every 200ms (its sleep cap), so anything above ~1s means a wedged or
  // starved loop, not jitter.
  double watchdog_stall_s = 5.0;
  // ... or when jobs are active and no round has run for this factor ×
  // round_interval_s simulated seconds (an overdue round).
  double watchdog_round_factor = 4.0;

  // Per-job causal tracing (src/obs/jobtrace): record every job's span
  // timeline and serve GET /jobs/<id>/timeline. Follows the obs-off
  // contract — plans, DecisionLog, and trace bytes are bit-identical with
  // the plane on or off; disabling only turns the endpoint into a 404.
  bool jobtrace_enabled = true;
};

class MuriDaemon {
 public:
  explicit MuriDaemon(DaemonOptions options);
  ~MuriDaemon();

  MuriDaemon(const MuriDaemon&) = delete;
  MuriDaemon& operator=(const MuriDaemon&) = delete;

  // Builds the stack, recovers from the WAL when resuming, binds the
  // HTTP listener, and (unless manual_time) starts the event loop.
  // False with `error` on unknown scheduler, WAL damage, or bind failure.
  bool start(std::string* error);

  // Graceful shutdown: stop admitting, join the loop, advance to now,
  // drain the admission queue into the engine (every accepted job gets a
  // durable job_submit), checkpoint progress, write daemon_stop, fsync
  // and close the WAL, stop the listener. Idempotent.
  void stop(const char* reason = "stop");

  int port() const { return exporter_ ? exporter_->port() : 0; }
  bool running() const noexcept { return running_.load(); }

  // Simulated now (manual clock or compressed wall clock).
  Time sim_now() const;

  // manual_time only: advance the simulated clock by `sim_dt` seconds and
  // run the loop body once (advance, drain, round if due). Debounce does
  // not apply — a dirty queue schedules immediately.
  void step(double sim_dt);

  // In-memory decisions JSONL (what GET /decisions serves).
  std::string decisions_jsonl() const;

  obs::MetricsRegistry& metrics() noexcept { return registry_; }
  const DaemonOptions& options() const noexcept { return options_; }
  // Lifetime admission-queue statistics.
  AdmissionQueue::Stats queue_stats() const { return queue_->stats(); }

  // Live SLO plane accessors (null when the corresponding knob is off).
  const obs::TimeSeriesStore* history() const noexcept {
    return history_.get();
  }
  const obs::SloTracker* slo() const noexcept { return slo_.get(); }
  // Wall seconds since start() — the sampling/SLO clock domain.
  double wall_now() const;

  // Test hook: backdate the event-loop heartbeat by `stall_s` wall
  // seconds, as if the loop had been wedged that long. The next health
  // evaluation sees the stall; the next pump()/step() observes it as a
  // loop_stall_s sample and then recovers the heartbeat.
  void inject_loop_stall_for_test(double stall_s);

 private:
  struct Observer;
  // Watchdog verdict at one instant (computed under engine_mu_).
  struct Health {
    bool ok = true;
    double stall_s = 0;       // heartbeat age
    bool stalled = false;
    bool round_overdue = false;
    std::string reason;       // "" when ok
  };

  bool recover(std::string* error);
  bool handle(const obs::HttpRequest& req, obs::HttpResponse& resp);
  void handle_submit(const obs::HttpRequest& req, obs::HttpResponse& resp);
  void handle_job_get(JobId id, bool explain, obs::HttpResponse& resp);
  void handle_job_delete(JobId id, obs::HttpResponse& resp);
  void handle_list(obs::HttpResponse& resp);
  void handle_timeline(JobId id, obs::HttpResponse& resp);
  void handle_healthz(bool plain, obs::HttpResponse& resp);
  void handle_stats(obs::HttpResponse& resp);
  void handle_history(const std::string& query, obs::HttpResponse& resp);
  void loop();
  // One loop-body pass at simulated time `now`; engine_mu_ must be held.
  void pump(Time now, bool force_round);
  void update_gauges();
  Time wall_to_sim(std::chrono::steady_clock::time_point t) const;
  // Watchdog evaluation; engine_mu_ must be held (counts transitions).
  Health evaluate_health();

  DaemonOptions options_;
  obs::MetricsRegistry registry_;
  obs::DecisionLog log_;
  std::unique_ptr<recovery::DurableSink> sink_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<ServiceEngine> engine_;
  std::unique_ptr<AdmissionQueue> queue_;
  std::unique_ptr<obs::HttpExporter> exporter_;
  // Per-job span recorder; null when jobtrace_enabled is off.
  std::unique_ptr<obs::JobTraceLog> jobtrace_;

  // Live SLO plane. history_/slo_ are null when their knobs are off;
  // observer_ is always attached (it feeds registry summaries too).
  std::unique_ptr<obs::TimeSeriesStore> history_;
  std::unique_ptr<obs::SloTracker> slo_;
  std::unique_ptr<Observer> observer_;
  // Wall time (seconds since wall_base_) of the last loop pass / step;
  // atomic so handler threads read it without the engine mutex.
  std::atomic<double> heartbeat_wall_{0};
  double next_sample_wall_ = 0;     // engine_mu_
  bool watchdog_degraded_ = false;  // engine_mu_: transition edge state

  // Engine + log mutations (handler threads vs event loop).
  mutable std::mutex engine_mu_;
  // Event-loop wakeups.
  std::mutex loop_mu_;
  std::condition_variable loop_cv_;
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> accepting_{false};
  bool stopped_ = false;

  // Simulated clock.
  Time sim_base_ = 0;
  std::chrono::steady_clock::time_point wall_base_{};
  double manual_now_ = 0;

  // Round triggering (engine_mu_).
  Time last_round_sim_ = 0;
  bool round_pending_ = false;
  std::chrono::steady_clock::time_point round_due_{};

  // Admission bookkeeping (engine_mu_): id assignment + idempotency.
  JobId next_job_id_ = 0;
  std::map<std::string, JobId> name_to_id_;

  // Recovery scratch: specs rebuilt from the WAL, keyed by id.
  struct RecoveredJob {
    JobSpec spec;
    Time submit_time = 0;
    double done = 0;
    bool terminal = false;
  };
  std::map<JobId, RecoveredJob> recovered_;
  std::int64_t recovered_resumed_ = 0;
};

}  // namespace muri::service
