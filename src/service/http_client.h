// Minimal blocking HTTP/1.0-style client for the daemon's loopback API —
// just enough for the load generator, the CLI, and the tests to speak to
// HttpExporter (one request per connection, Connection: close).
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace muri::service {

struct ClientResponse {
  int status = 0;
  std::string body;
  // Header name/value pairs in arrival order; names lower-cased.
  std::vector<std::pair<std::string, std::string>> headers;

  // First value of `name` (lower-case), or "" when absent.
  std::string header(const std::string& name) const;
};

// Sends `method path` with `body` to 127.0.0.1:port, reads the full
// response. False (with `error`) on connect/read failure; HTTP error
// statuses are a *successful* exchange — check out.status.
bool http_request(int port, const std::string& method,
                  const std::string& path, const std::string& body,
                  ClientResponse& out, std::string* error = nullptr);

}  // namespace muri::service
