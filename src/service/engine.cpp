#include "service/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>

#include "job/model.h"
#include "obs/jobtrace.h"
#include "obs/provenance.h"

namespace muri::service {

namespace {

constexpr Duration kInf = std::numeric_limits<Duration>::infinity();

// A job is "done" when its remaining iterations round to nothing; the
// sub-step arithmetic below lands exactly on finish instants, so the
// epsilon only absorbs float drift across many advance windows.
constexpr double kIterEps = 1e-6;

}  // namespace

const char* to_string(JobPhase phase) noexcept {
  switch (phase) {
    case JobPhase::kQueued:
      return "queued";
    case JobPhase::kRunning:
      return "running";
    case JobPhase::kFinished:
      return "finished";
    case JobPhase::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

ServiceEngine::ServiceEngine(Scheduler& scheduler, EngineOptions options)
    : scheduler_(scheduler),
      options_(std::move(options)),
      cluster_(options_.cluster),
      profiler_(options_.profiler) {
  // The jobtrace gate arithmetic must match rec.ready_at exactly.
  if (options_.jobtrace != nullptr) {
    options_.jobtrace->set_restart_penalty(options_.restart_penalty);
  }
}

ServiceEngine::JobRecord* ServiceEngine::find(JobId id) {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

const ServiceEngine::JobRecord* ServiceEngine::find(JobId id) const {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

void ServiceEngine::mark_dirty(JobId id) { dirty_jobs_.push_back(id); }

void ServiceEngine::submit(const JobSpec& spec, JobId id, Time now) {
  JobRecord rec;
  rec.job.id = id;
  rec.job.model = spec.model;
  rec.job.num_gpus = spec.num_gpus;
  rec.job.submit_time = now;
  rec.job.iterations = spec.iterations;
  rec.job.profile = model_profile(spec.model, spec.num_gpus);
  rec.measured = profiler_.profile(rec.job);
  rec.name = spec.name;
  rec.deadline_s = spec.deadline_s;
  jobs_.emplace(id, std::move(rec));
  ++active_;
  mark_dirty(id);
  queue_changed_ = true;
  if (options_.decisions != nullptr) {
    auto e = options_.decisions->entry("job_submit");
    e.num("t", now)
        .integer("job", id)
        .str("model", muri::to_string(spec.model))
        .integer("gpus", spec.num_gpus)
        .integer("iterations", spec.iterations);
    if (!spec.name.empty()) e.str("name", spec.name);
  }
  if (options_.jobtrace != nullptr) options_.jobtrace->submitted(id, now);
}

void ServiceEngine::restore(const JobSpec& spec, JobId id, Time original_submit,
                            double done_iterations, Time now) {
  JobRecord rec;
  rec.job.id = id;
  rec.job.model = spec.model;
  rec.job.num_gpus = spec.num_gpus;
  rec.job.submit_time = original_submit;
  rec.job.iterations = spec.iterations;
  rec.job.profile = model_profile(spec.model, spec.num_gpus);
  rec.measured = profiler_.profile(rec.job);
  rec.name = spec.name;
  rec.deadline_s = spec.deadline_s;
  rec.done_iterations =
      std::min(done_iterations, static_cast<double>(spec.iterations));
  jobs_.emplace(id, std::move(rec));
  ++active_;
  mark_dirty(id);
  queue_changed_ = true;
  if (options_.decisions != nullptr) {
    options_.decisions->entry("job_restore")
        .num("t", now)
        .integer("job", id)
        .num("done", done_iterations);
  }
  // The timeline opens at the restore instant: pre-crash spans are gone,
  // so the job is marked restored and its buckets cover the resumed era.
  if (options_.jobtrace != nullptr) {
    options_.jobtrace->submitted(id, now, /*restored=*/true);
  }
}

bool ServiceEngine::cancel(JobId id, Time now, const char* reason) {
  JobRecord* rec = find(id);
  if (rec == nullptr || rec->phase == JobPhase::kFinished ||
      rec->phase == JobPhase::kCancelled) {
    return false;
  }
  // A cancelled running member simply stops progressing; its interleave
  // partners keep their current periods until the round this cancel
  // triggers re-plans them — the same continuation rule the batch
  // simulator applies to the partners of a finished member.
  if (rec->phase == JobPhase::kRunning) --running_;
  rec->phase = JobPhase::kCancelled;
  rec->end_time = now;
  rec->period = 0;
  rec->key = GroupKey{};
  rec->owner = kNoOwner;
  --active_;
  mark_dirty(id);
  queue_changed_ = true;
  if (options_.decisions != nullptr) {
    options_.decisions->entry("job_cancel")
        .num("t", now)
        .integer("job", id)
        .str("reason", reason);
  }
  if (options_.jobtrace != nullptr) options_.jobtrace->cancelled(id, now);
  return true;
}

void ServiceEngine::finish_job(JobRecord& rec, Time t) {
  rec.phase = JobPhase::kFinished;
  rec.end_time = t;
  rec.period = 0;
  rec.key = GroupKey{};
  rec.owner = kNoOwner;
  --active_;
  --running_;
  mark_dirty(rec.job.id);
  queue_changed_ = true;
  if (options_.decisions != nullptr) {
    // Identical field set to the simulator's finish record, so
    // validate_decision_log, replay, and the jobs report read both.
    options_.decisions->entry("finish")
        .num("t", t)
        .integer("job", rec.job.id)
        .num("jct", t - rec.job.submit_time)
        .num("queueing", rec.queueing_seconds)
        .num("running", rec.running_seconds)
        .num("restart_overhead", rec.restart_overhead_seconds)
        .integer("preemptions", rec.preemptions);
  }
  if (options_.jobtrace != nullptr) {
    options_.jobtrace->finished(rec.job.id, t, t - rec.job.submit_time);
  }
  if (options_.observer != nullptr) {
    options_.observer->on_job_finish(t, t - rec.job.submit_time);
  }
}

Time ServiceEngine::next_finish_time() const {
  Time next = kInf;
  for (const auto& [id, rec] : jobs_) {
    if (rec.phase != JobPhase::kRunning) continue;
    if (!(rec.period > 0) || std::isinf(rec.period)) continue;
    const double remaining =
        static_cast<double>(rec.job.iterations) - rec.done_iterations;
    if (remaining <= kIterEps) {
      next = std::min(next, std::max(last_advance_, rec.ready_at));
      continue;
    }
    const Time start = std::max(last_advance_, rec.ready_at);
    next = std::min(next, start + remaining * rec.period);
  }
  return next;
}

void ServiceEngine::advance_to(Time t) {
  while (t > last_advance_) {
    // Sub-step to the earliest finish so completions land on their exact
    // instants (and free capacity for the round the finish triggers).
    const Time step_end = std::min(t, std::max(next_finish_time(),
                                               last_advance_));
    const Duration dt = step_end - last_advance_;
    if (dt > 0) {
      for (auto& [id, rec] : jobs_) {
        if (rec.phase == JobPhase::kQueued) {
          rec.queueing_seconds += dt;
          continue;
        }
        if (rec.phase != JobPhase::kRunning) continue;
        // Placed wall splits into restart-gate stall and effective time.
        const Time eff_start =
            std::min(std::max(last_advance_, rec.ready_at), step_end);
        const Duration overhead = eff_start - last_advance_;
        const Duration effective = step_end - eff_start;
        rec.restart_overhead_seconds += overhead;
        rec.running_seconds += effective;
        rec.attained_gpu_seconds += effective * rec.job.num_gpus;
        if (effective > 0 && rec.period > 0 && !std::isinf(rec.period)) {
          rec.done_iterations =
              std::min(rec.done_iterations + effective / rec.period,
                       static_cast<double>(rec.job.iterations));
        }
      }
    }
    bool finished_any = false;
    for (auto& [id, rec] : jobs_) {
      if (rec.phase != JobPhase::kRunning) continue;
      if (static_cast<double>(rec.job.iterations) - rec.done_iterations <=
          kIterEps) {
        finish_job(rec, step_end);
        finished_any = true;
      }
    }
    last_advance_ = step_end;
    // A zero-length step that finished nothing cannot make progress
    // (defensive: next_finish_time() never returns the past otherwise).
    if (dt <= 0 && !finished_any) break;
  }
  last_advance_ = std::max(last_advance_, t);
}

void ServiceEngine::run_round(Time now) {
  ++rounds_;
  queue_changed_ = false;

  // Start-deadline enforcement (the admission exemplar's semantics): a
  // job still never-scheduled past its deadline is cancelled up front so
  // the scheduler does not plan around it.
  std::vector<JobId> overdue;
  for (const auto& [id, rec] : jobs_) {
    if (rec.phase == JobPhase::kQueued && rec.deadline_s > 0 &&
        rec.first_scheduled < 0 &&
        now - rec.job.submit_time > rec.deadline_s) {
      overdue.push_back(id);
    }
  }
  for (JobId id : overdue) cancel(id, now, "start_deadline");

  std::vector<JobView> queue;
  for (const auto& [id, rec] : jobs_) {
    if (rec.phase != JobPhase::kQueued && rec.phase != JobPhase::kRunning) {
      continue;
    }
    JobView v;
    v.id = rec.job.id;
    v.num_gpus = rec.job.num_gpus;
    v.submit_time = rec.job.submit_time;
    v.measured = rec.measured;
    v.attained_service = rec.attained_gpu_seconds;
    v.age = now - rec.job.submit_time;
    v.remaining_time =
        options_.durations_known
            ? (static_cast<double>(rec.job.iterations) -
               rec.done_iterations) *
                  rec.job.profile.iteration_time()
            : 0.0;
    v.running = rec.phase == JobPhase::kRunning;
    queue.push_back(std::move(v));
  }

  SchedulerContext ctx;
  ctx.now = now;
  ctx.total_gpus = cluster_.total_gpus();
  ctx.gpus_per_machine = options_.cluster.gpus_per_machine;
  ctx.durations_known = options_.durations_known;
  ctx.available_gpus = cluster_.available_gpus();
  std::sort(dirty_jobs_.begin(), dirty_jobs_.end());
  dirty_jobs_.erase(std::unique(dirty_jobs_.begin(), dirty_jobs_.end()),
                    dirty_jobs_.end());
  ctx.dirty_jobs = &dirty_jobs_;

  // Phase timing for the live SLO plane; only measured when an observer
  // is attached (the plan itself is computed identically either way).
  EngineObserver* observer = options_.observer;
  const auto t_schedule = observer != nullptr
                              ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{};
  const std::vector<PlannedGroup> plan = scheduler_.schedule(queue, ctx);
  const auto t_place = observer != nullptr
                           ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
  // Displacements recorded below belong to the *next* round's delta.
  dirty_jobs_.clear();

  // Place the plan in order, exactly like the simulator's apply_plan.
  cluster_.reset();
  std::set<JobId> placed;
  struct Admitted {
    GroupKey key;
    const PlannedGroup* group;
    OwnerId owner;
  };
  std::vector<Admitted> admitted;
  OwnerId next_owner = 1;
  obs::DecisionLog* decisions = options_.decisions;
  obs::JobTraceLog* jobtrace = options_.jobtrace;
  // The decision-log round id this round's jobtrace events carry (the
  // engine's round ordinal when no log is wired — same convention as the
  // batch simulator).
  const std::int64_t round_id =
      decisions != nullptr ? decisions->current_round() : rounds_;

  for (const PlannedGroup& g : plan) {
    if (g.members.empty()) continue;
    bool valid = true;
    int max_gpus = 0;
    for (JobId id : g.members) {
      const JobRecord* rec = find(id);
      if (rec == nullptr ||
          (rec->phase != JobPhase::kQueued &&
           rec->phase != JobPhase::kRunning) ||
          placed.count(id)) {
        valid = false;
        break;
      }
      max_gpus = std::max(max_gpus, rec->job.num_gpus);
    }
    if (!valid || g.num_gpus < max_gpus) {
      if (decisions != nullptr) {
        decisions->entry("placement_skip")
            .num("t", now)
            .ids("jobs", g.members)
            .integer("gpus", g.num_gpus)
            .str("reason", "invalid");
      }
      continue;
    }
    if (!cluster_.can_allocate(g.num_gpus)) {
      if (decisions != nullptr) {
        decisions->entry("placement_skip")
            .num("t", now)
            .ids("jobs", g.members)
            .integer("gpus", g.num_gpus)
            .str("reason", "no_capacity")
            .integer("available_gpus", cluster_.free_gpus());
      }
      continue;
    }
    const OwnerId owner = next_owner++;
    const std::vector<GpuId> gpus = cluster_.allocate(owner, g.num_gpus);
    if (decisions != nullptr) {
      std::vector<int> machine_ids;
      for (GpuId gpu : gpus) {
        const int m = static_cast<int>(cluster_.machine_of(gpu));
        if (machine_ids.empty() || machine_ids.back() != m) {
          machine_ids.push_back(m);
        }
      }
      decisions->entry("placement")
          .num("t", now)
          .ids("jobs", g.members)
          .integer("gpus", g.num_gpus)
          .str("mode", g.mode == GroupMode::kExclusive    ? "exclusive"
                       : g.mode == GroupMode::kInterleaved ? "interleaved"
                                                           : "uncoordinated")
          .ints("machines", machine_ids)
          .integer("owner", static_cast<std::int64_t>(owner));
    }
    if (jobtrace != nullptr) {
      const char* mode = g.mode == GroupMode::kExclusive    ? "exclusive"
                         : g.mode == GroupMode::kInterleaved ? "interleaved"
                                                             : "uncoordinated";
      for (JobId id : g.members) {
        jobtrace->placed(id, now, round_id, g.members, g.predicted_gamma,
                         mode);
      }
    }
    GroupKey key;
    key.members = g.members;
    std::sort(key.members.begin(), key.members.end());
    key.mode = g.mode;
    key.num_gpus = g.num_gpus;
    for (JobId id : g.members) placed.insert(id);
    admitted.push_back({std::move(key), &g, owner});
  }

  std::set<JobId> newly_running;
  for (const auto& [key, group, owner] : admitted) {
    const std::size_t p = group->members.size();
    std::vector<IterationProfile> true_profiles;
    true_profiles.reserve(p);
    int max_gpus = 0;
    int min_gpus = std::numeric_limits<int>::max();
    for (JobId id : group->members) {
      const JobRecord& rec = *find(id);
      true_profiles.push_back(rec.job.profile);
      max_gpus = std::max(max_gpus, rec.job.num_gpus);
      min_gpus = std::min(min_gpus, rec.job.num_gpus);
    }
    const GroupExecution ex = compute_group_execution(
        true_profiles, group->mode, max_gpus, min_gpus, group->slots,
        group->offsets, group->planned_period, /*degraded=*/false,
        options_.exec);

    for (std::size_t i = 0; i < p; ++i) {
      JobRecord& rec = *find(group->members[i]);
      const bool unchanged =
          rec.phase == JobPhase::kRunning && rec.key == key;
      if (!unchanged) {
        if (rec.phase == JobPhase::kRunning) {
          if (decisions != nullptr) {
            decisions->entry("restart")
                .num("t", now)
                .integer("job", rec.job.id)
                .str("reason", "regrouped");
          }
        } else {
          ++running_;
        }
        rec.key = key;
        rec.ready_at = now + options_.restart_penalty;
        if (rec.first_scheduled < 0) {
          rec.first_scheduled = now;
          if (observer != nullptr) {
            observer->on_first_schedule(now, now - rec.job.submit_time);
          }
        }
      }
      rec.period = ex.periods[i];
      rec.owner = owner;
      rec.phase = JobPhase::kRunning;
      newly_running.insert(rec.job.id);
    }
  }

  for (auto& [id, rec] : jobs_) {
    if (rec.phase != JobPhase::kRunning || newly_running.count(id)) continue;
    if (decisions != nullptr) {
      decisions->entry("preempt")
          .num("t", now)
          .integer("job", id)
          .str("reason", "displaced");
    }
    if (jobtrace != nullptr) jobtrace->preempted(id, now, round_id);
    rec.phase = JobPhase::kQueued;
    rec.period = 0;
    rec.key = GroupKey{};
    rec.owner = kNoOwner;
    ++rec.preemptions;
    --running_;
    mark_dirty(id);
  }

  // Post-round wait verdicts: classify every job the plan left queued,
  // identically in the jobtrace events and the decision log's "wait"
  // record (ids ascending — jobs_ is an ordered map).
  if (jobtrace != nullptr || decisions != nullptr) {
    const std::vector<JobId>& deferred = scheduler_.last_deferred();
    const int capacity = ctx.capacity();
    std::vector<std::int64_t> wait_ids;
    std::vector<std::string> wait_buckets;
    for (const auto& [id, rec] : jobs_) {
      if (rec.phase != JobPhase::kQueued) continue;
      const bool was_deferred =
          std::binary_search(deferred.begin(), deferred.end(), id);
      const obs::SpanKind bucket =
          obs::classify_wait(was_deferred, rec.job.num_gpus, capacity);
      if (jobtrace != nullptr) {
        jobtrace->wait_verdict(id, now, round_id, bucket);
      }
      if (decisions != nullptr) {
        wait_ids.push_back(id);
        wait_buckets.emplace_back(obs::span_kind_name(bucket));
      }
    }
    if (decisions != nullptr && !wait_ids.empty()) {
      decisions->entry("wait")
          .num("t", now)
          .ids("job", wait_ids)
          .strs("bucket", wait_buckets);
    }
  }

  if (observer != nullptr) {
    const auto t_end = std::chrono::steady_clock::now();
    observer->on_round(
        now, std::chrono::duration<double>(t_place - t_schedule).count(),
        std::chrono::duration<double>(t_end - t_place).count());
  }
}

std::vector<JobStatus> ServiceEngine::list_jobs() const {
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& [id, rec] : jobs_) {
    JobStatus st;
    (void)job_status(id, st);
    out.push_back(std::move(st));
  }
  return out;
}

bool ServiceEngine::job_status(JobId id, JobStatus& out) const {
  const JobRecord* rec = find(id);
  if (rec == nullptr) return false;
  out.id = rec->job.id;
  out.phase = rec->phase;
  out.model = rec->job.model;
  out.name = rec->name;
  out.num_gpus = rec->job.num_gpus;
  out.iterations = rec->job.iterations;
  out.done_iterations = rec->done_iterations;
  out.submit_time = rec->job.submit_time;
  out.first_scheduled = rec->first_scheduled;
  out.end_time = rec->end_time;
  out.preemptions = rec->preemptions;
  return true;
}

void ServiceEngine::checkpoint_progress(Time now) {
  if (options_.decisions == nullptr) return;
  for (const auto& [id, rec] : jobs_) {
    if (rec.phase != JobPhase::kQueued && rec.phase != JobPhase::kRunning) {
      continue;
    }
    if (rec.done_iterations <= 0) continue;
    options_.decisions->entry("job_progress")
        .num("t", now)
        .integer("job", id)
        .num("done", rec.done_iterations);
  }
}

}  // namespace muri::service
