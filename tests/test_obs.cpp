// Observability tests: tracer ring semantics, clock domains, trace-JSON
// schema, metrics registry math and exposition format, thread-pool
// concurrency (the TSan tier runs this binary), and the two contracts the
// instrumented modules promise — disabled obs leaves simulation results
// bit-identical, and the Muri registry metrics reproduce GroupingStats
// exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/threadpool.h"
#include "job/model.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "scheduler/baselines.h"
#include "scheduler/muri.h"
#include "sim/simulator.h"

namespace muri {
namespace {

using obs::JsonValue;
using obs::Labels;
using obs::MetricsRegistry;
using obs::Tracer;

// ---------------------------------------------------------------------------
// Tracer: rings, clock, export

TEST(Trace, DisabledTracerRecordsNothing) {
  Tracer t;
  ASSERT_FALSE(t.enabled());
  t.instant("e", "c", 1, 0);
  t.complete(0, 10, "s", "c", 1, 0);
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_EQ(t.dropped(), 0);
}

TEST(Trace, RingWraparoundKeepsNewestAndCountsDrops) {
  Tracer t(/*ring_capacity=*/8);
  t.set_enabled(true);
  for (int i = 0; i < 20; ++i) {
    t.instant_at(i, "e", "c", 1, 0);
  }
  EXPECT_EQ(t.recorded(), 8u);
  EXPECT_EQ(t.dropped(), 12);

  JsonValue root;
  ASSERT_TRUE(obs::parse_json(t.chrome_trace_json(), root));
  std::set<std::int64_t> ts;
  for (const JsonValue& e : root.at("traceEvents").array) {
    if (e.at("ph").string == "i") {
      ts.insert(static_cast<std::int64_t>(e.at("ts").number));
    }
  }
  // The surviving window is the most recent 8 events.
  const std::set<std::int64_t> want{12, 13, 14, 15, 16, 17, 18, 19};
  EXPECT_EQ(ts, want);
  EXPECT_NE(t.chrome_trace_json().find("\"droppedEvents\":12"),
            std::string::npos);
}

TEST(Trace, ClearResetsEventsButKeepsState) {
  Tracer t(8);
  t.set_enabled(true);
  for (int i = 0; i < 20; ++i) t.instant_at(i, "e", "c", 1, 0);
  t.clear();
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_EQ(t.dropped(), 0);
  EXPECT_TRUE(t.enabled());
  t.instant_at(5, "e", "c", 1, 0);
  EXPECT_EQ(t.recorded(), 1u);
}

TEST(Trace, ManualClockSwitchIsPermanent) {
  Tracer t;
  EXPECT_FALSE(t.manual_time());
  t.set_manual_seconds(1.5);
  EXPECT_TRUE(t.manual_time());
  EXPECT_EQ(t.now_micros(), 1'500'000);
  t.set_manual_seconds(2.0);
  EXPECT_EQ(t.now_micros(), 2'000'000);
}

TEST(Trace, ExportPassesSchemaValidation) {
  Tracer t;
  t.set_enabled(true);
  t.name_track(obs::kSchedulerTrack, "scheduler");
  t.name_lane(obs::kSchedulerTrack, 3, "job 3");
  t.instant_at(10, "submit", "job", obs::kSchedulerTrack, 3,
               obs::TraceArgs("job", 3));
  t.complete(10, 25, "run-stage", "job", obs::machine_track(0), 3);
  std::string err;
  EXPECT_TRUE(obs::validate_chrome_trace(t.chrome_trace_json(), &err)) << err;
}

TEST(Trace, ValidatorRejectsMalformedInput) {
  EXPECT_FALSE(obs::validate_chrome_trace("not json"));
  EXPECT_FALSE(obs::validate_chrome_trace("{}"));
  EXPECT_FALSE(obs::validate_chrome_trace("{\"traceEvents\": []}"));
  EXPECT_FALSE(obs::validate_chrome_trace(
      "{\"traceEvents\": [{\"name\": \"e\", \"ph\": \"i\"}]}"));
  // A complete event without dur must fail; with it, pass.
  EXPECT_FALSE(obs::validate_chrome_trace(
      "{\"traceEvents\": [{\"name\": \"e\", \"ph\": \"X\", \"pid\": 1, "
      "\"tid\": 0, \"ts\": 5}]}"));
  EXPECT_TRUE(obs::validate_chrome_trace(
      "{\"traceEvents\": [{\"name\": \"e\", \"ph\": \"X\", \"pid\": 1, "
      "\"tid\": 0, \"ts\": 5, \"dur\": 2}]}"));
}

TEST(Trace, ConcurrentRecordingFromThreadPool) {
  Tracer t;
  t.set_enabled(true);
  ThreadPool pool(4);
  pool.parallel_for(0, 1000, [&](std::int64_t i) {
    t.instant_at(i, "work", "pool", 1, static_cast<int>(i % 4));
  });
  EXPECT_EQ(t.recorded(), 1000u);
  EXPECT_EQ(t.dropped(), 0);
}

TEST(Trace, ExportWhileRecordingIsSafe) {
  // The exporter contends with live recorders on the per-ring mutex; this
  // is the interleaving the TSan CI tier checks.
  Tracer t(1024);
  t.set_enabled(true);
  std::thread writer([&] {
    for (int i = 0; i < 20000; ++i) t.instant_at(i, "w", "c", 1, 0);
  });
  for (int i = 0; i < 50; ++i) {
    const std::string json = t.chrome_trace_json();
    EXPECT_FALSE(json.empty());
  }
  writer.join();
  EXPECT_EQ(t.recorded(), 1024u);
  EXPECT_TRUE(obs::validate_chrome_trace(t.chrome_trace_json()));
}

// ---------------------------------------------------------------------------
// Metrics: scalar math, histogram edges, exposition format

TEST(Metrics, CounterAndGauge) {
  MetricsRegistry reg;
  obs::Counter& c = reg.counter("c_total", "help");
  c.inc();
  c.inc(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  // Same (name, labels) -> same series.
  EXPECT_EQ(&reg.counter("c_total", "help"), &c);
  EXPECT_NE(&reg.counter("c_total", "help", Labels{{"k", "v"}}), &c);

  obs::Gauge& g = reg.gauge("g", "help");
  g.set(7);
  g.add(-2);
  EXPECT_DOUBLE_EQ(g.value(), 5);
}

TEST(Metrics, HistogramBucketEdgesAreLessOrEqual) {
  MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("h", "help", {1.0, 2.0, 5.0});
  // Prometheus `le` convention: a value equal to a bound lands in that
  // bound's bucket.
  h.observe(0.5);  // bucket 0 (le=1)
  h.observe(1.0);  // bucket 0 (le=1), edge-inclusive
  h.observe(1.5);  // bucket 1 (le=2)
  h.observe(2.0);  // bucket 1 (le=2), edge-inclusive
  h.observe(5.0);  // bucket 2 (le=5)
  h.observe(9.0);  // bucket 3 (+Inf)
  EXPECT_EQ(h.count(), 6);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 9.0);
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 2);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(3), 1);
  EXPECT_GT(h.quantile(0.5), 0.0);
  EXPECT_LE(h.quantile(0.5), 2.0);
}

TEST(Metrics, SummaryTracksExactQuantiles) {
  MetricsRegistry reg;
  obs::Summary& s = reg.summary("s", "help");
  for (int i = 1; i <= 100; ++i) s.observe(i);
  EXPECT_EQ(s.count(), 100);
  EXPECT_DOUBLE_EQ(s.sum(), 5050);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_NEAR(s.percentile(50), 50.5, 1.0);
  EXPECT_NEAR(s.percentile(99), 99, 1.5);
}

TEST(Metrics, ConcurrentIncrementsFromThreadPool) {
  MetricsRegistry reg;
  obs::Counter& c = reg.counter("c_total", "help");
  obs::Histogram& h = reg.histogram("h", "help", {10.0, 100.0});
  ThreadPool pool(4);
  pool.parallel_for(0, 1000, [&](std::int64_t i) {
    c.inc();
    h.observe(static_cast<double>(i % 200));
  });
  EXPECT_DOUBLE_EQ(c.value(), 1000);
  EXPECT_EQ(h.count(), 1000);
}

// A deliberately small shim: checks the exposition format line by line the
// way a Prometheus scraper tokenizes it.
void check_prometheus_parses(const std::string& text) {
  std::set<std::string> typed;
  size_t pos = 0;
  int series_lines = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "missing trailing newline";
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      // "# TYPE <name> <kind>"
      const size_t sp = line.find(' ', 7);
      ASSERT_NE(sp, std::string::npos) << line;
      const std::string kind = line.substr(sp + 1);
      EXPECT_TRUE(kind == "counter" || kind == "gauge" ||
                  kind == "histogram" || kind == "summary")
          << line;
      typed.insert(line.substr(7, sp - 7));
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown comment line: " << line;
    // "<name>[{labels}] <float>"
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    size_t parsed = 0;
    (void)std::stod(line.substr(sp + 1), &parsed);  // throws on garbage
    EXPECT_EQ(parsed, line.size() - sp - 1) << line;
    std::string name = line.substr(0, line.find('{'));
    name = name.substr(0, name.find(' '));
    // Series must be declared: its name or its base name (stripping the
    // histogram/summary _bucket/_sum/_count suffix) carries a # TYPE.
    bool declared = typed.count(name) > 0;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s = suffix;
      if (!declared && name.size() > s.size() &&
          name.compare(name.size() - s.size(), s.size(), s) == 0) {
        declared = typed.count(name.substr(0, name.size() - s.size())) > 0;
      }
    }
    EXPECT_TRUE(declared) << "series before # TYPE: " << line;
    ++series_lines;
  }
  EXPECT_GT(series_lines, 0);
}

TEST(Metrics, PrometheusTextParses) {
  MetricsRegistry reg;
  reg.counter("jobs_total", "Jobs", Labels{{"sched", "Muri-L"}}).inc(3);
  reg.counter("jobs_total", "Jobs", Labels{{"sched", "SRSF"}}).inc(4);
  reg.gauge("queue_len", "Queue").set(17);
  obs::Histogram& h = reg.histogram("lat_seconds", "Latency", {0.1, 1.0});
  h.observe(0.05);
  h.observe(5.0);
  obs::Summary& s = reg.summary("round_seconds", "Rounds");
  s.observe(1);
  s.observe(2);

  const std::string text = reg.prometheus_text();
  check_prometheus_parses(text);
  // Histogram buckets are cumulative and end at +Inf == _count.
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.1\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 2"), std::string::npos);
  // Labeled series render their label sets.
  EXPECT_NE(text.find("jobs_total{sched=\"Muri-L\"} 3"), std::string::npos);
}

TEST(Metrics, JsonSnapshotIsValidJson) {
  MetricsRegistry reg;
  reg.counter("c_total", "help").inc(2);
  reg.summary("s", "help").observe(1.5);
  JsonValue root;
  std::string err;
  ASSERT_TRUE(obs::parse_json(reg.json_snapshot(), root, &err)) << err;
  EXPECT_TRUE(root.is_object());
  EXPECT_TRUE(root.at("c_total").is_number());
  EXPECT_DOUBLE_EQ(root.at("c_total").number, 2);
  EXPECT_TRUE(root.at("s").is_object());
  EXPECT_DOUBLE_EQ(root.at("s").at("count").number, 1);
}

// ---------------------------------------------------------------------------
// Simulator integration: determinism, schema, no-op guarantee

Trace obs_trace() {
  Trace t;
  t.name = "obs";
  JobId id = 0;
  auto add = [&](ModelKind m, Time submit, double solo_secs) {
    Job j;
    j.id = id++;
    j.model = m;
    j.num_gpus = 1;
    j.submit_time = submit;
    j.profile = model_profile(m, 1);
    j.iterations = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(solo_secs / j.profile.iteration_time()));
    t.jobs.push_back(j);
  };
  // Long jobs first, short jobs later: the later arrivals preempt under
  // SRSF, so the trace is guaranteed to carry "preempt" instants.
  for (int c = 0; c < 2; ++c) {
    add(ModelKind::kShuffleNet, 0, 1200);
    add(ModelKind::kA2c, 0, 1200);
    add(ModelKind::kGpt2, 120, 120);
    add(ModelKind::kVgg16, 120, 120);
  }
  return t;
}

SimOptions obs_sim_options() {
  SimOptions opt;
  opt.cluster.num_machines = 2;
  opt.cluster.gpus_per_machine = 2;
  opt.schedule_interval = 60;
  opt.durations_known = true;
  // Machine faults + stragglers so the trace carries fault windows.
  opt.machine_faults.machine_mtbf_hours = 0.2;
  opt.machine_faults.machine_mttr_hours = 0.05;
  opt.machine_faults.straggler_rate_per_hour = 20.0;
  opt.machine_faults.straggler_duration_s = 300;
  opt.machine_faults.straggler_severity = 2.0;
  opt.machine_faults.seed = 7;
  return opt;
}

std::string run_traced(SimResult* result_out = nullptr) {
  Tracer tracer;
  tracer.set_enabled(true);
  SrsfScheduler sched;
  SimOptions opt = obs_sim_options();
  opt.tracer = &tracer;
  const SimResult r = run_simulation(obs_trace(), sched, opt);
  if (result_out != nullptr) *result_out = r;
  return tracer.chrome_trace_json();
}

TEST(SimTrace, FixedSeedRunsExportByteIdenticalJson) {
  const std::string a = run_traced();
  const std::string b = run_traced();
  EXPECT_EQ(a, b);
}

TEST(SimTrace, SchemaAndRequiredEventKinds) {
  SimResult r;
  const std::string json = run_traced(&r);
  std::string err;
  ASSERT_TRUE(obs::validate_chrome_trace(json, &err)) << err;

  JsonValue root;
  ASSERT_TRUE(obs::parse_json(json, root));
  std::set<std::string> names;
  std::set<int> pids;
  std::set<std::string> track_labels;
  for (const JsonValue& e : root.at("traceEvents").array) {
    names.insert(e.at("name").string);
    if (e.at("name").string == "process_name") {
      track_labels.insert(e.at("args").at("name").string);
    }
    if (e.at("ph").string != "M") {
      pids.insert(static_cast<int>(e.at("pid").number));
    }
  }
  // One track per machine plus the scheduler track, all labeled.
  EXPECT_TRUE(pids.count(obs::kSchedulerTrack));
  EXPECT_TRUE(pids.count(obs::machine_track(0)));
  EXPECT_TRUE(pids.count(obs::machine_track(1)));
  EXPECT_TRUE(track_labels.count("scheduler"));
  EXPECT_TRUE(track_labels.count("machine 0"));
  // At least one of each event kind the issue calls out: a scheduling
  // round, a job run span, a preemption, and a fault window.
  EXPECT_TRUE(names.count("round"));
  EXPECT_TRUE(names.count("run-stage"));
  EXPECT_TRUE(names.count("preempt"));
  EXPECT_TRUE(names.count("down") || names.count("straggler"));
  EXPECT_TRUE(names.count("submit"));
  EXPECT_TRUE(names.count("finish"));
  EXPECT_GT(r.machine_failures + static_cast<std::int64_t>(
                                     r.straggler_seconds > 0 ? 1 : 0),
            0);
}

TEST(SimTrace, AttachedObsLeavesSimResultBitIdentical) {
  auto run = [](bool with_obs) {
    Tracer tracer;
    tracer.set_enabled(true);
    MetricsRegistry reg;
    SrsfScheduler sched;
    SimOptions opt = obs_sim_options();
    if (with_obs) {
      opt.tracer = &tracer;
      opt.metrics = &reg;
    }
    return run_simulation(obs_trace(), sched, opt);
  };
  const SimResult plain = run(false);
  const SimResult traced = run(true);
  EXPECT_EQ(plain.avg_jct, traced.avg_jct);
  EXPECT_EQ(plain.p99_jct, traced.p99_jct);
  EXPECT_EQ(plain.makespan, traced.makespan);
  EXPECT_EQ(plain.avg_queue_length, traced.avg_queue_length);
  EXPECT_EQ(plain.jcts, traced.jcts);
  EXPECT_EQ(plain.finished_jobs, traced.finished_jobs);
  EXPECT_EQ(plain.faults, traced.faults);
  EXPECT_EQ(plain.restarts, traced.restarts);
  EXPECT_EQ(plain.machine_failures, traced.machine_failures);
  EXPECT_EQ(plain.evictions, traced.evictions);
  EXPECT_EQ(plain.straggler_seconds, traced.straggler_seconds);
  EXPECT_EQ(plain.degraded_group_seconds, traced.degraded_group_seconds);
}

TEST(SimTrace, FaultCountersRouteThroughRegistry) {
  MetricsRegistry reg;
  SrsfScheduler sched;
  SimOptions opt = obs_sim_options();
  opt.metrics = &reg;
  const SimResult r = run_simulation(obs_trace(), sched, opt);
  EXPECT_GT(r.machine_failures, 0);
  EXPECT_DOUBLE_EQ(
      reg.counter("muri_sim_machine_failures_total", "").value(),
      static_cast<double>(r.machine_failures));
  EXPECT_DOUBLE_EQ(reg.counter("muri_sim_evictions_total", "").value(),
                   static_cast<double>(r.evictions));
  EXPECT_DOUBLE_EQ(reg.counter("muri_sim_restarts_total", "").value(),
                   static_cast<double>(r.restarts));
  EXPECT_DOUBLE_EQ(reg.counter("muri_sim_job_faults_total", "").value(),
                   static_cast<double>(r.faults));
  EXPECT_DOUBLE_EQ(
      reg.counter("muri_sim_straggler_seconds_total", "").value(),
      r.straggler_seconds);
  EXPECT_DOUBLE_EQ(
      reg.counter("muri_sim_degraded_group_seconds_total", "").value(),
      r.degraded_group_seconds);
}

TEST(SimTrace, SharedRegistryAccumulatesButResultsStayPerRun) {
  // One registry across two runs: SimResult must report per-run deltas,
  // not the accumulated totals.
  MetricsRegistry reg;
  SimOptions opt = obs_sim_options();
  opt.metrics = &reg;
  SrsfScheduler s1;
  const SimResult r1 = run_simulation(obs_trace(), s1, opt);
  SrsfScheduler s2;
  const SimResult r2 = run_simulation(obs_trace(), s2, opt);
  EXPECT_EQ(r1.machine_failures, r2.machine_failures);
  EXPECT_DOUBLE_EQ(
      reg.counter("muri_sim_machine_failures_total", "").value(),
      static_cast<double>(r1.machine_failures + r2.machine_failures));
}

// ---------------------------------------------------------------------------
// Muri scheduler: GroupingStats mirrored into the registry

TEST(MuriMetrics, RegistryReproducesGroupingStatsExactly) {
  MetricsRegistry reg;
  Tracer tracer;
  tracer.set_enabled(true);
  MuriOptions mopt;
  mopt.durations_known = true;
  mopt.metrics = &reg;
  mopt.trace = &tracer;
  MuriScheduler muri(mopt);

  SimOptions opt = obs_sim_options();
  opt.machine_faults = FaultInjectorOptions{};  // clean run, pure scheduling
  opt.tracer = &tracer;
  const SimResult r = run_simulation(obs_trace(), muri, opt);
  EXPECT_EQ(r.finished_jobs, 8);

  const GroupingStats& cum = muri.cumulative_stats();
  EXPECT_GT(cum.matchings_run, 0);
  // Same values, same fold order, so the doubles are bit-identical.
  EXPECT_DOUBLE_EQ(
      reg.counter("muri_sched_graph_build_seconds_total", "").value(),
      cum.graph_build_seconds);
  EXPECT_DOUBLE_EQ(
      reg.counter("muri_sched_matching_seconds_total", "").value(),
      cum.matching_seconds);
  EXPECT_DOUBLE_EQ(
      reg.counter("muri_sched_gamma_cache_hits_total", "").value(),
      static_cast<double>(cum.cache_hits));
  EXPECT_DOUBLE_EQ(
      reg.counter("muri_sched_gamma_cache_misses_total", "").value(),
      static_cast<double>(cum.cache_misses));
  EXPECT_DOUBLE_EQ(reg.counter("muri_sched_matchings_total", "").value(),
                   static_cast<double>(cum.matchings_run));
  EXPECT_GT(reg.counter("muri_sched_rounds_total", "").value(), 0.0);

  // The scheduler's round spans landed on its track.
  JsonValue root;
  ASSERT_TRUE(obs::parse_json(tracer.chrome_trace_json(), root));
  bool saw_round_span = false;
  for (const JsonValue& e : root.at("traceEvents").array) {
    if (e.at("name").string == "round" && e.at("ph").string == "X") {
      saw_round_span = true;
      EXPECT_EQ(static_cast<int>(e.at("pid").number), obs::kSchedulerTrack);
    }
  }
  EXPECT_TRUE(saw_round_span);
}

// ---------------------------------------------------------------------------
// JSON reader: error paths

TEST(Json, RejectsTruncatedInput) {
  // Every prefix of a valid document must fail cleanly, not crash or
  // accept.
  const std::string full =
      "{\"a\": [1, 2.5, \"x\"], \"b\": {\"c\": true, \"d\": null}}";
  JsonValue root;
  ASSERT_TRUE(obs::parse_json(full, root));
  for (std::size_t len = 0; len < full.size(); ++len) {
    JsonValue v;
    std::string err;
    EXPECT_FALSE(obs::parse_json(full.substr(0, len), v, &err))
        << "prefix of length " << len << " parsed";
    EXPECT_FALSE(err.empty());
  }
}

TEST(Json, RejectsBadEscapesAndTrailingGarbage) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(obs::parse_json("\"\\q\"", v, &err));  // unknown escape
  EXPECT_FALSE(obs::parse_json("\"\\u12\"", v));      // short \u escape
  EXPECT_FALSE(obs::parse_json("\"\\u12zz\"", v));    // non-hex \u escape
  EXPECT_FALSE(obs::parse_json("\"unterminated", v));
  EXPECT_FALSE(obs::parse_json("{\"a\": 1} trailing", v, &err));
  EXPECT_FALSE(obs::parse_json("[1, ]", v));
  EXPECT_FALSE(obs::parse_json("{\"a\" 1}", v));
  EXPECT_FALSE(obs::parse_json("nul", v));
  // The accepted escapes round-trip.
  ASSERT_TRUE(obs::parse_json("\"a\\\"b\\\\c\\n\\t\\u0041\"", v));
  EXPECT_EQ(v.string, "a\"b\\c\n\tA");
}

TEST(Json, DeepNestingFailsGracefully) {
  // Past the parser's depth cap the parse must return false instead of
  // overflowing the stack.
  const int depth = 300;
  std::string deep;
  for (int i = 0; i < depth; ++i) deep += '[';
  for (int i = 0; i < depth; ++i) deep += ']';
  JsonValue v;
  std::string err;
  EXPECT_FALSE(obs::parse_json(deep, v, &err));
  EXPECT_FALSE(err.empty());
  // A sane depth still parses.
  std::string ok;
  for (int i = 0; i < 64; ++i) ok += '[';
  for (int i = 0; i < 64; ++i) ok += ']';
  EXPECT_TRUE(obs::parse_json(ok, v));
}

// ---------------------------------------------------------------------------
// Tracer: args builder, counter events, log routing

TEST(Trace, TraceArgsAddAppendsAndDropsWhenFull) {
  obs::TraceArgs args("a", 1);
  args.add("b", 2).add("c", 3);
  EXPECT_STREQ(args.key[0], "a");
  EXPECT_STREQ(args.key[1], "b");
  EXPECT_STREQ(args.key[2], "c");
  EXPECT_EQ(args.value[2], 3);
  for (int i = 0; i < obs::TraceArgs::kCapacity + 4; ++i) {
    args.add("x", static_cast<double>(i));
  }
  // Full args silently drop; the last slot holds the first overflow fill.
  EXPECT_STREQ(args.key[obs::TraceArgs::kCapacity - 1], "x");
}

TEST(Trace, CounterEventsExportWithPhaseC) {
  Tracer t;
  t.set_enabled(true);
  t.counter(100, "busy", obs::machine_track(0),
            obs::TraceArgs("gpu", 0.5, "cpu", 0.25));
  JsonValue root;
  ASSERT_TRUE(obs::parse_json(t.chrome_trace_json(), root));
  bool saw = false;
  for (const JsonValue& e : root.at("traceEvents").array) {
    if (e.at("ph").string != "C") continue;
    saw = true;
    EXPECT_EQ(e.at("name").string, "busy");
    EXPECT_EQ(static_cast<int>(e.at("pid").number), obs::machine_track(0));
    EXPECT_DOUBLE_EQ(e.at("args").at("gpu").number, 0.5);
    EXPECT_DOUBLE_EQ(e.at("args").at("cpu").number, 0.25);
  }
  EXPECT_TRUE(saw);
}

TEST(Trace, AttachedLogTracerMirrorsWarningsOnly) {
  Tracer t;
  t.set_enabled(true);
  obs::attach_log_tracer(&t);
  MURI_LOG(kWarn) << "watch out";
  MURI_LOG(kError) << "it broke";
  MURI_LOG(kInfo) << "below the hook threshold";  // level-filtered anyway
  obs::attach_log_tracer(nullptr);
  MURI_LOG(kWarn) << "after detach";

  JsonValue root;
  ASSERT_TRUE(obs::parse_json(t.chrome_trace_json(), root));
  int warns = 0, errors = 0;
  for (const JsonValue& e : root.at("traceEvents").array) {
    if (e.at("cat").string != "log") continue;
    const std::string& msg = e.at("args").at("message").string;
    if (e.at("name").string == "warn") {
      ++warns;
      EXPECT_EQ(msg, "watch out");
    } else if (e.at("name").string == "error") {
      ++errors;
      EXPECT_EQ(msg, "it broke");
    }
  }
  EXPECT_EQ(warns, 1);
  EXPECT_EQ(errors, 1);
}

TEST(Trace, RunEpochsAreSequentialPerTracer) {
  Tracer a;
  EXPECT_EQ(a.begin_run_epoch(), 1);
  EXPECT_EQ(a.begin_run_epoch(), 2);
  Tracer b;
  EXPECT_EQ(b.begin_run_epoch(), 1);
}

}  // namespace
}  // namespace muri
