// Loopback tests for the /metrics HTTP exporter: a real client socket
// against the real server thread — Prometheus text at /metrics, JSON at
// /metrics.json, liveness at /healthz, 404/405 handling (with accurate
// Content-Length), ephemeral-port binding, and graceful
// stop/restart.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "obs/http_exporter.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace muri {
namespace {

using obs::HttpExporter;
using obs::MetricsRegistry;

// Minimal blocking HTTP client: one request, reads to EOF (the server
// closes after each response).
std::string http_request(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return {};
  }
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(int port, const std::string& path) {
  return http_request(port, "GET " + path +
                                " HTTP/1.1\r\nHost: localhost\r\n"
                                "Connection: close\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string()
                                    : response.substr(split + 4);
}

// The declared Content-Length, or -1 when the header is missing.
long content_length_of(const std::string& response) {
  const std::size_t pos = response.find("Content-Length: ");
  if (pos == std::string::npos) return -1;
  return std::strtol(response.c_str() + pos + 16, nullptr, 10);
}

TEST(HttpExporter, ServesPrometheusTextOnMetrics) {
  MetricsRegistry registry;
  registry
      .counter("muri_resource_busy_seconds", "busy seconds",
               {{"machine", "executor"}, {"resource", "gpu"}})
      .inc(1.5);
  HttpExporter exporter(registry);
  std::string error;
  ASSERT_TRUE(exporter.start(0, &error)) << error;  // ephemeral port
  ASSERT_GT(exporter.port(), 0);

  const std::string response = http_get(exporter.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  const std::string body = body_of(response);
  EXPECT_NE(body.find("# TYPE muri_resource_busy_seconds counter"),
            std::string::npos);
  EXPECT_NE(
      body.find("muri_resource_busy_seconds{machine=\"executor\","
                "resource=\"gpu\"} 1.5"),
      std::string::npos);
  // The live endpoint serves current values: bump and re-poll.
  registry
      .counter("muri_resource_busy_seconds", "",
               {{"machine", "executor"}, {"resource", "gpu"}})
      .inc(0.5);
  EXPECT_NE(body_of(http_get(exporter.port(), "/metrics"))
                .find("resource=\"gpu\"} 2"),
            std::string::npos);
  exporter.stop();
  EXPECT_FALSE(exporter.running());
}

TEST(HttpExporter, ServesJsonSnapshot) {
  MetricsRegistry registry;
  registry.gauge("queue_len", "").set(7);
  HttpExporter exporter(registry);
  ASSERT_TRUE(exporter.start(0, nullptr));

  const std::string response = http_get(exporter.port(), "/metrics.json");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  obs::JsonValue root;
  std::string err;
  ASSERT_TRUE(obs::parse_json(body_of(response), root, &err)) << err;
  EXPECT_DOUBLE_EQ(root.at("queue_len").number, 7);
  exporter.stop();
}

TEST(HttpExporter, ServesHealthz) {
  // The liveness probe must answer without touching the registry, so an
  // empty one is the interesting case. Default is a small JSON document;
  // ?plain=1 keeps the historical one-word body for shell probes.
  MetricsRegistry registry;
  HttpExporter exporter(registry);
  ASSERT_TRUE(exporter.start(0, nullptr));
  const std::string response = http_get(exporter.port(), "/healthz");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  obs::JsonValue root;
  std::string err;
  ASSERT_TRUE(obs::parse_json(body_of(response), root, &err)) << err;
  EXPECT_EQ(root.at("status").string, "ok");
  EXPECT_GE(root.at("uptime_s").number, 0.0);

  const std::string plain = http_get(exporter.port(), "/healthz?plain=1");
  EXPECT_NE(plain.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(plain.find("text/plain"), std::string::npos);
  EXPECT_EQ(body_of(plain), "ok\n");
  EXPECT_EQ(content_length_of(plain), 3);
  exporter.stop();
}

TEST(HttpExporter, RejectsUnknownPathsAndMethods) {
  MetricsRegistry registry;
  HttpExporter exporter(registry);
  ASSERT_TRUE(exporter.start(0, nullptr));
  const std::string response = http_get(exporter.port(), "/nope");
  EXPECT_NE(response.find("404 Not Found"), std::string::npos);
  // The 404 path declares the body it actually sends, like every route.
  EXPECT_EQ(content_length_of(response),
            static_cast<long>(body_of(response).size()));
  EXPECT_GT(body_of(response).size(), 0u);
  EXPECT_NE(http_request(exporter.port(),
                         "POST /metrics HTTP/1.1\r\n\r\n")
                .find("405 Method Not Allowed"),
            std::string::npos);
  exporter.stop();
}

TEST(HttpExporter, StopIsIdempotentAndRestartable) {
  MetricsRegistry registry;
  HttpExporter exporter(registry);
  std::string error;
  ASSERT_TRUE(exporter.start(0, &error)) << error;
  EXPECT_TRUE(exporter.running());
  // Double-start is refused while running.
  EXPECT_FALSE(exporter.start(0, &error));
  exporter.stop();
  exporter.stop();  // no-op
  EXPECT_FALSE(exporter.running());
  // Restart binds a fresh socket.
  ASSERT_TRUE(exporter.start(0, &error)) << error;
  EXPECT_NE(http_get(exporter.port(), "/metrics")
                .find("HTTP/1.1 200 OK"),
            std::string::npos);
  exporter.stop();
}

TEST(HttpExporter, RetriesBindWhileThePortIsBusy) {
  // Occupy a concrete ephemeral port with a plain listening socket.
  const int blocker = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(blocker, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(blocker, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(blocker, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(blocker, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const int port = ntohs(addr.sin_port);

  // With retries exhausted the failure is reported, not hung.
  MetricsRegistry registry;
  HttpExporter exporter(registry);
  exporter.set_bind_retry(/*attempts=*/2, /*initial_backoff_ms=*/5);
  std::string error;
  EXPECT_FALSE(exporter.start(port, &error));
  EXPECT_FALSE(exporter.running());
  EXPECT_NE(error.find("in use"), std::string::npos) << error;

  // Free the port mid-retry: start() succeeds on a later attempt.
  exporter.set_bind_retry(/*attempts=*/50, /*initial_backoff_ms=*/5);
  std::thread releaser([blocker] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ::close(blocker);
  });
  ASSERT_TRUE(exporter.start(port, &error)) << error;
  releaser.join();
  EXPECT_EQ(exporter.port(), port);
  EXPECT_NE(http_get(port, "/healthz").find("HTTP/1.1 200 OK"),
            std::string::npos);
  exporter.stop();
}

}  // namespace
}  // namespace muri
