// AdmissionQueue unit tests: strict FIFO, capacity-bounded rejection,
// cancel-while-queued, statistics accounting, and a concurrent
// submitters-vs-drainer hammer (run under TSan in CI — the queue is the
// handoff point between HTTP handler threads and the daemon's event
// loop).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "service/admission.h"

namespace muri::service {
namespace {

QueuedSubmission make_submission(JobId id, Time t = 0) {
  QueuedSubmission s;
  s.spec.model = ModelKind::kResNet18;
  s.spec.num_gpus = 1;
  s.spec.iterations = 100;
  s.id = id;
  s.submit_time = t;
  return s;
}

TEST(AdmissionQueue, DrainPreservesFifoOrder) {
  AdmissionQueue queue(8);
  for (JobId id = 0; id < 5; ++id) {
    EXPECT_TRUE(queue.try_push(make_submission(id, 10.0 * id)));
  }
  EXPECT_EQ(queue.depth(), 5u);

  const auto drained = queue.drain();
  ASSERT_EQ(drained.size(), 5u);
  for (JobId id = 0; id < 5; ++id) {
    EXPECT_EQ(drained[static_cast<std::size_t>(id)].id, id);
    EXPECT_DOUBLE_EQ(drained[static_cast<std::size_t>(id)].submit_time,
                     10.0 * id);
  }
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_TRUE(queue.drain().empty());
}

TEST(AdmissionQueue, RejectsAtCapacityWithoutLosingQueuedWork) {
  AdmissionQueue queue(2);
  EXPECT_TRUE(queue.try_push(make_submission(0)));
  EXPECT_TRUE(queue.try_push(make_submission(1)));
  EXPECT_FALSE(queue.try_push(make_submission(2)));
  EXPECT_FALSE(queue.try_push(make_submission(3)));
  EXPECT_EQ(queue.depth(), 2u);

  const auto stats = queue.stats();
  EXPECT_EQ(stats.accepted, 2);
  EXPECT_EQ(stats.rejected_full, 2);

  // A rejected push leaves the queue intact; draining frees capacity.
  const auto drained = queue.drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].id, 0);
  EXPECT_EQ(drained[1].id, 1);
  EXPECT_TRUE(queue.try_push(make_submission(2)));
}

TEST(AdmissionQueue, CancelWhileQueuedRemovesOnlyTheTarget) {
  AdmissionQueue queue(8);
  for (JobId id = 0; id < 4; ++id) {
    ASSERT_TRUE(queue.try_push(make_submission(id)));
  }

  EXPECT_TRUE(queue.contains(1));
  EXPECT_TRUE(queue.cancel(1));
  EXPECT_FALSE(queue.contains(1));
  // Cancelling again (or a never-admitted id) is a miss, not an error.
  EXPECT_FALSE(queue.cancel(1));
  EXPECT_FALSE(queue.cancel(99));

  // The survivors keep their relative order.
  const auto drained = queue.drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(drained[0].id, 0);
  EXPECT_EQ(drained[1].id, 2);
  EXPECT_EQ(drained[2].id, 3);

  const auto stats = queue.stats();
  EXPECT_EQ(stats.accepted, 4);
  EXPECT_EQ(stats.cancelled, 1);
  EXPECT_EQ(stats.drained, 3);
}

TEST(AdmissionQueue, SnapshotReportsQueuedJobsWithoutDraining) {
  AdmissionQueue queue(4);
  ASSERT_TRUE(queue.try_push(make_submission(7, 1.5)));
  ASSERT_TRUE(queue.try_push(make_submission(8, 2.5)));

  const auto snap = queue.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].id, 7);
  EXPECT_EQ(snap[1].id, 8);
  // Snapshot is a copy: the queue is untouched.
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.stats().drained, 0);
}

TEST(AdmissionQueue, StatsBalanceAcrossAllPaths) {
  AdmissionQueue queue(3);
  for (JobId id = 0; id < 5; ++id) queue.try_push(make_submission(id));
  queue.cancel(0);
  queue.drain();
  queue.try_push(make_submission(5));
  queue.drain();

  const auto stats = queue.stats();
  EXPECT_EQ(stats.accepted, 4);       // 0,1,2 then 5
  EXPECT_EQ(stats.rejected_full, 2);  // 3,4
  EXPECT_EQ(stats.cancelled, 1);      // 0
  EXPECT_EQ(stats.drained, 3);        // 1,2 then 5
  EXPECT_EQ(stats.accepted, stats.cancelled + stats.drained);
}

// Concurrent hammer: several submitter threads push disjoint id ranges
// while a drainer empties the queue. Every accepted submission must come
// out exactly once, per-submitter order preserved (the queue is globally
// FIFO, so each thread's ids drain in the order that thread pushed
// them). This is the test TSan watches in CI.
TEST(AdmissionQueue, ConcurrentSubmittersAndDrainerLoseNothing) {
  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 200;
  AdmissionQueue queue(16);

  std::atomic<bool> done{false};
  std::atomic<std::int64_t> accepted{0};
  std::vector<QueuedSubmission> drained;
  std::thread drainer([&] {
    while (!done.load(std::memory_order_acquire) || queue.depth() > 0) {
      auto batch = queue.drain();
      drained.insert(drained.end(), batch.begin(), batch.end());
      if (batch.empty()) std::this_thread::yield();
    }
    auto batch = queue.drain();
    drained.insert(drained.end(), batch.begin(), batch.end());
  });

  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const JobId id = static_cast<JobId>(t) * kPerThread + i;
        // Retry on backpressure — a client would too (429 + Retry-After).
        while (!queue.try_push(make_submission(id))) {
          std::this_thread::yield();
        }
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : submitters) th.join();
  done.store(true, std::memory_order_release);
  drainer.join();

  ASSERT_EQ(accepted.load(), kSubmitters * kPerThread);
  ASSERT_EQ(drained.size(),
            static_cast<std::size_t>(kSubmitters * kPerThread));

  // Exactly-once delivery, and each submitter's ids appear in its own
  // push order.
  std::map<JobId, int> seen;
  std::vector<JobId> last_per_thread(kSubmitters, -1);
  for (const auto& s : drained) {
    EXPECT_EQ(++seen[s.id], 1) << "duplicate id " << s.id;
    const int t = static_cast<int>(s.id / kPerThread);
    ASSERT_LT(t, kSubmitters);
    EXPECT_GT(s.id, last_per_thread[static_cast<std::size_t>(t)]);
    last_per_thread[static_cast<std::size_t>(t)] = s.id;
  }

  const auto stats = queue.stats();
  EXPECT_EQ(stats.drained, kSubmitters * kPerThread);
  EXPECT_EQ(stats.accepted, stats.drained);
}

}  // namespace
}  // namespace muri::service
