#include <gtest/gtest.h>

#include "scheduler/gittins.h"
#include "sim/simulator.h"
#include "scheduler/baselines.h"

namespace muri {
namespace {

JobView view(JobId id, double attained, Time submit = 0) {
  JobView v;
  v.id = id;
  v.num_gpus = 1;
  v.submit_time = submit;
  v.attained_service = attained;
  v.measured = model_profile(ModelKind::kBert, 1);
  return v;
}

SchedulerContext ctx(int gpus) {
  SchedulerContext c;
  c.total_gpus = gpus;
  return c;
}

// Feeds the scheduler rounds so that jobs with the given service values
// "complete" and seed the empirical distribution.
void seed_samples(GittinsScheduler& g, const std::vector<double>& services) {
  std::vector<JobView> round;
  JobId id = 1000;
  for (double s : services) round.push_back(view(id++, s));
  g.schedule(round, ctx(0));       // observe the jobs
  g.schedule({}, ctx(0));          // they vanish -> recorded as completions
}

TEST(Gittins, BootstrapsAsLasUntilEnoughSamples) {
  GittinsScheduler g;
  EXPECT_EQ(g.samples(), 0u);
  // Two jobs, less-attained first (LAS behaviour).
  const auto plan = g.schedule({view(0, 100.0), view(1, 5.0)}, ctx(1));
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].members[0], 1);
}

TEST(Gittins, HarvestsCompletions) {
  GittinsScheduler g;
  seed_samples(g, {10, 20, 30});
  EXPECT_EQ(g.samples(), 3u);
}

TEST(Gittins, IndexZeroBeyondAllSamples) {
  GittinsScheduler g;
  seed_samples(g, {10, 20, 30});
  EXPECT_DOUBLE_EQ(g.index_of(40.0), 0.0);
  EXPECT_GT(g.index_of(0.0), 0.0);
}

TEST(Gittins, IndexDecreasesPastTheCommonMode) {
  // Bimodal service: many short (~10) plus few long (~1000). A job that
  // has attained 15 has revealed itself as long: its index must be far
  // below a fresh job's.
  GittinsScheduler g;
  std::vector<double> services;
  for (int i = 0; i < 30; ++i) services.push_back(10.0 + i * 0.01);
  for (int i = 0; i < 3; ++i) services.push_back(1000.0 + i);
  seed_samples(g, services);
  const double fresh = g.index_of(0.0);
  const double revealed_long = g.index_of(15.0);
  EXPECT_GT(fresh, revealed_long * 5);
}

TEST(Gittins, DeterministicExactIndexOnTinyDistribution) {
  // Samples {10, 20}; attained 0.
  //   cut at 10: P = 1/2, E = (10 + 10)/2 = 10      -> 0.05
  //   cut at 20: P = 1,   E = (10 + 20)/2 = 15      -> 0.0667
  GittinsScheduler g;
  seed_samples(g, {10, 20});
  EXPECT_NEAR(g.index_of(0.0), 1.0 / 15.0, 1e-12);
  // attained 12: only {20} remains; cut at 20: P=1, E=8 -> 1/8.
  EXPECT_NEAR(g.index_of(12.0), 1.0 / 8.0, 1e-12);
}

TEST(Gittins, PrefersLikelyFinishersOnceTrained) {
  GittinsScheduler g;
  std::vector<double> services;
  for (int i = 0; i < 20; ++i) services.push_back(100.0 + i);
  for (int i = 0; i < 2; ++i) services.push_back(10000.0 + i);
  seed_samples(g, services);
  ASSERT_GE(g.samples(), 8u);
  // Job 0 attained 90 (about to finish per the distribution);
  // job 1 attained 150 (already past the cluster of short jobs).
  const auto plan = g.schedule({view(1, 150.0), view(0, 90.0)}, ctx(1));
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].members[0], 0);
}

TEST(Gittins, SampleCapEvictsOldest) {
  GittinsScheduler::Options opt;
  opt.max_samples = 4;
  GittinsScheduler g(opt);
  seed_samples(g, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(g.samples(), 4u);
}

TEST(Gittins, EndToEndSimulationCompletes) {
  const Trace t = [] {
    Trace tr;
    tr.name = "gittins";
    for (int i = 0; i < 12; ++i) {
      Job j;
      j.id = i;
      j.model = kAllModels[static_cast<size_t>(i) % kNumModels];
      j.num_gpus = 1;
      j.submit_time = i * 30.0;
      j.profile = model_profile(j.model, 1);
      j.iterations = static_cast<std::int64_t>(
          (300.0 + 100.0 * i) / j.profile.iteration_time());
      tr.jobs.push_back(j);
    }
    return tr;
  }();
  GittinsScheduler g;
  SimOptions opt;
  opt.cluster.num_machines = 1;
  opt.cluster.gpus_per_machine = 2;
  opt.schedule_interval = 60;
  const SimResult r = run_simulation(t, g, opt);
  EXPECT_EQ(r.finished_jobs, 12);
}

}  // namespace
}  // namespace muri
