// Live SLO plane primitives: the ring-buffer time-series store
// (obs/timeseries) and the SLO tracker (obs/slo), plus the percentile
// edge cases the plane leans on in common/stats and obs::Summary —
// empty windows, single samples, capacity-1 rings, and the promise that
// a windowed store p99 agrees with a Summary p99 over the same values.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/stats.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

namespace muri {
namespace {

using obs::ProbeKind;
using obs::SloConfig;
using obs::SloTracker;
using obs::TimeSeries;
using obs::TimeSeriesStore;
using obs::WindowStats;

// ---------------------------------------------------------------- stats

TEST(StatsPercentile, EmptyAndSingleSample) {
  EXPECT_EQ(percentile({}, 50), 0.0);
  EXPECT_EQ(percentile({}, 99), 0.0);
  // One sample is every percentile.
  EXPECT_EQ(percentile({7.5}, 0), 7.5);
  EXPECT_EQ(percentile({7.5}, 50), 7.5);
  EXPECT_EQ(percentile({7.5}, 99), 7.5);
  EXPECT_EQ(percentile({7.5}, 100), 7.5);
}

TEST(StatsPercentile, InterpolatesBetweenRanks) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.5);
}

TEST(ObsSummary, PercentileEdgeCases) {
  obs::Summary s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.percentile(99), 0.0);  // empty
  s.observe(3.0);
  EXPECT_EQ(s.percentile(0), 3.0);  // single sample
  EXPECT_EQ(s.percentile(99), 3.0);
  s.observe(1.0);
  s.observe(2.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

// ----------------------------------------------------------- TimeSeries

TEST(TimeSeriesTest, AppendsAndWindows) {
  TimeSeries ts(8);
  for (int i = 0; i < 5; ++i) ts.append(i, 10.0 * i);
  EXPECT_EQ(ts.size(), 5u);
  EXPECT_EQ(ts.total_appended(), 5);

  // Full window, oldest first.
  const auto all = ts.window(4.0, 0);
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all.front().time, 0.0);
  EXPECT_EQ(all.back().time, 4.0);

  // Narrow window keeps only the recent points.
  const auto recent = ts.window(4.0, 2.0);
  ASSERT_EQ(recent.size(), 3u);  // t in [2, 4]
  EXPECT_EQ(recent.front().time, 2.0);

  const WindowStats ws = ts.stats(4.0, 2.0);
  EXPECT_EQ(ws.count, 3);
  EXPECT_DOUBLE_EQ(ws.min, 20.0);
  EXPECT_DOUBLE_EQ(ws.max, 40.0);
  EXPECT_DOUBLE_EQ(ws.avg, 30.0);
  EXPECT_DOUBLE_EQ(ws.last, 40.0);
  EXPECT_DOUBLE_EQ(ws.first_time, 2.0);
  EXPECT_DOUBLE_EQ(ws.last_time, 4.0);
}

TEST(TimeSeriesTest, RingOverwritesOldest) {
  TimeSeries ts(4);
  for (int i = 0; i < 10; ++i) ts.append(i, static_cast<double>(i));
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_EQ(ts.total_appended(), 10);
  const auto pts = ts.window(9.0, 0);
  ASSERT_EQ(pts.size(), 4u);
  // Only the newest four survive, oldest first.
  EXPECT_EQ(pts[0].time, 6.0);
  EXPECT_EQ(pts[3].time, 9.0);
}

TEST(TimeSeriesTest, CapacityOneKeepsNewestPoint) {
  // Capacity is clamped to >= 1; a capacity-1 ring is a "last value"
  // cell whose stats are that single point.
  TimeSeries ts(1);
  ts.append(1.0, 10.0);
  ts.append(2.0, 20.0);
  EXPECT_EQ(ts.size(), 1u);
  const WindowStats ws = ts.stats(2.0, 0);
  EXPECT_EQ(ws.count, 1);
  EXPECT_DOUBLE_EQ(ws.min, 20.0);
  EXPECT_DOUBLE_EQ(ws.max, 20.0);
  EXPECT_DOUBLE_EQ(ws.p50, 20.0);
  EXPECT_DOUBLE_EQ(ws.p99, 20.0);
  EXPECT_DOUBLE_EQ(ws.last, 20.0);
}

TEST(TimeSeriesTest, EmptyWindowIsAllZero) {
  TimeSeries ts(8);
  const WindowStats empty = ts.stats(100.0, 10.0);
  EXPECT_EQ(empty.count, 0);
  EXPECT_EQ(empty.p99, 0.0);

  ts.append(1.0, 5.0);
  // A window that excludes every retained point is also empty.
  const WindowStats excluded = ts.stats(100.0, 10.0);
  EXPECT_EQ(excluded.count, 0);
  EXPECT_EQ(excluded.avg, 0.0);
}

TEST(TimeSeriesTest, WindowedPercentileMatchesStats) {
  // The store's windowed p99 must agree with common/stats percentile()
  // (and thus obs::Summary) over the same values — the "a p99 served at
  // /metrics/history matches a p99 in a report" contract.
  TimeSeries ts(128);
  obs::Summary summary;
  std::vector<double> values;
  double v = 1;
  for (int i = 0; i < 100; ++i) {
    v = std::fmod(v * 31 + 7, 97.0);  // deterministic scatter
    ts.append(i, v);
    summary.observe(v);
    values.push_back(v);
  }
  const WindowStats ws = ts.stats(99.0, 0);
  EXPECT_EQ(ws.count, 100);
  EXPECT_DOUBLE_EQ(ws.p50, percentile(values, 50));
  EXPECT_DOUBLE_EQ(ws.p90, percentile(values, 90));
  EXPECT_DOUBLE_EQ(ws.p99, percentile(values, 99));
  EXPECT_DOUBLE_EQ(ws.p99, summary.percentile(99));
}

// ------------------------------------------------------ TimeSeriesStore

TEST(TimeSeriesStoreTest, GaugeAndRateProbes) {
  TimeSeriesStore store(16);
  double gauge = 5;
  double counter = 0;
  store.add_probe("depth", ProbeKind::kGauge, [&] { return gauge; });
  store.add_probe("rate", ProbeKind::kRate, [&] { return counter; });

  store.sample(1.0);  // first sample seeds the rate probe, stores nothing
  EXPECT_EQ(store.stats("depth", 1.0, 0).count, 1);
  EXPECT_EQ(store.stats("rate", 1.0, 0).count, 0);

  gauge = 7;
  counter = 10;  // +10 over 1s
  store.sample(2.0);
  counter = 40;  // +30 over 1s
  store.sample(3.0);

  EXPECT_EQ(store.samples_taken(), 3u);
  EXPECT_DOUBLE_EQ(store.last_sample_time(), 3.0);
  const WindowStats depth = store.stats("depth", 3.0, 0);
  EXPECT_EQ(depth.count, 3);
  EXPECT_DOUBLE_EQ(depth.last, 7.0);
  const WindowStats rate = store.stats("rate", 3.0, 0);
  EXPECT_EQ(rate.count, 2);
  EXPECT_DOUBLE_EQ(rate.min, 10.0);
  EXPECT_DOUBLE_EQ(rate.max, 30.0);
}

TEST(TimeSeriesStoreTest, EventSeriesAndHistoryJson) {
  TimeSeriesStore store(16);
  store.append("round_latency_s", 1.0, 0.010);
  store.append("round_latency_s", 2.0, 0.020);
  ASSERT_TRUE(store.has_series("round_latency_s"));
  EXPECT_FALSE(store.has_series("nope"));

  const std::string dump = store.history_json(2.0, 0);
  obs::JsonValue root;
  std::string err;
  ASSERT_TRUE(obs::parse_json(dump, root, &err)) << err << "\n" << dump;
  EXPECT_DOUBLE_EQ(root.at("now").number, 2.0);
  const obs::JsonValue& series = root.at("series");
  ASSERT_TRUE(series.is_object());
  const obs::JsonValue& rl = series.at("round_latency_s");
  EXPECT_DOUBLE_EQ(rl.at("count").number, 2);
  EXPECT_DOUBLE_EQ(rl.at("max").number, 0.020);
  ASSERT_TRUE(rl.at("points").is_array());
  ASSERT_EQ(rl.at("points").array.size(), 2u);
  EXPECT_DOUBLE_EQ(rl.at("points").array[0].array[0].number, 1.0);

  // points=false drops the raw arrays but keeps the stats.
  const std::string lean = store.history_json(2.0, 0, /*include_points=*/false);
  obs::JsonValue lean_root;
  ASSERT_TRUE(obs::parse_json(lean, lean_root, &err)) << err;
  EXPECT_TRUE(
      lean_root.at("series").at("round_latency_s").at("points").array.empty() ||
      lean_root.at("series").at("round_latency_s").at("points").type ==
          obs::JsonValue::Type::kNull);
}

// ------------------------------------------------------------ SloTracker

TEST(SloTrackerTest, DisabledWhenNoThresholds) {
  SloConfig cfg;  // all thresholds < 0
  SloTracker tracker(cfg);
  EXPECT_FALSE(tracker.enabled());
  EXPECT_TRUE(tracker.ok());
  EXPECT_EQ(tracker.violations_total(), 0);
}

TEST(SloTrackerTest, EdgeTriggeredViolationsAndRecovery) {
  SloConfig cfg;
  cfg.window_s = 10;
  cfg.loop_stall_max_s = 1.0;  // max-reduce target
  SloTracker tracker(cfg);
  ASSERT_TRUE(tracker.enabled());

  // Clean samples: ok.
  tracker.observe("loop_stall_s", 1.0, 0.1);
  tracker.evaluate(1.0);
  EXPECT_TRUE(tracker.ok());
  EXPECT_EQ(tracker.violations_total(), 0);

  // Breach: one violation counted on the ok -> violating edge...
  tracker.observe("loop_stall_s", 2.0, 5.0);
  tracker.evaluate(2.0);
  EXPECT_FALSE(tracker.ok());
  EXPECT_EQ(tracker.violations_total(), 1);
  EXPECT_EQ(tracker.reason(), "loop_stall_s");

  // ...and not again while it stays violating.
  tracker.observe("loop_stall_s", 3.0, 6.0);
  tracker.evaluate(3.0);
  EXPECT_EQ(tracker.violations_total(), 1);

  // The breach ages out of the window: recovered, count preserved.
  tracker.evaluate(50.0);
  EXPECT_TRUE(tracker.ok());
  EXPECT_EQ(tracker.violations_total(), 1);

  // A fresh breach is a new edge.
  tracker.observe("loop_stall_s", 51.0, 9.0);
  tracker.evaluate(51.0);
  EXPECT_EQ(tracker.violations_total(), 2);
}

TEST(SloTrackerTest, BurnRateAndRegistryMirror) {
  obs::MetricsRegistry registry;
  SloConfig cfg;
  cfg.window_s = 60;
  cfg.queue_wait_p99_s = 10.0;  // p99-reduce target
  SloTracker tracker(cfg, &registry);

  for (int i = 0; i < 10; ++i) {
    tracker.observe("queue_wait_s", i, 5.0);
  }
  tracker.evaluate(10.0);
  auto targets = tracker.targets();
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_DOUBLE_EQ(targets[0].value, 5.0);
  EXPECT_DOUBLE_EQ(targets[0].burn_rate, 0.5);
  EXPECT_FALSE(targets[0].violating);

  tracker.observe("queue_wait_s", 11.0, 30.0);
  for (int i = 0; i < 5; ++i) {
    tracker.observe("queue_wait_s", 12.0 + i, 30.0);
  }
  tracker.evaluate(17.0);
  targets = tracker.targets();
  EXPECT_TRUE(targets[0].violating);
  EXPECT_GT(targets[0].burn_rate, 1.0);
  EXPECT_EQ(tracker.violations_total(), 1);

  // The registry mirror carries the same verdict.
  const obs::Labels labels{{"target", "queue_wait_s"}};
  EXPECT_DOUBLE_EQ(
      registry.counter("muri_slo_violations_total", "", labels).value(), 1.0);
  EXPECT_DOUBLE_EQ(
      registry.gauge("muri_slo_violating", "", labels).value(), 1.0);

  // json() is parseable and carries the target.
  obs::JsonValue root;
  std::string err;
  ASSERT_TRUE(obs::parse_json(tracker.json(), root, &err)) << err;
  EXPECT_TRUE(root.at("enabled").boolean);
  EXPECT_EQ(root.at("status").string, "violating");
  ASSERT_EQ(root.at("targets").array.size(), 1u);
  EXPECT_EQ(root.at("targets").array[0].at("name").string, "queue_wait_s");
}

TEST(SloTrackerTest, UnknownTargetObservationsAreIgnored) {
  SloConfig cfg;
  cfg.queue_wait_p99_s = 1.0;
  SloTracker tracker(cfg);
  tracker.observe("no_such_target", 1.0, 100.0);
  tracker.evaluate(1.0);
  EXPECT_TRUE(tracker.ok());
  EXPECT_EQ(tracker.violations_total(), 0);
}

}  // namespace
}  // namespace muri
