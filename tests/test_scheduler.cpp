#include <gtest/gtest.h>

#include <set>

#include "scheduler/baselines.h"
#include "scheduler/muri.h"

namespace muri {
namespace {

JobView view(JobId id, int gpus, Time submit, Duration remaining,
             double attained = 0, ModelKind model = ModelKind::kResNet18) {
  JobView v;
  v.id = id;
  v.num_gpus = gpus;
  v.submit_time = submit;
  v.remaining_time = remaining;
  v.attained_service = attained;
  v.measured = model_profile(model, gpus);
  return v;
}

SchedulerContext ctx(int gpus, bool known = false) {
  SchedulerContext c;
  c.total_gpus = gpus;
  c.gpus_per_machine = 8;
  c.durations_known = known;
  return c;
}

std::set<JobId> scheduled_ids(const std::vector<PlannedGroup>& plan) {
  std::set<JobId> ids;
  for (const auto& g : plan) {
    for (JobId id : g.members) ids.insert(id);
  }
  return ids;
}

int total_group_gpus(const std::vector<PlannedGroup>& plan) {
  int sum = 0;
  for (const auto& g : plan) sum += g.num_gpus;
  return sum;
}

TEST(Fifo, OrdersBySubmitTime) {
  std::vector<JobView> q = {view(0, 1, 100, 10), view(1, 1, 50, 10),
                            view(2, 1, 75, 10)};
  FifoScheduler fifo;
  const auto plan = fifo.schedule(q, ctx(2));
  // Only 2 GPUs: jobs 1 (t=50) and 2 (t=75) admitted.
  EXPECT_EQ(scheduled_ids(plan), (std::set<JobId>{1, 2}));
}

TEST(Srtf, PrefersShortRemaining) {
  std::vector<JobView> q = {view(0, 1, 0, 100), view(1, 1, 0, 5),
                            view(2, 1, 0, 50)};
  SrtfScheduler srtf;
  const auto plan = srtf.schedule(q, ctx(2));
  EXPECT_EQ(scheduled_ids(plan), (std::set<JobId>{1, 2}));
  EXPECT_TRUE(srtf.needs_durations());
}

TEST(Srsf, WeighsByGpuCount) {
  // Job 0: 2 GPUs × 10s = 20 service; job 1: 1 GPU × 15s = 15 service.
  std::vector<JobView> q = {view(0, 2, 0, 10), view(1, 1, 0, 15)};
  SrsfScheduler srsf;
  const auto plan = srsf.schedule(q, ctx(1));
  EXPECT_EQ(scheduled_ids(plan), (std::set<JobId>{1}));
}

TEST(Srsf, BackfillsPastBigJob) {
  // 3 free GPUs: an 8-GPU job cannot fit, but the later 1-GPU job can.
  std::vector<JobView> q = {view(0, 8, 0, 5), view(1, 1, 0, 100)};
  SrsfScheduler srsf;
  const auto plan = srsf.schedule(q, ctx(3));
  EXPECT_EQ(scheduled_ids(plan), (std::set<JobId>{1}));
}

TEST(Tiresias, DemotesLongRunningJobs) {
  // Job 0 has consumed 2h of GPU time (beyond the 1h threshold) so the
  // fresh job 1 outranks it despite arriving later.
  std::vector<JobView> q = {view(0, 1, 0, 0, 2 * 3600.0),
                            view(1, 1, 100, 0, 0.0)};
  TiresiasScheduler tiresias;
  const auto plan = tiresias.schedule(q, ctx(1));
  EXPECT_EQ(scheduled_ids(plan), (std::set<JobId>{1}));
}

TEST(Tiresias, FifoWithinSameQueue) {
  std::vector<JobView> q = {view(0, 1, 200, 0, 10.0),
                            view(1, 1, 100, 0, 20.0)};
  TiresiasScheduler tiresias;
  const auto plan = tiresias.schedule(q, ctx(1));
  // Both in the first queue (<1h attained): earlier submit wins.
  EXPECT_EQ(scheduled_ids(plan), (std::set<JobId>{1}));
}

TEST(Themis, PrefersStarvedJobs) {
  JobView starved = view(0, 1, 0, 0, 0.0);
  starved.age = 10000;  // waited long, got nothing
  JobView fed = view(1, 1, 0, 0, 9000.0);
  fed.age = 10000;
  ThemisScheduler themis;
  const auto plan = themis.schedule({fed, starved}, ctx(1));
  EXPECT_EQ(scheduled_ids(plan), (std::set<JobId>{0}));
}

TEST(PlacementOrder, DescendingGpuDemand) {
  std::vector<JobView> q = {view(0, 1, 0, 10), view(1, 8, 1, 10),
                            view(2, 4, 2, 10)};
  FifoScheduler fifo;
  const auto plan = fifo.schedule(q, ctx(16));
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].num_gpus, 8);
  EXPECT_EQ(plan[1].num_gpus, 4);
  EXPECT_EQ(plan[2].num_gpus, 1);
}

TEST(AntMan, NonPreemptiveFifoAdmission) {
  AntManScheduler antman;
  std::vector<JobView> q = {view(0, 1, 0, 10), view(1, 1, 5, 10)};
  auto plan = antman.schedule(q, ctx(1));
  EXPECT_EQ(scheduled_ids(plan), (std::set<JobId>{0, 1}));
  // Both run: one exclusive would exceed capacity, so job 1 shares.
  bool has_shared = false;
  for (const auto& g : plan) {
    if (g.mode == GroupMode::kUncoordinated) {
      has_shared = true;
      EXPECT_EQ(g.members.size(), 2u);
    }
  }
  EXPECT_TRUE(has_shared);
}

TEST(AntMan, SharingCapRespected) {
  AntManScheduler antman;
  std::vector<JobView> q = {view(0, 1, 0, 10), view(1, 1, 1, 10),
                            view(2, 1, 2, 10)};
  auto plan = antman.schedule(q, ctx(1));
  // Capacity 1 GPU, sharing cap 2: only two jobs admitted.
  EXPECT_EQ(scheduled_ids(plan).size(), 2u);
}

TEST(AntMan, KeepsRunningJobsAcrossRounds) {
  AntManScheduler antman;
  std::vector<JobView> q1 = {view(5, 1, 0, 10)};
  antman.schedule(q1, ctx(1));
  // A shorter job arrives; AntMan must not preempt job 5.
  std::vector<JobView> q2 = {view(5, 1, 0, 10), view(6, 1, 1, 1)};
  auto plan = antman.schedule(q2, ctx(1));
  std::set<JobId> ids = scheduled_ids(plan);
  EXPECT_TRUE(ids.count(5));
}

TEST(AntMan, ForgetsCompletedJobs) {
  AntManScheduler antman;
  antman.schedule({view(0, 1, 0, 10), view(1, 1, 1, 10)}, ctx(1));
  // Job 0 completes; job 1 should get (or keep) the GPU, new job admitted.
  auto plan = antman.schedule({view(1, 1, 1, 10), view(2, 1, 2, 10)}, ctx(1));
  EXPECT_EQ(scheduled_ids(plan), (std::set<JobId>{1, 2}));
}

// --- Muri scheduler ---

TEST(MultiRoundGrouping, PairsComplementaryJobs) {
  // Figure 4 scenario: A and C are CPU-heavy, B and D are GPU-heavy.
  std::vector<ResourceVector> profiles = {
      {0, 2, 1, 0},  // A
      {0, 1, 2, 0},  // B
      {0, 2, 1, 0},  // C
      {0, 1, 2, 0},  // D
  };
  const auto groups = multi_round_grouping(profiles, 2);
  ASSERT_EQ(groups.size(), 2u);
  for (const auto& g : groups) {
    ASSERT_EQ(g.size(), 2u);
    // Each group must mix one CPU-heavy with one GPU-heavy job.
    const bool first_cpu_heavy = (g[0] % 2 == 0);
    const bool second_cpu_heavy = (g[1] % 2 == 0);
    EXPECT_NE(first_cpu_heavy, second_cpu_heavy);
  }
}

TEST(MultiRoundGrouping, MaxGroupSizeRespected) {
  std::vector<ResourceVector> profiles(9, ResourceVector{1, 1, 1, 1});
  for (int max_size = 1; max_size <= 4; ++max_size) {
    const auto groups = multi_round_grouping(profiles, max_size);
    std::set<int> seen;
    for (const auto& g : groups) {
      EXPECT_LE(static_cast<int>(g.size()), max_size);
      for (int idx : g) {
        EXPECT_TRUE(seen.insert(idx).second) << "duplicate member";
      }
    }
    EXPECT_EQ(seen.size(), profiles.size()) << "lost a job";
  }
}

TEST(MultiRoundGrouping, FourJobsFormOneGroupOfFour) {
  std::vector<ResourceVector> profiles = {
      {3, 1, 1, 1}, {1, 3, 1, 1}, {1, 1, 3, 1}, {1, 1, 1, 3}};
  const auto groups = multi_round_grouping(profiles, 4);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 4u);
}

TEST(MultiRoundGrouping, EmptyAndSingleton) {
  EXPECT_TRUE(multi_round_grouping({}, 4).empty());
  const auto one = multi_round_grouping({ResourceVector{1, 1, 1, 1}}, 4);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], std::vector<int>{0});
}

TEST(Muri, FallsBackToExclusiveWhenUncontended) {
  MuriOptions opt;
  opt.durations_known = true;
  MuriScheduler muri(opt);
  std::vector<JobView> q = {view(0, 1, 0, 10), view(1, 1, 0, 20)};
  const auto plan = muri.schedule(q, ctx(64, true));
  ASSERT_EQ(plan.size(), 2u);
  for (const auto& g : plan) {
    EXPECT_EQ(g.mode, GroupMode::kExclusive);
    EXPECT_EQ(g.members.size(), 1u);
  }
}

TEST(Muri, GroupsUnderContention) {
  MuriOptions opt;
  opt.durations_known = true;
  MuriScheduler muri(opt);
  // 8 single-GPU jobs, 2 GPUs: grouping is the only way to run many.
  std::vector<JobView> q;
  const ModelKind models[4] = {ModelKind::kShuffleNet, ModelKind::kA2c,
                               ModelKind::kGpt2, ModelKind::kVgg16};
  for (int i = 0; i < 8; ++i) {
    q.push_back(view(i, 1, 0, 100, 0, models[i % 4]));
  }
  const auto plan = muri.schedule(q, ctx(2, true));
  bool has_interleaved = false;
  for (const auto& g : plan) {
    if (g.mode == GroupMode::kInterleaved) {
      has_interleaved = true;
      EXPECT_GE(g.members.size(), 2u);
      EXPECT_LE(g.members.size(), 4u);
      EXPECT_EQ(g.offsets.size(), g.members.size());
    }
  }
  EXPECT_TRUE(has_interleaved);
  EXPECT_GT(muri.matchings_run(), 0);
}

TEST(Muri, BucketsByGpuDemand) {
  MuriOptions opt;
  opt.durations_known = true;
  MuriScheduler muri(opt);
  std::vector<JobView> q;
  for (int i = 0; i < 4; ++i) q.push_back(view(i, 1, 0, 100));
  for (int i = 4; i < 8; ++i) q.push_back(view(i, 2, 0, 100));
  const auto plan = muri.schedule(q, ctx(2, true));
  for (const auto& g : plan) {
    if (g.members.size() < 2) continue;
    // All members of a group share one GPU demand.
    std::set<int> demands;
    for (JobId id : g.members) {
      demands.insert(id < 4 ? 1 : 2);
    }
    EXPECT_EQ(demands.size(), 1u) << "mixed-size group with bucketing on";
  }
}

TEST(Muri, NoBlossomPacksByPriority) {
  MuriOptions opt;
  opt.durations_known = true;
  opt.use_blossom = false;
  opt.max_group_size = 2;
  MuriScheduler muri(opt);
  // Priorities (remaining): j0 < j1 < j2 < j3; packing pairs (0,1), (2,3).
  std::vector<JobView> q = {view(0, 1, 0, 10), view(1, 1, 0, 20),
                            view(2, 1, 0, 30), view(3, 1, 0, 40)};
  const auto plan = muri.schedule(q, ctx(1, true));
  ASSERT_GE(plan.size(), 1u);
  // The highest priority group must be {0,1}.
  std::set<JobId> first(plan[0].members.begin(), plan[0].members.end());
  EXPECT_EQ(first, (std::set<JobId>{0, 1}));
  EXPECT_EQ(muri.matchings_run(), 0);
}

TEST(Muri, WorstOrderingProducesLongerPeriodPlan) {
  MuriOptions best_opt;
  best_opt.durations_known = true;
  MuriOptions worst_opt = best_opt;
  worst_opt.ordering = OrderingPolicy::kWorst;
  MuriScheduler best(best_opt), worst(worst_opt);
  EXPECT_NE(best.name(), worst.name());
}

TEST(Muri, NamesEncodeConfiguration) {
  MuriOptions opt;
  opt.durations_known = true;
  EXPECT_EQ(MuriScheduler(opt).name(), "Muri-S");
  opt.durations_known = false;
  EXPECT_EQ(MuriScheduler(opt).name(), "Muri-L");
  opt.max_group_size = 2;
  EXPECT_EQ(MuriScheduler(opt).name(), "Muri-L-2");
  opt.max_group_size = 4;
  opt.use_blossom = false;
  EXPECT_EQ(MuriScheduler(opt).name(), "Muri-L-noblossom");
}

TEST(Muri, GroupGpuBudgetNeverExceedsClusterWhenPlacedGreedily) {
  MuriOptions opt;
  opt.durations_known = true;
  MuriScheduler muri(opt);
  std::vector<JobView> q;
  for (int i = 0; i < 40; ++i) {
    q.push_back(view(i, 1, 0, 100 + i, 0,
                     kAllModels[static_cast<size_t>(i) % kNumModels]));
  }
  const auto plan = muri.schedule(q, ctx(4, true));
  // The plan may offer more groups than fit; but every job appears at
  // most once.
  std::set<JobId> seen;
  for (const auto& g : plan) {
    for (JobId id : g.members) {
      EXPECT_TRUE(seen.insert(id).second);
    }
  }
  (void)total_group_gpus(plan);
}

}  // namespace
}  // namespace muri
