#include <gtest/gtest.h>

#include "interleave/efficiency.h"
#include "common/rng.h"

namespace muri {
namespace {

// Profiles from Figure 4 (two resource types: CPU and GPU), expressed in
// our 4-resource vectors with storage/network zero.
// Job A: 2 CPU, 1 GPU. Job B: 1 CPU, 2 GPU. Job C: 2 CPU, 1 GPU (same as
// A). Job D: 1 CPU, 2 GPU (same as B).
ResourceVector cpu_gpu(Duration cpu, Duration gpu) {
  return {0, cpu, gpu, 0};
}

TEST(GroupPeriod, SingleJobIsSumOfStages) {
  const auto plan = plan_interleave({cpu_gpu(2, 1)});
  EXPECT_DOUBLE_EQ(plan.period, 3.0);
}

TEST(GroupPeriod, PerfectOverlapPaperFigure4GroupAB) {
  // A(2 CPU,1 GPU) with B(1 CPU,2 GPU): period 3, both resources always
  // busy, γ = 1 (§4.1 computes exactly this).
  const auto plan = plan_interleave({cpu_gpu(2, 1), cpu_gpu(1, 2)});
  EXPECT_DOUBLE_EQ(plan.period, 3.0);
  EXPECT_DOUBLE_EQ(plan.efficiency, 1.0);
}

TEST(GroupPeriod, ImperfectOverlapPaperFigure4GroupAC) {
  // A(2 CPU,1 GPU) with C(2 CPU,1 GPU): period 4, CPU idle 0, GPU idle
  // 0.5, γ = 1 - (0 + 0.5)/2 = 0.75 (the paper's worked example).
  const auto plan = plan_interleave({cpu_gpu(2, 1), cpu_gpu(2, 1)});
  EXPECT_DOUBLE_EQ(plan.period, 4.0);
  EXPECT_DOUBLE_EQ(plan.efficiency, 0.75);
}

TEST(PairwiseEfficiency, MatchesPlanInterleave) {
  EXPECT_DOUBLE_EQ(pairwise_efficiency(cpu_gpu(2, 1), cpu_gpu(1, 2)), 1.0);
  EXPECT_DOUBLE_EQ(pairwise_efficiency(cpu_gpu(2, 1), cpu_gpu(2, 1)), 0.75);
}

TEST(Ordering, BestBeatsWorstPaperFigure6) {
  // Figure 6: job A spends 2 units on CPU, 1 on the rest; job B spends 2
  // on GPU, 1 on the rest. The best ordering overlaps perfectly (T = 5);
  // a bad ordering wastes time (T > 5).
  const ResourceVector a = {1, 2, 1, 1};  // storage, cpu, gpu, network
  const ResourceVector b = {1, 1, 2, 1};
  const auto best = plan_interleave({a, b}, OrderingPolicy::kBest);
  const auto worst = plan_interleave({a, b}, OrderingPolicy::kWorst);
  EXPECT_DOUBLE_EQ(best.period, 5.0);
  EXPECT_GT(worst.period, best.period);
  EXPECT_LT(worst.efficiency, best.efficiency);
}

TEST(Ordering, OffsetsAreDistinctAndAnchored) {
  const ResourceVector a = {1, 2, 1, 1};
  const ResourceVector b = {1, 1, 2, 1};
  const ResourceVector c = {2, 1, 1, 1};
  const auto plan = plan_interleave({a, b, c});
  ASSERT_EQ(plan.offsets.size(), 3u);
  EXPECT_EQ(plan.offsets[0], 0);
  EXPECT_NE(plan.offsets[1], plan.offsets[2]);
  EXPECT_NE(plan.offsets[0], plan.offsets[1]);
  EXPECT_NE(plan.offsets[0], plan.offsets[2]);
}

TEST(Efficiency, FourComplementaryJobsReachGammaOne) {
  // One job per bottleneck, complementary shapes (the Figure 1 scenario):
  // the best rotation aligns every job's heavy stage into the same phase
  // (job i at offset i), giving T = 3+1+1+1 = 6 with every resource busy
  // 3+1+1+1 = 6 of 6 → γ = 1.
  std::vector<ResourceVector> jobs = {
      {3, 1, 1, 1}, {1, 3, 1, 1}, {1, 1, 3, 1}, {1, 1, 1, 3}};
  const auto plan = plan_interleave(jobs);
  EXPECT_DOUBLE_EQ(plan.period, 6.0);
  EXPECT_DOUBLE_EQ(plan.efficiency, 1.0);
}

TEST(Efficiency, IdenticalRotationJobsPerfectlyInterleave) {
  // Four jobs that each use every resource 1 unit: period 4, every
  // resource busy 4/4 → γ = 1.
  std::vector<ResourceVector> jobs(4, ResourceVector{1, 1, 1, 1});
  const auto plan = plan_interleave(jobs);
  EXPECT_DOUBLE_EQ(plan.period, 4.0);
  EXPECT_DOUBLE_EQ(plan.efficiency, 1.0);
}

TEST(Efficiency, InactiveResourcesExcludedFromAverage) {
  // Two-resource jobs must be scored over two resources (Eq. 2), not
  // dragged down by untouched storage/network.
  const auto gamma = pairwise_efficiency(cpu_gpu(1, 1), cpu_gpu(1, 1));
  EXPECT_DOUBLE_EQ(gamma, 1.0);
}

TEST(Efficiency, GammaBounds) {
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const int p = 1 + static_cast<int>(rng.uniform_int(0, 3));
    std::vector<ResourceVector> jobs;
    for (int i = 0; i < p; ++i) {
      ResourceVector v{};
      for (int j = 0; j < kNumResources; ++j) {
        v[static_cast<size_t>(j)] = rng.bernoulli(0.8) ? rng.uniform(0, 5) : 0;
      }
      jobs.push_back(v);
    }
    const auto plan = plan_interleave(jobs);
    EXPECT_GE(plan.efficiency, 0.0);
    EXPECT_LE(plan.efficiency, 1.0 + 1e-12);
    EXPECT_GE(plan.period, 0.0);
  }
}

TEST(Efficiency, PeriodAtLeastEveryJobsIterationTime) {
  // The rotation period can never undercut any member's solo iteration
  // time (each member runs each of its stages exactly once per period).
  Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<ResourceVector> jobs;
    const int p = 2 + static_cast<int>(rng.uniform_int(0, 2));
    for (int i = 0; i < p; ++i) {
      ResourceVector v{};
      for (int j = 0; j < kNumResources; ++j) {
        v[static_cast<size_t>(j)] = rng.uniform(0, 3);
      }
      jobs.push_back(v);
    }
    const auto plan = plan_interleave(jobs);
    for (const auto& v : jobs) {
      EXPECT_GE(plan.period + 1e-9, total(v));
    }
  }
}

TEST(Efficiency, BestOrderingNeverWorseThanWorst) {
  Rng rng(123);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<ResourceVector> jobs;
    const int p = 2 + static_cast<int>(rng.uniform_int(0, 2));
    for (int i = 0; i < p; ++i) {
      ResourceVector v{};
      for (int j = 0; j < kNumResources; ++j) {
        v[static_cast<size_t>(j)] = rng.uniform(0, 3);
      }
      jobs.push_back(v);
    }
    const auto best = plan_interleave(jobs, OrderingPolicy::kBest);
    const auto worst = plan_interleave(jobs, OrderingPolicy::kWorst);
    EXPECT_LE(best.period, worst.period + 1e-9);
    EXPECT_GE(best.efficiency + 1e-9, worst.efficiency);
  }
}

TEST(Efficiency, PeriodInvariantUnderCommonRotation) {
  // Shifting every offset by the same amount only rotates phases.
  const std::vector<ResourceVector> jobs = {{2, 1, 0.5, 1}, {1, 0.3, 2, 1}};
  const Duration t01 = group_period(jobs, {0, 1});
  const Duration t12 = group_period(jobs, {1, 2});
  const Duration t23 = group_period(jobs, {2, 3});
  const Duration t30 = group_period(jobs, {3, 0});
  EXPECT_DOUBLE_EQ(t01, t12);
  EXPECT_DOUBLE_EQ(t12, t23);
  EXPECT_DOUBLE_EQ(t23, t30);
}

TEST(MergeProfiles, SumsElementwise) {
  const auto merged = merge_profiles({{1, 2, 3, 4}, {4, 3, 2, 1}});
  for (int j = 0; j < kNumResources; ++j) {
    EXPECT_DOUBLE_EQ(merged[static_cast<size_t>(j)], 5.0);
  }
}

TEST(MergeProfiles, EmptyIsZero) {
  const auto merged = merge_profiles({});
  EXPECT_DOUBLE_EQ(total(merged), 0.0);
}

TEST(Efficiency, FusedExampleFromSection41) {
  // §4.1 "Fusing multiple jobs": E = 4 CPU then 2 GPU, F = 4 GPU then
  // 2 CPU: interleaving efficiency is 1.
  const auto gamma = pairwise_efficiency(cpu_gpu(4, 2), cpu_gpu(2, 4));
  EXPECT_DOUBLE_EQ(gamma, 1.0);
}

TEST(Efficiency, EmptyGroup) {
  const auto plan = plan_interleave({});
  EXPECT_DOUBLE_EQ(plan.period, 0.0);
  EXPECT_DOUBLE_EQ(plan.efficiency, 0.0);
  EXPECT_TRUE(plan.offsets.empty());
}

}  // namespace
}  // namespace muri
