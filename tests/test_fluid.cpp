#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/fluid.h"

namespace muri {
namespace {

FluidOptions no_contention(double inflation = 1.0) {
  FluidOptions opt;
  opt.inflation = inflation;
  opt.contention_penalty = 0.0;
  return opt;
}

TEST(Fluid, SingleJobRunsAtSoloRate) {
  const std::vector<ResourceVector> jobs = {{1, 1, 1, 1}};
  const auto x = max_min_fair_rates(jobs, no_contention());
  ASSERT_EQ(x.size(), 1u);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
}

TEST(Fluid, SoloJobUnaffectedByContentionModel) {
  // One job is never "contended" (penalty needs >= 2 significant users).
  const std::vector<ResourceVector> jobs = {{0, 0, 1, 0}};
  const auto x = max_min_fair_rates(jobs, FluidOptions{});
  EXPECT_DOUBLE_EQ(x[0], 1.0);
}

TEST(Fluid, EmptyGroup) {
  EXPECT_TRUE(
      max_min_fair_rates(std::vector<ResourceVector>{}, 1.0).empty());
}

TEST(Fluid, ZeroProfileGetsFullRate) {
  const std::vector<ResourceVector> jobs = {ResourceVector{}};
  const auto x = max_min_fair_rates(jobs, 1.5);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
}

TEST(Fluid, TwoIdenticalSingleResourceJobsSplitEvenly) {
  // Two jobs 100% GPU, no contention penalty: each gets half.
  const std::vector<ResourceVector> jobs = {{0, 0, 1, 0}, {0, 0, 1, 0}};
  const auto x = max_min_fair_rates(jobs, no_contention());
  EXPECT_NEAR(x[0], 0.5, 1e-9);
  EXPECT_NEAR(x[1], 0.5, 1e-9);
}

TEST(Fluid, ContentionPenaltySlowsSameBottleneckPair) {
  // With the default 0.10 contention penalty, two GPU-saturated jobs each
  // run at 0.5/1.10 — the §2.1 "sharing can degrade" pathology.
  const std::vector<ResourceVector> jobs = {{0, 0, 1, 0}, {0, 0, 1, 0}};
  const auto x = max_min_fair_rates(jobs, FluidOptions{});
  EXPECT_NEAR(x[0], 0.5 / 1.10, 1e-9);
  EXPECT_NEAR(x[1], 0.5 / 1.10, 1e-9);
}

TEST(Fluid, ComplementaryJobsEscapeContentionPenalty) {
  // Disjoint bottlenecks: one significant user per resource, so no
  // contention inflation at all.
  const std::vector<ResourceVector> jobs = {{1, 1, 0, 0}, {0, 0, 1, 1}};
  const auto x = max_min_fair_rates(jobs, FluidOptions{});
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
}

TEST(Fluid, LightUserBelowThresholdDoesNotTriggerContention) {
  // Job 1's GPU duty is 10% (< 0.25 threshold): job 0 keeps the full
  // channel uninflated; both jobs are capacity-limited only.
  const std::vector<ResourceVector> jobs = {{0, 0, 1, 0}, {0, 0.9, 0.1, 0}};
  const auto x = max_min_fair_rates(jobs, FluidOptions{});
  // GPU load: x0*1 + x1*0.1 <= 1; common growth: x*(1.1)=1 -> both 0.909.
  EXPECT_NEAR(x[0], 1.0 / 1.1, 1e-9);
  EXPECT_NEAR(x[1], 1.0 / 1.1, 1e-9);
}

TEST(Fluid, InflationSlowsContendedJobs) {
  const std::vector<ResourceVector> jobs = {{0, 0, 1, 0}, {0, 0, 1, 0}};
  const auto x = max_min_fair_rates(jobs, no_contention(1.4));
  EXPECT_NEAR(x[0], 0.5 / 1.4, 1e-9);
}

TEST(Fluid, ComplementaryJobsKeepSoloRates) {
  const std::vector<ResourceVector> jobs = {{1, 1, 0, 0}, {0, 0, 1, 1}};
  const auto x = max_min_fair_rates(jobs, no_contention());
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
}

TEST(Fluid, MaxMinProtectsLightJobs) {
  // Job 0 uses GPU lightly (20% duty), jobs 1-2 are GPU-saturated; no
  // contention penalty isolates the max-min arithmetic.
  const std::vector<ResourceVector> jobs = {
      {4, 0, 1, 0}, {0, 0, 1, 0}, {0, 0, 1, 0}};
  const auto x = max_min_fair_rates(jobs, no_contention());
  // Common growth until GPU drains: x*(0.2 + 1 + 1) = 1 -> x = 1/2.2.
  EXPECT_NEAR(x[0], 1.0 / 2.2, 1e-9);
  EXPECT_NEAR(x[1], 1.0 / 2.2, 1e-9);
  EXPECT_NEAR(x[2], 1.0 / 2.2, 1e-9);
}

TEST(Fluid, NonContendingJobKeepsGrowingAfterBottleneckFreeze) {
  // Job 0 is storage-only; jobs 1-2 saturate the GPU. Job 0 reaches its
  // solo rate even though the GPU drains.
  const std::vector<ResourceVector> jobs = {
      {1, 0, 0, 0}, {0, 0, 1, 0}, {0, 0, 1, 0}};
  const auto x = max_min_fair_rates(jobs, no_contention());
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_NEAR(x[1], 0.5, 1e-9);
}

TEST(Fluid, RatesAreFeasible) {
  // Property: the returned rates never oversubscribe any resource
  // (checked without the contention term, which only tightens demands).
  Rng rng(5150);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t p = 1 + static_cast<size_t>(rng.uniform_int(0, 3));
    std::vector<ResourceVector> jobs(p);
    for (auto& prof : jobs) {
      for (int j = 0; j < kNumResources; ++j) {
        prof[static_cast<size_t>(j)] =
            rng.bernoulli(0.7) ? rng.uniform(0.0, 2.0) : 0.0;
      }
    }
    const double inflation = rng.uniform(1.0, 1.5);
    const auto x = max_min_fair_rates(jobs, no_contention(inflation));
    for (int j = 0; j < kNumResources; ++j) {
      double load = 0;
      for (size_t i = 0; i < p; ++i) {
        const Duration iter = total(jobs[i]);
        if (iter <= 0) continue;
        load += x[i] * inflation * jobs[i][static_cast<size_t>(j)] / iter;
      }
      EXPECT_LE(load, 1.0 + 1e-6);
    }
    for (double xi : x) {
      EXPECT_GE(xi, 0.0);
      EXPECT_LE(xi, 1.0);
    }
  }
}

TEST(Fluid, ContentionOnlyEverSlowsDown) {
  Rng rng(867);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<ResourceVector> jobs(3);
    for (auto& prof : jobs) {
      for (int j = 0; j < kNumResources; ++j) {
        prof[static_cast<size_t>(j)] = rng.uniform(0.0, 1.0);
      }
    }
    const auto with = max_min_fair_rates(jobs, FluidOptions{});
    const auto without = max_min_fair_rates(jobs, no_contention());
    for (size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_LE(with[i], without[i] + 1e-9);
    }
  }
}

TEST(Fluid, MonotoneInInflation) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<ResourceVector> jobs(3);
    for (auto& prof : jobs) {
      for (int j = 0; j < kNumResources; ++j) {
        prof[static_cast<size_t>(j)] = rng.uniform(0.0, 1.0);
      }
    }
    const auto lo = max_min_fair_rates(jobs, no_contention(1.0));
    const auto hi = max_min_fair_rates(jobs, no_contention(1.5));
    for (size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_LE(hi[i], lo[i] + 1e-9);
    }
  }
}

TEST(Fluid, Table2ShapeComplementaryFourJobGroup) {
  // The four Table 2 models grouped on one GPU set: total normalized
  // throughput should land near the paper's ~2.0 (between 1.5 and 3.0)
  // with default modeling and the 4-job α inflation.
  const std::vector<ResourceVector> jobs = {
      {0.154, 0.046, 0.015, 0.004},    // shufflenet-like
      {0.0, 0.239, 0.010, 0.001},      // a2c-like
      {0.001, 0.001, 0.675, 0.223},    // gpt2-like
      {0.076, 0.018, 0.101, 0.166},    // vgg16-like
  };
  FluidOptions opt;
  opt.inflation = 1.0 + 0.05 * 3;
  const auto x = max_min_fair_rates(jobs, opt);
  const double total_normalized = x[0] + x[1] + x[2] + x[3];
  EXPECT_GT(total_normalized, 1.5);
  EXPECT_LT(total_normalized, 3.0);
}

TEST(Fluid, OneJobTypeGroupGainsLittle) {
  // Four storage-bound jobs (Fig. 13's one-type case): aggregate
  // throughput stays near 1x of a single exclusive job.
  const std::vector<ResourceVector> jobs(4,
                                         ResourceVector{0.7, 0.2, 0.07, 0.03});
  FluidOptions opt;
  opt.inflation = 1.0 + 0.05 * 3;
  const auto x = max_min_fair_rates(jobs, opt);
  const double total = x[0] + x[1] + x[2] + x[3];
  EXPECT_LT(total, 1.5);
  EXPECT_GT(total, 0.6);
}

}  // namespace
}  // namespace muri
