// Cross-module integration and property tests: every scheduler, run
// end-to-end through the simulator on shared workloads, must satisfy the
// same global invariants.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "scheduler/baselines.h"
#include "scheduler/gittins.h"
#include "scheduler/muri.h"
#include "sim/simulator.h"

namespace muri {
namespace {

std::unique_ptr<Scheduler> make_scheduler(const std::string& name) {
  if (name == "FIFO") return std::make_unique<FifoScheduler>();
  if (name == "SRTF") return std::make_unique<SrtfScheduler>();
  if (name == "SRSF") return std::make_unique<SrsfScheduler>();
  if (name == "Tiresias") return std::make_unique<TiresiasScheduler>();
  if (name == "Themis") return std::make_unique<ThemisScheduler>();
  if (name == "AntMan") return std::make_unique<AntManScheduler>();
  if (name == "Gittins") return std::make_unique<GittinsScheduler>();
  MuriOptions opt;
  opt.durations_known = name == "Muri-S";
  return std::make_unique<MuriScheduler>(opt);
}

Trace small_trace(std::uint64_t seed, int jobs) {
  PhillyTraceOptions opt;
  opt.name = "integration";
  opt.num_jobs = jobs;
  opt.seed = seed;
  opt.jobs_per_hour = 120;
  opt.duration_log_mean = 6.0;
  opt.duration_log_sigma = 1.0;
  opt.max_duration = 2 * 3600;
  // Keep jobs placeable on the small test cluster.
  opt.gpu_count_weights = {0.7, 0.2, 0.1, 0.0, 0.0, 0.0};
  return generate_philly_like(opt);
}

class SchedulerInvariantTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedulerInvariantTest, EveryJobCompletesExactlyOnce) {
  const Trace trace = small_trace(11, 60);
  auto scheduler = make_scheduler(GetParam());
  SimOptions opt;
  opt.cluster.num_machines = 2;
  opt.cluster.gpus_per_machine = 4;
  opt.schedule_interval = 120;
  opt.durations_known = scheduler->needs_durations();
  const SimResult r = run_simulation(trace, *scheduler, opt);
  EXPECT_EQ(r.finished_jobs, 60) << GetParam();
  EXPECT_EQ(r.unfinished_jobs, 0);
  EXPECT_EQ(r.jcts.size(), 60u);
}

TEST_P(SchedulerInvariantTest, JctAtLeastComputeTime) {
  // No job can finish faster than its pure solo compute time (work is
  // never created from nothing, whatever the sharing model).
  const Trace trace = small_trace(13, 40);
  std::vector<double> min_jct;
  for (const Job& j : trace.jobs) min_jct.push_back(j.solo_duration());

  auto scheduler = make_scheduler(GetParam());
  SimOptions opt;
  opt.cluster.num_machines = 2;
  opt.cluster.gpus_per_machine = 4;
  opt.schedule_interval = 120;
  opt.durations_known = scheduler->needs_durations();
  const SimResult r = run_simulation(trace, *scheduler, opt);
  ASSERT_EQ(r.finished_jobs, 40) << GetParam();
  // JCTs are recorded in completion order; compare against the weakest
  // bound (the smallest solo duration) per entry, and the sum bound
  // overall: total JCT >= total solo time.
  double total_solo = 0, total_jct = 0;
  for (double s : min_jct) total_solo += s;
  for (double j : r.jcts) total_jct += j;
  EXPECT_GE(total_jct, total_solo * 0.999);
}

TEST_P(SchedulerInvariantTest, MakespanBoundedBySerialExecution) {
  // Makespan can never exceed fully serial execution plus per-job restart
  // overhead and round-granularity slack (a gross sanity bound).
  const Trace trace = small_trace(17, 30);
  auto scheduler = make_scheduler(GetParam());
  SimOptions opt;
  opt.cluster.num_machines = 2;
  opt.cluster.gpus_per_machine = 4;
  opt.schedule_interval = 120;
  opt.durations_known = scheduler->needs_durations();
  const SimResult r = run_simulation(trace, *scheduler, opt);
  double serial = 0;
  for (const Job& j : trace.jobs) serial += j.solo_duration();
  // Uncoordinated sharing can slow pairs below serial efficiency, so
  // allow a generous factor.
  EXPECT_LT(r.makespan,
            2.0 * serial + trace.jobs.size() * (opt.restart_penalty + 120))
      << GetParam();
}

TEST_P(SchedulerInvariantTest, DeterministicAcrossRuns) {
  const Trace trace = small_trace(19, 50);
  SimOptions opt;
  opt.cluster.num_machines = 2;
  opt.cluster.gpus_per_machine = 4;
  opt.schedule_interval = 120;

  auto s1 = make_scheduler(GetParam());
  opt.durations_known = s1->needs_durations();
  const SimResult a = run_simulation(trace, *s1, opt);
  auto s2 = make_scheduler(GetParam());
  const SimResult b = run_simulation(trace, *s2, opt);
  EXPECT_DOUBLE_EQ(a.avg_jct, b.avg_jct) << GetParam();
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.avg_queue_length, b.avg_queue_length);
}

TEST_P(SchedulerInvariantTest, SurvivesFaultInjection) {
  const Trace trace = small_trace(23, 40);
  auto scheduler = make_scheduler(GetParam());
  SimOptions opt;
  opt.cluster.num_machines = 2;
  opt.cluster.gpus_per_machine = 4;
  opt.schedule_interval = 120;
  opt.durations_known = scheduler->needs_durations();
  opt.mtbf_hours = 0.5;  // aggressive: a running job fails every ~30 min
  const SimResult r = run_simulation(trace, *scheduler, opt);
  EXPECT_EQ(r.finished_jobs, 40) << GetParam();
  EXPECT_GT(r.faults, 0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerInvariantTest,
                         ::testing::Values("FIFO", "SRTF", "SRSF", "Tiresias",
                                           "Themis", "AntMan", "Gittins",
                                           "Muri-S", "Muri-L"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(FaultInjection, DisabledByDefault) {
  const Trace trace = small_trace(29, 20);
  FifoScheduler fifo;
  SimOptions opt;
  opt.cluster.num_machines = 1;
  opt.cluster.gpus_per_machine = 4;
  const SimResult r = run_simulation(trace, fifo, opt);
  EXPECT_EQ(r.faults, 0);
}

TEST(FaultInjection, FaultsSlowTheWorkloadDown) {
  const Trace trace = small_trace(31, 30);
  SimOptions opt;
  opt.cluster.num_machines = 1;
  opt.cluster.gpus_per_machine = 4;
  opt.schedule_interval = 120;

  FifoScheduler clean;
  const SimResult healthy = run_simulation(trace, clean, opt);
  FifoScheduler faulty;
  opt.mtbf_hours = 0.25;
  const SimResult injected = run_simulation(trace, faulty, opt);
  EXPECT_GT(injected.faults, 10);
  EXPECT_GT(injected.makespan, healthy.makespan);
}

TEST(FaultInjection, DeterministicGivenSeed) {
  const Trace trace = small_trace(37, 25);
  SimOptions opt;
  opt.cluster.num_machines = 1;
  opt.cluster.gpus_per_machine = 4;
  opt.mtbf_hours = 0.5;
  FifoScheduler a, b;
  const SimResult ra = run_simulation(trace, a, opt);
  const SimResult rb = run_simulation(trace, b, opt);
  EXPECT_EQ(ra.faults, rb.faults);
  EXPECT_DOUBLE_EQ(ra.makespan, rb.makespan);
}

TEST(Integration, MuriBeatsFifoUnderContention) {
  // The headline property on a contended mixed workload.
  const Trace trace = small_trace(41, 80);
  SimOptions opt;
  opt.cluster.num_machines = 1;
  opt.cluster.gpus_per_machine = 4;
  opt.schedule_interval = 120;

  FifoScheduler fifo;
  const SimResult rf = run_simulation(trace, fifo, opt);
  MuriScheduler muri{MuriOptions{}};
  const SimResult rm = run_simulation(trace, muri, opt);
  EXPECT_LT(rm.makespan, rf.makespan);
  EXPECT_LT(rm.avg_jct, rf.avg_jct);
}

TEST(Integration, ProfilerNoiseFlowsThroughToScheduling) {
  // With enormous noise and no cache, Muri's plans change; the workload
  // still completes.
  const Trace trace = small_trace(43, 40);
  SimOptions opt;
  opt.cluster.num_machines = 1;
  opt.cluster.gpus_per_machine = 4;
  opt.schedule_interval = 120;
  opt.profiler.noise = 0.9;
  opt.profiler.cache_by_model = false;
  MuriScheduler muri{MuriOptions{}};
  const SimResult r = run_simulation(trace, muri, opt);
  EXPECT_EQ(r.finished_jobs, 40);
  EXPECT_GT(r.profiler_sessions, 8);  // no cache: one session per job
}

}  // namespace
}  // namespace muri
