#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "job/job.h"
#include "job/model.h"
#include "job/trace.h"

namespace muri {
namespace {

TEST(ModelZoo, NamesRoundTrip) {
  for (ModelKind m : kAllModels) {
    ModelKind parsed{};
    ASSERT_TRUE(parse_model(to_string(m), parsed));
    EXPECT_EQ(parsed, m);
  }
  ModelKind m{};
  EXPECT_FALSE(parse_model("alexnet", m));
}

TEST(ModelZoo, BottlenecksMatchTable3) {
  // Table 3: ResNet18/ShuffleNet storage, VGG16/19 network, Bert/GPT-2
  // GPU, A2C/DQN CPU.
  EXPECT_EQ(model_spec(ModelKind::kResNet18).bottleneck, Resource::kStorage);
  EXPECT_EQ(model_spec(ModelKind::kShuffleNet).bottleneck, Resource::kStorage);
  EXPECT_EQ(model_spec(ModelKind::kVgg16).bottleneck, Resource::kNetwork);
  EXPECT_EQ(model_spec(ModelKind::kVgg19).bottleneck, Resource::kNetwork);
  EXPECT_EQ(model_spec(ModelKind::kBert).bottleneck, Resource::kGpu);
  EXPECT_EQ(model_spec(ModelKind::kGpt2).bottleneck, Resource::kGpu);
  EXPECT_EQ(model_spec(ModelKind::kA2c).bottleneck, Resource::kCpu);
  EXPECT_EQ(model_spec(ModelKind::kDqn).bottleneck, Resource::kCpu);
}

TEST(ModelZoo, ProfileBottleneckAgreesWithSpec) {
  for (ModelKind m : kAllModels) {
    const IterationProfile p = model_profile(m, 1);
    EXPECT_EQ(p.bottleneck_resource(), model_spec(m).bottleneck)
        << to_string(m);
  }
}

TEST(ModelZoo, FractionsSumNearOneWithSlackOrOverlap) {
  // Table 1 rows do not sum to 100%: idle gaps push the sum below 1
  // (ShuffleNet 0.86), stage overlap above it (GPT-2 1.13).
  for (ModelKind m : kAllModels) {
    double sum = 0;
    for (Resource r : kAllResources) {
      sum += model_profile(m, 1).fraction(r);
    }
    EXPECT_GT(sum, 0.8) << to_string(m);
    EXPECT_LT(sum, 1.2) << to_string(m);
  }
}

TEST(ModelZoo, SpanIsTheIterationTime) {
  for (ModelKind m : kAllModels) {
    const IterationProfile p = model_profile(m, 1);
    EXPECT_DOUBLE_EQ(p.iteration_time(), model_spec(m).base_iteration_time)
        << to_string(m);
  }
}

TEST(ModelZoo, ShuffleNetMatchesTable1Row) {
  const IterationProfile p = model_profile(ModelKind::kShuffleNet, 1);
  EXPECT_NEAR(p.duty(Resource::kStorage), 0.60, 1e-9);
  EXPECT_NEAR(p.duty(Resource::kCpu), 0.18, 1e-9);
  EXPECT_NEAR(p.duty(Resource::kGpu), 0.06, 1e-9);
  EXPECT_NEAR(p.duty(Resource::kNetwork), 0.02, 1e-9);
}

TEST(ModelZoo, NetworkGrowsWithWorkers) {
  for (ModelKind m : kAllModels) {
    const auto p1 = model_profile(m, 1);
    const auto p16 = model_profile(m, 16);
    EXPECT_GE(p16.stage_time[static_cast<size_t>(Resource::kNetwork)],
              p1.stage_time[static_cast<size_t>(Resource::kNetwork)]);
    // Non-network stages unchanged.
    EXPECT_DOUBLE_EQ(p16.stage_time[static_cast<size_t>(Resource::kGpu)],
                     p1.stage_time[static_cast<size_t>(Resource::kGpu)]);
  }
}

TEST(Job, SoloDurationAndGpuTime) {
  Job j;
  j.model = ModelKind::kGpt2;
  j.num_gpus = 4;
  j.iterations = 100;
  j.profile = model_profile(j.model, j.num_gpus);
  EXPECT_NEAR(j.solo_duration(), 100 * j.profile.iteration_time(), 1e-9);
  EXPECT_DOUBLE_EQ(j.gpu_time(10.0), 40.0);
}

TEST(Job, PowerOfTwoCheck) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(32));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(-4));
  EXPECT_FALSE(is_power_of_two(6));
}

TEST(Trace, GeneratorIsDeterministic) {
  PhillyTraceOptions opt;
  opt.num_jobs = 50;
  opt.seed = 5;
  const Trace a = generate_philly_like(opt);
  const Trace b = generate_philly_like(opt);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].model, b.jobs[i].model);
    EXPECT_EQ(a.jobs[i].num_gpus, b.jobs[i].num_gpus);
    EXPECT_DOUBLE_EQ(a.jobs[i].submit_time, b.jobs[i].submit_time);
    EXPECT_EQ(a.jobs[i].iterations, b.jobs[i].iterations);
  }
}

TEST(Trace, GeneratorBasicInvariants) {
  PhillyTraceOptions opt;
  opt.num_jobs = 300;
  opt.seed = 17;
  const Trace t = generate_philly_like(opt);
  ASSERT_EQ(t.jobs.size(), 300u);
  Time prev = -1;
  for (const Job& j : t.jobs) {
    EXPECT_GE(j.submit_time, prev);  // sorted arrivals
    prev = j.submit_time;
    EXPECT_TRUE(is_power_of_two(j.num_gpus));
    EXPECT_LE(j.num_gpus, 32);
    EXPECT_GE(j.iterations, 1);
    EXPECT_GE(j.solo_duration(), opt.min_duration * 0.5);
  }
  EXPECT_GT(t.total_gpu_seconds(), 0.0);
}

TEST(Trace, GpuMixtureIsDominatedBySingleGpu) {
  PhillyTraceOptions opt;
  opt.num_jobs = 2000;
  opt.seed = 23;
  const Trace t = generate_philly_like(opt);
  int single = 0;
  for (const Job& j : t.jobs) {
    if (j.num_gpus == 1) ++single;
  }
  EXPECT_GT(single, 1200);  // ~72%
  EXPECT_LT(single, 1800);
}

TEST(Trace, DurationsAreHeavyTailed) {
  PhillyTraceOptions opt;
  opt.num_jobs = 2000;
  opt.seed = 29;
  const Trace t = generate_philly_like(opt);
  std::vector<double> durations;
  for (const Job& j : t.jobs) durations.push_back(j.solo_duration());
  std::sort(durations.begin(), durations.end());
  const double median = durations[durations.size() / 2];
  const double p99 = durations[durations.size() * 99 / 100];
  EXPECT_GT(p99 / median, 10.0);  // long tail
}

TEST(Trace, StandardTracesHavePaperJobCounts) {
  EXPECT_EQ(standard_trace(1).jobs.size(), 992u);
  EXPECT_EQ(standard_trace(4).jobs.size(), 5755u);
  EXPECT_EQ(testbed_trace().jobs.size(), 400u);
  EXPECT_THROW(standard_trace(0), std::invalid_argument);
  EXPECT_THROW(standard_trace(5), std::invalid_argument);
}

TEST(Trace, ZeroArrivalsZerosAllSubmits) {
  Trace t = zero_arrivals(standard_trace(1));
  for (const Job& j : t.jobs) {
    EXPECT_DOUBLE_EQ(j.submit_time, 0.0);
  }
  EXPECT_NE(t.name.find("zero"), std::string::npos);
}

TEST(Trace, RestrictModelsKeepsCountAndDuration) {
  Trace t = standard_trace(1);
  const size_t count = t.jobs.size();
  std::vector<double> solo;
  for (const Job& j : t.jobs) solo.push_back(j.solo_duration());

  const std::vector<ModelKind> only = {ModelKind::kGpt2, ModelKind::kA2c};
  Trace r = restrict_models(std::move(t), only, 99);
  ASSERT_EQ(r.jobs.size(), count);
  std::set<ModelKind> seen;
  for (size_t i = 0; i < r.jobs.size(); ++i) {
    seen.insert(r.jobs[i].model);
    // Duration approximately preserved (re-quantized to iterations).
    EXPECT_NEAR(r.jobs[i].solo_duration(), solo[i],
                r.jobs[i].profile.iteration_time() + 1e-6);
  }
  for (ModelKind m : seen) {
    EXPECT_TRUE(m == ModelKind::kGpt2 || m == ModelKind::kA2c);
  }
}

TEST(Trace, CsvRoundTrip) {
  PhillyTraceOptions opt;
  opt.num_jobs = 40;
  opt.seed = 3;
  const Trace t = generate_philly_like(opt);

  const auto path =
      (std::filesystem::temp_directory_path() / "muri_trace_test.csv")
          .string();
  write_trace_csv(t, path);
  const Trace back = read_trace_csv(path, "back");
  std::filesystem::remove(path);

  ASSERT_EQ(back.jobs.size(), t.jobs.size());
  for (size_t i = 0; i < t.jobs.size(); ++i) {
    EXPECT_EQ(back.jobs[i].model, t.jobs[i].model);
    EXPECT_EQ(back.jobs[i].num_gpus, t.jobs[i].num_gpus);
    EXPECT_NEAR(back.jobs[i].submit_time, t.jobs[i].submit_time, 1e-3);
    EXPECT_EQ(back.jobs[i].iterations, t.jobs[i].iterations);
  }
}

TEST(Trace, ReadMissingFileThrows) {
  EXPECT_THROW(read_trace_csv("/nonexistent/muri.csv", "x"),
               std::runtime_error);
}

}  // namespace
}  // namespace muri
