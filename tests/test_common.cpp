#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace muri {
namespace {

TEST(Types, ResourceNamesRoundTrip) {
  for (Resource r : kAllResources) {
    Resource parsed{};
    ASSERT_TRUE(parse_resource(to_string(r), parsed));
    EXPECT_EQ(parsed, r);
  }
}

TEST(Types, ParseRejectsUnknown) {
  Resource r{};
  EXPECT_FALSE(parse_resource("tpu", r));
  EXPECT_FALSE(parse_resource("", r));
  EXPECT_FALSE(parse_resource("GPU", r));  // case-sensitive
}

TEST(Types, TotalSumsAllResources) {
  ResourceVector v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(total(v), 10.0);
}

TEST(Types, BottleneckPicksLargest) {
  ResourceVector v = {0.1, 0.5, 0.3, 0.2};
  EXPECT_EQ(bottleneck(v), Resource::kCpu);
}

TEST(Types, BottleneckTieBreaksToFirst) {
  ResourceVector v = {0.5, 0.5, 0.5, 0.5};
  EXPECT_EQ(bottleneck(v), Resource::kStorage);
}

TEST(Types, ToStringFormatsVector) {
  ResourceVector v = {1, 2, 3, 4};
  const std::string s = to_string(v);
  EXPECT_NE(s.find("storage=1"), std::string::npos);
  EXPECT_NE(s.find("network=4"), std::string::npos);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo = saw_lo || x == 0;
    saw_hi = saw_hi || x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(11);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1]);  // ~3:1
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.6);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng forked = a.fork();
  // Forked stream must not replay the parent stream.
  Rng fresh(5);
  fresh.engine()();  // consume the draw used by fork
  EXPECT_NE(forked.uniform(), a.uniform());
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GT(rng.lognormal(1.0, 2.0), 0.0);
  }
}

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
  EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 1e-3);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 10), 1.4);
}

TEST(Stats, PercentileHandlesUnsortedAndEmpty) {
  EXPECT_DOUBLE_EQ(percentile({}, 99), 0.0);
  EXPECT_DOUBLE_EQ(percentile({5, 1, 3}, 100), 5.0);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(min_of({3, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(max_of({3, 1, 2}), 3.0);
  EXPECT_DOUBLE_EQ(min_of({}), 0.0);
  EXPECT_DOUBLE_EQ(max_of({}), 0.0);
}

TEST(Stats, TimeWeightedAverageBasic) {
  TimeWeightedAverage avg;
  avg.observe(0, 1.0);
  avg.observe(10, 3.0);  // value 1.0 held for 10s
  EXPECT_DOUBLE_EQ(avg.finalize(20), (1.0 * 10 + 3.0 * 10) / 20);
}

TEST(Stats, TimeWeightedAverageEmpty) {
  TimeWeightedAverage avg;
  EXPECT_DOUBLE_EQ(avg.finalize(100), 0.0);
}

TEST(Stats, TimeWeightedValueAtDoesNotMutate) {
  TimeWeightedAverage avg;
  avg.observe(0, 2.0);
  EXPECT_DOUBLE_EQ(avg.value_at(10), 2.0);
  EXPECT_DOUBLE_EQ(avg.value_at(10), 2.0);
  EXPECT_DOUBLE_EQ(avg.finalize(10), 2.0);
}

TEST(Stats, SeriesRecorderKeepsOrderAndThins) {
  SeriesRecorder rec(8);
  for (int i = 0; i < 1000; ++i) {
    rec.record(i, i * 2.0);
  }
  const auto& pts = rec.points();
  ASSERT_FALSE(pts.empty());
  EXPECT_LE(pts.size(), 8u);
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i - 1].time, pts[i].time);
  }
}

}  // namespace
}  // namespace muri
