#include <gtest/gtest.h>

#include "scheduler/baselines.h"
#include "scheduler/muri.h"
#include "sim/simulator.h"

namespace muri {
namespace {

Job make_job(JobId id, ModelKind m, int gpus, Time submit, double solo_secs) {
  Job j;
  j.id = id;
  j.model = m;
  j.num_gpus = gpus;
  j.submit_time = submit;
  j.profile = model_profile(m, gpus);
  j.iterations = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(solo_secs / j.profile.iteration_time()));
  return j;
}

Trace tiny_trace() {
  Trace t;
  t.name = "tiny";
  t.jobs.push_back(make_job(0, ModelKind::kShuffleNet, 1, 0, 600));
  t.jobs.push_back(make_job(1, ModelKind::kA2c, 1, 0, 600));
  t.jobs.push_back(make_job(2, ModelKind::kGpt2, 1, 0, 600));
  t.jobs.push_back(make_job(3, ModelKind::kVgg16, 1, 0, 600));
  return t;
}

SimOptions small_cluster(int machines = 1, int gpus = 2) {
  SimOptions opt;
  opt.cluster.num_machines = machines;
  opt.cluster.gpus_per_machine = gpus;
  opt.schedule_interval = 60;
  opt.restart_penalty = 5;
  return opt;
}

TEST(Sim, SingleJobRunsForItsSoloDuration) {
  Trace t;
  t.name = "one";
  t.jobs.push_back(make_job(0, ModelKind::kBert, 1, 0, 1000));
  FifoScheduler fifo;
  SimOptions opt = small_cluster();
  const SimResult r = run_simulation(t, fifo, opt);
  EXPECT_EQ(r.finished_jobs, 1);
  EXPECT_EQ(r.unfinished_jobs, 0);
  // JCT = solo duration + restart penalty, up to iteration quantization.
  const double expected = t.jobs[0].solo_duration() + opt.restart_penalty;
  EXPECT_NEAR(r.avg_jct, expected, 1.0);
  EXPECT_NEAR(r.makespan, expected, 1.0);
}

TEST(Sim, AllJobsComplete) {
  const Trace t = tiny_trace();
  for (int pass = 0; pass < 2; ++pass) {
    FifoScheduler fifo;
    SrsfScheduler srsf;
    Scheduler& s = pass == 0 ? static_cast<Scheduler&>(fifo)
                             : static_cast<Scheduler&>(srsf);
    SimOptions opt = small_cluster();
    opt.durations_known = pass == 1;
    const SimResult r = run_simulation(t, s, opt);
    EXPECT_EQ(r.finished_jobs, 4) << s.name();
    EXPECT_GT(r.avg_jct, 0) << s.name();
    EXPECT_GE(r.makespan, 0) << s.name();
    EXPECT_GE(r.p99_jct, r.avg_jct * 0.5) << s.name();
  }
}

TEST(Sim, JctNeverBelowSoloDuration) {
  const Trace t = tiny_trace();
  FifoScheduler fifo;
  const SimResult r = run_simulation(t, fifo, small_cluster());
  ASSERT_EQ(r.jcts.size(), 4u);
  // Every JCT is at least the job's pure compute time.
  for (double jct : r.jcts) {
    EXPECT_GE(jct, 500.0);  // all jobs ~600s solo
  }
}

TEST(Sim, MuriInterleavesComplementaryJobsFasterThanFifo) {
  // Four complementary single-GPU jobs on ONE GPU: FIFO serializes them;
  // Muri interleaves all four on the same GPU.
  Trace t = tiny_trace();
  SimOptions opt = small_cluster(1, 1);

  FifoScheduler fifo;
  const SimResult r_fifo = run_simulation(t, fifo, opt);

  MuriOptions mopt;
  mopt.durations_known = true;
  MuriScheduler muri(mopt);
  SimOptions opt_known = opt;
  opt_known.durations_known = true;
  const SimResult r_muri = run_simulation(t, muri, opt_known);

  EXPECT_EQ(r_fifo.finished_jobs, 4);
  EXPECT_EQ(r_muri.finished_jobs, 4);
  EXPECT_LT(r_muri.makespan, r_fifo.makespan * 0.55)
      << "interleaving four complementary jobs should be ≥ ~2x faster";
  EXPECT_LT(r_muri.avg_jct, r_fifo.avg_jct);
}

TEST(Sim, UncoordinatedSharingSlowsContendingJobs) {
  // Two storage-bound jobs co-located by AntMan contend on storage; their
  // JCT must exceed their solo duration significantly (the §2.1 example).
  Trace t;
  t.name = "contend";
  t.jobs.push_back(make_job(0, ModelKind::kShuffleNet, 1, 0, 300));
  t.jobs.push_back(make_job(1, ModelKind::kShuffleNet, 1, 0, 300));
  AntManScheduler antman;
  SimOptions opt = small_cluster(1, 1);
  const SimResult r = run_simulation(t, antman, opt);
  EXPECT_EQ(r.finished_jobs, 2);
  for (double jct : r.jcts) {
    EXPECT_GT(jct, 300 * 1.5);
  }
}

TEST(Sim, RestartPenaltyDelaysCompletion) {
  Trace t;
  t.name = "penalty";
  t.jobs.push_back(make_job(0, ModelKind::kBert, 1, 0, 500));
  FifoScheduler fifo;
  SimOptions opt = small_cluster();
  opt.restart_penalty = 100;
  const SimResult with_penalty = run_simulation(t, fifo, opt);
  opt.restart_penalty = 0;
  FifoScheduler fifo2;
  const SimResult without = run_simulation(t, fifo2, opt);
  EXPECT_NEAR(with_penalty.avg_jct - without.avg_jct, 100, 1.0);
}

TEST(Sim, QueueMetricsPositiveUnderContention) {
  // Many jobs on one GPU: queue builds up.
  Trace t;
  t.name = "queue";
  for (int i = 0; i < 8; ++i) {
    t.jobs.push_back(make_job(i, ModelKind::kBert, 1, 0, 400));
  }
  FifoScheduler fifo;
  const SimResult r = run_simulation(t, fifo, small_cluster(1, 1));
  EXPECT_GT(r.avg_queue_length, 1.0);
  EXPECT_GT(r.avg_blocking_index, 0.0);
}

TEST(Sim, UtilizationBoundedAndGpuBusyWhenSaturated) {
  Trace t;
  t.name = "util";
  for (int i = 0; i < 4; ++i) {
    t.jobs.push_back(make_job(i, ModelKind::kGpt2, 1, 0, 2000));
  }
  FifoScheduler fifo;
  SimOptions opt = small_cluster(1, 2);
  const SimResult r = run_simulation(t, fifo, opt);
  for (int j = 0; j < kNumResources; ++j) {
    EXPECT_GE(r.avg_utilization[static_cast<size_t>(j)], 0.0);
    EXPECT_LE(r.avg_utilization[static_cast<size_t>(j)], 1.0);
  }
  // GPT-2 is GPU-bound: GPU utilization dominates.
  EXPECT_GT(r.avg_utilization[static_cast<size_t>(Resource::kGpu)],
            r.avg_utilization[static_cast<size_t>(Resource::kStorage)]);
}

TEST(Sim, SeriesRecordedWhenRequested) {
  Trace t = tiny_trace();
  FifoScheduler fifo;
  SimOptions opt = small_cluster();
  opt.record_series = true;
  const SimResult r = run_simulation(t, fifo, opt);
  EXPECT_FALSE(r.queue_series.empty());
  EXPECT_FALSE(r.util_series[static_cast<size_t>(Resource::kGpu)].empty());
  FifoScheduler fifo2;
  opt.record_series = false;
  const SimResult r2 = run_simulation(t, fifo2, opt);
  EXPECT_TRUE(r2.queue_series.empty());
}

TEST(Sim, MaxTimeStopsEarly) {
  Trace t;
  t.name = "long";
  t.jobs.push_back(make_job(0, ModelKind::kBert, 1, 0, 100000));
  FifoScheduler fifo;
  SimOptions opt = small_cluster();
  opt.max_time = 500;
  const SimResult r = run_simulation(t, fifo, opt);
  EXPECT_EQ(r.finished_jobs, 0);
  EXPECT_EQ(r.unfinished_jobs, 1);
}

TEST(Sim, MultiGpuJobsRespectMachineGranularity) {
  Trace t;
  t.name = "multigpu";
  t.jobs.push_back(make_job(0, ModelKind::kVgg16, 16, 0, 600));
  t.jobs.push_back(make_job(1, ModelKind::kBert, 8, 0, 600));
  t.jobs.push_back(make_job(2, ModelKind::kGpt2, 1, 0, 600));
  SrsfScheduler srsf;
  SimOptions opt;
  opt.cluster.num_machines = 3;
  opt.cluster.gpus_per_machine = 8;
  opt.durations_known = true;
  const SimResult r = run_simulation(t, srsf, opt);
  EXPECT_EQ(r.finished_jobs, 3);
}

TEST(Sim, ArrivalOrderRespected) {
  // A job that arrives later cannot finish before an identical earlier
  // one under FIFO.
  Trace t;
  t.name = "order";
  t.jobs.push_back(make_job(0, ModelKind::kBert, 1, 0, 300));
  t.jobs.push_back(make_job(1, ModelKind::kBert, 1, 1000, 300));
  FifoScheduler fifo;
  const SimResult r = run_simulation(t, fifo, small_cluster(1, 1));
  ASSERT_EQ(r.jcts.size(), 2u);
  EXPECT_EQ(r.finished_jobs, 2);
}

TEST(Sim, EmptyTraceIsNoOp) {
  Trace t;
  t.name = "empty";
  FifoScheduler fifo;
  const SimResult r = run_simulation(t, fifo, small_cluster());
  EXPECT_EQ(r.finished_jobs, 0);
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
}

TEST(Sim, SchedulerAccountingPopulated) {
  Trace t = tiny_trace();
  MuriOptions mopt;
  mopt.durations_known = true;
  MuriScheduler muri(mopt);
  SimOptions opt = small_cluster(1, 1);
  opt.durations_known = true;
  const SimResult r = run_simulation(t, muri, opt);
  EXPECT_GT(r.scheduler_invocations, 0);
  EXPECT_GE(r.scheduler_wall_ms, 0.0);
  EXPECT_GT(r.profiler_sessions, 0);
}

TEST(Sim, DeterministicRepeatability) {
  const Trace t = standard_trace(1);
  Trace head;
  head.name = "head";
  head.jobs.assign(t.jobs.begin(), t.jobs.begin() + 60);
  SimOptions opt;
  opt.cluster.num_machines = 2;
  opt.cluster.gpus_per_machine = 8;
  opt.durations_known = true;

  MuriOptions mopt;
  mopt.durations_known = true;
  MuriScheduler m1(mopt), m2(mopt);
  const SimResult a = run_simulation(head, m1, opt);
  const SimResult b = run_simulation(head, m2, opt);
  EXPECT_DOUBLE_EQ(a.avg_jct, b.avg_jct);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.p99_jct, b.p99_jct);
}

}  // namespace
}  // namespace muri
