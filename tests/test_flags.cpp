#include <gtest/gtest.h>

#include "common/flags.h"

namespace muri {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const Flags f = parse({"--trace=3", "--noise=0.5"});
  EXPECT_EQ(f.get("trace"), "3");
  EXPECT_DOUBLE_EQ(f.get_double("noise", 0), 0.5);
}

TEST(Flags, SpaceForm) {
  const Flags f = parse({"--scheduler", "Muri-L", "--machines", "16"});
  EXPECT_EQ(f.get("scheduler"), "Muri-L");
  EXPECT_EQ(f.get_int("machines", 0), 16);
}

TEST(Flags, BareBooleanSwitch) {
  const Flags f = parse({"--series", "--known"});
  EXPECT_TRUE(f.get_bool("series"));
  EXPECT_TRUE(f.get_bool("known"));
  EXPECT_FALSE(f.get_bool("absent"));
  EXPECT_TRUE(f.get_bool("absent", true));
}

TEST(Flags, BooleanValueForms) {
  EXPECT_TRUE(parse({"--x=true"}).get_bool("x"));
  EXPECT_TRUE(parse({"--x=1"}).get_bool("x"));
  EXPECT_TRUE(parse({"--x=on"}).get_bool("x"));
  EXPECT_FALSE(parse({"--x=false"}).get_bool("x"));
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x"));
  EXPECT_THROW(parse({"--x=maybe"}).get_bool("x"), std::invalid_argument);
}

TEST(Flags, BareSwitchBeforeAnotherFlagTakesNoValue) {
  const Flags f = parse({"--series", "--trace", "2"});
  EXPECT_TRUE(f.get_bool("series"));
  EXPECT_EQ(f.get("trace"), "2");
}

TEST(Flags, PositionalArguments) {
  const Flags f = parse({"shufflenet", "--gpus", "4", "gpt2"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "shufflenet");
  EXPECT_EQ(f.positional()[1], "gpt2");
  EXPECT_EQ(f.get_int("gpus", 1), 4);
}

TEST(Flags, Fallbacks) {
  const Flags f = parse({});
  EXPECT_EQ(f.get("missing", "dflt"), "dflt");
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("missing", 2.5), 2.5);
}

TEST(Flags, BadNumbersThrow) {
  EXPECT_THROW(parse({"--n=abc"}).get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(parse({"--x=abc"}).get_double("x", 0), std::invalid_argument);
}

TEST(Flags, UnreadReportsTypos) {
  const Flags f = parse({"--trace=1", "--tarce=2"});
  EXPECT_EQ(f.get("trace"), "1");
  const auto unread = f.unread();
  ASSERT_EQ(unread.size(), 1u);
  EXPECT_EQ(unread[0], "tarce");
}

TEST(Flags, HasMarksAsRead) {
  const Flags f = parse({"--csv=/tmp/x"});
  EXPECT_TRUE(f.has("csv"));
  EXPECT_TRUE(f.unread().empty());
}

}  // namespace
}  // namespace muri
