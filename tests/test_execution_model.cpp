// White-box tests of the simulator's execution model using a scripted
// scheduler that returns a fixed plan: verifies the exact per-mode period
// arithmetic (exclusive / interleaved / uncoordinated), the ordering and
// mis-planning penalties, and the mixed-GPU cascade.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "interleave/efficiency.h"
#include "sim/fluid.h"
#include "sim/simulator.h"

namespace muri {
namespace {

// Returns the same plan every round, dropping members that have left the
// queue (completed) so long-running tests stay valid.
class ScriptedScheduler final : public Scheduler {
 public:
  explicit ScriptedScheduler(std::vector<PlannedGroup> plan)
      : plan_(std::move(plan)) {}
  std::string name() const override { return "Scripted"; }
  std::vector<PlannedGroup> schedule(const std::vector<JobView>& queue,
                                     const SchedulerContext&) override {
    std::set<JobId> alive;
    for (const JobView& v : queue) alive.insert(v.id);
    std::vector<PlannedGroup> plan;
    for (PlannedGroup g : plan_) {
      std::vector<JobId> members;
      for (JobId id : g.members) {
        if (alive.count(id)) members.push_back(id);
      }
      if (members.empty()) continue;
      if (members.size() != g.members.size()) {
        // Group shrank: drop the stale rotation schedule.
        g.slots.clear();
        g.offsets.clear();
        g.planned_period = 0;
      }
      g.members = std::move(members);
      plan.push_back(std::move(g));
    }
    return plan;
  }

 private:
  std::vector<PlannedGroup> plan_;
};

Job make_job(JobId id, ModelKind m, int gpus, double solo_secs) {
  Job j;
  j.id = id;
  j.model = m;
  j.num_gpus = gpus;
  j.submit_time = 0;
  j.profile = model_profile(m, gpus);
  j.iterations = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(solo_secs / j.profile.iteration_time()));
  return j;
}

SimOptions base_options(int machines = 1, int gpus = 4) {
  SimOptions opt;
  opt.cluster.num_machines = machines;
  opt.cluster.gpus_per_machine = gpus;
  opt.schedule_interval = 60;
  opt.restart_penalty = 0;
  return opt;
}

TEST(ExecutionModel, ExclusiveJobFinishesAtSoloDuration) {
  Trace t;
  t.name = "x";
  t.jobs.push_back(make_job(0, ModelKind::kBert, 1, 700));
  ScriptedScheduler s({{{0}, 1, GroupMode::kExclusive, {}, {}, 0}});
  const SimResult r = run_simulation(t, s, base_options());
  ASSERT_EQ(r.finished_jobs, 1);
  EXPECT_NEAR(r.jcts[0], t.jobs[0].solo_duration(), 1.0);
}

TEST(ExecutionModel, InterleavedPairMatchesFluidPrediction) {
  Trace t;
  t.name = "pair";
  t.jobs.push_back(make_job(0, ModelKind::kShuffleNet, 1, 600));
  t.jobs.push_back(make_job(1, ModelKind::kGpt2, 1, 600));
  PlannedGroup g;
  g.members = {0, 1};
  g.num_gpus = 1;
  g.mode = GroupMode::kInterleaved;  // offsets empty -> best-order fallback
  ScriptedScheduler s({g});

  SimOptions opt = base_options();
  const SimResult r = run_simulation(t, s, opt);
  ASSERT_EQ(r.finished_jobs, 2);

  // Reproduce the model arithmetic for job 0.
  std::vector<IterationProfile> profiles = {t.jobs[0].profile,
                                            t.jobs[1].profile};
  std::vector<ResourceVector> stages = {profiles[0].stage_time,
                                        profiles[1].stage_time};
  const InterleavePlan best = plan_interleave(stages);
  const double gamma = group_efficiency(stages, best.period);
  FluidOptions fluid;
  fluid.inflation = (1.0 + opt.alpha) *
                    (1.0 + opt.gamma_penalty * (1.0 - gamma));
  fluid.contention_penalty = opt.contention_penalty;
  fluid.significant_duty = opt.significant_duty;
  const auto rates = max_min_fair_rates(profiles, fluid);
  const double expected_jct0 =
      static_cast<double>(t.jobs[0].iterations) *
      profiles[0].iteration_time() / rates[0];
  // First recorded completion is the earlier one; find job 0's JCT via the
  // expectation (both started at t=0).
  const double measured = std::min(r.jcts[0], r.jcts[1]) <= expected_jct0 + 2
                              ? (r.jcts[0] < r.jcts[1] ? r.jcts[0] : r.jcts[1])
                              : r.jcts[0];
  (void)measured;
  bool matches_one = std::abs(r.jcts[0] - expected_jct0) < 2.0 ||
                     std::abs(r.jcts[1] - expected_jct0) < 2.0;
  EXPECT_TRUE(matches_one)
      << "expected " << expected_jct0 << " got " << r.jcts[0] << " / "
      << r.jcts[1];
}

TEST(ExecutionModel, WorstOrderingSlowerThanBest) {
  auto run_with_offsets = [&](bool worst) {
    Trace t;
    t.name = "order";
    t.jobs.push_back(make_job(0, ModelKind::kVgg16, 1, 500));
    t.jobs.push_back(make_job(1, ModelKind::kDqn, 1, 500));
    std::vector<ResourceVector> stages = {t.jobs[0].profile.stage_time,
                                          t.jobs[1].profile.stage_time};
    const InterleavePlan plan = plan_interleave(
        stages, worst ? OrderingPolicy::kWorst : OrderingPolicy::kBest);
    PlannedGroup g;
    g.members = {0, 1};
    g.num_gpus = 1;
    g.mode = GroupMode::kInterleaved;
    g.slots = plan.slots;
    g.offsets = plan.offsets;
    g.planned_period = plan.period;
    ScriptedScheduler s({g});
    return run_simulation(t, s, base_options()).makespan;
  };
  const double best = run_with_offsets(false);
  const double worst = run_with_offsets(true);
  EXPECT_GT(worst, best * 1.02);
}

TEST(ExecutionModel, MisplanPenaltySlowsMisestimatedGroups) {
  auto run_with_planned_period = [&](double planned) {
    Trace t;
    t.name = "misplan";
    t.jobs.push_back(make_job(0, ModelKind::kShuffleNet, 1, 400));
    t.jobs.push_back(make_job(1, ModelKind::kGpt2, 1, 400));
    PlannedGroup g;
    g.members = {0, 1};
    g.num_gpus = 1;
    g.mode = GroupMode::kInterleaved;
    g.planned_period = planned;
    ScriptedScheduler s({g});
    return run_simulation(t, s, base_options()).makespan;
  };
  const double accurate = run_with_planned_period(0);  // 0 = no plan claim
  const double wildly_wrong = run_with_planned_period(100.0);
  EXPECT_GT(wildly_wrong, accurate * 1.1);
}

TEST(ExecutionModel, UncoordinatedSlowerThanInterleavedForSamePair) {
  auto run_mode = [&](GroupMode mode) {
    Trace t;
    t.name = "mode";
    t.jobs.push_back(make_job(0, ModelKind::kShuffleNet, 1, 400));
    t.jobs.push_back(make_job(1, ModelKind::kShuffleNet, 1, 400));
    PlannedGroup g;
    g.members = {0, 1};
    g.num_gpus = 1;
    g.mode = mode;
    ScriptedScheduler s({g});
    return run_simulation(t, s, base_options()).makespan;
  };
  // Same-bottleneck pair: both modes contend, but the uncoordinated
  // interference inflation (beta) exceeds the coordinated overheads.
  const double coordinated = run_mode(GroupMode::kInterleaved);
  const double uncoordinated = run_mode(GroupMode::kUncoordinated);
  EXPECT_GT(uncoordinated, coordinated * 1.01);
}

TEST(ExecutionModel, MixedGpuGroupPaysCascadePenalty) {
  auto run_gpus = [&](int gpus_b, double cascade) {
    Trace t;
    t.name = "cascade";
    t.jobs.push_back(make_job(0, ModelKind::kShuffleNet, 2, 400));
    t.jobs.push_back(make_job(1, ModelKind::kGpt2, gpus_b, 400));
    PlannedGroup g;
    g.members = {0, 1};
    g.num_gpus = 2;
    g.mode = GroupMode::kInterleaved;
    ScriptedScheduler s({g});
    SimOptions opt = base_options(1, 2);
    opt.cascade_penalty = cascade;
    return run_simulation(t, s, opt).makespan;
  };
  const double same_size = run_gpus(2, 0.25);
  const double mixed = run_gpus(1, 0.25);
  const double mixed_no_penalty = run_gpus(1, 0.0);
  EXPECT_GT(mixed, mixed_no_penalty * 1.02);
  (void)same_size;
}

TEST(ExecutionModel, GroupSharesSingleGpuSet) {
  // Four 1-GPU jobs interleaved as one group need only 1 GPU; a second
  // exclusive job can use the other GPU concurrently.
  Trace t;
  t.name = "share";
  for (int i = 0; i < 4; ++i) {
    t.jobs.push_back(make_job(i, kAllModels[static_cast<size_t>(i) * 2 % 8],
                              1, 300));
  }
  t.jobs.push_back(make_job(4, ModelKind::kBert, 1, 300));
  PlannedGroup g;
  g.members = {0, 1, 2, 3};
  g.num_gpus = 1;
  g.mode = GroupMode::kInterleaved;
  PlannedGroup solo;
  solo.members = {4};
  solo.num_gpus = 1;
  solo.mode = GroupMode::kExclusive;
  ScriptedScheduler s({g, solo});
  SimOptions opt = base_options(1, 2);
  const SimResult r = run_simulation(t, s, opt);
  EXPECT_EQ(r.finished_jobs, 5);
  // The exclusive job saw no contention: finishes at its solo duration.
  double min_jct = 1e18;
  for (double j : r.jcts) min_jct = std::min(min_jct, j);
  EXPECT_NEAR(min_jct, 300.0, 3.0);
}

TEST(ExecutionModel, InvalidPlansAreRejectedGracefully) {
  Trace t;
  t.name = "invalid";
  t.jobs.push_back(make_job(0, ModelKind::kBert, 1, 200));
  std::vector<PlannedGroup> plan;
  // Unknown job id.
  plan.push_back({{99}, 1, GroupMode::kExclusive, {}, {}, 0});
  // Duplicate member.
  plan.push_back({{0, 0}, 1, GroupMode::kInterleaved, {}, {}, 0});
  // Under-provisioned group (num_gpus < member demand).
  plan.push_back({{0}, 0, GroupMode::kExclusive, {}, {}, 0});
  // Finally a valid one.
  plan.push_back({{0}, 1, GroupMode::kExclusive, {}, {}, 0});
  ScriptedScheduler s(plan);
  const SimResult r = run_simulation(t, s, base_options());
  EXPECT_EQ(r.finished_jobs, 1);
}

TEST(ExecutionModel, OverCommittedPlanOnlyPlacesWhatFits) {
  Trace t;
  t.name = "overcommit";
  for (int i = 0; i < 3; ++i) {
    t.jobs.push_back(make_job(i, ModelKind::kBert, 1, 200));
  }
  std::vector<PlannedGroup> plan;
  for (int i = 0; i < 3; ++i) {
    plan.push_back({{i}, 1, GroupMode::kExclusive, {}, {}, 0});
  }
  ScriptedScheduler s(plan);
  const SimResult r = run_simulation(t, s, base_options(1, 2));
  // Only 2 GPUs: the third job waits for a completion, all still finish.
  EXPECT_EQ(r.finished_jobs, 3);
  EXPECT_GT(r.makespan, 350.0);
}

}  // namespace
}  // namespace muri
