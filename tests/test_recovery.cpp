// Crash-safe scheduling (src/recovery): WAL framing and torn-tail
// truncation, deterministic replay of DecisionLog streams, snapshot +
// suffix-replay recovery, log compaction, and the acceptance sweep —
// kill the durable log at every record boundary, resume, and converge
// bit-exactly (SimResult, plans, WAL bytes) with the uninterrupted run,
// across seeds and thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "job/model.h"
#include "obs/provenance.h"
#include "recovery/durable.h"
#include "recovery/replay.h"
#include "recovery/resume.h"
#include "recovery/wal.h"
#include "scheduler/muri.h"
#include "sim/simulator.h"

namespace muri {
namespace {

using obs::DecisionLog;
using recovery::DurableSink;
using recovery::DurableSinkOptions;
using recovery::FrameKind;
using recovery::RecoverResult;
using recovery::ReplayEngine;
using recovery::ReplayState;
using recovery::WalFrame;
using recovery::WalReadResult;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "muri_recovery_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

// ---------------------------------------------------------------------------
// WAL framing.

TEST(Wal, Crc32MatchesTheIeeeReference) {
  // The canonical CRC-32 check value ("123456789" -> 0xCBF43926).
  EXPECT_EQ(recovery::crc32_ieee("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(recovery::crc32_ieee("", 0), 0u);
}

TEST(Wal, FramesRoundTrip) {
  std::string bytes;
  recovery::append_wal_frame(bytes, FrameKind::kRecord, "{\"a\":1}");
  recovery::append_wal_frame(bytes, FrameKind::kSnapshot, "{\"s\":2}");
  recovery::append_wal_frame(bytes, FrameKind::kRecord, "");
  EXPECT_TRUE(recovery::looks_like_wal(bytes));

  const WalReadResult decoded = recovery::decode_wal(bytes);
  EXPECT_FALSE(decoded.torn);
  EXPECT_EQ(decoded.valid_bytes, bytes.size());
  ASSERT_EQ(decoded.frames.size(), 3u);
  EXPECT_EQ(decoded.frames[0].kind, FrameKind::kRecord);
  EXPECT_EQ(decoded.frames[0].payload, "{\"a\":1}");
  EXPECT_EQ(decoded.frames[1].kind, FrameKind::kSnapshot);
  EXPECT_EQ(decoded.frames[1].payload, "{\"s\":2}");
  EXPECT_EQ(decoded.frames[2].payload, "");
}

TEST(Wal, TornTailStopsTheScanWithoutLosingThePrefix) {
  std::string bytes;
  recovery::append_wal_frame(bytes, FrameKind::kRecord, "{\"a\":1}");
  const std::size_t clean_size = bytes.size();
  std::string full = bytes;
  recovery::append_wal_frame(full, FrameKind::kRecord, "{\"b\":22}");

  // Cut the second frame mid-payload: the classic crashed-append shape.
  const std::string torn = full.substr(0, full.size() - 3);
  WalReadResult decoded = recovery::decode_wal(torn);
  EXPECT_TRUE(decoded.torn);
  EXPECT_EQ(decoded.valid_bytes, clean_size);
  ASSERT_EQ(decoded.frames.size(), 1u);
  EXPECT_NE(decoded.torn_reason.find("byte offset " +
                                     std::to_string(clean_size)),
            std::string::npos);

  // A flipped payload byte fails the checksum, same containment.
  std::string corrupt = full;
  corrupt[full.size() - 2] ^= 0x40;
  decoded = recovery::decode_wal(corrupt);
  EXPECT_TRUE(decoded.torn);
  EXPECT_NE(decoded.torn_reason.find("checksum"), std::string::npos);
  EXPECT_EQ(decoded.frames.size(), 1u);

  // truncate_wal_file rewrites the valid prefix in place.
  const std::string path = temp_path("torn.wal");
  spit(path, torn);
  std::string error;
  ASSERT_TRUE(recovery::truncate_wal_file(path, &error)) << error;
  EXPECT_EQ(slurp(path), bytes);
  decoded = recovery::decode_wal(slurp(path));
  EXPECT_FALSE(decoded.torn);
}

// ---------------------------------------------------------------------------
// Simulation fixtures: a small contended trace on a faulty two-machine
// cluster, so logs carry the full record vocabulary (placements,
// preempts, faults, evictions, machine_down/up, finishes).

Job sim_job(JobId id, ModelKind m, Time submit, double solo_secs) {
  Job j;
  j.id = id;
  j.model = m;
  j.num_gpus = 1;
  j.submit_time = submit;
  j.profile = model_profile(m, 1);
  j.iterations = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(solo_secs / j.profile.iteration_time()));
  return j;
}

Trace recovery_trace(std::uint64_t seed) {
  Trace t;
  t.name = "recovery_" + std::to_string(seed);
  for (int i = 0; i < 6; ++i) {
    // The seed staggers arrivals and durations so different seeds yield
    // genuinely different logs.
    const auto si = static_cast<double>((seed * 7 + i * 13) % 90);
    t.jobs.push_back(sim_job(i, kAllModels[(i + seed) % 8], i * 45.0 + si,
                             500 + 40.0 * ((seed + i) % 5)));
  }
  return t;
}

SimOptions faulty_cluster() {
  SimOptions opt;
  opt.cluster.num_machines = 2;
  opt.cluster.gpus_per_machine = 2;
  opt.schedule_interval = 60;
  opt.restart_penalty = 5;
  opt.mtbf_hours = 0.2;  // job faults
  opt.machine_faults.machine_mtbf_hours = 0.6;
  opt.machine_faults.machine_mttr_hours = 0.05;
  return opt;
}

// Captures every plan the wrapped scheduler emits, so clean and resumed
// runs can be compared plan-for-plan.
class PlanRecorder final : public Scheduler {
 public:
  PlanRecorder(std::unique_ptr<Scheduler> inner,
               std::vector<std::vector<PlannedGroup>>* plans)
      : inner_(std::move(inner)), plans_(plans) {}

  std::string name() const override { return inner_->name(); }
  bool needs_durations() const override { return inner_->needs_durations(); }

  std::vector<PlannedGroup> schedule(const std::vector<JobView>& queue,
                                     const SchedulerContext& ctx) override {
    // The harness attaches the decision log to the wrapper; forward it.
    inner_->set_decision_log(decision_log());
    std::vector<PlannedGroup> plan = inner_->schedule(queue, ctx);
    plans_->push_back(plan);
    return plan;
  }

 private:
  std::unique_ptr<Scheduler> inner_;
  std::vector<std::vector<PlannedGroup>>* plans_;
};

bool same_plan(const std::vector<PlannedGroup>& a,
               const std::vector<PlannedGroup>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].members != b[i].members || a[i].num_gpus != b[i].num_gpus ||
        a[i].mode != b[i].mode || a[i].slots != b[i].slots ||
        a[i].offsets != b[i].offsets ||
        a[i].planned_period != b[i].planned_period) {
      return false;
    }
  }
  return true;
}

void expect_same_result(const SimResult& want, const SimResult& got) {
  EXPECT_EQ(want.avg_jct, got.avg_jct);
  EXPECT_EQ(want.p99_jct, got.p99_jct);
  EXPECT_EQ(want.makespan, got.makespan);
  EXPECT_EQ(want.jcts, got.jcts);
  EXPECT_EQ(want.finished_jobs, got.finished_jobs);
  EXPECT_EQ(want.unfinished_jobs, got.unfinished_jobs);
  EXPECT_EQ(want.faults, got.faults);
  EXPECT_EQ(want.restarts, got.restarts);
  EXPECT_EQ(want.machine_failures, got.machine_failures);
  EXPECT_EQ(want.evictions, got.evictions);
  EXPECT_EQ(want.avg_queue_length, got.avg_queue_length);
  EXPECT_EQ(want.avg_utilization, got.avg_utilization);
  EXPECT_EQ(want.resource_busy_seconds, got.resource_busy_seconds);
  EXPECT_EQ(want.scheduler_invocations, got.scheduler_invocations);
}

// One durable reference run: returns the SimResult and leaves the WAL at
// `path` (snapshots every `snapshot_every` records).
SimResult durable_run(const Trace& trace, int num_threads,
                      const std::string& path, std::int64_t snapshot_every,
                      std::vector<std::vector<PlannedGroup>>* plans,
                      std::string* jsonl = nullptr) {
  DurableSinkOptions sink_options;
  sink_options.fsync = DurableSinkOptions::Fsync::kNone;
  sink_options.snapshot_every_records = snapshot_every;
  DurableSink sink(path, sink_options);
  EXPECT_TRUE(sink.ok()) << sink.error();

  DecisionLog log;
  log.set_sink(&sink);
  MuriOptions muri_options;
  muri_options.num_threads = num_threads;
  std::vector<std::vector<PlannedGroup>> local_plans;
  PlanRecorder scheduler(std::make_unique<MuriScheduler>(muri_options),
                         plans != nullptr ? plans : &local_plans);
  SimOptions sim = faulty_cluster();
  sim.decisions = &log;
  const SimResult result = run_simulation(trace, scheduler, sim);
  log.set_sink(nullptr);
  sink.close();
  EXPECT_TRUE(sink.ok()) << sink.error();
  if (jsonl != nullptr) *jsonl = log.jsonl();
  return result;
}

// ---------------------------------------------------------------------------
// DurableSink basics.

TEST(DurableSink, PersistsRecordsInCommitOrder) {
  const std::string path = temp_path("sink_order.wal");
  std::string jsonl;
  durable_run(recovery_trace(1), 1, path, 0, nullptr, &jsonl);

  WalReadResult decoded;
  std::string error;
  ASSERT_TRUE(recovery::read_wal_file(path, decoded, &error)) << error;
  EXPECT_FALSE(decoded.torn);
  std::string replayed;
  for (const WalFrame& frame : decoded.frames) {
    ASSERT_EQ(frame.kind, FrameKind::kRecord);
    replayed += frame.payload;
    replayed += '\n';
  }
  // The WAL is the in-memory log, byte for byte.
  EXPECT_EQ(replayed, jsonl);
  EXPECT_GT(decoded.frames.size(), 100u);
}

TEST(DurableSink, StopAfterRecordsLeavesABoundedPrefix) {
  const std::string path = temp_path("sink_stop.wal");
  DurableSinkOptions options;
  options.fsync = DurableSinkOptions::Fsync::kEveryRecord;
  options.stop_after_records = 2;
  DurableSink sink(path, options);
  DecisionLog log;
  log.set_sink(&sink);
  log.begin_round();
  log.entry("round_start")
      .str("scheduler", "x")
      .str("policy", "y")
      .integer("queue", 0)
      .integer("capacity", 0);
  log.entry("round_end").integer("groups", 0).integer("admitted", 0).integer(
      "rejected", 0);
  log.entry("deferred").ids("jobs", {1}).str("reason", "never_written");
  log.set_sink(nullptr);
  sink.close();
  EXPECT_EQ(log.records(), 3);  // the in-memory log is unaffected

  WalReadResult decoded;
  ASSERT_TRUE(recovery::read_wal_file(path, decoded, nullptr));
  ASSERT_EQ(decoded.frames.size(), 2u);
  EXPECT_EQ(decoded.frames[1].payload.find("never_written"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Replay determinism.

TEST(Replay, SameLogReplayedTwiceYieldsIdenticalState) {
  const std::string path = temp_path("replay_twice.wal");
  std::string jsonl;
  durable_run(recovery_trace(1), 1, path, 0, nullptr, &jsonl);

  ReplayEngine first, second;
  std::string error;
  ASSERT_TRUE(first.replay(jsonl, &error)) << error;
  ASSERT_TRUE(second.replay(jsonl, &error)) << error;
  EXPECT_EQ(first.state(), second.state());
  EXPECT_EQ(recovery::state_json(first.state()),
            recovery::state_json(second.state()));
}

TEST(Replay, ThreadedRunReplaysIdenticalToSerial) {
  const Trace trace = recovery_trace(2);
  std::string serial_jsonl, threaded_jsonl;
  durable_run(trace, 1, temp_path("replay_serial.wal"), 0, nullptr,
              &serial_jsonl);
  durable_run(trace, 4, temp_path("replay_threaded.wal"), 0, nullptr,
              &threaded_jsonl);
  // The log itself is byte-stable across thread counts…
  EXPECT_EQ(serial_jsonl, threaded_jsonl);
  // …and so, a fortiori, is the replayed state.
  ReplayEngine serial, threaded;
  ASSERT_TRUE(serial.replay(serial_jsonl));
  ASSERT_TRUE(threaded.replay(threaded_jsonl));
  EXPECT_EQ(serial.state(), threaded.state());
}

TEST(Replay, FinalStateMatchesTheLiveSimResult) {
  const Trace trace = recovery_trace(1);
  std::string jsonl;
  const SimResult live = durable_run(trace, 1, temp_path("replay_live.wal"),
                                     0, nullptr, &jsonl);

  ReplayEngine engine;
  std::string error;
  ASSERT_TRUE(engine.replay(jsonl, &error)) << error;
  const ReplayState& state = engine.state();
  EXPECT_TRUE(state.run_complete);
  EXPECT_EQ(state.jcts, live.jcts);
  EXPECT_EQ(state.avg_jct(), live.avg_jct);
  EXPECT_EQ(state.p99_jct(), live.p99_jct);
  EXPECT_EQ(state.makespan, live.makespan);
  EXPECT_EQ(state.finished_jobs, live.finished_jobs);
  EXPECT_EQ(state.unfinished_jobs, live.unfinished_jobs);
  EXPECT_EQ(state.faults, live.faults);
  EXPECT_EQ(state.restarts, live.restarts);
  EXPECT_EQ(state.machine_failures, live.machine_failures);
  EXPECT_EQ(state.evictions, live.evictions);
  EXPECT_EQ(state.scheduler_invocations, live.scheduler_invocations);
  // Everyone arrived and finished; nothing left queued or running.
  EXPECT_EQ(static_cast<int>(state.finished.size()), live.finished_jobs);
  EXPECT_TRUE(state.running.empty());
  EXPECT_TRUE(state.queued().empty());
  // machines_down may be non-empty: a machine whose repair falls past
  // the last job completion is still down when the run ends.
}

TEST(Replay, SnapshotJsonRoundTrips) {
  std::string jsonl;
  durable_run(recovery_trace(3), 1, temp_path("replay_rt.wal"), 0, nullptr,
              &jsonl);
  ReplayEngine engine;
  ASSERT_TRUE(engine.replay(jsonl));

  const std::string snapshot = recovery::state_json(engine.state());
  ReplayState restored;
  std::string error;
  ASSERT_TRUE(recovery::state_from_json(snapshot, restored, &error)) << error;
  EXPECT_EQ(restored, engine.state());
  EXPECT_EQ(recovery::state_json(restored), snapshot);
  EXPECT_FALSE(recovery::state_text(restored).empty());
}

// ---------------------------------------------------------------------------
// Snapshot + suffix recovery, compaction.

TEST(Recovery, SnapshotPlusSuffixReplayEqualsFullReplay) {
  const std::string path = temp_path("snap_suffix.wal");
  std::string jsonl;
  durable_run(recovery_trace(1), 1, path, /*snapshot_every=*/17, nullptr,
              &jsonl);

  ReplayEngine full;
  ASSERT_TRUE(full.replay(jsonl));

  RecoverResult recovered;
  std::string error;
  ASSERT_TRUE(recovery::recover_wal(path, recovered, &error)) << error;
  EXPECT_TRUE(recovered.used_snapshot);
  EXPECT_LT(recovered.replayed_records, full.state().records);
  EXPECT_EQ(recovered.state, full.state());
  EXPECT_EQ(recovered.records_on_disk, full.state().records);
}

TEST(Recovery, CompactionPreservesRecoveredStateAndShrinksTheFile) {
  const std::string path = temp_path("compact.wal");
  durable_run(recovery_trace(2), 1, path, /*snapshot_every=*/17, nullptr);

  RecoverResult before;
  ASSERT_TRUE(recovery::recover_wal(path, before, nullptr));
  const std::size_t size_before = slurp(path).size();

  std::string error;
  ASSERT_TRUE(recovery::compact_wal(path, &error)) << error;
  EXPECT_LT(slurp(path).size(), size_before);

  // A compacted file opens with its snapshot.
  WalReadResult decoded;
  ASSERT_TRUE(recovery::read_wal_file(path, decoded, nullptr));
  ASSERT_FALSE(decoded.frames.empty());
  EXPECT_EQ(decoded.frames[0].kind, FrameKind::kSnapshot);

  RecoverResult after;
  ASSERT_TRUE(recovery::recover_wal(path, after, nullptr));
  EXPECT_EQ(after.state, before.state);
  EXPECT_EQ(after.records_on_disk, before.records_on_disk);
}

// ---------------------------------------------------------------------------
// Resume.

TEST(Recovery, ColdStartResumeJustRunsDurably) {
  const Trace trace = recovery_trace(1);
  std::vector<std::vector<PlannedGroup>> clean_plans;
  const SimResult clean = durable_run(trace, 1, temp_path("cold_ref.wal"), 9,
                                      &clean_plans);

  const std::string path = temp_path("cold_start.wal");
  std::remove(path.c_str());
  recovery::ResumeOptions options;
  options.wal_path = path;
  options.sink.fsync = DurableSinkOptions::Fsync::kNone;
  options.sink.snapshot_every_records = 9;
  MuriOptions muri_options;
  muri_options.num_threads = 1;
  std::vector<std::vector<PlannedGroup>> plans;
  PlanRecorder scheduler(std::make_unique<MuriScheduler>(muri_options),
                         &plans);
  SimResult result;
  recovery::ResumeReport report;
  std::string error;
  ASSERT_TRUE(recovery::resume_simulation(trace, scheduler, faulty_cluster(),
                                          options, result, report, &error))
      << error;
  EXPECT_EQ(report.records_on_disk, 0);
  EXPECT_EQ(report.records_verified, 0);
  EXPECT_GT(report.records_appended, 0);
  expect_same_result(clean, result);
  EXPECT_EQ(slurp(path), slurp(temp_path("cold_ref.wal")));
}

TEST(Recovery, ResumeDetectsDivergence) {
  // A WAL from seed 1 cannot be resumed by a seed-4 run: the first
  // regenerated record that differs flags divergence instead of
  // corrupting the durable history.
  const std::string path = temp_path("diverge.wal");
  durable_run(recovery_trace(1), 1, path, 0, nullptr);

  recovery::ResumeOptions options;
  options.wal_path = path;
  options.sink.fsync = DurableSinkOptions::Fsync::kNone;
  MuriOptions muri_options;
  muri_options.num_threads = 1;
  MuriScheduler scheduler(muri_options);
  SimResult result;
  recovery::ResumeReport report;
  std::string error;
  EXPECT_FALSE(recovery::resume_simulation(recovery_trace(4), scheduler,
                                           faulty_cluster(), options, result,
                                           report, &error));
  EXPECT_TRUE(report.diverged);
  EXPECT_NE(error.find("divergence"), std::string::npos);
}

TEST(Recovery, ResumeAfterCompactionSkipsTheCoveredPrefix) {
  const Trace trace = recovery_trace(2);
  std::vector<std::vector<PlannedGroup>> clean_plans;
  const SimResult clean =
      durable_run(trace, 1, temp_path("compact_ref.wal"), 11, &clean_plans);

  // Crash mid-run (prefix of the reference WAL), then compact the
  // surviving prefix before resuming.
  const std::string path = temp_path("compact_resume.wal");
  {
    WalReadResult decoded;
    ASSERT_TRUE(
        recovery::read_wal_file(temp_path("compact_ref.wal"), decoded,
                                nullptr));
    std::string prefix;
    for (std::size_t i = 0; i < decoded.frames.size() / 2; ++i) {
      recovery::append_wal_frame(prefix, decoded.frames[i].kind,
                                 decoded.frames[i].payload);
    }
    spit(path, prefix);
  }
  ASSERT_TRUE(recovery::compact_wal(path, nullptr));

  recovery::ResumeOptions options;
  options.wal_path = path;
  options.sink.fsync = DurableSinkOptions::Fsync::kNone;
  options.sink.snapshot_every_records = 11;
  MuriOptions muri_options;
  muri_options.num_threads = 1;
  std::vector<std::vector<PlannedGroup>> plans;
  PlanRecorder scheduler(std::make_unique<MuriScheduler>(muri_options),
                         &plans);
  SimResult result;
  recovery::ResumeReport report;
  std::string error;
  ASSERT_TRUE(recovery::resume_simulation(trace, scheduler, faulty_cluster(),
                                          options, result, report, &error))
      << error;
  EXPECT_TRUE(report.used_snapshot);
  EXPECT_GT(report.records_on_disk, 0);
  EXPECT_FALSE(report.diverged);
  expect_same_result(clean, result);
  ASSERT_EQ(plans.size(), clean_plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    EXPECT_TRUE(same_plan(clean_plans[i], plans[i])) << "plan " << i;
  }
}

// ---------------------------------------------------------------------------
// The acceptance sweep: kill at EVERY record boundary, recover from
// snapshot + suffix, and converge with the uninterrupted run — bit-exact
// SimResult, identical plans, byte-identical WAL — for two seeds and
// num_threads in {1, 4}.

TEST(Recovery, KillAtEveryRecordBoundarySweepConverges) {
  for (const std::uint64_t seed : {1ull, 2ull}) {
    for (const int threads : {1, 4}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " threads=" + std::to_string(threads));
      const Trace trace = recovery_trace(seed);
      const std::string tag =
          std::to_string(seed) + "_" + std::to_string(threads);
      const std::string clean_path = temp_path("sweep_clean_" + tag + ".wal");
      std::vector<std::vector<PlannedGroup>> clean_plans;
      const SimResult clean =
          durable_run(trace, threads, clean_path, /*snapshot_every=*/13,
                      &clean_plans);
      const std::string clean_bytes = slurp(clean_path);
      WalReadResult decoded = recovery::decode_wal(clean_bytes);
      ASSERT_FALSE(decoded.torn);
      ASSERT_GT(decoded.frames.size(), 50u);

      const std::string path = temp_path("sweep_" + tag + ".wal");
      for (std::size_t boundary = 0; boundary <= decoded.frames.size();
           ++boundary) {
        // The WAL as a crash at this frame boundary leaves it. Adding
        // half of the next frame exercises torn-tail truncation on the
        // same boundaries at no extra simulation cost.
        std::string prefix;
        for (std::size_t i = 0; i < boundary; ++i) {
          recovery::append_wal_frame(prefix, decoded.frames[i].kind,
                                     decoded.frames[i].payload);
        }
        if (boundary % 3 == 0 && boundary < decoded.frames.size()) {
          std::string next;
          recovery::append_wal_frame(next, decoded.frames[boundary].kind,
                                     decoded.frames[boundary].payload);
          prefix += next.substr(0, next.size() / 2);
        }
        spit(path, prefix);

        recovery::ResumeOptions options;
        options.wal_path = path;
        options.sink.fsync = DurableSinkOptions::Fsync::kNone;
        options.sink.snapshot_every_records = 13;
        MuriOptions muri_options;
        muri_options.num_threads = threads;
        std::vector<std::vector<PlannedGroup>> plans;
        PlanRecorder scheduler(std::make_unique<MuriScheduler>(muri_options),
                               &plans);
        SimResult result;
        recovery::ResumeReport report;
        std::string error;
        ASSERT_TRUE(recovery::resume_simulation(trace, scheduler,
                                                faulty_cluster(), options,
                                                result, report, &error))
            << "boundary " << boundary << ": " << error;
        ASSERT_FALSE(report.diverged) << "boundary " << boundary;

        expect_same_result(clean, result);
        ASSERT_EQ(plans.size(), clean_plans.size()) << "boundary " << boundary;
        for (std::size_t i = 0; i < plans.size(); ++i) {
          ASSERT_TRUE(same_plan(clean_plans[i], plans[i]))
              << "boundary " << boundary << " plan " << i;
        }
        ASSERT_EQ(slurp(path), clean_bytes) << "boundary " << boundary;
      }
    }
  }
}

}  // namespace
}  // namespace muri
