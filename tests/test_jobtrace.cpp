// Per-job causal tracing (src/obs/jobtrace): the span state machine and
// wait-bucket classifier, the attribution invariant (buckets + run spans
// sum to the realized JCT for every finished job), live-vs-fold agreement
// (the recorder fed by the simulator matches build_job_traces() over the
// same decision log), byte-stable renderers across scheduler thread
// counts, the Chrome export, the schema of the new wait/straggler
// records, and the obs bit-identity contract (attaching a JobTraceLog
// changes neither SimResult nor the decision-log bytes).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "job/model.h"
#include "obs/jobtrace.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "scheduler/muri.h"
#include "sim/simulator.h"

namespace muri {
namespace {

using obs::DecisionLog;
using obs::DecisionRecord;
using obs::JobTimeline;
using obs::JobTraceLog;
using obs::SpanKind;
using obs::TimelineSpan;

// ---------------------------------------------------------------------------
// Classifier and names.

TEST(JobTrace, SpanKindNamesRoundTrip) {
  for (int k = 0; k < obs::kNumSpanKinds; ++k) {
    const SpanKind kind = static_cast<SpanKind>(k);
    SpanKind back = SpanKind::kRun;
    ASSERT_TRUE(obs::span_kind_from_name(obs::span_kind_name(kind), back))
        << obs::span_kind_name(kind);
    EXPECT_EQ(back, kind);
  }
  SpanKind out;
  EXPECT_FALSE(obs::span_kind_from_name("not_a_bucket", out));
  EXPECT_TRUE(obs::span_kind_is_wait(SpanKind::kAwaitingRound));
  EXPECT_TRUE(obs::span_kind_is_wait(SpanKind::kFaulted));
  EXPECT_FALSE(obs::span_kind_is_wait(SpanKind::kRestart));
  EXPECT_FALSE(obs::span_kind_is_wait(SpanKind::kRun));
  EXPECT_FALSE(obs::span_kind_is_wait(SpanKind::kDegraded));
}

TEST(JobTrace, ClassifyWaitIsExclusiveAndExhaustive) {
  // Deferral wins over everything (the scheduler said so explicitly).
  EXPECT_EQ(obs::classify_wait(true, 16, 8), SpanKind::kDeferred);
  EXPECT_EQ(obs::classify_wait(true, 1, 8), SpanKind::kDeferred);
  // Demand past the pool is structural, not a priority race.
  EXPECT_EQ(obs::classify_wait(false, 16, 8), SpanKind::kNoCapacity);
  // Otherwise the job just lost the round.
  EXPECT_EQ(obs::classify_wait(false, 8, 8), SpanKind::kLostPriority);
  EXPECT_EQ(obs::classify_wait(false, 1, 8), SpanKind::kLostPriority);
}

// ---------------------------------------------------------------------------
// State machine, driven by hand.

TEST(JobTrace, LifecycleAttributesEveryInterval) {
  JobTraceLog log;
  log.set_restart_penalty(5);
  log.submitted(1, 0);
  log.wait_verdict(1, 60, 1, SpanKind::kLostPriority);
  log.placed(1, 120, 2, {1}, 1.0, "exclusive");
  log.finished(1, 240, 240);

  JobTimeline t;
  ASSERT_TRUE(log.timeline(1, t));
  EXPECT_TRUE(t.finished);
  EXPECT_EQ(obs::validate_timeline(t), "");
  ASSERT_EQ(t.spans.size(), 4u);
  EXPECT_EQ(t.spans[0].kind, SpanKind::kAwaitingRound);
  EXPECT_EQ(t.spans[1].kind, SpanKind::kLostPriority);
  EXPECT_EQ(t.spans[2].kind, SpanKind::kRestart);
  EXPECT_EQ(t.spans[3].kind, SpanKind::kRun);
  EXPECT_EQ(t.spans[2].start, 120);
  EXPECT_EQ(t.spans[2].end, 125);  // the 5s gate, split out of the run
  EXPECT_EQ(t.spans[3].end, 240);
  EXPECT_EQ(t.spans[3].mode, "exclusive");
  EXPECT_EQ(t.bucket_seconds[static_cast<int>(SpanKind::kAwaitingRound)], 60);
  EXPECT_EQ(t.bucket_seconds[static_cast<int>(SpanKind::kLostPriority)], 60);
  EXPECT_EQ(t.bucket_seconds[static_cast<int>(SpanKind::kRestart)], 5);
  EXPECT_EQ(t.bucket_seconds[static_cast<int>(SpanKind::kRun)], 115);
  EXPECT_EQ(t.total_seconds(), t.reported_jct);
}

TEST(JobTrace, ReplacementWithSameGroupMergesChangedGroupRestarts) {
  JobTraceLog log;
  log.set_restart_penalty(5);
  log.submitted(7, 0);
  log.placed(7, 60, 1, {7}, 1.0, "exclusive");
  // Same group + mode + gamma: the open span absorbs the round id.
  log.placed(7, 120, 2, {7}, 1.0, "exclusive");
  // New co-member: terminate-and-restart, fresh gate.
  log.placed(7, 180, 3, {3, 7}, 0.9, "interleaved");
  log.finished(7, 300, 300);

  JobTimeline t;
  ASSERT_TRUE(log.timeline(7, t));
  EXPECT_EQ(obs::validate_timeline(t), "");
  ASSERT_EQ(t.spans.size(), 5u);
  EXPECT_EQ(t.spans[1].kind, SpanKind::kRestart);
  EXPECT_EQ(t.spans[2].kind, SpanKind::kRun);
  EXPECT_EQ(t.spans[2].rounds, (std::vector<std::int64_t>{1, 2}));
  EXPECT_EQ(t.spans[3].kind, SpanKind::kRestart);
  EXPECT_EQ(t.spans[3].start, 180);
  EXPECT_EQ(t.spans[4].kind, SpanKind::kRun);
  EXPECT_EQ(t.spans[4].group, (std::vector<std::int64_t>{3, 7}));
  EXPECT_EQ(t.spans[4].gamma, 0.9);
  EXPECT_EQ(t.spans[4].mode, "interleaved");
}

TEST(JobTrace, SameMembersDifferentModeRestarts) {
  // The executor's "unchanged" test is (members, mode): flipping the mode
  // with the same members must pay a restart, and the recorder agrees.
  JobTraceLog log;
  log.set_restart_penalty(5);
  log.submitted(1, 0);
  log.placed(1, 60, 1, {1, 2}, 0.8, "interleaved");
  log.placed(1, 120, 2, {1, 2}, 0.8, "uncoordinated");
  log.finished(1, 240, 240);
  JobTimeline t;
  ASSERT_TRUE(log.timeline(1, t));
  EXPECT_EQ(obs::validate_timeline(t), "");
  int restarts = 0;
  for (const TimelineSpan& s : t.spans) {
    restarts += s.kind == SpanKind::kRestart ? 1 : 0;
  }
  EXPECT_EQ(restarts, 2);
}

TEST(JobTrace, PreemptionSurvivesTheSameInstantWaitVerdict) {
  JobTraceLog log;
  log.set_restart_penalty(0);
  log.submitted(1, 0);
  log.placed(1, 60, 1, {1}, 1.0, "exclusive");
  log.preempted(1, 100, 2);
  // The displacing round classifies every waiting job at the same instant;
  // the fresh preempted span must absorb it, not be dropped as zero-length.
  log.wait_verdict(1, 100, 2, SpanKind::kLostPriority);
  // A later round reclassifies the wait.
  log.wait_verdict(1, 160, 3, SpanKind::kNoCapacity);
  log.placed(1, 220, 4, {1}, 1.0, "exclusive");
  log.finished(1, 300, 300);

  JobTimeline t;
  ASSERT_TRUE(log.timeline(1, t));
  EXPECT_EQ(obs::validate_timeline(t), "");
  EXPECT_EQ(t.bucket_seconds[static_cast<int>(SpanKind::kPreempted)], 60);
  EXPECT_EQ(t.bucket_seconds[static_cast<int>(SpanKind::kNoCapacity)], 60);
  bool saw_preempted = false;
  for (const TimelineSpan& s : t.spans) {
    if (s.kind != SpanKind::kPreempted) continue;
    saw_preempted = true;
    EXPECT_EQ(s.rounds, (std::vector<std::int64_t>{2}));
  }
  EXPECT_TRUE(saw_preempted);
}

TEST(JobTrace, StragglerFactorChangeSplitsTheRunSpan) {
  JobTraceLog log;
  log.set_restart_penalty(5);
  log.submitted(1, 0);
  log.placed(1, 60, 1, {1}, 1.0, "exclusive");
  log.straggler(1, 100, 2.0);
  log.straggler(1, 150, 1.0);
  log.finished(1, 200, 200);

  JobTimeline t;
  ASSERT_TRUE(log.timeline(1, t));
  EXPECT_EQ(obs::validate_timeline(t), "");
  std::vector<double> factors;
  for (const TimelineSpan& s : t.spans) {
    if (s.kind == SpanKind::kRun) factors.push_back(s.straggler);
  }
  EXPECT_EQ(factors, (std::vector<double>{1.0, 2.0, 1.0}));
  // The gate is paid once: splitting on straggler edges must not re-split
  // restart time.
  EXPECT_EQ(t.bucket_seconds[static_cast<int>(SpanKind::kRestart)], 5);
}

TEST(JobTrace, CancelClosesWithoutEnteringTotals) {
  obs::MetricsRegistry registry;
  JobTraceLog log;
  log.set_metrics(&registry);
  log.submitted(1, 0);
  log.submitted(2, 0);
  log.placed(2, 10, 1, {2}, 1.0, "exclusive");
  log.cancelled(1, 50);
  log.finished(2, 100, 100);

  JobTimeline t;
  ASSERT_TRUE(log.timeline(1, t));
  EXPECT_TRUE(t.cancelled);
  EXPECT_FALSE(t.finished);
  EXPECT_EQ(obs::validate_timeline(t), "");

  std::int64_t finished = 0;
  const auto totals = log.totals(&finished);
  EXPECT_EQ(finished, 1);
  double sum = 0;
  for (const double b : totals) sum += b;
  EXPECT_EQ(sum, 100);  // only job 2 (cancelled jobs carry no verdict)
}

TEST(JobTrace, ValidateTimelineCatchesGapsAndBadSums) {
  JobTimeline t;
  t.job = 1;
  t.submit = 0;
  t.finish = 100;
  t.finished = true;
  t.reported_jct = 100;
  TimelineSpan a;
  a.kind = SpanKind::kAwaitingRound;
  a.start = 0;
  a.end = 40;
  TimelineSpan b;
  b.kind = SpanKind::kRun;
  b.start = 60;  // gap: 40 != 60
  b.end = 100;
  t.spans = {a, b};
  t.bucket_seconds[static_cast<int>(SpanKind::kAwaitingRound)] = 40;
  t.bucket_seconds[static_cast<int>(SpanKind::kRun)] = 40;
  EXPECT_NE(obs::validate_timeline(t), "");

  t.spans[1].start = 40;
  t.spans[1].end = 100;
  t.bucket_seconds[static_cast<int>(SpanKind::kRun)] = 60;
  EXPECT_EQ(obs::validate_timeline(t), "");

  t.reported_jct = 250;  // buckets no longer explain the reported JCT
  EXPECT_NE(obs::validate_timeline(t), "");
}

// ---------------------------------------------------------------------------
// Simulator integration: live recorder, fold agreement, invariants.

Job sim_job(JobId id, ModelKind m, Time submit, double solo_secs) {
  Job j;
  j.id = id;
  j.model = m;
  j.num_gpus = 1;
  j.submit_time = submit;
  j.profile = model_profile(m, 1);
  j.iterations = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(solo_secs / j.profile.iteration_time()));
  return j;
}

Trace contended_trace() {
  Trace t;
  t.name = "jobtrace";
  for (int i = 0; i < 8; ++i) {
    t.jobs.push_back(sim_job(i, kAllModels[static_cast<size_t>(i) % 8],
                             i * 30.0, 900));
  }
  // One job too wide for the pool: its waits must classify as
  // no_capacity, exercising the structural bucket.
  Job wide = sim_job(8, kAllModels[0], 10.0, 300);
  wide.num_gpus = 4;
  wide.profile = model_profile(kAllModels[0], 4);
  t.jobs.push_back(wide);
  return t;
}

SimOptions tiny_cluster() {
  SimOptions opt;
  opt.cluster.num_machines = 1;
  opt.cluster.gpus_per_machine = 2;
  opt.schedule_interval = 60;
  opt.restart_penalty = 5;
  return opt;
}

TEST(JobTrace, EveryFinishedSimJobSatisfiesTheAttributionInvariant) {
  const Trace t = contended_trace();
  JobTraceLog live;
  SimOptions opt = tiny_cluster();
  opt.jobtrace = &live;
  MuriScheduler s{MuriOptions{}};
  const SimResult result = run_simulation(t, s, opt);
  ASSERT_GT(result.finished_jobs, 0);

  int finished = 0;
  for (const JobTimeline& tl : live.timelines()) {
    if (!tl.finished) continue;
    ++finished;
    EXPECT_EQ(obs::validate_timeline(tl), "") << "job " << tl.job;
    // The wide job can only ever wait on capacity, never lose a race.
    if (tl.job == 8) {
      EXPECT_EQ(
          tl.bucket_seconds[static_cast<int>(SpanKind::kLostPriority)], 0);
    }
  }
  EXPECT_EQ(finished, result.finished_jobs);
}

TEST(JobTrace, InvariantHoldsUnderFaultsAndStragglers) {
  Trace t = contended_trace();
  SimOptions opt = tiny_cluster();
  opt.cluster.num_machines = 2;
  opt.mtbf_hours = 0.1;  // job faults
  opt.machine_faults.machine_mtbf_hours = 0.2;
  opt.machine_faults.machine_mttr_hours = 0.05;
  opt.machine_faults.straggler_rate_per_hour = 4;
  opt.machine_faults.straggler_duration_s = 300;
  opt.max_time = 12 * 3600;
  JobTraceLog live;
  opt.jobtrace = &live;
  MuriScheduler s{MuriOptions{}};
  const SimResult result = run_simulation(t, s, opt);
  ASSERT_GT(result.finished_jobs, 0);
  for (const JobTimeline& tl : live.timelines()) {
    if (!tl.finished) continue;
    EXPECT_EQ(obs::validate_timeline(tl), "") << "job " << tl.job;
  }
}

TEST(JobTrace, FoldOverDecisionLogMatchesTheLiveRecorder) {
  const Trace t = contended_trace();
  DecisionLog log;
  JobTraceLog live;
  SimOptions opt = tiny_cluster();
  opt.decisions = &log;
  opt.jobtrace = &live;
  MuriScheduler s{MuriOptions{}};
  run_simulation(t, s, opt);

  std::vector<DecisionRecord> records;
  std::string error;
  ASSERT_TRUE(obs::parse_decision_log(log.jsonl(), records, &error)) << error;
  JobTraceLog fold;
  obs::build_job_traces(records, fold);
  EXPECT_EQ(fold.restart_penalty(), opt.restart_penalty);
  // Rendered bytes cover every span field at full precision.
  EXPECT_EQ(obs::timelines_json(live.timelines()),
            obs::timelines_json(fold.timelines()));
  EXPECT_EQ(obs::timeline_csv(live.timelines()),
            obs::timeline_csv(fold.timelines()));
}

TEST(JobTrace, FoldMatchesLiveUnderFaults) {
  Trace t = contended_trace();
  SimOptions opt = tiny_cluster();
  opt.cluster.num_machines = 2;
  opt.mtbf_hours = 0.1;
  opt.machine_faults.machine_mtbf_hours = 0.2;
  opt.machine_faults.machine_mttr_hours = 0.05;
  opt.machine_faults.straggler_rate_per_hour = 4;
  opt.machine_faults.straggler_duration_s = 300;
  opt.max_time = 12 * 3600;
  DecisionLog log;
  JobTraceLog live;
  opt.decisions = &log;
  opt.jobtrace = &live;
  MuriScheduler s{MuriOptions{}};
  run_simulation(t, s, opt);

  std::vector<DecisionRecord> records;
  ASSERT_TRUE(obs::parse_decision_log(log.jsonl(), records));
  JobTraceLog fold;
  obs::build_job_traces(records, fold);
  EXPECT_EQ(obs::timelines_json(live.timelines()),
            obs::timelines_json(fold.timelines()));
}

TEST(JobTrace, TimelineRoundIdsAgreeWithTheDecisionLog) {
  const Trace t = contended_trace();
  DecisionLog log;
  JobTraceLog live;
  SimOptions opt = tiny_cluster();
  opt.decisions = &log;
  opt.jobtrace = &live;
  MuriScheduler s{MuriOptions{}};
  run_simulation(t, s, opt);

  std::vector<DecisionRecord> records;
  ASSERT_TRUE(obs::parse_decision_log(log.jsonl(), records));
  std::set<std::int64_t> known_rounds;
  for (const DecisionRecord& r : records) {
    known_rounds.insert(static_cast<std::int64_t>(r.value.at("round").number));
  }
  bool any_round = false;
  for (const JobTimeline& tl : live.timelines()) {
    for (const TimelineSpan& span : tl.spans) {
      for (const std::int64_t round : span.rounds) {
        any_round = true;
        EXPECT_TRUE(known_rounds.count(round))
            << "job " << tl.job << " cites unknown round " << round;
      }
    }
  }
  EXPECT_TRUE(any_round);
  // The wait verdicts surface in explain-job output too (the "wait"
  // record mentions the job id).
  const std::string explain = obs::explain_job_text(records, 0);
  EXPECT_NE(explain.find("left waiting"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Bit-identity and byte-stability.

TEST(JobTrace, AttachingTheRecorderIsBitIdentical) {
  const Trace t = contended_trace();

  DecisionLog bare_log;
  SimOptions bare_opt = tiny_cluster();
  bare_opt.decisions = &bare_log;
  MuriScheduler bare{MuriOptions{}};
  const SimResult want = run_simulation(t, bare, bare_opt);

  DecisionLog traced_log;
  JobTraceLog live;
  SimOptions traced_opt = tiny_cluster();
  traced_opt.decisions = &traced_log;
  traced_opt.jobtrace = &live;
  MuriScheduler traced{MuriOptions{}};
  const SimResult got = run_simulation(t, traced, traced_opt);

  EXPECT_EQ(want.avg_jct, got.avg_jct);
  EXPECT_EQ(want.p99_jct, got.p99_jct);
  EXPECT_EQ(want.makespan, got.makespan);
  EXPECT_EQ(want.jcts, got.jcts);
  EXPECT_EQ(want.restarts, got.restarts);
  EXPECT_EQ(want.scheduler_invocations, got.scheduler_invocations);
  // The decision log carries the wait/straggler records either way: the
  // recorder only listens, it never writes.
  EXPECT_EQ(bare_log.jsonl(), traced_log.jsonl());
}

TEST(JobTrace, RenderersAreByteStableAcrossThreadCounts) {
  const Trace t = contended_trace();
  const auto render = [&](int threads) {
    DecisionLog log;
    JobTraceLog live;
    SimOptions opt = tiny_cluster();
    opt.decisions = &log;
    opt.jobtrace = &live;
    MuriOptions mo;
    mo.num_threads = threads;
    MuriScheduler s{mo};
    run_simulation(t, s, opt);
    const std::vector<JobTimeline> tls = live.timelines();
    std::string out = obs::timelines_json(tls);
    out += obs::timeline_csv(tls);
    out += obs::chrome_trace_json(tls);
    for (const JobTimeline& tl : tls) out += obs::timeline_text(tl);
    return out;
  };
  const std::string serial = render(1);
  EXPECT_EQ(serial, render(1));  // run-to-run
  EXPECT_EQ(serial, render(4));  // thread-count invariance
}

TEST(JobTrace, ChromeExportValidates) {
  const Trace t = contended_trace();
  JobTraceLog live;
  SimOptions opt = tiny_cluster();
  opt.jobtrace = &live;
  MuriScheduler s{MuriOptions{}};
  run_simulation(t, s, opt);
  std::string error;
  EXPECT_TRUE(
      obs::validate_chrome_trace(obs::chrome_trace_json(live.timelines()),
                                 &error))
      << error;
}

TEST(JobTrace, FinishedJobsFeedWaitBucketHistograms) {
  obs::MetricsRegistry registry;
  const Trace t = contended_trace();
  JobTraceLog live;
  SimOptions opt = tiny_cluster();
  opt.jobtrace = &live;
  opt.metrics = &registry;
  MuriScheduler s{MuriOptions{}};
  const SimResult result = run_simulation(t, s, opt);
  ASSERT_GT(result.finished_jobs, 0);
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("muri_job_wait_bucket_seconds"), std::string::npos);
  EXPECT_NE(text.find("bucket=\"lost_priority\""), std::string::npos);
  EXPECT_NE(text.find("bucket=\"run\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Schema: the wait/straggler records the emitters write for the fold.

TEST(JobTrace, WaitAndStragglerRecordsValidate) {
  DecisionLog log;
  log.begin_round();
  log.entry("wait").num("t", 60).ids("job", {1, 2}).strs(
      "bucket", {"lost_priority", "no_capacity"});
  log.entry("straggler").num("t", 61).num("job", 3).num("factor", 1.5);
  std::string error;
  EXPECT_TRUE(obs::validate_decision_log(log.jsonl(), &error)) << error;

  // Missing the aligned bucket array: rejected.
  EXPECT_FALSE(obs::validate_decision_log(
      "{\"type\":\"wait\",\"round\":1,\"t\":60,\"job\":[1]}\n", &error));
  EXPECT_NE(error.find("wait"), std::string::npos);
  // Non-numeric factor: rejected.
  EXPECT_FALSE(obs::validate_decision_log(
      "{\"type\":\"straggler\",\"round\":1,\"t\":60,\"job\":3,"
      "\"factor\":\"fast\"}\n",
      &error));
}

TEST(JobTrace, FoldIgnoresUnknownBucketsAndShortLogs) {
  // A fold over an empty log yields no jobs, not a crash.
  JobTraceLog fold;
  obs::build_job_traces({}, fold);
  EXPECT_TRUE(fold.timelines().empty());
  JobTimeline t;
  EXPECT_FALSE(fold.timeline(42, t));
}

}  // namespace
}  // namespace muri
