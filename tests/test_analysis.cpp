// Utilization analytics tests: the obs/analysis report must reconstruct —
// from the exported trace alone — what the simulator measured online:
// per-resource busy seconds, per-group realized interleaving efficiency γ
// (matching the schedule-time prediction on noise-free timings), and the
// per-job JCT breakdown. Plus renderer byte-stability and executor-trace
// coverage.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "job/model.h"
#include "obs/analysis.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/executor.h"
#include "scheduler/muri.h"
#include "sim/simulator.h"

namespace muri {
namespace {

using obs::JsonValue;
using obs::Tracer;
using obs::UtilizationReport;

// Noise-free execution: every inflation knob off, no faults, no restart
// gate — realized γ must then track the schedule-time prediction.
SimOptions noise_free_options() {
  SimOptions opt;
  opt.cluster.num_machines = 2;
  opt.cluster.gpus_per_machine = 2;
  opt.schedule_interval = 60;
  opt.durations_known = true;
  opt.restart_penalty = 0;
  opt.alpha = 0;
  opt.gamma_penalty = 0;
  opt.cascade_penalty = 0;
  opt.contention_penalty = 0;
  opt.misplan_penalty = 0;
  return opt;
}

Trace model_trace() {
  Trace t;
  t.name = "analysis";
  JobId id = 0;
  auto add = [&](ModelKind m, Time submit, double solo_secs) {
    Job j;
    j.id = id++;
    j.model = m;
    j.num_gpus = 1;
    j.submit_time = submit;
    j.profile = model_profile(m, 1);
    j.iterations = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(solo_secs / j.profile.iteration_time()));
    t.jobs.push_back(j);
  };
  for (int c = 0; c < 2; ++c) {
    add(ModelKind::kShuffleNet, 0, 900);
    add(ModelKind::kA2c, 0, 900);
    add(ModelKind::kGpt2, 60, 300);
    add(ModelKind::kVgg16, 60, 300);
  }
  return t;
}

struct TracedRun {
  SimResult result;
  std::string trace_json;
};

TracedRun run_noise_free() {
  Tracer tracer;
  tracer.set_enabled(true);
  MuriOptions mopt;
  mopt.durations_known = true;
  MuriScheduler sched(mopt);
  SimOptions opt = noise_free_options();
  opt.tracer = &tracer;
  TracedRun out;
  out.result = run_simulation(model_trace(), sched, opt);
  out.trace_json = tracer.chrome_trace_json();
  return out;
}

UtilizationReport analyze(const std::string& json) {
  JsonValue root;
  std::string err;
  EXPECT_TRUE(obs::parse_json(json, root, &err)) << err;
  UtilizationReport report;
  EXPECT_TRUE(obs::analyze_trace(root, report, &err)) << err;
  return report;
}

TEST(Analysis, RejectsNonTraceAcceptsEmptyTrace) {
  JsonValue root;
  UtilizationReport report;
  std::string err;
  ASSERT_TRUE(obs::parse_json("[1, 2]", root));
  EXPECT_FALSE(obs::analyze_trace(root, report, &err));
  EXPECT_FALSE(err.empty());
  ASSERT_TRUE(obs::parse_json("{\"a\": 1}", root));
  EXPECT_FALSE(obs::analyze_trace(root, report, &err));
  ASSERT_TRUE(obs::parse_json("{\"traceEvents\": []}", root));
  EXPECT_TRUE(obs::analyze_trace(root, report, &err)) << err;
  EXPECT_TRUE(report.empty());
}

TEST(Analysis, NoiseFreeRealizedMatchesPredicted) {
  const TracedRun run = run_noise_free();
  const UtilizationReport report = analyze(run.trace_json);

  int multi = 0;
  for (const obs::GroupGammaStat& g : report.groups) {
    EXPECT_EQ(g.run, 1);  // fresh tracer: first (and only) run epoch
    if (g.size < 2) {
      // Solo incarnations realize exactly their non-idle fraction.
      EXPECT_NEAR(g.gamma_realized, g.gamma_predicted, 1e-6)
          << "solo group " << g.group;
      continue;
    }
    ++multi;
    // The prediction is Eq. 4's rotation-schedule γ, which quantizes to
    // stage boundaries; the fluid execution model is work-conserving, so
    // on clean timings realized may exceed predicted (badly matched
    // groups leave the most on the table) but must never fall short of
    // the promise by more than a few percent.
    EXPECT_GE(g.gamma_realized, g.gamma_predicted - 0.05)
        << "group " << g.group << " run " << g.run;
    EXPECT_LE(g.gamma_realized, 1.0 + 1e-9);
  }
  EXPECT_GT(multi, 0) << "Muri formed no multi-member groups";
}

TEST(Analysis, ComplementaryPairMatchesExactly) {
  // Two jobs whose stage times tile each other perfectly: storage+cpu
  // durations swap, so the rotation leaves zero idle time and γ = 1.
  Trace t;
  t.name = "pair";
  for (int i = 0; i < 2; ++i) {
    Job j;
    j.id = i;
    j.num_gpus = 1;
    j.submit_time = 0;
    j.profile.stage_time = i == 0 ? ResourceVector{1.0, 2.0, 0.0, 0.0}
                                  : ResourceVector{2.0, 1.0, 0.0, 0.0};
    j.iterations = 400;
    t.jobs.push_back(j);
  }

  Tracer tracer;
  tracer.set_enabled(true);
  MuriOptions mopt;
  mopt.durations_known = true;
  MuriScheduler sched(mopt);
  SimOptions opt = noise_free_options();
  // One GPU forces the pair to share it — Muri must interleave them.
  opt.cluster.num_machines = 1;
  opt.cluster.gpus_per_machine = 1;
  opt.tracer = &tracer;
  run_simulation(t, sched, opt);

  const UtilizationReport report = analyze(tracer.chrome_trace_json());
  bool saw_pair = false;
  for (const obs::GroupGammaStat& g : report.groups) {
    if (g.size != 2) continue;
    saw_pair = true;
    EXPECT_NEAR(g.gamma_predicted, 1.0, 1e-9);
    // Exact up to the µs quantization of trace timestamps.
    EXPECT_NEAR(g.gamma_realized, g.gamma_predicted, 1e-3);
  }
  EXPECT_TRUE(saw_pair) << "complementary jobs were not grouped";
}

TEST(Analysis, OfflineAgreesWithOnlineAccounting) {
  const TracedRun run = run_noise_free();
  const UtilizationReport report = analyze(run.trace_json);

  // Total busy seconds: the report's fraction-weighted span sums must
  // reproduce the simulator's muri_resource_busy_seconds accounting (the
  // only slack is µs timestamp quantization).
  for (int r = 0; r < kNumResources; ++r) {
    const double online = run.result.resource_busy_seconds[
        static_cast<size_t>(r)];
    const double offline = report.busy_seconds[static_cast<size_t>(r)];
    EXPECT_NEAR(offline, online, 1e-3 * std::max(online, 1.0))
        << to_string(static_cast<Resource>(r));
  }

  // Realized-γ mean over multi-member groups, weighted by active window —
  // the same averaging SimResult uses.
  double weight = 0, realized_sum = 0;
  for (const obs::GroupGammaStat& g : report.groups) {
    if (g.size < 2) continue;
    const double wall = g.window_end - g.window_start;
    const double active = wall - std::clamp(g.stall_seconds, 0.0, wall);
    if (active <= 0) continue;
    weight += active;
    realized_sum += g.gamma_realized * active;
  }
  ASSERT_GT(weight, 0);
  EXPECT_NEAR(realized_sum / weight, run.result.avg_group_gamma_realized,
              1e-4);

  // JCT breakdowns: offline decomposition per job matches the simulator's.
  std::map<int, obs::JobJctBreakdown> offline;
  for (const obs::JobJctBreakdown& j : report.jobs) offline[j.job] = j;
  ASSERT_FALSE(run.result.jct_breakdown.empty());
  for (const JctBreakdown& b : run.result.jct_breakdown) {
    const auto it = offline.find(static_cast<int>(b.job));
    ASSERT_NE(it, offline.end()) << "job " << b.job << " missing offline";
    const obs::JobJctBreakdown& o = it->second;
    EXPECT_TRUE(o.finished);
    EXPECT_NEAR(o.jct_seconds, b.jct_seconds, 1e-3);
    EXPECT_NEAR(o.queueing_seconds, b.queueing_seconds, 1e-3);
    EXPECT_NEAR(o.running_seconds, b.running_seconds, 1e-3);
    EXPECT_NEAR(o.restart_overhead_seconds, b.restart_overhead_seconds,
                1e-3);
    EXPECT_EQ(o.preemptions, b.preemptions);
  }
}

TEST(Analysis, RenderersAreByteStableAcrossIdenticalRuns) {
  const TracedRun a = run_noise_free();
  const TracedRun b = run_noise_free();
  ASSERT_EQ(a.trace_json, b.trace_json);  // sim export determinism

  const UtilizationReport ra = analyze(a.trace_json);
  const UtilizationReport rb = analyze(b.trace_json);
  EXPECT_EQ(obs::report_text(ra), obs::report_text(rb));
  EXPECT_EQ(obs::report_csv(ra), obs::report_csv(rb));
  const std::string json_a = obs::report_json(ra);
  EXPECT_EQ(json_a, obs::report_json(rb));

  // The JSON rendering must itself be well-formed.
  JsonValue parsed;
  std::string err;
  ASSERT_TRUE(obs::parse_json(json_a, parsed, &err)) << err;
  EXPECT_TRUE(parsed.at("utilization").is_array());
  EXPECT_TRUE(parsed.at("groups").is_array());
  EXPECT_TRUE(parsed.at("jobs").is_array());
  EXPECT_TRUE(parsed.at("summary").is_object());
  EXPECT_FALSE(parsed.at("utilization").array.empty());
}

TEST(Analysis, ExecutorTraceProducesTimelinesAndRealizedGamma) {
  Tracer tracer;
  tracer.set_enabled(true);
  obs::MetricsRegistry metrics;

  std::vector<runtime::ExecJobSpec> specs(2);
  specs[0] = {"a", ResourceVector{0.4, 0.6, 0.0, 0.0}, 0};
  specs[1] = {"b", ResourceVector{0.6, 0.4, 0.0, 0.0}, 1};
  runtime::ExecOptions options;
  options.time_scale = 0.05;
  options.run_for = 0.4;
  options.coordinate = true;
  options.slots = {Resource::kStorage, Resource::kCpu};
  options.tracer = &tracer;
  options.metrics = &metrics;
  options.gamma_predicted = 1.0;  // perfectly complementary pair

  const runtime::ExecResult result = runtime::run_group(specs, options);
  EXPECT_GT(result.gamma_realized, 0.0);
  EXPECT_LE(result.gamma_realized, 1.0);

  // Live counters accumulated what the result reports.
  for (int r = 0; r < 2; ++r) {
    const char* name = r == 0 ? "storage" : "cpu";
    EXPECT_NEAR(
        metrics
            .counter("muri_resource_busy_seconds", "",
                     {{"machine", "executor"}, {"resource", name}})
            .value(),
        result.busy_seconds[static_cast<size_t>(r)], 1e-9);
  }
  EXPECT_GT(
      metrics.summary("muri_group_gamma_realized", "",
                      {{"machine", "executor"}})
          .count(),
      0);

  // The wall-clock trace analyzes into executor-track timelines whose
  // busy seconds bound the nominal occupancy from above (spans include
  // token wait).
  const UtilizationReport report = analyze(tracer.chrome_trace_json());
  double storage_busy = 0, cpu_busy = 0;
  for (const obs::ResourceTimeline& tl : report.timelines) {
    if (tl.track != obs::kExecutorTrack) continue;
    if (tl.resource == Resource::kStorage) storage_busy += tl.busy_seconds;
    if (tl.resource == Resource::kCpu) cpu_busy += tl.busy_seconds;
  }
  EXPECT_GE(storage_busy,
            result.busy_seconds[static_cast<size_t>(Resource::kStorage)] -
                1e-6);
  EXPECT_GE(cpu_busy,
            result.busy_seconds[static_cast<size_t>(Resource::kCpu)] - 1e-6);
}

}  // namespace
}  // namespace muri
