// ThreadPool contract: exact-once execution, deterministic partitioning,
// exception propagation, and deadlock-free reentrancy — the properties the
// parallel scheduling round builds on.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/threadpool.h"

namespace muri {
namespace {

TEST(ThreadPoolPartition, CoversRangeExactlyOnceAndContiguously) {
  for (std::int64_t begin : {0, 3, -5}) {
    for (std::int64_t n : {1, 2, 7, 64, 1000}) {
      for (int chunks : {1, 2, 3, 8, 33}) {
        const auto parts = ThreadPool::partition(begin, begin + n, chunks);
        ASSERT_FALSE(parts.empty());
        EXPECT_LE(static_cast<std::int64_t>(parts.size()), n);
        EXPECT_LE(static_cast<int>(parts.size()), chunks);
        std::int64_t at = begin;
        for (const auto& [lo, hi] : parts) {
          EXPECT_EQ(lo, at);  // contiguous, in order, no gaps
          EXPECT_LT(lo, hi);  // never empty
          at = hi;
        }
        EXPECT_EQ(at, begin + n);
      }
    }
  }
}

TEST(ThreadPoolPartition, IsAPureFunctionOfItsArguments) {
  const auto a = ThreadPool::partition(0, 1000, 16);
  const auto b = ThreadPool::partition(0, 1000, 16);
  EXPECT_EQ(a, b);
  // Sizes differ by at most one and larger chunks come first.
  for (size_t i = 1; i < a.size(); ++i) {
    const auto prev = a[i - 1].second - a[i - 1].first;
    const auto cur = a[i].second - a[i].first;
    EXPECT_GE(prev, cur);
    EXPECT_LE(prev - cur, 1);
  }
}

TEST(ThreadPoolPartition, EmptyRangeAndBadChunkCounts) {
  EXPECT_TRUE(ThreadPool::partition(5, 5, 4).empty());
  EXPECT_TRUE(ThreadPool::partition(7, 3, 4).empty());
  EXPECT_TRUE(ThreadPool::partition(0, 10, 0).empty());
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  for (int workers : {0, 1, 3, 7}) {
    ThreadPool pool(workers);
    EXPECT_EQ(pool.workers(), workers);
    EXPECT_EQ(pool.concurrency(), workers + 1);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(0, static_cast<std::int64_t>(hits.size()),
                      [&](std::int64_t i) {
                        hits[static_cast<size_t>(i)].fetch_add(1);
                      });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, IndexOwnedSlotsMatchSerialBitForBit) {
  // The determinism contract the scheduler relies on: a loop whose bodies
  // write only to their own slot produces identical output for any pool.
  const int n = 512;
  std::vector<double> serial(n), threaded(n);
  const auto body = [](std::int64_t i) {
    double acc = 0;
    for (int k = 1; k <= 32; ++k) acc += 1.0 / (static_cast<double>(i) + k);
    return acc;
  };
  {
    ThreadPool pool(0);
    pool.parallel_for(0, n, [&](std::int64_t i) {
      serial[static_cast<size_t>(i)] = body(i);
    });
  }
  for (int workers : {1, 3, 7}) {
    ThreadPool pool(workers);
    pool.parallel_for(0, n, [&](std::int64_t i) {
      threaded[static_cast<size_t>(i)] = body(i);
    });
    EXPECT_EQ(serial, threaded) << workers << " workers";
  }
}

TEST(ThreadPool, PropagatesTheFirstExceptionAndSurvives) {
  ThreadPool pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::int64_t i) {
                          ran.fetch_add(1);
                          if (i == 13) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  EXPECT_GE(ran.load(), 1);
  // The pool is not poisoned: subsequent loops run to completion.
  std::atomic<int> after{0};
  pool.parallel_for(0, 50, [&](std::int64_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 50);
}

TEST(ThreadPool, NestedParallelForFromWorkersCompletes) {
  // A bucket task running on a worker parallelizes its own edge loop; the
  // nested call must run inline rather than deadlock on the queue.
  ThreadPool pool(3);
  const int outer = 8, inner = 64;
  std::vector<std::atomic<int>> cells(static_cast<size_t>(outer * inner));
  for (auto& c : cells) c.store(0);
  pool.parallel_for(0, outer, [&](std::int64_t o) {
    pool.parallel_for(0, inner, [&](std::int64_t i) {
      cells[static_cast<size_t>(o * inner + i)].fetch_add(1);
    });
  });
  for (const auto& c : cells) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, ManyConsecutiveLoopsDoNotLeakOrWedge) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  for (int rep = 0; rep < 200; ++rep) {
    pool.parallel_for(0, 37, [&](std::int64_t i) { total.fetch_add(i); });
  }
  EXPECT_EQ(total.load(), 200 * (36 * 37 / 2));
}

}  // namespace
}  // namespace muri
