#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace muri {
namespace {

ClusterSpec spec(int machines, int gpus) {
  ClusterSpec s;
  s.num_machines = machines;
  s.gpus_per_machine = gpus;
  return s;
}

TEST(Cluster, InitialState) {
  Cluster c(spec(8, 8));
  EXPECT_EQ(c.total_gpus(), 64);
  EXPECT_EQ(c.free_gpus(), 64);
  EXPECT_EQ(c.fragmented_machines(), 0);
  for (GpuId g = 0; g < 64; ++g) {
    EXPECT_EQ(c.owner_of(g), kNoOwner);
  }
}

TEST(Cluster, MachineOfMapsContiguously) {
  Cluster c(spec(4, 8));
  EXPECT_EQ(c.machine_of(0), 0);
  EXPECT_EQ(c.machine_of(7), 0);
  EXPECT_EQ(c.machine_of(8), 1);
  EXPECT_EQ(c.machine_of(31), 3);
}

TEST(Cluster, SmallAllocationStaysOnOneMachine) {
  Cluster c(spec(4, 8));
  const auto gpus = c.allocate(1, 4);
  ASSERT_EQ(gpus.size(), 4u);
  const MachineId m = c.machine_of(gpus[0]);
  for (GpuId g : gpus) {
    EXPECT_EQ(c.machine_of(g), m);
    EXPECT_EQ(c.owner_of(g), 1);
  }
  EXPECT_EQ(c.free_gpus(), 28);
  EXPECT_EQ(c.machines_used_by(1), 1);
}

TEST(Cluster, BestFitPrefersFullestFeasibleMachine) {
  Cluster c(spec(3, 8));
  c.allocate(1, 6);  // machine 0 now has 2 free
  c.allocate(2, 4);  // machine 1 now has 4 free
  // A 2-GPU request should land on machine 0 (tightest fit).
  const auto gpus = c.allocate(3, 2);
  ASSERT_EQ(gpus.size(), 2u);
  EXPECT_EQ(c.machine_of(gpus[0]), 0);
}

TEST(Cluster, WholeMachineAllocationTakesFreeMachines) {
  Cluster c(spec(4, 8));
  c.allocate(1, 3);  // fragment machine 0
  const auto gpus = c.allocate(2, 16);
  ASSERT_EQ(gpus.size(), 16u);
  for (GpuId g : gpus) {
    EXPECT_NE(c.machine_of(g), 0);  // machine 0 was not whole-free
  }
  EXPECT_EQ(c.machines_used_by(2), 2);
}

TEST(Cluster, BestFitConsolidatesSmallAllocations) {
  Cluster c(spec(2, 8));
  c.allocate(1, 1);
  c.allocate(2, 1);  // best fit stacks this on machine 0 too
  EXPECT_EQ(c.free_gpus_on(0), 6);
  EXPECT_EQ(c.free_gpus_on(1), 8);
  // Machine 1 stays whole, so an 8-GPU job still fits.
  EXPECT_TRUE(c.can_allocate(8));
}

TEST(Cluster, CannotAllocateWhenFragmented) {
  Cluster c(spec(2, 8));
  c.allocate(1, 5);  // machine 0: 3 free
  c.allocate(2, 5);  // cannot fit machine 0 -> machine 1: 3 free
  // 6 GPUs free but no whole machine: an 8-GPU job cannot be placed.
  EXPECT_FALSE(c.can_allocate(8));
  EXPECT_TRUE(c.can_allocate(3));
  EXPECT_FALSE(c.can_allocate(4));
  EXPECT_TRUE(c.allocate(3, 8).empty());
}

TEST(Cluster, NonMachineMultipleOfLargeRequestRejected) {
  Cluster c(spec(4, 8));
  EXPECT_FALSE(c.can_allocate(12));  // >8 must be a multiple of 8
  EXPECT_TRUE(c.can_allocate(8));
  EXPECT_TRUE(c.can_allocate(32));
  EXPECT_FALSE(c.can_allocate(40));  // more than total
}

TEST(Cluster, ReleaseReturnsCapacity) {
  Cluster c(spec(2, 8));
  c.allocate(1, 8);
  c.allocate(2, 8);
  EXPECT_EQ(c.free_gpus(), 0);
  c.release(1);
  EXPECT_EQ(c.free_gpus(), 8);
  EXPECT_TRUE(c.can_allocate(8));
  EXPECT_EQ(c.gpus_of(1).size(), 0u);
  EXPECT_EQ(c.gpus_of(2).size(), 8u);
}

TEST(Cluster, ResetClearsEverything) {
  Cluster c(spec(2, 4));
  c.allocate(1, 3);
  c.allocate(2, 4);
  c.reset();
  EXPECT_EQ(c.free_gpus(), 8);
  EXPECT_EQ(c.fragmented_machines(), 0);
  EXPECT_TRUE(c.gpus_of(1).empty());
}

TEST(Cluster, FragmentationCounting) {
  Cluster c(spec(3, 8));
  EXPECT_EQ(c.fragmented_machines(), 0);
  c.allocate(1, 3);
  EXPECT_EQ(c.fragmented_machines(), 1);
  c.allocate(2, 8);
  EXPECT_EQ(c.fragmented_machines(), 1);  // full machine isn't "fragmented"
  c.allocate(3, 5);  // best fit fills machine 0 exactly
  EXPECT_EQ(c.fragmented_machines(), 0);
}

TEST(Cluster, ExhaustiveFillAndDrain) {
  Cluster c(spec(8, 8));
  for (OwnerId o = 0; o < 64; ++o) {
    ASSERT_EQ(c.allocate(o + 1, 1).size(), 1u);
  }
  EXPECT_EQ(c.free_gpus(), 0);
  EXPECT_FALSE(c.can_allocate(1));
  for (OwnerId o = 0; o < 64; ++o) c.release(o + 1);
  EXPECT_EQ(c.free_gpus(), 64);
}

}  // namespace
}  // namespace muri
